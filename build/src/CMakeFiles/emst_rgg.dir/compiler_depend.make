# Empty compiler generated dependencies file for emst_rgg.
# This may be replaced when dependencies are built.
