file(REMOVE_RECURSE
  "CMakeFiles/emst_rgg.dir/emst/rgg/components.cpp.o"
  "CMakeFiles/emst_rgg.dir/emst/rgg/components.cpp.o.d"
  "CMakeFiles/emst_rgg.dir/emst/rgg/radii.cpp.o"
  "CMakeFiles/emst_rgg.dir/emst/rgg/radii.cpp.o.d"
  "CMakeFiles/emst_rgg.dir/emst/rgg/rgg.cpp.o"
  "CMakeFiles/emst_rgg.dir/emst/rgg/rgg.cpp.o.d"
  "libemst_rgg.a"
  "libemst_rgg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emst_rgg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
