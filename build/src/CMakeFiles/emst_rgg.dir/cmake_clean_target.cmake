file(REMOVE_RECURSE
  "libemst_rgg.a"
)
