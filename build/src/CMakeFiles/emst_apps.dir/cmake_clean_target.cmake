file(REMOVE_RECURSE
  "libemst_apps.a"
)
