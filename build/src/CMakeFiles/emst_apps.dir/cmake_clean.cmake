file(REMOVE_RECURSE
  "CMakeFiles/emst_apps.dir/emst/apps/aggregation.cpp.o"
  "CMakeFiles/emst_apps.dir/emst/apps/aggregation.cpp.o.d"
  "CMakeFiles/emst_apps.dir/emst/apps/broadcast.cpp.o"
  "CMakeFiles/emst_apps.dir/emst/apps/broadcast.cpp.o.d"
  "CMakeFiles/emst_apps.dir/emst/apps/leader_election.cpp.o"
  "CMakeFiles/emst_apps.dir/emst/apps/leader_election.cpp.o.d"
  "libemst_apps.a"
  "libemst_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emst_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
