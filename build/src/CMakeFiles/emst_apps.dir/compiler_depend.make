# Empty compiler generated dependencies file for emst_apps.
# This may be replaced when dependencies are built.
