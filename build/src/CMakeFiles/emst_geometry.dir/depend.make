# Empty dependencies file for emst_geometry.
# This may be replaced when dependencies are built.
