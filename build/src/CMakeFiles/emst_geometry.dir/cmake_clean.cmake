file(REMOVE_RECURSE
  "CMakeFiles/emst_geometry.dir/emst/geometry/deployments.cpp.o"
  "CMakeFiles/emst_geometry.dir/emst/geometry/deployments.cpp.o.d"
  "CMakeFiles/emst_geometry.dir/emst/geometry/sampling.cpp.o"
  "CMakeFiles/emst_geometry.dir/emst/geometry/sampling.cpp.o.d"
  "libemst_geometry.a"
  "libemst_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emst_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
