file(REMOVE_RECURSE
  "libemst_geometry.a"
)
