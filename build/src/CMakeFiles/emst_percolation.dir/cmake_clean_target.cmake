file(REMOVE_RECURSE
  "libemst_percolation.a"
)
