file(REMOVE_RECURSE
  "CMakeFiles/emst_percolation.dir/emst/percolation/analysis.cpp.o"
  "CMakeFiles/emst_percolation.dir/emst/percolation/analysis.cpp.o.d"
  "CMakeFiles/emst_percolation.dir/emst/percolation/cells.cpp.o"
  "CMakeFiles/emst_percolation.dir/emst/percolation/cells.cpp.o.d"
  "libemst_percolation.a"
  "libemst_percolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emst_percolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
