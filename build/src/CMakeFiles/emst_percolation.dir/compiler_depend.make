# Empty compiler generated dependencies file for emst_percolation.
# This may be replaced when dependencies are built.
