
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/emst/support/cli.cpp" "src/CMakeFiles/emst_support.dir/emst/support/cli.cpp.o" "gcc" "src/CMakeFiles/emst_support.dir/emst/support/cli.cpp.o.d"
  "/root/repo/src/emst/support/parallel.cpp" "src/CMakeFiles/emst_support.dir/emst/support/parallel.cpp.o" "gcc" "src/CMakeFiles/emst_support.dir/emst/support/parallel.cpp.o.d"
  "/root/repo/src/emst/support/rng.cpp" "src/CMakeFiles/emst_support.dir/emst/support/rng.cpp.o" "gcc" "src/CMakeFiles/emst_support.dir/emst/support/rng.cpp.o.d"
  "/root/repo/src/emst/support/stats.cpp" "src/CMakeFiles/emst_support.dir/emst/support/stats.cpp.o" "gcc" "src/CMakeFiles/emst_support.dir/emst/support/stats.cpp.o.d"
  "/root/repo/src/emst/support/table.cpp" "src/CMakeFiles/emst_support.dir/emst/support/table.cpp.o" "gcc" "src/CMakeFiles/emst_support.dir/emst/support/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
