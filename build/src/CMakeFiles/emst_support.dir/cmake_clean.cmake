file(REMOVE_RECURSE
  "CMakeFiles/emst_support.dir/emst/support/cli.cpp.o"
  "CMakeFiles/emst_support.dir/emst/support/cli.cpp.o.d"
  "CMakeFiles/emst_support.dir/emst/support/parallel.cpp.o"
  "CMakeFiles/emst_support.dir/emst/support/parallel.cpp.o.d"
  "CMakeFiles/emst_support.dir/emst/support/rng.cpp.o"
  "CMakeFiles/emst_support.dir/emst/support/rng.cpp.o.d"
  "CMakeFiles/emst_support.dir/emst/support/stats.cpp.o"
  "CMakeFiles/emst_support.dir/emst/support/stats.cpp.o.d"
  "CMakeFiles/emst_support.dir/emst/support/table.cpp.o"
  "CMakeFiles/emst_support.dir/emst/support/table.cpp.o.d"
  "libemst_support.a"
  "libemst_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emst_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
