file(REMOVE_RECURSE
  "libemst_support.a"
)
