# Empty compiler generated dependencies file for emst_support.
# This may be replaced when dependencies are built.
