
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/emst/mac/rbn.cpp" "src/CMakeFiles/emst_mac.dir/emst/mac/rbn.cpp.o" "gcc" "src/CMakeFiles/emst_mac.dir/emst/mac/rbn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/emst_ghs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/emst_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/emst_rgg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/emst_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/emst_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/emst_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/emst_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
