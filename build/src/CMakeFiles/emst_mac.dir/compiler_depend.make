# Empty compiler generated dependencies file for emst_mac.
# This may be replaced when dependencies are built.
