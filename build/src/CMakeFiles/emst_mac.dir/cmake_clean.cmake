file(REMOVE_RECURSE
  "CMakeFiles/emst_mac.dir/emst/mac/rbn.cpp.o"
  "CMakeFiles/emst_mac.dir/emst/mac/rbn.cpp.o.d"
  "libemst_mac.a"
  "libemst_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emst_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
