file(REMOVE_RECURSE
  "libemst_mac.a"
)
