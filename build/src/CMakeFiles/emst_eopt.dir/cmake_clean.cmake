file(REMOVE_RECURSE
  "CMakeFiles/emst_eopt.dir/emst/eopt/eopt.cpp.o"
  "CMakeFiles/emst_eopt.dir/emst/eopt/eopt.cpp.o.d"
  "libemst_eopt.a"
  "libemst_eopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emst_eopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
