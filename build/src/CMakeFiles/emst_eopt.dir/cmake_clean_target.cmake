file(REMOVE_RECURSE
  "libemst_eopt.a"
)
