# Empty dependencies file for emst_eopt.
# This may be replaced when dependencies are built.
