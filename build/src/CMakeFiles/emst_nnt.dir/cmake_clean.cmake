file(REMOVE_RECURSE
  "CMakeFiles/emst_nnt.dir/emst/nnt/connt.cpp.o"
  "CMakeFiles/emst_nnt.dir/emst/nnt/connt.cpp.o.d"
  "CMakeFiles/emst_nnt.dir/emst/nnt/kp_nnt.cpp.o"
  "CMakeFiles/emst_nnt.dir/emst/nnt/kp_nnt.cpp.o.d"
  "CMakeFiles/emst_nnt.dir/emst/nnt/rank.cpp.o"
  "CMakeFiles/emst_nnt.dir/emst/nnt/rank.cpp.o.d"
  "libemst_nnt.a"
  "libemst_nnt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emst_nnt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
