file(REMOVE_RECURSE
  "libemst_nnt.a"
)
