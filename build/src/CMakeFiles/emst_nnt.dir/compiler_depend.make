# Empty compiler generated dependencies file for emst_nnt.
# This may be replaced when dependencies are built.
