# Empty dependencies file for emst_viz.
# This may be replaced when dependencies are built.
