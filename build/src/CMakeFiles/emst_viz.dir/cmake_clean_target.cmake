file(REMOVE_RECURSE
  "libemst_viz.a"
)
