file(REMOVE_RECURSE
  "CMakeFiles/emst_viz.dir/emst/viz/svg.cpp.o"
  "CMakeFiles/emst_viz.dir/emst/viz/svg.cpp.o.d"
  "libemst_viz.a"
  "libemst_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emst_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
