file(REMOVE_RECURSE
  "libemst_ghs.a"
)
