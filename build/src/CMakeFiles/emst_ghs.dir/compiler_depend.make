# Empty compiler generated dependencies file for emst_ghs.
# This may be replaced when dependencies are built.
