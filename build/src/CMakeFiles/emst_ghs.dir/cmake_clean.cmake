file(REMOVE_RECURSE
  "CMakeFiles/emst_ghs.dir/emst/ghs/classic.cpp.o"
  "CMakeFiles/emst_ghs.dir/emst/ghs/classic.cpp.o.d"
  "CMakeFiles/emst_ghs.dir/emst/ghs/common.cpp.o"
  "CMakeFiles/emst_ghs.dir/emst/ghs/common.cpp.o.d"
  "CMakeFiles/emst_ghs.dir/emst/ghs/sync.cpp.o"
  "CMakeFiles/emst_ghs.dir/emst/ghs/sync.cpp.o.d"
  "libemst_ghs.a"
  "libemst_ghs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emst_ghs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
