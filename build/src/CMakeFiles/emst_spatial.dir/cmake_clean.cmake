file(REMOVE_RECURSE
  "CMakeFiles/emst_spatial.dir/emst/spatial/cell_grid.cpp.o"
  "CMakeFiles/emst_spatial.dir/emst/spatial/cell_grid.cpp.o.d"
  "CMakeFiles/emst_spatial.dir/emst/spatial/kdtree.cpp.o"
  "CMakeFiles/emst_spatial.dir/emst/spatial/kdtree.cpp.o.d"
  "libemst_spatial.a"
  "libemst_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emst_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
