file(REMOVE_RECURSE
  "libemst_spatial.a"
)
