# Empty dependencies file for emst_spatial.
# This may be replaced when dependencies are built.
