file(REMOVE_RECURSE
  "CMakeFiles/emst_sim.dir/emst/sim/collectives.cpp.o"
  "CMakeFiles/emst_sim.dir/emst/sim/collectives.cpp.o.d"
  "CMakeFiles/emst_sim.dir/emst/sim/meter.cpp.o"
  "CMakeFiles/emst_sim.dir/emst/sim/meter.cpp.o.d"
  "CMakeFiles/emst_sim.dir/emst/sim/topology.cpp.o"
  "CMakeFiles/emst_sim.dir/emst/sim/topology.cpp.o.d"
  "libemst_sim.a"
  "libemst_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emst_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
