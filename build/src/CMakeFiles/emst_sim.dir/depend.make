# Empty dependencies file for emst_sim.
# This may be replaced when dependencies are built.
