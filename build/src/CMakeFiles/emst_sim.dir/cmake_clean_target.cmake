file(REMOVE_RECURSE
  "libemst_sim.a"
)
