# Empty compiler generated dependencies file for emst_harness.
# This may be replaced when dependencies are built.
