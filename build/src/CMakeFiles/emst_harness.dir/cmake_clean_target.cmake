file(REMOVE_RECURSE
  "libemst_harness.a"
)
