file(REMOVE_RECURSE
  "CMakeFiles/emst_harness.dir/emst/harness/experiment.cpp.o"
  "CMakeFiles/emst_harness.dir/emst/harness/experiment.cpp.o.d"
  "CMakeFiles/emst_harness.dir/emst/harness/figures.cpp.o"
  "CMakeFiles/emst_harness.dir/emst/harness/figures.cpp.o.d"
  "libemst_harness.a"
  "libemst_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emst_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
