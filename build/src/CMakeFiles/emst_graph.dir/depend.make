# Empty dependencies file for emst_graph.
# This may be replaced when dependencies are built.
