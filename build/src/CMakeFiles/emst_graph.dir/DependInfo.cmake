
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/emst/graph/adjacency.cpp" "src/CMakeFiles/emst_graph.dir/emst/graph/adjacency.cpp.o" "gcc" "src/CMakeFiles/emst_graph.dir/emst/graph/adjacency.cpp.o.d"
  "/root/repo/src/emst/graph/boruvka.cpp" "src/CMakeFiles/emst_graph.dir/emst/graph/boruvka.cpp.o" "gcc" "src/CMakeFiles/emst_graph.dir/emst/graph/boruvka.cpp.o.d"
  "/root/repo/src/emst/graph/gabriel.cpp" "src/CMakeFiles/emst_graph.dir/emst/graph/gabriel.cpp.o" "gcc" "src/CMakeFiles/emst_graph.dir/emst/graph/gabriel.cpp.o.d"
  "/root/repo/src/emst/graph/kruskal.cpp" "src/CMakeFiles/emst_graph.dir/emst/graph/kruskal.cpp.o" "gcc" "src/CMakeFiles/emst_graph.dir/emst/graph/kruskal.cpp.o.d"
  "/root/repo/src/emst/graph/prim.cpp" "src/CMakeFiles/emst_graph.dir/emst/graph/prim.cpp.o" "gcc" "src/CMakeFiles/emst_graph.dir/emst/graph/prim.cpp.o.d"
  "/root/repo/src/emst/graph/tree_utils.cpp" "src/CMakeFiles/emst_graph.dir/emst/graph/tree_utils.cpp.o" "gcc" "src/CMakeFiles/emst_graph.dir/emst/graph/tree_utils.cpp.o.d"
  "/root/repo/src/emst/graph/union_find.cpp" "src/CMakeFiles/emst_graph.dir/emst/graph/union_find.cpp.o" "gcc" "src/CMakeFiles/emst_graph.dir/emst/graph/union_find.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/emst_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/emst_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/emst_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
