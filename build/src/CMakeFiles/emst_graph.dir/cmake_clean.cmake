file(REMOVE_RECURSE
  "CMakeFiles/emst_graph.dir/emst/graph/adjacency.cpp.o"
  "CMakeFiles/emst_graph.dir/emst/graph/adjacency.cpp.o.d"
  "CMakeFiles/emst_graph.dir/emst/graph/boruvka.cpp.o"
  "CMakeFiles/emst_graph.dir/emst/graph/boruvka.cpp.o.d"
  "CMakeFiles/emst_graph.dir/emst/graph/gabriel.cpp.o"
  "CMakeFiles/emst_graph.dir/emst/graph/gabriel.cpp.o.d"
  "CMakeFiles/emst_graph.dir/emst/graph/kruskal.cpp.o"
  "CMakeFiles/emst_graph.dir/emst/graph/kruskal.cpp.o.d"
  "CMakeFiles/emst_graph.dir/emst/graph/prim.cpp.o"
  "CMakeFiles/emst_graph.dir/emst/graph/prim.cpp.o.d"
  "CMakeFiles/emst_graph.dir/emst/graph/tree_utils.cpp.o"
  "CMakeFiles/emst_graph.dir/emst/graph/tree_utils.cpp.o.d"
  "CMakeFiles/emst_graph.dir/emst/graph/union_find.cpp.o"
  "CMakeFiles/emst_graph.dir/emst/graph/union_find.cpp.o.d"
  "libemst_graph.a"
  "libemst_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emst_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
