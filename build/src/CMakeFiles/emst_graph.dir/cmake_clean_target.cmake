file(REMOVE_RECURSE
  "libemst_graph.a"
)
