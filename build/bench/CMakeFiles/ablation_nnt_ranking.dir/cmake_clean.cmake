file(REMOVE_RECURSE
  "CMakeFiles/ablation_nnt_ranking.dir/ablation_nnt_ranking.cpp.o"
  "CMakeFiles/ablation_nnt_ranking.dir/ablation_nnt_ranking.cpp.o.d"
  "ablation_nnt_ranking"
  "ablation_nnt_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nnt_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
