file(REMOVE_RECURSE
  "CMakeFiles/ablation_alpha_costs.dir/ablation_alpha_costs.cpp.o"
  "CMakeFiles/ablation_alpha_costs.dir/ablation_alpha_costs.cpp.o.d"
  "ablation_alpha_costs"
  "ablation_alpha_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_alpha_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
