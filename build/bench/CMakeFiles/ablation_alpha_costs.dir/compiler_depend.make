# Empty compiler generated dependencies file for ablation_alpha_costs.
# This may be replaced when dependencies are built.
