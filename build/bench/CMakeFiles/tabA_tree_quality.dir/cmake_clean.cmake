file(REMOVE_RECURSE
  "CMakeFiles/tabA_tree_quality.dir/tabA_tree_quality.cpp.o"
  "CMakeFiles/tabA_tree_quality.dir/tabA_tree_quality.cpp.o.d"
  "tabA_tree_quality"
  "tabA_tree_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabA_tree_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
