# Empty compiler generated dependencies file for tabA_tree_quality.
# This may be replaced when dependencies are built.
