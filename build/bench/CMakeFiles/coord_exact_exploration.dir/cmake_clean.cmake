file(REMOVE_RECURSE
  "CMakeFiles/coord_exact_exploration.dir/coord_exact_exploration.cpp.o"
  "CMakeFiles/coord_exact_exploration.dir/coord_exact_exploration.cpp.o.d"
  "coord_exact_exploration"
  "coord_exact_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coord_exact_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
