# Empty dependencies file for coord_exact_exploration.
# This may be replaced when dependencies are built.
