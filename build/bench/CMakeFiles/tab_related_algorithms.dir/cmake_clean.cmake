file(REMOVE_RECURSE
  "CMakeFiles/tab_related_algorithms.dir/tab_related_algorithms.cpp.o"
  "CMakeFiles/tab_related_algorithms.dir/tab_related_algorithms.cpp.o.d"
  "tab_related_algorithms"
  "tab_related_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_related_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
