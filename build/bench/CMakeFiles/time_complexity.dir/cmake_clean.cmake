file(REMOVE_RECURSE
  "CMakeFiles/time_complexity.dir/time_complexity.cpp.o"
  "CMakeFiles/time_complexity.dir/time_complexity.cpp.o.d"
  "time_complexity"
  "time_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
