# Empty dependencies file for time_complexity.
# This may be replaced when dependencies are built.
