file(REMOVE_RECURSE
  "CMakeFiles/network_lifetime.dir/network_lifetime.cpp.o"
  "CMakeFiles/network_lifetime.dir/network_lifetime.cpp.o.d"
  "network_lifetime"
  "network_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
