# Empty compiler generated dependencies file for fig1_percolation.
# This may be replaced when dependencies are built.
