file(REMOVE_RECURSE
  "CMakeFiles/fig1_percolation.dir/fig1_percolation.cpp.o"
  "CMakeFiles/fig1_percolation.dir/fig1_percolation.cpp.o.d"
  "fig1_percolation"
  "fig1_percolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_percolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
