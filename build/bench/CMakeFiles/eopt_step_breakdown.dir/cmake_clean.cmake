file(REMOVE_RECURSE
  "CMakeFiles/eopt_step_breakdown.dir/eopt_step_breakdown.cpp.o"
  "CMakeFiles/eopt_step_breakdown.dir/eopt_step_breakdown.cpp.o.d"
  "eopt_step_breakdown"
  "eopt_step_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eopt_step_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
