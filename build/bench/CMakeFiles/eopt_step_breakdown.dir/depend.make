# Empty dependencies file for eopt_step_breakdown.
# This may be replaced when dependencies are built.
