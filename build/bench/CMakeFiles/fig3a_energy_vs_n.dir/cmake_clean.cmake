file(REMOVE_RECURSE
  "CMakeFiles/fig3a_energy_vs_n.dir/fig3a_energy_vs_n.cpp.o"
  "CMakeFiles/fig3a_energy_vs_n.dir/fig3a_energy_vs_n.cpp.o.d"
  "fig3a_energy_vs_n"
  "fig3a_energy_vs_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_energy_vs_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
