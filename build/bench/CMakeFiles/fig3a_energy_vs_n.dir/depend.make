# Empty dependencies file for fig3a_energy_vs_n.
# This may be replaced when dependencies are built.
