# Empty compiler generated dependencies file for thm41_lower_bound.
# This may be replaced when dependencies are built.
