file(REMOVE_RECURSE
  "CMakeFiles/thm41_lower_bound.dir/thm41_lower_bound.cpp.o"
  "CMakeFiles/thm41_lower_bound.dir/thm41_lower_bound.cpp.o.d"
  "thm41_lower_bound"
  "thm41_lower_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm41_lower_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
