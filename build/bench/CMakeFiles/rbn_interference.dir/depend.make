# Empty dependencies file for rbn_interference.
# This may be replaced when dependencies are built.
