file(REMOVE_RECURSE
  "CMakeFiles/rbn_interference.dir/rbn_interference.cpp.o"
  "CMakeFiles/rbn_interference.dir/rbn_interference.cpp.o.d"
  "rbn_interference"
  "rbn_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbn_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
