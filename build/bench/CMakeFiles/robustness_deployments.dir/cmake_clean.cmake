file(REMOVE_RECURSE
  "CMakeFiles/robustness_deployments.dir/robustness_deployments.cpp.o"
  "CMakeFiles/robustness_deployments.dir/robustness_deployments.cpp.o.d"
  "robustness_deployments"
  "robustness_deployments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_deployments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
