# Empty dependencies file for robustness_deployments.
# This may be replaced when dependencies are built.
