file(REMOVE_RECURSE
  "CMakeFiles/fig3b_loglog_slopes.dir/fig3b_loglog_slopes.cpp.o"
  "CMakeFiles/fig3b_loglog_slopes.dir/fig3b_loglog_slopes.cpp.o.d"
  "fig3b_loglog_slopes"
  "fig3b_loglog_slopes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_loglog_slopes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
