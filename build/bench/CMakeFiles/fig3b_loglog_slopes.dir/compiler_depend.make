# Empty compiler generated dependencies file for fig3b_loglog_slopes.
# This may be replaced when dependencies are built.
