file(REMOVE_RECURSE
  "CMakeFiles/thm51_connectivity.dir/thm51_connectivity.cpp.o"
  "CMakeFiles/thm51_connectivity.dir/thm51_connectivity.cpp.o.d"
  "thm51_connectivity"
  "thm51_connectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm51_connectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
