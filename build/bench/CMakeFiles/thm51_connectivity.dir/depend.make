# Empty dependencies file for thm51_connectivity.
# This may be replaced when dependencies are built.
