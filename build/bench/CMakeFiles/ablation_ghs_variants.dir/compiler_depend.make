# Empty compiler generated dependencies file for ablation_ghs_variants.
# This may be replaced when dependencies are built.
