file(REMOVE_RECURSE
  "CMakeFiles/ablation_ghs_variants.dir/ablation_ghs_variants.cpp.o"
  "CMakeFiles/ablation_ghs_variants.dir/ablation_ghs_variants.cpp.o.d"
  "ablation_ghs_variants"
  "ablation_ghs_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ghs_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
