# Empty dependencies file for steele_constants.
# This may be replaced when dependencies are built.
