file(REMOVE_RECURSE
  "CMakeFiles/steele_constants.dir/steele_constants.cpp.o"
  "CMakeFiles/steele_constants.dir/steele_constants.cpp.o.d"
  "steele_constants"
  "steele_constants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steele_constants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
