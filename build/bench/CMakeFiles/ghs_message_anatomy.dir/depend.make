# Empty dependencies file for ghs_message_anatomy.
# This may be replaced when dependencies are built.
