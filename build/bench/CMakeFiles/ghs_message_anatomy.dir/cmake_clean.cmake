file(REMOVE_RECURSE
  "CMakeFiles/ghs_message_anatomy.dir/ghs_message_anatomy.cpp.o"
  "CMakeFiles/ghs_message_anatomy.dir/ghs_message_anatomy.cpp.o.d"
  "ghs_message_anatomy"
  "ghs_message_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ghs_message_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
