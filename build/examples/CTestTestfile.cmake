# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart" "--n=300")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_sensor_aggregation]=] "/root/repo/build/examples/sensor_aggregation" "--n=300")
set_tests_properties([=[example_sensor_aggregation]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_broadcast_tree]=] "/root/repo/build/examples/broadcast_tree" "--n=300")
set_tests_properties([=[example_broadcast_tree]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_percolation_explorer]=] "/root/repo/build/examples/percolation_explorer" "--n=1000" "--sweep")
set_tests_properties([=[example_percolation_explorer]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_topology_control]=] "/root/repo/build/examples/topology_control" "--n=300" "--pairs=30")
set_tests_properties([=[example_topology_control]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_failure_recovery]=] "/root/repo/build/examples/failure_recovery" "--n=500")
set_tests_properties([=[example_failure_recovery]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_emst_cli]=] "/root/repo/build/examples/emst_cli" "--algo=ghs,ghs-cached,sync,sync-probe,eopt,connt,connt-axis,kpnnt" "--n=200" "--format=json")
set_tests_properties([=[example_emst_cli]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_draw_figures]=] "/root/repo/build/examples/draw_figures" "--n=400" "--outdir=/root/repo/build/examples/figures")
set_tests_properties([=[example_draw_figures]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_mobility]=] "/root/repo/build/examples/mobility" "--n=400" "--epochs=3")
set_tests_properties([=[example_mobility]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
