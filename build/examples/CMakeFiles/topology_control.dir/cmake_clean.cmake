file(REMOVE_RECURSE
  "CMakeFiles/topology_control.dir/topology_control.cpp.o"
  "CMakeFiles/topology_control.dir/topology_control.cpp.o.d"
  "topology_control"
  "topology_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
