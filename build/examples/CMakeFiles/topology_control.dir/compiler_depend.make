# Empty compiler generated dependencies file for topology_control.
# This may be replaced when dependencies are built.
