# Empty dependencies file for percolation_explorer.
# This may be replaced when dependencies are built.
