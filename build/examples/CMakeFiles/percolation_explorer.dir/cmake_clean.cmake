file(REMOVE_RECURSE
  "CMakeFiles/percolation_explorer.dir/percolation_explorer.cpp.o"
  "CMakeFiles/percolation_explorer.dir/percolation_explorer.cpp.o.d"
  "percolation_explorer"
  "percolation_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/percolation_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
