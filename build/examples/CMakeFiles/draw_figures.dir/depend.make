# Empty dependencies file for draw_figures.
# This may be replaced when dependencies are built.
