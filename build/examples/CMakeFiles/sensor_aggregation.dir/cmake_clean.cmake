file(REMOVE_RECURSE
  "CMakeFiles/sensor_aggregation.dir/sensor_aggregation.cpp.o"
  "CMakeFiles/sensor_aggregation.dir/sensor_aggregation.cpp.o.d"
  "sensor_aggregation"
  "sensor_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
