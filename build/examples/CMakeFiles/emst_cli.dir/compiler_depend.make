# Empty compiler generated dependencies file for emst_cli.
# This may be replaced when dependencies are built.
