file(REMOVE_RECURSE
  "CMakeFiles/emst_cli.dir/emst_cli.cpp.o"
  "CMakeFiles/emst_cli.dir/emst_cli.cpp.o.d"
  "emst_cli"
  "emst_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emst_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
