
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/emst_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/emst_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/emst_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/emst_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/emst_eopt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/emst_percolation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/emst_ghs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/emst_nnt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/emst_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/emst_rgg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/emst_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/emst_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/emst_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/emst_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
