# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_rng_test[1]_include.cmake")
include("/root/repo/build/tests/support_stats_test[1]_include.cmake")
include("/root/repo/build/tests/support_table_cli_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/geometry_test[1]_include.cmake")
include("/root/repo/build/tests/deployments_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/gabriel_test[1]_include.cmake")
include("/root/repo/build/tests/spatial_test[1]_include.cmake")
include("/root/repo/build/tests/kdtree_test[1]_include.cmake")
include("/root/repo/build/tests/rgg_test[1]_include.cmake")
include("/root/repo/build/tests/percolation_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/collectives_test[1]_include.cmake")
include("/root/repo/build/tests/ghs_classic_test[1]_include.cmake")
include("/root/repo/build/tests/ghs_async_test[1]_include.cmake")
include("/root/repo/build/tests/ghs_sync_test[1]_include.cmake")
include("/root/repo/build/tests/mac_rbn_test[1]_include.cmake")
include("/root/repo/build/tests/kp_nnt_test[1]_include.cmake")
include("/root/repo/build/tests/eopt_test[1]_include.cmake")
include("/root/repo/build/tests/nnt_test[1]_include.cmake")
include("/root/repo/build/tests/viz_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
