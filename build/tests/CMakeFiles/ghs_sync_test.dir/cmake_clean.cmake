file(REMOVE_RECURSE
  "CMakeFiles/ghs_sync_test.dir/ghs_sync_test.cpp.o"
  "CMakeFiles/ghs_sync_test.dir/ghs_sync_test.cpp.o.d"
  "ghs_sync_test"
  "ghs_sync_test.pdb"
  "ghs_sync_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ghs_sync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
