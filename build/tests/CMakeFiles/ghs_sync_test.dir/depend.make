# Empty dependencies file for ghs_sync_test.
# This may be replaced when dependencies are built.
