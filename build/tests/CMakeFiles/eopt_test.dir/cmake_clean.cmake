file(REMOVE_RECURSE
  "CMakeFiles/eopt_test.dir/eopt_test.cpp.o"
  "CMakeFiles/eopt_test.dir/eopt_test.cpp.o.d"
  "eopt_test"
  "eopt_test.pdb"
  "eopt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eopt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
