# Empty dependencies file for eopt_test.
# This may be replaced when dependencies are built.
