file(REMOVE_RECURSE
  "CMakeFiles/gabriel_test.dir/gabriel_test.cpp.o"
  "CMakeFiles/gabriel_test.dir/gabriel_test.cpp.o.d"
  "gabriel_test"
  "gabriel_test.pdb"
  "gabriel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gabriel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
