# Empty dependencies file for gabriel_test.
# This may be replaced when dependencies are built.
