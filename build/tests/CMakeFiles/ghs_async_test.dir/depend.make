# Empty dependencies file for ghs_async_test.
# This may be replaced when dependencies are built.
