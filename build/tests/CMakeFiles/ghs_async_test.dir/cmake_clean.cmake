file(REMOVE_RECURSE
  "CMakeFiles/ghs_async_test.dir/ghs_async_test.cpp.o"
  "CMakeFiles/ghs_async_test.dir/ghs_async_test.cpp.o.d"
  "ghs_async_test"
  "ghs_async_test.pdb"
  "ghs_async_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ghs_async_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
