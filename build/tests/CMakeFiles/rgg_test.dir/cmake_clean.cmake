file(REMOVE_RECURSE
  "CMakeFiles/rgg_test.dir/rgg_test.cpp.o"
  "CMakeFiles/rgg_test.dir/rgg_test.cpp.o.d"
  "rgg_test"
  "rgg_test.pdb"
  "rgg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
