# Empty compiler generated dependencies file for rgg_test.
# This may be replaced when dependencies are built.
