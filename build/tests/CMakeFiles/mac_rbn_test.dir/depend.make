# Empty dependencies file for mac_rbn_test.
# This may be replaced when dependencies are built.
