file(REMOVE_RECURSE
  "CMakeFiles/mac_rbn_test.dir/mac_rbn_test.cpp.o"
  "CMakeFiles/mac_rbn_test.dir/mac_rbn_test.cpp.o.d"
  "mac_rbn_test"
  "mac_rbn_test.pdb"
  "mac_rbn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_rbn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
