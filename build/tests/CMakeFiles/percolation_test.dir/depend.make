# Empty dependencies file for percolation_test.
# This may be replaced when dependencies are built.
