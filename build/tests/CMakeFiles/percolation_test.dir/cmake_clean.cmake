file(REMOVE_RECURSE
  "CMakeFiles/percolation_test.dir/percolation_test.cpp.o"
  "CMakeFiles/percolation_test.dir/percolation_test.cpp.o.d"
  "percolation_test"
  "percolation_test.pdb"
  "percolation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/percolation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
