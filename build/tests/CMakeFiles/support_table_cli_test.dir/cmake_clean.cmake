file(REMOVE_RECURSE
  "CMakeFiles/support_table_cli_test.dir/support_table_cli_test.cpp.o"
  "CMakeFiles/support_table_cli_test.dir/support_table_cli_test.cpp.o.d"
  "support_table_cli_test"
  "support_table_cli_test.pdb"
  "support_table_cli_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_table_cli_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
