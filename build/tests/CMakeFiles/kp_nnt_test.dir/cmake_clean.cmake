file(REMOVE_RECURSE
  "CMakeFiles/kp_nnt_test.dir/kp_nnt_test.cpp.o"
  "CMakeFiles/kp_nnt_test.dir/kp_nnt_test.cpp.o.d"
  "kp_nnt_test"
  "kp_nnt_test.pdb"
  "kp_nnt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kp_nnt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
