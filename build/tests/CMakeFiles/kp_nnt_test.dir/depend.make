# Empty dependencies file for kp_nnt_test.
# This may be replaced when dependencies are built.
