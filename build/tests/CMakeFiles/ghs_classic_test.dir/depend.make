# Empty dependencies file for ghs_classic_test.
# This may be replaced when dependencies are built.
