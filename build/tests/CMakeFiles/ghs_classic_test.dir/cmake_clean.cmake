file(REMOVE_RECURSE
  "CMakeFiles/ghs_classic_test.dir/ghs_classic_test.cpp.o"
  "CMakeFiles/ghs_classic_test.dir/ghs_classic_test.cpp.o.d"
  "ghs_classic_test"
  "ghs_classic_test.pdb"
  "ghs_classic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ghs_classic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
