# Empty compiler generated dependencies file for deployments_test.
# This may be replaced when dependencies are built.
