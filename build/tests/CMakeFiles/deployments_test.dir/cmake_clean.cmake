file(REMOVE_RECURSE
  "CMakeFiles/deployments_test.dir/deployments_test.cpp.o"
  "CMakeFiles/deployments_test.dir/deployments_test.cpp.o.d"
  "deployments_test"
  "deployments_test.pdb"
  "deployments_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deployments_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
