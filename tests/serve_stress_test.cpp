// Concurrent-connection stress for the serve daemon (docs/SERVE.md).
//
// N client threads hammer ONE session over loopback with interleaved
// batched mutations — adds, moves, removes, commits, queries — in parallel.
// The server is deliberately single-threaded (one poll loop owns the
// session, so there is no locking to get wrong), which makes this test the
// proof: under heavily interleaved concurrent traffic, every request gets a
// well-formed reply on its own connection, ids never collide, and because
// the fixture sets `verify_after_commit`, EVERY commit any thread triggers
// is differential-checked against `graph::kruskal_msf` inside the session —
// an exactness failure aborts the server thread and fails the test.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "emst/geometry/sampling.hpp"
#include "emst/serve/client.hpp"
#include "emst/serve/server.hpp"
#include "emst/support/rng.hpp"

namespace emst::serve {
namespace {

constexpr std::size_t kBaseNodes = 48;
constexpr std::size_t kClients = 6;
constexpr std::size_t kOpsPerClient = 120;

class StressFixture {
 public:
  explicit StressFixture(ServerConfig cfg) {
    support::Rng rng(35);
    SessionConfig scfg;
    scfg.run.driver = Driver::kEopt;
    scfg.verify_after_commit = true;  // kruskal_msf check inside EVERY commit
    server_ = std::make_unique<Server>(
        Session(geometry::uniform_points(kBaseNodes, rng), std::move(scfg)),
        cfg);
    if (!server_->ok()) return;
    thread_ = std::thread([this] { server_->serve(); });
  }

  ~StressFixture() {
    if (thread_.joinable()) {
      Client c;
      if (c.connect(server_->port())) (void)c.shutdown_server();
      thread_.join();
    }
  }

  [[nodiscard]] bool ok() const { return server_->ok(); }
  [[nodiscard]] std::uint16_t port() const { return server_->port(); }

 private:
  std::unique_ptr<Server> server_;
  std::thread thread_;
};

#define SKIP_IF_NO_SOCKET(fixture)                                       \
  if (!(fixture).ok()) GTEST_SKIP() << "cannot bind loopback socket in " \
                                       "this environment"

/// One client thread's workload: a private mix of mutations against nodes
/// it created itself (ids are server-assigned, so territories can never
/// collide across threads), explicit commits, and tree/stats queries.
/// Every helper's reply is checked; any torn frame or cross-connection
/// response bleed shows up as a failed expectation here.
void client_workload(std::uint16_t port, std::uint64_t seed,
                     std::atomic<int>& failures,
                     std::atomic<std::uint64_t>& commits_issued) {
  Client client;
  if (!client.connect(port)) {
    ++failures;
    return;
  }
  if (!client.hello().has_value()) {
    ++failures;
    return;
  }
  support::Rng rng(seed);
  std::vector<graph::NodeId> mine;
  std::set<graph::NodeId> seen;
  for (std::size_t op = 0; op < kOpsPerClient; ++op) {
    const double roll = rng.uniform();
    if (roll < 0.45 || mine.empty()) {
      const graph::NodeId id =
          client.add_node(rng.uniform(), rng.uniform());
      if (id == graph::kNoNode || !seen.insert(id).second) {
        // A duplicate id here means two connections were handed the same
        // node — exactly the race this test exists to rule out.
        ++failures;
        return;
      }
      mine.push_back(id);
    } else if (roll < 0.70) {
      const std::size_t pick = rng.uniform_int(mine.size());
      if (!client.move_node(mine[pick], rng.uniform(), rng.uniform())) {
        ++failures;
        return;
      }
    } else if (roll < 0.85) {
      const std::size_t pick = rng.uniform_int(mine.size());
      if (!client.remove_node(mine[pick])) {
        ++failures;
        return;
      }
      mine.erase(mine.begin() + static_cast<std::ptrdiff_t>(pick));
    } else if (roll < 0.95) {
      if (!client.commit().has_value()) {
        ++failures;
        return;
      }
      ++commits_issued;
    } else {
      // Queries must always see a coherent snapshot (never a half-applied
      // batch): a well-formed summary with a connected-forest edge count.
      const auto tree = client.query_tree();
      if (!tree.has_value() || tree->edges >= tree->nodes) {
        ++failures;
        return;
      }
    }
  }
  if (!client.commit().has_value()) {
    ++failures;
    return;
  }
  ++commits_issued;
}

void run_stress(ServerConfig cfg) {
  StressFixture daemon(std::move(cfg));
  SKIP_IF_NO_SOCKET(daemon);

  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> commits_issued{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back(client_workload, daemon.port(), 0xace0ULL + 31 * c,
                         std::ref(failures), std::ref(commits_issued));
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);
  EXPECT_GT(commits_issued.load(), 0u);

  // Post-mortem from a fresh connection: the session absorbed every
  // surviving mutation, and one final verified commit still passes.
  Client client;
  ASSERT_TRUE(client.connect(daemon.port()));
  ASSERT_TRUE(client.commit().has_value());
  const auto stats = client.query_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_GE(stats->commits, commits_issued.load());
  const auto tree = client.query_tree();
  ASSERT_TRUE(tree.has_value());
  EXPECT_GT(tree->nodes, 0u);
  EXPECT_LT(tree->edges, tree->nodes);
}

TEST(ServeStress, ConcurrentClientsExplicitCommits) {
  // Quiet-batch timer off: commits happen exactly when a client asks (or
  // when max_batch tips) — the highest commit rate the protocol produces.
  ServerConfig cfg;
  cfg.batch_timeout_ms = -1;
  run_stress(cfg);
}

TEST(ServeStress, ConcurrentClientsSmallAutoBatches) {
  // max_batch=5 forces frequent auto-commits mid-stream, interleaving
  // verified rebuild work between every few mutations from ANY client.
  ServerConfig cfg;
  cfg.batch_timeout_ms = -1;
  cfg.max_batch = 5;
  run_stress(cfg);
}

TEST(ServeStress, ConcurrentClientsBatchTimer) {
  // A short quiet-batch timer commits concurrently with incoming traffic —
  // the poll-timeout path racing the request path onto one session.
  ServerConfig cfg;
  cfg.batch_timeout_ms = 1;
  run_stress(cfg);
}

}  // namespace
}  // namespace emst::serve
