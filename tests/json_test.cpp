// Tests for the streaming JSON writer.
#include <gtest/gtest.h>

#include <sstream>

#include "emst/support/json.hpp"

namespace emst::support {
namespace {

TEST(Json, FlatObject) {
  std::ostringstream os;
  JsonWriter json(os, /*pretty=*/false);
  json.begin_object();
  json.key("n").value(2000);
  json.key("energy").value(42.5);
  json.key("exact").value(true);
  json.end_object();
  EXPECT_TRUE(json.complete());
  EXPECT_EQ(os.str(), R"({"n":2000,"energy":42.5,"exact":true})");
}

TEST(Json, NestedArrayOfObjects) {
  std::ostringstream os;
  JsonWriter json(os, false);
  json.begin_object();
  json.key("runs").begin_array();
  json.begin_object().key("a").value(1).end_object();
  json.begin_object().key("a").value(2).end_object();
  json.end_array();
  json.end_object();
  EXPECT_EQ(os.str(), R"({"runs":[{"a":1},{"a":2}]})");
}

TEST(Json, EmptyContainers) {
  std::ostringstream os;
  JsonWriter json(os, false);
  json.begin_object();
  json.key("list").begin_array().end_array();
  json.key("obj").begin_object().end_object();
  json.end_object();
  EXPECT_EQ(os.str(), R"({"list":[],"obj":{}})");
}

TEST(Json, StringEscaping) {
  std::ostringstream os;
  JsonWriter json(os, false);
  json.begin_object();
  json.key("text").value("a\"b\\c\nd\te");
  json.end_object();
  EXPECT_EQ(os.str(), "{\"text\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(Json, ControlCharacterEscaped) {
  std::ostringstream os;
  JsonWriter json(os, false);
  json.begin_array();
  json.value(std::string_view("\x01", 1));
  json.end_array();
  EXPECT_EQ(os.str(), "[\"\\u0001\"]");
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  JsonWriter json(os, false);
  json.begin_array();
  json.value(std::numeric_limits<double>::infinity());
  json.value(std::numeric_limits<double>::quiet_NaN());
  json.value(1.5);
  json.end_array();
  EXPECT_EQ(os.str(), "[null,null,1.5]");
}

TEST(Json, NullAndBareArrayValues) {
  std::ostringstream os;
  JsonWriter json(os, false);
  json.begin_array();
  json.null();
  json.value("x");
  json.value(false);
  json.end_array();
  EXPECT_EQ(os.str(), R"([null,"x",false])");
  EXPECT_TRUE(json.complete());
}

TEST(Json, PrettyPrintIndents) {
  std::ostringstream os;
  JsonWriter json(os, true);
  json.begin_object();
  json.key("a").value(1);
  json.end_object();
  EXPECT_EQ(os.str(), "{\n  \"a\": 1\n}");
}

TEST(Json, IncompleteIsDetectable) {
  std::ostringstream os;
  JsonWriter json(os, false);
  json.begin_object();
  EXPECT_FALSE(json.complete());
}

TEST(Json, MismatchedEndAborts) {
  std::ostringstream os;
  JsonWriter json(os, false);
  json.begin_object();
  EXPECT_DEATH(json.end_array(), "matching");
}

TEST(Json, BareValueInObjectAborts) {
  std::ostringstream os;
  JsonWriter json(os, false);
  json.begin_object();
  EXPECT_DEATH(json.value(1), "requires key");
}

}  // namespace
}  // namespace emst::support
