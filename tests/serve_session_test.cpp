// Differential tests for the serve Session (serve/session.hpp): after every
// commit the maintained tree must equal graph::kruskal_msf over the alive
// deployment at the operating radius — across seeds, mutation mixes, both
// topology backends, and the incremental/rebuild boundary.
#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "emst/geometry/sampling.hpp"
#include "emst/graph/edge.hpp"
#include "emst/serve/session.hpp"
#include "emst/support/rng.hpp"

namespace emst::serve {
namespace {

using geometry::Point2;

SessionConfig exact_config(bool implicit) {
  SessionConfig cfg;
  cfg.run.driver = Driver::kEopt;
  cfg.implicit_backend = implicit;
  return cfg;
}

std::vector<Point2> deployment(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  return geometry::uniform_points(n, rng);
}

/// The exactness contract, checked from outside the session (the built-in
/// verify_after_commit assert is the belt; this is the suspenders).
void expect_exact(const Session& s) {
  const std::vector<graph::Edge> ref = s.reference_msf();
  ASSERT_EQ(s.tree().size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(s.tree()[i], ref[i]) << "edge " << i;
    EXPECT_DOUBLE_EQ(s.tree()[i].w, ref[i].w) << "edge " << i;
  }
}

/// Pick a random committed-alive id, or kNoNode if none.
NodeId random_alive(const Session& s, support::Rng& rng) {
  if (s.alive_count() == 0) return graph::kNoNode;
  for (int tries = 0; tries < 256; ++tries) {
    const auto id =
        static_cast<NodeId>(rng.uniform_int(s.capacity()));
    if (s.alive(id)) return id;
  }
  return graph::kNoNode;
}

TEST(ServeSession, InitialBuildMatchesKruskal) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    Session s(deployment(150, seed), exact_config(false));
    EXPECT_EQ(s.alive_count(), 150u);
    EXPECT_GT(s.radius(), 0.0);
    expect_exact(s);
  }
}

TEST(ServeSession, RandomChurnStaysExact) {
  for (const bool implicit : {false, true}) {
    for (const std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
      Session s(deployment(120, seed), exact_config(implicit));
      support::Rng rng(seed * 1000 + 7);
      for (int round = 0; round < 8; ++round) {
        const int ops = 1 + static_cast<int>(rng.uniform_int(6));
        for (int k = 0; k < ops; ++k) {
          const std::uint64_t pick = rng.uniform_int(3);
          if (pick == 0) {
            EXPECT_NE(s.queue_add({rng.uniform(), rng.uniform()}),
                      graph::kNoNode);
          } else if (pick == 1) {
            const NodeId id = random_alive(s, rng);
            if (id != graph::kNoNode) (void)s.queue_remove(id);
          } else {
            const NodeId id = random_alive(s, rng);
            if (id != graph::kNoNode)
              (void)s.queue_move(id, {rng.uniform(), rng.uniform()});
          }
        }
        const CommitOutcome out = s.commit();
        EXPECT_GT(out.nodes_touched, 0u);
        expect_exact(s);
      }
    }
  }
}

TEST(ServeSession, RemoveOnlyBatchesStayExact) {
  // Pure removals exercise the Borůvka repair path (torn fragments, passive
  // giants) with no Chin–Houck insertions to mask a wrong reconnect.
  Session s(deployment(140, 5), exact_config(false));
  support::Rng rng(99);
  for (int round = 0; round < 10 && s.alive_count() > 20; ++round) {
    for (int k = 0; k < 4; ++k) {
      const NodeId id = random_alive(s, rng);
      if (id != graph::kNoNode) (void)s.queue_remove(id);
    }
    (void)s.commit();
    expect_exact(s);
  }
}

TEST(ServeSession, MoveOnlyBatchesStayExact) {
  // Moves are a removal and an insertion of the same id in one commit.
  Session s(deployment(100, 6), exact_config(false));
  support::Rng rng(123);
  for (int round = 0; round < 8; ++round) {
    for (int k = 0; k < 3; ++k) {
      const NodeId id = random_alive(s, rng);
      if (id != graph::kNoNode) {
        EXPECT_TRUE(s.queue_move(id, {rng.uniform(), rng.uniform()}));
      }
    }
    (void)s.commit();
    expect_exact(s);
  }
}

TEST(ServeSession, IdsAreMonotoneAndNeverReused) {
  Session s(deployment(10, 1), exact_config(false));
  const NodeId a = s.queue_add({0.5, 0.5});
  const NodeId b = s.queue_add({0.25, 0.25});
  EXPECT_EQ(a, 10u);
  EXPECT_EQ(b, 11u);
  (void)s.commit();
  ASSERT_TRUE(s.queue_remove(a));
  (void)s.commit();
  EXPECT_FALSE(s.alive(a));
  // The freed slot is never handed out again.
  EXPECT_EQ(s.queue_add({0.75, 0.75}), 12u);
  EXPECT_EQ(s.capacity(), 13u);
}

TEST(ServeSession, QueueValidation) {
  Session s(deployment(20, 2), exact_config(false));
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(s.queue_add({inf, 0.0}), graph::kNoNode);
  EXPECT_EQ(s.queue_add({0.0, nan}), graph::kNoNode);
  EXPECT_FALSE(s.queue_remove(999));
  EXPECT_FALSE(s.queue_move(999, {0.1, 0.1}));
  EXPECT_FALSE(s.queue_move(3, {nan, 0.1}));

  // add → remove in the same batch cancels out entirely.
  const NodeId fresh = s.queue_add({0.5, 0.5});
  ASSERT_NE(fresh, graph::kNoNode);
  EXPECT_TRUE(s.queue_remove(fresh));
  EXPECT_FALSE(s.queue_remove(fresh));  // already gone from the batch
  // remove → further ops on the id are invalid within the batch.
  ASSERT_TRUE(s.queue_remove(4));
  EXPECT_FALSE(s.queue_remove(4));
  EXPECT_FALSE(s.queue_move(4, {0.2, 0.2}));

  const CommitOutcome out = s.commit();
  EXPECT_EQ(s.alive_count(), 19u);  // only the remove of 4 survived
  EXPECT_FALSE(s.alive(4));
  EXPECT_GE(out.admitted, 1u);
  expect_exact(s);
}

TEST(ServeSession, EmptyCommitIsANoOp) {
  Session s(deployment(30, 3), exact_config(false));
  const std::vector<graph::Edge> before = s.tree();
  const CommitOutcome out = s.commit();
  EXPECT_EQ(out.admitted, 0u);
  EXPECT_FALSE(out.rebuilt);
  EXPECT_EQ(s.tree(), before);
}

TEST(ServeSession, SmallBatchRepairIsLocal) {
  // The whole point of the incremental path: a constant-size batch on a
  // large deployment must not touch a constant fraction of it.
  Session s(deployment(2000, 4), exact_config(false));
  ASSERT_TRUE(s.queue_remove(17));
  const NodeId fresh = s.queue_add({0.5, 0.5});
  ASSERT_NE(fresh, graph::kNoNode);
  const CommitOutcome out = s.commit();
  EXPECT_FALSE(out.rebuilt);
  EXPECT_GT(out.nodes_touched, 0u);
  EXPECT_LT(out.nodes_touched, s.alive_count() / 4);
  expect_exact(s);
}

TEST(ServeSession, ChurnTriggersRebuild) {
  SessionConfig cfg = exact_config(false);
  cfg.rebuild_churn_fraction = 0.05;  // rebuild after >5% churn
  Session s(deployment(100, 7), cfg);
  support::Rng rng(7);
  for (int k = 0; k < 10; ++k)
    ASSERT_NE(s.queue_add({rng.uniform(), rng.uniform()}), graph::kNoNode);
  const CommitOutcome out = s.commit();
  EXPECT_TRUE(out.rebuilt);
  EXPECT_EQ(s.stats().rebuilds, 1u);
  expect_exact(s);
}

TEST(ServeSession, RadiusDriftTriggersRebuild) {
  // Halving the population moves the connectivity radius well past the
  // drift tolerance even though churn per batch stays under the fraction.
  SessionConfig cfg = exact_config(false);
  cfg.rebuild_churn_fraction = 10.0;  // churn alone never triggers
  cfg.rebuild_radius_drift = 0.10;
  Session s(deployment(200, 8), cfg);
  const double r0 = s.radius();
  support::Rng rng(8);
  bool rebuilt = false;
  while (s.alive_count() > 50 && !rebuilt) {
    for (int k = 0; k < 10; ++k) {
      const NodeId id = random_alive(s, rng);
      if (id != graph::kNoNode) (void)s.queue_remove(id);
    }
    rebuilt = s.commit().rebuilt;
    expect_exact(s);
  }
  EXPECT_TRUE(rebuilt);
  EXPECT_GT(s.radius(), r0);
}

TEST(ServeSession, StatsAccumulate) {
  Session s(deployment(50, 9), exact_config(false));
  ASSERT_NE(s.queue_add({0.1, 0.9}), graph::kNoNode);
  (void)s.commit();
  ASSERT_TRUE(s.queue_remove(0));
  (void)s.commit();
  const SessionStats& st = s.stats();
  EXPECT_EQ(st.commits, 2u);
  EXPECT_EQ(st.admitted, 2u);
  EXPECT_GT(st.nodes_touched, 0u);
}

TEST(ServeSession, BackendsAgreeBitwise) {
  // The rebuild path must be backend-independent (docs/PERF.md): same
  // session trace on CSR and implicit backends → identical trees.
  SessionConfig a = exact_config(false);
  SessionConfig b = exact_config(true);
  a.rebuild_churn_fraction = b.rebuild_churn_fraction = 0.0;  // force rebuilds
  Session sa(deployment(120, 10), a);
  Session sb(deployment(120, 10), b);
  support::Rng rng(10);
  for (int round = 0; round < 4; ++round) {
    const Point2 p{rng.uniform(), rng.uniform()};
    const auto victim = static_cast<NodeId>(rng.uniform_int(60));
    ASSERT_NE(sa.queue_add(p), graph::kNoNode);
    ASSERT_NE(sb.queue_add(p), graph::kNoNode);
    if (sa.alive(victim) && sb.alive(victim)) {
      ASSERT_TRUE(sa.queue_remove(victim));
      ASSERT_TRUE(sb.queue_remove(victim));
    }
    EXPECT_TRUE(sa.commit().rebuilt);
    EXPECT_TRUE(sb.commit().rebuilt);
    ASSERT_EQ(sa.tree().size(), sb.tree().size());
    for (std::size_t i = 0; i < sa.tree().size(); ++i)
      EXPECT_EQ(sa.tree()[i], sb.tree()[i]);
  }
}

TEST(ServeSession, VerifyAfterCommitModeRuns) {
  SessionConfig cfg = exact_config(false);
  cfg.verify_after_commit = true;  // the session asserts exactness itself
  Session s(deployment(80, 11), cfg);
  support::Rng rng(11);
  for (int round = 0; round < 3; ++round) {
    ASSERT_NE(s.queue_add({rng.uniform(), rng.uniform()}), graph::kNoNode);
    const NodeId id = random_alive(s, rng);
    if (id != graph::kNoNode) (void)s.queue_remove(id);
    (void)s.commit();
  }
  expect_exact(s);
}

}  // namespace
}  // namespace emst::serve
