// Tests for the site-percolation cell field and the empirical Thm 5.2
// analysis.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "emst/geometry/sampling.hpp"
#include "emst/percolation/analysis.hpp"
#include "emst/percolation/cells.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/rgg/rgg.hpp"
#include "emst/support/rng.hpp"
#include "emst/support/stats.hpp"

namespace emst::percolation {
namespace {

TEST(CellField, PopulationsSumToN) {
  support::Rng rng(107);
  const auto points = geometry::uniform_points(3000, rng);
  const CellField field(points, rgg::percolation_radius(3000));
  std::size_t total = 0;
  for (std::size_t cy = 0; cy < field.side(); ++cy)
    for (std::size_t cx = 0; cx < field.side(); ++cx)
      total += field.population(cx, cy);
  EXPECT_EQ(total, 3000u);
}

TEST(CellField, GeometryMatchesRadius) {
  support::Rng rng(109);
  const std::size_t n = 1000;
  const double r = rgg::percolation_radius(n, 1.4);
  const auto points = geometry::uniform_points(n, rng);
  const CellField field(points, r);
  // Cell side ≈ r/2 (floor to integer grid), so side count ≈ 2/r.
  EXPECT_NEAR(static_cast<double>(field.side()), 2.0 / r, 2.0);
  EXPECT_NEAR(field.density_parameter(), 1.4 * 1.4, 1e-9);
  EXPECT_NEAR(field.good_threshold(), 1.4 * 1.4 / 8.0, 1e-9);
}

TEST(CellField, CellOfRoundTrips) {
  const std::vector<geometry::Point2> points = {{0.01, 0.01}, {0.99, 0.99}};
  const CellField field(points, 0.2);
  const auto [ax, ay] = field.cell_of(points[0]);
  EXPECT_EQ(ax, 0u);
  EXPECT_EQ(ay, 0u);
  const auto [bx, by] = field.cell_of(points[1]);
  EXPECT_EQ(bx, field.side() - 1);
  EXPECT_EQ(by, field.side() - 1);
  EXPECT_EQ(field.population(ax, ay), 1u);
}

TEST(CellField, GoodFractionIncreasesWithDensity) {
  // Lemma 5.2: p_c → 1 as c → ∞. Compare factor 1.0 vs 2.5 at fixed n.
  support::Rng rng(113);
  const std::size_t n = 20000;
  const auto points = geometry::uniform_points(n, rng);
  const CellField sparse(points, rgg::percolation_radius(n, 1.0));
  const CellField dense(points, rgg::percolation_radius(n, 2.5));
  EXPECT_GT(dense.good_fraction(), sparse.good_fraction());
  EXPECT_GT(dense.good_fraction(), 0.75);
}

TEST(CellField, ClusterLabelsConsistent) {
  support::Rng rng(127);
  const std::size_t n = 4000;
  const auto points = geometry::uniform_points(n, rng);
  const CellField field(points, rgg::percolation_radius(n, 1.4));
  std::size_t clusters = 0;
  const auto labels = field.good_clusters(clusters);
  ASSERT_EQ(labels.size(), field.cell_count());
  std::size_t labeled = 0;
  for (std::size_t cell = 0; cell < labels.size(); ++cell) {
    const std::size_t cx = cell % field.side();
    const std::size_t cy = cell / field.side();
    if (labels[cell] != static_cast<std::size_t>(-1)) {
      EXPECT_LT(labels[cell], clusters);
      EXPECT_TRUE(field.good(cx, cy));
      ++labeled;
    } else {
      EXPECT_FALSE(field.good(cx, cy));
    }
  }
  EXPECT_GT(labeled, 0u);
}

TEST(CellField, ComplementClustersPartitionTheRest) {
  support::Rng rng(131);
  const std::size_t n = 4000;
  const auto points = geometry::uniform_points(n, rng);
  const CellField field(points, rgg::percolation_radius(n, 1.4));
  std::vector<bool> in_set(field.cell_count(), false);
  for (std::size_t i = 0; i < in_set.size(); i += 3) in_set[i] = true;
  std::size_t count = 0;
  const auto labels = field.complement_clusters(in_set, count);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (in_set[i]) {
      EXPECT_EQ(labels[i], static_cast<std::size_t>(-1));
    } else {
      EXPECT_LT(labels[i], count);
    }
  }
}

TEST(CellField, GoodFractionMatchesPoissonPrediction) {
  // A cell of side r/2 holds Binomial(n, r²/4) ≈ Poisson(c/4) nodes, so the
  // expected good fraction is P(X ≥ ⌈c/8⌉). Compare the empirical fraction
  // against the analytic tail at the paper's c = 1.4² (threshold c/8 ≈ 0.245
  // ⇒ good = "≥ 1 node" ⇒ p = 1 − e^{−c/4}).
  support::Rng rng(151);
  const std::size_t n = 40000;
  const double factor = 1.4;
  const auto points = geometry::uniform_points(n, rng);
  const CellField field(points, rgg::percolation_radius(n, factor));
  const double c = factor * factor;
  const double lambda = c / 4.0;
  // Threshold c/8 < 1 ⇒ good ⇔ population ≥ 1.
  ASSERT_LT(field.good_threshold(), 1.0);
  const double predicted = 1.0 - std::exp(-lambda);
  EXPECT_NEAR(field.good_fraction(), predicted, 0.02);
}

TEST(Analysis, PoissonAndUniformDeploymentsAgree) {
  // §V-B replaces the uniform deployment with a Poisson process "to exploit
  // the strong independence property"; Lemma 5.1 says the two coincide WHP.
  // Check the giant fraction matches between the two at the same density.
  const std::size_t n = 8000;
  const double radius = rgg::percolation_radius(n, 1.4);
  support::RunningStats uniform_giant;
  support::RunningStats poisson_giant;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    support::Rng rng(seed * 7919);
    const auto u = rgg::build_rgg(geometry::uniform_points(n, rng), radius);
    uniform_giant.add(analyze(u).giant_fraction);
    const auto p = rgg::build_rgg(
        geometry::poisson_points(static_cast<double>(n), rng), radius);
    poisson_giant.add(analyze(p).giant_fraction);
  }
  EXPECT_NEAR(uniform_giant.mean(), poisson_giant.mean(), 0.05);
}

TEST(Analysis, SupercriticalGiantEmerges) {
  // Thm 5.2 at the paper's experimental setting r = 1.4·√(1/n): a giant
  // component with a Θ(n) fraction of nodes and only small stragglers.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    support::Rng rng(seed * 1000 + 1);
    const std::size_t n = 5000;
    const auto instance = rgg::random_rgg(n, rgg::percolation_radius(n, 1.4), rng);
    const Report report = analyze(instance);
    EXPECT_GT(report.giant_fraction, 0.25) << "seed " << seed;
    // Largest non-giant component is far below the β·ln²n scale with β=4.
    EXPECT_LT(static_cast<double>(report.second_component),
              rgg::giant_threshold(n, 4.0))
        << "seed " << seed;
    EXPECT_EQ(report.n, n);
    EXPECT_GT(report.component_count, 1u);
  }
}

TEST(Analysis, SubcriticalHasNoGiant) {
  // Far below the percolation threshold the largest component is tiny.
  support::Rng rng(137);
  const std::size_t n = 5000;
  const auto instance = rgg::random_rgg(n, rgg::percolation_radius(n, 0.3), rng);
  const Report report = analyze(instance);
  EXPECT_LT(report.giant_fraction, 0.05);
}

TEST(Analysis, ConnectivityRadiusIsOneComponent) {
  support::Rng rng(139);
  const std::size_t n = 2000;
  const auto instance = rgg::random_rgg(n, rgg::connectivity_radius(n), rng);
  const Report report = analyze(instance);
  EXPECT_EQ(report.component_count, 1u);
  EXPECT_DOUBLE_EQ(report.giant_fraction, 1.0);
  EXPECT_EQ(report.second_component, 0u);
}

TEST(CriticalFactor, MatchesGilbertDiskConstant) {
  // The continuum percolation threshold for Gilbert disk graphs is a known
  // constant: critical mean degree ≈ 4.512, i.e. factor √(4.512/π) ≈ 1.20.
  // Our bisection estimate at n = 10000 must land near it.
  const double estimate = estimate_critical_factor(10000, 3, 2028, 0.3);
  EXPECT_GT(estimate, 1.0);
  EXPECT_LT(estimate, 1.4);
}

TEST(CriticalFactor, BelowThePaperExperimentalChoice) {
  // The paper runs Step 1 at factor 1.4 — validated here as supercritical.
  const double estimate = estimate_critical_factor(5000, 3, 777, 0.5);
  EXPECT_LT(estimate, 1.4);
}

TEST(RegionSamples, Lemma54CellTailDecays) {
  // Lemma 5.4: P(|S| = k) ≤ e^{−γ√k} in the supercritical phase. Pool the
  // region-size samples over several instances at a strongly supercritical
  // factor and check the survival function collapses quickly.
  std::vector<std::size_t> pooled;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    support::Rng rng(seed * 613);
    const std::size_t n = 10000;
    const auto instance = rgg::random_rgg(n, rgg::percolation_radius(n, 2.0), rng);
    const RegionSamples samples = region_samples(instance);
    pooled.insert(pooled.end(), samples.cells.begin(), samples.cells.end());
  }
  ASSERT_GT(pooled.size(), 50u);
  auto survival = [&](std::size_t k) {
    std::size_t count = 0;
    for (const std::size_t size : pooled) {
      if (size >= k) ++count;
    }
    return static_cast<double>(count) / static_cast<double>(pooled.size());
  };
  EXPECT_LT(survival(16), 0.5 * survival(4));
  EXPECT_LT(survival(64), 0.25 * survival(4) + 1e-12);
}

TEST(RegionSamples, Lemma55NodeTailDecays) {
  // Lemma 5.5: the node-population tail of a small region decays like
  // e^{−γ√h} too — in particular the mean is a small constant (the key step
  // of the expected-energy proof, Lemma 5.7).
  support::RunningStats populations;
  double max_pop = 0.0;
  for (std::uint64_t seed = 11; seed <= 18; ++seed) {
    support::Rng rng(seed * 617);
    const std::size_t n = 10000;
    const auto instance = rgg::random_rgg(n, rgg::percolation_radius(n, 2.0), rng);
    const RegionSamples samples = region_samples(instance);
    for (const std::size_t pop : samples.nodes) {
      populations.add(static_cast<double>(pop));
      max_pop = std::max(max_pop, static_cast<double>(pop));
    }
  }
  ASSERT_GT(populations.count(), 50u);
  EXPECT_LT(populations.mean(), 10.0);  // E[Σ Z_i] is a small constant
  EXPECT_LT(max_pop, rgg::giant_threshold(10000, 8.0));
}

TEST(RegionSamples, SubcriticalHasNoBackbone) {
  // Below the threshold there is no meaningful backbone; the complement is
  // essentially one giant region containing almost all nodes.
  support::Rng rng(619);
  const std::size_t n = 4000;
  const auto instance = rgg::random_rgg(n, rgg::percolation_radius(n, 0.5), rng);
  const RegionSamples samples = region_samples(instance);
  std::size_t total_nodes = 0;
  std::size_t biggest = 0;
  for (const std::size_t pop : samples.nodes) {
    total_nodes += pop;
    biggest = std::max(biggest, pop);
  }
  EXPECT_GT(biggest, n / 2);
  EXPECT_GT(total_nodes, 9 * n / 10);
}

TEST(Analysis, SmallRegionNodesBoundedByLog2Scale) {
  // The β·log²n claim: with β = 8 the bound should comfortably hold over
  // fixed seeds (WHP statement; generous β absorbs small-n effects).
  for (std::uint64_t seed = 11; seed <= 15; ++seed) {
    support::Rng rng(seed);
    const std::size_t n = 8000;
    const auto instance = rgg::random_rgg(n, rgg::percolation_radius(n, 1.4), rng);
    const Report report = analyze(instance);
    EXPECT_LT(static_cast<double>(report.second_component),
              rgg::giant_threshold(n, 8.0))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace emst::percolation
