// End-to-end integration tests: the full pipeline on shared instances,
// cross-algorithm agreements, and the paper's qualitative claims at
// experiment scale (fixed seeds, generous tolerances).
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "emst/eopt/eopt.hpp"
#include "emst/geometry/sampling.hpp"
#include "emst/ghs/classic.hpp"
#include "emst/graph/mst.hpp"
#include "emst/graph/tree_utils.hpp"
#include "emst/harness/figures.hpp"
#include "emst/nnt/connt.hpp"
#include "emst/percolation/analysis.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/rgg/rgg.hpp"
#include "emst/support/rng.hpp"

namespace emst {
namespace {

TEST(Integration, AllMstAlgorithmsAgreeOnOneInstance) {
  support::Rng rng(314159);
  const std::size_t n = 1200;
  const auto points = geometry::uniform_points(n, rng);
  const sim::Topology topo(points, rgg::connectivity_radius(n));

  const auto kruskal = graph::kruskal_msf(n, topo.graph().edges());
  const auto classic = ghs::run_classic_ghs(topo);
  const auto sync_probe = [&] {
    ghs::SyncGhsOptions o;
    o.neighbor_cache = false;
    return ghs::run_sync_ghs(topo, o);
  }();
  const auto sync_cache = ghs::run_sync_ghs(topo, {});
  const auto eopt = eopt::run_eopt(topo);

  EXPECT_TRUE(graph::same_edge_set(classic.tree, kruskal));
  EXPECT_TRUE(graph::same_edge_set(sync_probe.run.tree, kruskal));
  EXPECT_TRUE(graph::same_edge_set(sync_cache.run.tree, kruskal));
  EXPECT_TRUE(graph::same_edge_set(eopt.run.tree, kruskal));
}

TEST(Integration, EnergyHierarchyAtScale) {
  // Fig 3(a)'s qualitative content: GHS ≫ EOPT ≫ Co-NNT, on shared
  // instances, averaged over a few seeds.
  double ghs = 0.0;
  double eo = 0.0;
  double nnt = 0.0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    support::Rng rng(seed * 2718);
    const std::size_t n = 3000;
    const auto points = geometry::uniform_points(n, rng);
    const sim::Topology topo(points, rgg::connectivity_radius(n));
    ghs += ghs::run_classic_ghs(topo).totals.energy;
    eo += eopt::run_eopt(topo).run.totals.energy;
    nnt += nnt::run_connt(topo).totals.energy;
  }
  EXPECT_GT(ghs, 1.5 * eo);  // the paper's gap at n=3000 is far larger
  EXPECT_GT(eo, nnt);
}

TEST(Integration, EnergyGrowsLikeLogPowers) {
  // Fig 3(b): between n=500 and n=8000, GHS energy grows ≈ (ln 8000/ln 500)²
  // and EOPT ≈ (ln 8000/ln 500) while Co-NNT stays flat. Check growth
  // *ordering* with wide tolerances.
  auto mean3 = [&](std::size_t n, std::uint64_t base) {
    double g = 0.0;
    double e = 0.0;
    double c = 0.0;
    for (std::uint64_t s = 0; s < 3; ++s) {
      support::Rng rng(base + s);
      const auto points = geometry::uniform_points(n, rng);
      const sim::Topology topo(points, rgg::connectivity_radius(n));
      g += ghs::run_classic_ghs(topo).totals.energy;
      e += eopt::run_eopt(topo).run.totals.energy;
      c += nnt::run_connt(topo).totals.energy;
    }
    return std::array<double, 3>{g / 3, e / 3, c / 3};
  };
  const auto small = mean3(500, 10);
  const auto large = mean3(8000, 20);
  const double ghs_growth = large[0] / small[0];
  const double eopt_growth = large[1] / small[1];
  const double connt_growth = large[2] / small[2];
  EXPECT_GT(ghs_growth, eopt_growth);
  EXPECT_GT(eopt_growth, connt_growth * 0.999);
  EXPECT_LT(connt_growth, 2.0);  // essentially flat
}

TEST(Integration, EoptStepEnergySplitMatchesTheory) {
  // Step 1 runs at r₁² = c₁/n per message: Θ(log n) total. Step 2 should be
  // the same order, NOT Θ(log²n) — the census and the passive giant keep it
  // down. Verify step2 ≤ a modest multiple of step1.
  support::Rng rng(1618);
  const std::size_t n = 5000;
  const auto points = geometry::uniform_points(n, rng);
  const sim::Topology topo(points, rgg::connectivity_radius(n));
  const auto result = eopt::run_eopt(topo);
  EXPECT_LT(result.step2.energy, 10.0 * result.step1.energy);
  EXPECT_LT(result.census.energy, result.step1.energy);
}

TEST(Integration, PercolationReportConsistentWithEoptGiant) {
  // The percolation module and EOPT's census must agree on the giant's
  // scale for the same instance.
  support::Rng rng(9001);
  const std::size_t n = 4000;
  const auto points = geometry::uniform_points(n, rng);
  const auto instance = rgg::build_rgg(points, rgg::percolation_radius(n, 1.4));
  const auto report = percolation::analyze(instance);

  const sim::Topology topo(points, rgg::connectivity_radius(n));
  const auto result = eopt::run_eopt(topo);
  ASSERT_TRUE(result.giant_found);
  EXPECT_EQ(result.giant_size, report.giant_nodes);
}

TEST(Integration, MessageComplexityOrdering) {
  // Message counts: classical GHS Θ(|E| + n log n) > modified GHS Θ(n log n)
  // ≈ EOPT > Co-NNT Θ(n).
  support::Rng rng(112358);
  const std::size_t n = 3000;
  const auto points = geometry::uniform_points(n, rng);
  const sim::Topology topo(points, rgg::connectivity_radius(n));
  const auto classic = ghs::run_classic_ghs(topo);
  const auto eo = eopt::run_eopt(topo);
  const auto nn = nnt::run_connt(topo);
  EXPECT_GT(classic.totals.messages(), eo.run.totals.messages());
  EXPECT_GT(eo.run.totals.messages(), nn.totals.messages());
}

TEST(Integration, LowerBoundHoldsEmpirically) {
  // Thm 4.1: Ω(log n) energy for any spanning-tree construction; and Ω(1)
  // via L_MST = Σ d² over MST edges. Every exact-MST algorithm we run must
  // sit above L_MST.
  support::Rng rng(271828);
  const std::size_t n = 2000;
  const auto points = geometry::uniform_points(n, rng);
  const sim::Topology topo(points, rgg::connectivity_radius(n));
  const auto mst = rgg::euclidean_mst(points);
  const double l_mst = graph::tree_cost(points, mst, 2.0);
  EXPECT_GT(ghs::run_classic_ghs(topo).totals.energy, l_mst);
  EXPECT_GT(eopt::run_eopt(topo).run.totals.energy, l_mst);
  // Co-NNT builds a different tree but still must pay its own tree cost.
  const auto nn = nnt::run_connt(topo);
  EXPECT_GT(nn.totals.energy,
            graph::tree_cost(points, nn.tree, 2.0) - 1e-9);
}

}  // namespace
}  // namespace emst
