// Backend differential: implicit vs materialized topology (docs/PERF.md).
//
// The contract: `sim::ImplicitTopology` is a drop-in for `sim::Topology`.
// For the same point set and radius, every driver (classic GHS, sync GHS,
// EOPT, Co-NNT) must produce the SAME observable result on both backends —
// tree (weights bitwise), accounting (float energy bitwise), phases,
// fault/ARQ counters, per-node ledger, breakdown matrix, and the complete
// telemetry event stream — at every thread count, with and without
// faults+ARQ. Equality assertions, not tolerances: one flipped bit fails.
//
// The enumeration layer is pinned separately: `neighbors`, `neighbors_within`
// and `nodes_within` must yield identical sequences (ids in order, weights
// bitwise), which is what makes the driver-level identity possible at all.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "emst/eopt/eopt.hpp"
#include "emst/geometry/sampling.hpp"
#include "emst/ghs/classic.hpp"
#include "emst/ghs/sync.hpp"
#include "emst/nnt/connt.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/run_report.hpp"
#include "emst/sim/implicit_topology.hpp"
#include "emst/sim/topology.hpp"
#include "emst/support/rng.hpp"

namespace emst {
namespace {

constexpr std::size_t kNodes = 160;
constexpr std::size_t kSeeds = 10;
constexpr std::size_t kThreadCounts[] = {1, 2, 4};

std::vector<geometry::Point2> make_points(std::uint64_t seed,
                                          std::size_t n = kNodes) {
  support::Rng rng(seed);
  return geometry::uniform_points(n, rng);
}

// --- Enumeration-layer equivalence ---------------------------------------

TEST(TopologyBackends, NeighborEnumerationIsIdentical) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto points = make_points(seed);
    const double radius = rgg::connectivity_radius(kNodes);
    const sim::Topology mat(points, radius);
    const sim::ImplicitTopology imp(points, radius);
    ASSERT_EQ(mat.node_count(), imp.node_count());
    EXPECT_EQ(mat.edge_count(), imp.edge_count());
    for (sim::NodeId u = 0; u < mat.node_count(); ++u) {
      const auto want = mat.neighbors(u);
      const auto got = imp.neighbors(u);
      ASSERT_EQ(got.size(), want.size()) << "node " << u << " seed " << seed;
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i].id, want[i].id) << "node " << u << " slot " << i;
        EXPECT_EQ(got[i].w, want[i].w) << "node " << u << " slot " << i;
      }
    }
  }
}

TEST(TopologyBackends, SubRadiusQueriesAreIdentical) {
  // Sub-radius enumeration (the EOPT Step-1 path) and the Co-NNT probe
  // query must agree too, including exactly at the topology radius.
  const auto points = make_points(3);
  const double radius = rgg::connectivity_radius(kNodes);
  const sim::Topology mat(points, radius);
  const sim::ImplicitTopology imp(points, radius);
  const double radii[] = {radius / 4, radius / 2, radius * 0.99, radius};
  for (const double r : radii) {
    for (sim::NodeId u = 0; u < mat.node_count(); ++u) {
      const auto want = mat.neighbors_within(u, r);
      const auto got = imp.neighbors_within(u, r);
      ASSERT_EQ(got.size(), want.size()) << "node " << u << " r " << r;
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i].id, want[i].id);
        EXPECT_EQ(got[i].w, want[i].w);
      }
      EXPECT_EQ(imp.nodes_within(u, r), mat.nodes_within(u, r));
    }
  }
}

TEST(TopologyBackends, EdgeRanksMatchTheCsrEdgeIndex) {
  // Classic GHS relies on a stable edge identity; the implicit backend's
  // lazily-built rank table must reproduce the CSR's edge_index exactly.
  const auto points = make_points(5);
  const double radius = rgg::connectivity_radius(kNodes);
  const sim::Topology mat(points, radius);
  const sim::ImplicitTopology imp(points, radius);
  imp.ensure_edge_ranks();
  for (sim::NodeId u = 0; u < mat.node_count(); ++u) {
    const auto want = mat.neighbors(u);
    const auto got = imp.neighbors(u);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(imp.edge_rank(u, want[i].id), want[i].edge_index);
      EXPECT_EQ(got[i].edge_index, want[i].edge_index);
    }
  }
}

// --- Driver-level equivalence --------------------------------------------

/// Everything observable about one run, copied out of the report.
struct Observed {
  std::vector<graph::Edge> tree;
  sim::Accounting totals;
  std::size_t phases = 0;
  std::size_t fragments = 0;
  sim::FaultStats faults;
  sim::ArqStats arq;
  std::vector<double> per_node;
  sim::EnergyBreakdown breakdown;
  bool hit_phase_cap = false;
  std::vector<sim::TelemetryEvent> events;
};

Observed observe(const RunReport& report, const std::vector<graph::Edge>& tree,
                 const sim::MemoryTraceSink& sink) {
  Observed out;
  out.tree = tree;
  out.totals = report.totals;
  out.phases = report.phases;
  out.fragments = report.fragments;
  out.faults = report.faults;
  out.arq = report.arq;
  if (report.per_node_energy != nullptr) out.per_node = *report.per_node_energy;
  if (report.breakdown != nullptr) out.breakdown = *report.breakdown;
  out.hit_phase_cap = report.hit_phase_cap;
  out.events = sink.events();
  return out;
}

void expect_observed_equal(const Observed& got, const Observed& want,
                           const char* label, std::uint64_t seed,
                           std::size_t threads) {
  SCOPED_TRACE(testing::Message() << label << " seed=" << seed
                                  << " threads=" << threads);
  ASSERT_EQ(got.tree.size(), want.tree.size());
  for (std::size_t i = 0; i < got.tree.size(); ++i) {
    EXPECT_EQ(got.tree[i].u, want.tree[i].u);
    EXPECT_EQ(got.tree[i].v, want.tree[i].v);
    EXPECT_EQ(got.tree[i].w, want.tree[i].w);  // bitwise
  }
  EXPECT_EQ(got.totals.energy, want.totals.energy);  // bitwise, no NEAR
  EXPECT_EQ(got.totals.unicasts, want.totals.unicasts);
  EXPECT_EQ(got.totals.broadcasts, want.totals.broadcasts);
  EXPECT_EQ(got.totals.deliveries, want.totals.deliveries);
  EXPECT_EQ(got.totals.bits, want.totals.bits);
  EXPECT_EQ(got.totals.rounds, want.totals.rounds);
  EXPECT_EQ(got.phases, want.phases);
  EXPECT_EQ(got.fragments, want.fragments);
  EXPECT_EQ(got.faults.lost, want.faults.lost);
  EXPECT_EQ(got.faults.dropped_crashed, want.faults.dropped_crashed);
  EXPECT_EQ(got.faults.suppressed, want.faults.suppressed);
  EXPECT_EQ(got.arq.data_sent, want.arq.data_sent);
  EXPECT_EQ(got.arq.retransmissions, want.arq.retransmissions);
  EXPECT_EQ(got.arq.acks_sent, want.arq.acks_sent);
  EXPECT_EQ(got.arq.delivered, want.arq.delivered);
  EXPECT_EQ(got.arq.give_ups, want.arq.give_ups);
  EXPECT_EQ(got.arq.timeout_rounds, want.arq.timeout_rounds);
  EXPECT_EQ(got.per_node, want.per_node);  // element-wise bitwise
  EXPECT_EQ(got.breakdown, want.breakdown);
  EXPECT_EQ(got.hit_phase_cap, want.hit_phase_cap);
  ASSERT_EQ(got.events.size(), want.events.size());
  for (std::size_t i = 0; i < got.events.size(); ++i) {
    ASSERT_EQ(got.events[i], want.events[i]) << "event " << i;
  }
}

sim::FaultModel faulty_model() {
  sim::FaultModel faults;
  faults.loss = 0.08;
  faults.use_gilbert = true;
  faults.crashes.push_back({7, 4, 18});
  faults.crashes.push_back({23, 0, 12});
  return faults;
}

template <typename Options>
void configure(Options& options, std::size_t threads,
               sim::Telemetry* telemetry) {
  options.track_per_node_energy = true;
  options.record_breakdown = true;
  options.threads = threads;
  options.telemetry = telemetry;
}

/// Runs `run_at(topo, seed, threads)` on both backends over the full seed ×
/// thread matrix and asserts the Observed results are identical.
template <typename RunFn>
void expect_backend_invariant(const char* label, double radius_factor,
                              RunFn&& run_at) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto points = make_points(seed);
    const double radius = rgg::connectivity_radius(kNodes, radius_factor);
    const sim::Topology mat(points, radius);
    const sim::ImplicitTopology imp(points, radius);
    for (const std::size_t threads : kThreadCounts) {
      const Observed want = run_at(mat, seed, threads);
      const Observed got = run_at(imp, seed, threads);
      EXPECT_FALSE(want.tree.empty())
          << label << " seed " << seed << ": empty tree";
      expect_observed_equal(got, want, label, seed, threads);
    }
  }
}

TEST(BackendDifferential, ClassicGhs) {
  expect_backend_invariant(
      "ghs", 1.6, [](const auto& topo, std::uint64_t, std::size_t threads) {
        sim::MemoryTraceSink sink;
        sim::Telemetry telemetry(&sink);
        ghs::ClassicGhsOptions options;
        configure(options, threads, &telemetry);
        const auto run = ghs::run_classic_ghs(topo, options);
        return observe(run.report(), run.tree, sink);
      });
}

TEST(BackendDifferential, ClassicGhsCachedWithDelays) {
  expect_backend_invariant(
      "ghs-cached", 1.6,
      [](const auto& topo, std::uint64_t seed, std::size_t threads) {
        sim::MemoryTraceSink sink;
        sim::Telemetry telemetry(&sink);
        ghs::ClassicGhsOptions options;
        options.moe = ghs::MoeStrategy::kCachedConfirm;
        options.delays = {3, 0xabc0ULL + seed};
        configure(options, threads, &telemetry);
        const auto run = ghs::run_classic_ghs(topo, options);
        return observe(run.report(), run.tree, sink);
      });
}

TEST(BackendDifferential, SyncGhs) {
  expect_backend_invariant(
      "sync", 1.6, [](const auto& topo, std::uint64_t, std::size_t threads) {
        sim::MemoryTraceSink sink;
        sim::Telemetry telemetry(&sink);
        ghs::SyncGhsOptions options;
        configure(options, threads, &telemetry);
        const auto run = ghs::run_sync_ghs(topo, options);
        return observe(run.report(), run.run.tree, sink);
      });
}

TEST(BackendDifferential, SyncGhsProbeFaultyArq) {
  expect_backend_invariant(
      "sync-probe+faults", 1.6,
      [](const auto& topo, std::uint64_t seed, std::size_t threads) {
        sim::MemoryTraceSink sink;
        sim::Telemetry telemetry(&sink);
        ghs::SyncGhsOptions options;
        options.neighbor_cache = false;
        options.faults = faulty_model();
        options.faults.seed += seed;
        options.arq.enabled = true;
        configure(options, threads, &telemetry);
        const auto run = ghs::run_sync_ghs(topo, options);
        return observe(run.report(), run.run.tree, sink);
      });
}

TEST(BackendDifferential, Eopt) {
  expect_backend_invariant(
      "eopt", 1.6, [](const auto& topo, std::uint64_t, std::size_t threads) {
        sim::MemoryTraceSink sink;
        sim::Telemetry telemetry(&sink);
        eopt::EoptOptions options;
        configure(options, threads, &telemetry);
        const auto run = eopt::run_eopt(topo, options);
        return observe(run.report(), run.run.tree, sink);
      });
}

TEST(BackendDifferential, EoptFaultyArq) {
  expect_backend_invariant(
      "eopt+faults", 1.6,
      [](const auto& topo, std::uint64_t seed, std::size_t threads) {
        sim::MemoryTraceSink sink;
        sim::Telemetry telemetry(&sink);
        eopt::EoptOptions options;
        options.faults = faulty_model();
        options.faults.seed += seed;
        options.arq.enabled = true;
        configure(options, threads, &telemetry);
        const auto run = eopt::run_eopt(topo, options);
        return observe(run.report(), run.run.tree, sink);
      });
}

TEST(BackendDifferential, CoNnt) {
  expect_backend_invariant(
      "connt", 1.6, [](const auto& topo, std::uint64_t, std::size_t threads) {
        sim::MemoryTraceSink sink;
        sim::Telemetry telemetry(&sink);
        nnt::CoNntOptions options;
        configure(options, threads, &telemetry);
        const auto run = nnt::run_connt(topo, options);
        return observe(run.report(), run.tree, sink);
      });
}

TEST(BackendDifferential, CoNntActor) {
  expect_backend_invariant(
      "connt-actor", 1.6,
      [](const auto& topo, std::uint64_t, std::size_t threads) {
        sim::MemoryTraceSink sink;
        sim::Telemetry telemetry(&sink);
        nnt::CoNntOptions options;
        configure(options, threads, &telemetry);
        const auto run = nnt::run_connt_actor(topo, options);
        return observe(run.report(), run.tree, sink);
      });
}

}  // namespace
}  // namespace emst
