// Cross-shard determinism at the driver level (docs/PARALLEL.md).
//
// The contract: `RunConfig::threads` changes wall-clock behaviour only.
// For every driver (classic GHS, sync GHS, EOPT, Co-NNT), every seed, with
// and without faults+ARQ, the full observable result — tree, accounting
// (float energy bitwise), phases, fault/ARQ counters, per-node ledger,
// breakdown matrix, and the complete telemetry event stream — must be
// identical at thread counts {1, 2, 4, 8}. A single flipped bit anywhere
// fails the run: these are equality assertions, not tolerances.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "emst/eopt/eopt.hpp"
#include "emst/geometry/sampling.hpp"
#include "emst/ghs/classic.hpp"
#include "emst/ghs/sync.hpp"
#include "emst/nnt/connt.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/run_report.hpp"
#include "emst/support/rng.hpp"

namespace emst {
namespace {

constexpr std::size_t kNodes = 160;
constexpr std::size_t kSeeds = 10;
constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};

/// Everything observable about one run, copied out so runs can be compared
/// after their backing results are gone.
struct Observed {
  std::vector<graph::Edge> tree;
  sim::Accounting totals;
  std::size_t phases = 0;
  std::size_t fragments = 0;
  sim::FaultStats faults;
  sim::ArqStats arq;
  std::vector<double> per_node;
  sim::EnergyBreakdown breakdown;
  bool hit_phase_cap = false;
  std::vector<sim::TelemetryEvent> events;
};

Observed observe(const RunReport& report, const std::vector<graph::Edge>& tree,
                 const sim::MemoryTraceSink& sink) {
  Observed out;
  out.tree = tree;
  out.totals = report.totals;
  out.phases = report.phases;
  out.fragments = report.fragments;
  out.faults = report.faults;
  out.arq = report.arq;
  if (report.per_node_energy != nullptr) out.per_node = *report.per_node_energy;
  if (report.breakdown != nullptr) out.breakdown = *report.breakdown;
  out.hit_phase_cap = report.hit_phase_cap;
  out.events = sink.events();
  return out;
}

void expect_observed_equal(const Observed& got, const Observed& want,
                           const char* label, std::uint64_t seed,
                           std::size_t threads) {
  SCOPED_TRACE(testing::Message() << label << " seed=" << seed
                                  << " threads=" << threads);
  ASSERT_EQ(got.tree.size(), want.tree.size());
  for (std::size_t i = 0; i < got.tree.size(); ++i) {
    EXPECT_EQ(got.tree[i].u, want.tree[i].u);
    EXPECT_EQ(got.tree[i].v, want.tree[i].v);
    EXPECT_EQ(got.tree[i].w, want.tree[i].w);  // bitwise
  }
  EXPECT_EQ(got.totals.energy, want.totals.energy);  // bitwise, no NEAR
  EXPECT_EQ(got.totals.unicasts, want.totals.unicasts);
  EXPECT_EQ(got.totals.broadcasts, want.totals.broadcasts);
  EXPECT_EQ(got.totals.deliveries, want.totals.deliveries);
  EXPECT_EQ(got.totals.rounds, want.totals.rounds);
  EXPECT_EQ(got.phases, want.phases);
  EXPECT_EQ(got.fragments, want.fragments);
  EXPECT_EQ(got.faults.lost, want.faults.lost);
  EXPECT_EQ(got.faults.dropped_crashed, want.faults.dropped_crashed);
  EXPECT_EQ(got.faults.suppressed, want.faults.suppressed);
  EXPECT_EQ(got.arq.data_sent, want.arq.data_sent);
  EXPECT_EQ(got.arq.retransmissions, want.arq.retransmissions);
  EXPECT_EQ(got.arq.acks_sent, want.arq.acks_sent);
  EXPECT_EQ(got.arq.delivered, want.arq.delivered);
  EXPECT_EQ(got.arq.give_ups, want.arq.give_ups);
  EXPECT_EQ(got.arq.timeout_rounds, want.arq.timeout_rounds);
  EXPECT_EQ(got.per_node, want.per_node);  // element-wise bitwise
  EXPECT_EQ(got.breakdown, want.breakdown);
  EXPECT_EQ(got.hit_phase_cap, want.hit_phase_cap);
  ASSERT_EQ(got.events.size(), want.events.size());
  for (std::size_t i = 0; i < got.events.size(); ++i) {
    ASSERT_EQ(got.events[i], want.events[i]) << "event " << i;
  }
}

sim::Topology make_topology(std::uint64_t seed,
                            std::vector<geometry::Point2>& points) {
  support::Rng rng(seed);
  points = geometry::uniform_points(kNodes, rng);
  return sim::Topology(points, rgg::connectivity_radius(kNodes));
}

/// Standard fault + ARQ configuration for the fault-aware drivers.
sim::FaultModel faulty_model() {
  sim::FaultModel faults;
  faults.loss = 0.08;
  faults.use_gilbert = true;
  faults.crashes.push_back({7, 4, 18});
  faults.crashes.push_back({23, 0, 12});
  return faults;
}

template <typename Options>
void configure(Options& options, std::size_t threads,
               sim::Telemetry* telemetry) {
  options.track_per_node_energy = true;
  options.record_breakdown = true;
  options.threads = threads;
  options.telemetry = telemetry;
}

template <typename RunFn>
void expect_thread_invariant(const char* label, RunFn&& run_at) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Observed baseline;
    bool have_baseline = false;
    for (const std::size_t threads : kThreadCounts) {
      const Observed got = run_at(seed, threads);
      if (!have_baseline) {
        baseline = got;
        have_baseline = true;
        EXPECT_FALSE(baseline.tree.empty())
            << label << " seed " << seed << ": empty tree";
        continue;
      }
      expect_observed_equal(got, baseline, label, seed, threads);
    }
  }
}

TEST(ParallelDeterminism, ClassicGhs) {
  expect_thread_invariant("ghs", [](std::uint64_t seed, std::size_t threads) {
    std::vector<geometry::Point2> points;
    const sim::Topology topo = make_topology(seed, points);
    sim::MemoryTraceSink sink;
    sim::Telemetry telemetry(&sink);
    ghs::ClassicGhsOptions options;
    configure(options, threads, &telemetry);
    const auto run = ghs::run_classic_ghs(topo, options);
    return observe(run.report(), run.tree, sink);
  });
}

TEST(ParallelDeterminism, ClassicGhsCachedWithDelays) {
  // Random per-message delays drive the sharded FIFO clamp and multi-bucket
  // ring; the cached-MOE variant adds local broadcasts (ANNOUNCE).
  expect_thread_invariant(
      "ghs-cached", [](std::uint64_t seed, std::size_t threads) {
        std::vector<geometry::Point2> points;
        const sim::Topology topo = make_topology(seed, points);
        sim::MemoryTraceSink sink;
        sim::Telemetry telemetry(&sink);
        ghs::ClassicGhsOptions options;
        options.moe = ghs::MoeStrategy::kCachedConfirm;
        options.delays = {3, 0xabc0ULL + seed};
        configure(options, threads, &telemetry);
        const auto run = ghs::run_classic_ghs(topo, options);
        return observe(run.report(), run.tree, sink);
      });
}

TEST(ParallelDeterminism, SyncGhs) {
  expect_thread_invariant("sync", [](std::uint64_t seed, std::size_t threads) {
    std::vector<geometry::Point2> points;
    const sim::Topology topo = make_topology(seed, points);
    sim::MemoryTraceSink sink;
    sim::Telemetry telemetry(&sink);
    ghs::SyncGhsOptions options;
    configure(options, threads, &telemetry);
    const auto run = ghs::run_sync_ghs(topo, options);
    return observe(run.report(), run.run.tree, sink);
  });
}

TEST(ParallelDeterminism, SyncGhsProbeFaultyArq) {
  expect_thread_invariant(
      "sync-probe+faults", [](std::uint64_t seed, std::size_t threads) {
        std::vector<geometry::Point2> points;
        const sim::Topology topo = make_topology(seed, points);
        sim::MemoryTraceSink sink;
        sim::Telemetry telemetry(&sink);
        ghs::SyncGhsOptions options;
        options.neighbor_cache = false;
        options.faults = faulty_model();
        options.faults.seed += seed;
        options.arq.enabled = true;
        configure(options, threads, &telemetry);
        const auto run = ghs::run_sync_ghs(topo, options);
        return observe(run.report(), run.run.tree, sink);
      });
}

TEST(ParallelDeterminism, Eopt) {
  expect_thread_invariant("eopt", [](std::uint64_t seed, std::size_t threads) {
    std::vector<geometry::Point2> points;
    const sim::Topology topo = make_topology(seed, points);
    sim::MemoryTraceSink sink;
    sim::Telemetry telemetry(&sink);
    eopt::EoptOptions options;
    configure(options, threads, &telemetry);
    const auto run = eopt::run_eopt(topo, options);
    return observe(run.report(), run.run.tree, sink);
  });
}

TEST(ParallelDeterminism, EoptFaultyArq) {
  expect_thread_invariant(
      "eopt+faults", [](std::uint64_t seed, std::size_t threads) {
        std::vector<geometry::Point2> points;
        const sim::Topology topo = make_topology(seed, points);
        sim::MemoryTraceSink sink;
        sim::Telemetry telemetry(&sink);
        eopt::EoptOptions options;
        options.faults = faulty_model();
        options.faults.seed += seed;
        options.arq.enabled = true;
        configure(options, threads, &telemetry);
        const auto run = eopt::run_eopt(topo, options);
        return observe(run.report(), run.run.tree, sink);
      });
}

TEST(ParallelDeterminism, CoNnt) {
  expect_thread_invariant("connt", [](std::uint64_t seed, std::size_t threads) {
    std::vector<geometry::Point2> points;
    const sim::Topology topo = make_topology(seed, points);
    sim::MemoryTraceSink sink;
    sim::Telemetry telemetry(&sink);
    nnt::CoNntOptions options;
    configure(options, threads, &telemetry);
    const auto run = nnt::run_connt(topo, options);
    return observe(run.report(), run.tree, sink);
  });
}

TEST(ParallelDeterminism, CoNntActor) {
  expect_thread_invariant(
      "connt-actor", [](std::uint64_t seed, std::size_t threads) {
        std::vector<geometry::Point2> points;
        const sim::Topology topo = make_topology(seed, points);
        sim::MemoryTraceSink sink;
        sim::Telemetry telemetry(&sink);
        nnt::CoNntOptions options;
        configure(options, threads, &telemetry);
        const auto run = nnt::run_connt_actor(topo, options);
        return observe(run.report(), run.tree, sink);
      });
}

}  // namespace
}  // namespace emst
