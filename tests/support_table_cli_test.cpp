// Tests for the table/CSV writer and the CLI flag parser.
#include <gtest/gtest.h>

#include <sstream>

#include "emst/support/cli.hpp"
#include "emst/support/table.hpp"

namespace emst::support {
namespace {

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "value"});
  t.add_row({std::string("alpha"), 1.5});
  t.add_row({std::string("b"), 22.25});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22.250"), std::string::npos);  // default precision 3
  EXPECT_NE(out.find("-----"), std::string::npos);   // header rule
}

TEST(Table, PrecisionPerColumn) {
  Table t({"x", "y"});
  t.set_precision(0, 1);
  t.set_precision(1, 5);
  t.add_row({1.23456, 1.23456});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1.2,1.23456\n");
}

TEST(Table, IntegerCells) {
  Table t({"n"});
  t.add_row({static_cast<long long>(5000)});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "n\n5000\n");
}

TEST(Table, CsvQuoting) {
  Table t({"label"});
  t.add_row({std::string("a,b")});
  t.add_row({std::string("say \"hi\"")});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "label\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
}

TEST(Table, RowAndColumnCounts) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.columns(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({1.0, 2.0, 3.0});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Cli, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--n=500", "--trials", "7", "--verbose"};
  Cli cli(5, argv, {{"n", ""}, {"trials", ""}, {"verbose", ""}});
  EXPECT_EQ(cli.get_int("n", 0), 500);
  EXPECT_EQ(cli.get_int("trials", 0), 7);
  EXPECT_TRUE(cli.get_bool("verbose", false));
}

TEST(Cli, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv, {{"n", ""}, {"rate", ""}, {"name", ""}});
  EXPECT_EQ(cli.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("rate", 1.5), 1.5);
  EXPECT_EQ(cli.get("name", "dflt"), "dflt");
  EXPECT_FALSE(cli.has("n"));
}

TEST(Cli, ParsesDouble) {
  const char* argv[] = {"prog", "--beta=2.5"};
  Cli cli(2, argv, {{"beta", ""}});
  EXPECT_DOUBLE_EQ(cli.get_double("beta", 0.0), 2.5);
}

TEST(Cli, ParsesIntList) {
  const char* argv[] = {"prog", "--ns=100,500,1000"};
  Cli cli(2, argv, {{"ns", ""}});
  const auto ns = cli.get_int_list("ns", {});
  ASSERT_EQ(ns.size(), 3u);
  EXPECT_EQ(ns[0], 100);
  EXPECT_EQ(ns[2], 1000);
}

TEST(Cli, IntListFallback) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv, {{"ns", ""}});
  const auto ns = cli.get_int_list("ns", {50, 100});
  ASSERT_EQ(ns.size(), 2u);
  EXPECT_EQ(ns[1], 100);
}

TEST(Cli, UnknownFlagExits) {
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_EXIT((Cli(2, argv, {{"n", ""}})), ::testing::ExitedWithCode(2),
              "unknown flag");
}

}  // namespace
}  // namespace emst::support
