// Tests for descriptive statistics and line fitting.
#include "emst/support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "emst/support/rng.hpp"

namespace emst::support {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sem(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.5, -3.0, 7.25, 0.0, 4.5};
  RunningStats s;
  double sum = 0.0;
  for (double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  const double var = ss / static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
  EXPECT_NEAR(s.sem(), std::sqrt(var / 6.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.25);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(31);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-10, 10);
    whole.add(x);
    (i < 230 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Summarize, OrderStatistics) {
  const std::vector<double> xs = {9, 1, 5, 3, 7};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.p25, 3.0);
  EXPECT_DOUBLE_EQ(s.p75, 7.0);
}

TEST(Summarize, Empty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
}

TEST(QuantileSorted, Interpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.25), 2.5);
}

TEST(LineFit, ExactLine) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.5 * i - 2.0);
  }
  const LineFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 3.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -2.0, 1e-10);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LineFit, NoisyLineRecoversSlope) {
  Rng rng(37);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    const double xi = rng.uniform(0, 10);
    x.push_back(xi);
    y.push_back(2.0 * xi + 1.0 + rng.uniform(-0.1, 0.1));
  }
  const LineFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 0.02);
  EXPECT_NEAR(fit.intercept, 1.0, 0.05);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(LineFit, ConstantXGivesZeroSlope) {
  const std::vector<double> x = {1.0, 1.0, 1.0};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  const LineFit fit = fit_line(x, y);
  EXPECT_EQ(fit.slope, 0.0);
}

TEST(BootstrapCi, ContainsTrueMeanOfGaussianish) {
  Rng rng(2027);
  Rng boot(555);
  // Sample from uniform(0, 10): true mean 5.
  std::vector<double> sample;
  for (int i = 0; i < 200; ++i) sample.push_back(rng.uniform(0.0, 10.0));
  const Interval ci = bootstrap_mean_ci(sample, boot);
  EXPECT_TRUE(ci.contains(mean_of(sample)));
  EXPECT_TRUE(ci.contains(5.0));  // 200 samples: CI ~±0.4, safely around 5
  EXPECT_GT(ci.width(), 0.0);
  EXPECT_LT(ci.width(), 2.0);
}

TEST(BootstrapCi, NarrowsWithSampleSize) {
  Rng rng(2029);
  auto width_at = [&](int n) {
    std::vector<double> sample;
    for (int i = 0; i < n; ++i) sample.push_back(rng.uniform(0.0, 1.0));
    Rng boot(7);
    return bootstrap_mean_ci(sample, boot).width();
  };
  EXPECT_LT(width_at(1600), width_at(25));
}

TEST(BootstrapCi, DegenerateSamples) {
  Rng boot(1);
  EXPECT_EQ(bootstrap_mean_ci({}, boot).width(), 0.0);
  const std::vector<double> one = {3.0};
  const Interval ci = bootstrap_mean_ci(one, boot);
  EXPECT_DOUBLE_EQ(ci.lo, 3.0);
  EXPECT_DOUBLE_EQ(ci.hi, 3.0);
  const std::vector<double> constant(10, 2.5);
  const Interval flat = bootstrap_mean_ci(constant, boot);
  EXPECT_DOUBLE_EQ(flat.lo, 2.5);
  EXPECT_DOUBLE_EQ(flat.hi, 2.5);
}

TEST(BootstrapCi, DeterministicGivenRng) {
  const std::vector<double> sample = {1.0, 5.0, 2.0, 8.0, 3.0};
  Rng a(42);
  Rng b(42);
  const Interval ia = bootstrap_mean_ci(sample, a);
  const Interval ib = bootstrap_mean_ci(sample, b);
  EXPECT_DOUBLE_EQ(ia.lo, ib.lo);
  EXPECT_DOUBLE_EQ(ia.hi, ib.hi);
}

TEST(MeanOf, Basic) {
  EXPECT_EQ(mean_of({}), 0.0);
  const std::vector<double> xs = {2.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 4.0);
}

}  // namespace
}  // namespace emst::support
