// Tests for the metered tree collectives and the energy-meter trace.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "emst/geometry/sampling.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/rgg/rgg.hpp"
#include "emst/sim/collectives.hpp"
#include "emst/sim/network.hpp"
#include "emst/support/rng.hpp"

namespace emst::sim {
namespace {

TEST(Schedule, PathForest) {
  // 0 <- 1 <- 2 and root 3.
  const std::vector<graph::NodeId> parent = {graph::kNoNode, 0, 1,
                                             graph::kNoNode};
  const TreeSchedule schedule = make_schedule(parent);
  EXPECT_EQ(schedule.max_depth, 2u);
  EXPECT_EQ(schedule.depth[0], 0u);
  EXPECT_EQ(schedule.depth[2], 2u);
  EXPECT_EQ(schedule.depth[3], 0u);
  // top_down respects depth order.
  std::vector<std::size_t> position(4);
  for (std::size_t i = 0; i < schedule.top_down.size(); ++i)
    position[schedule.top_down[i]] = i;
  EXPECT_LT(position[0], position[1]);
  EXPECT_LT(position[1], position[2]);
}

TEST(ForestParents, TwoTrees) {
  const std::vector<graph::Edge> tree = {{0, 1, 1.0}, {1, 2, 1.0}, {3, 4, 1.0}};
  const auto parent = forest_parents(5, tree, {0, 3});
  EXPECT_EQ(parent[0], graph::kNoNode);
  EXPECT_EQ(parent[1], 0u);
  EXPECT_EQ(parent[2], 1u);
  EXPECT_EQ(parent[3], graph::kNoNode);
  EXPECT_EQ(parent[4], 3u);
}

TEST(ForestParents, UnreachableNodeAborts) {
  const std::vector<graph::Edge> tree = {{0, 1, 1.0}};
  EXPECT_DEATH({ (void)forest_parents(3, tree, {0}); }, "reachable");
}

class CollectivesOnRandomTrees : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesOnRandomTrees, ConvergecastCountsSubtreeSizes) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  support::Rng rng(seed);
  const std::size_t n = 300;
  const auto points = geometry::uniform_points(n, rng);
  const Topology topo(points, rgg::connectivity_radius(n));
  const auto mst = rgg::euclidean_mst(points);
  ASSERT_EQ(mst.size(), n - 1);
  const auto parent = forest_parents(n, mst, {0});
  const auto schedule = make_schedule(parent);
  EnergyMeter meter;
  const auto subtree = tree_convergecast<std::size_t>(
      topo, parent, schedule, std::vector<std::size_t>(n, 1),
      [](std::size_t a, std::size_t b) { return a + b; }, meter);
  EXPECT_EQ(subtree[0], n);  // root aggregates everyone
  // One unicast per tree edge; energy = Σ d² over tree edges.
  EXPECT_EQ(meter.totals().unicasts, n - 1);
  double expected = 0.0;
  for (const graph::Edge& e : mst) expected += e.w * e.w;
  EXPECT_NEAR(meter.totals().energy, expected, 1e-9);
  EXPECT_EQ(meter.totals().rounds, schedule.max_depth);
}

TEST_P(CollectivesOnRandomTrees, BroadcastPropagatesRootValue) {
  const auto seed = static_cast<std::uint64_t>(GetParam()) + 100;
  support::Rng rng(seed);
  const std::size_t n = 200;
  const auto points = geometry::uniform_points(n, rng);
  const Topology topo(points, rgg::connectivity_radius(n));
  const auto mst = rgg::euclidean_mst(points);
  ASSERT_EQ(mst.size(), n - 1);
  const auto parent = forest_parents(n, mst, {5});
  const auto schedule = make_schedule(parent);
  EnergyMeter meter;
  std::vector<int> init(n, -1);
  init[5] = 42;
  const auto values = tree_broadcast<int>(
      topo, parent, schedule, std::move(init),
      [](int from_parent, graph::NodeId) { return from_parent; }, meter);
  for (const int v : values) EXPECT_EQ(v, 42);
  EXPECT_EQ(meter.totals().unicasts, n - 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollectivesOnRandomTrees,
                         ::testing::Values(1, 2, 3));

TEST(PerNodeLedger, SumsToTotalAndAttributesSenders) {
  EnergyMeter meter({1.0, 2.0});
  meter.enable_per_node(3);
  meter.charge_unicast(0, 0.5);   // node 0 pays 0.25
  meter.charge_unicast(0, 0.5);   // node 0 pays 0.25
  meter.charge_broadcast(2, 0.1, 5);  // node 2 pays 0.01
  const auto& ledger = meter.per_node();
  ASSERT_EQ(ledger.size(), 3u);
  EXPECT_DOUBLE_EQ(ledger[0], 0.5);
  EXPECT_DOUBLE_EQ(ledger[1], 0.0);
  EXPECT_DOUBLE_EQ(ledger[2], 0.01);
  double total = 0.0;
  for (const double e : ledger) total += e;
  EXPECT_NEAR(total, meter.totals().energy, 1e-12);
  EXPECT_DOUBLE_EQ(meter.hottest_node(), 0.5);
}

TEST(PerNodeLedger, DisabledByDefault) {
  EnergyMeter meter;
  meter.charge_unicast(0, 0.5);
  EXPECT_TRUE(meter.per_node().empty());
  EXPECT_EQ(meter.hottest_node(), 0.0);
}

TEST(MeterTrace, ReplayReproducesEnergy) {
  EnergyMeter meter({1.0, 2.0});
  meter.enable_trace();
  meter.charge_unicast(0.5);
  meter.charge_broadcast(0.3, 7);
  meter.charge_unicast(0.1);
  ASSERT_EQ(meter.trace().size(), 3u);
  EXPECT_EQ(meter.trace()[1].kind, TraceEvent::Kind::kBroadcast);
  EXPECT_EQ(meter.trace()[1].receivers, 7u);
  EXPECT_NEAR(meter.replay_trace(), meter.totals().energy, 1e-12);
}

TEST(MeterTrace, OffByDefault) {
  EnergyMeter meter;
  meter.charge_unicast(0.5);
  EXPECT_TRUE(meter.trace().empty());
}

TEST(CollectivesEdgeCases, AllSingletonForestMovesNothing) {
  // Every node is its own root: no tree edges, so neither collective sends
  // a message, ticks a round, or touches any value.
  support::Rng rng(7);
  const auto points = geometry::uniform_points(6, rng);
  const Topology topo(points, 0.5);
  const std::vector<graph::NodeId> parent(6, graph::kNoNode);
  const TreeSchedule schedule = make_schedule(parent);
  EXPECT_EQ(schedule.max_depth, 0u);
  EnergyMeter meter;
  const std::vector<int> init = {0, 1, 2, 3, 4, 5};
  const auto down = tree_broadcast<int>(
      topo, parent, schedule, init,
      [](int v, graph::NodeId) { return v + 100; }, meter);
  EXPECT_EQ(down, init);
  const auto up = tree_convergecast<int>(
      topo, parent, schedule, init, [](int a, int b) { return a + b; }, meter);
  EXPECT_EQ(up, init);
  EXPECT_EQ(meter.totals().messages(), 0u);
  EXPECT_EQ(meter.totals().rounds, 0u);
  EXPECT_DOUBLE_EQ(meter.totals().energy, 0.0);
}

TEST(CollectivesEdgeCases, RootOnlyTree) {
  // A one-node deployment is a root-only tree: both collectives are no-ops
  // that return the root's own value.
  const Topology topo({{0.5, 0.5}}, 0.1);
  const auto parent = forest_parents(1, {}, {0});
  const TreeSchedule schedule = make_schedule(parent);
  EnergyMeter meter;
  const auto down = tree_broadcast<int>(
      topo, parent, schedule, {42},
      [](int v, graph::NodeId) { return v; }, meter);
  EXPECT_EQ(down, (std::vector<int>{42}));
  const auto up = tree_convergecast<std::size_t>(
      topo, parent, schedule, {1},
      [](std::size_t a, std::size_t b) { return a + b; }, meter);
  EXPECT_EQ(up, (std::vector<std::size_t>{1}));
  EXPECT_EQ(meter.totals().messages(), 0u);
}

TEST(CollectivesEdgeCases, ConvergecastSkipsCrashedInteriorSubtree) {
  // Path root 0 <- 1 <- 2 with interior node 1 down for the whole run: the
  // leaf burns its retry budget against a dead receiver, the interior
  // node's own send is suppressed, and the root only ever counts itself.
  const Topology topo({{0.1, 0.5}, {0.2, 0.5}, {0.3, 0.5}}, 0.15);
  const std::vector<graph::NodeId> parent = {graph::kNoNode, 0, 1};
  const TreeSchedule schedule = make_schedule(parent);
  FaultModel faults;
  faults.crashes = {{1, 0, std::numeric_limits<std::uint64_t>::max()}};
  FaultInjector injector(faults);
  ArqOptions arq;
  arq.enabled = true;
  arq.max_retries = 2;
  ArqLink link(&injector, arq);
  EnergyMeter meter;
  const auto subtree = tree_convergecast<std::size_t>(
      topo, parent, schedule, std::vector<std::size_t>(3, 1),
      [](std::size_t a, std::size_t b) { return a + b; }, meter, &link);
  EXPECT_EQ(subtree, (std::vector<std::size_t>{1, 1, 1}));
  // Leaf 2 charges max_retries+1 DATA attempts; node 1's session is free.
  EXPECT_EQ(meter.totals().unicasts, 3u);
  EXPECT_EQ(link.stats().give_ups, 1u);
  EXPECT_EQ(link.stats().delivered, 0u);
  EXPECT_EQ(injector.stats().dropped_crashed, 3u);
  EXPECT_EQ(injector.stats().suppressed, 1u);
}

TEST(CollectivesEdgeCases, BroadcastLeavesCrashedSubtreeStale) {
  // Same path, broadcasting down: the crashed interior never receives the
  // root value and never forwards it, so the whole subtree stays stale.
  const Topology topo({{0.1, 0.5}, {0.2, 0.5}, {0.3, 0.5}}, 0.15);
  const std::vector<graph::NodeId> parent = {graph::kNoNode, 0, 1};
  const TreeSchedule schedule = make_schedule(parent);
  FaultModel faults;
  faults.crashes = {{1, 0, std::numeric_limits<std::uint64_t>::max()}};
  FaultInjector injector(faults);
  ArqOptions arq;
  arq.enabled = true;
  arq.max_retries = 1;
  ArqLink link(&injector, arq);
  EnergyMeter meter;
  const auto values = tree_broadcast<int>(
      topo, parent, schedule, {42, -1, -1},
      [](int from_parent, graph::NodeId) { return from_parent; }, meter,
      &link);
  EXPECT_EQ(values, (std::vector<int>{42, -1, -1}));
  EXPECT_EQ(link.stats().delivered, 0u);
  EXPECT_EQ(injector.stats().suppressed, 1u);
}

TEST(MeterTrace, NetworkChargesAreTraced) {
  support::Rng rng(9);
  const auto points = geometry::uniform_points(50, rng);
  const Topology topo(points, 0.5);
  Network<int> net(topo);
  net.meter().enable_trace();
  net.unicast(0, topo.neighbors(0)[0].id, 1);
  net.broadcast(1, 0.2, 2);
  (void)net.collect_round();
  EXPECT_EQ(net.meter().trace().size(), 2u);
  EXPECT_NEAR(net.meter().replay_trace(), net.meter().totals().energy, 1e-12);
}

}  // namespace
}  // namespace emst::sim
