// Tests for the Co-NNT module: ranking order, potential geometry (Lemmas
// 6.1–6.3), protocol exactness against brute force, spanning-tree validity,
// approximation quality (Thm 6.1), and energy scaling (Thm 6.2).
#include <gtest/gtest.h>

#include <cmath>

#include "emst/geometry/sampling.hpp"
#include "emst/graph/tree_utils.hpp"
#include "emst/nnt/connt.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/rgg/rgg.hpp"
#include "emst/support/rng.hpp"

namespace emst::nnt {
namespace {

sim::Topology make_topology(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  return sim::Topology(geometry::uniform_points(n, rng),
                       rgg::connectivity_radius(std::max<std::size_t>(n, 2)));
}

TEST(Rank, DiagonalOrderMatchesDefinition) {
  const std::vector<geometry::Point2> pts = {
      {0.2, 0.1},   // s=0.3
      {0.1, 0.3},   // s=0.4
      {0.3, 0.1},   // s=0.4, lower y than node 1? y=0.1 < 0.3 → lower rank
  };
  EXPECT_TRUE(rank_less(RankScheme::kDiagonal, pts, 0, 1));
  EXPECT_TRUE(rank_less(RankScheme::kDiagonal, pts, 2, 1));  // same s, smaller y
  EXPECT_FALSE(rank_less(RankScheme::kDiagonal, pts, 1, 2));
}

TEST(Rank, AxisOrderMatchesDefinition) {
  const std::vector<geometry::Point2> pts = {{0.2, 0.9}, {0.3, 0.1}, {0.2, 0.95}};
  EXPECT_TRUE(rank_less(RankScheme::kAxis, pts, 0, 1));   // x smaller
  EXPECT_TRUE(rank_less(RankScheme::kAxis, pts, 0, 2));   // x tie, y smaller
  EXPECT_FALSE(rank_less(RankScheme::kAxis, pts, 1, 0));
}

TEST(Rank, StrictTotalOrder) {
  support::Rng rng(211);
  const auto pts = geometry::uniform_points(100, rng);
  for (graph::NodeId u = 0; u < 100; ++u) {
    EXPECT_FALSE(rank_less(RankScheme::kDiagonal, pts, u, u));
    for (graph::NodeId v = 0; v < 100; ++v) {
      if (u == v) continue;
      EXPECT_NE(rank_less(RankScheme::kDiagonal, pts, u, v),
                rank_less(RankScheme::kDiagonal, pts, v, u));
    }
  }
}

TEST(PotentialDistance, CornersAndCenter) {
  // Bottom-left corner: everything is higher-ranked; farthest point is (1,1).
  EXPECT_NEAR(potential_distance(RankScheme::kDiagonal, {0.0, 0.0}),
              std::sqrt(2.0), 1e-12);
  // Top-right corner: potential region collapses.
  EXPECT_NEAR(potential_distance(RankScheme::kDiagonal, {1.0, 1.0}), 0.0, 1e-12);
  // Center: farthest higher-diagonal point is corner (1,0) or (0,1).
  const double lc = potential_distance(RankScheme::kDiagonal, {0.5, 0.5});
  EXPECT_NEAR(lc, std::sqrt(0.25 + 0.25), 1e-12);
}

TEST(PotentialDistance, BoundsDistanceToHigherRankNodes) {
  // Property: every higher-ranked node lies within L_u of u.
  support::Rng rng(223);
  const auto pts = geometry::uniform_points(300, rng);
  for (graph::NodeId u = 0; u < 300; u += 7) {
    const double lu = potential_distance(RankScheme::kDiagonal, pts[u]);
    for (graph::NodeId v = 0; v < 300; ++v) {
      if (v == u || !rank_less(RankScheme::kDiagonal, pts, u, v)) continue;
      EXPECT_LE(geometry::distance(pts[u], pts[v]), lu + 1e-9);
    }
  }
}

TEST(PotentialAngle, Lemma61LowerBound) {
  // Lemma 6.1: α_u ≥ ½ radian for every u in the unit square.
  support::Rng rng(227);
  for (int i = 0; i < 2000; ++i) {
    const geometry::Point2 u{rng.uniform(), rng.uniform()};
    EXPECT_GE(potential_angle(u), 0.5 - 1e-9)
        << "u=(" << u.x << "," << u.y << ")";
  }
  // And at hand-picked extremes.
  EXPECT_GE(potential_angle({0.0, 0.0}), 0.5);
  EXPECT_GE(potential_angle({0.99, 0.99}), 0.5);
  EXPECT_GE(potential_angle({0.0, 0.99}), 0.5);
}

TEST(PotentialAngle, Lemma62ExpectedSquaredDistanceBound) {
  // Lemma 6.2: E[d²_u] ≤ 2/(n·α_u). Monte-Carlo over fresh deployments for a
  // few fixed probe locations u and check the sample mean against the bound
  // (with slack for sampling noise).
  support::Rng rng(3001);
  const std::size_t n = 400;
  const std::vector<geometry::Point2> probes = {
      {0.1, 0.1}, {0.5, 0.5}, {0.9, 0.2}, {0.7, 0.9}};
  for (const geometry::Point2 u : probes) {
    const double alpha_u = potential_angle(u);
    ASSERT_GE(alpha_u, 0.5);
    double sum_d_sq = 0.0;
    constexpr int kTrials = 400;
    for (int t = 0; t < kTrials; ++t) {
      auto pts = geometry::uniform_points(n - 1, rng);
      pts.push_back(u);
      const auto id = static_cast<graph::NodeId>(pts.size() - 1);
      const graph::NodeId parent =
          brute_force_parent(RankScheme::kDiagonal, pts, id);
      if (parent == graph::kNoNode) continue;  // u happened to be top-ranked
      sum_d_sq += geometry::distance_sq(pts[id], pts[parent]);
    }
    const double mean = sum_d_sq / kTrials;
    const double bound = 2.0 / (static_cast<double>(n) * alpha_u);
    EXPECT_LE(mean, bound * 1.25) << "u=(" << u.x << "," << u.y << ")";
  }
}

class CoNntExactness : public ::testing::TestWithParam<std::tuple<int, int, RankScheme>> {};

TEST_P(CoNntExactness, ParentsMatchBruteForce) {
  const auto [n, seed, scheme] = GetParam();
  const sim::Topology topo = make_topology(static_cast<std::size_t>(n),
                                           static_cast<std::uint64_t>(seed) * 67);
  CoNntOptions options;
  options.scheme = scheme;
  const CoNntResult result = run_connt(topo, options);
  const auto pts = std::span<const geometry::Point2>(topo.points());
  std::size_t roots = 0;
  for (graph::NodeId u = 0; u < topo.node_count(); ++u) {
    const graph::NodeId expected = brute_force_parent(scheme, pts, u);
    EXPECT_EQ(result.parent[u], expected) << "node " << u;
    if (result.parent[u] == graph::kNoNode) ++roots;
  }
  EXPECT_EQ(roots, 1u);  // exactly the top-ranked node
  EXPECT_TRUE(graph::is_spanning_tree(topo.node_count(), result.tree));
}

INSTANTIATE_TEST_SUITE_P(
    SizesSeedsSchemes, CoNntExactness,
    ::testing::Combine(::testing::Values(2, 10, 100, 600),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(RankScheme::kDiagonal,
                                         RankScheme::kAxis)));

TEST(CoNnt, ConstantFactorApproximation) {
  // Thm 6.1: E[Σ|e|²] ≤ 4 for NNT and Θ(1) for MST; Σ|e| ratio is O(1).
  support::Rng rng(229);
  for (const std::size_t n : {500u, 2000u}) {
    const auto points = geometry::uniform_points(n, rng);
    const sim::Topology topo(points, rgg::connectivity_radius(n));
    const CoNntResult result = run_connt(topo);
    const auto mst = rgg::euclidean_mst(points);
    const double nnt_len = graph::tree_cost(points, result.tree, 1.0);
    const double mst_len = graph::tree_cost(points, mst, 1.0);
    const double nnt_sq = graph::tree_cost(points, result.tree, 2.0);
    const double mst_sq = graph::tree_cost(points, mst, 2.0);
    EXPECT_LT(nnt_len / mst_len, 2.0);    // paper measures ≈ 1.1
    EXPECT_LT(nnt_sq / mst_sq, 4.0);      // paper measures ≈ 1.3
    EXPECT_LT(nnt_sq, 4.0);               // Thm 6.1 absolute bound (expected)
    EXPECT_GE(nnt_len, mst_len - 1e-9);   // MST is optimal
  }
}

TEST(CoNnt, EnergyIsConstantInN) {
  // Thm 6.2: expected energy O(1). Compare n=500 and n=8000: energy must not
  // grow with n beyond noise.
  auto mean_energy = [&](std::size_t n) {
    double total = 0.0;
    constexpr int kTrials = 10;
    for (int t = 0; t < kTrials; ++t) {
      const sim::Topology topo = make_topology(n, 1000 + n + t);
      total += run_connt(topo).totals.energy;
    }
    return total / kTrials;
  };
  const double small = mean_energy(500);
  const double large = mean_energy(8000);
  EXPECT_LT(large, 3.0 * small + 1.0);
}

TEST(CoNnt, MessagesLinearInN) {
  // Thm 6.2: O(n) messages. Measure messages/n at two sizes.
  const sim::Topology a = make_topology(1000, 233);
  const sim::Topology b = make_topology(4000, 239);
  const double per_node_a =
      static_cast<double>(run_connt(a).totals.messages()) / 1000.0;
  const double per_node_b =
      static_cast<double>(run_connt(b).totals.messages()) / 4000.0;
  EXPECT_LT(per_node_b, 2.0 * per_node_a + 2.0);
  EXPECT_GE(per_node_a, 1.0);  // everyone sends at least a request
}

TEST(CoNnt, ConnectDistancesWithinLemma63Bound) {
  // Lemma 6.3: all NNT edges are ≤ c·√(log n / n) WHP; with c = 4 this
  // holds with huge margin on fixed seeds.
  const std::size_t n = 3000;
  const sim::Topology topo = make_topology(n, 241);
  const CoNntResult result = run_connt(topo);
  EXPECT_LE(result.max_connect_distance,
            4.0 * std::sqrt(std::log(n) / static_cast<double>(n)));
}

TEST(CoNnt, RobustToNEstimateError) {
  // The protocol only needs a Θ(n) estimate of n (Thm 6.2).
  const sim::Topology topo = make_topology(500, 251);
  for (const double factor : {0.25, 0.5, 2.0, 4.0}) {
    CoNntOptions options;
    options.n_estimate_factor = factor;
    const CoNntResult result = run_connt(topo, options);
    EXPECT_TRUE(graph::is_spanning_tree(topo.node_count(), result.tree))
        << "factor " << factor;
  }
}

TEST(CoNnt, SingleNode) {
  const sim::Topology topo({{0.5, 0.5}, {0.6, 0.6}}, 0.5);
  const CoNntResult result = run_connt(topo);
  EXPECT_EQ(result.tree.size(), 1u);
}

class ActorVsChoreographed
    : public ::testing::TestWithParam<std::tuple<int, int, RankScheme>> {};

TEST_P(ActorVsChoreographed, IdenticalResultsAndAccounting) {
  // The message-driven actor execution over Network<Msg> must agree with
  // the choreographed driver on EVERYTHING: parents, tree, energy, message
  // counts, and rounds — the strongest cross-validation of the accounting.
  const auto [n, seed, scheme] = GetParam();
  const sim::Topology topo = make_topology(static_cast<std::size_t>(n),
                                           static_cast<std::uint64_t>(seed) * 97);
  CoNntOptions options;
  options.scheme = scheme;
  const CoNntResult a = run_connt(topo, options);
  const CoNntResult b = run_connt_actor(topo, options);
  EXPECT_EQ(a.parent, b.parent);
  EXPECT_TRUE(graph::same_edge_set(a.tree, b.tree));
  EXPECT_NEAR(a.totals.energy, b.totals.energy, 1e-9);
  EXPECT_EQ(a.totals.unicasts, b.totals.unicasts);
  EXPECT_EQ(a.totals.broadcasts, b.totals.broadcasts);
  EXPECT_EQ(a.totals.deliveries, b.totals.deliveries);
  EXPECT_EQ(a.totals.rounds, b.totals.rounds);
  EXPECT_EQ(a.max_probe_rounds, b.max_probe_rounds);
}

INSTANTIATE_TEST_SUITE_P(
    CrossValidation, ActorVsChoreographed,
    ::testing::Combine(::testing::Values(2, 50, 400, 1200),
                       ::testing::Values(1, 2),
                       ::testing::Values(RankScheme::kDiagonal,
                                         RankScheme::kAxis)));

TEST(CoNnt, AxisSchemeUsesMoreEnergyNearRightEdge) {
  // The paper's motivation for the diagonal ranking: the axis scheme's
  // rightmost nodes probe far. Aggregate energy should be ≥ the diagonal
  // scheme's on identical instances (statistically, fixed seeds).
  double diag = 0.0;
  double axis = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const sim::Topology topo = make_topology(2000, seed * 883);
    CoNntOptions d;
    d.scheme = RankScheme::kDiagonal;
    CoNntOptions a;
    a.scheme = RankScheme::kAxis;
    diag += run_connt(topo, d).totals.energy;
    axis += run_connt(topo, a).totals.energy;
  }
  EXPECT_GT(axis, diag);
}

}  // namespace
}  // namespace emst::nnt
