// Differential testing: every MST engine against every other, across sizes,
// seeds, radius regimes, and deployments. The engines share nothing but the
// canonical edge order, so agreement is strong evidence of correctness —
// GHS's 1983 proof, the phase-sync engine's Borůvka argument, and Kruskal
// all have to coincide edge-for-edge.
#include <gtest/gtest.h>

#include "emst/eopt/eopt.hpp"
#include "emst/geometry/deployments.hpp"
#include "emst/ghs/classic.hpp"
#include "emst/ghs/sync.hpp"
#include "emst/graph/mst.hpp"
#include "emst/graph/tree_utils.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/support/rng.hpp"

namespace emst {
namespace {

struct Scenario {
  std::size_t n;
  std::uint64_t seed;
  double radius_factor;  // of the connectivity radius
  geometry::Deployment deployment;
};

class EveryEngineAgrees : public ::testing::TestWithParam<Scenario> {};

TEST_P(EveryEngineAgrees, OnTheSameInstance) {
  const Scenario sc = GetParam();
  support::Rng rng(sc.seed);
  const auto points = geometry::sample_deployment(sc.deployment, sc.n, rng);
  const double radius =
      rgg::connectivity_radius(sc.n, 1.6) * sc.radius_factor;
  const sim::Topology topo(points, radius);
  const auto kruskal = graph::kruskal_msf(sc.n, topo.graph().edges());

  // 1. Classical GHS, synchronous.
  EXPECT_TRUE(graph::same_edge_set(ghs::run_classic_ghs(topo).tree, kruskal));
  // 2. Classical GHS, asynchronous delays + cached MOE.
  {
    ghs::ClassicGhsOptions options;
    options.delays = {3, sc.seed ^ 0xd11aULL};
    options.moe = ghs::MoeStrategy::kCachedConfirm;
    EXPECT_TRUE(
        graph::same_edge_set(ghs::run_classic_ghs(topo, options).tree, kruskal));
  }
  // 3. Phase-sync, probe MOE.
  {
    ghs::SyncGhsOptions options;
    options.neighbor_cache = false;
    EXPECT_TRUE(
        graph::same_edge_set(ghs::run_sync_ghs(topo, options).run.tree, kruskal));
  }
  // 4. Phase-sync, cached MOE with min-power announcements.
  {
    ghs::SyncGhsOptions options;
    options.announce_min_power = true;
    EXPECT_TRUE(
        graph::same_edge_set(ghs::run_sync_ghs(topo, options).run.tree, kruskal));
  }
  // 5. EOPT (only meaningful when the topology radius is the connectivity
  //    radius; at the reduced factor the Step-1 radius may exceed it, which
  //    run_eopt clamps — still exact either way).
  EXPECT_TRUE(graph::same_edge_set(eopt::run_eopt(topo).run.tree, kruskal));
}

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  std::uint64_t seed = 1;
  for (const std::size_t n : {60u, 300u, 900u}) {
    for (const double factor : {0.55, 1.0}) {  // sub-connectivity and full
      for (const geometry::Deployment d :
           {geometry::Deployment::kUniform, geometry::Deployment::kClustered}) {
        out.push_back({n, seed++ * 7919, factor, d});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Matrix, EveryEngineAgrees,
                         ::testing::ValuesIn(scenarios()),
                         [](const ::testing::TestParamInfo<Scenario>& info) {
                           const Scenario& sc = info.param;
                           std::string name =
                               "n" + std::to_string(sc.n) + "_f" +
                               std::to_string(static_cast<int>(
                                   sc.radius_factor * 100)) +
                               "_" + geometry::deployment_name(sc.deployment);
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch)))
                               ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace emst
