// Asynchrony and partial-wakeup tests for classical GHS.
//
// GHS was designed for asynchronous FIFO networks; the synchronous run is
// just one legal schedule. These tests perturb the schedule with random
// per-message delays and with partial spontaneous wakeups and require the
// output MST to be bit-identical — the strongest property-style check the
// 1983 correctness proof gives us.
#include <gtest/gtest.h>

#include "emst/geometry/sampling.hpp"
#include "emst/ghs/classic.hpp"
#include "emst/graph/mst.hpp"
#include "emst/graph/tree_utils.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/support/rng.hpp"

namespace emst::ghs {
namespace {

sim::Topology make_topology(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  return sim::Topology(geometry::uniform_points(n, rng),
                       rgg::connectivity_radius(n));
}

class AsyncGhs : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(AsyncGhs, DelaysDoNotChangeTheMst) {
  const auto [n, topo_seed, delay_seed] = GetParam();
  const sim::Topology topo = make_topology(static_cast<std::size_t>(n),
                                           static_cast<std::uint64_t>(topo_seed));
  const auto reference = graph::kruskal_msf(topo.node_count(), topo.graph().edges());

  ClassicGhsOptions options;
  options.delays.max_extra_delay = 5;
  options.delays.seed =
      static_cast<std::uint64_t>(delay_seed) * 0x9e3779b97f4a7c15ULL;
  const MstRunResult result = run_classic_ghs(topo, options);
  EXPECT_TRUE(graph::same_edge_set(result.tree, reference))
      << "n=" << n << " delay seed " << delay_seed;
}

INSTANTIATE_TEST_SUITE_P(
    DelaySweep, AsyncGhs,
    ::testing::Combine(::testing::Values(50, 200, 600),
                       ::testing::Values(1, 2),
                       ::testing::Values(1, 2, 3, 4)));

TEST(AsyncGhs, HeavyDelaysStillExact) {
  const sim::Topology topo = make_topology(300, 7);
  const auto reference = graph::kruskal_msf(topo.node_count(), topo.graph().edges());
  ClassicGhsOptions options;
  options.delays.max_extra_delay = 20;
  options.delays.seed = 999;
  const MstRunResult result = run_classic_ghs(topo, options);
  EXPECT_TRUE(graph::same_edge_set(result.tree, reference));
  // The schedule stretches time but never energy or the tree.
  EXPECT_GT(result.totals.rounds, run_classic_ghs(topo).totals.rounds);
}

TEST(AsyncGhs, DelaysPreserveEnergyUpToSchedule) {
  // Energy = Σ d² over messages; delays reorder the schedule, which can
  // change WHICH messages are sent (different interleavings resolve merges
  // differently), but the result must stay the exact MST and the energy must
  // stay within the classic GHS message bound.
  const sim::Topology topo = make_topology(400, 17);
  ClassicGhsOptions options;
  options.delays.max_extra_delay = 3;
  const MstRunResult delayed = run_classic_ghs(topo, options);
  const MstRunResult sync = run_classic_ghs(topo);
  EXPECT_TRUE(graph::same_edge_set(delayed.tree, sync.tree));
  EXPECT_LT(delayed.totals.energy, 4.0 * sync.totals.energy + 1.0);
}

TEST(PartialWakeup, SingleStarterStillBuildsTheMst) {
  const sim::Topology topo = make_topology(300, 23);
  ASSERT_EQ(graph::kruskal_msf(topo.node_count(), topo.graph().edges()).size(),
            topo.node_count() - 1)
      << "test needs a connected instance";
  ClassicGhsOptions options;
  options.spontaneous_wakeups = {0};
  const MstRunResult result = run_classic_ghs(topo, options);
  const auto reference = graph::kruskal_msf(topo.node_count(), topo.graph().edges());
  EXPECT_TRUE(graph::same_edge_set(result.tree, reference));
}

TEST(PartialWakeup, FewStartersWithDelays) {
  const sim::Topology topo = make_topology(400, 29);
  ClassicGhsOptions options;
  options.spontaneous_wakeups = {3, 77, 201};
  options.delays.max_extra_delay = 4;
  const MstRunResult result = run_classic_ghs(topo, options);
  const auto reference = graph::kruskal_msf(topo.node_count(), topo.graph().edges());
  EXPECT_TRUE(graph::same_edge_set(result.tree, reference));
}

TEST(PartialWakeup, ComponentWithoutStarterSleeps) {
  // Two clusters far apart; wake only the left one. The right cluster must
  // produce no edges.
  std::vector<geometry::Point2> points = {
      {0.1, 0.1}, {0.12, 0.1}, {0.1, 0.12},   // left cluster
      {0.9, 0.9}, {0.92, 0.9}, {0.9, 0.92}};  // right cluster
  const sim::Topology topo(std::move(points), 0.05);
  ClassicGhsOptions options;
  options.spontaneous_wakeups = {0};
  const MstRunResult result = run_classic_ghs(topo, options);
  EXPECT_EQ(result.tree.size(), 2u);  // left cluster spanned, right asleep
  for (const graph::Edge& e : result.tree) {
    EXPECT_LT(e.u, 3u);
    EXPECT_LT(e.v, 3u);
  }
}

}  // namespace
}  // namespace emst::ghs
