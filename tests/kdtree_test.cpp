// Tests for the k-d tree, cross-checked against brute force AND CellGrid on
// uniform and clustered deployments.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "emst/geometry/deployments.hpp"
#include "emst/geometry/sampling.hpp"
#include "emst/spatial/cell_grid.hpp"
#include "emst/spatial/kdtree.hpp"
#include "emst/support/rng.hpp"

namespace emst::spatial {
namespace {

constexpr std::uint32_t kNone = std::numeric_limits<std::uint32_t>::max();

TEST(KdTree, EmptyAndSingle) {
  const std::vector<geometry::Point2> none;
  const KdTree empty(none);
  EXPECT_TRUE(empty.within({0.5, 0.5}, 1.0).empty());
  EXPECT_EQ(empty.nearest({0.5, 0.5}, kNone), kNone);

  const std::vector<geometry::Point2> one = {{0.3, 0.7}};
  const KdTree single(one);
  EXPECT_EQ(single.within({0.3, 0.7}, 0.01).size(), 1u);
  EXPECT_EQ(single.nearest({0.9, 0.9}, kNone), 0u);
  EXPECT_EQ(single.nearest({0.9, 0.9}, 0), kNone);
}

TEST(KdTree, DuplicatePoints) {
  const std::vector<geometry::Point2> points(7, geometry::Point2{0.4, 0.4});
  const KdTree tree(points);
  EXPECT_EQ(tree.within({0.4, 0.4}, 1e-9).size(), 7u);
  EXPECT_EQ(tree.k_nearest({0.4, 0.4}, 7, kNone).size(), 7u);
}

class KdTreeVsBrute
    : public ::testing::TestWithParam<std::tuple<geometry::Deployment, int>> {};

TEST_P(KdTreeVsBrute, WithinMatchesBruteForce) {
  const auto [model, seed] = GetParam();
  support::Rng rng(static_cast<std::uint64_t>(seed) * 6007);
  const auto points = geometry::sample_deployment(model, 800, rng);
  const KdTree tree(points);
  for (int q = 0; q < 25; ++q) {
    const geometry::Point2 p{rng.uniform(), rng.uniform()};
    const double r = rng.uniform(0.01, 0.4);
    auto got = tree.within(p, r);
    std::vector<std::uint32_t> want;
    for (std::uint32_t i = 0; i < points.size(); ++i) {
      if (geometry::distance(points[i], p) <= r) want.push_back(i);
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want);
  }
}

TEST_P(KdTreeVsBrute, KNearestMatchesBruteForce) {
  const auto [model, seed] = GetParam();
  support::Rng rng(static_cast<std::uint64_t>(seed) * 6011);
  const auto points = geometry::sample_deployment(model, 500, rng);
  const KdTree tree(points);
  for (int q = 0; q < 15; ++q) {
    const geometry::Point2 p{rng.uniform(), rng.uniform()};
    for (const std::size_t k : {1u, 4u, 16u}) {
      const auto got = tree.k_nearest(p, k, kNone);
      std::vector<std::pair<double, std::uint32_t>> all;
      for (std::uint32_t i = 0; i < points.size(); ++i)
        all.emplace_back(geometry::distance(points[i], p), i);
      std::sort(all.begin(), all.end());
      ASSERT_EQ(got.size(), k);
      for (std::size_t i = 0; i < k; ++i) {
        EXPECT_DOUBLE_EQ(geometry::distance(points[got[i]], p), all[i].first);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Deployments, KdTreeVsBrute,
    ::testing::Combine(::testing::Values(geometry::Deployment::kUniform,
                                         geometry::Deployment::kClustered,
                                         geometry::Deployment::kGridJitter),
                       ::testing::Values(1, 2)));

TEST(KdTree, AgreesWithCellGrid) {
  support::Rng rng(6029);
  const auto points =
      geometry::sample_deployment(geometry::Deployment::kClustered, 1500, rng);
  const KdTree tree(points);
  const CellGrid grid = CellGrid::with_auto_cell(points);
  for (int q = 0; q < 40; ++q) {
    const geometry::Point2 p{rng.uniform(), rng.uniform()};
    const double r = rng.uniform(0.02, 0.3);
    auto a = tree.within(p, r);
    auto b = grid.within(p, r);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

TEST(KdTree, NearestRespectsExclusion) {
  support::Rng rng(6037);
  const auto points = geometry::uniform_points(200, rng);
  const KdTree tree(points);
  for (std::uint32_t u = 0; u < 50; ++u) {
    const std::uint32_t got = tree.nearest(points[u], u);
    ASSERT_NE(got, kNone);
    EXPECT_NE(got, u);
    // Brute force.
    std::uint32_t best = kNone;
    double best_d = 0.0;
    for (std::uint32_t v = 0; v < points.size(); ++v) {
      if (v == u) continue;
      const double d = geometry::distance(points[u], points[v]);
      if (best == kNone || d < best_d) {
        best = v;
        best_d = d;
      }
    }
    EXPECT_DOUBLE_EQ(geometry::distance(points[u], points[got]), best_d);
  }
}

TEST(KdTree, KLargerThanN) {
  support::Rng rng(6043);
  const auto points = geometry::uniform_points(5, rng);
  const KdTree tree(points);
  EXPECT_EQ(tree.k_nearest({0.5, 0.5}, 50, kNone).size(), 5u);
  EXPECT_EQ(tree.k_nearest({0.5, 0.5}, 50, 2).size(), 4u);
}

}  // namespace
}  // namespace emst::spatial
