// Golden-trace differential test for the calendar-queue network engine.
//
// The seed engine (reference_network.hpp) defines the delivery contract:
// within a round, messages arrive sorted by (receiver, global send
// sequence), and per-edge FIFO holds under random delays. The calendar
// queue must reproduce those sequences *byte-for-byte* — same rounds, same
// order, same distances, same meter totals — on identical schedules. Any
// divergence is an engine bug, not a tolerance question.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "emst/geometry/sampling.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/sim/network.hpp"
#include "emst/sim/reference_network.hpp"
#include "emst/support/rng.hpp"

namespace emst::sim {
namespace {

using Msg = std::uint64_t;

/// Replay an identical random unicast/broadcast schedule through both
/// engines and require identical Delivery sequences every round.
void expect_equivalent_runs(std::uint32_t max_extra_delay) {
  const std::size_t n = 250;
  support::Rng rng(424242 + max_extra_delay);
  const auto points = geometry::uniform_points(n, rng);
  const double radius = rgg::connectivity_radius(n);
  const Topology topo(points, radius);
  const DelayModel delays{max_extra_delay, 0x90f0ULL + max_extra_delay};

  Network<Msg> calendar(topo, {}, false, delays);
  ReferenceNetwork<Msg> reference(topo, {}, false, delays);

  std::uint64_t payload = 0;
  std::size_t total_delivered = 0;
  const int schedule_rounds = 60;
  for (int round = 0; round < schedule_rounds + 40; ++round) {
    if (round < schedule_rounds) {
      const std::uint64_t ops = rng.uniform_int(20);
      for (std::uint64_t k = 0; k < ops; ++k) {
        const auto u = static_cast<NodeId>(rng.uniform_int(n));
        if (rng.uniform() < 0.3) {
          const double r = rng.uniform(0.0, radius);
          calendar.broadcast(u, r, payload);
          reference.broadcast(u, r, payload);
          ++payload;
        } else {
          const auto nbs = topo.neighbors(u);
          if (nbs.empty()) continue;
          const auto v = nbs[rng.uniform_int(nbs.size())].id;
          calendar.unicast(u, v, payload);
          reference.unicast(u, v, payload);
          ++payload;
        }
      }
    }
    const auto got = calendar.collect_round();
    const auto want = reference.collect_round();
    ASSERT_EQ(got.size(), want.size()) << "round " << round;
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].from, want[i].from) << "round " << round << " pos " << i;
      ASSERT_EQ(got[i].to, want[i].to) << "round " << round << " pos " << i;
      ASSERT_EQ(got[i].distance, want[i].distance)  // bit-identical, no EQ_NEAR
          << "round " << round << " pos " << i;
      ASSERT_EQ(got[i].msg, want[i].msg) << "round " << round << " pos " << i;
    }
    total_delivered += got.size();
    ASSERT_EQ(calendar.pending(), reference.pending()) << "round " << round;
    if (round >= schedule_rounds && !reference.pending()) break;
  }
  EXPECT_FALSE(calendar.pending());
  EXPECT_FALSE(reference.pending());
  EXPECT_GT(total_delivered, 0u);

  // The meters must agree exactly too — both engines charge at the same
  // points with the same inputs.
  EXPECT_EQ(calendar.meter().totals().energy, reference.meter().totals().energy);
  EXPECT_EQ(calendar.meter().totals().unicasts,
            reference.meter().totals().unicasts);
  EXPECT_EQ(calendar.meter().totals().broadcasts,
            reference.meter().totals().broadcasts);
  EXPECT_EQ(calendar.meter().totals().deliveries,
            reference.meter().totals().deliveries);
  EXPECT_EQ(calendar.meter().totals().rounds, reference.meter().totals().rounds);
}

TEST(NetworkEquivalence, Synchronous) { expect_equivalent_runs(0); }
TEST(NetworkEquivalence, Delay1) { expect_equivalent_runs(1); }
TEST(NetworkEquivalence, Delay5) { expect_equivalent_runs(5); }

TEST(NetworkEquivalence, PerEdgeFifoUnderRandomDelays) {
  // Property: on every directed edge, payloads arrive in send order, across
  // a whole random topology (not just a single hand-picked link).
  const std::size_t n = 120;
  support::Rng rng(777);
  const auto points = geometry::uniform_points(n, rng);
  const double radius = rgg::connectivity_radius(n);
  const Topology topo(points, radius);
  Network<Msg> net(topo, {}, false, {7, 0xf1f0ULL});

  std::unordered_map<std::uint64_t, std::vector<Msg>> sent;
  std::unordered_map<std::uint64_t, std::size_t> cursor;
  std::uint64_t payload = 0;
  std::size_t delivered = 0;
  for (int round = 0; round < 80; ++round) {
    if (round < 50) {
      for (int k = 0; k < 15; ++k) {
        const auto u = static_cast<NodeId>(rng.uniform_int(n));
        const auto nbs = topo.neighbors(u);
        if (nbs.empty()) continue;
        const auto v = nbs[rng.uniform_int(nbs.size())].id;
        net.unicast(u, v, payload);
        const std::uint64_t key =
            (static_cast<std::uint64_t>(u) << 32) | static_cast<std::uint64_t>(v);
        sent[key].push_back(payload);
        ++payload;
      }
    }
    for (const auto& d : net.collect_round()) {
      const std::uint64_t key = (static_cast<std::uint64_t>(d.from) << 32) |
                                static_cast<std::uint64_t>(d.to);
      const std::size_t pos = cursor[key]++;
      ASSERT_LT(pos, sent[key].size());
      EXPECT_EQ(d.msg, sent[key][pos])
          << "edge " << d.from << "->" << d.to << " out of FIFO order";
      ++delivered;
    }
    if (round >= 50 && !net.pending()) break;
  }
  EXPECT_FALSE(net.pending());
  EXPECT_EQ(delivered, payload);
}

TEST(NetworkEquivalence, BroadcastMoveOverloadDeliversToAll) {
  // The rvalue broadcast overload must behave exactly like the const&
  // one: every in-range receiver gets the payload.
  const Topology topo({{0, 0}, {1, 0}, {0, 1}, {1, 1}}, 1.5);
  Network<std::string> net(topo);
  std::string msg = "payload";
  net.broadcast(0, 1.1, std::move(msg));
  const auto batch = net.collect_round();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].msg, "payload");
  EXPECT_EQ(batch[1].msg, "payload");
}

}  // namespace
}  // namespace emst::sim
