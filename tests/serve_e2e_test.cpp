// End-to-end serve test: a real Server on loopback TCP in a background
// thread, driven by real Clients through the framed ServeMsg protocol —
// the same wire path the CI smoke script exercises, plus the hostile-input
// cases a scripted client can't produce (raw frames with bad tags, bad
// lengths, wrong versions).
//
// Binding a loopback socket can legitimately fail in sandboxed build
// environments; every test skips cleanly when it does.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <thread>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "emst/geometry/sampling.hpp"
#include "emst/serve/client.hpp"
#include "emst/serve/server.hpp"
#include "emst/support/rng.hpp"

namespace emst::serve {
namespace {

/// The quiet-batch timer is disabled by default so tests observe exactly
/// the commits they request (no 50ms races); MaxBatchAutoCommits opts in.
ServerConfig no_timer_config() {
  ServerConfig cfg;
  cfg.batch_timeout_ms = -1;
  return cfg;
}

/// A daemon on an ephemeral loopback port, serving until shutdown.
class ServeFixture {
 public:
  explicit ServeFixture(std::size_t n = 64, ServerConfig cfg = no_timer_config()) {
    support::Rng rng(21);
    SessionConfig scfg;
    scfg.run.driver = Driver::kEopt;
    scfg.verify_after_commit = true;  // every commit differential-checked
    server_ = std::make_unique<Server>(
        Session(geometry::uniform_points(n, rng), std::move(scfg)), cfg);
    if (!server_->ok()) return;
    thread_ = std::thread([this] { server_->serve(); });
  }

  ~ServeFixture() {
    if (thread_.joinable()) {
      Client c;
      if (c.connect(server_->port())) (void)c.shutdown_server();
      thread_.join();
    }
  }

  [[nodiscard]] bool ok() const { return server_->ok(); }
  [[nodiscard]] std::uint16_t port() const { return server_->port(); }

 private:
  std::unique_ptr<Server> server_;
  std::thread thread_;
};

#define SKIP_IF_NO_SOCKET(fixture)                                       \
  if (!(fixture).ok()) GTEST_SKIP() << "cannot bind loopback socket in " \
                                       "this environment"

TEST(ServeE2E, FullSessionOverLoopback) {
  ServeFixture daemon(64);
  SKIP_IF_NO_SOCKET(daemon);
  Client client;
  ASSERT_TRUE(client.connect(daemon.port()));

  const auto nodes = client.hello();
  ASSERT_TRUE(nodes.has_value());
  EXPECT_EQ(*nodes, 64u);

  const graph::NodeId a = client.add_node(0.5, 0.5);
  const graph::NodeId b = client.add_node(0.25, 0.75);
  EXPECT_EQ(a, 64u);
  EXPECT_EQ(b, 65u);
  EXPECT_TRUE(client.remove_node(3));
  EXPECT_TRUE(client.move_node(7, 0.1, 0.9));

  const auto report = client.commit();
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->admitted, 4u);
  EXPECT_FALSE(report->rebuilt);
  EXPECT_GT(report->nodes_touched, 0u);

  const auto tree = client.query_tree();
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(tree->nodes, 65u);  // 64 - 1 removed + 2 added
  EXPECT_GT(tree->total_len, 0.0);

  const auto stats = client.query_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->commits, 1u);
  EXPECT_EQ(stats->admitted, 4u);
  EXPECT_EQ(stats->nodes, 65u);
}

TEST(ServeE2E, InvalidRequestsEarnErrorsNotDisconnects) {
  ServeFixture daemon(32);
  SKIP_IF_NO_SOCKET(daemon);
  Client client;
  ASSERT_TRUE(client.connect(daemon.port()));
  ASSERT_TRUE(client.hello().has_value());

  // Unknown node → kUnknownNode; the helpers map errors to false/kNoNode.
  EXPECT_FALSE(client.remove_node(999));
  EXPECT_FALSE(client.move_node(999, 0.5, 0.5));
  // Non-finite coordinates → kBadRequest.
  EXPECT_EQ(client.add_node(std::numeric_limits<double>::quiet_NaN(), 0.0),
            graph::kNoNode);
  // The connection survived all of it.
  EXPECT_TRUE(client.hello().has_value());
}

TEST(ServeE2E, TwoClientsShareOneSession) {
  ServeFixture daemon(32);
  SKIP_IF_NO_SOCKET(daemon);
  Client alice;
  Client bob;
  ASSERT_TRUE(alice.connect(daemon.port()));
  ASSERT_TRUE(bob.connect(daemon.port()));
  ASSERT_TRUE(alice.hello().has_value());
  ASSERT_TRUE(bob.hello().has_value());

  const graph::NodeId id = alice.add_node(0.5, 0.5);
  ASSERT_NE(id, graph::kNoNode);
  ASSERT_TRUE(bob.commit().has_value());  // bob flushes alice's mutation
  const auto tree = alice.query_tree();
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(tree->nodes, 33u);
  EXPECT_TRUE(bob.remove_node(id));  // and bob can touch alice's node
}

TEST(ServeE2E, MaxBatchAutoCommits) {
  ServerConfig cfg;
  cfg.max_batch = 3;
  cfg.batch_timeout_ms = -1;  // only the size trigger
  ServeFixture daemon(32, cfg);
  SKIP_IF_NO_SOCKET(daemon);
  Client client;
  ASSERT_TRUE(client.connect(daemon.port()));
  ASSERT_TRUE(client.hello().has_value());

  ASSERT_NE(client.add_node(0.1, 0.1), graph::kNoNode);
  ASSERT_NE(client.add_node(0.2, 0.2), graph::kNoNode);
  ASSERT_NE(client.add_node(0.3, 0.3), graph::kNoNode);  // hits max_batch

  const auto stats = client.query_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->commits, 1u);
  EXPECT_EQ(stats->nodes, 35u);
}

// ------------------------------------------------- hostile raw-byte input

/// A client that speaks raw bytes instead of the Client class, for frames
/// the well-behaved path can never produce.
class RawConn {
 public:
  explicit RawConn(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool ok() const { return fd_ >= 0; }

  void send_bytes(const std::vector<std::uint8_t>& bytes) {
    (void)::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
  }

  /// One framed response, or nullopt if the server closed the connection.
  std::optional<proto::ServeResp> read_response() {
    Frame frame;
    while (!in_.next(frame)) {
      if (in_.corrupt()) return std::nullopt;
      std::uint8_t buf[512];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return std::nullopt;
      in_.feed(buf, static_cast<std::size_t>(n));
    }
    proto::BitReader r(frame.payload);
    return proto::decode_serve_resp(r);
  }

 private:
  int fd_ = -1;
  FrameBuffer in_;
};

std::vector<std::uint8_t> frame_raw(std::uint16_t version,
                                    const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(version >> 8));
  out.push_back(static_cast<std::uint8_t>(version & 0xFF));
  const auto len = static_cast<std::uint32_t>(payload.size());
  out.push_back(static_cast<std::uint8_t>(len >> 24));
  out.push_back(static_cast<std::uint8_t>(len >> 16));
  out.push_back(static_cast<std::uint8_t>(len >> 8));
  out.push_back(static_cast<std::uint8_t>(len & 0xFF));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

TEST(ServeE2E, WrongVersionEarnsVersionMismatch) {
  ServeFixture daemon(16);
  SKIP_IF_NO_SOCKET(daemon);
  RawConn conn(daemon.port());
  ASSERT_TRUE(conn.ok());

  proto::BitWriter w;
  proto::encode(proto::ServeReq{proto::ServeHello{}}, w);
  conn.send_bytes(frame_raw(proto::kServeProtocolVersion + 1, w.bytes()));
  const auto resp = conn.read_response();
  ASSERT_TRUE(resp.has_value());
  const auto* err = std::get_if<proto::ServeErrorResp>(&*resp);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, proto::ServeError::kVersionMismatch);
}

TEST(ServeE2E, TruncatedPayloadEarnsBadRequestNotCrash) {
  ServeFixture daemon(16);
  SKIP_IF_NO_SOCKET(daemon);
  RawConn conn(daemon.port());
  ASSERT_TRUE(conn.ok());

  // A MoveNode tag with half its payload missing: the fixed-width length
  // guard must reject it before the BitReader ever sees it.
  proto::BitWriter w;
  proto::encode(proto::ServeReq{proto::ServeMoveNode{1, 0.5, 0.5}}, w);
  std::vector<std::uint8_t> payload = w.bytes();
  payload.resize(payload.size() / 2);
  conn.send_bytes(frame_raw(proto::kServeProtocolVersion, payload));
  const auto resp = conn.read_response();
  ASSERT_TRUE(resp.has_value());
  const auto* err = std::get_if<proto::ServeErrorResp>(&*resp);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, proto::ServeError::kBadRequest);

  // And a garbage tag likewise.
  conn.send_bytes(frame_raw(proto::kServeProtocolVersion, {0xFF, 0xFF}));
  const auto resp2 = conn.read_response();
  ASSERT_TRUE(resp2.has_value());
  ASSERT_NE(std::get_if<proto::ServeErrorResp>(&*resp2), nullptr);

  // The daemon is still healthy for well-behaved clients.
  Client client;
  ASSERT_TRUE(client.connect(daemon.port()));
  EXPECT_TRUE(client.hello().has_value());
}

TEST(ServeE2E, OversizedFrameDropsOnlyThatConnection) {
  ServeFixture daemon(16);
  SKIP_IF_NO_SOCKET(daemon);
  RawConn conn(daemon.port());
  ASSERT_TRUE(conn.ok());

  // Length word far beyond kMaxFramePayloadBytes: the stream is
  // unrecoverable, so the server must drop the connection...
  conn.send_bytes({0x00, 0x01, 0xFF, 0xFF, 0xFF, 0xFF});
  EXPECT_FALSE(conn.read_response().has_value());

  // ...but keep serving everyone else.
  Client client;
  ASSERT_TRUE(client.connect(daemon.port()));
  EXPECT_TRUE(client.hello().has_value());
}

}  // namespace
}  // namespace emst::serve
