// Tests for the energy meter, topology, and synchronous network semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "emst/sim/network.hpp"
#include "emst/sim/topology.hpp"
#include "emst/support/rng.hpp"
#include "emst/geometry/sampling.hpp"

namespace emst::sim {
namespace {

Topology square_topology(double max_radius = 1.5) {
  // Unit-square corners: distances 1 (sides) and √2 (diagonals).
  return Topology({{0, 0}, {1, 0}, {0, 1}, {1, 1}}, max_radius);
}

TEST(EnergyMeter, UnicastChargesAlphaPower) {
  EnergyMeter meter({1.0, 2.0});
  meter.charge_unicast(0.5);
  meter.charge_unicast(0.5);
  EXPECT_DOUBLE_EQ(meter.totals().energy, 0.5);  // 2 × 0.25
  EXPECT_EQ(meter.totals().unicasts, 2u);
  EXPECT_EQ(meter.totals().messages(), 2u);
  EXPECT_EQ(meter.totals().deliveries, 2u);
}

TEST(EnergyMeter, BroadcastChargesOnceRegardlessOfReceivers) {
  EnergyMeter meter({1.0, 2.0});
  meter.charge_broadcast(0.2, 17);
  EXPECT_DOUBLE_EQ(meter.totals().energy, 0.04);
  EXPECT_EQ(meter.totals().broadcasts, 1u);
  EXPECT_EQ(meter.totals().deliveries, 17u);
}

TEST(EnergyMeter, CustomAlphaModel) {
  EnergyMeter meter({2.0, 1.0});  // a=2, α=1
  meter.charge_unicast(0.3);
  EXPECT_NEAR(meter.totals().energy, 0.6, 1e-12);
}

TEST(EnergyMeter, SnapshotDeltaAndAbsorb) {
  EnergyMeter meter;
  meter.charge_unicast(1.0);
  const Accounting snap = meter.snapshot();
  meter.charge_unicast(2.0);
  meter.tick_round();
  const Accounting delta = meter.totals() - snap;
  EXPECT_DOUBLE_EQ(delta.energy, 4.0);
  EXPECT_EQ(delta.unicasts, 1u);
  EXPECT_EQ(delta.rounds, 1u);

  EnergyMeter other;
  other.absorb(delta);
  EXPECT_DOUBLE_EQ(other.totals().energy, 4.0);
}

TEST(Topology, DistancesAndNeighbors) {
  const Topology topo = square_topology();
  EXPECT_EQ(topo.node_count(), 4u);
  EXPECT_DOUBLE_EQ(topo.distance(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(topo.distance(0, 3), std::sqrt(2.0));
  // Every pair within 1.5, so each node has 3 neighbors, sorted by distance.
  const auto nbs = topo.neighbors(0);
  ASSERT_EQ(nbs.size(), 3u);
  EXPECT_DOUBLE_EQ(nbs[0].w, 1.0);
  EXPECT_DOUBLE_EQ(nbs[2].w, std::sqrt(2.0));
}

TEST(Topology, NodesWithinUsesSpatialIndex) {
  const Topology topo = square_topology(1.0);  // diagonals NOT in adjacency
  const auto within = topo.nodes_within(0, 1.45);
  EXPECT_EQ(within.size(), 3u);  // spatial query still sees the diagonal
  EXPECT_EQ(topo.neighbors(0).size(), 2u);
}

using TestNet = Network<std::string>;

TEST(Network, UnicastDeliversNextRound) {
  const Topology topo = square_topology();
  TestNet net(topo);
  net.unicast(0, 1, "hello");
  EXPECT_TRUE(net.pending());
  const auto batch = net.collect_round();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].from, 0u);
  EXPECT_EQ(batch[0].to, 1u);
  EXPECT_EQ(batch[0].msg, "hello");
  EXPECT_DOUBLE_EQ(batch[0].distance, 1.0);
  EXPECT_FALSE(net.pending());
  EXPECT_EQ(net.meter().totals().rounds, 1u);
}

TEST(Network, DeliveryOrderDeterministicAndFifo) {
  const Topology topo = square_topology();
  TestNet net(topo);
  net.unicast(3, 1, "b-first");
  net.unicast(0, 1, "b-second");
  net.unicast(2, 0, "a");
  const auto batch = net.collect_round();
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].to, 0u);  // receiver order
  EXPECT_EQ(batch[1].msg, "b-first");   // send order preserved per receiver
  EXPECT_EQ(batch[2].msg, "b-second");
}

TEST(Network, BroadcastRadiusFiltersReceivers) {
  const Topology topo = square_topology();
  TestNet net(topo);
  net.broadcast(0, 1.1, "ping");  // reaches (1,0) and (0,1) but not (1,1)
  const auto batch = net.collect_round();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].to, 1u);
  EXPECT_EQ(batch[1].to, 2u);
  // Energy: one broadcast at radius 1.1 → 1.21, not per-receiver.
  EXPECT_NEAR(net.meter().totals().energy, 1.21, 1e-12);
  EXPECT_EQ(net.meter().totals().broadcasts, 1u);
  EXPECT_EQ(net.meter().totals().deliveries, 2u);
}

TEST(Network, BroadcastZeroRadiusReachesNobody) {
  const Topology topo = square_topology();
  TestNet net(topo);
  net.broadcast(0, 0.0, "void");
  EXPECT_FALSE(net.pending());
  EXPECT_EQ(net.meter().totals().broadcasts, 1u);
  EXPECT_DOUBLE_EQ(net.meter().totals().energy, 0.0);
}

TEST(Network, UnboundedBroadcastUsesGrid) {
  const Topology topo = square_topology(0.5);  // adjacency is EMPTY
  TestNet net(topo, {}, /*unbounded_broadcast=*/true);
  net.broadcast(0, 1.5, "far");
  const auto batch = net.collect_round();
  EXPECT_EQ(batch.size(), 3u);  // all other corners heard it
}

TEST(Network, EnergyMatchesSumOfSquaredDistances) {
  support::Rng rng(103);
  const auto points = geometry::uniform_points(50, rng);
  const Topology topo(points, 0.5);
  TestNet net(topo);
  double expected = 0.0;
  for (NodeId u = 0; u < 50; ++u) {
    const auto nbs = topo.neighbors(u);
    if (nbs.empty()) continue;
    net.unicast(u, nbs[0].id, "x");
    expected += nbs[0].w * nbs[0].w;
  }
  EXPECT_NEAR(net.meter().totals().energy, expected, 1e-12);
  (void)net.collect_round();
}

TEST(Network, DelayedDeliveryArrivesLater) {
  const Topology topo = square_topology();
  DelayModel delays;
  delays.max_extra_delay = 3;
  delays.seed = 5;
  TestNet net(topo, {}, false, delays);
  net.unicast(0, 1, "slow");
  // The message arrives within 1 + max_extra_delay rounds, not necessarily
  // the first.
  std::size_t arrived_round = 0;
  for (std::size_t round = 1; round <= 4; ++round) {
    const auto batch = net.collect_round();
    if (!batch.empty()) {
      arrived_round = round;
      EXPECT_EQ(batch[0].msg, "slow");
      break;
    }
  }
  EXPECT_GE(arrived_round, 1u);
  EXPECT_LE(arrived_round, 4u);
  EXPECT_FALSE(net.pending());
}

TEST(Network, DelaysPreservePerEdgeFifo) {
  const Topology topo = square_topology();
  DelayModel delays;
  delays.max_extra_delay = 10;
  delays.seed = 99;
  TestNet net(topo, {}, false, delays);
  for (int i = 0; i < 20; ++i) net.unicast(0, 1, std::to_string(i));
  int expected = 0;
  for (std::size_t round = 0; round < 40 && net.pending(); ++round) {
    for (const auto& d : net.collect_round()) {
      EXPECT_EQ(d.msg, std::to_string(expected));
      ++expected;
    }
  }
  EXPECT_EQ(expected, 20);
}

TEST(Network, DelaysDeterministicPerSeed) {
  const Topology topo = square_topology();
  auto run = [&](std::uint64_t seed) {
    DelayModel delays;
    delays.max_extra_delay = 5;
    delays.seed = seed;
    TestNet net(topo, {}, false, delays);
    net.unicast(0, 1, "a");
    net.unicast(2, 3, "b");
    std::vector<std::size_t> arrival;
    for (std::size_t round = 0; net.pending(); ++round) {
      for (const auto& d : net.collect_round()) {
        (void)d;
        arrival.push_back(round);
      }
    }
    return arrival;
  };
  EXPECT_EQ(run(7), run(7));
}

TEST(Network, UnboundedModeAllowsLongUnicasts) {
  const Topology topo = square_topology(1.0);  // diagonal exceeds the radius
  Network<std::string> bounded(topo);
  Network<std::string> unbounded(topo, {}, /*unbounded_broadcast=*/true);
  EXPECT_DEATH(bounded.unicast(0, 3, "too far"), "beyond the maximum");
  unbounded.unicast(0, 3, "fine");
  const auto batch = unbounded.collect_round();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_NEAR(batch[0].distance, std::sqrt(2.0), 1e-12);
}

TEST(Network, FuzzedMeterIdentity) {
  // Property: after any random sequence of unicasts/broadcasts, the meter's
  // totals equal a manual tally (energy, counts, deliveries).
  support::Rng rng(6053);
  const auto points = geometry::uniform_points(80, rng);
  const Topology topo(points, 0.4);
  TestNet net(topo);
  double energy = 0.0;
  std::uint64_t unicasts = 0;
  std::uint64_t broadcasts = 0;
  std::uint64_t deliveries = 0;
  for (int op = 0; op < 500; ++op) {
    const auto u = static_cast<NodeId>(rng.uniform_int(80));
    if (rng.uniform() < 0.5) {
      const auto nbs = topo.neighbors(u);
      if (nbs.empty()) continue;
      const auto& nb = nbs[rng.uniform_int(nbs.size())];
      net.unicast(u, nb.id, "m");
      energy += nb.w * nb.w;
      ++unicasts;
      ++deliveries;
    } else {
      const double radius = rng.uniform(0.0, 0.4);
      net.broadcast(u, radius, "b");
      energy += radius * radius;
      ++broadcasts;
      for (const auto& nb : topo.neighbors(u)) {
        if (nb.w <= radius) ++deliveries;
      }
    }
    if (op % 37 == 0) (void)net.collect_round();
  }
  while (net.pending()) (void)net.collect_round();
  EXPECT_NEAR(net.meter().totals().energy, energy, 1e-9);
  EXPECT_EQ(net.meter().totals().unicasts, unicasts);
  EXPECT_EQ(net.meter().totals().broadcasts, broadcasts);
  EXPECT_EQ(net.meter().totals().deliveries, deliveries);
}

TEST(Network, RoundsAccumulate) {
  const Topology topo = square_topology();
  TestNet net(topo);
  for (int i = 0; i < 5; ++i) {
    net.unicast(0, 1, "tick");
    (void)net.collect_round();
  }
  EXPECT_EQ(net.meter().totals().rounds, 5u);
}

}  // namespace
}  // namespace emst::sim
