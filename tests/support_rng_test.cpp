// Tests for the deterministic RNG substrate.
#include "emst/support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace emst::support {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() != b()) ++differences;
  }
  EXPECT_GT(differences, 60);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double total = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) total += rng.uniform();
  EXPECT_NEAR(total / kSamples, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-3.0, 7.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 7.0);
  }
}

TEST(Rng, UniformIntBoundedAndCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t x = rng.uniform_int(10);
    EXPECT_LT(x, 10u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntBoundOne) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(1), 0u);
}

TEST(Rng, UniformIntApproximatelyUniform) {
  Rng rng(17);
  constexpr int kBuckets = 16;
  constexpr int kSamples = 160000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.uniform_int(kBuckets)];
  // Chi-square with 15 dof: 99.9th percentile ≈ 37.7.
  double chi2 = 0.0;
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 40.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(19);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

class PoissonMoments : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMoments, MeanAndVarianceMatch) {
  const double mean = GetParam();
  Rng rng(static_cast<std::uint64_t>(mean * 1000) + 1);
  constexpr int kSamples = 20000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = static_cast<double>(rng.poisson(mean));
    sum += x;
    sum_sq += x * x;
  }
  const double sample_mean = sum / kSamples;
  const double sample_var = sum_sq / kSamples - sample_mean * sample_mean;
  const double tolerance = 5.0 * std::sqrt(mean / kSamples) + 0.02;
  EXPECT_NEAR(sample_mean, mean, tolerance * std::max(1.0, std::sqrt(mean)));
  EXPECT_NEAR(sample_var, mean, 0.1 * mean + 0.1);
}

INSTANTIATE_TEST_SUITE_P(SmallAndLargeMeans, PoissonMoments,
                         ::testing::Values(0.5, 2.0, 10.0, 29.9, 50.0, 200.0,
                                           1000.0));

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.split();
  // The child stream should not obviously correlate with the parent.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, StreamSeedDeterministicAndDistinct) {
  const auto s0 = Rng::stream_seed(99, 0);
  EXPECT_EQ(s0, Rng::stream_seed(99, 0));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) seeds.insert(Rng::stream_seed(99, i));
  EXPECT_EQ(seeds.size(), 1000u);
  EXPECT_NE(Rng::stream_seed(99, 1), Rng::stream_seed(100, 1));
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace emst::support
