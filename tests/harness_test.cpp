// Tests for the experiment harness: shared-instance execution, aggregation,
// determinism under parallelism, and figure-driver structure.
#include <gtest/gtest.h>

#include <cstdlib>

#include "emst/harness/experiment.hpp"
#include "emst/harness/figures.hpp"

namespace emst::harness {
namespace {

TEST(RunInstance, AllAlgorithmsOnSharedInstance) {
  InstanceConfig config;
  config.n = 600;
  config.seed = 42;
  const InstanceResults r = run_instance(config);
  ASSERT_TRUE(r.ghs.has_value());
  ASSERT_TRUE(r.eopt.has_value());
  ASSERT_TRUE(r.connt.has_value());
  EXPECT_TRUE(r.graph_connected);
  // GHS and EOPT both recover the exact MST on a connected instance.
  EXPECT_TRUE(r.ghs->exact_mst);
  EXPECT_TRUE(r.eopt->exact_mst);
  EXPECT_TRUE(r.ghs->spanning);
  EXPECT_TRUE(r.eopt->spanning);
  EXPECT_TRUE(r.connt->spanning);
  // Identical trees ⇒ identical costs.
  EXPECT_DOUBLE_EQ(r.ghs->tree_len, r.eopt->tree_len);
  EXPECT_DOUBLE_EQ(r.ghs->tree_len, r.mst_len);
  // Co-NNT approximates.
  EXPECT_GE(r.connt->tree_len, r.mst_len - 1e-9);
  EXPECT_LT(r.connt->tree_len, 2.0 * r.mst_len);
}

TEST(RunInstance, SelectionFlags) {
  InstanceConfig config;
  config.n = 200;
  config.seed = 7;
  config.run_ghs = false;
  config.run_connt = false;
  const InstanceResults r = run_instance(config);
  EXPECT_FALSE(r.ghs.has_value());
  EXPECT_TRUE(r.eopt.has_value());
  EXPECT_FALSE(r.connt.has_value());
  ASSERT_TRUE(r.eopt_detail.has_value());
  EXPECT_GT(r.eopt_detail->step1.energy, 0.0);
}

TEST(RunInstance, SyncProbeBaselineAlsoExact) {
  InstanceConfig config;
  config.n = 400;
  config.seed = 11;
  config.ghs_use_sync_probe = true;
  config.run_eopt = false;
  config.run_connt = false;
  const InstanceResults r = run_instance(config);
  ASSERT_TRUE(r.ghs.has_value());
  EXPECT_TRUE(r.ghs->exact_mst);
}

TEST(RunInstance, ImplicitBackendMatchesMaterialized) {
  // Same instance through both topology backends: the harness outcome —
  // energy bitwise, messages, tree costs — must not depend on the backend.
  InstanceConfig config;
  config.n = 400;
  config.seed = 13;
  const InstanceResults mat = run_instance(config);
  config.implicit_backend = true;
  const InstanceResults imp = run_instance(config);
  ASSERT_TRUE(mat.ghs.has_value() && imp.ghs.has_value());
  ASSERT_TRUE(mat.eopt.has_value() && imp.eopt.has_value());
  ASSERT_TRUE(mat.connt.has_value() && imp.connt.has_value());
  EXPECT_EQ(imp.ghs->energy, mat.ghs->energy);
  EXPECT_EQ(imp.eopt->energy, mat.eopt->energy);
  EXPECT_EQ(imp.connt->energy, mat.connt->energy);
  EXPECT_EQ(imp.ghs->messages, mat.ghs->messages);
  EXPECT_EQ(imp.eopt->messages, mat.eopt->messages);
  EXPECT_EQ(imp.eopt->tree_len, mat.eopt->tree_len);
  EXPECT_TRUE(imp.eopt->exact_mst);
}

TEST(RunInstance, SameSeedSameResults) {
  InstanceConfig config;
  config.n = 300;
  config.seed = 1234;
  const InstanceResults a = run_instance(config);
  const InstanceResults b = run_instance(config);
  EXPECT_DOUBLE_EQ(a.ghs->energy, b.ghs->energy);
  EXPECT_DOUBLE_EQ(a.eopt->energy, b.eopt->energy);
  EXPECT_DOUBLE_EQ(a.connt->energy, b.connt->energy);
  EXPECT_DOUBLE_EQ(a.mst_len, b.mst_len);
}

TEST(SweepPoint, AggregatesTrials) {
  InstanceConfig config;
  config.n = 250;
  const SweepPoint sweep = run_sweep_point(config, 6, 99);
  EXPECT_EQ(sweep.trials, 6u);
  EXPECT_EQ(sweep.ghs.trials, 6u);
  EXPECT_EQ(sweep.eopt.trials, 6u);
  EXPECT_EQ(sweep.connt.trials, 6u);
  EXPECT_GT(sweep.ghs.energy.mean(), 0.0);
  EXPECT_GT(sweep.eopt.energy.mean(), 0.0);
  EXPECT_GT(sweep.connt.energy.mean(), 0.0);
  EXPECT_GT(sweep.mst_len.mean(), 0.0);
}

TEST(SweepPoint, DeterministicAcrossThreadCounts) {
  InstanceConfig config;
  config.n = 150;
  setenv("EMST_THREADS", "1", 1);
  const SweepPoint serial = run_sweep_point(config, 5, 31337);
  setenv("EMST_THREADS", "4", 1);
  const SweepPoint parallel = run_sweep_point(config, 5, 31337);
  unsetenv("EMST_THREADS");
  EXPECT_DOUBLE_EQ(serial.ghs.energy.mean(), parallel.ghs.energy.mean());
  EXPECT_DOUBLE_EQ(serial.eopt.energy.mean(), parallel.eopt.energy.mean());
  EXPECT_DOUBLE_EQ(serial.connt.energy.mean(), parallel.connt.energy.mean());
}

TEST(RunInstance, AlphaExponentScalesEnergy) {
  InstanceConfig two;
  two.n = 300;
  two.seed = 77;
  two.run_ghs = false;
  two.run_connt = false;
  InstanceConfig four = two;
  four.alpha = 4.0;
  const InstanceResults a2 = run_instance(two);
  const InstanceResults a4 = run_instance(four);
  // Same instance, same tree; α=4 energy is far smaller (distances < 1).
  EXPECT_TRUE(a2.eopt->exact_mst);
  EXPECT_TRUE(a4.eopt->exact_mst);
  EXPECT_EQ(a2.eopt->messages, a4.eopt->messages);
  EXPECT_LT(a4.eopt->energy, a2.eopt->energy);
}

class DeploymentExactness
    : public ::testing::TestWithParam<geometry::Deployment> {};

TEST_P(DeploymentExactness, EoptExactOnEveryDeployment) {
  InstanceConfig config;
  config.n = 600;
  config.seed = 88;
  config.deployment = GetParam();
  config.run_ghs = false;
  config.run_connt = false;
  const InstanceResults r = run_instance(config);
  ASSERT_TRUE(r.eopt.has_value());
  EXPECT_TRUE(r.eopt->exact_mst);  // exactness never needed uniformity
}

INSTANTIATE_TEST_SUITE_P(AllModels, DeploymentExactness,
                         ::testing::ValuesIn(geometry::all_deployments()));

TEST(Fig3, DataShapeAndTables) {
  const Fig3Data data = run_fig3({100, 400}, 3, 7);
  ASSERT_EQ(data.points.size(), 2u);
  EXPECT_EQ(data.points[0].n, 100u);
  EXPECT_GT(data.points[1].ghs_energy, 0.0);
  const auto t3a = fig3a_table(data);
  EXPECT_EQ(t3a.rows(), 2u);
  const auto t3b = fig3b_table(data);
  EXPECT_EQ(t3b.rows(), 2u);
}

TEST(Fig3, EnergyOrderingGhsAboveEopt) {
  const Fig3Data data = run_fig3({1500}, 4, 21);
  ASSERT_EQ(data.points.size(), 1u);
  const Fig3Point& p = data.points[0];
  EXPECT_GT(p.ghs_energy, p.eopt_energy);
  EXPECT_GT(p.eopt_energy, p.connt_energy);
  EXPECT_EQ(p.ghs_exact, p.trials);
  EXPECT_EQ(p.eopt_exact, p.trials);
  EXPECT_EQ(p.connt_spanning, p.trials);
}

TEST(TabA, RatiosAreModest) {
  const auto rows = run_taba({400}, 4, 17);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_GT(rows[0].ratio_len, 1.0);
  EXPECT_LT(rows[0].ratio_len, 1.6);   // paper measures ≈ 1.10
  EXPECT_GT(rows[0].ratio_sq, 1.0);
  EXPECT_LT(rows[0].ratio_sq, 2.5);    // paper measures ≈ 1.31
  const auto table = taba_table(rows);
  EXPECT_EQ(table.rows(), 1u);
}

TEST(Percolation, RowsCoverSweep) {
  const auto rows = run_percolation({1000}, {0.8, 1.4}, 3, 5);
  ASSERT_EQ(rows.size(), 2u);
  // Giant fraction grows with the radius factor.
  EXPECT_LT(rows[0].giant_fraction, rows[1].giant_fraction);
  EXPECT_EQ(rows[0].trials, 3u);
  const auto table = percolation_table(rows);
  EXPECT_EQ(table.rows(), 2u);
}

}  // namespace
}  // namespace emst::harness
