// Tests for the coordinate-free random-rank NNT baseline ([14,15], §III).
#include <gtest/gtest.h>

#include <cmath>

#include "emst/geometry/sampling.hpp"
#include "emst/graph/tree_utils.hpp"
#include "emst/nnt/connt.hpp"
#include "emst/nnt/kp_nnt.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/rgg/rgg.hpp"
#include "emst/support/rng.hpp"

namespace emst::nnt {
namespace {

sim::Topology make_topology(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  return sim::Topology(geometry::uniform_points(n, rng),
                       rgg::connectivity_radius(n));
}

TEST(KpNnt, RanksAreAPermutation) {
  const sim::Topology topo = make_topology(200, 1);
  const KpNntResult result = run_kp_nnt(topo);
  std::vector<bool> seen(200, false);
  for (const std::uint32_t r : result.rank) {
    ASSERT_LT(r, 200u);
    EXPECT_FALSE(seen[r]);
    seen[r] = true;
  }
}

TEST(KpNnt, DifferentSeedsDifferentRanks) {
  const sim::Topology topo = make_topology(100, 2);
  KpNntOptions a;
  a.rank_seed = 1;
  KpNntOptions b;
  b.rank_seed = 2;
  EXPECT_NE(run_kp_nnt(topo, a).rank, run_kp_nnt(topo, b).rank);
}

class KpNntExactness : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KpNntExactness, ParentIsNearestHigherRank) {
  const auto [n, seed] = GetParam();
  const sim::Topology topo = make_topology(static_cast<std::size_t>(n),
                                           static_cast<std::uint64_t>(seed));
  KpNntOptions options;
  options.rank_seed = static_cast<std::uint64_t>(seed) * 31 + 1;
  const KpNntResult result = run_kp_nnt(topo, options);
  std::size_t roots = 0;
  for (graph::NodeId u = 0; u < topo.node_count(); ++u) {
    // Brute force with the drawn ranks.
    graph::NodeId best = graph::kNoNode;
    double best_d = 0.0;
    for (graph::NodeId v = 0; v < topo.node_count(); ++v) {
      if (v == u || result.rank[v] <= result.rank[u]) continue;
      const double d = topo.distance(u, v);
      if (best == graph::kNoNode || d < best_d || (d == best_d && v < best)) {
        best = v;
        best_d = d;
      }
    }
    EXPECT_EQ(result.parent[u], best) << "node " << u;
    if (result.parent[u] == graph::kNoNode) ++roots;
  }
  EXPECT_EQ(roots, 1u);
  EXPECT_TRUE(graph::is_spanning_tree(topo.node_count(), result.tree));
}

INSTANTIATE_TEST_SUITE_P(SizesAndSeeds, KpNntExactness,
                         ::testing::Combine(::testing::Values(2, 20, 150, 500),
                                            ::testing::Values(1, 2, 3)));

TEST(KpNnt, EnergyGrowsLogarithmically) {
  // Θ(log n) energy: between n = 500 and n = 8000 the mean energy should
  // grow — unlike Co-NNT — but by a factor well below the ×16 of linear.
  auto mean_energy = [&](std::size_t n) {
    double total = 0.0;
    constexpr int kTrials = 8;
    for (int t = 0; t < kTrials; ++t) {
      const sim::Topology topo = make_topology(n, 100 + n + t);
      KpNntOptions options;
      options.rank_seed = 7000 + t;
      total += run_kp_nnt(topo, options).totals.energy;
    }
    return total / kTrials;
  };
  const double small = mean_energy(500);
  const double large = mean_energy(8000);
  EXPECT_GT(large, small);                  // grows (unlike Co-NNT)
  EXPECT_LT(large / small, 4.0);            // far slower than linear
}

TEST(KpNnt, WorseApproximationThanCoNnt) {
  // [15]: random ranks give an O(log n)-approximation; the coordinate-based
  // diagonal ranking gives O(1). On shared instances KP-NNT's Σ|e| should
  // exceed Co-NNT's (statistically, fixed seeds).
  double kp_len = 0.0;
  double co_len = 0.0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    support::Rng rng(seed * 71);
    const auto points = geometry::uniform_points(1500, rng);
    const sim::Topology topo(points, rgg::connectivity_radius(1500));
    KpNntOptions kp;
    kp.rank_seed = seed;
    kp_len += graph::tree_cost(points, run_kp_nnt(topo, kp).tree, 1.0);
    co_len += graph::tree_cost(points, run_connt(topo).tree, 1.0);
  }
  EXPECT_GT(kp_len, co_len);
}

TEST(KpNnt, DeterministicForFixedSeeds) {
  const sim::Topology topo = make_topology(300, 5);
  const KpNntResult a = run_kp_nnt(topo);
  const KpNntResult b = run_kp_nnt(topo);
  EXPECT_EQ(a.rank, b.rank);
  EXPECT_DOUBLE_EQ(a.totals.energy, b.totals.energy);
  EXPECT_TRUE(graph::same_edge_set(a.tree, b.tree));
}

TEST(KpNnt, LongEdgesExist) {
  // Without coordinates, the top-percentile nodes must search far: the
  // longest KP edge typically dwarfs the unit-disk radius — the reason this
  // baseline does not fit the paper's unit-disk setting (§III).
  const sim::Topology topo = make_topology(2000, 9);
  const KpNntResult result = run_kp_nnt(topo);
  EXPECT_GT(result.max_connect_distance, rgg::connectivity_radius(2000));
}

}  // namespace
}  // namespace emst::nnt
