// Tests for the application layer: aggregation trees and broadcast plans.
#include <gtest/gtest.h>

#include <algorithm>

#include "emst/apps/aggregation.hpp"
#include "emst/apps/broadcast.hpp"
#include "emst/apps/leader_election.hpp"
#include "emst/eopt/eopt.hpp"
#include "emst/geometry/sampling.hpp"
#include "emst/graph/tree_utils.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/rgg/rgg.hpp"
#include "emst/support/rng.hpp"

namespace emst::apps {
namespace {

struct Fixture {
  std::vector<geometry::Point2> points;
  sim::Topology topo;
  std::vector<graph::Edge> tree;

  explicit Fixture(std::size_t n, std::uint64_t seed)
      : points([&] {
          support::Rng rng(seed);
          return geometry::uniform_points(n, rng);
        }()),
        topo(points, rgg::connectivity_radius(n)),
        tree(rgg::euclidean_mst(points)) {}
};

TEST(Aggregation, CollectComputesExactAggregates) {
  Fixture fx(500, 43);
  const AggregationTree agg(fx.topo, fx.tree, 0);
  support::Rng rng(99);
  std::vector<double> readings(500);
  for (double& r : readings) r = rng.uniform(-5.0, 40.0);
  sim::EnergyMeter meter;
  const SensorAggregate result = agg.collect(readings, meter);
  EXPECT_DOUBLE_EQ(result.max, *std::max_element(readings.begin(), readings.end()));
  EXPECT_DOUBLE_EQ(result.min, *std::min_element(readings.begin(), readings.end()));
  EXPECT_DOUBLE_EQ(result.count, 500.0);
  double sum = 0.0;
  for (const double r : readings) sum += r;
  EXPECT_NEAR(result.sum, sum, 1e-9);
  EXPECT_NEAR(result.mean(), sum / 500.0, 1e-12);
  // One message per tree edge.
  EXPECT_EQ(meter.totals().unicasts, fx.tree.size());
}

TEST(Aggregation, RoundEnergyEqualsTreeCost) {
  Fixture fx(300, 47);
  const AggregationTree agg(fx.topo, fx.tree, 5);
  double expected = 0.0;
  for (const graph::Edge& e : fx.tree) expected += e.w * e.w;
  EXPECT_NEAR(agg.round_energy({1.0, 2.0}), expected, 1e-9);
  // Collect's metered energy equals the per-round figure.
  sim::EnergyMeter meter;
  (void)agg.collect(std::vector<double>(300, 1.0), meter);
  EXPECT_NEAR(meter.totals().energy, expected, 1e-9);
}

TEST(Aggregation, DisseminateReachesEveryone) {
  Fixture fx(200, 53);
  const AggregationTree agg(fx.topo, fx.tree, 7);
  sim::EnergyMeter meter;
  const auto values = agg.disseminate(3.25, meter);
  for (const double v : values) EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_EQ(meter.totals().unicasts, fx.tree.size());
}

TEST(Aggregation, MstBackboneBeatsStarPerRound) {
  Fixture fx(800, 59);
  const AggregationTree mst(fx.topo, fx.tree, 0);
  std::vector<graph::Edge> star;
  for (graph::NodeId u = 1; u < 800; ++u)
    star.push_back({0, u, geometry::distance(fx.points[0], fx.points[u])});
  // The star is a valid tree too — build its backbone via a wide-open
  // topology (star edges exceed the radio radius of the RGG topology).
  const sim::Topology open(fx.points, 1.5);
  const AggregationTree direct(open, star, 0);
  EXPECT_LT(mst.round_energy({}), 0.1 * direct.round_energy({}));
  EXPECT_GT(mst.depth(), direct.depth());  // the latency trade-off
}

TEST(Broadcast, PlanCoversTreeAndSavesEnergy) {
  Fixture fx(600, 61);
  const BroadcastPlan plan = plan_broadcast(fx.topo, fx.tree, 0);
  EXPECT_LE(plan.transmissions, fx.tree.size());
  EXPECT_GT(plan.transmissions, 0u);
  // Wireless advantage never loses to per-edge unicast.
  EXPECT_LE(plan.wireless_energy, plan.unicast_energy + 1e-12);
  EXPECT_EQ(plan.rounds, graph::tree_depth(600, fx.tree, 0));
}

TEST(Broadcast, ExecuteReachesAllNodes) {
  Fixture fx(400, 67);
  const BroadcastPlan plan = plan_broadcast(fx.topo, fx.tree, 3);
  sim::EnergyMeter meter;
  EXPECT_EQ(execute_broadcast(fx.topo, plan, meter), 400u);
  // Executed energy equals the planned wireless energy.
  EXPECT_NEAR(meter.totals().energy, plan.wireless_energy, 1e-9);
  EXPECT_EQ(meter.totals().broadcasts, plan.transmissions);
}

TEST(Broadcast, ExecutionCanOutrunThePlanViaOverhearing) {
  // Nodes outside the tree children can overhear a transmission (wireless!),
  // so execution may cover nodes earlier than the tree depth suggests — but
  // never fewer.
  Fixture fx(300, 71);
  const BroadcastPlan plan = plan_broadcast(fx.topo, fx.tree, 0);
  sim::EnergyMeter meter;
  const std::size_t covered = execute_broadcast(fx.topo, plan, meter);
  EXPECT_EQ(covered, 300u);
  EXPECT_LE(meter.totals().rounds, plan.rounds + 1);
}

TEST(LeaderElection, ElectsTheMaximumIdFromAnyRoot) {
  Fixture fx(300, 73);
  for (const graph::NodeId root : {0u, 57u, 299u}) {
    sim::EnergyMeter meter;
    const ElectionResult result =
        elect_leader(fx.topo, fx.tree, root, meter);
    EXPECT_EQ(result.leader, 299u);  // max id always wins
    for (const graph::NodeId known : result.known_leader)
      EXPECT_EQ(known, 299u);        // everyone agrees
    // Exactly 2 messages per tree edge.
    EXPECT_EQ(meter.totals().unicasts, 2 * fx.tree.size());
  }
}

TEST(LeaderElection, EnergyIsTwiceTheTreeCost) {
  Fixture fx(400, 79);
  sim::EnergyMeter meter({1.0, 2.0});
  (void)elect_leader(fx.topo, fx.tree, 0, meter);
  double tree_sq = 0.0;
  for (const graph::Edge& e : fx.tree) tree_sq += e.w * e.w;
  EXPECT_NEAR(meter.totals().energy, 2.0 * tree_sq, 1e-9);
  // §IV's point: once the MST exists, election costs only 2·L_MST = O(1) —
  // the Ω(log n) is all in BUILDING the tree.
  EXPECT_LT(meter.totals().energy, 2.0);
}

TEST(Broadcast, SingleNodePlan) {
  const sim::Topology topo({{0.5, 0.5}, {0.6, 0.6}}, 0.5);
  const std::vector<graph::Edge> tree = {
      {0, 1, geometry::distance({0.5, 0.5}, {0.6, 0.6})}};
  const BroadcastPlan plan = plan_broadcast(topo, tree, 0);
  EXPECT_EQ(plan.transmissions, 1u);
  sim::EnergyMeter meter;
  EXPECT_EQ(execute_broadcast(topo, plan, meter), 2u);
}

}  // namespace
}  // namespace emst::apps
