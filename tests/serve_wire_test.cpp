// Round-trip tests for the serve protocol codec (proto/serve_wire.hpp),
// mirroring proto_wire_test.cpp: every message encodes exactly
// encoded_bits() bits, decodes back equal, the variant tag matches the enum
// value, and the socket framing layer reassembles split streams.
#include <cstdint>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "emst/proto/serve_wire.hpp"
#include "emst/serve/framing.hpp"

namespace emst::proto {
namespace {

std::vector<ServeReq> sample_requests() {
  return {
      ServeHello{kServeProtocolVersion},
      ServeHello{0x7FFF},
      ServeAddNode{0.25, 0.75},
      ServeAddNode{-1.5, 3.25e17},
      ServeRemoveNode{0},
      ServeRemoveNode{0xFFFF'FFFF},
      ServeMoveNode{42, 0.125, 0.875},
      ServeCommit{},
      ServeQueryTree{},
      ServeQueryStats{},
      ServeShutdown{},
  };
}

std::vector<ServeResp> sample_responses() {
  return {
      ServeHelloOk{kServeProtocolVersion, 10'000'000},
      ServeNodeAdded{7},
      ServeAck{},
      ServeErrorResp{ServeError::kBadRequest},
      ServeErrorResp{ServeError::kUnknownNode},
      ServeErrorResp{ServeError::kVersionMismatch},
      ServeErrorResp{ServeError::kShuttingDown},
      ServeCommitReport{3, 128, true, 4095, 9.875},
      ServeCommitReport{0, 0, false, 0, 0.0},
      ServeTreeSummary{4096, 4095, 101.5, 3.25},
      ServeStats{12, 2, 48, 900, 4096, 4095},
  };
}

TEST(ServeWire, RequestRoundTrip) {
  for (const ServeReq& msg : sample_requests()) {
    BitWriter w;
    encode(msg, w);
    EXPECT_EQ(w.bit_count(), encoded_bits(msg))
        << serve_req_type_name(type_of(msg));
    BitReader r(w.bytes());
    const ServeReq back = decode_serve_req(r);
    EXPECT_EQ(r.bit_count(), encoded_bits(msg))
        << serve_req_type_name(type_of(msg));
    EXPECT_EQ(back, msg) << serve_req_type_name(type_of(msg));
  }
}

TEST(ServeWire, ResponseRoundTrip) {
  for (const ServeResp& msg : sample_responses()) {
    BitWriter w;
    encode(msg, w);
    EXPECT_EQ(w.bit_count(), encoded_bits(msg))
        << serve_resp_type_name(type_of(msg));
    BitReader r(w.bytes());
    const ServeResp back = decode_serve_resp(r);
    EXPECT_EQ(r.bit_count(), encoded_bits(msg))
        << serve_resp_type_name(type_of(msg));
    EXPECT_EQ(back, msg) << serve_resp_type_name(type_of(msg));
  }
}

TEST(ServeWire, TagIsVariantIndexIsEnum) {
  for (const ServeReq& msg : sample_requests()) {
    BitWriter w;
    encode(msg, w);
    BitReader r(w.bytes());
    EXPECT_EQ(r.read(kServeTagBits), msg.index());
    EXPECT_EQ(static_cast<std::size_t>(type_of(msg)), msg.index());
  }
  for (const ServeResp& msg : sample_responses()) {
    BitWriter w;
    encode(msg, w);
    BitReader r(w.bytes());
    EXPECT_EQ(r.read(kServeTagBits), msg.index());
    EXPECT_EQ(static_cast<std::size_t>(type_of(msg)), msg.index());
  }
}

TEST(ServeWire, CoordinatesSurviveBitExact) {
  // Full-precision f64: the service hands back exactly the doubles it was
  // given, including negative zero and subnormals.
  for (const double v : {0.0, -0.0, 1e-310, -3.5, 0.1}) {
    BitWriter w;
    write_f64(w, v);
    BitReader r(w.bytes());
    const double back = read_f64(r);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back),
              std::bit_cast<std::uint64_t>(v));
  }
}

TEST(ServeWire, FixedWidthsAreTopologyIndependent) {
  // The serve vocabulary must NOT derive widths from a WireContext: a
  // client speaks before knowing n, and n changes while the session runs.
  EXPECT_EQ(ServeRemoveNode{1}.encoded_bits(),
            kServeTagBits + kServeIdBits);
  EXPECT_EQ(ServeAddNode{}.encoded_bits(), kServeTagBits + 128u);
  EXPECT_EQ(ServeMoveNode{}.encoded_bits(),
            kServeTagBits + kServeIdBits + 128u);
  EXPECT_EQ(ServeHelloOk{}.encoded_bits(),
            kServeTagBits + kServeVersionBits + kServeCountBits);
  EXPECT_EQ(ServeStats{}.encoded_bits(), kServeTagBits + 6 * kServeCountBits);
}

TEST(ServeWireDeathTest, CorruptRequestTagAborts) {
  BitWriter w;
  w.write(static_cast<std::uint64_t>(ServeReqType::kTypeCount), kServeTagBits);
  w.write(0, 32);
  BitReader r(w.bytes());
  EXPECT_DEATH((void)decode_serve_req(r), "corrupt serve request");
}

TEST(ServeWireDeathTest, CorruptResponseTagAborts) {
  BitWriter w;
  w.write(0xF, kServeTagBits);
  w.write(0, 32);
  BitReader r(w.bytes());
  EXPECT_DEATH((void)decode_serve_resp(r), "corrupt serve response");
}

TEST(ServeWireDeathTest, TruncatedPayloadAborts) {
  BitWriter w;
  encode(ServeReq{ServeMoveNode{1, 0.5, 0.5}}, w);
  std::vector<std::uint8_t> bytes = w.bytes();
  bytes.resize(bytes.size() / 2);
  BitReader r(bytes);
  EXPECT_DEATH((void)decode_serve_req(r), "past end");
}

// ---------------------------------------------------------------- framing

TEST(ServeFraming, RoundTripThroughSplitStream) {
  std::vector<std::uint8_t> stream;
  const std::vector<ServeReq> msgs = sample_requests();
  for (const ServeReq& m : msgs) serve::append_frame(stream, m);

  // Feed the stream one byte at a time: frames must reassemble exactly.
  serve::FrameBuffer fb;
  std::vector<ServeReq> got;
  serve::Frame frame;
  for (const std::uint8_t b : stream) {
    fb.feed(&b, 1);
    while (fb.next(frame)) {
      EXPECT_EQ(frame.version, kServeProtocolVersion);
      BitReader r(frame.payload);
      got.push_back(decode_serve_req(r));
    }
  }
  EXPECT_FALSE(fb.corrupt());
  ASSERT_EQ(got.size(), msgs.size());
  for (std::size_t i = 0; i < msgs.size(); ++i) EXPECT_EQ(got[i], msgs[i]);
}

TEST(ServeFraming, HeaderIsBigEndian) {
  std::vector<std::uint8_t> out;
  serve::append_frame(out, ServeReq{ServeCommit{}});
  ASSERT_GE(out.size(), serve::kFrameHeaderBytes);
  EXPECT_EQ(out[0], kServeProtocolVersion >> 8);
  EXPECT_EQ(out[1], kServeProtocolVersion & 0xFF);
  const std::size_t payload = out.size() - serve::kFrameHeaderBytes;
  EXPECT_EQ(out[2], 0u);
  EXPECT_EQ(out[3], 0u);
  EXPECT_EQ(out[4], 0u);
  EXPECT_EQ(out[5], payload);
}

TEST(ServeFraming, OversizedLengthLatchesCorrupt) {
  serve::FrameBuffer fb;
  const std::uint8_t bad[] = {0, 1, 0xFF, 0xFF, 0xFF, 0xFF};
  fb.feed(bad, sizeof(bad));
  serve::Frame frame;
  EXPECT_FALSE(fb.next(frame));
  EXPECT_TRUE(fb.corrupt());
}

}  // namespace
}  // namespace emst::proto
