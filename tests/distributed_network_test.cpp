// Differential and negative tests for the distributed process engine
// (docs/DISTRIBUTED.md).
//
// `DistributedNetwork` promises results bitwise-identical to `Network` for
// every rank count, with the message plane in forked worker processes and
// every payload crossing a real socketpair as proto-codec bytes. The
// differential half replays identical random schedules through both engines
// — across rank counts, delay models, and fault models — and requires
// byte-for-byte agreement, the same bar the sharded engine is held to
// (sharded_network_test.cpp). The negative half proves the collective
// fingerprint contract: a corrupted frame or a skipped collective is
// REPORTED (rank, round, expected/actual chain values) instead of
// deadlocking a barrier, and a killed rank process is reported with its
// signal. Round-trip tests pin the DistMsgAdapter codecs the wire uses.
#include <gtest/gtest.h>

#include <sys/types.h>

#include <csignal>
#include <cstdint>
#include <numeric>
#include <vector>

#include "emst/geometry/sampling.hpp"
#include "emst/nnt/connt_actor.hpp"
#include "emst/proto/dist_wire.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/sim/actor.hpp"
#include "emst/sim/distributed_network.hpp"
#include "emst/sim/network.hpp"
#include "emst/support/rng.hpp"

namespace emst::sim {
namespace {

using Msg = std::uint64_t;

void expect_same_events(const MemoryTraceSink& got,
                        const MemoryTraceSink& want) {
  ASSERT_EQ(got.events().size(), want.events().size());
  for (std::size_t i = 0; i < got.events().size(); ++i) {
    ASSERT_EQ(got.events()[i], want.events()[i]) << "event " << i;
  }
}

/// Replay an identical random unicast/broadcast schedule through `Network`
/// and a `DistributedNetwork` with the given rank count; require identical
/// deliveries, meter totals, fault stats and telemetry streams.
void expect_dist_equivalent(std::size_t ranks, std::uint32_t max_extra_delay,
                            const FaultModel& faults = {}) {
  const std::size_t n = 250;
  support::Rng rng(525252 + max_extra_delay + 977 * ranks);
  const auto points = geometry::uniform_points(n, rng);
  const double radius = rgg::connectivity_radius(n);
  const Topology topo(points, radius);
  const DelayModel delays{max_extra_delay, 0xd1d1ULL + max_extra_delay};

  MemoryTraceSink serial_sink, dist_sink;
  Telemetry serial_tel(&serial_sink), dist_tel(&dist_sink);
  Network<Msg> serial(topo, {}, false, delays, faults, &serial_tel);
  DistributedNetwork<Msg> dist(topo, {}, false, delays, faults, &dist_tel,
                               ranks);

  std::uint64_t payload = 0;
  std::size_t total_delivered = 0;
  const int schedule_rounds = 50;
  for (int round = 0; round < schedule_rounds + 40; ++round) {
    if (round < schedule_rounds) {
      const std::uint64_t ops = rng.uniform_int(20);
      for (std::uint64_t k = 0; k < ops; ++k) {
        const auto u = static_cast<NodeId>(rng.uniform_int(n));
        if (rng.uniform() < 0.3) {
          const double r = rng.uniform(0.0, radius);
          serial.broadcast(u, r, payload);
          dist.broadcast(u, r, payload);
          ++payload;
        } else {
          const auto nbs = topo.neighbors(u);
          if (nbs.empty()) continue;
          const auto v = nbs[rng.uniform_int(nbs.size())].id;
          serial.unicast(u, v, payload);
          dist.unicast(u, v, payload);
          ++payload;
        }
      }
      ASSERT_EQ(dist.pending(), serial.pending()) << "round " << round;
    }
    const auto want = serial.collect_round();
    const auto got = dist.collect_round();
    ASSERT_EQ(got.size(), want.size()) << "round " << round;
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].from, want[i].from) << "round " << round << " pos " << i;
      ASSERT_EQ(got[i].to, want[i].to) << "round " << round << " pos " << i;
      ASSERT_EQ(got[i].distance, want[i].distance)  // bit-identical
          << "round " << round << " pos " << i;
      ASSERT_EQ(got[i].msg, want[i].msg) << "round " << round << " pos " << i;
    }
    total_delivered += got.size();
    ASSERT_EQ(dist.pending(), serial.pending()) << "round " << round;
    if (round >= schedule_rounds && !serial.pending()) break;
  }
  EXPECT_FALSE(dist.pending());
  EXPECT_GT(total_delivered, 0u);

  EXPECT_EQ(dist.meter().totals().energy, serial.meter().totals().energy);
  EXPECT_EQ(dist.meter().totals().unicasts, serial.meter().totals().unicasts);
  EXPECT_EQ(dist.meter().totals().broadcasts,
            serial.meter().totals().broadcasts);
  EXPECT_EQ(dist.meter().totals().deliveries,
            serial.meter().totals().deliveries);
  EXPECT_EQ(dist.meter().totals().rounds, serial.meter().totals().rounds);
  EXPECT_EQ(dist.fault_stats().lost, serial.fault_stats().lost);
  EXPECT_EQ(dist.fault_stats().dropped_crashed,
            serial.fault_stats().dropped_crashed);
  EXPECT_EQ(dist.fault_stats().suppressed, serial.fault_stats().suppressed);
  expect_same_events(dist_sink, serial_sink);
  // The wire is real: every routed payload crossed the channel twice
  // (parent → rank → parent), inside frames with headers and fingerprints.
  EXPECT_GT(dist.bytes_sent(), dist.payload_bytes_sent());
  EXPECT_GT(dist.bytes_received(), dist.payload_bytes_sent());
}

TEST(DistributedNetwork, SynchronousAcrossRankCounts) {
  for (const std::size_t r : {1u, 2u, 4u}) expect_dist_equivalent(r, 0);
}

TEST(DistributedNetwork, Delay1AcrossRankCounts) {
  for (const std::size_t r : {1u, 2u, 4u}) expect_dist_equivalent(r, 1);
}

TEST(DistributedNetwork, Delay5AcrossRankCounts) {
  for (const std::size_t r : {1u, 2u, 4u}) expect_dist_equivalent(r, 5);
}

TEST(DistributedNetwork, BernoulliLossAcrossRankCounts) {
  // Channel fates are drawn INSIDE the rank processes (counter-based, a
  // pure function of the fault seed and the global send sequence) — this is
  // the test that the remote draws land exactly where the serial engine's
  // inline draws do.
  FaultModel faults;
  faults.loss = 0.15;
  for (const std::size_t r : {1u, 2u, 4u}) expect_dist_equivalent(r, 2, faults);
}

TEST(DistributedNetwork, GilbertElliottAcrossRankCounts) {
  // Burst chains are per-link *stateful*; each rank keeps them for the
  // links it owns — receiver-partitioned, so each chain sees every
  // transmission of its link in global sequence order.
  FaultModel faults;
  faults.use_gilbert = true;
  faults.ge_good_to_bad = 0.2;
  for (const std::size_t r : {1u, 2u, 4u}) expect_dist_equivalent(r, 3, faults);
}

TEST(DistributedNetwork, CrashWindowsAcrossRankCounts) {
  // Suppressions (issue side) and crash drops (merge side) are classified
  // in the parent, where the fault clock lives; ranks never see crashes.
  FaultModel faults;
  faults.loss = 0.05;
  for (NodeId u = 0; u < 40; ++u) {
    faults.crashes.push_back({u, 10 + (u % 7), 30 + (u % 11)});
  }
  for (const std::size_t r : {1u, 2u, 4u}) expect_dist_equivalent(r, 2, faults);
}

TEST(DistributedNetwork, MixedFaultsDelay5) {
  FaultModel faults;
  faults.loss = 0.1;
  faults.use_gilbert = true;
  faults.crashes.push_back({3, 5, 40});
  faults.crashes.push_back({17, 0, 25});
  for (const std::size_t r : {1u, 3u, 5u}) expect_dist_equivalent(r, 5, faults);
}

TEST(DistributedNetwork, MoreRanksThanNodes) {
  // Degenerate partition: more rank processes than nodes (some ranks own
  // nothing and only ever exchange empty barrier frames).
  const Topology topo({{0.1, 0.1}, {0.9, 0.1}, {0.1, 0.9}}, 1.5);
  Network<Msg> serial(topo);
  DistributedNetwork<Msg> dist(topo, {}, false, {}, {}, nullptr, 8);
  for (int round = 0; round < 5; ++round) {
    serial.unicast(0, 1, static_cast<Msg>(round));
    dist.unicast(0, 1, static_cast<Msg>(round));
    serial.broadcast(2, 1.2, static_cast<Msg>(1000 + round));
    dist.broadcast(2, 1.2, static_cast<Msg>(1000 + round));
    const auto want = serial.collect_round();
    const auto got = dist.collect_round();
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].to, want[i].to);
      EXPECT_EQ(got[i].msg, want[i].msg);
    }
  }
  EXPECT_EQ(dist.meter().totals().energy, serial.meter().totals().energy);
}

TEST(DistributedNetwork, LargeRoundChunksAcrossFrames) {
  // Force a round whose mailbox exceeds one serve frame: the exchange must
  // chunk transparently (records never straddle frames, every chunk
  // fingerprinted) and still match the serial engine exactly.
  const std::size_t n = 64;
  support::Rng rng(771177);
  const auto points = geometry::uniform_points(n, rng);
  const Topology topo(points, rgg::connectivity_radius(n));
  Network<Msg> serial(topo);
  DistributedNetwork<Msg> dist(topo, {}, false, {}, {}, nullptr, 2);
  // ~3000 records × 48 bytes ≈ 140 KiB of mailbox per round — several
  // chunks at the 64 KiB frame cap.
  for (int burst = 0; burst < 3; ++burst) {
    for (std::uint64_t k = 0; k < 3000; ++k) {
      const auto u = static_cast<NodeId>(rng.uniform_int(n));
      const auto nbs = topo.neighbors(u);
      if (nbs.empty()) continue;
      const auto v = nbs[rng.uniform_int(nbs.size())].id;
      serial.unicast(u, v, k);
      dist.unicast(u, v, k);
    }
    const auto want = serial.collect_round();
    const auto got = dist.collect_round();
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].to, want[i].to);
      ASSERT_EQ(got[i].msg, want[i].msg);
    }
  }
  EXPECT_EQ(dist.meter().totals().energy, serial.meter().totals().energy);
}

// ---------------------------------------------------------------------------
// Negative tests: the collective fingerprint contract. A desynchronized
// barrier must be *reported* — with the rank, the round, and both chain
// values — never a silent hang. EMST_ASSERT-style aborts make these death
// tests (the repo-wide pattern for contract violations).
// ---------------------------------------------------------------------------

using DistributedNetworkDeathTest = ::testing::Test;

[[nodiscard]] Topology small_topology() {
  support::Rng rng(99);
  return Topology(geometry::uniform_points(60, rng),
                  rgg::connectivity_radius(60));
}

TEST(DistributedNetworkDeathTest, CorruptedFrameIsReportedByRank) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Topology topo = small_topology();
  EXPECT_DEATH(
      {
        DistributedNetwork<Msg> dist(topo, {}, false, {}, {}, nullptr, 2);
        dist.unicast(0, topo.neighbors(0)[0].id, 1);
        // Corrupt one byte of rank 0's next ROUND frame after the parent
        // has mixed its chain — the rank must detect the mismatch, reply
        // DESYNC with its expected/actual values, and exit; the parent
        // surfaces the report.
        dist.test_corrupt_next_frame(0);
        (void)dist.collect_round();
      },
      "collective fingerprint mismatch reported by rank at round "
      "[0-9]+: expected [0-9a-f]{16} actual [0-9a-f]{16}(.|\n)*"
      "rank 0 exited with status 3");
}

TEST(DistributedNetworkDeathTest, SkippedCollectiveIsReported) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Topology topo = small_topology();
  EXPECT_DEATH(
      {
        DistributedNetwork<Msg> dist(topo, {}, false, {}, {}, nullptr, 2);
        dist.unicast(0, topo.neighbors(0)[0].id, 1);
        // Model PARCOACH's bug class — a collective the parent recorded
        // but never exchanged. The frame the rank sees is self-consistent,
        // so detection falls to the PARENT's reply verification.
        dist.test_skip_collective_mix(0);
        (void)dist.collect_round();
      },
      "rank 0 failed at round [0-9]+: collective fingerprint mismatch in "
      "rank reply: expected [0-9a-f]{16} actual [0-9a-f]{16}");
}

TEST(DistributedNetworkDeathTest, KilledRankIsReportedWithSignal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Topology topo = small_topology();
  EXPECT_DEATH(
      {
        DistributedNetwork<Msg> dist(topo, {}, false, {}, {}, nullptr, 2);
        ::kill(static_cast<pid_t>(dist.rank_pid(1)), SIGKILL);
        for (int round = 0; round < 100; ++round) {
          dist.unicast(0, topo.neighbors(0)[0].id, 1);
          (void)dist.collect_round();
        }
      },
      "rank 1 (failed at round [0-9]+: (rank channel closed mid-round|"
      "write to rank failed)(.|\n)*)?killed by signal 9");
}

/// Effect-replay observer that records nothing — the mid-handler kill test
/// only cares that the parent REPORTS the death instead of hanging.
struct NullActorSink {
  void on_send(std::uint8_t, double) {}
  void on_step_node(NodeId, std::uint8_t) {}
  void on_note(NodeId, std::uint32_t, std::uint64_t) {}
};

TEST(DistributedNetworkDeathTest, KilledRankMidHandlerIsReportedWithoutDeadlock) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Topology topo = small_topology();
  EXPECT_DEATH(
      {
        DistributedNetwork<proto::ConntMsg> dist(topo, {}, true, {}, {},
                                                 nullptr, 2);
        dist.wire_format().ctx = proto::WireContext::for_topology(
            topo.node_count(), topo.edge_count());
        // Arm the hook BEFORE install: rank 1 raises SIGKILL on itself
        // immediately before EXECUTING a handler at round >= 1 — mid-round,
        // after ingesting the round's frames, while the parent is blocked in
        // the barrier's receive half.
        dist.set_actor_test_hooks({.kill_rank = 1, .kill_round = 1});
        nnt::ConntActor<Topology> actor(
            topo, nnt::RankScheme::kDiagonal,
            static_cast<double>(topo.node_count()), dist.wire_format().ctx);
        dist.install_actor(actor, /*faulty=*/false);
        NullActorSink sink;
        std::vector<NodeId> all(topo.node_count());
        std::iota(all.begin(), all.end(), NodeId{0});
        // Probe sweeps at a fixed early round keep every node unresolved, so
        // the expected step order stays the full node list while REQUEST and
        // REPLY deliveries land on rank 1's handlers until the hook fires.
        for (int r = 0; r < 16; ++r) {
          dist.actor_step(proto::kDistStepConntProbe, 1, {}, all, sink);
          (void)dist.actor_collect_round(sink);
        }
      },
      "rank 1 (failed at round [0-9]+: (rank channel closed mid-round|"
      "write to rank failed)(.|\n)*)?killed by signal 9");
}

// ---------------------------------------------------------------------------
// DistMsgAdapter codec round-trips: the exact bytes the engine routes.
// ---------------------------------------------------------------------------

template <typename M>
[[nodiscard]] M adapter_round_trip(const M& m, const WireFormat<M>& wf,
                                   std::uint32_t expect_bits = 0) {
  proto::BitWriter w;
  proto::DistMsgAdapter<M>::encode(m, w, wf);
  if (expect_bits != 0) {
    EXPECT_EQ(w.bit_count(), expect_bits);
  }
  proto::BitReader r(w.bytes());
  M back = proto::DistMsgAdapter<M>::decode(r, wf);
  EXPECT_EQ(r.bit_count(), w.bit_count());
  return back;
}

TEST(DistMsgAdapter, TrivialPayloadByteImageRoundTrips) {
  const WireFormat<std::uint64_t> wf;
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{0xdeadbeefcafeULL},
        ~std::uint64_t{0}}) {
    EXPECT_EQ(adapter_round_trip(v, wf), v);
  }
  struct Pod {
    std::uint32_t a;
    double b;
    bool operator==(const Pod&) const = default;
  };
  const WireFormat<Pod> pod_wf;
  const Pod p{42, 0.5772156649};
  EXPECT_EQ(adapter_round_trip(p, pod_wf), p);
}

TEST(DistMsgAdapter, GhsVocabularyRoundTripsAtMeasuredSize) {
  WireFormat<proto::GhsMsg> wf;
  wf.ctx = proto::WireContext::for_topology(1000, 12000);
  const std::vector<proto::GhsMsg> msgs = {
      proto::GhsConnect{7},
      proto::GhsInitiate{3, 11981, proto::GhsNodeState::kFound},
      proto::GhsTest{5, 77},
      proto::GhsAccept{},
      proto::GhsReject{},
      proto::GhsReport{1234},
      proto::GhsReport{},  // "no outgoing edge" (kInfEdge) presence flag
      proto::GhsChangeRoot{},
      proto::GhsAnnounce{11999},
  };
  for (const proto::GhsMsg& m : msgs) {
    // The adapter must produce exactly the size the meter accounted.
    EXPECT_EQ(adapter_round_trip(m, wf, wf.bits(m)), m);
  }
}

TEST(DistMsgAdapter, ConntVocabularyRoundTripsAtMeasuredSize) {
  WireFormat<proto::ConntMsg> wf;
  wf.ctx = proto::WireContext::for_topology(500, 6000);
  const std::vector<proto::ConntMsg> msgs = {
      proto::ConntRequest{12, 900},
      proto::ConntReply{1023, 0},
      proto::ConntConnect{},
  };
  for (const proto::ConntMsg& m : msgs) {
    EXPECT_EQ(adapter_round_trip(m, wf, wf.bits(m)), m);
  }
}

}  // namespace
}  // namespace emst::sim
