// Tests for the stop-and-wait ARQ layer (docs/ROBUSTNESS.md): the
// message-level ReliableChannel over Network<Frame>, and the driver-side
// ArqLink session simulator. The load-bearing claims: exactly-once in-order
// delivery per link under heavy loss, honest energy accounting (every DATA
// retransmission and every ACK is charged), and bounded give-up that never
// wedges the channel.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "emst/sim/fault.hpp"
#include "emst/sim/oracle.hpp"
#include "emst/sim/reliable.hpp"
#include "emst/sim/telemetry.hpp"
#include "emst/sim/topology.hpp"

namespace emst {
namespace {

sim::Topology square_topology(double max_radius = 1.5) {
  return sim::Topology({{0, 0}, {1, 0}, {0, 1}, {1, 1}}, max_radius);
}

constexpr std::uint64_t kForever = std::numeric_limits<std::uint64_t>::max();

using Channel = sim::ReliableChannel<int>;

/// Pump the channel dry (bounded), appending deliveries per directed link.
std::vector<sim::Delivery<int>> drain(Channel& channel, int max_rounds = 5000) {
  std::vector<sim::Delivery<int>> all;
  int rounds = 0;
  while (channel.pending()) {
    EXPECT_LT(++rounds, max_rounds) << "channel never drained";
    if (rounds >= max_rounds) break;
    for (auto& d : channel.collect_round()) all.push_back(d);
  }
  return all;
}

TEST(ReliableChannel, CleanChannelChargesOneDataAndOneAck) {
  const sim::Topology topo = square_topology();
  Channel channel(topo);
  channel.send(0, 1, 42);
  const auto delivered = drain(channel);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].from, 0u);
  EXPECT_EQ(delivered[0].to, 1u);
  EXPECT_EQ(delivered[0].msg, 42);
  // d(0,1) = 1, α = 2: DATA + ACK = 2 unicasts, energy 2·1².
  EXPECT_EQ(channel.meter().totals().unicasts, 2u);
  EXPECT_DOUBLE_EQ(channel.meter().totals().energy, 2.0);
  EXPECT_EQ(channel.stats().data_sent, 1u);
  EXPECT_EQ(channel.stats().acks_sent, 1u);
  EXPECT_EQ(channel.stats().delivered, 1u);
  EXPECT_EQ(channel.stats().retransmissions, 0u);
  EXPECT_EQ(channel.stats().duplicates, 0u);
  EXPECT_EQ(channel.stats().give_ups, 0u);
}

TEST(ReliableChannel, ExactlyOnceInOrderUnderHeavyLoss) {
  const sim::Topology topo = square_topology();
  sim::FaultModel faults;
  faults.loss = 0.4;
  faults.seed = 2024;
  sim::ArqOptions arq;
  arq.enabled = true;
  arq.max_retries = 30;  // give-up probability ≈ 0.64³¹: negligible
  Channel channel(topo, {}, {}, faults, arq);
  for (int i = 0; i < 20; ++i) {
    channel.send(0, 1, i);        // interleave two independent links
    channel.send(2, 3, 100 + i);
  }
  std::vector<int> on_01, on_23;
  for (const auto& d : drain(channel)) {
    if (d.from == 0) on_01.push_back(d.msg);
    if (d.from == 2) on_23.push_back(d.msg);
  }
  ASSERT_EQ(on_01.size(), 20u);  // exactly once ...
  ASSERT_EQ(on_23.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(on_01[i], i);        // ... and in send order per link
    EXPECT_EQ(on_23[i], 100 + i);
  }
  EXPECT_EQ(channel.stats().give_ups, 0u);
  EXPECT_GT(channel.stats().retransmissions, 0u);
  EXPECT_GT(channel.meter().totals().unicasts, 80u);  // > 2 per message
}

TEST(ReliableChannel, AckLossCausesSuppressedDuplicates) {
  const sim::Topology topo = square_topology();
  sim::FaultModel faults;
  faults.loss = 0.5;
  faults.seed = 5;
  sim::ArqOptions arq;
  arq.enabled = true;
  arq.max_retries = 40;
  Channel channel(topo, {}, {}, faults, arq);
  for (int i = 0; i < 30; ++i) channel.send(0, 1, i);
  const auto delivered = drain(channel, 20000);
  // Lost ACKs force retransmissions of already-delivered DATA; the receiver
  // must suppress those copies rather than deliver them twice.
  EXPECT_EQ(delivered.size(), 30u);
  EXPECT_GT(channel.stats().duplicates, 0u);
  EXPECT_EQ(channel.stats().delivered, 30u);
}

TEST(ReliableChannel, TotalLossGivesUpAfterTheRetryBudgetAndDrains) {
  const sim::Topology topo = square_topology();
  sim::FaultModel faults;
  faults.loss = 1.0;
  sim::ArqOptions arq;
  arq.enabled = true;
  arq.max_retries = 4;
  Channel channel(topo, {}, {}, faults, arq);
  channel.send(0, 1, 1);
  channel.send(0, 1, 2);
  channel.send(0, 1, 3);
  const auto delivered = drain(channel);
  EXPECT_TRUE(delivered.empty());
  EXPECT_FALSE(channel.pending());  // gave up: the queue moved on and drained
  EXPECT_EQ(channel.stats().give_ups, 3u);
  // Each session: 1 first attempt + 4 retransmissions, all charged.
  EXPECT_EQ(channel.stats().data_sent, 3u);
  EXPECT_EQ(channel.stats().retransmissions, 12u);
  EXPECT_EQ(channel.meter().totals().unicasts, 15u);
  EXPECT_DOUBLE_EQ(channel.meter().totals().energy, 15.0);
}

TEST(ReliableChannel, CrashedReceiverExhaustsTheBudgetThenMovesOn) {
  const sim::Topology topo = square_topology();
  sim::FaultModel faults;
  faults.crashes = {{1, 0, kForever}};
  sim::ArqOptions arq;
  arq.enabled = true;
  arq.max_retries = 3;
  Channel channel(topo, {}, {}, faults, arq);
  channel.send(0, 1, 7);   // doomed
  channel.send(0, 2, 8);   // healthy link, must still get through
  std::vector<sim::Delivery<int>> delivered = drain(channel);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].to, 2u);
  EXPECT_EQ(channel.stats().give_ups, 1u);
  EXPECT_EQ(channel.raw().fault_stats().dropped_crashed, 4u);  // 1 + 3 retries
}

TEST(ReliableChannel, GiveUpPathIsFullyAccountedInTelemetryAndFaultStats) {
  // The give-up path end to end: a receiver dead from birth exhausts two
  // sessions' retry budgets while a healthy link delivers. Every leg must
  // land in FaultStats AND in the telemetry event stream, and the oracle's
  // exactly-once check must stay silent — bounded give-up is a contract,
  // not a violation.
  const sim::Topology topo = square_topology();
  sim::FaultModel faults;
  faults.crashes = {{1, 0, kForever}};
  sim::ArqOptions arq;
  arq.enabled = true;
  arq.max_retries = 3;
  sim::MemoryTraceSink sink;
  sim::Telemetry telemetry(&sink);
  Channel channel(topo, {}, {}, faults, arq, &telemetry);
  sim::InvariantOracle oracle;
  channel.attach_oracle(&oracle);
  channel.send(0, 1, 7);  // doomed session #1
  channel.send(0, 2, 8);  // healthy link
  channel.send(0, 1, 9);  // doomed session #2, same link
  const auto delivered = drain(channel);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].msg, 8);
  EXPECT_EQ(channel.stats().give_ups, 2u);
  EXPECT_EQ(channel.stats().delivered, 1u);
  EXPECT_EQ(channel.stats().retransmissions, 6u);  // 3 per doomed session
  // Each doomed DATA frame (1 + 3 retries, twice) was charged and then
  // dropped at the crashed receiver; nothing was suppressed (the sender
  // is alive) or lost on the channel.
  EXPECT_EQ(channel.raw().fault_stats().dropped_crashed, 8u);
  EXPECT_EQ(channel.raw().fault_stats().suppressed, 0u);
  EXPECT_EQ(channel.raw().fault_stats().lost, 0u);
  // The event stream mirrors the stats one for one.
  std::size_t give_ups = 0;
  std::size_t timeouts = 0;
  std::size_t arq_deliveries = 0;
  std::size_t crash_drops = 0;
  for (const sim::TelemetryEvent& e : sink.events()) {
    switch (e.type) {
      case sim::EventType::kArqGiveUp: ++give_ups; break;
      case sim::EventType::kArqTimeout: ++timeouts; break;
      case sim::EventType::kArqDeliver: ++arq_deliveries; break;
      case sim::EventType::kCrashDrop: ++crash_drops; break;
      default: break;
    }
  }
  EXPECT_EQ(give_ups, channel.stats().give_ups);
  EXPECT_EQ(arq_deliveries, channel.stats().delivered);
  EXPECT_EQ(crash_drops, channel.raw().fault_stats().dropped_crashed);
  EXPECT_GT(timeouts, 0u);
  EXPECT_TRUE(oracle.ok());
}

TEST(ReliableChannel, RtoBelowTheRoundTripIsRejected) {
  const sim::Topology topo = square_topology();
  sim::ArqOptions arq;
  arq.enabled = true;
  arq.rto_rounds = 1;  // DATA+ACK needs 2 rounds: every session would retry
  EXPECT_DEATH(Channel(topo, {}, {}, {}, arq), "RTO");
}

// ------------------------------------------------------------------ ArqLink

TEST(ArqLink, DisabledIsExactlyOneChargedUnicast) {
  sim::EnergyMeter meter{geometry::PathLoss{}};
  sim::ArqLink link(nullptr, sim::ArqOptions{});
  const sim::ArqOutcome out = link.transmit(meter, 0, 1, 2.0);
  EXPECT_TRUE(out.delivered);
  EXPECT_EQ(out.data_attempts, 1u);
  EXPECT_EQ(out.ack_attempts, 0u);
  EXPECT_EQ(out.extra_rounds, 0u);
  EXPECT_EQ(meter.totals().unicasts, 1u);
  EXPECT_DOUBLE_EQ(meter.totals().energy, 4.0);  // 2² — nothing else charged
  EXPECT_EQ(link.stats().give_ups, 0u);
}

TEST(ArqLink, CleanChannelWithArqPaysExactlyDataPlusAck) {
  sim::FaultModel model;
  model.crashes = {{99, 0, 1}};  // enabled, but never touches nodes 0/1
  sim::FaultInjector injector(model);
  sim::ArqOptions arq;
  arq.enabled = true;
  sim::EnergyMeter meter{geometry::PathLoss{}};
  sim::ArqLink link(&injector, arq);
  const sim::ArqOutcome out = link.transmit(meter, 0, 1, 1.0);
  EXPECT_TRUE(out.delivered);
  EXPECT_TRUE(out.acked);
  EXPECT_EQ(out.data_attempts, 1u);
  EXPECT_EQ(out.ack_attempts, 1u);
  EXPECT_EQ(out.extra_rounds, 0u);
  EXPECT_EQ(meter.totals().unicasts, 2u);
  EXPECT_DOUBLE_EQ(meter.totals().energy, 2.0);
}

TEST(ArqLink, CrashedSenderIsSuppressedForFree) {
  sim::FaultModel model;
  model.crashes = {{0, 0, kForever}};
  sim::FaultInjector injector(model);
  sim::ArqOptions arq;
  arq.enabled = true;
  sim::EnergyMeter meter{geometry::PathLoss{}};
  sim::ArqLink link(&injector, arq);
  const sim::ArqOutcome out = link.transmit(meter, 0, 1, 1.0);
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.data_attempts, 0u);
  EXPECT_EQ(meter.totals().unicasts, 0u);
  EXPECT_DOUBLE_EQ(meter.totals().energy, 0.0);
  EXPECT_EQ(injector.stats().suppressed, 1u);
}

TEST(ArqLink, TotalLossChargesEveryAttemptThenGivesUp) {
  sim::FaultModel model;
  model.loss = 1.0;
  sim::FaultInjector injector(model);
  sim::ArqOptions arq;
  arq.enabled = true;
  arq.max_retries = 5;
  sim::EnergyMeter meter{geometry::PathLoss{}};
  sim::ArqLink link(&injector, arq);
  const sim::ArqOutcome out = link.transmit(meter, 0, 1, 1.0);
  EXPECT_FALSE(out.delivered);
  EXPECT_FALSE(out.acked);
  EXPECT_EQ(out.data_attempts, 6u);  // 1 + max_retries
  EXPECT_EQ(meter.totals().unicasts, 6u);
  EXPECT_DOUBLE_EQ(meter.totals().energy, 6.0);
  EXPECT_EQ(link.stats().give_ups, 1u);
  EXPECT_EQ(link.stats().retransmissions, 5u);
  // Backoff: 3 + 6 + 12 + 24 + 48 timeout rounds between the 6 attempts.
  EXPECT_EQ(out.extra_rounds, 93u);
}

TEST(ArqLink, LostAckForcesADuplicateDataCopy) {
  // Gilbert–Elliott with loss only in Bad and a chain that starts Good:
  // craft rates so the DATA gets through, the ACK dies, and the retransmitted
  // DATA is a receiver-side duplicate. Easier: Bernoulli with a seed known to
  // produce (data ok, ack lost, data ok, ack ok) early — assert on the
  // aggregate counters over many sessions instead of one fragile draw.
  sim::FaultModel model;
  model.loss = 0.4;
  model.seed = 31337;
  sim::FaultInjector injector(model);
  sim::ArqOptions arq;
  arq.enabled = true;
  arq.max_retries = 20;
  sim::EnergyMeter meter{geometry::PathLoss{}};
  sim::ArqLink link(&injector, arq);
  std::uint64_t delivered = 0;
  for (int i = 0; i < 200; ++i) {
    delivered += link.transmit(meter, 0, 1, 1.0).delivered ? 1 : 0;
  }
  EXPECT_EQ(delivered, 200u);  // ARQ rescued every session at this budget
  EXPECT_GT(link.stats().duplicates, 0u);
  EXPECT_GT(link.stats().retransmissions, 0u);
  EXPECT_EQ(link.stats().data_sent, 200u);
  // The meter saw every physical frame: first attempts + retransmissions +
  // ACK attempts, nothing more.
  EXPECT_EQ(meter.totals().unicasts, link.stats().data_sent +
                                         link.stats().retransmissions +
                                         link.stats().acks_sent);
}

}  // namespace
}  // namespace emst
