// Tests for the shared fragment runtime (src/emst/proto/fragment.hpp):
// identity bookkeeping, BFS views, the Borůvka merge with passive-id
// retention, deterministic crash repair, and the census collective's size
// and bit accounting.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "emst/graph/edge.hpp"
#include "emst/proto/fragment.hpp"
#include "emst/sim/meter.hpp"
#include "emst/sim/topology.hpp"

namespace emst::proto {
namespace {

using Candidate = FragmentSet::MergeCandidate;

TEST(FragmentSet, StartsAsSingletons) {
  const FragmentSet frags(4, 6);
  EXPECT_EQ(frags.node_count(), 4u);
  EXPECT_EQ(frags.fragment_count(), 4u);
  for (NodeId u = 0; u < 4; ++u) EXPECT_EQ(frags.leader(u), u);
  EXPECT_TRUE(frags.tree().empty());
  for (std::uint64_t i = 0; i < 6; ++i) EXPECT_FALSE(frags.edge_in_tree(i));
}

TEST(FragmentSet, AssignAndSetLeaders) {
  FragmentSet frags(3, 3);
  frags.assign_leaders({2, 2, 2});
  EXPECT_EQ(frags.fragment_count(), 1u);
  EXPECT_EQ(frags.leaders(), (std::vector<NodeId>{2, 2, 2}));
  frags.set_leader(0, 0);
  EXPECT_EQ(frags.leader(0), 0u);
  EXPECT_EQ(frags.fragment_count(), 2u);
}

TEST(FragmentSet, AddTreeEdgeTracksAdjacencyAndMembership) {
  FragmentSet frags(3, 3);
  frags.add_tree_edge({2, 1, 0.5}, 1);
  ASSERT_EQ(frags.tree().size(), 1u);
  // Stored canonically (u < v) regardless of the argument's orientation.
  EXPECT_EQ(frags.tree()[0].u, 1u);
  EXPECT_EQ(frags.tree()[0].v, 2u);
  EXPECT_TRUE(frags.edge_in_tree(1));
  EXPECT_FALSE(frags.edge_in_tree(0));
  EXPECT_EQ(frags.tree_adjacency()[1], (std::vector<NodeId>{2}));
  EXPECT_EQ(frags.tree_adjacency()[2], (std::vector<NodeId>{1}));
}

TEST(FragmentSet, ViewIsBfsFromTheLeader) {
  // Path 0-1-2-3 led by node 1: depths fan out from the leader.
  FragmentSet frags(4, 3);
  frags.assign_leaders({1, 1, 1, 1});
  frags.add_tree_edge({0, 1, 1.0}, 0);
  frags.add_tree_edge({1, 2, 1.0}, 1);
  frags.add_tree_edge({2, 3, 1.0}, 2);
  const FragmentView view = frags.view(1);
  ASSERT_EQ(view.order.size(), 4u);
  EXPECT_EQ(view.order[0], 1u);
  EXPECT_EQ(view.parent.at(1), graph::kNoNode);
  EXPECT_EQ(view.parent.at(0), 1u);
  EXPECT_EQ(view.parent.at(2), 1u);
  EXPECT_EQ(view.parent.at(3), 2u);
  EXPECT_EQ(view.depth.at(3), 2u);
  EXPECT_EQ(view.max_depth, 2u);
}

TEST(FragmentSet, MergeDeduplicatesMutualPicksAndElectsCoreEndpoint) {
  // Fragments {0,1} (leader 0) and {2,3} (leader 2) both choose edge 1-2.
  const std::vector<graph::Edge> edges = {
      {0, 1, 0.1}, {1, 2, 0.2}, {2, 3, 0.3}};
  FragmentSet frags(4, edges.size());
  frags.assign_leaders({0, 0, 2, 2});
  frags.add_tree_edge(edges[0], 0);
  frags.add_tree_edge(edges[2], 2);

  const std::unordered_map<NodeId, Candidate> selected = {
      {0, Candidate{1, 1, 2}}, {2, Candidate{1, 2, 1}}};
  std::unordered_set<NodeId> passive;
  const std::vector<NodeId> changed =
      frags.merge(selected, passive, /*retain_passive_id=*/true, edges);

  // The mutual pick lands in the forest exactly once.
  EXPECT_EQ(frags.tree().size(), 3u);
  EXPECT_TRUE(frags.edge_in_tree(1));
  EXPECT_EQ(frags.fragment_count(), 1u);
  // New leader = higher-id endpoint of the core edge (1,2) -> node 2; only
  // the old fragment of 0 changes identity.
  EXPECT_EQ(frags.leaders(), (std::vector<NodeId>{2, 2, 2, 2}));
  EXPECT_EQ(changed, (std::vector<NodeId>{0, 1}));
}

TEST(FragmentSet, MergeRetainsThePassiveLeader) {
  // Passive singleton {0} is absorbed by {1,2}; the group keeps id 0.
  const std::vector<graph::Edge> edges = {{0, 1, 0.1}, {1, 2, 0.2}};
  FragmentSet frags(3, edges.size());
  frags.assign_leaders({0, 2, 2});
  frags.add_tree_edge(edges[1], 1);

  const std::unordered_map<NodeId, Candidate> selected = {
      {2, Candidate{0, 1, 0}}};
  std::unordered_set<NodeId> passive = {0};
  const std::vector<NodeId> changed =
      frags.merge(selected, passive, /*retain_passive_id=*/true, edges);

  EXPECT_EQ(frags.leaders(), (std::vector<NodeId>{0, 0, 0}));
  EXPECT_EQ(changed, (std::vector<NodeId>{1, 2}));
  // Passivity survives under the retained id.
  EXPECT_EQ(passive, (std::unordered_set<NodeId>{0}));
}

TEST(FragmentSet, MergeWithoutRetentionUsesTheCoreEdge) {
  const std::vector<graph::Edge> edges = {{0, 1, 0.1}, {1, 2, 0.2}};
  FragmentSet frags(3, edges.size());
  frags.assign_leaders({0, 2, 2});
  frags.add_tree_edge(edges[1], 1);

  const std::unordered_map<NodeId, Candidate> selected = {
      {2, Candidate{0, 1, 0}}};
  std::unordered_set<NodeId> passive = {0};
  const std::vector<NodeId> changed =
      frags.merge(selected, passive, /*retain_passive_id=*/false, edges);

  // Core edge (1,0) -> higher endpoint 1 leads; every node changes.
  EXPECT_EQ(frags.leaders(), (std::vector<NodeId>{1, 1, 1}));
  EXPECT_EQ(changed, (std::vector<NodeId>{0, 1, 2}));
  // The merged fragment is still the passive one, under its new name.
  EXPECT_EQ(passive, (std::unordered_set<NodeId>{1}));
}

/// Canonical edge list of a 5-node path, plus its index lookup.
struct PathFixture {
  std::vector<graph::Edge> edges;
  [[nodiscard]] std::uint64_t index_of(NodeId u, NodeId v) const {
    for (std::uint64_t i = 0; i < edges.size(); ++i) {
      if (edges[i] == graph::Edge{u, v, 0.0}) return i;
    }
    ADD_FAILURE() << "unknown edge " << u << "-" << v;
    return 0;
  }
};

TEST(FragmentSet, RepairSplitsAroundDownNodes) {
  // Path 0-1-2-3-4 all led by 0; node 2 crashes.
  PathFixture fix;
  for (NodeId u = 0; u + 1 < 5; ++u) fix.edges.push_back({u, u + 1, 0.1});
  FragmentSet frags(5, fix.edges.size());
  frags.assign_leaders({0, 0, 0, 0, 0});
  for (std::uint64_t i = 0; i < fix.edges.size(); ++i)
    frags.add_tree_edge(fix.edges[i], i);

  const std::vector<bool> down = {false, false, true, false, false};
  const std::vector<NodeId> changed = frags.repair(
      down, [&](NodeId u, NodeId v) { return fix.index_of(u, v); });

  // Edges incident to the crash are gone from the forest.
  EXPECT_EQ(frags.tree().size(), 2u);
  EXPECT_FALSE(frags.edge_in_tree(fix.index_of(1, 2)));
  EXPECT_FALSE(frags.edge_in_tree(fix.index_of(2, 3)));
  EXPECT_TRUE(frags.edge_in_tree(fix.index_of(0, 1)));
  // {0,1} keeps the surviving old leader; {3,4} re-elects its minimum live
  // member; the down node becomes a dormant singleton.
  EXPECT_EQ(frags.leaders(), (std::vector<NodeId>{0, 0, 2, 3, 3}));
  // Only LIVE nodes whose identity changed are returned for re-announce.
  EXPECT_EQ(changed, (std::vector<NodeId>{3, 4}));
}

TEST(FragmentSet, RepairKeepsAnInteriorLeaderAlive) {
  // Path 0-1-2 led by the middle node 1; crashing 2 leaves the old leader
  // inside the surviving component, so nothing live changes identity.
  PathFixture fix;
  fix.edges = {{0, 1, 0.1}, {1, 2, 0.2}};
  FragmentSet frags(3, fix.edges.size());
  frags.assign_leaders({1, 1, 1});
  frags.add_tree_edge(fix.edges[0], 0);
  frags.add_tree_edge(fix.edges[1], 1);

  const std::vector<bool> down = {false, false, true};
  const std::vector<NodeId> changed = frags.repair(
      down, [&](NodeId u, NodeId v) { return fix.index_of(u, v); });

  EXPECT_EQ(frags.leaders(), (std::vector<NodeId>{1, 1, 2}));
  EXPECT_TRUE(changed.empty());
}

TEST(FragmentCensus, CountsFragmentsAndBillsCensusBits) {
  // Two 2-node fragments; the census answers each node with its fragment's
  // size and bills one query + one count per tree edge.
  const sim::Topology topo(
      {{0.1, 0.5}, {0.2, 0.5}, {0.6, 0.5}, {0.7, 0.5}}, 0.15);
  ASSERT_EQ(topo.graph().edge_count(), 2u);
  const std::vector<NodeId> leader = {0, 0, 2, 2};
  const std::vector<graph::Edge> tree = {{0, 1, 0.1}, {2, 3, 0.1}};
  const WireContext ctx =
      WireContext::for_topology(topo.node_count(), topo.graph().edge_count());

  sim::EnergyMeter meter;
  const std::vector<std::size_t> sizes =
      fragment_census(topo, leader, tree, meter, ctx);

  EXPECT_EQ(sizes, (std::vector<std::size_t>{2, 2, 2, 2}));
  const sim::Accounting totals = meter.totals();
  // One query down + one count up per tree edge.
  EXPECT_EQ(totals.unicasts, 4u);
  EXPECT_EQ(totals.bits,
            2 * census_query_bits(ctx) + 2 * census_count_bits(ctx));
}

}  // namespace
}  // namespace emst::proto
