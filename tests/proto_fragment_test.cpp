// Tests for the shared fragment runtime (src/emst/proto/fragment.hpp):
// identity bookkeeping, BFS views, the Borůvka merge with passive-id
// retention, deterministic crash repair, and the census collective's size
// and bit accounting. The runtime is index-free (keyed by node ids and edge
// endpoints, never by positions in a global edge list), so the same tests
// cover what both topology backends rely on.
#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "emst/graph/edge.hpp"
#include "emst/proto/fragment.hpp"
#include "emst/sim/meter.hpp"
#include "emst/sim/topology.hpp"

namespace emst::proto {
namespace {

using Candidate = FragmentSet::MergeCandidate;
using Selected = std::vector<std::pair<NodeId, Candidate>>;

TEST(FragmentSet, StartsAsSingletons) {
  const FragmentSet frags(4);
  EXPECT_EQ(frags.node_count(), 4u);
  EXPECT_EQ(frags.fragment_count(), 4u);
  for (NodeId u = 0; u < 4; ++u) EXPECT_EQ(frags.leader(u), u);
  EXPECT_TRUE(frags.tree().empty());
  for (NodeId u = 0; u < 4; ++u)
    for (NodeId v = 0; v < 4; ++v) EXPECT_FALSE(frags.edge_in_tree(u, v));
}

TEST(FragmentSet, AssignAndSetLeaders) {
  FragmentSet frags(3);
  frags.assign_leaders({2, 2, 2});
  EXPECT_EQ(frags.fragment_count(), 1u);
  EXPECT_EQ(frags.leaders(), (std::vector<NodeId>{2, 2, 2}));
  frags.set_leader(0, 0);
  EXPECT_EQ(frags.leader(0), 0u);
  EXPECT_EQ(frags.fragment_count(), 2u);
}

TEST(FragmentSet, AddTreeEdgeTracksAdjacencyAndMembership) {
  FragmentSet frags(3);
  frags.add_tree_edge({2, 1, 0.5});
  ASSERT_EQ(frags.tree().size(), 1u);
  // Stored canonically (u < v) regardless of the argument's orientation.
  EXPECT_EQ(frags.tree()[0].u, 1u);
  EXPECT_EQ(frags.tree()[0].v, 2u);
  EXPECT_TRUE(frags.edge_in_tree(1, 2));
  EXPECT_TRUE(frags.edge_in_tree(2, 1));
  EXPECT_FALSE(frags.edge_in_tree(0, 1));
  EXPECT_EQ(frags.tree_adjacency()[1], (std::vector<NodeId>{2}));
  EXPECT_EQ(frags.tree_adjacency()[2], (std::vector<NodeId>{1}));
}

TEST(FragmentSet, CandidateOrderMirrorsTheCanonicalEdgeOrder) {
  // (weight, canonical endpoints) — orientation of (from, to) is irrelevant,
  // and the default candidate (no outgoing edge) ranks after everything.
  const Candidate a{0.1, 3, 1};
  const Candidate b{0.2, 0, 1};
  const Candidate c{0.2, 2, 0};
  EXPECT_TRUE(FragmentSet::candidate_less(a, b));
  EXPECT_TRUE(FragmentSet::candidate_less(b, c));   // same w: (0,1) < (0,2)
  EXPECT_FALSE(FragmentSet::candidate_less(c, b));
  EXPECT_FALSE(FragmentSet::candidate_less(a, Candidate{0.1, 1, 3}));
  const Candidate none;
  EXPECT_FALSE(none.valid());
  EXPECT_TRUE(FragmentSet::candidate_less(a, none));
  EXPECT_FALSE(FragmentSet::candidate_less(none, a));
}

TEST(FragmentSet, ViewIsBfsFromTheLeader) {
  // Path 0-1-2-3 led by node 1: depths fan out from the leader.
  FragmentSet frags(4);
  frags.assign_leaders({1, 1, 1, 1});
  frags.add_tree_edge({0, 1, 1.0});
  frags.add_tree_edge({1, 2, 1.0});
  frags.add_tree_edge({2, 3, 1.0});
  const FragmentView view = frags.view(1);
  ASSERT_EQ(view.order.size(), 4u);
  EXPECT_EQ(view.order[0], 1u);
  EXPECT_EQ(view.parent.at(1), graph::kNoNode);
  EXPECT_EQ(view.parent.at(0), 1u);
  EXPECT_EQ(view.parent.at(2), 1u);
  EXPECT_EQ(view.parent.at(3), 2u);
  EXPECT_EQ(view.depth.at(3), 2u);
  EXPECT_EQ(view.max_depth, 2u);
}

TEST(FragmentSet, MergeDeduplicatesMutualPicksAndElectsCoreEndpoint) {
  // Fragments {0,1} (leader 0) and {2,3} (leader 2) both choose edge 1-2.
  FragmentSet frags(4);
  frags.assign_leaders({0, 0, 2, 2});
  frags.add_tree_edge({0, 1, 0.1});
  frags.add_tree_edge({2, 3, 0.3});

  const Selected selected = {{0, Candidate{0.2, 1, 2}},
                             {2, Candidate{0.2, 2, 1}}};
  std::unordered_set<NodeId> passive;
  const std::vector<NodeId> changed =
      frags.merge(selected, passive, /*retain_passive_id=*/true);

  // The mutual pick lands in the forest exactly once.
  EXPECT_EQ(frags.tree().size(), 3u);
  EXPECT_TRUE(frags.edge_in_tree(1, 2));
  EXPECT_EQ(frags.fragment_count(), 1u);
  // New leader = higher-id endpoint of the core edge (1,2) -> node 2; only
  // the old fragment of 0 changes identity.
  EXPECT_EQ(frags.leaders(), (std::vector<NodeId>{2, 2, 2, 2}));
  EXPECT_EQ(changed, (std::vector<NodeId>{0, 1}));
}

TEST(FragmentSet, MergeRetainsThePassiveLeader) {
  // Passive singleton {0} is absorbed by {1,2}; the group keeps id 0.
  FragmentSet frags(3);
  frags.assign_leaders({0, 2, 2});
  frags.add_tree_edge({1, 2, 0.2});

  const Selected selected = {{2, Candidate{0.1, 1, 0}}};
  std::unordered_set<NodeId> passive = {0};
  const std::vector<NodeId> changed =
      frags.merge(selected, passive, /*retain_passive_id=*/true);

  EXPECT_EQ(frags.leaders(), (std::vector<NodeId>{0, 0, 0}));
  EXPECT_EQ(changed, (std::vector<NodeId>{1, 2}));
  // Passivity survives under the retained id.
  EXPECT_EQ(passive, (std::unordered_set<NodeId>{0}));
}

TEST(FragmentSet, MergeWithoutRetentionUsesTheCoreEdge) {
  FragmentSet frags(3);
  frags.assign_leaders({0, 2, 2});
  frags.add_tree_edge({1, 2, 0.2});

  const Selected selected = {{2, Candidate{0.1, 1, 0}}};
  std::unordered_set<NodeId> passive = {0};
  const std::vector<NodeId> changed =
      frags.merge(selected, passive, /*retain_passive_id=*/false);

  // Core edge (1,0) -> higher endpoint 1 leads; every node changes.
  EXPECT_EQ(frags.leaders(), (std::vector<NodeId>{1, 1, 1}));
  EXPECT_EQ(changed, (std::vector<NodeId>{0, 1, 2}));
  // The merged fragment is still the passive one, under its new name.
  EXPECT_EQ(passive, (std::unordered_set<NodeId>{1}));
}

TEST(FragmentSet, RepairSplitsAroundDownNodes) {
  // Path 0-1-2-3-4 all led by 0; node 2 crashes.
  FragmentSet frags(5);
  frags.assign_leaders({0, 0, 0, 0, 0});
  for (NodeId u = 0; u + 1 < 5; ++u) frags.add_tree_edge({u, u + 1, 0.1});

  const std::vector<bool> down = {false, false, true, false, false};
  const std::vector<NodeId> changed = frags.repair(down);

  // Edges incident to the crash are gone from the forest.
  EXPECT_EQ(frags.tree().size(), 2u);
  EXPECT_FALSE(frags.edge_in_tree(1, 2));
  EXPECT_FALSE(frags.edge_in_tree(2, 3));
  EXPECT_TRUE(frags.edge_in_tree(0, 1));
  EXPECT_TRUE(frags.edge_in_tree(3, 4));
  // {0,1} keeps the surviving old leader; {3,4} re-elects its minimum live
  // member; the down node becomes a dormant singleton.
  EXPECT_EQ(frags.leaders(), (std::vector<NodeId>{0, 0, 2, 3, 3}));
  // Only LIVE nodes whose identity changed are returned for re-announce.
  EXPECT_EQ(changed, (std::vector<NodeId>{3, 4}));
}

TEST(FragmentSet, RepairKeepsAnInteriorLeaderAlive) {
  // Path 0-1-2 led by the middle node 1; crashing 2 leaves the old leader
  // inside the surviving component, so nothing live changes identity.
  FragmentSet frags(3);
  frags.assign_leaders({1, 1, 1});
  frags.add_tree_edge({0, 1, 0.1});
  frags.add_tree_edge({1, 2, 0.2});

  const std::vector<bool> down = {false, false, true};
  const std::vector<NodeId> changed = frags.repair(down);

  EXPECT_EQ(frags.leaders(), (std::vector<NodeId>{1, 1, 2}));
  EXPECT_TRUE(changed.empty());
}

TEST(FragmentCensus, CountsFragmentsAndBillsCensusBits) {
  // Two 2-node fragments; the census answers each node with its fragment's
  // size and bills one query + one count per tree edge.
  const sim::Topology topo(
      {{0.1, 0.5}, {0.2, 0.5}, {0.6, 0.5}, {0.7, 0.5}}, 0.15);
  ASSERT_EQ(topo.graph().edge_count(), 2u);
  const std::vector<NodeId> leader = {0, 0, 2, 2};
  const std::vector<graph::Edge> tree = {{0, 1, 0.1}, {2, 3, 0.1}};
  const WireContext ctx =
      WireContext::for_topology(topo.node_count(), topo.graph().edge_count());

  sim::EnergyMeter meter;
  const std::vector<std::size_t> sizes =
      fragment_census(topo, leader, tree, meter, ctx);

  EXPECT_EQ(sizes, (std::vector<std::size_t>{2, 2, 2, 2}));
  const sim::Accounting totals = meter.totals();
  // One query down + one count up per tree edge.
  EXPECT_EQ(totals.unicasts, 4u);
  EXPECT_EQ(totals.bits,
            2 * census_query_bits(ctx) + 2 * census_count_bits(ctx));
}

}  // namespace
}  // namespace emst::proto
