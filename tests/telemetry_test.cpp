// Tests for the structured telemetry subsystem (docs/TELEMETRY.md): the
// meter's event emission and context stamping, the per-phase × per-kind
// breakdown matrix, and the replay invariant — `replay_events` must rebuild
// Accounting / FaultStats / ArqStats / the breakdown bit-for-bit from the
// event stream alone, for every driver, on both engines, with and without
// faults + ARQ. Also pins the unified RunReport views and the guarantee
// that attaching telemetry never perturbs a run's results.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "emst/eopt/eopt.hpp"
#include "emst/geometry/sampling.hpp"
#include "emst/ghs/classic.hpp"
#include "emst/ghs/sync.hpp"
#include "emst/nnt/connt.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/sim/meter.hpp"
#include "emst/sim/reliable.hpp"
#include "emst/sim/telemetry.hpp"
#include "emst/sim/trace_replay.hpp"
#include "emst/support/rng.hpp"

namespace emst {
namespace {

using sim::EventType;
using sim::MsgKind;
using sim::PhaseTag;

sim::Topology random_topology(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  return sim::Topology(geometry::uniform_points(n, rng),
                       rgg::connectivity_radius(n));
}

// Bitwise comparisons: the replay invariant is exact, so no tolerances.
void expect_accounting_eq(const sim::Accounting& a, const sim::Accounting& b) {
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.unicasts, b.unicasts);
  EXPECT_EQ(a.broadcasts, b.broadcasts);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.rounds, b.rounds);
}

// Cross-derivation comparisons (a kind-bucketed row sum vs the sequential
// total): integers exact, energy to an ulp-scale bound — splitting one
// accumulation into per-kind cells reassociates the double sum.
void expect_accounting_near(const sim::Accounting& a, const sim::Accounting& b) {
  EXPECT_NEAR(a.energy, b.energy, 1e-12 * std::max(1.0, b.energy));
  EXPECT_EQ(a.unicasts, b.unicasts);
  EXPECT_EQ(a.broadcasts, b.broadcasts);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.rounds, b.rounds);
}

void expect_faults_eq(const sim::FaultStats& a, const sim::FaultStats& b) {
  EXPECT_EQ(a.lost, b.lost);
  EXPECT_EQ(a.dropped_crashed, b.dropped_crashed);
  EXPECT_EQ(a.suppressed, b.suppressed);
}

void expect_arq_eq(const sim::ArqStats& a, const sim::ArqStats& b) {
  EXPECT_EQ(a.data_sent, b.data_sent);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.acks_sent, b.acks_sent);
  EXPECT_EQ(a.duplicates, b.duplicates);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.give_ups, b.give_ups);
  EXPECT_EQ(a.timeout_rounds, b.timeout_rounds);
}

sim::FaultModel lossy_model(std::uint64_t seed) {
  sim::FaultModel model;
  model.loss = 0.1;
  model.seed = seed;
  model.crashes = {{3, 4, 9}, {7, 6, 12}};
  return model;
}

sim::ArqOptions arq_on() {
  sim::ArqOptions arq;
  arq.enabled = true;
  arq.max_retries = 6;
  return arq;
}

// ------------------------------------------------------------------- meter

TEST(TelemetryMeter, EventsCarryTheAmbientContext) {
  sim::MemoryTraceSink sink;
  sim::Telemetry telemetry(&sink);
  sim::EnergyMeter meter;
  meter.attach_telemetry(&telemetry);

  meter.set_phase(PhaseTag::kStep1);
  meter.set_kind(MsgKind::kConnect);
  meter.set_fragment(42);
  meter.charge_unicast(3, 5, 0.25);
  meter.set_kind(MsgKind::kAnnounce);
  meter.charge_broadcast(3, 0.5, 7);
  meter.tick_rounds(2);
  meter.note_event(EventType::kLoss, 1, 2, 0.125);

  ASSERT_EQ(sink.events().size(), 4u);
  const sim::TelemetryEvent& uni = sink.events()[0];
  EXPECT_EQ(uni.type, EventType::kUnicast);
  EXPECT_EQ(uni.kind, MsgKind::kConnect);
  EXPECT_EQ(uni.phase, PhaseTag::kStep1);
  EXPECT_EQ(uni.from, 3u);
  EXPECT_EQ(uni.to, 5u);
  EXPECT_EQ(uni.fragment, 42u);
  EXPECT_EQ(uni.reach, 0.25);
  EXPECT_EQ(uni.energy, meter.model().cost(0.25));
  EXPECT_EQ(uni.round, 0u);

  const sim::TelemetryEvent& bcast = sink.events()[1];
  EXPECT_EQ(bcast.type, EventType::kBroadcast);
  EXPECT_EQ(bcast.kind, MsgKind::kAnnounce);
  EXPECT_EQ(bcast.receivers, 7u);
  EXPECT_EQ(bcast.to, sim::kNoEventNode);

  const sim::TelemetryEvent& round = sink.events()[2];
  EXPECT_EQ(round.type, EventType::kRound);
  EXPECT_EQ(round.value, 2u);
  EXPECT_EQ(round.round, 2u);  // stamped after the increment: clock-final

  const sim::TelemetryEvent& loss = sink.events()[3];
  EXPECT_EQ(loss.type, EventType::kLoss);
  EXPECT_EQ(loss.energy, 0.0);
  EXPECT_EQ(loss.reach, 0.125);
}

TEST(TelemetryMeter, InertHubIsDroppedAtAttach) {
  sim::Telemetry inert;  // no sink, no aggregation
  sim::EnergyMeter meter;
  meter.attach_telemetry(&inert);
  EXPECT_EQ(meter.telemetry(), nullptr);
  meter.attach_telemetry(nullptr);
  EXPECT_EQ(meter.telemetry(), nullptr);

  sim::MemoryTraceSink sink;
  sim::Telemetry live(&sink);
  meter.attach_telemetry(&live);
  EXPECT_EQ(meter.telemetry(), &live);
}

TEST(TelemetryMeter, PhaseScopeRestoresOnExit) {
  sim::EnergyMeter meter;
  EXPECT_EQ(meter.phase(), PhaseTag::kRun);
  {
    const auto outer = meter.scoped_phase(PhaseTag::kStep1);
    EXPECT_EQ(meter.phase(), PhaseTag::kStep1);
    {
      const auto inner = meter.scoped_phase(PhaseTag::kCensus);
      EXPECT_EQ(meter.phase(), PhaseTag::kCensus);
    }
    EXPECT_EQ(meter.phase(), PhaseTag::kStep1);
  }
  EXPECT_EQ(meter.phase(), PhaseTag::kRun);
}

TEST(TelemetryMeter, ZeroRoundTickEmitsNothing) {
  sim::MemoryTraceSink sink;
  sim::Telemetry telemetry(&sink);
  sim::EnergyMeter meter;
  meter.attach_telemetry(&telemetry);
  meter.tick_rounds(0);
  EXPECT_TRUE(sink.events().empty());
  EXPECT_EQ(meter.totals().rounds, 0u);
}

TEST(TelemetryMeter, BreakdownRowSumsMatchTotals) {
  sim::EnergyMeter meter;
  meter.enable_breakdown();
  meter.set_kind(MsgKind::kTest);
  meter.charge_unicast(0, 1, 0.1);
  meter.set_kind(MsgKind::kAccept);
  meter.charge_unicast(1, 0, 0.2);
  meter.charge_broadcast(0, 0.3, 4);
  meter.tick_rounds(5);

  // Single-phase run: the kRun row covers the totals.
  const sim::Accounting row = meter.breakdown().phase_total(PhaseTag::kRun);
  expect_accounting_near(row, meter.totals());
  EXPECT_EQ(meter.breakdown().cell(PhaseTag::kRun, MsgKind::kTest).messages,
            1u);
  EXPECT_EQ(meter.breakdown().cell(PhaseTag::kRun, MsgKind::kAccept).messages,
            2u);  // unicast + broadcast, both charged under kAccept
}

// ------------------------------------------------------------------ replay

TEST(TelemetryReplay, ManualStreamRebuildsTheMeter) {
  sim::MemoryTraceSink sink;
  sim::Telemetry telemetry(&sink);
  sim::EnergyMeter meter;
  meter.attach_telemetry(&telemetry);
  meter.enable_breakdown();

  support::Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    meter.set_kind(static_cast<MsgKind>(
        rng.uniform_int(static_cast<std::uint64_t>(MsgKind::kCount))));
    if (rng.uniform() < 0.7) {
      meter.charge_unicast(i % 17, (i + 1) % 17, rng.uniform());
    } else {
      meter.charge_broadcast(i % 17, rng.uniform(),
                             static_cast<std::size_t>(i % 5));
    }
    if (i % 13 == 0) meter.tick_round();
  }

  const sim::ReplayTotals replay = sim::replay_events(sink.events());
  expect_accounting_eq(replay.totals, meter.totals());
  EXPECT_TRUE(replay.breakdown == meter.breakdown());
}

TEST(TelemetryReplay, SyncGhsFaultFreeIsExactAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const sim::Topology topo = random_topology(72, seed);
    sim::MemoryTraceSink sink;
    sim::Telemetry telemetry(&sink);
    ghs::SyncGhsOptions options;
    options.telemetry = &telemetry;
    options.record_breakdown = true;
    const ghs::SyncGhsResult result = ghs::run_sync_ghs(topo, options);

    const sim::ReplayTotals replay = sim::replay_events(sink.events());
    expect_accounting_eq(replay.totals, result.run.totals);
    expect_faults_eq(replay.faults, result.faults);
    expect_arq_eq(replay.arq, result.arq);
    ASSERT_TRUE(result.run.breakdown_recorded);
    EXPECT_TRUE(replay.breakdown == result.run.energy_breakdown);
  }
}

TEST(TelemetryReplay, SyncGhsUnderFaultsAndArqIsExactAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const sim::Topology topo = random_topology(64, seed);
    sim::MemoryTraceSink sink;
    sim::Telemetry telemetry(&sink);
    ghs::SyncGhsOptions options;
    options.telemetry = &telemetry;
    options.record_breakdown = true;
    options.faults = lossy_model(seed * 101);
    options.arq = arq_on();
    const ghs::SyncGhsResult result = ghs::run_sync_ghs(topo, options);

    const sim::ReplayTotals replay = sim::replay_events(sink.events());
    expect_accounting_eq(replay.totals, result.run.totals);
    expect_faults_eq(replay.faults, result.faults);
    expect_arq_eq(replay.arq, result.arq);
    EXPECT_TRUE(replay.breakdown == result.run.energy_breakdown);
    // Under 10% loss something must actually have happened, or the test
    // proves nothing.
    EXPECT_GT(result.faults.lost, 0u);
    EXPECT_GT(result.arq.retransmissions, 0u);
  }
}

TEST(TelemetryReplay, EoptIsExactAcrossSeedsWithAndWithoutFaults) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    for (const bool faulty : {false, true}) {
      support::Rng rng(seed);
      const eopt::EoptOptions base;
      const sim::Topology topo =
          eopt::eopt_topology(geometry::uniform_points(80, rng), base);
      sim::MemoryTraceSink sink;
      sim::Telemetry telemetry(&sink);
      eopt::EoptOptions options;
      options.telemetry = &telemetry;
      if (faulty) {
        options.faults = lossy_model(seed * 31);
        options.arq = arq_on();
      }
      const eopt::EoptResult result = eopt::run_eopt(topo, options);

      const sim::ReplayTotals replay = sim::replay_events(sink.events());
      expect_accounting_eq(replay.totals, result.run.totals);
      expect_faults_eq(replay.faults, result.fault_stats);
      expect_arq_eq(replay.arq, result.arq);
      ASSERT_TRUE(result.run.breakdown_recorded);
      EXPECT_TRUE(replay.breakdown == result.run.energy_breakdown);
    }
  }
}

TEST(TelemetryReplay, EoptStepSharesAreThePhaseRows) {
  const sim::Topology topo = random_topology(90, 5);
  eopt::EoptOptions options;
  const eopt::EoptResult result = eopt::run_eopt(topo, options);

  // The Thm 5.3 stage shares ARE phase_total of the recorded matrix — one
  // definition, so any other consumer of the matrix agrees bit-for-bit.
  ASSERT_TRUE(result.run.breakdown_recorded);
  const sim::EnergyBreakdown& matrix = result.run.energy_breakdown;
  expect_accounting_eq(result.step1, matrix.phase_total(PhaseTag::kStep1));
  expect_accounting_eq(result.census, matrix.phase_total(PhaseTag::kCensus));
  expect_accounting_eq(result.step2, matrix.phase_total(PhaseTag::kStep2));

  // Integer counters split exactly across stages; energy to an ulp bound
  // (double sums reassociate across rows).
  EXPECT_EQ(result.step1.unicasts + result.census.unicasts +
                result.step2.unicasts,
            result.run.totals.unicasts);
  EXPECT_EQ(result.step1.broadcasts + result.census.broadcasts +
                result.step2.broadcasts,
            result.run.totals.broadcasts);
  EXPECT_EQ(result.step1.rounds + result.census.rounds + result.step2.rounds,
            result.run.totals.rounds);
  const double sum =
      result.step1.energy + result.census.energy + result.step2.energy;
  EXPECT_NEAR(sum, result.run.totals.energy,
              1e-12 * result.run.totals.energy);

  // The census stage is exactly the kCensus message class.
  expect_accounting_eq(result.census,
                       [&] {
                         sim::Accounting census_kind;
                         const auto& cell =
                             matrix.cell(PhaseTag::kCensus, MsgKind::kCensus);
                         census_kind.energy = cell.energy;
                         census_kind.unicasts = cell.messages;
                         census_kind.deliveries = cell.messages;
                         census_kind.rounds = result.census.rounds;
                         return census_kind;
                       }());
}

TEST(TelemetryReplay, ClassicGhsCrossEngineStreamsAreIdentical) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const sim::Topology topo = random_topology(48, seed);
    auto run = [&](bool reference) {
      auto sink = std::make_unique<sim::MemoryTraceSink>();
      sim::Telemetry telemetry(sink.get());
      ghs::ClassicGhsOptions options;
      options.moe = ghs::MoeStrategy::kCachedConfirm;
      options.telemetry = &telemetry;
      options.record_breakdown = true;
      options.use_reference_engine = reference;
      ghs::MstRunResult result = ghs::run_classic_ghs(topo, options);
      return std::pair(std::move(sink), std::move(result));
    };
    const auto [calendar_sink, calendar] = run(false);
    const auto [reference_sink, reference] = run(true);

    // Same delivery contract ⇒ same protocol execution ⇒ the same events in
    // the same order — the strongest form of engine equivalence we test.
    EXPECT_EQ(calendar_sink->events(), reference_sink->events());
    expect_accounting_eq(calendar.totals, reference.totals);
    EXPECT_EQ(calendar.tree, reference.tree);

    const sim::ReplayTotals replay =
        sim::replay_events(calendar_sink->events());
    expect_accounting_eq(replay.totals, calendar.totals);
    ASSERT_TRUE(calendar.breakdown_recorded);
    EXPECT_TRUE(replay.breakdown == calendar.energy_breakdown);
  }
}

TEST(TelemetryReplay, ReliableChannelRebuildsArqAndFaultStats) {
  const sim::Topology topo = random_topology(24, 9);
  sim::MemoryTraceSink sink;
  sim::Telemetry telemetry(&sink);
  sim::FaultModel faults = lossy_model(77);
  faults.loss = 0.25;
  sim::ReliableChannel<int> channel(topo, {}, {}, faults, arq_on(),
                                    &telemetry);

  support::Rng rng(3);
  std::size_t delivered = 0;
  for (int i = 0; i < 200; ++i) {
    const auto u = static_cast<graph::NodeId>(rng.uniform_int(24));
    const std::vector<sim::NodeId> near =
        topo.nodes_within(u, topo.max_radius());
    if (near.empty()) continue;  // isolated node: nothing to send along
    const sim::NodeId v = near[rng.uniform_int(near.size())];
    channel.send(u, v, i);
    delivered += channel.collect_round().size();
  }
  std::size_t guard = 0;
  while (channel.pending()) {
    ASSERT_LT(++guard, 10000u);
    delivered += channel.collect_round().size();
  }

  const sim::ReplayTotals replay = sim::replay_events(sink.events());
  expect_accounting_eq(replay.totals, channel.meter().totals());
  expect_arq_eq(replay.arq, channel.stats());
  expect_faults_eq(replay.faults, channel.raw().fault_stats());
  EXPECT_EQ(delivered, channel.stats().delivered);
  EXPECT_GT(channel.stats().retransmissions, 0u);
}

// -------------------------------------------------------------- aggregates

TEST(TelemetryAggregate, NodeLedgerMatchesTheMeterBitForBit) {
  const sim::Topology topo = random_topology(60, 11);
  sim::Telemetry telemetry;
  telemetry.enable_aggregation(topo.node_count());
  ghs::SyncGhsOptions options;
  options.telemetry = &telemetry;
  options.track_per_node_energy = true;
  const ghs::SyncGhsResult result = ghs::run_sync_ghs(topo, options);

  // Both ledgers add the same costs in the same order — bitwise equal.
  ASSERT_EQ(telemetry.aggregate().node_energy.size(),
            result.run.per_node_energy.size());
  for (std::size_t u = 0; u < topo.node_count(); ++u) {
    EXPECT_EQ(telemetry.aggregate().node_energy[u],
              result.run.per_node_energy[u])
        << "node " << u;
  }
}

TEST(TelemetryAggregate, AwakeRoundsCountDistinctActiveRounds) {
  sim::Telemetry telemetry;
  telemetry.enable_aggregation(3);
  sim::EnergyMeter meter;
  meter.attach_telemetry(&telemetry);

  meter.charge_unicast(0, 1, 0.1);  // round 0: 0 and 1 awake
  meter.charge_unicast(0, 1, 0.1);  // same round: no double count
  meter.tick_round();
  meter.charge_broadcast(2, 0.2, 2);  // round 1: only the SENDER is awake
  meter.tick_round();

  const sim::TelemetryAggregate& agg = telemetry.aggregate();
  EXPECT_EQ(agg.rounds, 2u);
  EXPECT_EQ(agg.awake_rounds[0], 1u);
  EXPECT_EQ(agg.awake_rounds[1], 1u);
  EXPECT_EQ(agg.awake_rounds[2], 1u);  // broadcast listeners stay idle
  EXPECT_EQ(agg.idle_rounds(0), 1u);
  EXPECT_EQ(agg.idle_rounds(2), 1u);
}

TEST(TelemetryAggregate, EoptPerNodeFallsBackToTheAggregate) {
  const sim::Topology topo = random_topology(70, 13);
  sim::Telemetry telemetry;
  telemetry.enable_aggregation(topo.node_count());
  eopt::EoptOptions options;
  options.telemetry = &telemetry;
  options.track_per_node_energy = false;  // the old silently-empty case
  const eopt::EoptResult result = eopt::run_eopt(topo, options);

  ASSERT_EQ(result.per_node_energy.size(), topo.node_count());
  double total = 0.0;
  for (const double e : result.per_node_energy) total += e;
  EXPECT_NEAR(total, result.run.totals.energy,
              1e-12 * result.run.totals.energy);
  ASSERT_TRUE(result.report().has_per_node());
}

// ------------------------------------------------------------------- jsonl

TEST(TelemetryJsonl, OneParseableLinePerEventPlusFraming) {
  const sim::Topology topo = random_topology(40, 17);
  std::ostringstream out;
  sim::JsonlTraceSink jsonl(out);
  sim::MemoryTraceSink memory;
  // Write the trace while also buffering, to compare counts.
  sim::write_trace_header(out, "sync_ghs", topo.node_count(), 17);
  sim::Telemetry telemetry(&jsonl);
  ghs::SyncGhsOptions options;
  options.telemetry = &telemetry;
  const ghs::SyncGhsResult result = ghs::run_sync_ghs(topo, options);
  sim::write_trace_summary(out, result.run.totals, result.faults, result.arq);

  sim::Telemetry buffered(&memory);
  ghs::SyncGhsOptions again = options;
  again.telemetry = &buffered;
  (void)ghs::run_sync_ghs(topo, again);

  const std::string text = out.str();
  std::size_t lines = 0;
  for (const char c : text) lines += c == '\n';
  EXPECT_EQ(lines, memory.events().size() + 2);  // header + events + summary
  EXPECT_NE(text.find("{\"trace\":\"emst\""), std::string::npos);
  EXPECT_NE(text.find("\"algo\":\"sync_ghs\""), std::string::npos);
  EXPECT_NE(text.find("{\"summary\":"), std::string::npos);
  EXPECT_NE(text.find("\"ev\":\"uni\""), std::string::npos);
  EXPECT_NE(text.find("\"ev\":\"bcast\""), std::string::npos);
  // Every line is a JSON object.
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

// --------------------------------------------------------------- run report

TEST(RunReport, UnifiesAllFourDrivers) {
  const sim::Topology topo = random_topology(64, 23);

  ghs::SyncGhsOptions sync_options;
  sync_options.track_per_node_energy = true;
  sync_options.record_breakdown = true;
  const ghs::SyncGhsResult sync_result = ghs::run_sync_ghs(topo, sync_options);
  const RunReport sync_report = sync_result.report();
  EXPECT_EQ(sync_report.tree, &sync_result.run.tree);
  expect_accounting_eq(sync_report.totals, sync_result.run.totals);
  EXPECT_TRUE(sync_report.has_per_node());
  ASSERT_NE(sync_report.breakdown, nullptr);
  expect_accounting_near(sync_report.breakdown->phase_total(PhaseTag::kRun),
                         sync_result.run.totals);

  eopt::EoptOptions eopt_options;
  const eopt::EoptResult eopt_result = eopt::run_eopt(topo, eopt_options);
  const RunReport eopt_report = eopt_result.report();
  EXPECT_EQ(eopt_report.tree, &eopt_result.run.tree);
  EXPECT_NE(eopt_report.breakdown, nullptr);  // EOPT always records
  EXPECT_FALSE(eopt_report.hit_phase_cap);

  ghs::ClassicGhsOptions classic_options;
  const ghs::MstRunResult classic_result =
      ghs::run_classic_ghs(topo, classic_options);
  const RunReport classic_report = classic_result.report();
  EXPECT_EQ(classic_report.tree, &classic_result.tree);
  EXPECT_EQ(classic_report.breakdown, nullptr);  // not requested
  EXPECT_FALSE(classic_report.has_per_node());

  nnt::CoNntOptions connt_options;
  connt_options.record_breakdown = true;
  const nnt::CoNntResult connt_result = nnt::run_connt(topo, connt_options);
  const RunReport connt_report = connt_result.report();
  EXPECT_EQ(connt_report.tree, &connt_result.tree);
  ASSERT_NE(connt_report.breakdown, nullptr);
  // Co-NNT traffic splits over exactly its three message classes.
  const auto& matrix = *connt_report.breakdown;
  EXPECT_GT(matrix.cell(PhaseTag::kRun, MsgKind::kRequest).messages, 0u);
  EXPECT_GT(matrix.cell(PhaseTag::kRun, MsgKind::kReply).messages, 0u);
  EXPECT_GT(matrix.cell(PhaseTag::kRun, MsgKind::kConnection).messages, 0u);
  EXPECT_EQ(matrix.cell(PhaseTag::kRun, MsgKind::kData).messages, 0u);
  expect_accounting_near(matrix.phase_total(PhaseTag::kRun),
                         connt_result.totals);
}

// ----------------------------------------------------------- no-perturbation

TEST(TelemetryOff, AttachingTelemetryNeverChangesResults) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const sim::Topology topo = random_topology(56, seed);
    ghs::SyncGhsOptions plain;
    plain.faults = lossy_model(seed);
    plain.arq = arq_on();
    const ghs::SyncGhsResult base = ghs::run_sync_ghs(topo, plain);

    sim::MemoryTraceSink sink;
    sim::Telemetry telemetry(&sink);
    ghs::SyncGhsOptions instrumented = plain;
    instrumented.telemetry = &telemetry;
    instrumented.record_breakdown = true;
    const ghs::SyncGhsResult traced = ghs::run_sync_ghs(topo, instrumented);

    EXPECT_EQ(base.run.tree, traced.run.tree);
    expect_accounting_eq(base.run.totals, traced.run.totals);
    expect_faults_eq(base.faults, traced.faults);
    expect_arq_eq(base.arq, traced.arq);
    EXPECT_EQ(base.fragments_per_phase, traced.fragments_per_phase);
  }
}

}  // namespace
}  // namespace emst
