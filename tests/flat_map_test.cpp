// Tests for the open-addressing FlatMap64 backing the simulator's per-edge
// FIFO tracker.
#include <gtest/gtest.h>

#include <unordered_map>

#include "emst/support/flat_map.hpp"
#include "emst/support/rng.hpp"

namespace emst::support {
namespace {

TEST(FlatMap64, InsertThenFind) {
  FlatMap64 map;
  EXPECT_TRUE(map.empty());
  auto first = map.find_or_insert(42, 7);
  EXPECT_TRUE(first.inserted);
  EXPECT_EQ(*first.value, 7u);
  auto second = map.find_or_insert(42, 99);
  EXPECT_FALSE(second.inserted);
  EXPECT_EQ(*second.value, 7u);  // existing value untouched
  *second.value = 11;
  EXPECT_EQ(*map.find_or_insert(42, 0).value, 11u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap64, GrowsWithoutLosingEntries) {
  FlatMap64 map;
  for (std::uint64_t k = 1; k <= 5000; ++k) {
    EXPECT_TRUE(map.find_or_insert(k, k * 3).inserted);
  }
  EXPECT_EQ(map.size(), 5000u);
  for (std::uint64_t k = 1; k <= 5000; ++k) {
    auto r = map.find_or_insert(k, 0);
    EXPECT_FALSE(r.inserted);
    EXPECT_EQ(*r.value, k * 3);
  }
}

TEST(FlatMap64, MatchesUnorderedMapUnderRandomWorkload) {
  // Property test against the std container it replaces, with the same
  // try_emplace-then-max update pattern Network::enqueue uses.
  FlatMap64 map;
  std::unordered_map<std::uint64_t, std::uint64_t> oracle;
  Rng rng(31337);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t key = rng.uniform_int(4096) + 1;  // nonzero
    const std::uint64_t value = rng.uniform_int(1u << 20);
    auto r = map.find_or_insert(key, value);
    auto [it, inserted] = oracle.try_emplace(key, value);
    ASSERT_EQ(r.inserted, inserted);
    if (!inserted) {
      const std::uint64_t merged = std::max(value, it->second);
      *r.value = merged;
      it->second = merged;
    }
    ASSERT_EQ(*r.value, it->second);
  }
  EXPECT_EQ(map.size(), oracle.size());
  for (const auto& [key, value] : oracle) {
    EXPECT_EQ(*map.find_or_insert(key, 0).value, value);
  }
}

TEST(FlatMap64, ReserveAndClear) {
  FlatMap64 map;
  map.reserve(1000);
  for (std::uint64_t k = 1; k <= 1000; ++k) map.find_or_insert(k, k);
  EXPECT_EQ(map.size(), 1000u);
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_TRUE(map.find_or_insert(5, 1).inserted);
}

TEST(FlatMap64, ZeroKeyIsRejected) {
  FlatMap64 map;
  EXPECT_DEATH((void)map.find_or_insert(0, 1), "empty-slot sentinel");
}

}  // namespace
}  // namespace emst::support
