// Tests for the open-addressing FlatMap64 backing the simulator's per-edge
// FIFO tracker.
#include <gtest/gtest.h>

#include <unordered_map>

#include "emst/support/flat_map.hpp"
#include "emst/support/rng.hpp"

namespace emst::support {
namespace {

TEST(FlatMap64, InsertThenFind) {
  FlatMap64 map;
  EXPECT_TRUE(map.empty());
  auto first = map.find_or_insert(42, 7);
  EXPECT_TRUE(first.inserted);
  EXPECT_EQ(*first.value, 7u);
  auto second = map.find_or_insert(42, 99);
  EXPECT_FALSE(second.inserted);
  EXPECT_EQ(*second.value, 7u);  // existing value untouched
  *second.value = 11;
  EXPECT_EQ(*map.find_or_insert(42, 0).value, 11u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap64, GrowsWithoutLosingEntries) {
  FlatMap64 map;
  for (std::uint64_t k = 1; k <= 5000; ++k) {
    EXPECT_TRUE(map.find_or_insert(k, k * 3).inserted);
  }
  EXPECT_EQ(map.size(), 5000u);
  for (std::uint64_t k = 1; k <= 5000; ++k) {
    auto r = map.find_or_insert(k, 0);
    EXPECT_FALSE(r.inserted);
    EXPECT_EQ(*r.value, k * 3);
  }
}

TEST(FlatMap64, MatchesUnorderedMapUnderRandomWorkload) {
  // Property test against the std container it replaces, with the same
  // try_emplace-then-max update pattern Network::enqueue uses.
  FlatMap64 map;
  std::unordered_map<std::uint64_t, std::uint64_t> oracle;
  Rng rng(31337);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t key = rng.uniform_int(4096) + 1;  // nonzero
    const std::uint64_t value = rng.uniform_int(1u << 20);
    auto r = map.find_or_insert(key, value);
    auto [it, inserted] = oracle.try_emplace(key, value);
    ASSERT_EQ(r.inserted, inserted);
    if (!inserted) {
      const std::uint64_t merged = std::max(value, it->second);
      *r.value = merged;
      it->second = merged;
    }
    ASSERT_EQ(*r.value, it->second);
  }
  EXPECT_EQ(map.size(), oracle.size());
  for (const auto& [key, value] : oracle) {
    EXPECT_EQ(*map.find_or_insert(key, 0).value, value);
  }
}

TEST(FlatMap64, ReserveAndClear) {
  FlatMap64 map;
  map.reserve(1000);
  for (std::uint64_t k = 1; k <= 1000; ++k) map.find_or_insert(k, k);
  EXPECT_EQ(map.size(), 1000u);
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_TRUE(map.find_or_insert(5, 1).inserted);
}

TEST(FlatMap64, ZeroKeyIsRejected) {
  FlatMap64 map;
  EXPECT_DEATH((void)map.find_or_insert(0, 1), "empty-slot sentinel");
}

TEST(FlatMap64, ZeroKeyRejectedEvenWhenTheTableIsFullOfCollisions) {
  // The sentinel check must hold on a populated table too (a zero key
  // reaching the probe loop would alias every empty slot).
  FlatMap64 map;
  for (std::uint64_t k = 1; k <= 100; ++k) map.find_or_insert(k, k);
  EXPECT_DEATH((void)map.find_or_insert(0, 1), "empty-slot sentinel");
}

TEST(FlatMap64, PointersSurviveUntilTheNextInsertAcrossRehash) {
  // Contract: FindResult::value is invalidated by the NEXT insert — so
  // write-through-pointer immediately after lookup must stay correct even
  // when the workload interleaves lookups of old keys with inserts that
  // force rehashes. This is the per-edge FIFO tracker's exact access
  // pattern (look up, clamp, overwrite, move on).
  FlatMap64 map;
  Rng rng(4242);
  std::unordered_map<std::uint64_t, std::uint64_t> oracle;
  std::uint64_t next_key = 1;
  for (int step = 0; step < 30000; ++step) {
    const bool insert_new = oracle.empty() || rng.uniform() < 0.4;
    std::uint64_t key;
    if (insert_new) {
      key = next_key++;  // fresh key: may trigger growth mid-stream
    } else {
      key = rng.uniform_int(next_key - 1) + 1;  // revisit an existing key
    }
    auto r = map.find_or_insert(key, step);
    auto [it, inserted] = oracle.try_emplace(key, step);
    ASSERT_EQ(r.inserted, inserted) << "key " << key << " step " << step;
    // Overwrite through the returned pointer before any further insert.
    *r.value = static_cast<std::uint64_t>(step) * 2 + 1;
    it->second = static_cast<std::uint64_t>(step) * 2 + 1;
  }
  ASSERT_EQ(map.size(), oracle.size());
  for (const auto& [key, value] : oracle) {
    auto r = map.find_or_insert(key, 0);
    EXPECT_FALSE(r.inserted);
    EXPECT_EQ(*r.value, value) << "key " << key << " lost across rehashes";
  }
}

TEST(FlatMap64, AdversarialKeysCollideIntoOneProbeRunAndStillResolve) {
  // Keys crafted so their mixed hashes can land anywhere but include long
  // same-bucket runs after growth: the packed-edge pattern (u<<32)|v with a
  // tiny v range exercises clustered probing. Also pins the no-erase
  // contract: size() only grows, clear() is the only reset.
  FlatMap64 map;
  const std::size_t before = map.size();
  EXPECT_EQ(before, 0u);
  for (std::uint64_t u = 1; u <= 64; ++u) {
    for (std::uint64_t v = 1; v <= 8; ++v) {
      const std::uint64_t key = (u << 32) | v;
      auto r = map.find_or_insert(key, u * 100 + v);
      ASSERT_TRUE(r.inserted);
    }
  }
  EXPECT_EQ(map.size(), 64u * 8u);
  for (std::uint64_t u = 1; u <= 64; ++u) {
    for (std::uint64_t v = 1; v <= 8; ++v) {
      auto r = map.find_or_insert((u << 32) | v, 0);
      ASSERT_FALSE(r.inserted);
      ASSERT_EQ(*r.value, u * 100 + v);
    }
  }
  // No shrink path exists: re-probing every key N times never changes size.
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t u = 1; u <= 64; ++u)
      (void)map.find_or_insert((u << 32) | 1, 0);
    EXPECT_EQ(map.size(), 64u * 8u);
  }
  map.clear();
  EXPECT_TRUE(map.empty());
  // Cleared slots are genuinely empty again (key 0 sentinel restored).
  EXPECT_TRUE(map.find_or_insert((2ULL << 32) | 3, 9).inserted);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap64, MaxKeyAndMaxValueRoundTrip) {
  FlatMap64 map;
  const std::uint64_t max64 = ~0ULL;
  auto r = map.find_or_insert(max64, max64);
  EXPECT_TRUE(r.inserted);
  EXPECT_EQ(*map.find_or_insert(max64, 0).value, max64);
  // Value 0 is NOT special — only key 0 is.
  auto zero_val = map.find_or_insert(7, 0);
  EXPECT_TRUE(zero_val.inserted);
  EXPECT_EQ(*map.find_or_insert(7, 123).value, 0u);
}

}  // namespace
}  // namespace emst::support
