// Ring-wrap audit for the calendar-queue engines (satellite of the sharding
// work; see the invariant comment in Network::enqueue).
//
// The calendar ring has exactly D+1 buckets for max_extra_delay = D. The
// safety argument: a message sent at clock t draws due ∈ [t+1, t+1+D], and
// the per-edge FIFO clamp can only *raise* a due to the due of an earlier
// message on the same link — which was itself ≤ t'+1+D ≤ t+1+D for send
// clock t' ≤ t. So every live due lies within a window of D+1 consecutive
// rounds and the ring never aliases. These tests drive the boundary of that
// window hard — maximum draws, clamp pile-ups at the window edge, heads
// that wrap the ring many times — against the seed engine, which keeps
// explicit (seq, due) pairs and a full sort instead of a ring (so it cannot
// alias by construction). An always-on assert in enqueue/ingest backs this
// up in every other test and in production runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "emst/sim/network.hpp"
#include "emst/sim/reference_network.hpp"
#include "emst/sim/sharded_network.hpp"
#include "emst/support/rng.hpp"

namespace emst::sim {
namespace {

using Msg = std::uint64_t;

/// A two-node topology concentrates every message on one directed link, the
/// worst case for the FIFO clamp: dues pile up at the top of the window and
/// stay pinned there round after round.
Topology two_nodes() { return Topology({{0.25, 0.5}, {0.75, 0.5}}, 1.0); }

/// Burst B messages per round onto one link for many rounds, with B large
/// against the ring so the clamp drives dues to (and keeps them at) the
/// window's upper boundary while the head wraps the ring repeatedly.
void expect_boundary_equivalence(std::uint32_t max_extra_delay,
                                 std::size_t burst, int send_rounds) {
  const Topology topo = two_nodes();
  const DelayModel delays{max_extra_delay, 0xabcdULL + max_extra_delay};
  Network<Msg> calendar(topo, {}, false, delays);
  ReferenceNetwork<Msg> reference(topo, {}, false, delays);
  ShardedNetwork<Msg> sharded(topo, {}, false, delays, {}, nullptr, 2);

  std::uint64_t payload = 0;
  std::uint64_t last_seen = 0;
  bool any = false;
  std::size_t delivered = 0;
  for (int round = 0; round < send_rounds + 3 * (int)max_extra_delay + 5;
       ++round) {
    if (round < send_rounds) {
      for (std::size_t k = 0; k < burst; ++k) {
        calendar.unicast(0, 1, payload);
        reference.unicast(0, 1, payload);
        sharded.unicast(0, 1, payload);
        ++payload;
      }
    }
    const auto want = reference.collect_round();
    const auto got = calendar.collect_round();
    const auto got_sharded = sharded.collect_round();
    ASSERT_EQ(got.size(), want.size()) << "round " << round;
    ASSERT_EQ(got_sharded.size(), want.size()) << "round " << round;
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].msg, want[i].msg) << "round " << round << " pos " << i;
      ASSERT_EQ(got_sharded[i].msg, want[i].msg)
          << "round " << round << " pos " << i;
      // Single-link FIFO: payloads are strictly increasing globally.
      if (any) ASSERT_GT(got[i].msg, last_seen) << "FIFO violated";
      last_seen = got[i].msg;
      any = true;
    }
    delivered += got.size();
  }
  // Conservation at the boundary: nothing aliased into a wrong bucket (which
  // would deliver early/late or vanish past the drain horizon).
  EXPECT_EQ(delivered, payload);
  EXPECT_FALSE(calendar.pending());
  EXPECT_FALSE(reference.pending());
  EXPECT_FALSE(sharded.pending());
}

TEST(CalendarRing, SynchronousBurst) { expect_boundary_equivalence(0, 40, 30); }

TEST(CalendarRing, TinyRingHeavyClamp) {
  // D = 1: a two-bucket ring, the tightest possible. Any off-by-one in the
  // wrap arithmetic aliases immediately.
  expect_boundary_equivalence(1, 24, 60);
}

TEST(CalendarRing, ClampPinsDuesAtWindowEdge) {
  // D = 4 with 16 messages per round: far more messages than rounds in the
  // window, so the clamp pins most dues at now+1+D — the exact bucket that
  // wraps — every single round.
  expect_boundary_equivalence(4, 16, 80);
}

TEST(CalendarRing, LongRunManyWraps) {
  // D = 7 (8 buckets) over 300 send rounds: the head wraps the ring ~37
  // times; every bucket index is exercised in both pre- and post-wrap form.
  expect_boundary_equivalence(7, 6, 300);
}

TEST(CalendarRing, MaxDelayDrawLandsInLastBucket) {
  // Deterministic pin of the due = now+1+D boundary itself: find a seed
  // whose FIRST delay draw is exactly D, then verify the message arrives in
  // round D+1, i.e. from the bucket farthest from the head. This fails if
  // the ring had D buckets instead of D+1, or if the wrap dropped the last
  // residue.
  const std::uint32_t d = 5;
  std::uint64_t seed = 1;
  for (; seed < 10000; ++seed) {
    support::Rng probe(seed);
    if (probe.uniform_int(d + 1) == d) break;
  }
  ASSERT_LT(seed, 10000u) << "no seed with a maximum first draw found";

  const Topology topo = two_nodes();
  Network<Msg> net(topo, {}, false, {d, seed});
  net.unicast(0, 1, 42);
  for (std::uint32_t round = 1; round <= d; ++round) {
    EXPECT_TRUE(net.pending());
    EXPECT_TRUE(net.collect_round().empty()) << "early delivery at " << round;
  }
  const auto batch = net.collect_round();  // round d+1: due exactly now+1+d
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].msg, 42u);
  EXPECT_FALSE(net.pending());
}

TEST(CalendarRing, WrapAfterIdleRounds) {
  // Idle rounds advance the head without deliveries; a send issued just
  // before the head wraps must still land in the correct (wrapped) bucket.
  const std::uint32_t d = 3;
  const Topology topo = two_nodes();
  const DelayModel delays{d, 0x1234ULL};
  Network<Msg> calendar(topo, {}, false, delays);
  ReferenceNetwork<Msg> reference(topo, {}, false, delays);
  std::uint64_t payload = 0;
  for (int burst = 0; burst < 10; ++burst) {
    // One send, then enough idle rounds that the head passes the wrap point.
    calendar.unicast(0, 1, payload);
    reference.unicast(0, 1, payload);
    ++payload;
    for (std::uint32_t idle = 0; idle < d + 2; ++idle) {
      const auto want = reference.collect_round();
      const auto got = calendar.collect_round();
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < got.size(); ++i)
        ASSERT_EQ(got[i].msg, want[i].msg);
    }
    ASSERT_FALSE(calendar.pending());
  }
  EXPECT_EQ(payload, 10u);
}

}  // namespace
}  // namespace emst::sim
