// Tests for the chaos campaign layer (docs/ROBUSTNESS.md): adversarial
// FaultController strategies driving all four algorithm drivers, the
// runtime InvariantOracle, and the fail-stop graceful-degradation contract.
// The load-bearing claims pinned here:
//
//  - under every shipped strategy (kill budget 20% of n, permanent
//    fail-stop) each driver terminates with the exact MST of each surviving
//    connected component, verified against an independent survivor-subgraph
//    recomputation;
//  - adversarial injection is a pure function of protocol state: 1, 2 and 4
//    worker threads produce bitwise-identical schedules and results;
//  - every adversarial run collapses to a plain crash list — replaying
//    `injected_schedule()` as static `FaultModel::crashes` (or through the
//    ReplaySchedule strategy) reproduces the run exactly;
//  - a seeded invariant violation is delta-minimized by `minimize_crashes`
//    to a ≤ 2-window schedule naming the actual culprit;
//  - attaching the oracle to a clean run changes nothing and flags nothing.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "emst/eopt/eopt.hpp"
#include "emst/geometry/sampling.hpp"
#include "emst/ghs/classic.hpp"
#include "emst/ghs/sync.hpp"
#include "emst/graph/mst.hpp"
#include "emst/graph/tree_utils.hpp"
#include "emst/nnt/connt.hpp"
#include "emst/nnt/rank.hpp"
#include "emst/sim/chaos.hpp"
#include "emst/sim/fault.hpp"
#include "emst/sim/meter.hpp"
#include "emst/sim/oracle.hpp"
#include "emst/support/rng.hpp"

namespace emst {
namespace {

constexpr std::array<std::string_view, 4> kDrivers = {
    "eopt", "sync_ghs", "classic_ghs", "connt"};

sim::Topology chaos_field(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  return eopt::eopt_topology(geometry::uniform_points(n, rng));
}

/// Per-node alive mask from a permanent-kill injection record.
std::vector<char> alive_mask(std::size_t n,
                             std::span<const sim::CrashWindow> injected) {
  std::vector<char> alive(n, 1);
  for (const sim::CrashWindow& w : injected) {
    if (w.until == sim::kCrashForever && w.node < n) alive[w.node] = 0;
  }
  return alive;
}

/// Independent survivor-subgraph recomputation: Kruskal over the edges with
/// both endpoints alive — what every MST driver's chaos output must equal.
std::vector<graph::Edge> survivor_msf(const sim::Topology& topo,
                                      const std::vector<char>& alive) {
  std::vector<graph::Edge> edges;
  for (const graph::Edge& e : topo.graph().edges()) {
    if (alive[e.u] && alive[e.v]) edges.push_back(e);
  }
  return graph::kruskal_msf(topo.node_count(), std::move(edges));
}

/// The Co-NNT fail-stop contract: each survivor parents its nearest
/// higher-ranked survivor within the doubling schedule's terminal radius;
/// dead nodes stay parentless (bench/chaos_campaign.cpp documents the cap).
std::vector<graph::NodeId> survivor_nnt_parents(
    std::span<const geometry::Point2> points, const std::vector<char>& alive,
    nnt::RankScheme scheme) {
  const std::size_t n = points.size();
  const double n_est = std::max(2.0, static_cast<double>(n));
  std::vector<graph::NodeId> parent(n, graph::kNoNode);
  for (graph::NodeId u = 0; u < n; ++u) {
    if (!alive[u]) continue;
    const double lu = nnt::potential_distance(scheme, points[u]);
    const double m =
        std::max(1.0, std::ceil(std::log2(std::max(2.0, n_est * lu * lu))));
    const double cap =
        std::min(std::sqrt(std::pow(2.0, m) / n_est), std::sqrt(2.0));
    graph::NodeId best = graph::kNoNode;
    double best_d = 0.0;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (v == u || !alive[v]) continue;
      if (!nnt::rank_less(scheme, points, u, v)) continue;
      const double d = geometry::distance(points[u], points[v]);
      if (d > cap) continue;
      if (best == graph::kNoNode || d < best_d || (d == best_d && v < best)) {
        best = v;
        best_d = d;
      }
    }
    parent[u] = best;
  }
  return parent;
}

struct ChaosRun {
  std::vector<graph::Edge> tree;
  std::vector<graph::NodeId> parent;  ///< connt only
  double energy = 0.0;
  std::vector<sim::CrashWindow> injected;
  std::size_t epochs = 1;
};

ChaosRun run_driver(std::string_view driver, const sim::Topology& topo,
                    sim::FaultController* controller, std::uint64_t fault_seed,
                    sim::InvariantOracle* oracle, std::size_t threads = 0) {
  sim::FaultModel faults;
  faults.controller = controller;
  faults.seed = fault_seed;
  ChaosRun out;
  if (driver == "eopt") {
    eopt::EoptOptions opt;
    opt.faults = faults;
    opt.oracle = oracle;
    opt.threads = threads;
    auto res = eopt::run_eopt(topo, opt);
    out.tree = std::move(res.run.tree);
    out.energy = res.run.totals.energy;
    out.injected = std::move(res.run.injected_crashes);
  } else if (driver == "sync_ghs") {
    ghs::SyncGhsOptions opt;
    opt.faults = faults;
    opt.oracle = oracle;
    opt.threads = threads;
    auto res = ghs::run_sync_ghs(topo, opt);
    out.tree = std::move(res.run.tree);
    out.energy = res.run.totals.energy;
    out.injected = std::move(res.injected_crashes);
  } else if (driver == "classic_ghs") {
    ghs::ClassicGhsOptions opt;
    opt.faults = faults;
    opt.oracle = oracle;
    opt.threads = threads;
    auto res = ghs::run_classic_ghs(topo, opt);
    out.tree = std::move(res.tree);
    out.energy = res.totals.energy;
    out.injected = std::move(res.injected_crashes);
    out.epochs = res.epochs;
  } else {
    nnt::CoNntOptions opt;
    opt.faults = faults;
    opt.oracle = oracle;
    opt.threads = threads;
    auto res = nnt::run_connt(topo, opt);
    out.tree = std::move(res.tree);
    out.parent = std::move(res.parent);
    out.energy = res.totals.energy;
    out.injected = std::move(res.injected_crashes);
    out.epochs = res.epochs;
  }
  return out;
}

void expect_windows_eq(std::span<const sim::CrashWindow> a,
                       std::span<const sim::CrashWindow> b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node) << "window " << i;
    EXPECT_EQ(a[i].from, b[i].from) << "window " << i;
    EXPECT_EQ(a[i].until, b[i].until) << "window " << i;
  }
}

// ---------------------------------------------------------------- registry

TEST(ChaosRegistry, ShippedStrategiesRoundTripThroughMakeController) {
  const auto names = sim::shipped_strategies();
  ASSERT_EQ(names.size(), 4u);
  for (const std::string_view name : names) {
    const auto controller = sim::make_controller(name);
    ASSERT_NE(controller, nullptr) << name;
    EXPECT_EQ(controller->name(), name);
    EXPECT_EQ(controller->kills(), 0u);
  }
  EXPECT_EQ(sim::make_controller("no_such_strategy"), nullptr);
  EXPECT_EQ(sim::make_controller(""), nullptr);
}

// ---------------------------------------------- graceful-degradation sweep

// The acceptance envelope: every shipped strategy against every driver, kill
// budget 20% permanent fail-stop, invariant oracle on — each run must end
// with the exact MST of each surviving component and a silent oracle.
TEST(ChaosCampaign, EveryStrategyKeepsEveryDriverExactOnSurvivors) {
  const std::size_t n = 96;
  const sim::Topology topo = chaos_field(n, 0xC4A05);
  for (const std::string_view driver : kDrivers) {
    for (const std::string_view strategy : sim::shipped_strategies()) {
      const auto controller = sim::make_controller(strategy);
      sim::InvariantOracle oracle;
      const ChaosRun out =
          run_driver(driver, topo, controller.get(), 0xBADD1E, &oracle);
      const std::string cell =
          std::string(driver) + " x " + std::string(strategy);
      // The strategies attack and stay within the fail-stop budget.
      EXPECT_GT(controller->kills(), 0u) << cell;
      EXPECT_LE(controller->kills(), n / 5) << cell;
      EXPECT_EQ(controller->kills(), out.injected.size()) << cell;
      for (const sim::CrashWindow& w : out.injected) {
        EXPECT_EQ(w.until, sim::kCrashForever) << cell;  // permanent fail-stop
        EXPECT_LT(w.node, n) << cell;
      }
      // Per-component exactness against the independent recomputation.
      const std::vector<char> alive = alive_mask(n, out.injected);
      if (driver == "connt") {
        EXPECT_EQ(out.parent,
                  survivor_nnt_parents(topo.points(), alive,
                                       nnt::RankScheme::kDiagonal))
            << cell;
      } else {
        EXPECT_TRUE(graph::same_edge_set(out.tree, survivor_msf(topo, alive)))
            << cell;
      }
      EXPECT_GE(out.epochs, 1u) << cell;
      EXPECT_TRUE(oracle.ok()) << cell << ": "
                               << (oracle.violations().empty()
                                       ? ""
                                       : oracle.violations()[0].detail);
    }
  }
}

// The epoch-restart drivers survive a node that is dead from birth: it is
// excluded from wakeup and the survivors converge on the exact contract
// output (classic GHS may need one restart to learn the dead edges).
TEST(ChaosCampaign, EpochDriversSurviveARoundZeroCrash) {
  const std::size_t n = 64;
  const sim::Topology topo = chaos_field(n, 0x20E0);
  std::vector<char> alive(n, 1);
  alive[5] = 0;
  {
    ghs::ClassicGhsOptions opt;
    opt.faults.crashes = {{5, 0, sim::kCrashForever}};
    const auto res = ghs::run_classic_ghs(topo, opt);
    EXPECT_TRUE(graph::same_edge_set(res.tree, survivor_msf(topo, alive)));
    for (const graph::Edge& e : res.tree) {
      EXPECT_NE(e.u, 5u);
      EXPECT_NE(e.v, 5u);
    }
  }
  {
    nnt::CoNntOptions opt;
    opt.faults.crashes = {{5, 0, sim::kCrashForever}};
    const auto res = nnt::run_connt(topo, opt);
    EXPECT_EQ(res.epochs, 1u);  // excluded at epoch start: clean first epoch
    EXPECT_EQ(res.parent, survivor_nnt_parents(topo.points(), alive,
                                               nnt::RankScheme::kDiagonal));
    EXPECT_EQ(res.parent[5], graph::kNoNode);
  }
}

// ----------------------------------------------------- thread determinism

// Adversarial injection is consulted only from the serial sections that own
// the fault clock, from state that is itself bitwise-identical across worker
// counts — so the whole adversarial run is too (chaos.hpp contract).
TEST(ChaosCampaign, AdversarialRunsAreBitwiseIdenticalAcrossThreadCounts) {
  const std::size_t n = 96;
  const sim::Topology topo = chaos_field(n, 0x7EAD5);
  for (const std::string_view driver : kDrivers) {
    std::unique_ptr<sim::BudgetedController> base_controller =
        sim::make_controller("kill_leader");
    const ChaosRun base =
        run_driver(driver, topo, base_controller.get(), 0x5EED, nullptr, 1);
    ASSERT_FALSE(base.injected.empty()) << driver;
    for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
      const auto controller = sim::make_controller("kill_leader");
      const ChaosRun out =
          run_driver(driver, topo, controller.get(), 0x5EED, nullptr, threads);
      const std::string cell =
          std::string(driver) + " @ " + std::to_string(threads) + " threads";
      EXPECT_EQ(out.energy, base.energy) << cell;  // bit-identical doubles
      EXPECT_EQ(out.tree, base.tree) << cell;
      EXPECT_EQ(out.parent, base.parent) << cell;
      EXPECT_EQ(out.epochs, base.epochs) << cell;
      expect_windows_eq(out.injected, base.injected);
    }
  }
}

// ------------------------------------------------------------------ replay

// Every adversarial run collapses to a plain crash list: feeding the
// recorded `injected_schedule()` back as static `FaultModel::crashes` — or
// through the ReplaySchedule strategy — reproduces the run bit-for-bit.
TEST(ChaosReplay, InjectedScheduleReplaysAsAStaticCrashList) {
  const sim::Topology topo = chaos_field(96, 0x2EB1A);
  for (const std::string_view driver : {std::string_view("sync_ghs"),
                                        std::string_view("classic_ghs")}) {
    const auto controller = sim::make_controller("sever_core_edge");
    const ChaosRun original =
        run_driver(driver, topo, controller.get(), 0xFACE, nullptr);
    ASSERT_FALSE(original.injected.empty()) << driver;

    // (a) The distilled schedule as a pre-scripted crash list, no controller.
    sim::FaultModel static_model;
    static_model.crashes = original.injected;
    static_model.seed = 0xFACE;
    ChaosRun replay_static;
    if (driver == "sync_ghs") {
      ghs::SyncGhsOptions opt;
      opt.faults = static_model;
      auto res = ghs::run_sync_ghs(topo, opt);
      replay_static.tree = std::move(res.run.tree);
      replay_static.energy = res.run.totals.energy;
    } else {
      ghs::ClassicGhsOptions opt;
      opt.faults = static_model;
      auto res = ghs::run_classic_ghs(topo, opt);
      replay_static.tree = std::move(res.tree);
      replay_static.energy = res.totals.energy;
      replay_static.epochs = res.epochs;
    }
    EXPECT_EQ(replay_static.energy, original.energy) << driver;
    EXPECT_EQ(replay_static.tree, original.tree) << driver;
    if (driver == "classic_ghs")
      EXPECT_EQ(replay_static.epochs, original.epochs);

    // (b) The same schedule through the controller interface.
    sim::ReplaySchedule replayer(original.injected);
    const ChaosRun replay_ctrl =
        run_driver(driver, topo, &replayer, 0xFACE, nullptr);
    EXPECT_EQ(replay_ctrl.energy, original.energy) << driver;
    EXPECT_EQ(replay_ctrl.tree, original.tree) << driver;
    EXPECT_EQ(replay_ctrl.epochs, original.epochs) << driver;
    expect_windows_eq(replay_ctrl.injected, original.injected);
  }
}

// ------------------------------------------------------------------- ddmin

// A dumbbell deployment whose two clusters touch only through one bridge
// node: killing the bridge — and nothing else — disconnects the survivors.
sim::Topology dumbbell_topology() {
  return sim::Topology({{0.10, 0.50},   // 0  cluster A
                        {0.15, 0.45},   // 1
                        {0.20, 0.55},   // 2
                        {0.18, 0.50},   // 3
                        {0.90, 0.50},   // 4  cluster B
                        {0.85, 0.45},   // 5
                        {0.80, 0.55},   // 6
                        {0.82, 0.50},   // 7
                        {0.50, 0.50}},  // 8  the bridge
                       0.4);
}

TEST(ChaosDdmin, SeededViolationMinimizesToTheBridgeCrash) {
  const sim::Topology topo = dumbbell_topology();
  const std::size_t n = topo.node_count();
  // "Does this schedule trip an invariant?" as a deterministic predicate:
  // run the driver with the oracle attached, then apply the per-component
  // exactness contract — survivors must form ONE component here unless the
  // bridge died, so a disconnected survivor forest is the seeded violation
  // (recorded through InvariantOracle::note, the documented driver hook).
  const auto trips = [&](std::span<const sim::CrashWindow> schedule) {
    ghs::SyncGhsOptions opt;
    opt.faults.crashes.assign(schedule.begin(), schedule.end());
    sim::InvariantOracle oracle;
    opt.oracle = &oracle;
    const auto res = ghs::run_sync_ghs(topo, opt);
    const std::vector<char> alive = alive_mask(n, opt.faults.crashes);
    const auto survivors = static_cast<std::size_t>(
        std::count(alive.begin(), alive.end(), char{1}));
    if (res.run.tree.size() + 1 < survivors) {
      oracle.note("connectivity", 0, "survivor subgraph disconnected");
    }
    return !oracle.ok();
  };

  // Seven windows; only the bridge kill (node 8) matters. The decoys kill
  // redundant cluster members, recover, or are zero-length no-ops.
  const std::vector<sim::CrashWindow> schedule = {
      {1, 3, sim::kCrashForever},  // decoy: cluster A stays connected
      {2, 4, sim::kCrashForever},  // decoy
      {5, 3, sim::kCrashForever},  // decoy: cluster B stays connected
      {6, 5, sim::kCrashForever},  // decoy
      {3, 2, 6},                   // decoy: temporary, recovers
      {0, 5, 5},                   // decoy: zero-length, never down
      {8, 4, sim::kCrashForever},  // the culprit: the bridge dies
  };
  ASSERT_TRUE(trips(schedule));

  const std::vector<sim::CrashWindow> minimal =
      sim::minimize_crashes(schedule, trips);
  ASSERT_LE(minimal.size(), 2u);  // the acceptance bound
  ASSERT_FALSE(minimal.empty());
  EXPECT_EQ(minimal[0].node, 8u);  // ... and it names the actual culprit
  EXPECT_EQ(minimal[0].until, sim::kCrashForever);
  EXPECT_TRUE(trips(minimal));  // 1-minimal: still failing ...
  for (std::size_t skip = 0; skip < minimal.size(); ++skip) {
    std::vector<sim::CrashWindow> without;
    for (std::size_t i = 0; i < minimal.size(); ++i) {
      if (i != skip) without.push_back(minimal[i]);
    }
    EXPECT_FALSE(trips(without));  // ... and no window is removable
  }
}

TEST(ChaosDdmin, NonFailingScheduleMinimizesToEmpty) {
  const std::vector<sim::CrashWindow> schedule = {
      {1, 3, sim::kCrashForever}, {2, 4, sim::kCrashForever}};
  const auto never = [](std::span<const sim::CrashWindow>) { return false; };
  EXPECT_TRUE(sim::minimize_crashes(schedule, never).empty());
}

// ------------------------------------------------------------------ oracle

TEST(InvariantOracle, RecordsFragmentForestViolationsInsteadOfThrowing) {
  sim::InvariantOracle oracle;
  // A cyclic "tree" with an agreeing leader labelling: acyclicity violated.
  const std::vector<graph::NodeId> leaders = {0, 0, 0};
  const std::vector<graph::Edge> cyclic = {
      {0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.5}};
  oracle.check_fragments(7, leaders, cyclic);
  ASSERT_FALSE(oracle.ok());
  EXPECT_EQ(oracle.violations()[0].invariant, "fragments");
  EXPECT_EQ(oracle.violations()[0].round, 7u);
}

TEST(InvariantOracle, FlagsLeaderLabelsThatDisagreeWithConnectivity) {
  sim::InvariantOracle oracle;
  // Two components but one shared leader label: agreement violated.
  const std::vector<graph::NodeId> leaders = {0, 0, 0, 0};
  const std::vector<graph::Edge> forest = {{0, 1, 1.0}, {2, 3, 1.0}};
  oracle.check_fragments(3, leaders, forest);
  EXPECT_FALSE(oracle.ok());
}

TEST(InvariantOracle, ArqRedeliveryIsAViolationAndTripsOnce) {
  sim::InvariantOracle oracle;
  oracle.on_arq_deliver(0, 1, 0);
  oracle.on_arq_deliver(0, 1, 1);
  oracle.on_arq_deliver(1, 0, 0);  // independent direction: its own stream
  EXPECT_TRUE(oracle.ok());
  oracle.on_arq_deliver(0, 1, 1);  // re-delivered sequence number
  ASSERT_FALSE(oracle.ok());
  EXPECT_EQ(oracle.violations()[0].invariant, "arq");
}

TEST(InvariantOracle, LivenessBoundTripsOnceNotPerRound) {
  sim::OracleOptions options;
  options.max_rounds = 5;
  sim::InvariantOracle oracle(options);
  sim::EnergyMeter meter;
  oracle.on_round(5, meter);
  EXPECT_TRUE(oracle.ok());
  oracle.on_round(6, meter);
  oracle.on_round(7, meter);  // still over the bound: no duplicate report
  ASSERT_EQ(oracle.violations().size(), 1u);
  EXPECT_EQ(oracle.violations()[0].invariant, "liveness");
}

// Attaching the oracle to a clean run flags nothing and changes nothing —
// the hooks observe, they never perturb.
TEST(InvariantOracle, CleanRunsPassEveryCheckBitIdentically) {
  const sim::Topology topo = chaos_field(128, 0xC1EA2);
  {
    ghs::SyncGhsOptions plain;
    plain.record_breakdown = true;  // exercises the conservation check
    ghs::SyncGhsOptions checked = plain;
    sim::InvariantOracle oracle;
    checked.oracle = &oracle;
    const auto a = ghs::run_sync_ghs(topo, plain);
    const auto b = ghs::run_sync_ghs(topo, checked);
    EXPECT_TRUE(oracle.ok());
    EXPECT_EQ(a.run.totals.energy, b.run.totals.energy);
    EXPECT_EQ(a.run.tree, b.run.tree);
  }
  {
    ghs::ClassicGhsOptions plain;
    ghs::ClassicGhsOptions checked = plain;
    sim::InvariantOracle oracle;
    checked.oracle = &oracle;
    const auto a = ghs::run_classic_ghs(topo, plain);
    const auto b = ghs::run_classic_ghs(topo, checked);
    EXPECT_TRUE(oracle.ok());
    EXPECT_EQ(a.totals.energy, b.totals.energy);
    EXPECT_EQ(a.tree, b.tree);
  }
  {
    // Fault-free Co-NNT with an oracle runs the actor path's hooks.
    nnt::CoNntOptions plain;
    nnt::CoNntOptions checked = plain;
    sim::InvariantOracle oracle;
    checked.oracle = &oracle;
    const auto a = nnt::run_connt_actor(topo, plain);
    const auto b = nnt::run_connt_actor(topo, checked);
    EXPECT_TRUE(oracle.ok());
    EXPECT_EQ(a.totals.energy, b.totals.energy);
    EXPECT_EQ(a.parent, b.parent);
  }
}

}  // namespace
}  // namespace emst
