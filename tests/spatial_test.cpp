// Tests for the cell-grid spatial index, cross-checked against brute force.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "emst/geometry/sampling.hpp"
#include "emst/spatial/cell_grid.hpp"
#include "emst/support/rng.hpp"

namespace emst::spatial {
namespace {

std::vector<PointIndex> brute_within(std::span<const geometry::Point2> points,
                                     geometry::Point2 p, double r) {
  std::vector<PointIndex> out;
  for (PointIndex i = 0; i < points.size(); ++i) {
    if (geometry::distance(points[i], p) <= r) out.push_back(i);
  }
  return out;
}

TEST(CellGrid, EmptyPointSet) {
  const std::vector<geometry::Point2> points;
  const CellGrid grid(points, 0.1);
  EXPECT_EQ(grid.point_count(), 0u);
  EXPECT_TRUE(grid.within({0.5, 0.5}, 0.3).empty());
  EXPECT_TRUE(grid.k_nearest({0.5, 0.5}, 3, 0).empty());
}

TEST(CellGrid, SinglePoint) {
  const std::vector<geometry::Point2> points = {{0.5, 0.5}};
  const CellGrid grid(points, 0.1);
  EXPECT_EQ(grid.within({0.5, 0.5}, 0.01), std::vector<PointIndex>{0});
  EXPECT_TRUE(grid.within({0.9, 0.9}, 0.1).empty());
}

TEST(CellGrid, BoundaryPointsIndexed) {
  const std::vector<geometry::Point2> points = {{0.0, 0.0}, {1.0, 1.0}, {1.0, 0.0}};
  const CellGrid grid(points, 0.25);
  EXPECT_EQ(grid.within({0.0, 0.0}, 0.001).size(), 1u);
  EXPECT_EQ(grid.within({1.0, 1.0}, 0.001).size(), 1u);
}

class GridVsBrute : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(GridVsBrute, WithinMatchesBruteForce) {
  const auto [n, radius, seed] = GetParam();
  support::Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
  const auto points = geometry::uniform_points(static_cast<std::size_t>(n), rng);
  const CellGrid grid(points, radius);
  for (int q = 0; q < 30; ++q) {
    const geometry::Point2 p{rng.uniform(), rng.uniform()};
    auto got = grid.within(p, radius);
    auto want = brute_within(points, p, radius);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GridVsBrute,
    ::testing::Combine(::testing::Values(10, 100, 1000),
                       ::testing::Values(0.01, 0.05, 0.3, 1.5),
                       ::testing::Values(1, 2, 3)));

TEST(CellGrid, KNearestMatchesBruteForce) {
  support::Rng rng(71);
  const auto points = geometry::uniform_points(500, rng);
  const CellGrid grid = CellGrid::with_auto_cell(points);
  for (PointIndex u = 0; u < 50; ++u) {
    for (const std::size_t k : {1u, 5u, 20u}) {
      const auto got = grid.k_nearest(points[u], k, u);
      // Brute force: sort all others by distance.
      std::vector<std::pair<double, PointIndex>> all;
      for (PointIndex v = 0; v < points.size(); ++v) {
        if (v != u) all.emplace_back(geometry::distance(points[u], points[v]), v);
      }
      std::sort(all.begin(), all.end());
      ASSERT_EQ(got.size(), k);
      for (std::size_t i = 0; i < k; ++i) {
        // Compare by distance (id ties are broken arbitrarily inside sort).
        EXPECT_DOUBLE_EQ(geometry::distance(points[u], points[got[i]]),
                         all[i].first);
      }
    }
  }
}

TEST(CellGrid, KNearestMoreThanAvailable) {
  const std::vector<geometry::Point2> points = {{0.1, 0.1}, {0.2, 0.2}, {0.9, 0.9}};
  const CellGrid grid(points, 0.2);
  const auto got = grid.k_nearest({0.15, 0.15}, 10, static_cast<PointIndex>(-1));
  EXPECT_EQ(got.size(), 3u);
}

TEST(CellGrid, KNearestSortedByDistance) {
  support::Rng rng(73);
  const auto points = geometry::uniform_points(200, rng);
  const CellGrid grid = CellGrid::with_auto_cell(points);
  const auto got = grid.k_nearest({0.5, 0.5}, 20, static_cast<PointIndex>(-1));
  ASSERT_EQ(got.size(), 20u);
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_LE(geometry::distance({0.5, 0.5}, points[got[i - 1]]),
              geometry::distance({0.5, 0.5}, points[got[i]]));
  }
}

TEST(CellGrid, CellCountClamped) {
  // A tiny cell size on a small point set must not allocate a huge grid.
  const std::vector<geometry::Point2> points = {{0.5, 0.5}, {0.25, 0.75}};
  const CellGrid grid(points, 1e-9);
  // Clamp formula: √(4·2 + 64) + 1 ≈ 9.5 cells per side at most.
  EXPECT_LE(grid.cells_per_side(), 10u);
  EXPECT_EQ(grid.within({0.5, 0.5}, 0.001).size(), 1u);
}

TEST(CellGrid, ForEachWithinVisitsEachOnce) {
  support::Rng rng(79);
  const auto points = geometry::uniform_points(300, rng);
  const CellGrid grid(points, 0.15);
  std::multiset<PointIndex> seen;
  grid.for_each_within({0.4, 0.6}, 0.15, [&](PointIndex i) { seen.insert(i); });
  for (const PointIndex i : seen) EXPECT_EQ(seen.count(i), 1u);
}

TEST(CellGrid, DuplicatePointsAllReturned) {
  const std::vector<geometry::Point2> points(5, geometry::Point2{0.3, 0.3});
  const CellGrid grid(points, 0.1);
  EXPECT_EQ(grid.within({0.3, 0.3}, 0.01).size(), 5u);
}

}  // namespace
}  // namespace emst::spatial
