// Tests for the non-uniform deployment models.
#include <gtest/gtest.h>

#include <cmath>

#include "emst/geometry/deployments.hpp"
#include "emst/support/rng.hpp"
#include "emst/support/stats.hpp"

namespace emst::geometry {
namespace {

class AllModels : public ::testing::TestWithParam<Deployment> {};

TEST_P(AllModels, ExactlyNPointsInsideTheUnitSquare) {
  support::Rng rng(7);
  const auto points = sample_deployment(GetParam(), 3000, rng);
  ASSERT_EQ(points.size(), 3000u);
  for (const Point2& p : points) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 1.0);
  }
}

TEST_P(AllModels, DeterministicPerSeed) {
  support::Rng a(11);
  support::Rng b(11);
  const auto pa = sample_deployment(GetParam(), 100, a);
  const auto pb = sample_deployment(GetParam(), 100, b);
  EXPECT_EQ(pa, pb);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllModels,
    ::testing::ValuesIn(all_deployments()),
    [](const ::testing::TestParamInfo<Deployment>& info) {
      std::string name = deployment_name(info.param);
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

TEST(Deployments, NamesAreDistinct) {
  std::set<std::string> names;
  for (const Deployment d : all_deployments()) names.insert(deployment_name(d));
  EXPECT_EQ(names.size(), all_deployments().size());
}

TEST(Deployments, ClusteredIsMoreConcentratedThanUniform) {
  // Mean nearest-pair distance shrinks under clustering; proxy: variance of
  // per-quadrant counts is much higher than uniform's.
  support::Rng rng(13);
  auto quadrant_variance = [&](Deployment model) {
    const auto points = sample_deployment(model, 4000, rng);
    double counts[16] = {0};
    for (const Point2& p : points) {
      const int qx = std::min(3, static_cast<int>(p.x * 4.0));
      const int qy = std::min(3, static_cast<int>(p.y * 4.0));
      counts[qy * 4 + qx] += 1.0;
    }
    support::RunningStats stats;
    for (const double c : counts) stats.add(c);
    return stats.variance();
  };
  EXPECT_GT(quadrant_variance(Deployment::kClustered),
            4.0 * quadrant_variance(Deployment::kUniform));
}

TEST(Deployments, GridJitterIsMoreEvenThanUniform) {
  support::Rng rng(17);
  auto cell_variance = [&](Deployment model) {
    const auto points = sample_deployment(model, 4096, rng);
    std::vector<double> counts(64, 0.0);
    for (const Point2& p : points) {
      const auto cx = std::min<std::size_t>(7, static_cast<std::size_t>(p.x * 8));
      const auto cy = std::min<std::size_t>(7, static_cast<std::size_t>(p.y * 8));
      counts[cy * 8 + cx] += 1.0;
    }
    support::RunningStats stats;
    for (const double c : counts) stats.add(c);
    return stats.variance();
  };
  EXPECT_LT(cell_variance(Deployment::kGridJitter),
            cell_variance(Deployment::kUniform));
}

TEST(Deployments, HoleIsEmpty) {
  support::Rng rng(19);
  DeploymentParams params;
  const auto points =
      sample_deployment(Deployment::kHole, 5000, rng, params);
  for (const Point2& p : points) {
    EXPECT_GE(distance(p, params.hole_center), params.hole_radius);
  }
}

TEST(Deployments, GradientSkewsRight) {
  support::Rng rng(23);
  const auto points = sample_deployment(Deployment::kGradient, 10000, rng);
  support::RunningStats xs;
  for (const Point2& p : points) xs.add(p.x);
  // With slope 3: E[x] = ∫x(1+3x)dx / (1+3/2) = (1/2 + 1) / 2.5 = 0.6.
  EXPECT_NEAR(xs.mean(), 0.6, 0.02);
}

}  // namespace
}  // namespace emst::geometry
