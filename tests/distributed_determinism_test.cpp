// Cross-process determinism at the driver level (docs/DISTRIBUTED.md).
//
// The contract: `RunConfig::ranks` changes the execution substrate only.
// ranks=0 runs a driver on the in-process serial engine (`sim::Network`);
// ranks>=1 runs the engine-driven drivers (classic GHS, Co-NNT actor) over
// `sim::DistributedNetwork` — forked rank processes, every message crossing
// a real socketpair as proto-codec bytes. For every driver, every seed,
// with and without faults, the full observable result — tree, accounting
// (float energy bitwise), phases, fault/ARQ counters, per-node ledger,
// breakdown matrix, and the complete telemetry event stream — must be
// identical at rank counts {0, 1, 2, 4}. A single flipped bit anywhere
// fails the run: these are equality assertions, not tolerances. (The
// choreographed drivers — sync GHS, EOPT — compute message behaviour in
// lockstep without an engine; for them ranks is a documented no-op, pinned
// here so the knob can never silently change their results.)
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "emst/eopt/eopt.hpp"
#include "emst/geometry/sampling.hpp"
#include "emst/ghs/classic.hpp"
#include "emst/ghs/sync.hpp"
#include "emst/nnt/connt.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/sim/chaos.hpp"
#include "emst/sim/implicit_topology.hpp"
#include "emst/run_report.hpp"
#include "emst/support/rng.hpp"

namespace emst {
namespace {

constexpr std::size_t kNodes = 120;
constexpr std::size_t kSeeds = 3;
/// 0 = the serial in-process engine — the reference every rank count must
/// reproduce byte-for-byte.
constexpr std::size_t kRankCounts[] = {0, 1, 2, 4};

/// Everything observable about one run, copied out so runs can be compared
/// after their backing results are gone.
struct Observed {
  std::vector<graph::Edge> tree;
  sim::Accounting totals;
  std::size_t phases = 0;
  std::size_t fragments = 0;
  sim::FaultStats faults;
  sim::ArqStats arq;
  std::vector<double> per_node;
  sim::EnergyBreakdown breakdown;
  bool hit_phase_cap = false;
  std::vector<sim::TelemetryEvent> events;
};

Observed observe(const RunReport& report, const std::vector<graph::Edge>& tree,
                 const sim::MemoryTraceSink& sink) {
  Observed out;
  out.tree = tree;
  out.totals = report.totals;
  out.phases = report.phases;
  out.fragments = report.fragments;
  out.faults = report.faults;
  out.arq = report.arq;
  if (report.per_node_energy != nullptr) out.per_node = *report.per_node_energy;
  if (report.breakdown != nullptr) out.breakdown = *report.breakdown;
  out.hit_phase_cap = report.hit_phase_cap;
  out.events = sink.events();
  return out;
}

void expect_observed_equal(const Observed& got, const Observed& want,
                           const char* label, std::uint64_t seed,
                           std::size_t ranks) {
  SCOPED_TRACE(testing::Message() << label << " seed=" << seed
                                  << " ranks=" << ranks);
  ASSERT_EQ(got.tree.size(), want.tree.size());
  for (std::size_t i = 0; i < got.tree.size(); ++i) {
    EXPECT_EQ(got.tree[i].u, want.tree[i].u);
    EXPECT_EQ(got.tree[i].v, want.tree[i].v);
    EXPECT_EQ(got.tree[i].w, want.tree[i].w);  // bitwise
  }
  EXPECT_EQ(got.totals.energy, want.totals.energy);  // bitwise, no NEAR
  EXPECT_EQ(got.totals.unicasts, want.totals.unicasts);
  EXPECT_EQ(got.totals.broadcasts, want.totals.broadcasts);
  EXPECT_EQ(got.totals.deliveries, want.totals.deliveries);
  EXPECT_EQ(got.totals.rounds, want.totals.rounds);
  EXPECT_EQ(got.totals.bits, want.totals.bits);
  EXPECT_EQ(got.phases, want.phases);
  EXPECT_EQ(got.fragments, want.fragments);
  EXPECT_EQ(got.faults.lost, want.faults.lost);
  EXPECT_EQ(got.faults.dropped_crashed, want.faults.dropped_crashed);
  EXPECT_EQ(got.faults.suppressed, want.faults.suppressed);
  EXPECT_EQ(got.arq.data_sent, want.arq.data_sent);
  EXPECT_EQ(got.arq.retransmissions, want.arq.retransmissions);
  EXPECT_EQ(got.arq.acks_sent, want.arq.acks_sent);
  EXPECT_EQ(got.arq.delivered, want.arq.delivered);
  EXPECT_EQ(got.arq.give_ups, want.arq.give_ups);
  EXPECT_EQ(got.arq.timeout_rounds, want.arq.timeout_rounds);
  EXPECT_EQ(got.per_node, want.per_node);  // element-wise bitwise
  EXPECT_EQ(got.breakdown, want.breakdown);
  EXPECT_EQ(got.hit_phase_cap, want.hit_phase_cap);
  ASSERT_EQ(got.events.size(), want.events.size());
  for (std::size_t i = 0; i < got.events.size(); ++i) {
    ASSERT_EQ(got.events[i], want.events[i]) << "event " << i;
  }
}

sim::Topology make_topology(std::uint64_t seed,
                            std::vector<geometry::Point2>& points) {
  support::Rng rng(seed);
  points = geometry::uniform_points(kNodes, rng);
  return sim::Topology(points, rgg::connectivity_radius(kNodes));
}

/// Crash-window fault configuration — works on every driver (loss and ARQ
/// need the loss-recovering engines, exercised in the sync/EOPT cases).
sim::FaultModel crashy_model() {
  sim::FaultModel faults;
  faults.crashes.push_back({7, 4, 18});
  faults.crashes.push_back({23, 0, 12});
  faults.crashes.push_back({41, 9, 26});
  return faults;
}

/// Loss + bursts + crashes + ARQ, for the loss-recovering drivers.
sim::FaultModel faulty_model() {
  sim::FaultModel faults;
  faults.loss = 0.08;
  faults.use_gilbert = true;
  faults.crashes.push_back({7, 4, 18});
  faults.crashes.push_back({23, 0, 12});
  return faults;
}

template <typename Options>
void configure(Options& options, std::size_t ranks,
               sim::Telemetry* telemetry) {
  options.track_per_node_energy = true;
  options.record_breakdown = true;
  options.ranks = ranks;
  options.telemetry = telemetry;
}

template <typename RunFn>
void expect_rank_invariant(const char* label, RunFn&& run_at) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Observed baseline;
    bool have_baseline = false;
    for (const std::size_t ranks : kRankCounts) {
      const Observed got = run_at(seed, ranks);
      if (!have_baseline) {
        baseline = got;
        have_baseline = true;
        EXPECT_FALSE(baseline.tree.empty())
            << label << " seed " << seed << ": empty tree";
        continue;
      }
      expect_observed_equal(got, baseline, label, seed, ranks);
    }
  }
}

/// Execution-placement witness (docs/DISTRIBUTED.md §6): with ranks the
/// handlers must have executed inside the rank workers and never in the
/// parent; serially it is exactly the other way around. Kept OUT of the
/// Observed equality — the counters are placement metadata, not results.
void expect_placement(std::uint64_t parent_invocations,
                      std::uint64_t rank_invocations, std::size_t ranks) {
  if (ranks > 0) {
    EXPECT_GT(rank_invocations, 0u) << "ranks=" << ranks;
    EXPECT_EQ(parent_invocations, 0u) << "ranks=" << ranks;
  } else {
    EXPECT_GT(parent_invocations, 0u);
    EXPECT_EQ(rank_invocations, 0u);
  }
}

TEST(DistributedDeterminism, ClassicGhs) {
  expect_rank_invariant("ghs", [](std::uint64_t seed, std::size_t ranks) {
    std::vector<geometry::Point2> points;
    const sim::Topology topo = make_topology(seed, points);
    sim::MemoryTraceSink sink;
    sim::Telemetry telemetry(&sink);
    ghs::ClassicGhsOptions options;
    configure(options, ranks, &telemetry);
    const auto run = ghs::run_classic_ghs(topo, options);
    expect_placement(run.handler_invocations, run.rank_handler_invocations,
                     ranks);
    return observe(run.report(), run.tree, sink);
  });
}

TEST(DistributedDeterminism, ClassicGhsImplicitBackend) {
  // The rank processes are topology-free, so the distributed engine works
  // unchanged over the implicit backend — and must reproduce the
  // materialized backend's serial result byte-for-byte at every rank count
  // (the n=10^7 scale path stays O(n) in the parent, O(1) per rank).
  expect_rank_invariant("ghs-imp", [](std::uint64_t seed, std::size_t ranks) {
    support::Rng rng(seed);
    const auto points = geometry::uniform_points(kNodes, rng);
    sim::MemoryTraceSink sink;
    sim::Telemetry telemetry(&sink);
    ghs::ClassicGhsOptions options;
    configure(options, ranks, &telemetry);
    if (ranks == 0) {
      // Baseline: the serial engine on the MATERIALIZED backend, so the
      // comparison spans both the engine and the topology axis at once.
      const sim::Topology topo(points, rgg::connectivity_radius(kNodes));
      const auto run = ghs::run_classic_ghs(topo, options);
      return observe(run.report(), run.tree, sink);
    }
    const sim::ImplicitTopology topo(points, rgg::connectivity_radius(kNodes));
    const auto run = ghs::run_classic_ghs(topo, options);
    return observe(run.report(), run.tree, sink);
  });
}

TEST(DistributedDeterminism, ClassicGhsCachedWithDelays) {
  // Random per-message delays exercise each rank's multi-bucket calendar
  // ring and FIFO clamp; the cached-MOE variant adds local broadcasts.
  expect_rank_invariant(
      "ghs-cached", [](std::uint64_t seed, std::size_t ranks) {
        std::vector<geometry::Point2> points;
        const sim::Topology topo = make_topology(seed, points);
        sim::MemoryTraceSink sink;
        sim::Telemetry telemetry(&sink);
        ghs::ClassicGhsOptions options;
        options.moe = ghs::MoeStrategy::kCachedConfirm;
        options.delays = {3, 0xabc0ULL + seed};
        configure(options, ranks, &telemetry);
        const auto run = ghs::run_classic_ghs(topo, options);
        return observe(run.report(), run.tree, sink);
      });
}

TEST(DistributedDeterminism, ClassicGhsCrashWindows) {
  // Suppressions and crash drops are classified in the parent, where the
  // fault clock lives; the event stream must interleave identically.
  expect_rank_invariant(
      "ghs+crashes", [](std::uint64_t seed, std::size_t ranks) {
        std::vector<geometry::Point2> points;
        const sim::Topology topo = make_topology(seed, points);
        sim::MemoryTraceSink sink;
        sim::Telemetry telemetry(&sink);
        ghs::ClassicGhsOptions options;
        options.faults = crashy_model();
        options.faults.seed += seed;
        configure(options, ranks, &telemetry);
        const auto run = ghs::run_classic_ghs(topo, options);
        return observe(run.report(), run.tree, sink);
      });
}

TEST(DistributedDeterminism, SyncGhsRanksIsNoOp) {
  // Choreographed driver: no engine, so ranks must change NOTHING.
  expect_rank_invariant("sync", [](std::uint64_t seed, std::size_t ranks) {
    std::vector<geometry::Point2> points;
    const sim::Topology topo = make_topology(seed, points);
    sim::MemoryTraceSink sink;
    sim::Telemetry telemetry(&sink);
    ghs::SyncGhsOptions options;
    configure(options, ranks, &telemetry);
    const auto run = ghs::run_sync_ghs(topo, options);
    return observe(run.report(), run.run.tree, sink);
  });
}

TEST(DistributedDeterminism, SyncGhsProbeFaultyArqRanksIsNoOp) {
  expect_rank_invariant(
      "sync-probe+faults", [](std::uint64_t seed, std::size_t ranks) {
        std::vector<geometry::Point2> points;
        const sim::Topology topo = make_topology(seed, points);
        sim::MemoryTraceSink sink;
        sim::Telemetry telemetry(&sink);
        ghs::SyncGhsOptions options;
        options.neighbor_cache = false;
        options.faults = faulty_model();
        options.faults.seed += seed;
        options.arq.enabled = true;
        configure(options, ranks, &telemetry);
        const auto run = ghs::run_sync_ghs(topo, options);
        return observe(run.report(), run.run.tree, sink);
      });
}

TEST(DistributedDeterminism, EoptFaultyArqRanksIsNoOp) {
  expect_rank_invariant(
      "eopt+faults", [](std::uint64_t seed, std::size_t ranks) {
        std::vector<geometry::Point2> points;
        const sim::Topology topo = make_topology(seed, points);
        sim::MemoryTraceSink sink;
        sim::Telemetry telemetry(&sink);
        eopt::EoptOptions options;
        options.faults = faulty_model();
        options.faults.seed += seed;
        options.arq.enabled = true;
        configure(options, ranks, &telemetry);
        const auto run = eopt::run_eopt(topo, options);
        return observe(run.report(), run.run.tree, sink);
      });
}

TEST(DistributedDeterminism, CoNntFacadeDispatch) {
  // run_connt with ranks>0 dispatches to the actor execution — the engine
  // is where rank processes exist. The actor runs must be bitwise
  // identical to each other at every rank count, and must produce the SAME
  // TREE as the ranks=0 choreographed execution (whose event stream is
  // shaped differently by design — billed per logical message, not per
  // in-flight one — so only the result is compared across executions).
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    std::vector<geometry::Point2> points;
    const sim::Topology topo = make_topology(seed, points);
    auto run_at = [&topo](std::size_t ranks, sim::MemoryTraceSink& sink) {
      sim::Telemetry telemetry(&sink);
      nnt::CoNntOptions options;
      configure(options, ranks, &telemetry);
      const auto run = nnt::run_connt(topo, options);
      return observe(run.report(), run.tree, sink);
    };
    sim::MemoryTraceSink sink0;
    const Observed choreographed = run_at(0, sink0);
    EXPECT_FALSE(choreographed.tree.empty());
    Observed baseline;
    bool have_baseline = false;
    for (const std::size_t ranks : {1u, 2u, 4u}) {
      sim::MemoryTraceSink sink;
      const Observed got = run_at(ranks, sink);
      ASSERT_EQ(got.tree.size(), choreographed.tree.size())
          << "connt seed=" << seed << " ranks=" << ranks;
      for (std::size_t i = 0; i < got.tree.size(); ++i) {
        EXPECT_EQ(got.tree[i].u, choreographed.tree[i].u);
        EXPECT_EQ(got.tree[i].v, choreographed.tree[i].v);
        EXPECT_EQ(got.tree[i].w, choreographed.tree[i].w);
      }
      if (!have_baseline) {
        baseline = got;
        have_baseline = true;
        continue;
      }
      expect_observed_equal(got, baseline, "connt", seed, ranks);
    }
  }
}

TEST(DistributedDeterminism, CoNntActor) {
  expect_rank_invariant(
      "connt-actor", [](std::uint64_t seed, std::size_t ranks) {
        std::vector<geometry::Point2> points;
        const sim::Topology topo = make_topology(seed, points);
        sim::MemoryTraceSink sink;
        sim::Telemetry telemetry(&sink);
        nnt::CoNntOptions options;
        configure(options, ranks, &telemetry);
        const auto run = nnt::run_connt_actor(topo, options);
        expect_placement(run.handler_invocations, run.rank_handler_invocations,
                         ranks);
        return observe(run.report(), run.tree, sink);
      });
}

TEST(DistributedDeterminism, CoNntActorCrashWindows) {
  expect_rank_invariant(
      "connt-actor+crashes", [](std::uint64_t seed, std::size_t ranks) {
        std::vector<geometry::Point2> points;
        const sim::Topology topo = make_topology(seed, points);
        sim::MemoryTraceSink sink;
        sim::Telemetry telemetry(&sink);
        nnt::CoNntOptions options;
        options.faults = crashy_model();
        options.faults.seed += seed;
        configure(options, ranks, &telemetry);
        const auto run = nnt::run_connt_actor(topo, options);
        return observe(run.report(), run.tree, sink);
      });
}

// ---------------------------------------------------------------------------
// Chaos strategies in the rank matrix. The adversarial controller is
// consulted ONLY from the parent's serial sections (it owns the fault
// clock); in actor mode the injected windows ship to the ranks inside the
// round's final ACTOR_ROUND chunk. The injected schedule and every
// downstream observable must therefore be rank-invariant. Controllers are
// stateful — one instance drives one run — so each run constructs a fresh
// one.
// ---------------------------------------------------------------------------

TEST(DistributedDeterminism, ClassicGhsKillLeaderChaos) {
  expect_rank_invariant(
      "ghs+kill_leader", [](std::uint64_t seed, std::size_t ranks) {
        std::vector<geometry::Point2> points;
        const sim::Topology topo = make_topology(seed, points);
        sim::MemoryTraceSink sink;
        sim::Telemetry telemetry(&sink);
        sim::KillLeader controller;
        ghs::ClassicGhsOptions options;
        options.faults.controller = &controller;
        options.faults.seed = 0xc0a0ULL + seed;
        configure(options, ranks, &telemetry);
        const auto run = ghs::run_classic_ghs(topo, options);
        expect_placement(run.handler_invocations,
                         run.rank_handler_invocations, ranks);
        return observe(run.report(), run.tree, sink);
      });
}

TEST(DistributedDeterminism, CoNntActorPartitionHalfChaos) {
  expect_rank_invariant(
      "connt+partition_half", [](std::uint64_t seed, std::size_t ranks) {
        std::vector<geometry::Point2> points;
        const sim::Topology topo = make_topology(seed, points);
        sim::MemoryTraceSink sink;
        sim::Telemetry telemetry(&sink);
        sim::PartitionHalf controller(/*at_round=*/4);
        nnt::CoNntOptions options;
        options.faults.controller = &controller;
        options.faults.seed = 0x9a17ULL + seed;
        configure(options, ranks, &telemetry);
        const auto run = nnt::run_connt_actor(topo, options);
        expect_placement(run.handler_invocations,
                         run.rank_handler_invocations, ranks);
        return observe(run.report(), run.tree, sink);
      });
}

}  // namespace
}  // namespace emst
