// Tests for points, metrics, the path-loss model, and point processes.
#include <gtest/gtest.h>

#include <cmath>

#include "emst/geometry/pathloss.hpp"
#include "emst/geometry/point.hpp"
#include "emst/geometry/rect.hpp"
#include "emst/geometry/sampling.hpp"
#include "emst/support/rng.hpp"

namespace emst::geometry {
namespace {

TEST(Point, DistanceBasics) {
  const Point2 a{0.0, 0.0};
  const Point2 b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(distance_sq(a, b), 25.0);
  EXPECT_DOUBLE_EQ(distance(a, a), 0.0);
}

TEST(Point, DistanceSymmetric) {
  const Point2 a{0.2, 0.9};
  const Point2 b{0.7, 0.1};
  EXPECT_DOUBLE_EQ(distance(a, b), distance(b, a));
  EXPECT_DOUBLE_EQ(chebyshev(a, b), chebyshev(b, a));
}

TEST(Point, ChebyshevVsEuclidean) {
  const Point2 a{0.0, 0.0};
  const Point2 b{0.3, 0.4};
  EXPECT_DOUBLE_EQ(chebyshev(a, b), 0.4);
  // L∞ ≤ L2 ≤ √2·L∞ in the plane.
  EXPECT_LE(chebyshev(a, b), distance(a, b));
  EXPECT_LE(distance(a, b), std::sqrt(2.0) * chebyshev(a, b));
}

TEST(Point, MetricDispatch) {
  const Point2 a{0.0, 0.0};
  const Point2 b{1.0, 1.0};
  EXPECT_DOUBLE_EQ(dist(Metric::kEuclidean, a, b), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(dist(Metric::kChebyshev, a, b), 1.0);
}

TEST(Point, Arithmetic) {
  const Point2 a{1.0, 2.0};
  const Point2 b{0.5, -1.0};
  const Point2 sum = a + b;
  EXPECT_DOUBLE_EQ(sum.x, 1.5);
  EXPECT_DOUBLE_EQ(sum.y, 1.0);
  const Point2 scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled.x, 2.0);
  EXPECT_DOUBLE_EQ(scaled.y, 4.0);
}

TEST(Rect, UnitSquare) {
  const Rect r = unit_square();
  EXPECT_DOUBLE_EQ(r.area(), 1.0);
  EXPECT_TRUE(r.contains({0.5, 0.5}));
  EXPECT_TRUE(r.contains({0.0, 1.0}));
  EXPECT_FALSE(r.contains({1.1, 0.5}));
}

TEST(PathLoss, AlphaTwoIsSquare) {
  const PathLoss model{1.0, 2.0};
  EXPECT_DOUBLE_EQ(model.cost(0.5), 0.25);
  EXPECT_DOUBLE_EQ(model.cost(0.0), 0.0);
}

TEST(PathLoss, GeneralAlphaAndScale) {
  const PathLoss model{2.0, 3.0};
  EXPECT_NEAR(model.cost(0.5), 2.0 * 0.125, 1e-12);
  const PathLoss linear{1.0, 1.0};
  EXPECT_DOUBLE_EQ(linear.cost(0.7), 0.7);
}

TEST(Sampling, UniformPointsInsideRegion) {
  support::Rng rng(41);
  const auto points = uniform_points(5000, rng);
  ASSERT_EQ(points.size(), 5000u);
  for (const Point2& p : points) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 1.0);
  }
}

TEST(Sampling, UniformPointsCoverQuadrants) {
  support::Rng rng(43);
  const auto points = uniform_points(4000, rng);
  int quadrant[4] = {0, 0, 0, 0};
  for (const Point2& p : points)
    ++quadrant[(p.x >= 0.5 ? 1 : 0) + (p.y >= 0.5 ? 2 : 0)];
  for (int q : quadrant) EXPECT_NEAR(q, 1000, 150);
}

TEST(Sampling, CustomRegion) {
  support::Rng rng(47);
  const Rect region{{2.0, 3.0}, {4.0, 5.0}};
  const auto points = uniform_points(100, rng, region);
  for (const Point2& p : points) EXPECT_TRUE(region.contains(p));
}

TEST(Sampling, PoissonCountNearRate) {
  support::Rng rng(53);
  double total = 0.0;
  constexpr int kTrials = 200;
  for (int i = 0; i < kTrials; ++i)
    total += static_cast<double>(poisson_points(500.0, rng).size());
  EXPECT_NEAR(total / kTrials, 500.0, 10.0);
}

TEST(Sampling, PoissonRateScalesWithArea) {
  support::Rng rng(59);
  const Rect region{{0.0, 0.0}, {2.0, 2.0}};  // area 4
  double total = 0.0;
  constexpr int kTrials = 100;
  for (int i = 0; i < kTrials; ++i)
    total += static_cast<double>(poisson_points(100.0, rng, region).size());
  EXPECT_NEAR(total / kTrials, 400.0, 25.0);
}

}  // namespace
}  // namespace emst::geometry
