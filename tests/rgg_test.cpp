// Tests for random geometric graph construction, radius helpers, component
// labelling, and the exact Euclidean MST helper.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "emst/geometry/sampling.hpp"
#include "emst/graph/mst.hpp"
#include "emst/graph/tree_utils.hpp"
#include "emst/rgg/components.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/rgg/rgg.hpp"
#include "emst/support/rng.hpp"

namespace emst::rgg {
namespace {

std::vector<graph::Edge> brute_edges(const std::vector<geometry::Point2>& points,
                                     double radius) {
  std::vector<graph::Edge> edges;
  for (graph::NodeId u = 0; u < points.size(); ++u) {
    for (graph::NodeId v = u + 1; v < points.size(); ++v) {
      const double d = geometry::distance(points[u], points[v]);
      if (d <= radius) edges.push_back({u, v, d});
    }
  }
  graph::sort_edges(edges);
  return edges;
}

TEST(Radii, Formulas) {
  EXPECT_NEAR(connectivity_radius(1000, 1.6),
              1.6 * std::sqrt(std::log(1000.0) / 1000.0), 1e-12);
  EXPECT_NEAR(percolation_radius(1000, 1.4), 1.4 * std::sqrt(1.0 / 1000.0), 1e-12);
  const double ln = std::log(1000.0);
  EXPECT_NEAR(giant_threshold(1000, 2.0), 2.0 * ln * ln, 1e-12);
  // Connectivity radius shrinks with n but slower than the percolation one.
  EXPECT_GT(connectivity_radius(10000), percolation_radius(10000));
  EXPECT_LT(connectivity_radius(10000), connectivity_radius(100));
}

class RggVsBrute : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(RggVsBrute, EdgesMatchBruteForce) {
  const auto [n, radius, seed] = GetParam();
  support::Rng rng(static_cast<std::uint64_t>(seed) * 104729 + 7);
  const auto points = geometry::uniform_points(static_cast<std::size_t>(n), rng);
  const auto got = geometric_edges(points, radius);
  const auto want = brute_edges(points, radius);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].u, want[i].u);
    EXPECT_EQ(got[i].v, want[i].v);
    EXPECT_DOUBLE_EQ(got[i].w, want[i].w);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RggVsBrute,
    ::testing::Combine(::testing::Values(2, 25, 200),
                       ::testing::Values(0.05, 0.2, 0.8),
                       ::testing::Values(1, 2)));

TEST(Rgg, EdgeWeightsAreDistances) {
  support::Rng rng(83);
  const auto instance = random_rgg(100, 0.3, rng);
  for (const graph::Edge& e : instance.graph.edges()) {
    EXPECT_NEAR(e.w,
                geometry::distance(instance.points[e.u], instance.points[e.v]),
                1e-12);
    EXPECT_LE(e.w, 0.3);
  }
}

TEST(Rgg, ConnectedAtConnectivityRadius) {
  // Thm 5.1: r = 1.6·√(ln n / n) connects the graph WHP. Statistical test
  // over fixed seeds at n = 1000: all instances should connect.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    support::Rng rng(seed);
    const auto instance = random_rgg(1000, connectivity_radius(1000), rng);
    EXPECT_TRUE(is_connected(instance.graph)) << "seed " << seed;
  }
}

TEST(Rgg, FragmentedAtPercolationRadius) {
  // At r = 1.4·√(1/n) the graph percolates but is not connected: expect a
  // dominant component plus many stragglers.
  support::Rng rng(89);
  const auto instance = random_rgg(2000, percolation_radius(2000), rng);
  const Components comps = connected_components(instance.graph);
  EXPECT_GT(comps.count, 10u);
  EXPECT_GT(comps.giant_size(), 500u);
}

TEST(Components, HandSizedExample) {
  // Two triangles, one isolated vertex.
  std::vector<graph::Edge> edges = {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0},
                                    {3, 4, 1.0}, {4, 5, 1.0}};
  const graph::AdjacencyList g(7, edges);
  const Components comps = connected_components(g);
  EXPECT_EQ(comps.count, 3u);
  EXPECT_EQ(comps.giant_size(), 3u);
  EXPECT_EQ(comps.second_size(), 3u);
  EXPECT_EQ(comps.label[0], comps.label[2]);
  EXPECT_NE(comps.label[0], comps.label[3]);
  EXPECT_EQ(comps.sizes[comps.label[6]], 1u);
}

TEST(Components, SecondSizeOfSingleComponent) {
  const graph::AdjacencyList g(2, {{0, 1, 1.0}});
  const Components comps = connected_components(g);
  EXPECT_EQ(comps.count, 1u);
  EXPECT_EQ(comps.second_size(), 0u);
  EXPECT_TRUE(is_connected(g));
}

TEST(EuclideanMst, MatchesCompleteGraphKruskal) {
  support::Rng rng(97);
  for (int trial = 0; trial < 5; ++trial) {
    const auto points = geometry::uniform_points(80, rng);
    const auto fast = euclidean_mst(points);
    // Reference: Kruskal over ALL pairs.
    const auto all = brute_edges(points, 2.0);
    const auto exact = graph::kruskal_msf(points.size(), all);
    EXPECT_TRUE(graph::same_edge_set(fast, exact));
    EXPECT_TRUE(graph::is_spanning_tree(points.size(), fast));
  }
}

TEST(EuclideanMst, DegenerateSizes) {
  EXPECT_TRUE(euclidean_mst({}).empty());
  EXPECT_TRUE(euclidean_mst({{0.5, 0.5}}).empty());
  const auto two = euclidean_mst({{0.1, 0.1}, {0.9, 0.9}});
  ASSERT_EQ(two.size(), 1u);
  EXPECT_NEAR(two[0].w, std::sqrt(2.0) * 0.8, 1e-12);
}

TEST(EuclideanMst, CostScalesAsSqrtN) {
  // Steele: E[Σ|e|] = Θ(√n). Check the ratio between n=400 and n=1600 is
  // near 2 (= √4).
  support::Rng rng(101);
  auto cost = [&](std::size_t n) {
    double total = 0.0;
    for (int t = 0; t < 5; ++t) {
      const auto points = geometry::uniform_points(n, rng);
      total += graph::tree_cost(points, euclidean_mst(points), 1.0);
    }
    return total / 5.0;
  };
  const double ratio = cost(1600) / cost(400);
  EXPECT_NEAR(ratio, 2.0, 0.25);
}

}  // namespace
}  // namespace emst::rgg
