// Tests for the RBN contention-resolution layer (§II interference model,
// §VIII constant-energy claim).
#include <gtest/gtest.h>

#include <cmath>

#include "emst/geometry/sampling.hpp"
#include "emst/ghs/sync.hpp"
#include "emst/mac/rbn.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/support/rng.hpp"

namespace emst::mac {
namespace {

sim::Topology make_topology(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  return sim::Topology(geometry::uniform_points(n, rng),
                       rgg::connectivity_radius(n));
}

TEST(Rbn, EmptyBatch) {
  const sim::Topology topo = make_topology(10, 1);
  const RbnStats stats = resolve_contention(topo, {});
  EXPECT_EQ(stats.delivered, 0u);
  EXPECT_EQ(stats.slots, 0u);
  EXPECT_EQ(stats.energy, 0.0);
}

TEST(Rbn, LoneTransmissionNeedsOneAttempt) {
  const sim::Topology topo({{0.1, 0.1}, {0.2, 0.1}}, 0.5);
  RbnOptions options;
  options.tx_probability = 1.0;  // no contention, always transmit
  const RbnStats stats =
      resolve_contention(topo, {{0, 1, 0.1}}, options);
  EXPECT_EQ(stats.delivered, 1u);
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.slots, 1u);
  EXPECT_NEAR(stats.energy, 0.01, 1e-12);
  EXPECT_NEAR(stats.energy_blowup(), 1.0, 1e-12);
}

TEST(Rbn, TwoCollidersBothEventuallyDeliver) {
  // Two senders whose receivers are in both interference ranges: if both
  // transmit in the same slot, both fail. With p = 1/(Δ+1) they desynchronize.
  const sim::Topology topo({{0.4, 0.5}, {0.6, 0.5}, {0.5, 0.45}, {0.5, 0.55}},
                           0.5);
  const RbnStats stats = resolve_contention(
      topo, {{0, 2, 0.2}, {1, 3, 0.2}});
  EXPECT_EQ(stats.delivered, 2u);
  EXPECT_GE(stats.attempts, 2u);
  EXPECT_GE(stats.slots, 1u);
}

TEST(Rbn, SimultaneousTransmitGuaranteedCollision) {
  // Force p = 1: both senders transmit every slot, colliding forever until
  // the slot cap trips — the degenerate case the random backoff exists for.
  const sim::Topology topo({{0.4, 0.5}, {0.6, 0.5}, {0.5, 0.45}, {0.5, 0.55}},
                           0.5);
  RbnOptions options;
  options.tx_probability = 1.0;
  options.max_slots = 50;
  EXPECT_DEATH(
      { (void)resolve_contention(topo, {{0, 2, 0.2}, {1, 3, 0.2}}, options); },
      "did not drain");
}

TEST(Rbn, DistantPairsDoNotInterfere) {
  // Two transmissions in opposite corners: no interference even at p = 1.
  const sim::Topology topo(
      {{0.05, 0.05}, {0.1, 0.05}, {0.9, 0.95}, {0.95, 0.95}}, 0.2);
  RbnOptions options;
  options.tx_probability = 1.0;
  const RbnStats stats =
      resolve_contention(topo, {{0, 1, 0.06}, {2, 3, 0.06}}, options);
  EXPECT_EQ(stats.delivered, 2u);
  EXPECT_EQ(stats.slots, 1u);
  EXPECT_EQ(stats.attempts, 2u);
}

TEST(Rbn, DeterministicForFixedSeed) {
  const sim::Topology topo = make_topology(200, 3);
  std::vector<Transmission> batch;
  for (sim::NodeId u = 0; u < 50; ++u) {
    const auto nbs = topo.neighbors(u);
    if (!nbs.empty()) batch.push_back({u, nbs[0].id, nbs[0].w});
  }
  const RbnStats a = resolve_contention(topo, batch);
  const RbnStats b = resolve_contention(topo, batch);
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_DOUBLE_EQ(a.energy, b.energy);
}

TEST(Rbn, EnergyBlowupIsSmallConstant) {
  // The §VIII claim: expected attempts per message ≈ e with p = 1/(Δ+1).
  // Over a real neighbourhood-announcement workload the blow-up should land
  // well under 8 (e ≈ 2.72 plus tail effects).
  const sim::Topology topo = make_topology(500, 5);
  const RbnStats stats =
      announcement_round_under_rbn(topo, topo.max_radius());
  EXPECT_EQ(stats.delivered, 500u);
  EXPECT_GT(stats.energy_blowup(), 1.0);
  EXPECT_LT(stats.energy_blowup(), 8.0);
}

TEST(Rbn, TimeBlowupScalesWithDensity) {
  // Slots to drain an announcement round grow with the interference degree
  // Δ (denser graph ⇒ more slots); energy blow-up stays flat.
  const sim::Topology sparse = make_topology(300, 7);
  const sim::Topology dense = make_topology(2000, 7);
  const RbnStats s = announcement_round_under_rbn(sparse, sparse.max_radius());
  const RbnStats d = announcement_round_under_rbn(dense, dense.max_radius());
  EXPECT_GT(d.slots, s.slots);
  EXPECT_LT(std::abs(d.energy_blowup() - s.energy_blowup()), 4.0);
}

TEST(Rbn, AnnouncementReachesEveryNeighbor) {
  const sim::Topology topo = make_topology(100, 11);
  const RbnStats stats =
      announcement_round_under_rbn(topo, topo.max_radius());
  // One broadcast item per node with ≥1 neighbor; all delivered.
  std::size_t expected = 0;
  for (sim::NodeId u = 0; u < topo.node_count(); ++u) {
    if (!topo.neighbors(u).empty()) ++expected;
  }
  EXPECT_EQ(stats.delivered, expected);
}

TEST(Rbn, TxRxStricterThanRbn) {
  // Tx-Rx adds sender-side and receiver-busy constraints, so draining the
  // same workload takes at least as many attempts/slots.
  const sim::Topology topo = make_topology(400, 17);
  mac::RbnOptions rbn;
  rbn.seed = 7;
  mac::RbnOptions txrx = rbn;
  txrx.rule = InterferenceRule::kTxRx;
  const RbnStats a = announcement_round_under_rbn(topo, topo.max_radius(), rbn);
  const RbnStats b = announcement_round_under_rbn(topo, topo.max_radius(), txrx);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_GE(b.attempts, a.attempts);
  EXPECT_LT(b.energy_blowup(), 16.0);  // still a constant factor
}

TEST(Rbn, TxRxLoneTransmissionUnaffected) {
  const sim::Topology topo({{0.1, 0.1}, {0.2, 0.1}}, 0.5);
  RbnOptions options;
  options.tx_probability = 1.0;
  options.rule = InterferenceRule::kTxRx;
  const RbnStats stats = resolve_contention(topo, {{0, 1, 0.1}}, options);
  EXPECT_EQ(stats.delivered, 1u);
  EXPECT_EQ(stats.attempts, 1u);
}

TEST(Rbn, ReplayLogCoversAWholeMstRun) {
  // End-to-end §VIII: log a full modified-GHS run and replay it under RBN.
  const sim::Topology topo = make_topology(600, 23);
  ghs::TxLog log;
  ghs::SyncGhsOptions options;
  options.transmission_log = &log;
  const auto run = ghs::run_sync_ghs(topo, options);
  ASSERT_FALSE(log.empty());
  // Invariant: the log's collision-free energy equals the metered energy —
  // every charged message was logged and vice versa.
  const RbnStats stats = replay_log(topo, log);
  EXPECT_NEAR(stats.collision_free_energy, run.run.totals.energy, 1e-9);
  EXPECT_EQ(stats.delivered,
            [&] {
              std::size_t messages = 0;
              for (const auto& batch : log) messages += batch.size();
              return messages;
            }() -
                [&] {
                  // Broadcasts with no receiver are skipped by the replay.
                  std::size_t empty = 0;
                  for (const auto& batch : log) {
                    for (const auto& record : batch) {
                      if (record.is_broadcast &&
                          ghs::neighbors_within(topo, record.from,
                                                record.power_radius)
                              .empty())
                        ++empty;
                    }
                  }
                  return empty;
                }());
  // Constant-factor energy, as §VIII claims — end to end.
  EXPECT_GT(stats.energy_blowup(), 1.0);
  EXPECT_LT(stats.energy_blowup(), 8.0);
}

TEST(Rbn, ReplayLogDeterministic) {
  const sim::Topology topo = make_topology(200, 29);
  ghs::TxLog log;
  ghs::SyncGhsOptions options;
  options.transmission_log = &log;
  (void)ghs::run_sync_ghs(topo, options);
  const RbnStats a = replay_log(topo, log);
  const RbnStats b = replay_log(topo, log);
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_DOUBLE_EQ(a.energy, b.energy);
}

TEST(Rbn, DistinctPairsAtLeastNLogNScale) {
  // The Korach–Moran–Zaks combinatorial fact behind Thm 4.1: a spanning-tree
  // construction touches Ω(n log n) distinct pairs. Measure it on a logged
  // modified-GHS run.
  const std::size_t n = 1000;
  const sim::Topology topo = make_topology(n, 37);
  ghs::TxLog log;
  ghs::SyncGhsOptions options;
  options.transmission_log = &log;
  (void)ghs::run_sync_ghs(topo, options);
  const std::size_t pairs = ghs::distinct_pairs_used(topo, log);
  const double n_log_n = static_cast<double>(n) * std::log(static_cast<double>(n));
  EXPECT_GT(static_cast<double>(pairs), 0.5 * n_log_n);
  // And it cannot exceed the edge count of the visibility graph.
  EXPECT_LE(pairs, topo.graph().edge_count());
}

TEST(Rbn, DistinctPairsCountsBroadcastFanout) {
  // One broadcast at full radius touches exactly deg(u) pairs.
  const sim::Topology topo = make_topology(50, 41);
  ghs::TxLog log;
  log.push_back({ghs::TxRecord{7, 7, topo.max_radius(), true}});
  EXPECT_EQ(ghs::distinct_pairs_used(topo, log), topo.neighbors(7).size());
  // A duplicate unicast over the same pair counts once.
  const auto v = topo.neighbors(7)[0].id;
  log.push_back({ghs::TxRecord{7, v, topo.distance(7, v), false},
                 ghs::TxRecord{v, 7, topo.distance(7, v), false}});
  EXPECT_EQ(ghs::distinct_pairs_used(topo, log), topo.neighbors(7).size());
}

TEST(Rbn, LoggingDoesNotPerturbTheRun) {
  const sim::Topology topo = make_topology(400, 31);
  ghs::TxLog log;
  ghs::SyncGhsOptions with_log;
  with_log.transmission_log = &log;
  const auto logged = ghs::run_sync_ghs(topo, with_log);
  const auto plain = ghs::run_sync_ghs(topo, {});
  EXPECT_DOUBLE_EQ(logged.run.totals.energy, plain.run.totals.energy);
  EXPECT_EQ(logged.run.totals.messages(), plain.run.totals.messages());
}

TEST(Rbn, CollisionFreeEnergyMatchesMeterModel) {
  const sim::Topology topo = make_topology(100, 13);
  const double r = topo.max_radius();
  const RbnStats stats = announcement_round_under_rbn(topo, r);
  std::size_t senders = 0;
  for (sim::NodeId u = 0; u < topo.node_count(); ++u) {
    if (!topo.neighbors(u).empty()) ++senders;
  }
  EXPECT_NEAR(stats.collision_free_energy,
              static_cast<double>(senders) * r * r, 1e-9);
}

}  // namespace
}  // namespace emst::mac
