// Differential tests for the sharded parallel engine (docs/PARALLEL.md).
//
// `ShardedNetwork` promises results bitwise-identical to `Network` for every
// thread count: same delivery sequences, same float energy totals, same
// telemetry event stream, same fault fates. These tests replay identical
// random schedules through both engines — across thread counts, delay
// models, and fault models (Bernoulli loss, Gilbert–Elliott bursts, crash
// windows) — and require byte-for-byte agreement, the same bar the calendar
// queue is held to against the seed engine (network_equivalence_test.cpp).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "emst/geometry/sampling.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/sim/network.hpp"
#include "emst/sim/sharded_network.hpp"
#include "emst/support/rng.hpp"

namespace emst::sim {
namespace {

using Msg = std::uint64_t;

void expect_same_events(const MemoryTraceSink& got, const MemoryTraceSink& want) {
  ASSERT_EQ(got.events().size(), want.events().size());
  for (std::size_t i = 0; i < got.events().size(); ++i) {
    ASSERT_EQ(got.events()[i], want.events()[i]) << "event " << i;
  }
}

/// Replay an identical random unicast/broadcast schedule through `Network`
/// and a `ShardedNetwork` with the given thread count; require identical
/// deliveries, meter totals, fault stats and telemetry streams.
void expect_sharded_equivalent(std::size_t threads,
                               std::uint32_t max_extra_delay,
                               const FaultModel& faults = {}) {
  const std::size_t n = 250;
  support::Rng rng(515151 + max_extra_delay + 977 * threads);
  const auto points = geometry::uniform_points(n, rng);
  const double radius = rgg::connectivity_radius(n);
  const Topology topo(points, radius);
  const DelayModel delays{max_extra_delay, 0xd0d0ULL + max_extra_delay};

  MemoryTraceSink serial_sink, sharded_sink;
  Telemetry serial_tel(&serial_sink), sharded_tel(&sharded_sink);
  Network<Msg> serial(topo, {}, false, delays, faults, &serial_tel);
  ShardedNetwork<Msg> sharded(topo, {}, false, delays, faults, &sharded_tel,
                              threads);

  std::uint64_t payload = 0;
  std::size_t total_delivered = 0;
  const int schedule_rounds = 60;
  for (int round = 0; round < schedule_rounds + 40; ++round) {
    if (round < schedule_rounds) {
      const std::uint64_t ops = rng.uniform_int(20);
      for (std::uint64_t k = 0; k < ops; ++k) {
        const auto u = static_cast<NodeId>(rng.uniform_int(n));
        if (rng.uniform() < 0.3) {
          const double r = rng.uniform(0.0, radius);
          serial.broadcast(u, r, payload);
          sharded.broadcast(u, r, payload);
          ++payload;
        } else {
          const auto nbs = topo.neighbors(u);
          if (nbs.empty()) continue;
          const auto v = nbs[rng.uniform_int(nbs.size())].id;
          serial.unicast(u, v, payload);
          sharded.unicast(u, v, payload);
          ++payload;
        }
      }
      ASSERT_EQ(sharded.pending(), serial.pending()) << "round " << round;
    }
    const auto want = serial.collect_round();
    const auto got = sharded.collect_round();
    ASSERT_EQ(got.size(), want.size()) << "round " << round;
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].from, want[i].from) << "round " << round << " pos " << i;
      ASSERT_EQ(got[i].to, want[i].to) << "round " << round << " pos " << i;
      ASSERT_EQ(got[i].distance, want[i].distance)  // bit-identical
          << "round " << round << " pos " << i;
      ASSERT_EQ(got[i].msg, want[i].msg) << "round " << round << " pos " << i;
    }
    total_delivered += got.size();
    ASSERT_EQ(sharded.pending(), serial.pending()) << "round " << round;
    if (round >= schedule_rounds && !serial.pending()) break;
  }
  EXPECT_FALSE(sharded.pending());
  EXPECT_GT(total_delivered, 0u);

  EXPECT_EQ(sharded.meter().totals().energy, serial.meter().totals().energy);
  EXPECT_EQ(sharded.meter().totals().unicasts,
            serial.meter().totals().unicasts);
  EXPECT_EQ(sharded.meter().totals().broadcasts,
            serial.meter().totals().broadcasts);
  EXPECT_EQ(sharded.meter().totals().deliveries,
            serial.meter().totals().deliveries);
  EXPECT_EQ(sharded.meter().totals().rounds, serial.meter().totals().rounds);
  EXPECT_EQ(sharded.fault_stats().lost, serial.fault_stats().lost);
  EXPECT_EQ(sharded.fault_stats().dropped_crashed,
            serial.fault_stats().dropped_crashed);
  EXPECT_EQ(sharded.fault_stats().suppressed,
            serial.fault_stats().suppressed);
  expect_same_events(sharded_sink, serial_sink);
}

TEST(ShardedNetwork, SynchronousAcrossThreadCounts) {
  for (const std::size_t t : {1u, 2u, 4u, 8u}) expect_sharded_equivalent(t, 0);
}

TEST(ShardedNetwork, Delay1AcrossThreadCounts) {
  for (const std::size_t t : {1u, 2u, 4u, 8u}) expect_sharded_equivalent(t, 1);
}

TEST(ShardedNetwork, Delay5AcrossThreadCounts) {
  for (const std::size_t t : {1u, 2u, 4u, 8u}) expect_sharded_equivalent(t, 5);
}

TEST(ShardedNetwork, BernoulliLossAcrossThreadCounts) {
  FaultModel faults;
  faults.loss = 0.15;
  for (const std::size_t t : {1u, 2u, 4u, 8u})
    expect_sharded_equivalent(t, 2, faults);
}

TEST(ShardedNetwork, GilbertElliottAcrossThreadCounts) {
  // Burst chains are per-link *stateful*; the sharded engine keeps them in
  // per-shard maps — this is the test that those maps see every link's
  // transmissions in the same order the global map does.
  FaultModel faults;
  faults.use_gilbert = true;
  faults.ge_good_to_bad = 0.2;
  for (const std::size_t t : {1u, 2u, 4u, 8u})
    expect_sharded_equivalent(t, 3, faults);
}

TEST(ShardedNetwork, CrashWindowsAcrossThreadCounts) {
  // Suppressions (send side, staged) and crash drops (delivery side,
  // classified on workers) must land in the same stream positions.
  FaultModel faults;
  faults.loss = 0.05;
  for (NodeId u = 0; u < 40; ++u) {
    faults.crashes.push_back({u, 10 + (u % 7), 30 + (u % 11)});
  }
  for (const std::size_t t : {1u, 2u, 4u, 8u})
    expect_sharded_equivalent(t, 2, faults);
}

TEST(ShardedNetwork, MixedFaultsDelay5) {
  FaultModel faults;
  faults.loss = 0.1;
  faults.use_gilbert = true;
  faults.crashes.push_back({3, 5, 40});
  faults.crashes.push_back({17, 0, 25});
  for (const std::size_t t : {1u, 3u, 5u, 8u})
    expect_sharded_equivalent(t, 5, faults);
}

TEST(ShardedNetwork, MoreShardsThanNodes) {
  // Degenerate partition: more shards than nodes (some shards own nothing).
  const Topology topo({{0.1, 0.1}, {0.9, 0.1}, {0.1, 0.9}}, 1.5);
  Network<Msg> serial(topo);
  ShardedNetwork<Msg> sharded(topo, {}, false, {}, {}, nullptr, 16);
  for (int round = 0; round < 5; ++round) {
    serial.unicast(0, 1, round);
    sharded.unicast(0, 1, round);
    serial.broadcast(2, 1.2, 1000 + round);
    sharded.broadcast(2, 1.2, 1000 + round);
    const auto want = serial.collect_round();
    const auto got = sharded.collect_round();
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].to, want[i].to);
      EXPECT_EQ(got[i].msg, want[i].msg);
    }
  }
  EXPECT_EQ(sharded.meter().totals().energy, serial.meter().totals().energy);
}

TEST(ShardedNetwork, BroadcastMoveOverloadDeliversToAll) {
  const Topology topo({{0, 0}, {1, 0}, {0, 1}, {1, 1}}, 1.5);
  ShardedNetwork<std::string> net(topo, {}, false, {}, {}, nullptr, 2);
  std::string msg = "payload";
  net.broadcast(0, 1.1, std::move(msg));
  const auto batch = net.collect_round();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].msg, "payload");
  EXPECT_EQ(batch[1].msg, "payload");
}

// ---------------------------------------------------------------------------
// process_round: the sharded processing mode must reproduce the exact
// behaviour of a sequential driver iterating the merged collect_round batch.
// ---------------------------------------------------------------------------

struct HopMsg {
  std::uint32_t hops = 0;
  std::uint64_t tag = 0;
};

/// Deterministic per-delivery reaction shared by the sequential reference
/// and the sharded handler: forward to the receiver's first neighbor while
/// hops remain, alternating the metered message kind.
struct ForwardRule {
  const Topology& topo;

  [[nodiscard]] bool applies(const Delivery<HopMsg>& d) const {
    return d.msg.hops > 0 && !topo.neighbors(d.to).empty();
  }
  [[nodiscard]] NodeId next(const Delivery<HopMsg>& d) const {
    return topo.neighbors(d.to)[d.msg.tag % topo.neighbors(d.to).size()].id;
  }
  [[nodiscard]] HopMsg fold(const Delivery<HopMsg>& d) const {
    return {d.msg.hops - 1, d.msg.tag * 31 + d.msg.hops};
  }
  [[nodiscard]] MsgKind kind(const Delivery<HopMsg>& d) const {
    return d.msg.hops % 2 == 0 ? MsgKind::kRequest : MsgKind::kReply;
  }
};

void expect_process_round_equivalent(std::size_t threads,
                                     std::uint32_t max_extra_delay) {
  const std::size_t n = 200;
  support::Rng rng(616161 + 31 * threads + max_extra_delay);
  const auto points = geometry::uniform_points(n, rng);
  const double radius = rgg::connectivity_radius(n);
  const Topology topo(points, radius);
  const DelayModel delays{max_extra_delay, 0xbeefULL};
  const ForwardRule rule{topo};

  MemoryTraceSink serial_sink, sharded_sink;
  Telemetry serial_tel(&serial_sink), sharded_tel(&sharded_sink);
  Network<HopMsg> serial(topo, {}, false, delays, {}, &serial_tel);
  ShardedNetwork<HopMsg> sharded(topo, {}, false, delays, {}, &sharded_tel,
                                 threads);

  // Seed the cascade: a few multi-hop messages from random nodes.
  for (std::uint64_t k = 0; k < 25; ++k) {
    const auto u = static_cast<NodeId>(rng.uniform_int(n));
    const auto nbs = topo.neighbors(u);
    if (nbs.empty()) continue;
    const HopMsg m{6, k};
    serial.unicast(u, nbs[0].id, m);
    sharded.unicast(u, nbs[0].id, m);
  }

  std::size_t serial_total = 0, sharded_total = 0;
  for (int round = 0; round < 200; ++round) {
    // Sequential reference: collect, then react to the ordered batch.
    for (const auto& d : serial.collect_round()) {
      ++serial_total;
      if (!rule.applies(d)) continue;
      serial.meter().set_kind(rule.kind(d));
      serial.unicast(d.to, rule.next(d), rule.fold(d));
    }
    serial.meter().set_kind(MsgKind::kData);
    // Sharded: handlers run on the owning shard's worker.
    sharded_total += sharded.process_round(
        [&rule](ShardedNetwork<HopMsg>::ShardContext& ctx,
                const Delivery<HopMsg>& d) {
          if (!rule.applies(d)) return;
          ctx.set_kind(rule.kind(d));
          ctx.unicast(d.to, rule.next(d), rule.fold(d));
        });
    ASSERT_EQ(sharded.pending(), serial.pending()) << "round " << round;
    if (!serial.pending()) break;
  }
  EXPECT_FALSE(serial.pending());
  EXPECT_EQ(sharded_total, serial_total);
  EXPECT_GT(serial_total, 0u);
  EXPECT_EQ(sharded.meter().totals().energy, serial.meter().totals().energy);
  EXPECT_EQ(sharded.meter().totals().unicasts,
            serial.meter().totals().unicasts);
  EXPECT_EQ(sharded.meter().totals().rounds, serial.meter().totals().rounds);
  expect_same_events(sharded_sink, serial_sink);
}

TEST(ShardedProcessRound, SynchronousAcrossThreadCounts) {
  for (const std::size_t t : {1u, 2u, 4u, 8u})
    expect_process_round_equivalent(t, 0);
}

TEST(ShardedProcessRound, RandomDelaysAcrossThreadCounts) {
  for (const std::size_t t : {1u, 2u, 4u, 8u})
    expect_process_round_equivalent(t, 4);
}

}  // namespace
}  // namespace emst::sim
