// Tests for the fault-injection layer (docs/ROBUSTNESS.md): drop/crash
// semantics in both network engines, the fault injector itself, and the
// fault-aware GHS/EOPT — including the headline robustness claims: the
// layer is zero-cost when disabled, EOPT stays exact under 10% Bernoulli
// loss with ARQ, and crashes mid-run leave the surviving forest consistent.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "emst/eopt/eopt.hpp"
#include "emst/geometry/sampling.hpp"
#include "emst/ghs/sync.hpp"
#include "emst/graph/mst.hpp"
#include "emst/graph/tree_utils.hpp"
#include "emst/graph/union_find.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/sim/fault.hpp"
#include "emst/sim/network.hpp"
#include "emst/sim/reference_network.hpp"
#include "emst/support/rng.hpp"

namespace emst {
namespace {

sim::Topology square_topology(double max_radius = 1.5) {
  return sim::Topology({{0, 0}, {1, 0}, {0, 1}, {1, 1}}, max_radius);
}

sim::Topology random_topology(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  return sim::Topology(geometry::uniform_points(n, rng),
                       rgg::connectivity_radius(n));
}

constexpr std::uint64_t kForever = std::numeric_limits<std::uint64_t>::max();

// ---------------------------------------------------------------- injector

TEST(FaultInjector, DisabledByDefault) {
  sim::FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  EXPECT_FALSE(injector.crashed(0));
  EXPECT_FALSE(injector.drop(0, 1));
  sim::FaultModel zero;  // loss 0, no gilbert, no crashes
  EXPECT_FALSE(zero.enabled());
  EXPECT_FALSE(sim::FaultInjector(zero).enabled());
}

TEST(FaultInjector, CrashWindowsFollowTheClock) {
  sim::FaultModel model;
  model.crashes = {{2, 5, 9}, {2, 20, kForever}, {4, 0, 3}};
  sim::FaultInjector injector(model);
  EXPECT_TRUE(injector.enabled());
  EXPECT_TRUE(injector.crashed(4));    // round 0 ∈ [0, 3)
  EXPECT_FALSE(injector.crashed(2));   // round 0 < 5
  injector.advance_to(5);
  EXPECT_TRUE(injector.crashed(2));
  EXPECT_FALSE(injector.crashed_forever(2));  // the live window is finite
  injector.advance_to(9);
  EXPECT_FALSE(injector.crashed(2));   // recovered: 9 ∉ [5, 9)
  EXPECT_FALSE(injector.crashed(4));
  injector.advance_rounds(11);         // round 20
  EXPECT_TRUE(injector.crashed(2));
  EXPECT_TRUE(injector.crashed_forever(2));
  EXPECT_FALSE(injector.crashed(1000));  // out-of-range node never crashes
}

TEST(FaultInjector, OverlappingAndZeroLengthWindowsUnion) {
  // Overlapping windows for one node union; `until == from` never fires.
  sim::FaultModel model;
  model.crashes = {{2, 3, 7}, {2, 5, 10}, {2, 12, 12}, {3, 0, 0}};
  sim::FaultInjector injector(model);
  EXPECT_TRUE(injector.enabled());
  EXPECT_FALSE(injector.crashed_at(2, 2));
  for (std::uint64_t r = 3; r < 10; ++r) {
    EXPECT_TRUE(injector.crashed_at(2, r)) << "round " << r;  // the union
  }
  EXPECT_FALSE(injector.crashed_at(2, 10));
  EXPECT_FALSE(injector.crashed_at(2, 12));  // zero-length: never down
  EXPECT_FALSE(injector.crashed_forever(2));
  EXPECT_FALSE(injector.crashed_at(3, 0));   // zero-length at round 0 too
}

TEST(FaultInjector, BernoulliLossMatchesTheRate) {
  sim::FaultModel model;
  model.loss = 0.2;
  model.seed = 99;
  sim::FaultInjector injector(model);
  int lost = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    if (injector.drop(0, 1)) ++lost;
  }
  const double rate = static_cast<double>(lost) / draws;
  EXPECT_NEAR(rate, 0.2, 0.02);
}

TEST(FaultInjector, GilbertElliottProducesBursts) {
  // loss only in the Bad state: every loss run is a visit to Bad, so mean
  // run length ≈ 1/P(Bad→Good) per transmission — clearly above i.i.d.
  sim::FaultModel model;
  model.use_gilbert = true;
  model.ge_good_to_bad = 0.05;
  model.ge_bad_to_good = 0.3;
  model.ge_loss_good = 0.0;
  model.ge_loss_bad = 1.0;
  model.seed = 7;
  sim::FaultInjector injector(model);
  int losses = 0;
  int runs = 0;
  bool in_run = false;
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) {
    const bool lost = injector.drop(1, 2);  // one link: one chain
    losses += lost ? 1 : 0;
    if (lost && !in_run) ++runs;
    in_run = lost;
  }
  ASSERT_GT(losses, 100);
  ASSERT_GT(runs, 0);
  const double mean_run = static_cast<double>(losses) / runs;
  EXPECT_GT(mean_run, 1.5);  // bursty, not i.i.d. (mean would be ~1.05)
}

TEST(FaultInjector, PerLinkChainsAreIndependent) {
  sim::FaultModel model;
  model.use_gilbert = true;
  model.ge_loss_good = 0.0;
  model.ge_loss_bad = 1.0;
  model.seed = 11;
  sim::FaultInjector injector(model);
  // Drive many links; at least the map of chain states must grow per link,
  // and draws must stay deterministic for a fixed seed.
  int lost = 0;
  for (std::uint32_t v = 1; v <= 64; ++v) {
    for (int i = 0; i < 50; ++i) lost += injector.drop(0, v) ? 1 : 0;
  }
  sim::FaultInjector replay(model);
  int lost2 = 0;
  for (std::uint32_t v = 1; v <= 64; ++v) {
    for (int i = 0; i < 50; ++i) lost2 += replay.drop(0, v) ? 1 : 0;
  }
  EXPECT_EQ(lost, lost2);
}

// ------------------------------------------------------- network semantics

TEST(Network, LostMessagesStillChargeTheSender) {
  const sim::Topology topo = square_topology();
  sim::FaultModel faults;
  faults.loss = 1.0;  // every message dies on the channel
  sim::Network<int> net(topo, {}, false, {}, faults);
  net.unicast(0, 1, 7);
  EXPECT_DOUBLE_EQ(net.meter().totals().energy, 1.0);  // d=1, α=2: charged
  EXPECT_EQ(net.meter().totals().unicasts, 1u);
  EXPECT_TRUE(net.pending());
  EXPECT_TRUE(net.collect_round().empty());  // ... but never delivered
  EXPECT_FALSE(net.pending());               // and the queue drained
  EXPECT_EQ(net.fault_stats().lost, 1u);
}

TEST(Network, CrashedSenderIsSuppressedForFree) {
  const sim::Topology topo = square_topology();
  sim::FaultModel faults;
  faults.crashes = {{0, 0, kForever}};
  sim::Network<int> net(topo, {}, false, {}, faults);
  net.unicast(0, 1, 7);
  net.broadcast(0, 1.0, 8);
  EXPECT_DOUBLE_EQ(net.meter().totals().energy, 0.0);  // dead radio: free
  EXPECT_EQ(net.meter().totals().messages(), 0u);
  EXPECT_FALSE(net.pending());
  EXPECT_EQ(net.fault_stats().suppressed, 2u);
  // Other nodes are unaffected.
  net.unicast(1, 0, 9);
  EXPECT_DOUBLE_EQ(net.meter().totals().energy, 1.0);
}

// Satellite regression: in-flight messages to a node that crashes must drop
// at delivery time without wedging pending() loops.
template <typename Net>
void expect_crashed_receiver_drains() {
  const sim::Topology topo = square_topology();
  sim::FaultModel faults;
  faults.crashes = {{1, 1, kForever}};  // node 1 dies at round 1 = delivery
  Net net(topo, {}, false, {}, faults);
  net.unicast(0, 1, 1);
  net.unicast(2, 1, 2);
  net.unicast(0, 3, 3);  // a live receiver, same round
  int rounds = 0;
  std::size_t delivered = 0;
  while (net.pending()) {
    ASSERT_LT(++rounds, 100) << "pending() wedged on a crashed receiver";
    delivered += net.collect_round().size();
  }
  EXPECT_EQ(delivered, 1u);  // only 0→3 arrives
  EXPECT_EQ(net.fault_stats().dropped_crashed, 2u);
  // All three senders transmitted and were charged.
  EXPECT_EQ(net.meter().totals().unicasts, 3u);
}

TEST(Network, CrashedReceiverDropsAtDeliveryWithoutWedging) {
  expect_crashed_receiver_drains<sim::Network<int>>();
}

TEST(ReferenceNetwork, CrashedReceiverDropsAtDeliveryWithoutWedging) {
  expect_crashed_receiver_drains<sim::ReferenceNetwork<int>>();
}

TEST(Network, DelayedInFlightMessagesDieWithTheirReceiver) {
  const sim::Topology topo = square_topology();
  sim::FaultModel faults;
  faults.crashes = {{1, 3, kForever}};  // dies at round 3
  sim::DelayModel delays{4, 0xd1ceULL};
  sim::Network<int> net(topo, {}, false, delays, faults);
  for (int i = 0; i < 12; ++i) net.unicast(0, 1, i);  // due rounds 1..5
  std::size_t delivered = 0;
  int rounds = 0;
  while (net.pending()) {
    ASSERT_LT(++rounds, 100);
    delivered += net.collect_round().size();
  }
  // Some arrived before the crash, the rest dropped at delivery time.
  EXPECT_EQ(delivered + net.fault_stats().dropped_crashed, 12u);
  EXPECT_GT(net.fault_stats().dropped_crashed, 0u);
}

TEST(Network, RecoveryReopensDelivery) {
  const sim::Topology topo = square_topology();
  sim::FaultModel faults;
  faults.crashes = {{1, 1, 3}};  // down for delivery rounds 1 and 2
  sim::Network<int> net(topo, {}, false, {}, faults);
  net.unicast(0, 1, 1);
  EXPECT_TRUE(net.collect_round().empty());  // round 1: dropped
  net.unicast(0, 1, 2);
  EXPECT_TRUE(net.collect_round().empty());  // round 2: dropped
  net.unicast(0, 1, 3);
  const auto round3 = net.collect_round();   // round 3: recovered
  ASSERT_EQ(round3.size(), 1u);
  EXPECT_EQ(round3[0].msg, 3);
  EXPECT_EQ(net.fault_stats().dropped_crashed, 2u);
}

// Drive one Gilbert–Elliott run where the sender is down for rounds 1–2.
// When `send_while_down`, it attempts (suppressed) transmissions during the
// outage; otherwise those sends simply don't happen. Everything else — the
// warm-up burst, the clock advance, the post-recovery traffic — is identical.
template <typename Net>
std::vector<int> ge_fates_across_crash_window(bool send_while_down,
                                              sim::FaultStats* stats_out) {
  const sim::Topology topo = square_topology();
  sim::FaultModel faults;
  faults.use_gilbert = true;
  faults.ge_good_to_bad = 0.4;  // busy chain: every draw matters
  faults.ge_bad_to_good = 0.4;
  faults.ge_loss_good = 0.0;
  faults.ge_loss_bad = 1.0;
  faults.seed = 0x6E2026;
  faults.crashes = {{0, 1, 3}};  // sender down for delivery rounds 1 and 2
  Net net(topo, {}, false, {}, faults);
  std::vector<int> delivered;
  const auto drain_round = [&] {
    for (auto& d : net.collect_round()) delivered.push_back(d.msg);
  };
  for (int m = 0; m < 8; ++m) net.unicast(0, 1, m);  // round 0: warm the chain
  drain_round();  // -> round 1: sender down
  if (send_while_down) {
    for (int m = 100; m < 105; ++m) net.unicast(0, 1, m);  // suppressed
  }
  drain_round();  // -> round 2: still down
  if (send_while_down) {
    for (int m = 200; m < 205; ++m) net.unicast(0, 1, m);  // suppressed
  }
  drain_round();  // -> round 3: recovered
  for (int m = 300; m < 330; ++m) net.unicast(0, 1, m);
  for (int r = 0; r < 10 && net.pending(); ++r) drain_round();
  EXPECT_FALSE(net.pending());
  if (stats_out != nullptr) *stats_out = net.fault_stats();
  return delivered;
}

// Satellite pin: a dead radio emits nothing, so suppressed sends must
// consume NEITHER the global fate counter NOR the per-link burst chain —
// post-recovery channel fates are bitwise those of a run where the
// suppressed sends never happened.
template <typename Net>
void expect_suppressed_sends_leave_burst_chains_untouched() {
  sim::FaultStats with{};
  sim::FaultStats without{};
  const auto a = ge_fates_across_crash_window<Net>(true, &with);
  const auto b = ge_fates_across_crash_window<Net>(false, &without);
  EXPECT_EQ(a, b);  // identical per-message delivery fates
  EXPECT_EQ(with.suppressed, 10u);
  EXPECT_EQ(without.suppressed, 0u);
  EXPECT_EQ(with.lost, without.lost);  // the chain never saw the outage
  EXPECT_GT(with.lost, 0u);            // ... and it did drop something
  EXPECT_EQ(with.dropped_crashed, 0u); // only the sender was ever down
}

TEST(Network, SuppressedSendsLeaveBurstChainsUntouched) {
  expect_suppressed_sends_leave_burst_chains_untouched<sim::Network<int>>();
}

TEST(ReferenceNetwork, SuppressedSendsLeaveBurstChainsUntouched) {
  expect_suppressed_sends_leave_burst_chains_untouched<
      sim::ReferenceNetwork<int>>();
}

// Overlapping windows must behave as their union at delivery time.
template <typename Net>
void expect_overlapping_windows_union_at_delivery() {
  const sim::Topology topo = square_topology();
  sim::FaultModel faults;
  faults.crashes = {{1, 1, 3}, {1, 2, 5}, {1, 4, 4}};  // union: down [1, 5)
  Net net(topo, {}, false, {}, faults);
  for (int r = 1; r <= 5; ++r) {
    net.unicast(0, 1, r);
    const auto out = net.collect_round();  // delivery round r
    if (r < 5) {
      EXPECT_TRUE(out.empty()) << "round " << r;
    } else {
      ASSERT_EQ(out.size(), 1u);
      EXPECT_EQ(out[0].msg, 5);
    }
  }
  EXPECT_EQ(net.fault_stats().dropped_crashed, 4u);
}

TEST(Network, OverlappingCrashWindowsUnionAtDelivery) {
  expect_overlapping_windows_union_at_delivery<sim::Network<int>>();
}

TEST(ReferenceNetwork, OverlappingCrashWindowsUnionAtDelivery) {
  expect_overlapping_windows_union_at_delivery<sim::ReferenceNetwork<int>>();
}

// A node crashed at round 0 is silent from birth: its sends are suppressed
// (free) starting with the very first one, and traffic to it drops.
template <typename Net>
void expect_round_zero_crash_is_silent_from_birth() {
  const sim::Topology topo = square_topology();
  sim::FaultModel faults;
  faults.crashes = {{0, 0, kForever}};
  Net net(topo, {}, false, {}, faults);
  net.unicast(0, 1, 1);        // suppressed
  net.broadcast(0, 1.0, 2);    // suppressed
  net.unicast(1, 0, 3);        // charged, drops at delivery
  net.unicast(1, 2, 4);        // live link, delivered
  const auto out = net.collect_round();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].msg, 4);
  EXPECT_EQ(net.fault_stats().suppressed, 2u);
  EXPECT_EQ(net.fault_stats().dropped_crashed, 1u);
  EXPECT_EQ(net.meter().totals().unicasts, 2u);  // only node 1's sends
  EXPECT_EQ(net.meter().totals().broadcasts, 0u);
}

TEST(Network, RoundZeroCrashIsSilentFromBirth) {
  expect_round_zero_crash_is_silent_from_birth<sim::Network<int>>();
}

TEST(ReferenceNetwork, RoundZeroCrashIsSilentFromBirth) {
  expect_round_zero_crash_is_silent_from_birth<sim::ReferenceNetwork<int>>();
}

// ----------------------------------------------------- fault-aware sync GHS

std::vector<graph::Edge> reference_msf(const sim::Topology& topo) {
  return graph::kruskal_msf(topo.node_count(), topo.graph().edges());
}

/// Structural consistency of a fragment forest: idempotent leader labels,
/// tree edges only inside fragments, and each fragment spanned by exactly
/// its own tree edges (connected, acyclic).
void expect_forest_consistent(const sim::Topology& topo,
                              const ghs::FragmentForest& forest) {
  const std::size_t n = topo.node_count();
  ASSERT_EQ(forest.leader.size(), n);
  for (sim::NodeId u = 0; u < n; ++u) {
    EXPECT_EQ(forest.leader[forest.leader[u]], forest.leader[u])
        << "leader label not idempotent at node " << u;
  }
  graph::UnionFind dsu(n);
  for (const graph::Edge& e : forest.tree) {
    EXPECT_EQ(forest.leader[e.u], forest.leader[e.v])
        << "tree edge (" << e.u << "," << e.v << ") crosses fragments";
    EXPECT_TRUE(dsu.unite(e.u, e.v))
        << "cycle through (" << e.u << "," << e.v << ")";
  }
  // Same-fragment ⇒ connected by tree edges (spanning).
  for (sim::NodeId u = 0; u < n; ++u) {
    EXPECT_EQ(dsu.find(u), dsu.find(forest.leader[u]))
        << "node " << u << " not connected to its leader";
  }
}

TEST(SyncGhsFaults, DisabledFaultModelIsByteIdenticalToPlainRun) {
  const sim::Topology topo = random_topology(300, 41);
  ghs::SyncGhsOptions plain;
  ghs::SyncGhsOptions with_knobs = plain;
  with_knobs.faults = sim::FaultModel{};  // loss 0, no crashes: disabled
  with_knobs.arq = sim::ArqOptions{};     // disabled
  const auto a = ghs::run_sync_ghs(topo, plain);
  const auto b = ghs::run_sync_ghs(topo, with_knobs);
  EXPECT_EQ(a.run.totals.energy, b.run.totals.energy);  // bit-identical
  EXPECT_EQ(a.run.totals.messages(), b.run.totals.messages());
  EXPECT_EQ(a.run.totals.rounds, b.run.totals.rounds);
  EXPECT_TRUE(graph::same_edge_set(a.run.tree, b.run.tree));
  EXPECT_EQ(b.arq.data_sent, 0u);
  EXPECT_EQ(b.faults.lost, 0u);
  EXPECT_FALSE(b.hit_phase_cap);
}

TEST(SyncGhsFaults, ArqOnCleanChannelPaysAcksOnly) {
  const sim::Topology topo = random_topology(256, 43);
  ghs::SyncGhsOptions plain;
  ghs::SyncGhsOptions reliable = plain;
  reliable.arq.enabled = true;
  const auto base = ghs::run_sync_ghs(topo, plain);
  const auto arq = ghs::run_sync_ghs(topo, reliable);
  // Same tree; zero loss means zero retries/give-ups, and every charged
  // unicast is exactly one DATA or its ACK. The fault-aware engine sends
  // MORE logical messages than the trusting one (cache mode confirms
  // differing cache entries with reliable TEST probes instead of acting on
  // them unverified), so the comparison to `base` is an inequality.
  EXPECT_TRUE(graph::same_edge_set(arq.run.tree, base.run.tree));
  EXPECT_EQ(arq.arq.retransmissions, 0u);
  EXPECT_EQ(arq.arq.give_ups, 0u);
  EXPECT_EQ(arq.arq.acks_sent, arq.arq.data_sent);
  EXPECT_EQ(arq.arq.delivered, arq.arq.data_sent);
  EXPECT_EQ(arq.run.totals.unicasts, arq.arq.data_sent + arq.arq.acks_sent);
  EXPECT_EQ(arq.run.totals.broadcasts, base.run.totals.broadcasts);
  EXPECT_GE(arq.run.totals.unicasts, 2 * base.run.totals.unicasts);
  EXPECT_GE(arq.run.totals.rounds, base.run.totals.rounds);
  EXPECT_GT(arq.run.totals.energy, base.run.totals.energy);
}

TEST(SyncGhsFaults, ClassicArqOnCleanChannelIsExactlyTwiceTheUnicasts) {
  // In classic TEST/ACCEPT/REJECT mode the fault-aware probe sequence at
  // zero loss is identical to the legacy one, so ARQ costs exactly one ACK
  // per DATA: 2× the unicasts, same broadcasts, same round count.
  const sim::Topology topo = random_topology(200, 43);
  ghs::SyncGhsOptions plain;
  plain.neighbor_cache = false;
  ghs::SyncGhsOptions reliable = plain;
  reliable.arq.enabled = true;
  const auto base = ghs::run_sync_ghs(topo, plain);
  const auto arq = ghs::run_sync_ghs(topo, reliable);
  EXPECT_TRUE(graph::same_edge_set(arq.run.tree, base.run.tree));
  EXPECT_EQ(arq.run.totals.unicasts, 2 * base.run.totals.unicasts);
  EXPECT_EQ(arq.run.totals.broadcasts, base.run.totals.broadcasts);
  EXPECT_EQ(arq.run.totals.rounds, base.run.totals.rounds);
  EXPECT_EQ(arq.arq.retransmissions, 0u);
  EXPECT_EQ(arq.arq.give_ups, 0u);
}

TEST(SyncGhsFaults, LossyRunStaysExactWithArq) {
  const sim::Topology topo = random_topology(300, 47);
  ghs::SyncGhsOptions options;
  options.faults.loss = 0.1;
  options.faults.seed = 4711;
  options.arq.enabled = true;
  const auto result = ghs::run_sync_ghs(topo, options);
  EXPECT_TRUE(graph::same_edge_set(result.run.tree, reference_msf(topo)));
  EXPECT_FALSE(result.hit_phase_cap);
  EXPECT_GT(result.faults.lost, 0u);
  EXPECT_GT(result.arq.retransmissions, 0u);
  EXPECT_GT(result.arq.timeout_rounds, 0u);
  expect_forest_consistent(topo, result.final_forest);
}

TEST(SyncGhsFaults, ClassicProbingAlsoSurvivesLoss) {
  const sim::Topology topo = random_topology(200, 53);
  ghs::SyncGhsOptions options;
  options.neighbor_cache = false;
  options.faults.loss = 0.1;
  options.faults.seed = 12;
  options.arq.enabled = true;
  const auto result = ghs::run_sync_ghs(topo, options);
  EXPECT_TRUE(graph::same_edge_set(result.run.tree, reference_msf(topo)));
  EXPECT_FALSE(result.hit_phase_cap);
}

TEST(SyncGhsFaults, CrashMidRunLeavesSurvivingForestConsistent) {
  // A node dies permanently a few rounds in (mid-Step-1 in EOPT terms: the
  // engine below IS the Step-1/Step-2 engine). The surviving forest must be
  // structurally consistent, never touch the dead node, and — because a
  // vertex removal never un-justifies an MST edge (cycle property) — equal
  // the exact MSF of the surviving visibility graph.
  const std::size_t n = 64;
  const sim::Topology topo = random_topology(n, 59);
  const sim::NodeId victim = 7;
  ghs::SyncGhsOptions options;
  options.faults.crashes = {{victim, 4, kForever}};
  const auto result = ghs::run_sync_ghs(topo, options);
  expect_forest_consistent(topo, result.final_forest);
  EXPECT_EQ(result.final_forest.leader[victim], victim);  // dead singleton
  for (const graph::Edge& e : result.run.tree) {
    EXPECT_NE(e.u, victim);
    EXPECT_NE(e.v, victim);
  }
  std::vector<graph::Edge> surviving_edges;
  for (const graph::Edge& e : topo.graph().edges()) {
    if (e.u != victim && e.v != victim) surviving_edges.push_back(e);
  }
  EXPECT_TRUE(graph::same_edge_set(result.run.tree,
                                   graph::kruskal_msf(n, surviving_edges)));
  EXPECT_FALSE(result.hit_phase_cap);
}

TEST(SyncGhsFaults, LeaderCrashTriggersReElection) {
  const std::size_t n = 48;
  const sim::Topology topo = random_topology(n, 61);
  // Crash two nodes, including node 0 — a frequent early leader.
  ghs::SyncGhsOptions options;
  options.faults.crashes = {{0, 4, kForever}, {9, 6, kForever}};
  const auto result = ghs::run_sync_ghs(topo, options);
  expect_forest_consistent(topo, result.final_forest);
  std::vector<graph::Edge> surviving_edges;
  for (const graph::Edge& e : topo.graph().edges()) {
    if (e.u != 0 && e.v != 0 && e.u != 9 && e.v != 9)
      surviving_edges.push_back(e);
  }
  EXPECT_TRUE(graph::same_edge_set(result.run.tree,
                                   graph::kruskal_msf(n, surviving_edges)));
}

TEST(SyncGhsFaults, NodeCrashedAtRoundZeroNeverJoins) {
  // A node dead from birth must end as a dead singleton: the survivors build
  // the exact MSF of the topology without it, from the very first round.
  const std::size_t n = 48;
  const sim::Topology topo = random_topology(n, 73);
  const sim::NodeId victim = 11;
  ghs::SyncGhsOptions options;
  options.faults.crashes = {{victim, 0, kForever}};
  const auto result = ghs::run_sync_ghs(topo, options);
  expect_forest_consistent(topo, result.final_forest);
  EXPECT_EQ(result.final_forest.leader[victim], victim);
  std::vector<graph::Edge> surviving_edges;
  for (const graph::Edge& e : topo.graph().edges()) {
    if (e.u != victim && e.v != victim) surviving_edges.push_back(e);
  }
  EXPECT_TRUE(graph::same_edge_set(result.run.tree,
                                   graph::kruskal_msf(n, surviving_edges)));
  EXPECT_FALSE(result.hit_phase_cap);
}

TEST(SyncGhsFaults, TemporaryCrashRecoversToTheExactMst) {
  const std::size_t n = 48;
  const sim::Topology topo = random_topology(n, 67);
  ghs::SyncGhsOptions options;
  options.faults.crashes = {{5, 3, 9}};  // down a few rounds, then back
  const auto result = ghs::run_sync_ghs(topo, options);
  // After recovery the node rejoins and the full MST completes.
  EXPECT_TRUE(graph::same_edge_set(result.run.tree, reference_msf(topo)));
  EXPECT_FALSE(result.hit_phase_cap);
}

// ------------------------------------------------------- fault-aware EOPT

TEST(EoptFaults, SharedSessionReportsStatsAndStaysExact) {
  support::Rng rng(71);
  const sim::Topology topo =
      eopt::eopt_topology(geometry::uniform_points(400, rng));
  eopt::EoptOptions options;
  options.faults.loss = 0.05;
  options.arq.enabled = true;
  const auto result = eopt::run_eopt(topo, options);
  EXPECT_TRUE(graph::same_edge_set(result.run.tree, reference_msf(topo)));
  EXPECT_FALSE(result.hit_phase_cap);
  EXPECT_GT(result.fault_stats.lost, 0u);
  EXPECT_GT(result.arq.data_sent, 0u);
  EXPECT_GE(result.arq.delivered, result.arq.data_sent - result.arq.give_ups);
}

// Acceptance criterion: under 10% Bernoulli loss with ARQ, EOPT produces
// the exact Euclidean MST on n ∈ {256, 1024} RGGs across ≥ 20 seeds.
class EoptLossyExactness : public ::testing::TestWithParam<int> {};

TEST_P(EoptLossyExactness, ExactUnderTenPercentLoss) {
  const int seed = GetParam();
  for (const std::size_t n : {std::size_t{256}, std::size_t{1024}}) {
    support::Rng rng(support::Rng::stream_seed(0xfa17ULL,
                                               static_cast<std::uint64_t>(seed) * 2 + (n == 1024)));
    const sim::Topology topo =
        eopt::eopt_topology(geometry::uniform_points(n, rng));
    eopt::EoptOptions options;
    options.faults.loss = 0.1;
    options.faults.seed = 0xbadc0deULL + static_cast<std::uint64_t>(seed);
    options.arq.enabled = true;
    const auto result = eopt::run_eopt(topo, options);
    EXPECT_TRUE(graph::same_edge_set(result.run.tree, reference_msf(topo)))
        << "n=" << n << " seed=" << seed;
    EXPECT_FALSE(result.hit_phase_cap) << "n=" << n << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, EoptLossyExactness,
                         ::testing::Range(1, 21));

}  // namespace
}  // namespace emst
