// Tests for the SVG renderer.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "emst/geometry/sampling.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/rgg/rgg.hpp"
#include "emst/support/rng.hpp"
#include "emst/viz/svg.hpp"

namespace emst::viz {
namespace {

TEST(Svg, EmptyCanvasIsValidDocument) {
  SvgCanvas canvas;
  std::ostringstream os;
  canvas.write(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("<svg"), std::string::npos);
  EXPECT_NE(out.find("</svg>"), std::string::npos);
  EXPECT_EQ(canvas.element_count(), 0u);
}

TEST(Svg, PointsBecomeCircles) {
  SvgCanvas canvas;
  const std::vector<geometry::Point2> points = {{0.1, 0.2}, {0.9, 0.8}};
  canvas.draw_points(points, 2.0, "#f00");
  EXPECT_EQ(canvas.element_count(), 2u);
  std::ostringstream os;
  canvas.write(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("<circle"), std::string::npos);
  EXPECT_NE(out.find("#f00"), std::string::npos);
}

TEST(Svg, EdgesBecomeLines) {
  SvgCanvas canvas;
  const std::vector<geometry::Point2> points = {{0.0, 0.0}, {1.0, 1.0}};
  canvas.draw_edges(points, {{0, 1, 1.0}}, 1.0, "#00f");
  std::ostringstream os;
  canvas.write(os);
  EXPECT_NE(os.str().find("<line"), std::string::npos);
}

TEST(Svg, YAxisIsFlipped) {
  // (0,0) must land at the BOTTOM of the viewport (large pixel y).
  SvgCanvas canvas(100.0, 10.0);
  const std::vector<geometry::Point2> points = {{0.0, 0.0}};
  canvas.draw_points(points, 1.0, "#000");
  std::ostringstream os;
  canvas.write(os);
  EXPECT_NE(os.str().find(R"(cy="90.00")"), std::string::npos);
}

TEST(Svg, SubsetDrawsOnlyRequested) {
  SvgCanvas canvas;
  const std::vector<geometry::Point2> points = {{0.1, 0.1}, {0.5, 0.5},
                                                {0.9, 0.9}};
  const std::vector<std::size_t> subset = {0, 2};
  canvas.draw_point_subset(points, subset, 1.0, "#0a0");
  EXPECT_EQ(canvas.element_count(), 2u);
}

TEST(Svg, LabelsEscapeMarkup) {
  SvgCanvas canvas;
  canvas.draw_label({0.5, 0.5}, "a<b & c>d");
  std::ostringstream os;
  canvas.write(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("a&lt;b &amp; c&gt;d"), std::string::npos);
  EXPECT_EQ(out.find("a<b"), std::string::npos);
}

TEST(Svg, CellFieldPaintsOccupiedCells) {
  support::Rng rng(61);
  const auto points = geometry::uniform_points(500, rng);
  const percolation::CellField field(points, rgg::percolation_radius(500, 1.4));
  SvgCanvas canvas;
  canvas.draw_cell_field(field, "#aaa", "#eee");
  // There must be at least as many rects as good cells.
  std::size_t good = 0;
  for (std::size_t cy = 0; cy < field.side(); ++cy)
    for (std::size_t cx = 0; cx < field.side(); ++cx)
      if (field.good(cx, cy)) ++good;
  EXPECT_GE(canvas.element_count(), good);
}

TEST(Svg, SaveCreatesFile) {
  SvgCanvas canvas;
  canvas.draw_label({0.1, 0.1}, "test");
  const std::string path = ::testing::TempDir() + "/emst_svg_test/out.svg";
  EXPECT_TRUE(canvas.save(path));
  std::ifstream file(path);
  EXPECT_TRUE(file.good());
}

}  // namespace
}  // namespace emst::viz
