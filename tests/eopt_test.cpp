// Tests for EOPT — the paper's core contribution. Exactness, the two-step
// structure, giant detection, energy superiority over the baseline, and the
// §V-A ablation knobs.
#include <gtest/gtest.h>

#include <cmath>

#include "emst/eopt/eopt.hpp"
#include "emst/geometry/sampling.hpp"
#include "emst/ghs/classic.hpp"
#include "emst/graph/mst.hpp"
#include "emst/graph/tree_utils.hpp"
#include "emst/graph/union_find.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/support/rng.hpp"

namespace emst::eopt {
namespace {

sim::Topology make_topology(std::size_t n, std::uint64_t seed,
                            const EoptOptions& options = {}) {
  support::Rng rng(seed);
  return eopt_topology(geometry::uniform_points(n, rng), options);
}

std::vector<graph::Edge> reference_msf(const sim::Topology& topo) {
  return graph::kruskal_msf(topo.node_count(), topo.graph().edges());
}

class EoptExactness : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EoptExactness, ProducesTheExactMst) {
  const auto [n, seed] = GetParam();
  const sim::Topology topo =
      make_topology(static_cast<std::size_t>(n),
                    static_cast<std::uint64_t>(seed) * 131 + 7);
  const EoptResult result = run_eopt(topo);
  EXPECT_TRUE(graph::same_edge_set(result.run.tree, reference_msf(topo)))
      << "n=" << n << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, EoptExactness,
    ::testing::Combine(::testing::Values(16, 100, 500, 1500, 3000),
                       ::testing::Values(1, 2, 3, 4)));

TEST(Eopt, StepAccountingSumsToTotal) {
  const sim::Topology topo = make_topology(1000, 73);
  const EoptResult result = run_eopt(topo);
  EXPECT_NEAR(result.step1.energy + result.census.energy + result.step2.energy,
              result.run.totals.energy, 1e-9);
  EXPECT_EQ(result.step1.unicasts + result.census.unicasts + result.step2.unicasts,
            result.run.totals.unicasts);
  EXPECT_EQ(result.step1.broadcasts + result.census.broadcasts +
                result.step2.broadcasts,
            result.run.totals.broadcasts);
}

TEST(Eopt, RadiiMatchThePaper) {
  const std::size_t n = 1000;
  const sim::Topology topo = make_topology(n, 79);
  const EoptResult result = run_eopt(topo);
  EXPECT_NEAR(result.radius1, 1.4 * std::sqrt(1.0 / n), 1e-12);
  EXPECT_NEAR(result.radius2, 1.6 * std::sqrt(std::log(n) / n), 1e-12);
  EXPECT_LT(result.radius1, result.radius2);
}

TEST(Eopt, GiantIsFoundAtScale) {
  // Thm 5.2: at n ≥ 1000 the Step-1 giant should exceed β·ln²n (β = 1)
  // essentially always.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const std::size_t n = 2000;
    const sim::Topology topo = make_topology(n, seed * 997);
    const EoptResult result = run_eopt(topo);
    EXPECT_TRUE(result.giant_found) << "seed " << seed;
    EXPECT_GT(result.giant_size, n / 4) << "seed " << seed;
    EXPECT_GT(result.step1_fragments, 1u);
  }
}

TEST(Eopt, BeatsClassicGhsOnEnergy) {
  // The headline claim: EOPT uses asymptotically (and in practice at a few
  // thousand nodes) less energy than classical GHS on the same instance.
  double eopt_total = 0.0;
  double ghs_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const sim::Topology topo = make_topology(3000, seed * 401 + 11);
    eopt_total += run_eopt(topo).run.totals.energy;
    ghs_total += ghs::run_classic_ghs(topo).totals.energy;
  }
  EXPECT_LT(eopt_total, ghs_total);
}

TEST(Eopt, Step2CheaperThanRestartingFromScratch) {
  // The giant-passivity optimization means Step-2 message count is far less
  // than n·log n — compare with running modified GHS at r₂ from singletons.
  const sim::Topology topo = make_topology(3000, 83);
  const EoptResult eopt = run_eopt(topo);
  ghs::SyncGhsOptions from_scratch;
  from_scratch.radius = topo.max_radius();
  const auto scratch = ghs::run_sync_ghs(topo, from_scratch);
  EXPECT_LT(eopt.step2.energy, scratch.run.totals.energy);
}

TEST(Eopt, AblationGiantPassivityCostsEnergyWhenOff) {
  const sim::Topology topo = make_topology(3000, 89);
  EoptOptions passive;
  EoptOptions busy;
  busy.giant_passive = false;
  const EoptResult with_passive = run_eopt(topo, passive);
  const EoptResult without = run_eopt(topo, busy);
  // Both must stay exact.
  const auto reference = reference_msf(topo);
  EXPECT_TRUE(graph::same_edge_set(with_passive.run.tree, reference));
  EXPECT_TRUE(graph::same_edge_set(without.run.tree, reference));
  // Step 2 with an active giant floods initiate/report over Θ(n) tree edges.
  EXPECT_LE(with_passive.step2.unicasts, without.step2.unicasts);
}

TEST(Eopt, AblationIdRetention) {
  const sim::Topology topo = make_topology(2000, 97);
  EoptOptions keep;
  EoptOptions drop;
  drop.giant_keeps_id = false;
  const EoptResult kept = run_eopt(topo, keep);
  const EoptResult dropped = run_eopt(topo, drop);
  const auto reference = reference_msf(topo);
  EXPECT_TRUE(graph::same_edge_set(kept.run.tree, reference));
  EXPECT_TRUE(graph::same_edge_set(dropped.run.tree, reference));
  EXPECT_LE(kept.step2.broadcasts, dropped.step2.broadcasts);
}

TEST(Eopt, AblationProbeModeStillExact) {
  const sim::Topology topo = make_topology(1000, 101);
  EoptOptions probe;
  probe.neighbor_cache = false;
  const EoptResult result = run_eopt(topo, probe);
  EXPECT_TRUE(graph::same_edge_set(result.run.tree, reference_msf(topo)));
}

TEST(Eopt, CustomStepFactors) {
  EoptOptions options;
  options.step1_factor = 1.2;
  options.step2_factor = 2.0;
  const std::size_t n = 800;
  const sim::Topology topo = make_topology(n, 103, options);
  const EoptResult result = run_eopt(topo, options);
  EXPECT_NEAR(result.radius1, 1.2 * std::sqrt(1.0 / n), 1e-12);
  EXPECT_NEAR(result.radius2, 2.0 * std::sqrt(std::log(n) / n), 1e-12);
  EXPECT_TRUE(graph::same_edge_set(result.run.tree, reference_msf(topo)));
}

TEST(Eopt, DeterministicAcrossRuns) {
  const sim::Topology topo = make_topology(700, 107);
  const EoptResult a = run_eopt(topo);
  const EoptResult b = run_eopt(topo);
  EXPECT_DOUBLE_EQ(a.run.totals.energy, b.run.totals.energy);
  EXPECT_EQ(a.run.totals.messages(), b.run.totals.messages());
  EXPECT_TRUE(graph::same_edge_set(a.run.tree, b.run.tree));
}

TEST(Eopt, SeededRunCompletesAPartialForest) {
  // Repair use case: seed EOPT with a subset of the MST and it must finish
  // the exact MST, cheaper than from scratch.
  const sim::Topology topo = make_topology(1500, 211);
  const auto reference = reference_msf(topo);
  ASSERT_EQ(reference.size(), topo.node_count() - 1);
  // Seed: the shortest half of the MST edges (a subset of the MST is always
  // a valid seed).
  ghs::FragmentForest seed;
  seed.leader.resize(topo.node_count());
  {
    graph::UnionFind dsu(topo.node_count());
    for (std::size_t i = 0; i < reference.size() / 2; ++i) {
      seed.tree.push_back(reference[i]);
      dsu.unite(reference[i].u, reference[i].v);
    }
    for (sim::NodeId u = 0; u < topo.node_count(); ++u)
      seed.leader[u] = dsu.find(u);
  }
  const EoptResult seeded = run_eopt(topo, {}, &seed);
  EXPECT_TRUE(graph::same_edge_set(seeded.run.tree, reference));
  const EoptResult scratch = run_eopt(topo);
  EXPECT_LT(seeded.run.totals.messages(), scratch.run.totals.messages());
}

TEST(Eopt, SeededWithCompleteMstIsNearlyFree) {
  const sim::Topology topo = make_topology(800, 223);
  const auto reference = reference_msf(topo);
  ASSERT_EQ(reference.size(), topo.node_count() - 1);
  ghs::FragmentForest seed;
  seed.leader.assign(topo.node_count(), 0);  // one fragment, leader 0
  seed.tree = reference;
  const EoptResult result = run_eopt(topo, {}, &seed);
  EXPECT_TRUE(graph::same_edge_set(result.run.tree, reference));
  // Only announcements + census + one no-op phase remain.
  EXPECT_LT(result.run.totals.energy, run_eopt(topo).run.totals.energy);
}

TEST(Eopt, MinPowerAnnouncementsStayExact) {
  const sim::Topology topo = make_topology(1000, 337);
  EoptOptions options;
  options.announce_min_power = true;
  const EoptResult result = run_eopt(topo, options);
  EXPECT_TRUE(graph::same_edge_set(result.run.tree, reference_msf(topo)));
  const EoptResult plain = run_eopt(topo);
  EXPECT_LT(result.run.totals.energy, plain.run.totals.energy);
  EXPECT_EQ(result.run.totals.messages(), plain.run.totals.messages());
}

TEST(Eopt, PerNodeLedgerSumsToTotal) {
  const sim::Topology topo = make_topology(800, 331);
  EoptOptions options;
  options.track_per_node_energy = true;
  const EoptResult result = run_eopt(topo, options);
  ASSERT_EQ(result.per_node_energy.size(), topo.node_count());
  double total = 0.0;
  for (const double e : result.per_node_energy) total += e;
  EXPECT_NEAR(total, result.run.totals.energy, 1e-9);
  // Every node transmits at least once (the initial announcement).
  for (const double e : result.per_node_energy) EXPECT_GT(e, 0.0);
}

TEST(Eopt, TinyInstances) {
  // n = 2 and n = 3 exercise threshold and giant-absent paths.
  for (const std::size_t n : {2u, 3u, 5u}) {
    const sim::Topology topo = make_topology(n, 109 + n);
    const EoptResult result = run_eopt(topo);
    EXPECT_TRUE(graph::same_edge_set(result.run.tree, reference_msf(topo)))
        << "n=" << n;
  }
}

}  // namespace
}  // namespace emst::eopt
