// Tests for the classical GHS reconstruction: exactness against Kruskal on
// connected AND disconnected visibility graphs, message-complexity sanity,
// and accounting invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "emst/geometry/sampling.hpp"
#include "emst/ghs/classic.hpp"
#include "emst/graph/gabriel.hpp"
#include "emst/graph/mst.hpp"
#include "emst/graph/tree_utils.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/support/rng.hpp"

namespace emst::ghs {
namespace {

sim::Topology make_topology(std::size_t n, double radius, std::uint64_t seed) {
  support::Rng rng(seed);
  return sim::Topology(geometry::uniform_points(n, rng), radius);
}

TEST(ClassicGhs, TwoNodes) {
  const sim::Topology topo({{0.1, 0.1}, {0.2, 0.2}}, 0.5);
  const MstRunResult result = run_classic_ghs(topo);
  ASSERT_EQ(result.tree.size(), 1u);
  EXPECT_EQ(result.fragments, 1u);
  EXPECT_GT(result.totals.energy, 0.0);
  EXPECT_GE(result.totals.messages(), 2u);
}

TEST(ClassicGhs, TwoIsolatedNodes) {
  const sim::Topology topo({{0.0, 0.0}, {1.0, 1.0}}, 0.1);
  const MstRunResult result = run_classic_ghs(topo);
  EXPECT_TRUE(result.tree.empty());
  EXPECT_EQ(result.fragments, 2u);
  EXPECT_EQ(result.totals.messages(), 0u);
}

TEST(ClassicGhs, PathGraph) {
  // Collinear points: forced chain merges exercise absorb logic.
  std::vector<geometry::Point2> points;
  for (int i = 0; i < 10; ++i)
    points.push_back({0.05 + 0.1 * static_cast<double>(i), 0.5});
  const sim::Topology topo(std::move(points), 0.11);  // only adjacent in range
  const MstRunResult result = run_classic_ghs(topo);
  EXPECT_EQ(result.tree.size(), 9u);
  EXPECT_EQ(result.fragments, 1u);
}

class ClassicGhsExactness
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(ClassicGhsExactness, MatchesKruskalEdgeForEdge) {
  const auto [n, seed, factor] = GetParam();
  const double radius = rgg::connectivity_radius(static_cast<std::size_t>(n),
                                                 factor);
  const sim::Topology topo =
      make_topology(static_cast<std::size_t>(n), radius,
                    static_cast<std::uint64_t>(seed) * 7 + 3);
  const MstRunResult result = run_classic_ghs(topo);
  const auto reference = graph::kruskal_msf(topo.node_count(), topo.graph().edges());
  EXPECT_TRUE(graph::same_edge_set(result.tree, reference))
      << "n=" << n << " seed=" << seed << " factor=" << factor;
  EXPECT_TRUE(graph::is_forest(topo.node_count(), result.tree));
}

INSTANTIATE_TEST_SUITE_P(
    ConnectivityRegime, ClassicGhsExactness,
    ::testing::Combine(::testing::Values(10, 50, 200, 800),
                       ::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(1.6)));

INSTANTIATE_TEST_SUITE_P(
    SparseDisconnected, ClassicGhsExactness,
    ::testing::Combine(::testing::Values(100, 500),
                       ::testing::Values(6, 7, 8),
                       ::testing::Values(0.7, 1.0)));

TEST(ClassicGhs, RadiusRestrictionHonored) {
  // Running at a smaller radius must yield the MSF of the restricted graph
  // and never use a longer edge.
  const std::size_t n = 300;
  const double r_full = rgg::connectivity_radius(n, 1.6);
  const double r_small = rgg::percolation_radius(n, 1.4);
  const sim::Topology topo = make_topology(n, r_full, 11);
  ClassicGhsOptions options;
  options.radius = r_small;
  const MstRunResult result = run_classic_ghs(topo, options);
  for (const graph::Edge& e : result.tree) EXPECT_LE(e.w, r_small);
  // Reference: Kruskal over only the short edges.
  std::vector<graph::Edge> short_edges;
  for (const graph::Edge& e : topo.graph().edges()) {
    if (e.w <= r_small) short_edges.push_back(e);
  }
  const auto reference = graph::kruskal_msf(n, short_edges);
  EXPECT_TRUE(graph::same_edge_set(result.tree, reference));
}

TEST(ClassicGhs, MessageComplexityWithinClassicBound) {
  // GHS sends at most 5n·log₂n + 2|E| messages (1983 paper). Check with
  // slack on a mid-size instance.
  const std::size_t n = 1000;
  const sim::Topology topo = make_topology(n, rgg::connectivity_radius(n), 13);
  const MstRunResult result = run_classic_ghs(topo);
  const double e = static_cast<double>(topo.graph().edge_count());
  const double bound = 5.0 * n * std::log2(static_cast<double>(n)) + 2.0 * e;
  EXPECT_LT(static_cast<double>(result.totals.messages()), bound);
  EXPECT_GT(result.totals.messages(), n);  // must at least talk to everyone
}

TEST(ClassicGhs, LevelsAreLogarithmic) {
  const std::size_t n = 1000;
  const sim::Topology topo = make_topology(n, rgg::connectivity_radius(n), 17);
  const MstRunResult result = run_classic_ghs(topo);
  EXPECT_GE(result.phases, 1u);
  EXPECT_LE(result.phases, static_cast<std::size_t>(std::log2(n)) + 1);
}

TEST(ClassicGhs, EnergyEqualsSumOverMessages) {
  // Energy must equal Σ d² over all unicasts — for GHS every message goes
  // over an edge, so energy ≤ messages · r². Check both bounds.
  const std::size_t n = 400;
  const double r = rgg::connectivity_radius(n);
  const sim::Topology topo = make_topology(n, r, 19);
  const MstRunResult result = run_classic_ghs(topo);
  EXPECT_LE(result.totals.energy,
            static_cast<double>(result.totals.messages()) * r * r + 1e-9);
  EXPECT_GT(result.totals.energy, 0.0);
  EXPECT_EQ(result.totals.broadcasts, 0u);  // classic GHS is unicast-only
}

class CachedConfirmExactness
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CachedConfirmExactness, ModifiedGhsMatchesKruskal) {
  const auto [n, seed] = GetParam();
  const sim::Topology topo =
      make_topology(static_cast<std::size_t>(n),
                    rgg::connectivity_radius(static_cast<std::size_t>(n)),
                    static_cast<std::uint64_t>(seed) * 53 + 29);
  ClassicGhsOptions options;
  options.moe = MoeStrategy::kCachedConfirm;
  const MstRunResult result = run_classic_ghs(topo, options);
  const auto reference =
      graph::kruskal_msf(topo.node_count(), topo.graph().edges());
  EXPECT_TRUE(graph::same_edge_set(result.tree, reference))
      << "n=" << n << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CachedConfirmExactness,
    ::testing::Combine(::testing::Values(20, 200, 800),
                       ::testing::Values(1, 2, 3, 4)));

TEST(CachedConfirm, ExactUnderAsynchronousDelays) {
  // The cached variant must inherit classic GHS's asynchrony safety: the
  // confirm-TEST keeps the level machinery in the loop.
  const sim::Topology topo = make_topology(400, rgg::connectivity_radius(400), 31);
  const auto reference =
      graph::kruskal_msf(topo.node_count(), topo.graph().edges());
  for (std::uint64_t delay_seed = 1; delay_seed <= 4; ++delay_seed) {
    ClassicGhsOptions options;
    options.moe = MoeStrategy::kCachedConfirm;
    options.delays.max_extra_delay = 5;
    options.delays.seed = delay_seed;
    const MstRunResult result = run_classic_ghs(topo, options);
    EXPECT_TRUE(graph::same_edge_set(result.tree, reference))
        << "delay seed " << delay_seed;
  }
}

TEST(CachedConfirm, SavesTestTraffic) {
  // Unicast count (tests/rejects) must drop; announcements appear as
  // broadcasts instead.
  const sim::Topology topo =
      make_topology(1500, rgg::connectivity_radius(1500), 37);
  const MstRunResult plain = run_classic_ghs(topo);
  ClassicGhsOptions options;
  options.moe = MoeStrategy::kCachedConfirm;
  const MstRunResult cached = run_classic_ghs(topo, options);
  EXPECT_TRUE(graph::same_edge_set(plain.tree, cached.tree));
  EXPECT_GT(cached.totals.broadcasts, 0u);
  EXPECT_LT(cached.totals.unicasts, plain.totals.unicasts);
}

TEST(ClassicGhs, RunsOnExplicitGabrielTopology) {
  // Classic GHS over a logical (Gabriel) topology: the MSF of the Gabriel
  // subgraph equals the full MST (EMST ⊆ GG), with far fewer test messages.
  support::Rng rng(47);
  const auto points = geometry::uniform_points(600, rng);
  const double r = rgg::connectivity_radius(600);
  const sim::Topology disk(points, r);
  const auto gabriel_edges =
      graph::gabriel_filter(points, disk.graph().edges());
  const sim::Topology gabriel(points, r, gabriel_edges);
  const MstRunResult on_gabriel = run_classic_ghs(gabriel);
  const MstRunResult on_disk = run_classic_ghs(disk);
  EXPECT_TRUE(graph::same_edge_set(on_gabriel.tree, on_disk.tree));
  EXPECT_LT(on_gabriel.totals.messages(), on_disk.totals.messages());
  EXPECT_LT(on_gabriel.totals.energy, on_disk.totals.energy);
}

TEST(ClassicGhs, PerNodeLedgerSumsToTotal) {
  const sim::Topology topo = make_topology(400, rgg::connectivity_radius(400), 51);
  ClassicGhsOptions options;
  options.track_per_node_energy = true;
  const MstRunResult result = run_classic_ghs(topo, options);
  ASSERT_EQ(result.per_node_energy.size(), topo.node_count());
  double total = 0.0;
  for (const double e : result.per_node_energy) total += e;
  EXPECT_NEAR(total, result.totals.energy, 1e-9);
}

TEST(ClassicGhs, BreakdownAccountsForEveryMessage) {
  const std::size_t n = 800;
  const sim::Topology topo = make_topology(n, rgg::connectivity_radius(n), 41);
  const MstRunResult result = run_classic_ghs(topo);
  EXPECT_EQ(result.breakdown.total_count(), result.totals.messages());
  double energy = 0.0;
  for (const double e : result.breakdown.energy) energy += e;
  EXPECT_NEAR(energy, result.totals.energy, 1e-9);
  // The classical structure: TEST/ACCEPT/REJECT (Θ(|E|)-scale discovery)
  // dominates INITIATE/REPORT (Θ(n log n) control) on dense RGGs.
  const std::uint64_t discovery = result.breakdown.count_of(GhsMsgType::kTest) +
                                  result.breakdown.count_of(GhsMsgType::kAccept) +
                                  result.breakdown.count_of(GhsMsgType::kReject);
  const std::uint64_t control = result.breakdown.count_of(GhsMsgType::kInitiate) +
                                result.breakdown.count_of(GhsMsgType::kReport);
  EXPECT_GT(discovery, control);
  EXPECT_GT(result.breakdown.count_of(GhsMsgType::kConnect), 0u);
  EXPECT_EQ(result.breakdown.count_of(GhsMsgType::kAnnounce), 0u);
}

TEST(ClassicGhs, CachedBreakdownShiftsTrafficToAnnouncements) {
  const std::size_t n = 800;
  const sim::Topology topo = make_topology(n, rgg::connectivity_radius(n), 43);
  ClassicGhsOptions options;
  options.moe = MoeStrategy::kCachedConfirm;
  const MstRunResult cached = run_classic_ghs(topo, options);
  const MstRunResult plain = run_classic_ghs(topo);
  EXPECT_GT(cached.breakdown.count_of(GhsMsgType::kAnnounce), 0u);
  EXPECT_LT(cached.breakdown.count_of(GhsMsgType::kReject),
            plain.breakdown.count_of(GhsMsgType::kReject));
  EXPECT_LT(cached.breakdown.count_of(GhsMsgType::kTest),
            plain.breakdown.count_of(GhsMsgType::kTest));
}

TEST(ClassicGhs, DeterministicAcrossRuns) {
  const std::size_t n = 300;
  const sim::Topology topo = make_topology(n, rgg::connectivity_radius(n), 23);
  const MstRunResult a = run_classic_ghs(topo);
  const MstRunResult b = run_classic_ghs(topo);
  EXPECT_TRUE(graph::same_edge_set(a.tree, b.tree));
  EXPECT_DOUBLE_EQ(a.totals.energy, b.totals.energy);
  EXPECT_EQ(a.totals.messages(), b.totals.messages());
  EXPECT_EQ(a.totals.rounds, b.totals.rounds);
}

}  // namespace
}  // namespace emst::ghs
