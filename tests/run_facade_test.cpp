// Pins the facade contract (docs/API_TOUR.md): emst::run dispatches to the
// exact same driver code as the legacy per-driver entry points, so for any
// driver × seed × fault model the facade's tree and accounting are bitwise
// identical to a direct call with equivalently-wired options.
//
// This TU is the equivalence harness for the deprecated entry points, so it
// is allowed to call them directly.
#define EMST_NO_DEPRECATE
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "emst/rgg/radii.hpp"
#include "emst/run.hpp"
#include "emst/sim/topology.hpp"

namespace emst {
namespace {

sim::Topology facade_topology(const Instance& inst, const RunConfig& cfg) {
  // The same radius policy run(const Instance&, ...) applies before
  // delegating to the topology overload.
  double radius = inst.radius;
  if (radius <= 0.0) {
    const double factor = cfg.driver == Driver::kEopt ? cfg.eopt.step2_factor
                                                      : inst.radius_factor;
    radius = rgg::connectivity_radius(inst.points.size(), factor);
  }
  return sim::Topology(inst.points, radius);
}

void expect_same_tree(const std::vector<graph::Edge>& a,
                      const std::vector<graph::Edge>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "edge " << i;
    EXPECT_EQ(a[i].w, b[i].w) << "edge " << i;  // bitwise, not near
  }
}

void expect_same_totals(const sim::Accounting& a, const sim::Accounting& b) {
  EXPECT_EQ(a.energy, b.energy);  // bitwise, not near
  EXPECT_EQ(a.unicasts, b.unicasts);
  EXPECT_EQ(a.broadcasts, b.broadcasts);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.bits, b.bits);
}

class RunFacadeEquivalence
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(RunFacadeEquivalence, ClassicGhs) {
  const auto [seed, faulty] = GetParam();
  const Instance inst = sample_instance(160, seed);
  for (const Driver driver : {Driver::kClassicGhs, Driver::kClassicGhsCached}) {
    RunConfig cfg;
    cfg.driver = driver;
    if (faulty) cfg.faults.crashes = {{.node = 3, .from = 2, .until = 6}};
    const RunResult facade = run(inst, cfg);

    const sim::Topology topo = facade_topology(inst, cfg);
    ghs::ClassicGhsOptions opt;
    static_cast<sim::RunConfig&>(opt) = static_cast<const sim::RunConfig&>(cfg);
    opt.moe = driver == Driver::kClassicGhsCached
                  ? ghs::MoeStrategy::kCachedConfirm
                  : ghs::MoeStrategy::kTestAll;
    const ghs::MstRunResult direct = ghs::run_classic_ghs(topo, opt);

    expect_same_tree(facade.tree, direct.tree);
    expect_same_totals(facade.totals, direct.totals);
    EXPECT_EQ(facade.phases, direct.phases);
    EXPECT_EQ(facade.epochs, direct.epochs);
  }
}

TEST_P(RunFacadeEquivalence, SyncGhs) {
  const auto [seed, faulty] = GetParam();
  const Instance inst = sample_instance(160, seed);
  for (const Driver driver : {Driver::kSyncGhs, Driver::kSyncGhsProbe}) {
    RunConfig cfg;
    cfg.driver = driver;
    if (faulty) {
      cfg.faults.loss = 0.05;
      cfg.arq.enabled = true;
    }
    const RunResult facade = run(inst, cfg);

    const sim::Topology topo = facade_topology(inst, cfg);
    ghs::SyncGhsOptions opt;
    static_cast<sim::RunConfig&>(opt) = static_cast<const sim::RunConfig&>(cfg);
    opt.neighbor_cache = driver == Driver::kSyncGhs;
    const ghs::SyncGhsResult direct = ghs::run_sync_ghs(topo, opt);

    expect_same_tree(facade.tree, direct.run.tree);
    expect_same_totals(facade.totals, direct.run.totals);
    EXPECT_EQ(facade.phases, direct.run.phases);
    EXPECT_EQ(facade.arq.retransmissions, direct.arq.retransmissions);
    EXPECT_EQ(facade.faults.lost, direct.faults.lost);
  }
}

TEST_P(RunFacadeEquivalence, Eopt) {
  const auto [seed, faulty] = GetParam();
  const Instance inst = sample_instance(160, seed);
  RunConfig cfg;
  cfg.driver = Driver::kEopt;
  if (faulty) {
    cfg.faults.loss = 0.05;
    cfg.arq.enabled = true;
  }
  const RunResult facade = run(inst, cfg);

  const sim::Topology topo = facade_topology(inst, cfg);
  eopt::EoptOptions opt;
  static_cast<sim::RunConfig&>(opt) = static_cast<const sim::RunConfig&>(cfg);
  const eopt::EoptResult direct = eopt::run_eopt(topo, opt);

  expect_same_tree(facade.tree, direct.run.tree);
  expect_same_totals(facade.totals, direct.run.totals);
  EXPECT_EQ(facade.phases, direct.run.phases);
  EXPECT_EQ(facade.arq.retransmissions, direct.arq.retransmissions);
  EXPECT_EQ(facade.faults.lost, direct.fault_stats.lost);
}

TEST_P(RunFacadeEquivalence, CoNnt) {
  const auto [seed, faulty] = GetParam();
  const Instance inst = sample_instance(160, seed);
  for (const Driver driver : {Driver::kCoNnt, Driver::kCoNntAxis}) {
    RunConfig cfg;
    cfg.driver = driver;
    if (faulty) cfg.faults.crashes = {{.node = 5, .from = 1, .until = 4}};
    const RunResult facade = run(inst, cfg);

    const sim::Topology topo = facade_topology(inst, cfg);
    nnt::CoNntOptions opt;
    static_cast<sim::RunConfig&>(opt) = static_cast<const sim::RunConfig&>(cfg);
    opt.scheme = driver == Driver::kCoNntAxis ? nnt::RankScheme::kAxis
                                              : nnt::RankScheme::kDiagonal;
    const nnt::CoNntResult direct = nnt::run_connt(topo, opt);

    expect_same_tree(facade.tree, direct.tree);
    expect_same_totals(facade.totals, direct.totals);
    EXPECT_EQ(facade.epochs, direct.epochs);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndFaults, RunFacadeEquivalence,
    ::testing::Combine(::testing::Values(1u, 7u, 42u),
                       ::testing::Values(false, true)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_faulty" : "_clean");
    });

TEST(RunFacade, BackendsAgreeThroughInstance) {
  Instance inst = sample_instance(200, 9);
  RunConfig cfg;
  cfg.driver = Driver::kEopt;
  const RunResult csr = run(inst, cfg);
  inst.implicit_backend = true;
  const RunResult implicit = run(inst, cfg);
  expect_same_tree(csr.tree, implicit.tree);
  expect_same_totals(csr.totals, implicit.totals);
}

TEST(RunFacade, DriverNamesRoundTrip) {
  for (const Driver d :
       {Driver::kClassicGhs, Driver::kClassicGhsCached, Driver::kSyncGhs,
        Driver::kSyncGhsProbe, Driver::kEopt, Driver::kCoNnt,
        Driver::kCoNntAxis}) {
    Driver parsed{};
    ASSERT_TRUE(parse_driver(driver_name(d), parsed)) << driver_name(d);
    EXPECT_EQ(parsed, d);
  }
  Driver parsed = Driver::kEopt;
  EXPECT_FALSE(parse_driver("prim", parsed));
  EXPECT_EQ(parsed, Driver::kEopt);  // unknown names leave `out` untouched
}

TEST(RunFacade, ResolvedDriverAndPlacementNames) {
  RunConfig cfg;  // no faults, no ranks
  EXPECT_STREQ(resolved_driver_name(Driver::kCoNnt, cfg), "connt");
  EXPECT_STREQ(handler_placement_name(Driver::kCoNnt, cfg), "parent");
  EXPECT_STREQ(handler_placement_name(Driver::kClassicGhs, cfg), "parent");

  cfg.ranks = 2;
  EXPECT_STREQ(resolved_driver_name(Driver::kCoNnt, cfg), "connt-actor");
  EXPECT_STREQ(resolved_driver_name(Driver::kCoNntAxis, cfg),
               "connt-axis-actor");
  EXPECT_STREQ(handler_placement_name(Driver::kCoNnt, cfg), "rank");
  EXPECT_STREQ(handler_placement_name(Driver::kClassicGhs, cfg), "rank");
  // Choreographed drivers never ship handlers to the ranks.
  EXPECT_STREQ(handler_placement_name(Driver::kSyncGhs, cfg), "parent");
  EXPECT_STREQ(handler_placement_name(Driver::kEopt, cfg), "parent");
  // Classic GHS keeps its name — the actor is the same algorithm, and the
  // trace contract wants serial/ranked headers to differ only where the
  // dispatch actually changes the driver (Co-NNT's fault-path variant).
  EXPECT_STREQ(resolved_driver_name(Driver::kClassicGhs, cfg), "ghs");

  cfg.ranks = 0;
  // The fault path also forces the actor variant, but serially.
  cfg.faults.crashes.push_back({.node = 0, .from = 2, .until = 4});
  EXPECT_STREQ(resolved_driver_name(Driver::kCoNnt, cfg), "connt-actor");
  EXPECT_STREQ(handler_placement_name(Driver::kCoNnt, cfg), "parent");
}

TEST(RunFacade, PlacementWitnessCountersThroughFacade) {
  const Instance inst = sample_instance(120, 5);
  RunConfig cfg;
  cfg.driver = Driver::kCoNnt;
  // A crash window forces the actor variant while staying serial.
  cfg.faults.crashes.push_back({.node = 1, .from = 2, .until = 4});
  const RunResult serial = run(inst, cfg);
  EXPECT_GT(serial.handler_invocations, 0u);
  EXPECT_EQ(serial.rank_handler_invocations, 0u);

  cfg.faults = {};
  cfg.ranks = 2;
  const RunResult ranked = run(inst, cfg);
  EXPECT_EQ(ranked.handler_invocations, 0u);
  EXPECT_GT(ranked.rank_handler_invocations, 0u);
}

TEST(RunFacade, ExplicitRadiusReachesGhsDrivers) {
  // The operating radius must stay within the topology's max radius
  // (the instance builds at radius_factor 1.6), so pick a smaller one.
  const Instance inst = sample_instance(120, 3);
  RunConfig cfg;
  cfg.driver = Driver::kClassicGhs;
  cfg.radius = rgg::connectivity_radius(inst.points.size(), 1.2);
  const RunResult facade = run(inst, cfg);

  const sim::Topology topo = facade_topology(inst, cfg);
  ghs::ClassicGhsOptions opt;
  opt.moe = ghs::MoeStrategy::kTestAll;
  opt.radius = cfg.radius;
  const ghs::MstRunResult direct = ghs::run_classic_ghs(topo, opt);
  expect_same_tree(facade.tree, direct.tree);
  expect_same_totals(facade.totals, direct.totals);
}

}  // namespace
}  // namespace emst
