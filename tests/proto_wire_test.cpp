// Round-trip tests for the proto wire codec (src/emst/proto/).
//
// The contract under test: for every driver message, encode() emits exactly
// encoded_bits() bits, decode() consumes exactly that many, and the decoded
// value equals the original. max_encoded_bits() dominates every concrete
// encoding of its type, which is what lets the choreographed sync driver
// bill worst-case sizes while the actor drivers bill exact ones.
#include <cstdint>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "emst/proto/connt_wire.hpp"
#include "emst/proto/ghs_wire.hpp"
#include "emst/proto/wire.hpp"
#include "emst/sim/reliable.hpp"
#include "emst/sim/wire.hpp"

namespace emst::proto {
namespace {

TEST(BitWidth, MatchesHighestSetBit) {
  EXPECT_EQ(bit_width(0), 0u);
  EXPECT_EQ(bit_width(1), 1u);
  EXPECT_EQ(bit_width(2), 2u);
  EXPECT_EQ(bit_width(3), 2u);
  EXPECT_EQ(bit_width(255), 8u);
  EXPECT_EQ(bit_width(256), 9u);
  EXPECT_EQ(bit_width(std::uint64_t{1} << 63), 64u);
}

TEST(BitCodec, MsbFirstLayout) {
  BitWriter w;
  w.write(0b101, 3);
  w.write(0b1, 1);
  // Fields pack from the byte's most significant bit down: 1011'0000.
  ASSERT_EQ(w.bytes().size(), 1u);
  EXPECT_EQ(w.bytes()[0], 0b1011'0000);
  EXPECT_EQ(w.bit_count(), 4u);
}

TEST(BitCodec, RoundTripAcrossByteBoundaries) {
  BitWriter w;
  w.write(0xABCD, 16);
  w.write(5, 3);          // straddles the second/third byte
  w.write(0, 7);          // zero field still occupies its width
  w.write(0x1FFFF, 17);   // wider than two bytes
  BitReader r(w.bytes());
  EXPECT_EQ(r.read(16), 0xABCDu);
  EXPECT_EQ(r.read(3), 5u);
  EXPECT_EQ(r.read(7), 0u);
  EXPECT_EQ(r.read(17), 0x1FFFFu);
  EXPECT_EQ(r.bit_count(), w.bit_count());
}

TEST(BitCodec, FullWidthField) {
  const std::uint64_t value = 0xDEADBEEFCAFEF00D;
  BitWriter w;
  w.write(value, 64);
  BitReader r(w.bytes());
  EXPECT_EQ(r.read(64), value);
}

TEST(BitCodecDeathTest, OverflowingFieldAborts) {
  BitWriter w;
  EXPECT_DEATH(w.write(2, 1), "overflow");
}

TEST(BitCodecDeathTest, ReadPastEndAborts) {
  BitWriter w;
  w.write(1, 1);
  BitReader r(w.bytes());
  (void)r.read(8);  // within the padded byte
  EXPECT_DEATH((void)r.read(1), "past end");
}

TEST(WireContext, ForTopologyDerivesLogWidths) {
  const WireContext ctx = WireContext::for_topology(1024, 5000);
  EXPECT_EQ(ctx.id_bits, 10u);    // max id 1023
  EXPECT_EQ(ctx.edge_bits, 13u);  // max index 4999
  EXPECT_EQ(ctx.level_bits, 4u);  // levels <= 10
  EXPECT_EQ(ctx.count_bits, 11u); // sizes up to 1024 inclusive
  EXPECT_EQ(ctx.coord_bits, 11u);
  EXPECT_EQ(ctx.frag_bits, ctx.edge_bits);
}

TEST(WireContext, DegenerateTopologyKeepsNonzeroWidths) {
  const WireContext ctx = WireContext::for_topology(1, 0);
  EXPECT_EQ(ctx.id_bits, 1u);
  EXPECT_EQ(ctx.edge_bits, 1u);
  EXPECT_EQ(ctx.level_bits, 1u);
  EXPECT_EQ(ctx.count_bits, 2u);
  EXPECT_EQ(ctx.coord_bits, 2u);
  EXPECT_EQ(ctx.frag_bits, 1u);
}

/// Encode through the variant codec (tag + payload), decode back, and check
/// both bit counts against encoded_bits().
template <typename M>
void expect_ghs_roundtrip(const M& m, const WireContext& ctx) {
  const GhsMsg msg{m};
  BitWriter w;
  encode(msg, w, ctx);
  EXPECT_EQ(w.bit_count(), encoded_bits(msg, ctx));
  BitReader r(w.bytes());
  const GhsMsg back = decode_ghs(r, ctx);
  EXPECT_EQ(r.bit_count(), w.bit_count());
  ASSERT_TRUE(std::holds_alternative<M>(back));
  EXPECT_EQ(std::get<M>(back), m);
}

WireContext ghs_ctx() { return WireContext::for_topology(1000, 8000); }

TEST(GhsWire, AllTypesRoundTrip) {
  const WireContext ctx = ghs_ctx();
  expect_ghs_roundtrip(GhsConnect{7}, ctx);
  expect_ghs_roundtrip(GhsInitiate{9, 4211, GhsNodeState::kFound}, ctx);
  expect_ghs_roundtrip(GhsTest{3, 17}, ctx);
  expect_ghs_roundtrip(GhsAccept{}, ctx);
  expect_ghs_roundtrip(GhsReject{}, ctx);
  expect_ghs_roundtrip(GhsReport{42}, ctx);
  expect_ghs_roundtrip(GhsReport{kInfEdge}, ctx);
  expect_ghs_roundtrip(GhsChangeRoot{}, ctx);
  expect_ghs_roundtrip(GhsAnnounce{7999}, ctx);
}

TEST(GhsWire, MaxFieldValuesRoundTrip) {
  const WireContext ctx = ghs_ctx();
  const auto max_of = [](std::uint32_t width) {
    return static_cast<std::uint32_t>((std::uint64_t{1} << width) - 1);
  };
  expect_ghs_roundtrip(GhsConnect{max_of(ctx.level_bits)}, ctx);
  expect_ghs_roundtrip(GhsInitiate{max_of(ctx.level_bits),
                                   max_of(ctx.frag_bits),
                                   GhsNodeState::kSleeping},
                       ctx);
  expect_ghs_roundtrip(GhsTest{max_of(ctx.level_bits), max_of(ctx.frag_bits)},
                       ctx);
  expect_ghs_roundtrip(GhsReport{max_of(ctx.edge_bits)}, ctx);
  expect_ghs_roundtrip(GhsAnnounce{max_of(ctx.frag_bits)}, ctx);
}

TEST(GhsWire, ReportPresenceBitSizes) {
  const WireContext ctx = ghs_ctx();
  // "No outgoing edge" is one presence bit; a concrete edge adds its index.
  EXPECT_EQ(GhsReport{kInfEdge}.encoded_bits(ctx), kGhsTagBits + 1);
  EXPECT_EQ(GhsReport{42}.encoded_bits(ctx), kGhsTagBits + 1 + ctx.edge_bits);
}

TEST(GhsWire, FixedSizesMatchLayout) {
  const WireContext ctx = ghs_ctx();
  EXPECT_EQ(GhsConnect{}.encoded_bits(ctx), kGhsTagBits + ctx.level_bits);
  EXPECT_EQ(GhsInitiate{}.encoded_bits(ctx),
            kGhsTagBits + ctx.level_bits + ctx.frag_bits + kGhsStateBits);
  EXPECT_EQ(GhsTest{}.encoded_bits(ctx),
            kGhsTagBits + ctx.level_bits + ctx.frag_bits);
  EXPECT_EQ(GhsAccept{}.encoded_bits(ctx), kGhsTagBits);
  EXPECT_EQ(GhsReject{}.encoded_bits(ctx), kGhsTagBits);
  EXPECT_EQ(GhsChangeRoot{}.encoded_bits(ctx), kGhsTagBits);
  EXPECT_EQ(GhsAnnounce{}.encoded_bits(ctx), kGhsTagBits + ctx.frag_bits);
}

TEST(GhsWire, PerStructEncodeOmitsTheTag) {
  // The variant codec writes the 3-bit tag; the per-struct encode() writes
  // payload only. encoded_bits() always includes the tag.
  const WireContext ctx = ghs_ctx();
  const GhsTest m{3, 17};
  BitWriter w;
  m.encode(w, ctx);
  EXPECT_EQ(w.bit_count(), m.encoded_bits(ctx) - kGhsTagBits);
}

TEST(GhsWire, TypeOfFollowsVariantOrder) {
  EXPECT_EQ(type_of(GhsMsg{GhsConnect{}}), GhsMsgType::kConnect);
  EXPECT_EQ(type_of(GhsMsg{GhsInitiate{}}), GhsMsgType::kInitiate);
  EXPECT_EQ(type_of(GhsMsg{GhsTest{}}), GhsMsgType::kTest);
  EXPECT_EQ(type_of(GhsMsg{GhsAccept{}}), GhsMsgType::kAccept);
  EXPECT_EQ(type_of(GhsMsg{GhsReject{}}), GhsMsgType::kReject);
  EXPECT_EQ(type_of(GhsMsg{GhsReport{}}), GhsMsgType::kReport);
  EXPECT_EQ(type_of(GhsMsg{GhsChangeRoot{}}), GhsMsgType::kChangeRoot);
  EXPECT_EQ(type_of(GhsMsg{GhsAnnounce{}}), GhsMsgType::kAnnounce);
}

TEST(GhsWire, MaxEncodedBitsDominatesEveryEncoding) {
  const WireContext ctx = ghs_ctx();
  const std::vector<GhsMsg> samples = {
      GhsConnect{7},  GhsInitiate{9, 4211, GhsNodeState::kFind},
      GhsTest{3, 17}, GhsAccept{},
      GhsReject{},    GhsReport{42},
      GhsReport{kInfEdge}, GhsChangeRoot{},
      GhsAnnounce{7999}};
  for (const GhsMsg& m : samples) {
    EXPECT_GE(max_encoded_bits(type_of(m), ctx), encoded_bits(m, ctx))
        << ghs_msg_type_name(type_of(m));
  }
  // REPORT's worst case is the present-edge branch.
  EXPECT_EQ(max_encoded_bits(GhsMsgType::kReport, ctx),
            GhsReport{0}.encoded_bits(ctx));
}

TEST(ConntWire, QuantizeClampsToTheGrid) {
  const WireContext ctx = WireContext::for_topology(256, 1000);
  const std::uint32_t cells = 1u << ctx.coord_bits;
  EXPECT_EQ(quantize_coord(0.0, ctx), 0u);
  EXPECT_EQ(quantize_coord(-0.5, ctx), 0u);
  EXPECT_EQ(quantize_coord(1.0, ctx), cells - 1);
  EXPECT_EQ(quantize_coord(1.5, ctx), cells - 1);
  EXPECT_EQ(quantize_coord(0.5, ctx), cells / 2);
}

TEST(ConntWire, AllTypesRoundTrip) {
  const WireContext ctx = WireContext::for_topology(256, 1000);
  const std::vector<ConntMsg> samples = {
      ConntMsg{ConntRequest::from_point({0.25, 0.75}, ctx)},
      ConntMsg{ConntReply::from_point({0.999, 0.001}, ctx)},
      ConntMsg{ConntConnect{}}};
  for (const ConntMsg& m : samples) {
    BitWriter w;
    encode(m, w, ctx);
    EXPECT_EQ(w.bit_count(), encoded_bits(m, ctx));
    BitReader r(w.bytes());
    const ConntMsg back = decode_connt(r, ctx);
    EXPECT_EQ(r.bit_count(), w.bit_count());
    EXPECT_EQ(back, m);
  }
}

TEST(ConntWire, SizesMatchLayout) {
  const WireContext ctx = WireContext::for_topology(256, 1000);
  EXPECT_EQ(ConntRequest{}.encoded_bits(ctx),
            kConntTagBits + 2 * ctx.coord_bits);
  EXPECT_EQ(ConntReply{}.encoded_bits(ctx),
            kConntTagBits + 2 * ctx.coord_bits);
  EXPECT_EQ(ConntConnect{}.encoded_bits(ctx), kConntTagBits);
}

TEST(WireFormatHook, PrimaryTemplateIsUnmeasured) {
  const sim::WireFormat<int> fmt;
  static_assert(!sim::WireFormat<int>::kMeasured);
  EXPECT_EQ(fmt.bits(5), 0u);
}

TEST(WireFormatHook, GhsSpecializationBillsEncodedBits) {
  sim::WireFormat<GhsMsg> fmt;
  fmt.ctx = ghs_ctx();
  static_assert(sim::WireFormat<GhsMsg>::kMeasured);
  const GhsMsg m{GhsTest{3, 17}};
  EXPECT_EQ(fmt.bits(m), encoded_bits(m, fmt.ctx));
}

TEST(WireFormatHook, ConntSpecializationBillsEncodedBits) {
  sim::WireFormat<ConntMsg> fmt;
  fmt.ctx = WireContext::for_topology(256, 1000);
  static_assert(sim::WireFormat<ConntMsg>::kMeasured);
  const ConntMsg m{ConntRequest{3, 4}};
  EXPECT_EQ(fmt.bits(m), encoded_bits(m, fmt.ctx));
}

TEST(WireFormatHook, ArqFramesAddTheHeader) {
  sim::WireFormat<sim::ArqFrame<GhsMsg>> fmt;
  fmt.payload.ctx = ghs_ctx();
  static_assert(sim::WireFormat<sim::ArqFrame<GhsMsg>>::kMeasured);
  const GhsMsg payload{GhsReport{42}};
  const sim::ArqFrame<GhsMsg> data{/*ack=*/false, /*seq=*/7, payload};
  const sim::ArqFrame<GhsMsg> ack{/*ack=*/true, /*seq=*/7, GhsMsg{}};
  EXPECT_EQ(fmt.bits(data),
            sim::kArqHeaderBits + encoded_bits(payload, fmt.payload.ctx));
  EXPECT_EQ(fmt.bits(ack), sim::kArqHeaderBits);
}

TEST(WireFormatHook, ArqFramesOfUnmeasuredPayloadStaySilent) {
  const sim::WireFormat<sim::ArqFrame<int>> fmt;
  static_assert(!sim::WireFormat<sim::ArqFrame<int>>::kMeasured);
  EXPECT_EQ(fmt.bits({/*ack=*/false, /*seq=*/0, /*payload=*/9}), 0u);
}

}  // namespace
}  // namespace emst::proto
