// Tests for the Gabriel graph substrate: membership predicate, grid filter
// vs brute force, MST ⊆ GG, and |GG| = O(n).
#include <gtest/gtest.h>

#include "emst/geometry/sampling.hpp"
#include "emst/graph/gabriel.hpp"
#include "emst/graph/mst.hpp"
#include "emst/graph/tree_utils.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/rgg/rgg.hpp"
#include "emst/support/rng.hpp"

namespace emst::graph {
namespace {

TEST(Gabriel, HandExamples) {
  // Collinear points: (0,0)-(1,0) has witness (0.5, 0) strictly inside.
  const std::vector<geometry::Point2> blocked = {{0, 0}, {1, 0}, {0.5, 0}};
  EXPECT_FALSE(is_gabriel_edge(blocked, 0, 1));
  EXPECT_TRUE(is_gabriel_edge(blocked, 0, 2));
  EXPECT_TRUE(is_gabriel_edge(blocked, 2, 1));
  // A witness outside the diameter disk does not block.
  const std::vector<geometry::Point2> clear = {{0, 0}, {1, 0}, {0.5, 0.8}};
  EXPECT_TRUE(is_gabriel_edge(clear, 0, 1));
  // A witness exactly on the circle (right angle) does not block.
  const std::vector<geometry::Point2> boundary = {{0, 0}, {1, 0}, {0.5, 0.5}};
  EXPECT_TRUE(is_gabriel_edge(boundary, 0, 1));
}

class GabrielFilter : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GabrielFilter, MatchesBruteForcePredicate) {
  const auto [n, seed] = GetParam();
  support::Rng rng(static_cast<std::uint64_t>(seed) * 2713);
  const auto points = geometry::uniform_points(static_cast<std::size_t>(n), rng);
  const auto edges =
      rgg::geometric_edges(points, rgg::connectivity_radius(points.size()));
  const auto filtered = gabriel_filter(points, edges);
  // Every kept edge passes the predicate; every dropped edge fails it.
  std::set<std::pair<NodeId, NodeId>> kept;
  for (const Edge& e : filtered) kept.emplace(e.canonical().u, e.canonical().v);
  for (const Edge& e : edges) {
    const Edge c = e.canonical();
    EXPECT_EQ(kept.count({c.u, c.v}) > 0, is_gabriel_edge(points, e.u, e.v))
        << "edge " << c.u << "-" << c.v;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GabrielFilter,
                         ::testing::Combine(::testing::Values(30, 150),
                                            ::testing::Values(1, 2, 3)));

TEST(Gabriel, MstIsASubgraph) {
  // EMST ⊆ GG: filtering the unit-disk graph down to Gabriel edges must not
  // lose any MST edge.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    support::Rng rng(seed * 31);
    const auto points = geometry::uniform_points(800, rng);
    const auto edges =
        rgg::geometric_edges(points, rgg::connectivity_radius(points.size()));
    const auto gabriel = gabriel_filter(points, edges);
    const auto mst_full = kruskal_msf(points.size(), edges);
    const auto mst_gabriel = kruskal_msf(points.size(), gabriel);
    EXPECT_TRUE(same_edge_set(mst_full, mst_gabriel)) << "seed " << seed;
  }
}

TEST(Gabriel, LinearSizeVersusLogDensity) {
  // |GG| ≤ 3n (planar); the unit-disk graph at the connectivity radius has
  // Θ(n log n) edges — the filter must deliver an asymptotic reduction.
  support::Rng rng(37);
  const std::size_t n = 3000;
  const auto points = geometry::uniform_points(n, rng);
  const auto edges = rgg::geometric_edges(points, rgg::connectivity_radius(n));
  const auto gabriel = gabriel_filter(points, edges);
  EXPECT_LE(gabriel.size(), 3 * n);
  EXPECT_LT(gabriel.size() * 5, edges.size());  // at least 5x sparser here
}

TEST(Rng, HandExamples) {
  // Apex at (0.5, 0.6): distance 0.78 to both base endpoints (< base length
  // 1 ⇒ inside the lune ⇒ kills the RNG base edge) but 0.6 from the base
  // midpoint (> 0.5 ⇒ OUTSIDE the diameter disk ⇒ the Gabriel edge
  // survives) — a GG edge that is not an RNG edge.
  const std::vector<geometry::Point2> triangle = {{0, 0}, {1, 0}, {0.5, 0.6}};
  EXPECT_FALSE(is_rng_edge(triangle, 0, 1));
  EXPECT_TRUE(is_gabriel_edge(triangle, 0, 1));
  EXPECT_TRUE(is_rng_edge(triangle, 0, 2));
  EXPECT_TRUE(is_rng_edge(triangle, 2, 1));
  // Deep inside the lune AND the disk: kills both.
  const std::vector<geometry::Point2> blocked = {{0, 0}, {1, 0}, {0.5, 0.1}};
  EXPECT_FALSE(is_rng_edge(blocked, 0, 1));
  EXPECT_FALSE(is_gabriel_edge(blocked, 0, 1));
}

TEST(Rng, ChainOfContainments) {
  // EMST ⊆ RNG ⊆ GG, verified on random instances.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    support::Rng rng(seed * 43);
    const auto points = geometry::uniform_points(600, rng);
    const auto edges =
        rgg::geometric_edges(points, rgg::connectivity_radius(points.size()));
    const auto gg = gabriel_filter(points, edges);
    const auto rn = rng_filter(points, edges);
    // RNG ⊆ GG.
    std::set<std::pair<NodeId, NodeId>> gg_set;
    for (const Edge& e : gg) gg_set.emplace(e.canonical().u, e.canonical().v);
    for (const Edge& e : rn) {
      const Edge c = e.canonical();
      EXPECT_TRUE(gg_set.count({c.u, c.v}) > 0)
          << "RNG edge " << c.u << "-" << c.v << " missing from GG";
    }
    // EMST ⊆ RNG.
    const auto mst_full = kruskal_msf(points.size(), edges);
    const auto mst_rng = kruskal_msf(points.size(), rn);
    EXPECT_TRUE(same_edge_set(mst_full, mst_rng)) << "seed " << seed;
    // Sparsity ordering: |RNG| ≤ |GG|.
    EXPECT_LE(rn.size(), gg.size());
  }
}

TEST(Rng, FilterMatchesPredicate) {
  support::Rng rng(53);
  const auto points = geometry::uniform_points(120, rng);
  const auto edges =
      rgg::geometric_edges(points, rgg::connectivity_radius(points.size()));
  const auto filtered = rng_filter(points, edges);
  std::set<std::pair<NodeId, NodeId>> kept;
  for (const Edge& e : filtered) kept.emplace(e.canonical().u, e.canonical().v);
  for (const Edge& e : edges) {
    const Edge c = e.canonical();
    EXPECT_EQ(kept.count({c.u, c.v}) > 0, is_rng_edge(points, e.u, e.v));
  }
}

TEST(Gabriel, FilterPreservesConnectivity) {
  support::Rng rng(41);
  const auto points = geometry::uniform_points(1000, rng);
  const auto edges =
      rgg::geometric_edges(points, rgg::connectivity_radius(points.size()));
  const auto gabriel = gabriel_filter(points, edges);
  const auto msf_full = kruskal_msf(points.size(), edges);
  const auto msf_gabriel = kruskal_msf(points.size(), gabriel);
  EXPECT_TRUE(spans_same_components(points.size(), msf_gabriel, msf_full));
}

}  // namespace
}  // namespace emst::graph
