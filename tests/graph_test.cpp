// Tests for union-find, CSR adjacency, the sequential MST algorithms, and
// tree utilities. The MST cross-checks (Kruskal == Prim == Borůvka on random
// geometric and random dense graphs) are the ground-truth anchor for every
// distributed algorithm in the repository.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "emst/geometry/sampling.hpp"
#include "emst/graph/adjacency.hpp"
#include "emst/graph/mst.hpp"
#include "emst/graph/tree_utils.hpp"
#include "emst/graph/union_find.hpp"
#include "emst/rgg/rgg.hpp"
#include "emst/support/rng.hpp"

namespace emst::graph {
namespace {

TEST(UnionFind, Basics) {
  UnionFind dsu(5);
  EXPECT_EQ(dsu.components(), 5u);
  EXPECT_TRUE(dsu.unite(0, 1));
  EXPECT_FALSE(dsu.unite(1, 0));
  EXPECT_TRUE(dsu.connected(0, 1));
  EXPECT_FALSE(dsu.connected(0, 2));
  EXPECT_EQ(dsu.components(), 4u);
  EXPECT_EQ(dsu.size_of(0), 2u);
  EXPECT_EQ(dsu.size_of(2), 1u);
}

TEST(UnionFind, ChainCollapsesToOneComponent) {
  constexpr std::size_t kN = 1000;
  UnionFind dsu(kN);
  for (NodeId i = 0; i + 1 < kN; ++i) dsu.unite(i, i + 1);
  EXPECT_EQ(dsu.components(), 1u);
  EXPECT_EQ(dsu.size_of(0), kN);
  EXPECT_EQ(dsu.find(0), dsu.find(kN - 1));
}

TEST(Edge, CanonicalAndOrder) {
  const Edge e{5, 2, 1.0};
  const Edge c = e.canonical();
  EXPECT_EQ(c.u, 2u);
  EXPECT_EQ(c.v, 5u);
  EXPECT_TRUE(edge_less({0, 1, 1.0}, {0, 2, 2.0}));
  EXPECT_TRUE(edge_less({0, 1, 1.0}, {0, 2, 1.0}));   // tie: endpoint order
  EXPECT_TRUE(edge_less({0, 1, 1.0}, {1, 0, 2.0}));
  EXPECT_FALSE(edge_less({0, 1, 1.0}, {1, 0, 1.0}));  // identical canonical
  EXPECT_EQ((Edge{0, 1, 1.0}), (Edge{1, 0, 9.0}));    // equality ignores w
}

TEST(Adjacency, StructureAndSymmetry) {
  const std::vector<Edge> edges = {{0, 1, 2.0}, {1, 2, 1.0}, {0, 2, 3.0}};
  const AdjacencyList g(3, edges);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  // Neighbors sorted by weight.
  const auto n1 = g.neighbors(1);
  ASSERT_EQ(n1.size(), 2u);
  EXPECT_EQ(n1[0].id, 2u);
  EXPECT_DOUBLE_EQ(n1[0].w, 1.0);
  EXPECT_EQ(n1[1].id, 0u);
  // edge_index is shared between both directions.
  const auto n2 = g.neighbors(2);
  EXPECT_EQ(n1[0].edge_index, n2[0].edge_index);
  EXPECT_DOUBLE_EQ(g.edge_weight(n1[0].edge_index), 1.0);
}

TEST(Adjacency, EmptyGraph) {
  const AdjacencyList g(4, {});
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(g.neighbors(0).empty());
}

TEST(Mst, TriangleChoosesTwoLightest) {
  const std::vector<Edge> edges = {{0, 1, 1.0}, {1, 2, 2.0}, {0, 2, 3.0}};
  const auto tree = kruskal_msf(3, edges);
  ASSERT_EQ(tree.size(), 2u);
  EXPECT_DOUBLE_EQ(total_weight(tree), 3.0);
}

TEST(Mst, DisconnectedGivesForest) {
  const std::vector<Edge> edges = {{0, 1, 1.0}, {2, 3, 1.0}};
  const auto tree = kruskal_msf(4, edges);
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_TRUE(is_forest(4, tree));
  EXPECT_FALSE(is_spanning_tree(4, tree));
}

/// Property: the three sequential algorithms agree edge-for-edge.
class MstAgreement : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MstAgreement, KruskalPrimBoruvkaIdentical) {
  const auto [n, seed] = GetParam();
  support::Rng rng(static_cast<std::uint64_t>(seed));
  const auto points = geometry::uniform_points(static_cast<std::size_t>(n), rng);
  // Radius chosen to often leave the graph disconnected — the forest case
  // must agree too.
  const double radius = 1.1 * std::sqrt(std::log(n + 1.0) / n);
  const auto edges = rgg::geometric_edges(points, radius);
  const AdjacencyList g(points.size(), edges);

  const auto kruskal = kruskal_msf(points.size(), edges);
  const auto prim = prim_msf(g);
  const auto boruvka = boruvka_msf(g);
  EXPECT_TRUE(same_edge_set(kruskal, prim));
  EXPECT_TRUE(same_edge_set(kruskal, boruvka));
  EXPECT_TRUE(is_forest(points.size(), kruskal));
  EXPECT_TRUE(spans_same_components(points.size(), kruskal, edges));
}

INSTANTIATE_TEST_SUITE_P(
    RandomGeometric, MstAgreement,
    ::testing::Combine(::testing::Values(2, 5, 20, 100, 400, 1000),
                       ::testing::Values(1, 2, 3, 4, 5)));

TEST(Mst, BoruvkaPhaseCountLogarithmic) {
  support::Rng rng(61);
  const auto points = geometry::uniform_points(512, rng);
  const auto edges = rgg::geometric_edges(points, 0.2);
  const AdjacencyList g(points.size(), edges);
  const std::size_t phases = boruvka_phase_count(g);
  EXPECT_GE(phases, 1u);
  EXPECT_LE(phases, 10u);  // ≤ log2(512) + slack
}

TEST(TreeUtils, SpanningTreeChecks) {
  const std::vector<Edge> path = {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}};
  EXPECT_TRUE(is_spanning_tree(4, path));
  EXPECT_TRUE(is_forest(4, path));
  std::vector<Edge> cycle = path;
  cycle.push_back({3, 0, 1.0});
  EXPECT_FALSE(is_forest(4, cycle));
  EXPECT_FALSE(is_spanning_tree(4, cycle));
  EXPECT_FALSE(is_spanning_tree(5, path));  // node 4 uncovered
}

TEST(TreeUtils, SameEdgeSetIgnoresOrderAndOrientation) {
  const std::vector<Edge> a = {{0, 1, 1.0}, {2, 1, 2.0}};
  const std::vector<Edge> b = {{1, 2, 2.0}, {1, 0, 1.0}};
  EXPECT_TRUE(same_edge_set(a, b));
  const std::vector<Edge> c = {{0, 1, 1.0}, {0, 2, 2.0}};
  EXPECT_FALSE(same_edge_set(a, c));
}

TEST(TreeUtils, TreeCostMatchesHandComputation) {
  const std::vector<geometry::Point2> pts = {{0, 0}, {1, 0}, {1, 1}};
  const std::vector<Edge> tree = {{0, 1, 1.0}, {1, 2, 1.0}};
  EXPECT_DOUBLE_EQ(tree_cost(pts, tree, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(tree_cost(pts, tree, 2.0), 2.0);
  const std::vector<Edge> diag = {{0, 2, 0.0}};
  EXPECT_NEAR(tree_cost(pts, diag, 2.0), 2.0, 1e-12);
  EXPECT_NEAR(tree_cost(pts, diag, 1.0), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(tree_cost(pts, diag, 3.0), std::pow(std::sqrt(2.0), 3.0), 1e-12);
}

TEST(TreeUtils, ParentArrayAndDepth) {
  const std::vector<Edge> tree = {{0, 1, 1.0}, {1, 2, 1.0}, {1, 3, 1.0}};
  const auto parent = to_parent_array(4, tree, 0);
  EXPECT_EQ(parent[0], kNoNode);
  EXPECT_EQ(parent[1], 0u);
  EXPECT_EQ(parent[2], 1u);
  EXPECT_EQ(parent[3], 1u);
  EXPECT_EQ(tree_depth(4, tree, 0), 2u);
  EXPECT_EQ(tree_depth(4, tree, 1), 1u);
}

TEST(TreeUtils, SpansSameComponents) {
  const std::vector<Edge> ref = {{0, 1, 1.0}, {1, 2, 5.0}, {3, 4, 1.0}};
  const std::vector<Edge> alt = {{0, 2, 2.0}, {1, 2, 5.0}, {3, 4, 7.0}};
  EXPECT_TRUE(spans_same_components(5, alt, ref));
  const std::vector<Edge> wrong = {{0, 1, 1.0}, {3, 4, 1.0}};
  EXPECT_FALSE(spans_same_components(5, wrong, ref));
}

}  // namespace
}  // namespace emst::graph
