// Determinism guarantees of the fault layer (docs/ROBUSTNESS.md, satellite
// of the robustness PR): identical seeds produce byte-identical executions.
//
//  - The calendar-queue and reference engines, driven by one schedule under
//    combined faults (Bernoulli + Gilbert–Elliott + crash windows + random
//    delays), deliver byte-identical sequences and meter totals — loss fates
//    are drawn at send time in global send order precisely so both engines
//    agree despite delivering in different internal orders.
//  - Re-running any fault-aware engine with the same seeds reproduces the
//    exact delivery log, meter, and protocol result.
//  - Different fault seeds genuinely change the execution (the knob is live).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <tuple>
#include <vector>

#include "emst/eopt/eopt.hpp"
#include "emst/geometry/sampling.hpp"
#include "emst/graph/tree_utils.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/sim/network.hpp"
#include "emst/sim/reference_network.hpp"
#include "emst/support/rng.hpp"

namespace emst::sim {
namespace {

using Msg = std::uint64_t;
using Trace = std::vector<std::tuple<NodeId, NodeId, double, Msg>>;

constexpr std::uint64_t kForever = std::numeric_limits<std::uint64_t>::max();

FaultModel hostile_faults(std::uint64_t seed) {
  FaultModel faults;
  faults.loss = 0.15;
  faults.use_gilbert = true;   // default burst parameters
  faults.crashes = {{3, 5, 20}, {11, 10, kForever}, {7, 0, 4}};
  faults.seed = seed;
  return faults;
}

/// Replay one deterministic random schedule through `net`, returning the
/// full delivery trace. The schedule depends only on `schedule_seed`.
template <typename Net>
Trace run_schedule(Net& net, const Topology& topo, std::uint64_t schedule_seed) {
  support::Rng rng(schedule_seed);
  const std::size_t n = topo.node_count();
  Trace trace;
  std::uint64_t payload = 0;
  for (int round = 0; round < 120; ++round) {
    if (round < 60) {
      const std::uint64_t ops = rng.uniform_int(16);
      for (std::uint64_t k = 0; k < ops; ++k) {
        const auto u = static_cast<NodeId>(rng.uniform_int(n));
        if (rng.uniform() < 0.3) {
          net.broadcast(u, rng.uniform(0.0, topo.max_radius()), payload++);
        } else {
          const auto nbs = topo.neighbors(u);
          if (nbs.empty()) continue;
          net.unicast(u, nbs[rng.uniform_int(nbs.size())].id, payload++);
        }
      }
    }
    for (const auto& d : net.collect_round())
      trace.emplace_back(d.from, d.to, d.distance, d.msg);
    if (round >= 60 && !net.pending()) break;
  }
  EXPECT_FALSE(net.pending());
  return trace;
}

void expect_same_accounting(const Accounting& a, const Accounting& b) {
  EXPECT_EQ(a.energy, b.energy);  // bit-identical, not EXPECT_NEAR
  EXPECT_EQ(a.unicasts, b.unicasts);
  EXPECT_EQ(a.broadcasts, b.broadcasts);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.rounds, b.rounds);
}

void expect_same_fault_stats(const FaultStats& a, const FaultStats& b) {
  EXPECT_EQ(a.lost, b.lost);
  EXPECT_EQ(a.dropped_crashed, b.dropped_crashed);
  EXPECT_EQ(a.suppressed, b.suppressed);
}

TEST(Determinism, EnginesAgreeByteForByteUnderCombinedFaults) {
  const std::size_t n = 200;
  support::Rng rng(909);
  const Topology topo(geometry::uniform_points(n, rng),
                      rgg::connectivity_radius(n));
  for (const std::uint32_t delay : {0u, 3u}) {
    const DelayModel delays{delay, 0xabcULL};
    const FaultModel faults = hostile_faults(0xfee1ULL);
    Network<Msg> calendar(topo, {}, false, delays, faults);
    ReferenceNetwork<Msg> reference(topo, {}, false, delays, faults);
    const Trace got = run_schedule(calendar, topo, 1234);
    const Trace want = run_schedule(reference, topo, 1234);
    ASSERT_EQ(got, want) << "delay=" << delay;
    expect_same_accounting(calendar.meter().totals(),
                           reference.meter().totals());
    expect_same_fault_stats(calendar.fault_stats(), reference.fault_stats());
    EXPECT_GT(calendar.fault_stats().lost, 0u);
    EXPECT_GT(calendar.fault_stats().dropped_crashed, 0u);
  }
}

TEST(Determinism, SameSeedsReproduceTheExactTrace) {
  const std::size_t n = 150;
  support::Rng rng(911);
  const Topology topo(geometry::uniform_points(n, rng),
                      rgg::connectivity_radius(n));
  const DelayModel delays{2, 0x77ULL};
  const FaultModel faults = hostile_faults(42);
  Network<Msg> first(topo, {}, false, delays, faults);
  Network<Msg> second(topo, {}, false, delays, faults);
  EXPECT_EQ(run_schedule(first, topo, 555), run_schedule(second, topo, 555));
  expect_same_accounting(first.meter().totals(), second.meter().totals());
  expect_same_fault_stats(first.fault_stats(), second.fault_stats());
}

TEST(Determinism, DifferentFaultSeedsChangeTheTrace) {
  const std::size_t n = 150;
  support::Rng rng(912);
  const Topology topo(geometry::uniform_points(n, rng),
                      rgg::connectivity_radius(n));
  FaultModel faults_a = hostile_faults(1);
  FaultModel faults_b = hostile_faults(2);
  Network<Msg> a(topo, {}, false, {}, faults_a);
  Network<Msg> b(topo, {}, false, {}, faults_b);
  EXPECT_NE(run_schedule(a, topo, 555), run_schedule(b, topo, 555));
}

TEST(Determinism, FaultAwareEoptIsReproducible) {
  support::Rng rng(913);
  const Topology topo =
      eopt::eopt_topology(geometry::uniform_points(300, rng));
  eopt::EoptOptions options;
  options.faults.loss = 0.08;
  options.faults.use_gilbert = true;
  options.faults.seed = 0xeeeULL;
  options.arq.enabled = true;
  const auto first = eopt::run_eopt(topo, options);
  const auto second = eopt::run_eopt(topo, options);
  EXPECT_TRUE(graph::same_edge_set(first.run.tree, second.run.tree));
  expect_same_accounting(first.run.totals, second.run.totals);
  EXPECT_EQ(first.arq.data_sent, second.arq.data_sent);
  EXPECT_EQ(first.arq.retransmissions, second.arq.retransmissions);
  EXPECT_EQ(first.arq.acks_sent, second.arq.acks_sent);
  EXPECT_EQ(first.arq.give_ups, second.arq.give_ups);
  EXPECT_EQ(first.fault_stats.lost, second.fault_stats.lost);
  EXPECT_EQ(first.fault_stats.dropped_crashed,
            second.fault_stats.dropped_crashed);
  EXPECT_GT(first.fault_stats.lost, 0u);
}

}  // namespace
}  // namespace emst::sim
