// Tests for the phase-synchronous GHS (classic-probe and modified
// neighbor-cache flavours), seeded continuation, and passive fragments.
#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>

#include "emst/geometry/sampling.hpp"
#include "emst/ghs/sync.hpp"
#include "emst/graph/mst.hpp"
#include "emst/graph/tree_utils.hpp"
#include "emst/graph/union_find.hpp"
#include "emst/rgg/components.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/support/rng.hpp"

namespace emst::ghs {
namespace {

sim::Topology make_topology(std::size_t n, double radius, std::uint64_t seed) {
  support::Rng rng(seed);
  return sim::Topology(geometry::uniform_points(n, rng), radius);
}

std::vector<graph::Edge> reference_msf(const sim::Topology& topo, double radius) {
  std::vector<graph::Edge> edges;
  for (const graph::Edge& e : topo.graph().edges()) {
    if (e.w <= radius) edges.push_back(e);
  }
  return graph::kruskal_msf(topo.node_count(), edges);
}

class SyncGhsExactness
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(SyncGhsExactness, MatchesKruskal) {
  const auto [n, seed, cache] = GetParam();
  const double radius = rgg::connectivity_radius(static_cast<std::size_t>(n), 1.6);
  const sim::Topology topo = make_topology(static_cast<std::size_t>(n), radius,
                                           static_cast<std::uint64_t>(seed) * 31 + 5);
  SyncGhsOptions options;
  options.neighbor_cache = cache;
  const SyncGhsResult result = run_sync_ghs(topo, options);
  EXPECT_TRUE(graph::same_edge_set(result.run.tree, reference_msf(topo, radius)));
}

INSTANTIATE_TEST_SUITE_P(
    BothFlavours, SyncGhsExactness,
    ::testing::Combine(::testing::Values(10, 100, 500, 1500),
                       ::testing::Values(1, 2, 3),
                       ::testing::Bool()));

TEST(SyncGhs, DisconnectedGraphMakesForest) {
  const std::size_t n = 600;
  const double radius = rgg::percolation_radius(n, 1.4);
  const sim::Topology topo = make_topology(n, radius, 29);
  SyncGhsOptions options;
  const SyncGhsResult result = run_sync_ghs(topo, options);
  const auto reference = reference_msf(topo, radius);
  EXPECT_TRUE(graph::same_edge_set(result.run.tree, reference));
  EXPECT_EQ(result.run.fragments, n - reference.size());
  // Final forest is consistent: same leader iff same component.
  const rgg::Components comps = rgg::connected_components(topo.graph());
  for (sim::NodeId u = 0; u < n; ++u) {
    for (sim::NodeId v = u + 1; v < n; ++v) {
      if (comps.label[u] == comps.label[v]) {
        EXPECT_EQ(result.final_forest.leader[u], result.final_forest.leader[v]);
      } else {
        EXPECT_NE(result.final_forest.leader[u], result.final_forest.leader[v]);
      }
    }
  }
}

TEST(SyncGhs, CacheAndProbeProduceIdenticalTrees) {
  for (std::uint64_t seed = 40; seed < 45; ++seed) {
    const std::size_t n = 400;
    const double radius = rgg::connectivity_radius(n);
    const sim::Topology topo = make_topology(n, radius, seed);
    SyncGhsOptions probe;
    probe.neighbor_cache = false;
    SyncGhsOptions cache;
    cache.neighbor_cache = true;
    const auto a = run_sync_ghs(topo, probe);
    const auto b = run_sync_ghs(topo, cache);
    EXPECT_TRUE(graph::same_edge_set(a.run.tree, b.run.tree));
  }
}

TEST(SyncGhs, CacheModeUsesFewerMessagesOnDenseGraphs) {
  // The modified GHS replaces Θ(|E|) TEST/REJECT traffic with n·φ
  // announcements; at the connectivity radius |E| = Θ(n log n) dominates.
  const std::size_t n = 2000;
  const double radius = rgg::connectivity_radius(n);
  const sim::Topology topo = make_topology(n, radius, 47);
  SyncGhsOptions probe;
  probe.neighbor_cache = false;
  SyncGhsOptions cache;
  cache.neighbor_cache = true;
  const auto a = run_sync_ghs(topo, probe);
  const auto b = run_sync_ghs(topo, cache);
  EXPECT_LT(b.run.totals.messages(), a.run.totals.messages());
}

TEST(SyncGhs, SeededContinuationCompletesTheMst) {
  // Stage 1 at the percolation radius, stage 2 at the connectivity radius —
  // exactly EOPT's shape — must equal single-shot Kruskal at r₂.
  const std::size_t n = 800;
  const double r2 = rgg::connectivity_radius(n);
  const double r1 = rgg::percolation_radius(n, 1.4);
  const sim::Topology topo = make_topology(n, r2, 53);
  SyncGhsOptions step1;
  step1.radius = r1;
  const auto stage1 = run_sync_ghs(topo, step1);
  SyncGhsOptions step2;
  step2.radius = r2;
  const auto stage2 = run_sync_ghs(topo, step2, stage1.final_forest);
  EXPECT_TRUE(graph::same_edge_set(stage2.run.tree, reference_msf(topo, r2)));
}

TEST(SyncGhs, PassiveFragmentStillAbsorbsNeighbors) {
  // Mark the largest stage-1 fragment passive; the final tree must still be
  // the exact MST, because small fragments connect *into* it.
  const std::size_t n = 1200;
  const double r2 = rgg::connectivity_radius(n);
  const double r1 = rgg::percolation_radius(n, 1.4);
  const sim::Topology topo = make_topology(n, r2, 59);
  SyncGhsOptions step1;
  step1.radius = r1;
  const auto stage1 = run_sync_ghs(topo, step1);
  // Find the biggest fragment.
  std::unordered_map<sim::NodeId, std::size_t> sizes;
  for (sim::NodeId u = 0; u < n; ++u) ++sizes[stage1.final_forest.leader[u]];
  sim::NodeId giant = 0;
  std::size_t best = 0;
  for (const auto& [leader, size] : sizes) {
    if (size > best) {
      best = size;
      giant = leader;
    }
  }
  SyncGhsOptions step2;
  step2.radius = r2;
  step2.passive_fragments = {giant};
  const auto stage2 = run_sync_ghs(topo, step2, stage1.final_forest);
  EXPECT_TRUE(graph::same_edge_set(stage2.run.tree, reference_msf(topo, r2)));
  // With id retention the giant's leader survives.
  EXPECT_EQ(stage2.final_forest.leader[giant], giant);
}

TEST(SyncGhs, PassiveIdRetentionReducesAnnouncements) {
  const std::size_t n = 1500;
  const double r2 = rgg::connectivity_radius(n);
  const double r1 = rgg::percolation_radius(n, 1.4);
  const sim::Topology topo = make_topology(n, r2, 61);
  SyncGhsOptions step1;
  step1.radius = r1;
  const auto stage1 = run_sync_ghs(topo, step1);
  std::unordered_map<sim::NodeId, std::size_t> sizes;
  for (sim::NodeId u = 0; u < n; ++u) ++sizes[stage1.final_forest.leader[u]];
  sim::NodeId giant = 0;
  std::size_t best = 0;
  for (const auto& [leader, size] : sizes) {
    if (size > best) {
      best = size;
      giant = leader;
    }
  }
  ASSERT_GT(best, n / 4);
  auto run_step2 = [&](bool retain) {
    SyncGhsOptions step2;
    step2.radius = r2;
    step2.passive_fragments = {giant};
    step2.retain_passive_id = retain;
    return run_sync_ghs(topo, step2, stage1.final_forest);
  };
  const auto with_retention = run_step2(true);
  const auto without = run_step2(false);
  EXPECT_TRUE(graph::same_edge_set(with_retention.run.tree, without.run.tree));
  // Giving up the giant's id forces its Θ(n) members to re-announce.
  EXPECT_LT(with_retention.run.totals.broadcasts,
            without.run.totals.broadcasts);
}

class SeededForestFuzz : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SeededForestFuzz, AnyMstPrefixSeedCompletesToTheMsf) {
  // Property: seeding the engine with ANY prefix of the Kruskal order (a
  // subforest of the MST) yields the exact MSF. The prefix length and the
  // instance both vary.
  const auto [seed, prefix_permille] = GetParam();
  const std::size_t n = 500;
  const double radius = rgg::connectivity_radius(n);
  const sim::Topology topo = make_topology(n, radius,
                                           static_cast<std::uint64_t>(seed) * 193);
  const auto reference = reference_msf(topo, radius);
  const std::size_t prefix =
      reference.size() * static_cast<std::size_t>(prefix_permille) / 1000;
  FragmentForest forest;
  forest.leader.resize(n);
  {
    graph::UnionFind dsu(n);
    for (std::size_t i = 0; i < prefix; ++i) {
      forest.tree.push_back(reference[i]);
      dsu.unite(reference[i].u, reference[i].v);
    }
    for (sim::NodeId u = 0; u < n; ++u) forest.leader[u] = dsu.find(u);
  }
  for (const bool cache : {true, false}) {
    SyncGhsOptions options;
    options.neighbor_cache = cache;
    const auto result = run_sync_ghs(topo, options, forest);
    EXPECT_TRUE(graph::same_edge_set(result.run.tree, reference))
        << "seed=" << seed << " prefix=" << prefix << " cache=" << cache;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PrefixSweep, SeededForestFuzz,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(0, 100, 500, 900, 1000)));

TEST(SyncGhs, LargeScaleExactness) {
  // Robustness at 30k nodes (≈ 6× the paper's largest experiment).
  const std::size_t n = 30000;
  const double radius = rgg::connectivity_radius(n);
  const sim::Topology topo = make_topology(n, radius, 401);
  const auto result = run_sync_ghs(topo, {});
  EXPECT_TRUE(graph::same_edge_set(result.run.tree, reference_msf(topo, radius)));
}

TEST(SyncGhs, MinPowerAnnouncementsExactAndCheaper) {
  const std::size_t n = 900;
  const double radius = rgg::connectivity_radius(n);
  const sim::Topology topo = make_topology(n, radius, 431);
  SyncGhsOptions plain;
  SyncGhsOptions min_power;
  min_power.announce_min_power = true;
  const auto a = run_sync_ghs(topo, plain);
  const auto b = run_sync_ghs(topo, min_power);
  // Identical receiver sets ⇒ identical protocol ⇒ identical tree and
  // message counts; only broadcast energy differs.
  EXPECT_TRUE(graph::same_edge_set(a.run.tree, b.run.tree));
  EXPECT_EQ(a.run.totals.messages(), b.run.totals.messages());
  EXPECT_LT(b.run.totals.energy, a.run.totals.energy);
}

TEST(SyncGhs, PerNodeLedgerMatchesTotal) {
  const std::size_t n = 500;
  const sim::Topology topo = make_topology(n, rgg::connectivity_radius(n), 433);
  SyncGhsOptions options;
  options.track_per_node_energy = true;
  const auto result = run_sync_ghs(topo, options);
  ASSERT_EQ(result.run.per_node_energy.size(), n);
  double total = 0.0;
  for (const double e : result.run.per_node_energy) total += e;
  EXPECT_NEAR(total, result.run.totals.energy, 1e-9);
}

TEST(SyncGhs, BoruvkaTrajectoryAtLeastHalves) {
  // Each phase every active fragment merges with at least one other, so the
  // active-fragment count at least halves (finished fragments excepted; on
  // a connected graph there are none until the end).
  const std::size_t n = 2000;
  const double radius = rgg::connectivity_radius(n);
  const sim::Topology topo = make_topology(n, radius, 409);
  const auto result = run_sync_ghs(topo, {});
  const auto& traj = result.fragments_per_phase;
  ASSERT_GE(traj.size(), 2u);
  EXPECT_EQ(traj.front(), n);
  EXPECT_EQ(traj.back(), 1u);
  for (std::size_t i = 1; i + 1 < traj.size(); ++i) {
    // Strict Borůvka halving between consecutive phases (last entry is the
    // post-final state and may equal its predecessor when the final phase
    // only discovers "no outgoing edge").
    EXPECT_LE(traj[i], (traj[i - 1] + 1) / 2) << "phase " << i;
  }
}

TEST(SyncGhs, PhasesLogarithmic) {
  const std::size_t n = 1024;
  const double radius = rgg::connectivity_radius(n);
  const sim::Topology topo = make_topology(n, radius, 67);
  const auto result = run_sync_ghs(topo, {});
  EXPECT_GE(result.run.phases, 1u);
  EXPECT_LE(result.run.phases, 14u);
}

TEST(SyncGhs, CensusCountsAndCharges) {
  const std::size_t n = 500;
  const double r1 = rgg::percolation_radius(n, 1.4);
  const sim::Topology topo = make_topology(n, rgg::connectivity_radius(n), 71);
  SyncGhsOptions step1;
  step1.radius = r1;
  const auto stage1 = run_sync_ghs(topo, step1);
  sim::EnergyMeter meter;
  const auto sizes = fragment_census(topo, stage1.final_forest, meter);
  // Sizes consistent with the forest.
  std::unordered_map<sim::NodeId, std::size_t> expect;
  for (sim::NodeId u = 0; u < n; ++u) ++expect[stage1.final_forest.leader[u]];
  for (sim::NodeId u = 0; u < n; ++u)
    EXPECT_EQ(sizes[u], expect[stage1.final_forest.leader[u]]);
  // 2 unicasts per tree edge.
  EXPECT_EQ(meter.totals().unicasts, 2 * stage1.final_forest.tree.size());
  EXPECT_GT(meter.totals().energy, 0.0);
}

}  // namespace
}  // namespace emst::ghs
