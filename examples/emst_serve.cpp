// emst_serve — the long-lived incremental MST service (docs/SERVE.md).
//
// Daemon mode (default): sample a deployment, build its MST through the
// emst::run facade, then keep it resident — accepting framed ServeMsg
// requests over loopback TCP and folding mutation batches into the tree
// incrementally (full rebuild only when churn or radius drift demands it).
//
//   emst_serve --n=512 --seed=7 --algo=eopt --port=0 --port-file=port.txt
//
// Client mode: connect to a running daemon and drive it, either from a
// script file (one command per line: add X Y / remove ID / move ID X Y /
// commit / tree / stats / shutdown; '#' comments) or interactively from
// stdin. The CI smoke test runs exactly this over loopback.
//
//   emst_serve --client --port=12345 --script=session.txt
//
// The run-configuration knobs (--loss/--arq/--oracle/--threads/...) are the
// same flags emst_cli takes, parsed by the same emst::run_flags parser —
// they configure the facade runs the daemon performs at build/rebuild time.
// --chaos and --trace are rejected: a fail-stop-degraded rebuild would
// desync the resident deployment, and the per-run transmission trace has no
// meaning for a session that outlives its runs.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "emst/geometry/sampling.hpp"
#include "emst/run_flags.hpp"
#include "emst/serve/client.hpp"
#include "emst/serve/server.hpp"
#include "emst/support/rng.hpp"

namespace {

using emst::graph::NodeId;

int run_client_command(emst::serve::Client& client, const std::string& line,
                       bool& done) {
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  if (cmd.empty() || cmd[0] == '#') return 0;
  if (cmd == "add") {
    double x = 0.0, y = 0.0;
    if (!(in >> x >> y)) {
      std::fprintf(stderr, "emst_serve: bad command: %s\n", line.c_str());
      return 1;
    }
    const NodeId id = client.add_node(x, y);
    if (id == emst::graph::kNoNode) {
      std::printf("error add\n");
      return 0;
    }
    std::printf("added %u\n", id);
    return 0;
  }
  if (cmd == "remove" || cmd == "move") {
    std::uint32_t id = 0;
    double x = 0.0, y = 0.0;
    const bool is_move = cmd == "move";
    if (!(in >> id) || (is_move && !(in >> x >> y))) {
      std::fprintf(stderr, "emst_serve: bad command: %s\n", line.c_str());
      return 1;
    }
    const bool ok =
        is_move ? client.move_node(id, x, y) : client.remove_node(id);
    std::printf("%s %s %u\n", ok ? "ok" : "error", cmd.c_str(), id);
    return 0;
  }
  if (cmd == "commit") {
    const auto report = client.commit();
    if (!report.has_value()) {
      std::fprintf(stderr, "emst_serve: commit failed\n");
      return 1;
    }
    std::printf(
        "commit admitted=%u touched=%llu rebuilt=%d edges=%llu len=%.6f\n",
        report->admitted,
        static_cast<unsigned long long>(report->nodes_touched),
        report->rebuilt ? 1 : 0,
        static_cast<unsigned long long>(report->tree_edges),
        report->tree_len);
    return 0;
  }
  if (cmd == "tree") {
    const auto t = client.query_tree();
    if (!t.has_value()) {
      std::fprintf(stderr, "emst_serve: tree query failed\n");
      return 1;
    }
    std::printf("tree nodes=%llu edges=%llu len=%.6f sq=%.6f\n",
                static_cast<unsigned long long>(t->nodes),
                static_cast<unsigned long long>(t->edges), t->total_len,
                t->total_sq);
    return 0;
  }
  if (cmd == "stats") {
    const auto s = client.query_stats();
    if (!s.has_value()) {
      std::fprintf(stderr, "emst_serve: stats query failed\n");
      return 1;
    }
    std::printf(
        "stats commits=%llu rebuilds=%llu admitted=%llu touched=%llu "
        "nodes=%llu edges=%llu\n",
        static_cast<unsigned long long>(s->commits),
        static_cast<unsigned long long>(s->rebuilds),
        static_cast<unsigned long long>(s->admitted),
        static_cast<unsigned long long>(s->nodes_touched),
        static_cast<unsigned long long>(s->nodes),
        static_cast<unsigned long long>(s->tree_edges));
    return 0;
  }
  if (cmd == "shutdown") {
    if (!client.shutdown_server()) {
      std::fprintf(stderr, "emst_serve: shutdown failed\n");
      return 1;
    }
    std::printf("shutdown ok\n");
    done = true;
    return 0;
  }
  std::fprintf(stderr, "emst_serve: unknown command: %s\n", cmd.c_str());
  return 1;
}

int run_client(const emst::support::Cli& cli) {
  const auto port = static_cast<std::uint16_t>(cli.get_int("port", 0));
  if (port == 0) {
    std::fprintf(stderr, "emst_serve: --client needs --port\n");
    return 2;
  }
  emst::serve::Client client;
  if (!client.connect(port)) {
    std::fprintf(stderr, "emst_serve: cannot connect to 127.0.0.1:%u\n",
                 port);
    return 1;
  }
  const auto nodes = client.hello();
  if (!nodes.has_value()) {
    std::fprintf(stderr, "emst_serve: hello rejected\n");
    return 1;
  }
  std::printf("hello nodes=%llu\n", static_cast<unsigned long long>(*nodes));

  const std::string script = cli.get("script", "");
  std::ifstream file;
  if (!script.empty()) {
    file.open(script);
    if (!file) {
      std::fprintf(stderr, "emst_serve: cannot open script %s\n",
                   script.c_str());
      return 2;
    }
  }
  std::istream& in = script.empty() ? std::cin : file;
  std::string line;
  bool done = false;
  while (!done && std::getline(in, line)) {
    const int rc = run_client_command(client, line, done);
    if (rc != 0) return rc;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> spec = {
      {"client", "connect to a daemon instead of being one"},
      {"port", "TCP port: daemon binds it (0 = ephemeral), client dials it"},
      {"port-file", "daemon writes its bound port here (for scripts)"},
      {"script", "client: command file (default: stdin)"},
      {"n", "daemon: initial deployment size (default 256)"},
      {"seed", "daemon: deployment seed (default 1)"},
      {"algo", "rebuild driver: ghs|ghs-cached|sync|sync-probe|eopt"},
      {"radius-factor", "connectivity radius factor (default 1.6)"},
      {"implicit", "rebuild on the implicit topology backend"},
      {"max-batch", "auto-commit after this many mutations (default 256)"},
      {"batch-timeout-ms",
       "auto-commit a quiet non-empty batch after this long (default 50)"},
      {"verify", "differential-check the tree after every commit (slow)"},
  };
  emst::merge_run_flag_spec(spec);
  const emst::support::Cli cli(argc, argv, spec);

  if (cli.get_bool("client", false)) return run_client(cli);

  emst::RunFlags flags = emst::parse_run_flags(cli);
  if (flags.chaos_controller != nullptr) {
    std::fprintf(stderr,
                 "emst_serve: --chaos is not supported: a fail-stop degraded "
                 "rebuild would desync the resident deployment\n");
    return 2;
  }
  if (!flags.trace_path.empty()) {
    std::fprintf(stderr,
                 "emst_serve: --trace is not supported: the session outlives "
                 "any single run's transmission trace\n");
    return 2;
  }

  emst::serve::SessionConfig scfg;
  const std::string algo = cli.get("algo", "eopt");
  if (!emst::parse_driver(algo, scfg.run.driver) ||
      scfg.run.driver == emst::Driver::kCoNnt ||
      scfg.run.driver == emst::Driver::kCoNntAxis) {
    std::fprintf(stderr,
                 "emst_serve: --algo must be an MSF-exact driver "
                 "(ghs|ghs-cached|sync|sync-probe|eopt), got %s\n",
                 algo.c_str());
    return 2;
  }
  emst::reject_unsupported_faults(flags, scfg.run.driver);
  flags.apply(scfg.run);
  scfg.radius_factor = cli.get_double("radius-factor", 1.6);
  scfg.implicit_backend = cli.get_bool("implicit", false);
  scfg.verify_after_commit = cli.get_bool("verify", false);

  const emst::Driver driver = scfg.run.driver;
  const auto n = static_cast<std::size_t>(cli.get_int("n", 256));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  if (n < 2) {
    std::fprintf(stderr, "emst_serve: --n must be at least 2\n");
    return 2;
  }
  emst::support::Rng rng(seed);
  emst::serve::Session session(emst::geometry::uniform_points(n, rng),
                               std::move(scfg));

  emst::serve::ServerConfig server_cfg;
  server_cfg.port = static_cast<std::uint16_t>(cli.get_int("port", 0));
  server_cfg.max_batch =
      static_cast<std::size_t>(cli.get_int("max-batch", 256));
  server_cfg.batch_timeout_ms =
      static_cast<int>(cli.get_int("batch-timeout-ms", 50));
  emst::serve::Server server(std::move(session), server_cfg);
  if (!server.ok()) {
    std::fprintf(stderr, "emst_serve: cannot bind 127.0.0.1:%u\n",
                 server_cfg.port);
    return 1;
  }

  const std::string port_file = cli.get("port-file", "");
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    if (!out) {
      std::fprintf(stderr, "emst_serve: cannot write %s\n",
                   port_file.c_str());
      return 2;
    }
    out << server.port() << "\n";
  }
  std::printf("emst_serve: listening on 127.0.0.1:%u (n=%zu, algo=%s)\n",
              server.port(), server.session().alive_count(),
              emst::driver_name(driver));
  std::fflush(stdout);

  const std::uint64_t served = server.serve();
  const emst::serve::SessionStats& s = server.session().stats();
  std::printf(
      "emst_serve: done (requests=%llu commits=%llu rebuilds=%llu "
      "nodes=%zu edges=%zu)\n",
      static_cast<unsigned long long>(served),
      static_cast<unsigned long long>(s.commits),
      static_cast<unsigned long long>(s.rebuilds),
      server.session().alive_count(), server.session().tree().size());
  return 0;
}
