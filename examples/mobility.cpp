// Mobility — the other §I dynamism driver ("the topology of these networks
// can change frequently due to mobility or node failures").
//
//   ./mobility [--n=1000] [--epochs=10] [--speed=2] [--seed=31]
//
// A random-waypoint-style field: each epoch, every node drifts by a random
// step of scale speed·r. The MST must be maintained. Two maintenance
// strategies over the same trajectory:
//   - rebuild: run EOPT from scratch every epoch;
//   - repair: keep the still-valid MST edges (those that survive as edges
//     of the new MST candidate set under the cycle property — here
//     approximated by "still within radio range"), seed EOPT with them.
// Both must produce the exact MST of every epoch's configuration; the bill
// is the cumulative construction energy across epochs.
// Expert surface: epoch repair seeds run_eopt with the previous tree's
// forest, which the emst::run facade does not express; direct calls are
// the sanctioned spelling here (emst/run.hpp).
#define EMST_NO_DEPRECATE
#include <cstdio>
#include <vector>

#include "emst/eopt/eopt.hpp"
#include "emst/geometry/sampling.hpp"
#include "emst/graph/mst.hpp"
#include "emst/graph/tree_utils.hpp"
#include "emst/graph/union_find.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/support/cli.hpp"
#include "emst/support/rng.hpp"

int main(int argc, char** argv) {
  using namespace emst;
  const support::Cli cli(argc, argv,
                         {{"n", "number of nodes (default 1000)"},
                          {"epochs", "mobility epochs (default 10)"},
                          {"speed", "drift per epoch in radio-range units x100 (default 20)"},
                          {"seed", "seed (default 31)"}});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 1000));
  const auto epochs = static_cast<std::size_t>(cli.get_int("epochs", 10));
  const double speed = static_cast<double>(cli.get_int("speed", 20)) / 100.0;
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 31));

  support::Rng rng(seed);
  auto points = geometry::uniform_points(n, rng);
  const double r = rgg::connectivity_radius(n);
  const double step = speed * r;

  double rebuild_total = 0.0;
  double repair_total = 0.0;
  std::vector<graph::Edge> previous_tree;  // repair strategy's carried state
  std::size_t repaired_exact = 0;
  std::size_t carried_edges = 0;

  std::printf("mobility: %zu nodes, %zu epochs, drift %.0f%% of radio range "
              "per epoch\n\n", n, epochs, 100.0 * speed);
  std::printf("%-6s %14s %14s %12s %10s\n", "epoch", "rebuild_E", "repair_E",
              "kept_edges", "exact");

  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    // Drift (reflecting at the walls).
    if (epoch > 0) {
      for (geometry::Point2& p : points) {
        p.x += rng.uniform(-step, step);
        p.y += rng.uniform(-step, step);
        p.x = std::fabs(p.x);
        p.y = std::fabs(p.y);
        if (p.x > 1.0) p.x = 2.0 - p.x;
        if (p.y > 1.0) p.y = 2.0 - p.y;
      }
    }
    const sim::Topology topo(points, r);
    const auto reference = graph::kruskal_msf(n, topo.graph().edges());

    // Strategy A: rebuild from scratch.
    const auto rebuild = eopt::run_eopt(topo);
    rebuild_total += rebuild.run.totals.energy;

    // Strategy B: repair. Carry forward previous-tree edges that are still
    // in the new MST (checked against the reference — a real system would
    // use a local filter; this bounds the best case of repair).
    ghs::FragmentForest seed_forest;
    std::size_t kept = 0;
    {
      std::vector<graph::Edge> survivors;
      for (const graph::Edge& old_edge : previous_tree) {
        const double d = geometry::distance(points[old_edge.u], points[old_edge.v]);
        graph::Edge moved{old_edge.u, old_edge.v, d};
        // Keep iff still an edge of the exact new MST.
        for (const graph::Edge& e : reference) {
          if (e == moved) {
            survivors.push_back(moved);
            break;
          }
        }
      }
      kept = survivors.size();
      graph::UnionFind dsu(n);
      for (const graph::Edge& e : survivors) dsu.unite(e.u, e.v);
      seed_forest.leader.resize(n);
      for (graph::NodeId u = 0; u < n; ++u) seed_forest.leader[u] = dsu.find(u);
      seed_forest.tree = std::move(survivors);
    }
    const auto repair = eopt::run_eopt(topo, {}, &seed_forest);
    repair_total += repair.run.totals.energy;
    const bool exact = graph::same_edge_set(repair.run.tree, reference);
    if (exact) ++repaired_exact;
    carried_edges += kept;
    previous_tree = repair.run.tree;

    std::printf("%-6zu %14.3f %14.3f %12zu %10s\n", epoch,
                rebuild.run.totals.energy, repair.run.totals.energy, kept,
                exact ? "yes" : "NO");
  }

  std::printf("\ncumulative: rebuild %.2f vs repair %.2f (%.1f%% saved); "
              "repair exact in %zu/%zu epochs; %.0f edges carried per epoch "
              "on average\n",
              rebuild_total, repair_total,
              100.0 * (1.0 - repair_total / rebuild_total), repaired_exact,
              epochs, static_cast<double>(carried_edges) /
                          static_cast<double>(epochs));
  std::printf("\nreading guide: the carried-edge count tracks speed, but the "
              "savings stay small — a finding, not a bug: EOPT's bill is "
              "dominated by the per-radius announcement rounds (Θ(log n)), "
              "which no amount of seeding avoids. Under mobility, exact-MST "
              "maintenance with this algorithm family costs ≈ a rebuild per "
              "epoch; contrast with --speed=5, and with failure_recovery, "
              "where the seed eliminates most of Step 1's merging.\n");
  return 0;
}
