// Quickstart: deploy a random sensor field, build its MST three ways, and
// compare energy bills.
//
//   ./quickstart [--n=2000] [--seed=7]
//
// This is the 60-second tour of the library:
//   1. sample a deployment and build the radio topology,
//   2. run the classical GHS baseline, the paper's EOPT, and Co-NNT,
//   3. verify both exact algorithms against Kruskal,
//   4. print the three cost columns the paper is about.
#include <cstdio>

#include "emst/geometry/sampling.hpp"
#include "emst/graph/mst.hpp"
#include "emst/graph/tree_utils.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/run.hpp"
#include "emst/support/cli.hpp"
#include "emst/support/rng.hpp"

int main(int argc, char** argv) {
  using namespace emst;
  const support::Cli cli(argc, argv,
                         {{"n", "number of sensor nodes (default 2000)"},
                          {"seed", "deployment seed (default 7)"}});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 2000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));

  // 1. Deploy n sensors uniformly in the unit square; the radio range is the
  //    connectivity radius 1.6·√(ln n / n) from Thm 5.1.
  support::Rng rng(seed);
  auto points = geometry::uniform_points(n, rng);
  const sim::Topology topo(points, rgg::connectivity_radius(n));
  std::printf("deployed %zu sensors, radio range %.4f, %zu links\n", n,
              topo.max_radius(), topo.graph().edge_count());

  // 2. The three §VII algorithms, all through the one facade: pick a
  //    driver, call emst::run (docs/API_TOUR.md).
  RunConfig cfg;
  cfg.driver = Driver::kClassicGhs;
  const RunResult ghs = run(topo, cfg);
  cfg.driver = Driver::kEopt;
  const RunResult eopt = run(topo, cfg);
  cfg.driver = Driver::kCoNnt;
  const RunResult connt = run(topo, cfg);

  // 3. Verify exactness against Kruskal (unique MST by tie-broken order).
  const auto reference = graph::kruskal_msf(n, topo.graph().edges());
  std::printf("GHS  exact MST: %s\n",
              graph::same_edge_set(ghs.tree, reference) ? "yes" : "NO");
  std::printf("EOPT exact MST: %s\n",
              graph::same_edge_set(eopt.tree, reference) ? "yes" : "NO");
  std::printf("Co-NNT spanning tree: %s (an O(1)-approximation, not exact)\n",
              graph::is_spanning_tree(n, connt.tree) ? "yes" : "NO");

  // 4. The paper's three performance measures.
  std::printf("\n%-8s %12s %12s %10s %12s %12s\n", "algo", "energy", "messages",
              "rounds", "sum|e|", "sum|e|^2");
  auto row = [&](const char* name, double energy, std::uint64_t msgs,
                 std::uint64_t rounds, const std::vector<graph::Edge>& tree) {
    std::printf("%-8s %12.3f %12llu %10llu %12.3f %12.4f\n", name, energy,
                static_cast<unsigned long long>(msgs),
                static_cast<unsigned long long>(rounds),
                graph::tree_cost(points, tree, 1.0),
                graph::tree_cost(points, tree, 2.0));
  };
  row("GHS", ghs.totals.energy, ghs.totals.messages(), ghs.totals.rounds,
      ghs.tree);
  row("EOPT", eopt.totals.energy, eopt.totals.messages(),
      eopt.totals.rounds, eopt.tree);
  row("Co-NNT", connt.totals.energy, connt.totals.messages(),
      connt.totals.rounds, connt.tree);

  std::printf("\nEOPT spent %.1f%% of GHS's energy (bench/eopt_step_breakdown"
              " itemizes the Thm 5.3 stage shares)\n",
              100.0 * eopt.totals.energy / ghs.totals.energy);
  return 0;
}
