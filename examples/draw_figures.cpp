// Regenerate the paper's qualitative figures as SVG files.
//
//   ./draw_figures [--n=2000] [--seed=29] [--outdir=figures]
//
// Produces:
//   fig1_giant_component.svg — the Fig-1 picture: the percolation-regime
//       deployment with the good-cell backbone shaded and the giant
//       component's nodes highlighted against the trapped small components;
//   mst_vs_connt.svg — the exact MST (EOPT output) and the Co-NNT
//       approximation side by side on the same deployment (overlaid colors);
//   eopt_steps.svg — EOPT Step-1 fragment forest vs the completed MST.
// Expert surface: the stage-1 fragment snapshot needs a bare sync-GHS
// run with custom phase caps, below the emst::run facade; direct driver
// calls are sanctioned in this TU (emst/run.hpp).
#define EMST_NO_DEPRECATE
#include <cstdio>
#include <vector>

#include "emst/eopt/eopt.hpp"
#include "emst/geometry/sampling.hpp"
#include "emst/ghs/sync.hpp"
#include "emst/nnt/connt.hpp"
#include "emst/percolation/analysis.hpp"
#include "emst/rgg/components.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/rgg/rgg.hpp"
#include "emst/support/cli.hpp"
#include "emst/support/rng.hpp"
#include "emst/viz/svg.hpp"

int main(int argc, char** argv) {
  using namespace emst;
  const support::Cli cli(argc, argv,
                         {{"n", "number of nodes (default 2000)"},
                          {"seed", "deployment seed (default 29)"},
                          {"outdir", "output directory (default figures)"}});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 2000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 29));
  const std::string outdir = cli.get("outdir", "figures");

  support::Rng rng(seed);
  const auto points = geometry::uniform_points(n, rng);

  // --- Figure 1: giant component in the percolation regime ---------------
  {
    const auto instance =
        rgg::build_rgg(points, rgg::percolation_radius(n, 1.4));
    const percolation::CellField field(instance.points, instance.radius);
    const auto comps = rgg::connected_components(instance.graph);
    const auto giant = comps.giant();
    std::vector<std::size_t> giant_nodes;
    std::vector<std::size_t> small_nodes;
    for (std::size_t u = 0; u < n; ++u) {
      (comps.label[u] == giant ? giant_nodes : small_nodes).push_back(u);
    }
    viz::SvgCanvas canvas;
    canvas.draw_cell_field(field, "#dde8f7", "#f3f3f3");
    canvas.draw_edges(instance.points, instance.graph.edges(), 0.5, "#b9cbe8");
    canvas.draw_point_subset(instance.points, giant_nodes, 1.6, "#1f5fbf");
    canvas.draw_point_subset(instance.points, small_nodes, 1.6, "#d0342c");
    canvas.draw_label({0.01, 1.02},
                      "Fig 1: giant component (blue) and trapped small "
                      "components (red), r = 1.4*sqrt(1/n)");
    canvas.save(outdir + "/fig1_giant_component.svg");
    std::printf("fig1_giant_component.svg: giant %zu/%zu nodes, %zu "
                "components\n", comps.giant_size(), n, comps.count);
  }

  // --- MST vs Co-NNT ------------------------------------------------------
  const sim::Topology topo(points, rgg::connectivity_radius(n));
  const auto eopt = eopt::run_eopt(topo);
  {
    const auto connt = nnt::run_connt(topo);
    viz::SvgCanvas canvas;
    canvas.draw_edges(points, eopt.run.tree, 1.4, "#1f5fbf");
    canvas.draw_edges(points, connt.tree, 0.7, "#d0342c");
    canvas.draw_points(points, 1.2, "#222");
    canvas.draw_label({0.01, 1.02},
                      "exact MST (blue, EOPT) vs Co-NNT (red) on one "
                      "deployment");
    canvas.save(outdir + "/mst_vs_connt.svg");
    std::printf("mst_vs_connt.svg: MST %zu edges, Co-NNT %zu edges\n",
                eopt.run.tree.size(), connt.tree.size());
  }

  // --- EOPT step structure -------------------------------------------------
  {
    ghs::SyncGhsOptions step1;
    step1.radius = rgg::percolation_radius(n, 1.4);
    const auto stage1 = ghs::run_sync_ghs(topo, step1);
    viz::SvgCanvas canvas;
    canvas.draw_edges(points, eopt.run.tree, 0.6, "#c9c9c9");
    canvas.draw_edges(points, stage1.run.tree, 1.6, "#1f5fbf");
    canvas.draw_points(points, 1.2, "#222");
    canvas.draw_label({0.01, 1.02},
                      "EOPT Step-1 fragment forest (blue) inside the final "
                      "MST (grey)");
    canvas.save(outdir + "/eopt_steps.svg");
    std::printf("eopt_steps.svg: step-1 forest %zu edges (%zu fragments), "
                "final MST %zu edges\n", stage1.run.tree.size(),
                stage1.run.fragments, eopt.run.tree.size());
  }
  return 0;
}
