// emst_cli — run any of the library's algorithms on a random deployment and
// emit one machine-readable record (text or JSON). The scripting entry
// point: sweep drivers, notebooks, and CI smoke checks all shell out to
// this. Results flow through the unified `emst::RunReport` view
// (docs/API_TOUR.md), so every algorithm shares one output path.
//
//   ./emst_cli --algo=eopt --n=2000 --seed=7 --format=json
//   ./emst_cli --algo=ghs,eopt,connt --n=500 --format=text
//   ./emst_cli --algo=eopt --n=1000 --loss=0.1 --arq=1   # lossy channel
//   ./emst_cli --algo=eopt --breakdown=1                 # Thm 5.3 split
//   ./emst_cli --algo=sync --trace=run.jsonl             # telemetry trace
//
// Algorithms: ghs | ghs-cached | sync | sync-probe | eopt | connt |
//             connt-axis | kpnnt
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "emst/eopt/eopt.hpp"
#include "emst/geometry/sampling.hpp"
#include "emst/ghs/classic.hpp"
#include "emst/ghs/sync.hpp"
#include "emst/graph/mst.hpp"
#include "emst/graph/tree_utils.hpp"
#include "emst/nnt/connt.hpp"
#include "emst/nnt/kp_nnt.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/sim/chaos.hpp"
#include "emst/sim/fault.hpp"
#include "emst/sim/oracle.hpp"
#include "emst/sim/reliable.hpp"
#include "emst/sim/telemetry.hpp"
#include "emst/sim/trace_replay.hpp"
#include "emst/support/cli.hpp"
#include "emst/support/json.hpp"
#include "emst/support/rng.hpp"

namespace {

using namespace emst;

/// Shared run knobs assembled from the flags once.
struct RunSetup {
  sim::FaultModel faults;
  sim::ArqOptions arq;
  bool per_node = false;
  bool breakdown = false;
  std::size_t threads = 0;  ///< worker threads (0/1 = single-threaded)
  sim::Telemetry* telemetry = nullptr;  ///< non-null while tracing
  sim::InvariantOracle* oracle = nullptr;  ///< non-null with --oracle=1
};

struct Record {
  std::string algo;
  sim::Accounting totals;
  std::size_t phases = 0;
  sim::FaultStats faults;
  sim::ArqStats arq;
  std::vector<double> per_node;
  sim::EnergyBreakdown breakdown;
  bool breakdown_recorded = false;
  bool hit_phase_cap = false;
  double tree_len = 0.0;
  double tree_sq = 0.0;
  bool spanning = false;
  bool exact = false;
  std::size_t injected_crashes = 0;  ///< chaos-controller kills this run
};

/// Copy the owned parts out of a (non-owning) report before the result that
/// backs it goes out of scope.
void fill_from_report(Record& record, const RunReport& report) {
  record.totals = report.totals;
  record.phases = report.phases;
  record.faults = report.faults;
  record.arq = report.arq;
  record.hit_phase_cap = report.hit_phase_cap;
  if (report.has_per_node()) record.per_node = *report.per_node_energy;
  if (report.breakdown != nullptr) {
    record.breakdown = *report.breakdown;
    record.breakdown_recorded = true;
  }
}

[[noreturn]] void reject_faulty(const std::string& algo) {
  std::cerr << "--loss/--arq apply to the loss-recovering engines only "
               "(sync|sync-probe|eopt), not " << algo
            << " (crash-only --chaos works everywhere but kpnnt)\n";
  std::exit(2);
}

Record run_one(const std::string& algo, const sim::Topology& topo,
               const std::vector<geometry::Point2>& points,
               const std::vector<graph::Edge>& reference,
               const RunSetup& setup) {
  Record record;
  record.algo = algo;
  std::vector<graph::Edge> tree;
  const bool faulty = setup.faults.enabled() || setup.arq.enabled;
  // Classic GHS and Co-NNT survive crash-only (fail-stop) models via epoch
  // restart; message loss / ARQ still needs the sync drivers' recovery.
  const bool lossy = setup.faults.loss > 0.0 || setup.faults.use_gilbert ||
                     setup.arq.enabled;
  if (algo == "ghs" || algo == "ghs-cached") {
    if (lossy) reject_faulty(algo);
    ghs::ClassicGhsOptions options;
    if (algo == "ghs-cached") options.moe = ghs::MoeStrategy::kCachedConfirm;
    options.faults = setup.faults;
    options.oracle = setup.oracle;
    options.track_per_node_energy = setup.per_node;
    options.record_breakdown = setup.breakdown;
    options.threads = setup.threads;
    options.telemetry = setup.telemetry;
    const auto run = ghs::run_classic_ghs(topo, options);
    fill_from_report(record, run.report());
    record.injected_crashes = run.injected_crashes.size();
    tree = run.tree;
  } else if (algo == "sync" || algo == "sync-probe") {
    ghs::SyncGhsOptions options;
    options.neighbor_cache = algo == "sync";
    options.faults = setup.faults;
    options.arq = setup.arq;
    options.oracle = setup.oracle;
    options.track_per_node_energy = setup.per_node;
    options.record_breakdown = setup.breakdown;
    options.threads = setup.threads;
    options.telemetry = setup.telemetry;
    const auto run = ghs::run_sync_ghs(topo, options);
    fill_from_report(record, run.report());
    record.injected_crashes = run.injected_crashes.size();
    tree = run.run.tree;
  } else if (algo == "eopt") {
    eopt::EoptOptions options;
    options.faults = setup.faults;
    options.arq = setup.arq;
    options.oracle = setup.oracle;
    options.track_per_node_energy = setup.per_node;
    options.record_breakdown = setup.breakdown;
    options.threads = setup.threads;
    options.telemetry = setup.telemetry;
    const auto run = eopt::run_eopt(topo, options);
    fill_from_report(record, run.report());
    record.injected_crashes = run.run.injected_crashes.size();
    tree = run.run.tree;
  } else if (algo == "connt" || algo == "connt-axis") {
    if (lossy) reject_faulty(algo);
    nnt::CoNntOptions options;
    if (algo == "connt-axis") options.scheme = nnt::RankScheme::kAxis;
    options.faults = setup.faults;
    options.oracle = setup.oracle;
    options.track_per_node_energy = setup.per_node;
    options.record_breakdown = setup.breakdown;
    options.threads = setup.threads;
    options.telemetry = setup.telemetry;
    const auto run = nnt::run_connt(topo, options);
    fill_from_report(record, run.report());
    record.phases = run.max_probe_rounds;
    record.injected_crashes = run.injected_crashes.size();
    tree = run.tree;
  } else if (algo == "kpnnt") {
    if (faulty) reject_faulty(algo);
    if (setup.telemetry != nullptr) {
      std::cerr << "--trace is not supported for kpnnt\n";
      std::exit(2);
    }
    if (setup.per_node || setup.breakdown) {
      std::cerr << "warning: --per-node/--breakdown not available for kpnnt; "
                   "column omitted\n";
    }
    const auto run = nnt::run_kp_nnt(topo);
    record.totals = run.totals;
    record.phases = run.max_probe_rounds;
    tree = run.tree;
  } else {
    std::cerr << "unknown algorithm: " << algo << '\n';
    std::exit(2);
  }
  if (setup.per_node && record.per_node.empty() && algo != "kpnnt") {
    std::cerr << "warning: per-node energy unavailable for " << algo << '\n';
  }
  record.tree_len = graph::tree_cost(points, tree, 1.0);
  record.tree_sq = graph::tree_cost(points, tree, 2.0);
  record.spanning = graph::is_spanning_tree(points.size(), tree);
  record.exact = graph::same_edge_set(tree, reference);
  return record;
}

double hottest(const std::vector<double>& per_node) {
  double worst = 0.0;
  for (const double e : per_node) worst = std::max(worst, e);
  return worst;
}

/// Phases that actually saw traffic or rounds (skip all-zero rows).
std::vector<sim::PhaseTag> active_phases(const sim::EnergyBreakdown& matrix) {
  std::vector<sim::PhaseTag> out;
  for (std::size_t p = 0; p < sim::EnergyBreakdown::kPhases; ++p) {
    const auto phase = static_cast<sim::PhaseTag>(p);
    const sim::Accounting row = matrix.phase_total(phase);
    if (row.messages() != 0 || row.rounds != 0) out.push_back(phase);
  }
  return out;
}

void json_breakdown(support::JsonWriter& json,
                    const sim::EnergyBreakdown& matrix) {
  json.key("breakdown").begin_object();
  for (const sim::PhaseTag phase : active_phases(matrix)) {
    const sim::Accounting row = matrix.phase_total(phase);
    json.key(sim::phase_tag_name(phase)).begin_object();
    json.key("energy").value(row.energy);
    json.key("messages").value(row.messages());
    json.key("rounds").value(row.rounds);
    json.key("kinds").begin_object();
    for (std::size_t k = 0; k < sim::EnergyBreakdown::kKinds; ++k) {
      const auto kind = static_cast<sim::MsgKind>(k);
      const auto& cell = matrix.cell(phase, kind);
      if (cell.messages == 0) continue;
      json.key(sim::msg_kind_name(kind)).begin_object();
      json.key("energy").value(cell.energy);
      json.key("messages").value(cell.messages);
      json.end_object();
    }
    json.end_object();
    json.end_object();
  }
  json.end_object();
}

void print_breakdown(const Record& record) {
  std::printf("breakdown %s (energy / messages per phase x kind):\n",
              record.algo.c_str());
  for (const sim::PhaseTag phase : active_phases(record.breakdown)) {
    const sim::Accounting row = record.breakdown.phase_total(phase);
    std::printf("  %-7s %12.4f %8llu msgs %6llu rounds |",
                std::string(sim::phase_tag_name(phase)).c_str(), row.energy,
                static_cast<unsigned long long>(row.messages()),
                static_cast<unsigned long long>(row.rounds));
    for (std::size_t k = 0; k < sim::EnergyBreakdown::kKinds; ++k) {
      const auto kind = static_cast<sim::MsgKind>(k);
      const auto& cell = record.breakdown.cell(phase, kind);
      if (cell.messages == 0) continue;
      std::printf(" %s=%.4f/%llu",
                  std::string(sim::msg_kind_name(kind)).c_str(), cell.energy,
                  static_cast<unsigned long long>(cell.messages));
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(
      argc, argv,
      {{"algo", "comma-separated list (ghs|ghs-cached|sync|sync-probe|eopt|"
                "connt|connt-axis|kpnnt); default eopt"},
       {"n", "node count (default 1000)"},
       {"seed", "deployment seed (default 1)"},
       {"radius-factor", "connectivity radius factor (default 1.6)"},
       {"loss", "Bernoulli message-loss probability (default 0; "
                "sync|sync-probe|eopt only, see docs/ROBUSTNESS.md)"},
       {"fault-seed", "fault-layer RNG seed (default 0xFA011A)"},
       {"arq", "1 = stop-and-wait ARQ on every unicast (default 0)"},
       {"chaos", "adversarial crash strategy (kill_leader|sever_core_edge|"
                 "partition_half|crash_wave); crash-only fail-stop, "
                 "any algorithm except kpnnt (docs/ROBUSTNESS.md)"},
       {"oracle", "1 = runtime invariant oracle; exits 1 on any violation "
                  "(docs/ROBUSTNESS.md)"},
       {"per-node", "1 = per-node energy ledger (adds hottest-node column)"},
       {"bits", "1 = bits-on-air column (proto wire codec sizes; zero for "
                "algorithms without a wire format)"},
       {"breakdown", "1 = per-phase x per-kind energy matrix "
                     "(docs/TELEMETRY.md)"},
       {"trace", "write a JSONL telemetry trace to this path "
                 "(single algorithm only; validate with "
                 "scripts/check_trace.py)"},
       {"threads", "worker threads (default 1); results are bitwise "
                   "identical for every value (docs/PARALLEL.md)"},
       {"format", "text | json (default text)"}});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 1000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const double factor = cli.get_double("radius-factor", 1.6);
  const std::string format = cli.get("format", "text");
  RunSetup setup;
  setup.faults.loss = cli.get_double("loss", 0.0);
  if (cli.has("fault-seed"))
    setup.faults.seed = static_cast<std::uint64_t>(cli.get_int("fault-seed", 0));
  setup.arq.enabled = cli.get_int("arq", 0) != 0;
  std::unique_ptr<sim::BudgetedController> chaos_controller;
  if (cli.has("chaos")) {
    chaos_controller = sim::make_controller(cli.get("chaos", ""));
    if (chaos_controller == nullptr) {
      std::cerr << "unknown chaos strategy: " << cli.get("chaos", "")
                << " (try kill_leader|sever_core_edge|partition_half|"
                   "crash_wave)\n";
      return 2;
    }
    setup.faults.controller = chaos_controller.get();
  }
  sim::InvariantOracle oracle;
  if (cli.get_int("oracle", 0) != 0) setup.oracle = &oracle;
  setup.per_node = cli.get_int("per-node", 0) != 0;
  const bool show_bits = cli.get_int("bits", 0) != 0;
  setup.breakdown = cli.get_int("breakdown", 0) != 0;
  setup.threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  const std::string trace_path = cli.get("trace", "");

  std::vector<std::string> algos;
  {
    std::stringstream ss(cli.get("algo", "eopt"));
    std::string piece;
    while (std::getline(ss, piece, ',')) {
      if (!piece.empty()) algos.push_back(piece);
    }
  }
  if (!trace_path.empty() && algos.size() != 1) {
    std::cerr << "--trace records exactly one run; pass a single --algo\n";
    return 2;
  }
  if (chaos_controller != nullptr && algos.size() != 1) {
    std::cerr << "--chaos attaches one adversary (one kill budget) to one "
                 "run; pass a single --algo\n";
    return 2;
  }

  support::Rng rng(seed);
  const auto points = geometry::uniform_points(n, rng);
  const sim::Topology topo(points, rgg::connectivity_radius(n, factor));
  const auto reference = graph::kruskal_msf(n, topo.graph().edges());

  std::ofstream trace_file;
  sim::Telemetry telemetry;
  std::optional<sim::JsonlTraceSink> jsonl;
  if (!trace_path.empty()) {
    trace_file.open(trace_path);
    if (!trace_file) {
      std::cerr << "cannot open trace file: " << trace_path << '\n';
      return 2;
    }
    jsonl.emplace(trace_file);
    telemetry.set_sink(&*jsonl);
    setup.telemetry = &telemetry;
    sim::write_trace_header(trace_file, algos.front(), n, seed, setup.threads);
  }

  std::vector<Record> records;
  records.reserve(algos.size());
  for (const std::string& algo : algos)
    records.push_back(run_one(algo, topo, points, reference, setup));

  if (jsonl.has_value()) {
    const Record& traced = records.front();
    sim::write_trace_summary(trace_file, traced.totals, traced.faults,
                             traced.arq);
  }

  if (format == "json") {
    support::JsonWriter json(std::cout);
    json.begin_object();
    json.key("n").value(n);
    json.key("seed").value(seed);
    json.key("radius").value(topo.max_radius());
    json.key("edges").value(topo.graph().edge_count());
    json.key("connected").value(reference.size() == n - 1);
    json.key("mst_len").value(graph::tree_cost(points, reference, 1.0));
    json.key("mst_sq").value(graph::tree_cost(points, reference, 2.0));
    json.key("runs").begin_array();
    for (const Record& r : records) {
      json.begin_object();
      json.key("algo").value(r.algo);
      json.key("energy").value(r.totals.energy);
      json.key("messages").value(r.totals.messages());
      json.key("unicasts").value(r.totals.unicasts);
      json.key("broadcasts").value(r.totals.broadcasts);
      json.key("rounds").value(r.totals.rounds);
      json.key("bits").value(r.totals.bits);
      json.key("phases").value(r.phases);
      json.key("tree_len").value(r.tree_len);
      json.key("tree_sq").value(r.tree_sq);
      json.key("spanning").value(r.spanning);
      json.key("exact_mst").value(r.exact);
      if (r.faults.lost + r.faults.dropped_crashed + r.faults.suppressed > 0) {
        json.key("lost").value(r.faults.lost);
        json.key("dropped_crashed").value(r.faults.dropped_crashed);
        json.key("suppressed").value(r.faults.suppressed);
      }
      if (r.arq.data_sent > 0) {
        json.key("arq_data").value(r.arq.data_sent);
        json.key("arq_retransmissions").value(r.arq.retransmissions);
        json.key("arq_give_ups").value(r.arq.give_ups);
        json.key("arq_data_bits").value(r.arq.data_bits);
        json.key("arq_ack_bits").value(r.arq.ack_bits);
      }
      if (r.hit_phase_cap) json.key("hit_phase_cap").value(true);
      if (r.injected_crashes > 0)
        json.key("injected_crashes").value(r.injected_crashes);
      if (setup.oracle != nullptr)
        json.key("oracle_violations").value(oracle.violations().size());
      if (!r.per_node.empty())
        json.key("hottest_node_energy").value(hottest(r.per_node));
      if (r.breakdown_recorded) json_breakdown(json, r.breakdown);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    std::cout << '\n';
  } else {
    std::printf("n=%zu seed=%llu radius=%.4f edges=%zu\n", n,
                static_cast<unsigned long long>(seed), topo.max_radius(),
                topo.graph().edge_count());
    const bool show_hot = setup.per_node;
    std::printf("%-12s %12s %10s %8s%s %10s %10s %6s%s\n", "algo", "energy",
                "messages", "rounds", show_bits ? "         bits" : "",
                "sum|e|", "sum|e|^2", "exact", show_hot ? "    hottest" : "");
    for (const Record& r : records) {
      std::printf("%-12s %12.4f %10llu %8llu", r.algo.c_str(), r.totals.energy,
                  static_cast<unsigned long long>(r.totals.messages()),
                  static_cast<unsigned long long>(r.totals.rounds));
      if (show_bits) {
        std::printf(" %12llu",
                    static_cast<unsigned long long>(r.totals.bits));
      }
      std::printf(" %10.4f %10.5f %6s", r.tree_len, r.tree_sq,
                  r.exact ? "yes" : "no");
      if (show_hot) {
        if (r.per_node.empty()) {
          std::printf("          -");
        } else {
          std::printf(" %10.5f", hottest(r.per_node));
        }
      }
      std::printf("\n");
    }
    for (const Record& r : records) {
      if (r.breakdown_recorded && setup.breakdown) print_breakdown(r);
    }
    if (chaos_controller != nullptr) {
      std::printf("chaos: strategy=%s kills=%zu\n",
                  std::string(chaos_controller->name()).c_str(),
                  chaos_controller->kills());
    }
  }
  if (setup.oracle != nullptr && !oracle.ok()) {
    for (const sim::OracleViolation& v : oracle.violations()) {
      std::fprintf(stderr, "oracle violation [%s] round %llu: %s\n",
                   v.invariant.c_str(),
                   static_cast<unsigned long long>(v.round), v.detail.c_str());
    }
    return 1;
  }
  return 0;
}
