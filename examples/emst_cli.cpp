// emst_cli — run any of the library's algorithms on a random deployment and
// emit one machine-readable record (text or JSON). The scripting entry
// point: sweep drivers, notebooks, and CI smoke checks all shell out to
// this.
//
//   ./emst_cli --algo=eopt --n=2000 --seed=7 --format=json
//   ./emst_cli --algo=ghs,eopt,connt --n=500 --format=text
//   ./emst_cli --algo=eopt --n=1000 --loss=0.1 --arq=1   # lossy channel
//
// Algorithms: ghs | ghs-cached | sync | sync-probe | eopt | connt |
//             connt-axis | kpnnt
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "emst/eopt/eopt.hpp"
#include "emst/geometry/sampling.hpp"
#include "emst/ghs/classic.hpp"
#include "emst/ghs/sync.hpp"
#include "emst/graph/mst.hpp"
#include "emst/graph/tree_utils.hpp"
#include "emst/nnt/connt.hpp"
#include "emst/nnt/kp_nnt.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/sim/fault.hpp"
#include "emst/sim/reliable.hpp"
#include "emst/support/cli.hpp"
#include "emst/support/json.hpp"
#include "emst/support/rng.hpp"

namespace {

using namespace emst;

struct Record {
  std::string algo;
  sim::Accounting totals;
  std::size_t phases = 0;
  double tree_len = 0.0;
  double tree_sq = 0.0;
  bool spanning = false;
  bool exact = false;
};

Record run_one(const std::string& algo, const sim::Topology& topo,
               const std::vector<geometry::Point2>& points,
               const std::vector<graph::Edge>& reference,
               const sim::FaultModel& faults, const sim::ArqOptions& arq) {
  Record record;
  record.algo = algo;
  std::vector<graph::Edge> tree;
  const bool faulty = faults.enabled() || arq.enabled;
  if (algo == "ghs" || algo == "ghs-cached") {
    if (faulty) {
      std::cerr << "--loss/--arq apply to the fault-aware engines only "
                   "(sync|sync-probe|eopt), not " << algo << '\n';
      std::exit(2);
    }
    ghs::ClassicGhsOptions options;
    if (algo == "ghs-cached") options.moe = ghs::MoeStrategy::kCachedConfirm;
    const auto run = ghs::run_classic_ghs(topo, options);
    record.totals = run.totals;
    record.phases = run.phases;
    tree = run.tree;
  } else if (algo == "sync" || algo == "sync-probe") {
    ghs::SyncGhsOptions options;
    options.neighbor_cache = algo == "sync";
    options.faults = faults;
    options.arq = arq;
    const auto run = ghs::run_sync_ghs(topo, options);
    record.totals = run.run.totals;
    record.phases = run.run.phases;
    tree = run.run.tree;
  } else if (algo == "eopt") {
    eopt::EoptOptions options;
    options.faults = faults;
    options.arq = arq;
    const auto run = eopt::run_eopt(topo, options);
    record.totals = run.run.totals;
    record.phases = run.run.phases;
    tree = run.run.tree;
  } else if (algo == "connt" || algo == "connt-axis") {
    if (faulty) {
      std::cerr << "--loss/--arq apply to the fault-aware engines only "
                   "(sync|sync-probe|eopt), not " << algo << '\n';
      std::exit(2);
    }
    nnt::CoNntOptions options;
    if (algo == "connt-axis") options.scheme = nnt::RankScheme::kAxis;
    const auto run = nnt::run_connt(topo, options);
    record.totals = run.totals;
    record.phases = run.max_probe_rounds;
    tree = run.tree;
  } else if (algo == "kpnnt") {
    if (faulty) {
      std::cerr << "--loss/--arq apply to the fault-aware engines only "
                   "(sync|sync-probe|eopt), not " << algo << '\n';
      std::exit(2);
    }
    const auto run = nnt::run_kp_nnt(topo);
    record.totals = run.totals;
    record.phases = run.max_probe_rounds;
    tree = run.tree;
  } else {
    std::cerr << "unknown algorithm: " << algo << '\n';
    std::exit(2);
  }
  record.tree_len = graph::tree_cost(points, tree, 1.0);
  record.tree_sq = graph::tree_cost(points, tree, 2.0);
  record.spanning = graph::is_spanning_tree(points.size(), tree);
  record.exact = graph::same_edge_set(tree, reference);
  return record;
}

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(
      argc, argv,
      {{"algo", "comma-separated list (ghs|ghs-cached|sync|sync-probe|eopt|"
                "connt|connt-axis|kpnnt); default eopt"},
       {"n", "node count (default 1000)"},
       {"seed", "deployment seed (default 1)"},
       {"radius-factor", "connectivity radius factor (default 1.6)"},
       {"loss", "Bernoulli message-loss probability (default 0; "
                "sync|sync-probe|eopt only, see docs/ROBUSTNESS.md)"},
       {"fault-seed", "fault-layer RNG seed (default 0xFA011A)"},
       {"arq", "1 = stop-and-wait ARQ on every unicast (default 0)"},
       {"format", "text | json (default text)"}});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 1000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const double factor = cli.get_double("radius-factor", 1.6);
  const std::string format = cli.get("format", "text");
  sim::FaultModel faults;
  faults.loss = cli.get_double("loss", 0.0);
  if (cli.has("fault-seed"))
    faults.seed = static_cast<std::uint64_t>(cli.get_int("fault-seed", 0));
  sim::ArqOptions arq;
  arq.enabled = cli.get_int("arq", 0) != 0;

  std::vector<std::string> algos;
  {
    std::stringstream ss(cli.get("algo", "eopt"));
    std::string piece;
    while (std::getline(ss, piece, ',')) {
      if (!piece.empty()) algos.push_back(piece);
    }
  }

  support::Rng rng(seed);
  const auto points = geometry::uniform_points(n, rng);
  const sim::Topology topo(points, rgg::connectivity_radius(n, factor));
  const auto reference = graph::kruskal_msf(n, topo.graph().edges());

  std::vector<Record> records;
  records.reserve(algos.size());
  for (const std::string& algo : algos)
    records.push_back(run_one(algo, topo, points, reference, faults, arq));

  if (format == "json") {
    support::JsonWriter json(std::cout);
    json.begin_object();
    json.key("n").value(n);
    json.key("seed").value(seed);
    json.key("radius").value(topo.max_radius());
    json.key("edges").value(topo.graph().edge_count());
    json.key("connected").value(reference.size() == n - 1);
    json.key("mst_len").value(graph::tree_cost(points, reference, 1.0));
    json.key("mst_sq").value(graph::tree_cost(points, reference, 2.0));
    json.key("runs").begin_array();
    for (const Record& r : records) {
      json.begin_object();
      json.key("algo").value(r.algo);
      json.key("energy").value(r.totals.energy);
      json.key("messages").value(r.totals.messages());
      json.key("unicasts").value(r.totals.unicasts);
      json.key("broadcasts").value(r.totals.broadcasts);
      json.key("rounds").value(r.totals.rounds);
      json.key("phases").value(r.phases);
      json.key("tree_len").value(r.tree_len);
      json.key("tree_sq").value(r.tree_sq);
      json.key("spanning").value(r.spanning);
      json.key("exact_mst").value(r.exact);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    std::cout << '\n';
  } else {
    std::printf("n=%zu seed=%llu radius=%.4f edges=%zu\n", n,
                static_cast<unsigned long long>(seed), topo.max_radius(),
                topo.graph().edge_count());
    std::printf("%-12s %12s %10s %8s %10s %10s %6s\n", "algo", "energy",
                "messages", "rounds", "sum|e|", "sum|e|^2", "exact");
    for (const Record& r : records) {
      std::printf("%-12s %12.4f %10llu %8llu %10.4f %10.5f %6s\n",
                  r.algo.c_str(), r.totals.energy,
                  static_cast<unsigned long long>(r.totals.messages()),
                  static_cast<unsigned long long>(r.totals.rounds), r.tree_len,
                  r.tree_sq, r.exact ? "yes" : "no");
    }
  }
  return 0;
}
