// emst_cli — run any of the library's algorithms on a random deployment and
// emit one machine-readable record (text or JSON). The scripting entry
// point: sweep drivers, notebooks, and CI smoke checks all shell out to
// this. Every algorithm dispatches through the `emst::run` facade
// (docs/API_TOUR.md) and all run-configuration flags come from the parser
// shared with `emst_serve` (emst/run_flags.hpp), so the two frontends
// accept the same knobs with the same spellings.
//
//   ./emst_cli --algo=eopt --n=2000 --seed=7 --format=json
//   ./emst_cli --algo=ghs,eopt,connt --n=500 --format=text
//   ./emst_cli --algo=eopt --n=1000 --loss=0.1 --arq=1   # lossy channel
//   ./emst_cli --algo=eopt --breakdown=1                 # Thm 5.3 split
//   ./emst_cli --algo=sync --trace=run.jsonl             # telemetry trace
//
// Algorithms: ghs | ghs-cached | sync | sync-probe | eopt | connt |
//             connt-axis | kpnnt
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "emst/geometry/sampling.hpp"
#include "emst/graph/mst.hpp"
#include "emst/graph/tree_utils.hpp"
#include "emst/nnt/kp_nnt.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/run.hpp"
#include "emst/run_flags.hpp"
#include "emst/sim/trace_replay.hpp"
#include "emst/support/cli.hpp"
#include "emst/support/json.hpp"
#include "emst/support/rng.hpp"

namespace {

using namespace emst;

struct Record {
  std::string algo;
  sim::Accounting totals;
  std::size_t phases = 0;
  sim::FaultStats faults;
  sim::ArqStats arq;
  std::vector<double> per_node;
  sim::EnergyBreakdown breakdown;
  bool breakdown_recorded = false;
  bool hit_phase_cap = false;
  double tree_len = 0.0;
  double tree_sq = 0.0;
  bool spanning = false;
  bool exact = false;
  std::size_t injected_crashes = 0;  ///< chaos-controller kills this run
};

Record run_one(const std::string& algo, const sim::Topology& topo,
               const std::vector<geometry::Point2>& points,
               const std::vector<graph::Edge>& reference,
               const RunFlags& flags, sim::Telemetry* telemetry) {
  Record record;
  record.algo = algo;
  std::vector<graph::Edge> tree;
  if (algo == "kpnnt") {
    // KP-NNT predates the facade's driver set: comparison-only baseline,
    // no faults, telemetry, or ledgers.
    if (flags.faults.enabled() || flags.arq.enabled) {
      std::cerr << "kpnnt supports no fault model (crash-only --chaos works "
                   "everywhere else)\n";
      std::exit(2);
    }
    if (telemetry != nullptr) {
      std::cerr << "--trace is not supported for kpnnt\n";
      std::exit(2);
    }
    if (flags.per_node || flags.breakdown) {
      std::cerr << "warning: --per-node/--breakdown not available for kpnnt; "
                   "column omitted\n";
    }
    const auto run = nnt::run_kp_nnt(topo);
    record.totals = run.totals;
    record.phases = run.max_probe_rounds;
    tree = run.tree;
  } else {
    RunConfig cfg;
    if (!parse_driver(algo, cfg.driver)) {
      std::cerr << "unknown algorithm: " << algo << '\n';
      std::exit(2);
    }
    reject_unsupported_faults(flags, cfg.driver);
    flags.apply(cfg);
    cfg.telemetry = telemetry;
    RunResult run = emst::run(topo, cfg);
    record.totals = run.totals;
    record.phases = run.phases;
    record.faults = run.faults;
    record.arq = run.arq;
    record.per_node = std::move(run.per_node_energy);
    record.breakdown = run.breakdown;
    record.breakdown_recorded = run.breakdown_recorded;
    record.hit_phase_cap = run.hit_phase_cap;
    record.injected_crashes = run.injected_crashes.size();
    tree = std::move(run.tree);
  }
  if (flags.per_node && record.per_node.empty() && algo != "kpnnt") {
    std::cerr << "warning: per-node energy unavailable for " << algo << '\n';
  }
  record.tree_len = graph::tree_cost(points, tree, 1.0);
  record.tree_sq = graph::tree_cost(points, tree, 2.0);
  record.spanning = graph::is_spanning_tree(points.size(), tree);
  record.exact = graph::same_edge_set(tree, reference);
  return record;
}

double hottest(const std::vector<double>& per_node) {
  double worst = 0.0;
  for (const double e : per_node) worst = std::max(worst, e);
  return worst;
}

/// Phases that actually saw traffic or rounds (skip all-zero rows).
std::vector<sim::PhaseTag> active_phases(const sim::EnergyBreakdown& matrix) {
  std::vector<sim::PhaseTag> out;
  for (std::size_t p = 0; p < sim::EnergyBreakdown::kPhases; ++p) {
    const auto phase = static_cast<sim::PhaseTag>(p);
    const sim::Accounting row = matrix.phase_total(phase);
    if (row.messages() != 0 || row.rounds != 0) out.push_back(phase);
  }
  return out;
}

void json_breakdown(support::JsonWriter& json,
                    const sim::EnergyBreakdown& matrix) {
  json.key("breakdown").begin_object();
  for (const sim::PhaseTag phase : active_phases(matrix)) {
    const sim::Accounting row = matrix.phase_total(phase);
    json.key(sim::phase_tag_name(phase)).begin_object();
    json.key("energy").value(row.energy);
    json.key("messages").value(row.messages());
    json.key("rounds").value(row.rounds);
    json.key("kinds").begin_object();
    for (std::size_t k = 0; k < sim::EnergyBreakdown::kKinds; ++k) {
      const auto kind = static_cast<sim::MsgKind>(k);
      const auto& cell = matrix.cell(phase, kind);
      if (cell.messages == 0) continue;
      json.key(sim::msg_kind_name(kind)).begin_object();
      json.key("energy").value(cell.energy);
      json.key("messages").value(cell.messages);
      json.end_object();
    }
    json.end_object();
    json.end_object();
  }
  json.end_object();
}

void print_breakdown(const Record& record) {
  std::printf("breakdown %s (energy / messages per phase x kind):\n",
              record.algo.c_str());
  for (const sim::PhaseTag phase : active_phases(record.breakdown)) {
    const sim::Accounting row = record.breakdown.phase_total(phase);
    std::printf("  %-7s %12.4f %8llu msgs %6llu rounds |",
                std::string(sim::phase_tag_name(phase)).c_str(), row.energy,
                static_cast<unsigned long long>(row.messages()),
                static_cast<unsigned long long>(row.rounds));
    for (std::size_t k = 0; k < sim::EnergyBreakdown::kKinds; ++k) {
      const auto kind = static_cast<sim::MsgKind>(k);
      const auto& cell = record.breakdown.cell(phase, kind);
      if (cell.messages == 0) continue;
      std::printf(" %s=%.4f/%llu",
                  std::string(sim::msg_kind_name(kind)).c_str(), cell.energy,
                  static_cast<unsigned long long>(cell.messages));
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> spec = {
      {"algo", "comma-separated list (ghs|ghs-cached|sync|sync-probe|eopt|"
               "connt|connt-axis|kpnnt); default eopt"},
      {"n", "node count (default 1000)"},
      {"seed", "deployment seed (default 1)"},
      {"radius-factor", "connectivity radius factor (default 1.6)"},
      {"bits", "1 = bits-on-air column (proto wire codec sizes; zero for "
               "algorithms without a wire format)"},
      {"format", "text | json (default text)"}};
  merge_run_flag_spec(spec);
  const support::Cli cli(argc, argv, std::move(spec));
  const auto n = static_cast<std::size_t>(cli.get_int("n", 1000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const double factor = cli.get_double("radius-factor", 1.6);
  const std::string format = cli.get("format", "text");
  const bool show_bits = cli.get_int("bits", 0) != 0;
  const RunFlags flags = parse_run_flags(cli);

  std::vector<std::string> algos;
  {
    std::stringstream ss(cli.get("algo", "eopt"));
    std::string piece;
    while (std::getline(ss, piece, ',')) {
      if (!piece.empty()) algos.push_back(piece);
    }
  }
  if (!flags.trace_path.empty() && algos.size() != 1) {
    std::cerr << "--trace records exactly one run; pass a single --algo\n";
    return 2;
  }
  if (flags.chaos_controller != nullptr && algos.size() != 1) {
    std::cerr << "--chaos attaches one adversary (one kill budget) to one "
                 "run; pass a single --algo\n";
    return 2;
  }

  support::Rng rng(seed);
  const auto points = geometry::uniform_points(n, rng);
  const sim::Topology topo(points, rgg::connectivity_radius(n, factor));
  const auto reference = graph::kruskal_msf(n, topo.graph().edges());

  std::ofstream trace_file;
  sim::Telemetry telemetry;
  std::optional<sim::JsonlTraceSink> jsonl;
  sim::Telemetry* telemetry_ptr = nullptr;
  if (!flags.trace_path.empty()) {
    trace_file.open(flags.trace_path);
    if (!trace_file) {
      std::cerr << "cannot open trace file: " << flags.trace_path << '\n';
      return 2;
    }
    jsonl.emplace(trace_file);
    telemetry.set_sink(&*jsonl);
    telemetry_ptr = &telemetry;
    // Record the driver variant that will actually execute (the Co-NNT
    // drivers silently dispatch to their node-actor implementation under
    // faults or ranks) so check_trace.py can validate the dispatch.
    std::string driver_field = algos.front();
    Driver traced_driver;
    if (parse_driver(algos.front(), traced_driver)) {
      emst::RunConfig traced_cfg = emst::config_for(traced_driver);
      flags.apply(traced_cfg);
      driver_field = resolved_driver_name(traced_driver, traced_cfg);
    }
    sim::write_trace_header(trace_file, algos.front(), n, seed, flags.threads,
                            flags.ranks, driver_field);
  }

  std::vector<Record> records;
  records.reserve(algos.size());
  for (const std::string& algo : algos)
    records.push_back(run_one(algo, topo, points, reference, flags,
                              telemetry_ptr));

  if (jsonl.has_value()) {
    const Record& traced = records.front();
    sim::write_trace_summary(trace_file, traced.totals, traced.faults,
                             traced.arq);
  }

  if (format == "json") {
    support::JsonWriter json(std::cout);
    json.begin_object();
    json.key("n").value(n);
    json.key("seed").value(seed);
    json.key("radius").value(topo.max_radius());
    json.key("edges").value(topo.graph().edge_count());
    json.key("connected").value(reference.size() == n - 1);
    json.key("mst_len").value(graph::tree_cost(points, reference, 1.0));
    json.key("mst_sq").value(graph::tree_cost(points, reference, 2.0));
    json.key("runs").begin_array();
    for (const Record& r : records) {
      json.begin_object();
      json.key("algo").value(r.algo);
      json.key("energy").value(r.totals.energy);
      json.key("messages").value(r.totals.messages());
      json.key("unicasts").value(r.totals.unicasts);
      json.key("broadcasts").value(r.totals.broadcasts);
      json.key("rounds").value(r.totals.rounds);
      json.key("bits").value(r.totals.bits);
      json.key("phases").value(r.phases);
      json.key("tree_len").value(r.tree_len);
      json.key("tree_sq").value(r.tree_sq);
      json.key("spanning").value(r.spanning);
      json.key("exact_mst").value(r.exact);
      if (r.faults.lost + r.faults.dropped_crashed + r.faults.suppressed > 0) {
        json.key("lost").value(r.faults.lost);
        json.key("dropped_crashed").value(r.faults.dropped_crashed);
        json.key("suppressed").value(r.faults.suppressed);
      }
      if (r.arq.data_sent > 0) {
        json.key("arq_data").value(r.arq.data_sent);
        json.key("arq_retransmissions").value(r.arq.retransmissions);
        json.key("arq_give_ups").value(r.arq.give_ups);
        json.key("arq_data_bits").value(r.arq.data_bits);
        json.key("arq_ack_bits").value(r.arq.ack_bits);
      }
      if (r.hit_phase_cap) json.key("hit_phase_cap").value(true);
      if (r.injected_crashes > 0)
        json.key("injected_crashes").value(r.injected_crashes);
      if (flags.oracle != nullptr)
        json.key("oracle_violations").value(flags.oracle->violations().size());
      if (!r.per_node.empty())
        json.key("hottest_node_energy").value(hottest(r.per_node));
      if (r.breakdown_recorded) json_breakdown(json, r.breakdown);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    std::cout << '\n';
  } else {
    std::printf("n=%zu seed=%llu radius=%.4f edges=%zu\n", n,
                static_cast<unsigned long long>(seed), topo.max_radius(),
                topo.graph().edge_count());
    const bool show_hot = flags.per_node;
    std::printf("%-12s %12s %10s %8s%s %10s %10s %6s%s\n", "algo", "energy",
                "messages", "rounds", show_bits ? "         bits" : "",
                "sum|e|", "sum|e|^2", "exact", show_hot ? "    hottest" : "");
    for (const Record& r : records) {
      std::printf("%-12s %12.4f %10llu %8llu", r.algo.c_str(), r.totals.energy,
                  static_cast<unsigned long long>(r.totals.messages()),
                  static_cast<unsigned long long>(r.totals.rounds));
      if (show_bits) {
        std::printf(" %12llu",
                    static_cast<unsigned long long>(r.totals.bits));
      }
      std::printf(" %10.4f %10.5f %6s", r.tree_len, r.tree_sq,
                  r.exact ? "yes" : "no");
      if (show_hot) {
        if (r.per_node.empty()) {
          std::printf("          -");
        } else {
          std::printf(" %10.5f", hottest(r.per_node));
        }
      }
      std::printf("\n");
    }
    for (const Record& r : records) {
      if (r.breakdown_recorded && flags.breakdown) print_breakdown(r);
    }
    if (flags.chaos_controller != nullptr) {
      std::printf("chaos: strategy=%s kills=%zu\n",
                  std::string(flags.chaos_controller->name()).c_str(),
                  flags.chaos_controller->kills());
    }
  }
  if (flags.oracle != nullptr && !flags.oracle->ok()) {
    for (const sim::OracleViolation& v : flags.oracle->violations()) {
      std::fprintf(stderr, "oracle violation [%s] round %llu: %s\n",
                   v.invariant.c_str(),
                   static_cast<unsigned long long>(v.round), v.detail.c_str());
    }
    return 1;
  }
  return 0;
}
