// Broadcasting over the MST — the paper's second §II application
// (MST-based broadcast is within a constant factor of the optimal-energy
// broadcast [5, 27]), driven through the library's broadcast planner
// (`emst::apps::plan_broadcast` / `execute_broadcast`).
//
//   ./broadcast_tree [--n=2000] [--seed=13]
//
// A source floods one message to every node. Compared:
//   - MST broadcast: forward along tree edges (n-1 unicasts, Σ d² energy);
//   - MST *wireless* broadcast: each internal node transmits ONCE at the
//     power of its longest child edge (the wireless multicast advantage);
//   - naive flooding: every node rebroadcasts at full radio range once;
//   - single-shot: the source transmits at the range of the farthest node.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "emst/apps/broadcast.hpp"
#include "emst/geometry/sampling.hpp"
#include "emst/run.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/support/cli.hpp"
#include "emst/support/rng.hpp"

int main(int argc, char** argv) {
  using namespace emst;
  const support::Cli cli(argc, argv,
                         {{"n", "number of nodes (default 2000)"},
                          {"seed", "deployment seed (default 13)"}});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 2000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 13));

  support::Rng rng(seed);
  const auto points = geometry::uniform_points(n, rng);
  const sim::Topology topo(points, rgg::connectivity_radius(n));
  const graph::NodeId source = 0;

  RunConfig cfg;
  cfg.driver = Driver::kEopt;
  const RunResult eopt = run(topo, cfg);
  const apps::BroadcastPlan plan =
      apps::plan_broadcast(topo, eopt.tree, source);

  // Execute the wireless-advantage schedule and verify coverage.
  sim::EnergyMeter meter;
  const std::size_t covered = apps::execute_broadcast(topo, plan, meter);

  // Baselines.
  const double r = topo.max_radius();
  const double flood = static_cast<double>(n) * r * r;
  double reach = 0.0;
  for (graph::NodeId u = 0; u < n; ++u)
    reach = std::max(reach, geometry::distance(points[source], points[u]));
  const double single = reach * reach;

  std::printf("broadcast from node %u: covered %zu/%zu nodes in %llu rounds "
              "(radio range %.4f)\n\n",
              source, covered, n,
              static_cast<unsigned long long>(meter.totals().rounds), r);
  std::printf("%-24s %14s %14s\n", "strategy", "energy", "transmissions");
  std::printf("%-24s %14.4f %14zu\n", "MST, unicast per edge",
              plan.unicast_energy, n - 1);
  std::printf("%-24s %14.4f %14zu\n", "MST, wireless advantage",
              plan.wireless_energy, plan.transmissions);
  std::printf("%-24s %14.4f %14zu\n", "naive flooding", flood, n);
  std::printf("%-24s %14.4f %14d\n", "single shot from source", single, 1);

  std::printf("\nreading guide: MST broadcast beats flooding by ~%.0fx here; "
              "[5,27] prove it is within a constant factor of optimal. The "
              "single shot looks cheap in messages but needs Θ(1) energy vs "
              "the MST's Θ(log n / n)-per-edge total.\n",
              flood / std::max(1e-12, plan.wireless_energy));
  return 0;
}
