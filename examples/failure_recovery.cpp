// Node failures and MST repair — the §I dynamism motivation ("the topology
// of these networks can change frequently due to mobility or node failures.
// Communication cost and running time are even more crucial in such a
// dynamic setting").
//
//   ./failure_recovery [--n=2000] [--kill=10] [--seed=23]
//
// Scenario: build the MST with EOPT; a fraction of nodes dies; the MST
// fragments into pieces. Recover two ways and compare the energy bills:
//   - full rebuild: run EOPT from scratch on the survivors;
//   - incremental repair: keep the surviving fragments as the seed forest
//     and run ONE modified-GHS pass at the connectivity radius — exactly
//     EOPT's Step-2 machinery reused as a repair procedure.
// Both must produce the exact MST of the survivor set.
// Expert surface: seeding a repair run from a survivor forest has no
// facade spelling (emst/run.hpp), so this TU calls the drivers directly.
#define EMST_NO_DEPRECATE
#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "emst/eopt/eopt.hpp"
#include "emst/geometry/sampling.hpp"
#include "emst/ghs/sync.hpp"
#include "emst/graph/mst.hpp"
#include "emst/graph/tree_utils.hpp"
#include "emst/graph/union_find.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/support/cli.hpp"
#include "emst/support/rng.hpp"

int main(int argc, char** argv) {
  using namespace emst;
  const support::Cli cli(argc, argv,
                         {{"n", "number of nodes (default 2000)"},
                          {"kill", "percent of nodes to fail (default 10)"},
                          {"seed", "deployment seed (default 23)"}});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 2000));
  const double kill_frac =
      static_cast<double>(cli.get_int("kill", 10)) / 100.0;
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 23));

  support::Rng rng(seed);
  const auto points = geometry::uniform_points(n, rng);
  const sim::Topology topo(points, rgg::connectivity_radius(n));
  const auto original = eopt::run_eopt(topo);
  std::printf("built initial MST over %zu nodes: energy %.3f\n", n,
              original.run.totals.energy);

  // Kill nodes; survivors keep their positions (re-indexed densely).
  std::vector<bool> dead(n, false);
  const auto kill_count = static_cast<std::size_t>(kill_frac * n);
  for (std::size_t k = 0; k < kill_count;) {
    const auto victim = static_cast<std::size_t>(rng.uniform_int(n));
    if (!dead[victim]) {
      dead[victim] = true;
      ++k;
    }
  }
  std::vector<geometry::Point2> survivors;
  std::vector<graph::NodeId> new_id(n, graph::kNoNode);
  for (graph::NodeId u = 0; u < n; ++u) {
    if (!dead[u]) {
      new_id[u] = static_cast<graph::NodeId>(survivors.size());
      survivors.push_back(points[u]);
    }
  }
  const std::size_t m = survivors.size();
  std::printf("killed %zu nodes (%.0f%%), %zu survive\n", kill_count,
              100.0 * kill_frac, m);

  // Surviving tree edges form the seed forest.
  std::vector<graph::Edge> seed_edges;
  for (const graph::Edge& e : original.run.tree) {
    if (!dead[e.u] && !dead[e.v])
      seed_edges.push_back({new_id[e.u], new_id[e.v], e.w});
  }
  // Radio range must cover the thinner survivor density.
  const sim::Topology survivor_topo(survivors, rgg::connectivity_radius(m));
  // Seed edges longer than nothing to worry about: tree edges are short.
  graph::UnionFind dsu(m);
  for (const graph::Edge& e : seed_edges) dsu.unite(e.u, e.v);
  std::printf("surviving MST pieces: %zu fragments\n", dsu.components());

  // --- Option A: full rebuild.
  const auto rebuild = eopt::run_eopt(survivor_topo);

  // --- Option B: incremental repair from the seed forest.
  ghs::FragmentForest forest;
  forest.leader.resize(m);
  for (graph::NodeId u = 0; u < m; ++u) forest.leader[u] = dsu.find(u);
  forest.tree = seed_edges;
  ghs::SyncGhsOptions repair_opts;
  repair_opts.radius = survivor_topo.max_radius();
  // Reuse EOPT's giant-passivity trick: the largest surviving fragment only
  // accepts connections, so its Θ(m) members never flood or re-announce.
  {
    std::unordered_map<graph::NodeId, std::size_t> sizes;
    for (graph::NodeId u = 0; u < m; ++u) ++sizes[forest.leader[u]];
    graph::NodeId biggest = forest.leader[0];
    for (const auto& [leader, size] : sizes) {
      if (size > sizes[biggest]) biggest = leader;
    }
    repair_opts.passive_fragments = {biggest};
  }
  const auto repair = ghs::run_sync_ghs(survivor_topo, repair_opts, forest);

  // --- Option C: seeded EOPT — the two-radius repair. Step 1 merges the
  // pieces at the cheap percolation radius, Step 2 finishes with a passive
  // giant. This is EOPT reused as a repair primitive.
  const auto seeded = eopt::run_eopt(survivor_topo, {}, &forest);

  // All must equal Kruskal on the survivor graph. NOTE: the seed forest is
  // a subset of the survivor MST by the cycle property (it was part of the
  // original MST, and deleting nodes only removes cycles).
  const auto reference =
      graph::kruskal_msf(m, survivor_topo.graph().edges());
  auto report = [&](const char* name, const ghs::MstRunResult& run) {
    std::printf("%-22s: energy %8.3f, messages %7llu, exact=%s\n", name,
                run.totals.energy,
                static_cast<unsigned long long>(run.totals.messages()),
                graph::same_edge_set(run.tree, reference) ? "yes" : "NO");
  };
  std::printf("\n");
  report("full rebuild (EOPT)", rebuild.run);
  report("1-radius repair", repair.run);
  report("seeded EOPT repair", seeded.run);
  std::printf("\nreading guide: the one-radius repair saves messages but pays "
              "r2^2 per message from the start; seeded EOPT keeps the seed "
              "AND the cheap percolation-radius regime — the best of both. "
              "The dynamism story of SI, built from the paper's own pieces.\n");
  return 0;
}
