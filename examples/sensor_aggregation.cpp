// Data aggregation over the MST — the paper's §II motivating application.
//
//   ./sensor_aggregation [--n=2000] [--rounds=100] [--seed=11]
//
// Each sensor holds a reading; a sink collects MIN/MAX/MEAN via the
// library's metered convergecast (`emst::apps::AggregationTree`), combining
// children's values en route — one message per tree edge per round. Three
// collection backbones on the same deployment:
//   - the exact MST built by EOPT (the paper's optimal aggregation tree),
//   - the Co-NNT O(1)-approximate tree (cheaper to build),
//   - direct transmission: every node sends straight to the sink.
// The steady-state per-round energy is Σ d² over the backbone — exactly why
// "MST is the optimal data aggregation tree" [15].
#include <algorithm>
#include <cstdio>
#include <vector>

#include "emst/apps/aggregation.hpp"
#include "emst/geometry/sampling.hpp"
#include "emst/run.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/support/cli.hpp"
#include "emst/support/rng.hpp"

int main(int argc, char** argv) {
  using namespace emst;
  const support::Cli cli(argc, argv,
                         {{"n", "number of sensors (default 2000)"},
                          {"rounds", "aggregation rounds to bill (default 100)"},
                          {"seed", "deployment seed (default 11)"}});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 2000));
  const auto rounds = static_cast<std::size_t>(cli.get_int("rounds", 100));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 11));

  support::Rng rng(seed);
  const auto points = geometry::uniform_points(n, rng);
  std::vector<double> readings(n);
  for (double& r : readings) r = rng.uniform(15.0, 35.0);  // e.g. temperature
  const graph::NodeId sink = 0;

  // Backbone 1: exact MST via EOPT (pay the construction bill once).
  const sim::Topology topo(points, rgg::connectivity_radius(n));
  RunConfig cfg;
  cfg.driver = Driver::kEopt;
  const RunResult eopt = run(topo, cfg);
  // Backbone 2: Co-NNT approximate tree.
  cfg.driver = Driver::kCoNnt;
  const RunResult connt = run(topo, cfg);
  // Backbone 3: direct transmission — a star centred at the sink (needs an
  // unbounded radio view, so its own wide topology).
  const sim::Topology open(points, 1.5);
  std::vector<graph::Edge> star;
  for (graph::NodeId u = 1; u < n; ++u)
    star.push_back({sink, u, geometry::distance(points[sink], points[u])});

  const apps::AggregationTree mst_tree(topo, eopt.tree, sink);
  const apps::AggregationTree nnt_tree(topo, connt.tree, sink);
  const apps::AggregationTree star_tree(open, star, sink);

  sim::EnergyMeter meter;
  const auto mst_agg = mst_tree.collect(readings, meter);
  const auto nnt_agg = nnt_tree.collect(readings, meter);
  const auto star_agg = star_tree.collect(readings, meter);

  std::printf("sensor field: %zu nodes, sink at node %u; true max %.3f, "
              "mean %.3f\n", n, sink,
              *std::max_element(readings.begin(), readings.end()),
              mst_agg.mean());
  std::printf("aggregation correctness: MST max %.3f, NNT max %.3f, star max "
              "%.3f (all equal)\n\n",
              mst_agg.max, nnt_agg.max, star_agg.max);

  std::printf("%-14s %16s %16s %14s %8s\n", "backbone", "build_energy",
              "per_round", "100_rounds", "depth");
  auto row = [&](const char* name, double build,
                 const apps::AggregationTree& tree) {
    const double per_round = tree.round_energy({});
    std::printf("%-14s %16.3f %16.4f %14.3f %8zu\n", name, build, per_round,
                build + static_cast<double>(rounds) * per_round, tree.depth());
  };
  row("EOPT MST", eopt.totals.energy, mst_tree);
  row("Co-NNT", connt.totals.energy, nnt_tree);
  row("direct/star", 0.0, star_tree);

  std::printf("\nreading guide: the star needs no construction but pays "
              "Θ(n·d²_sink) every round; the MST amortizes its build after "
              "a handful of rounds — the paper's aggregation argument.\n");
  return 0;
}
