// Topology control with the MST backbone — the paper's third §I motivation
// ("various topology control algorithms use MSTs to construct well connected
// subgraphs with provable cost relative to the optimum" [24]).
//
//   ./topology_control [--n=2000] [--seed=19]
//
// Compare three communication topologies over the same deployment:
//   - the full RGG at the connectivity radius (what you get for free),
//   - the exact MST built by EOPT (sparsest possible),
//   - the "MST power assignment": every node's radio power is permanently
//     reduced to its longest MST edge — the classic topology-control move.
// Reported: per-node degree, total maintenance energy (Σ of per-node
// idle-listening proxy = assigned power²), and hop-count stretch between
// random pairs.
#include <algorithm>
#include <cstdio>
#include <queue>
#include <vector>

#include "emst/geometry/sampling.hpp"
#include "emst/graph/tree_utils.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/rgg/rgg.hpp"
#include "emst/run.hpp"
#include "emst/support/cli.hpp"
#include "emst/support/rng.hpp"

namespace {

using namespace emst;

/// BFS hop distance in an adjacency structure; SIZE_MAX if unreachable.
std::size_t hops(const std::vector<std::vector<graph::NodeId>>& adj,
                 graph::NodeId s, graph::NodeId t) {
  if (s == t) return 0;
  std::vector<std::size_t> dist(adj.size(), static_cast<std::size_t>(-1));
  std::queue<graph::NodeId> frontier;
  dist[s] = 0;
  frontier.push(s);
  while (!frontier.empty()) {
    const graph::NodeId u = frontier.front();
    frontier.pop();
    for (const graph::NodeId v : adj[u]) {
      if (dist[v] != static_cast<std::size_t>(-1)) continue;
      dist[v] = dist[u] + 1;
      if (v == t) return dist[v];
      frontier.push(v);
    }
  }
  return static_cast<std::size_t>(-1);
}

std::vector<std::vector<graph::NodeId>> adjacency_of(
    std::size_t n, const std::vector<graph::Edge>& edges) {
  std::vector<std::vector<graph::NodeId>> adj(n);
  for (const graph::Edge& e : edges) {
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }
  return adj;
}

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(argc, argv,
                         {{"n", "number of nodes (default 2000)"},
                          {"seed", "deployment seed (default 19)"},
                          {"pairs", "random pairs for stretch (default 200)"}});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 2000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 19));
  const auto pairs = static_cast<std::size_t>(cli.get_int("pairs", 200));

  support::Rng rng(seed);
  const auto points = geometry::uniform_points(n, rng);
  const sim::Topology topo(points, rgg::connectivity_radius(n));
  RunConfig cfg;
  cfg.driver = Driver::kEopt;
  const RunResult eopt = run(topo, cfg);

  // Full-RGG stats.
  const double full_degree =
      2.0 * static_cast<double>(topo.graph().edge_count()) /
      static_cast<double>(n);
  const double r = topo.max_radius();
  const double full_power = static_cast<double>(n) * r * r;

  // MST power assignment: each node's power = its longest tree edge.
  std::vector<double> power(n, 0.0);
  for (const graph::Edge& e : eopt.tree) {
    power[e.u] = std::max(power[e.u], e.w);
    power[e.v] = std::max(power[e.v], e.w);
  }
  double mst_power = 0.0;
  double max_power = 0.0;
  for (const double p : power) {
    mst_power += p * p;
    max_power = std::max(max_power, p);
  }
  const double mst_degree = 2.0 * static_cast<double>(eopt.tree.size()) /
                            static_cast<double>(n);

  // Hop stretch MST vs RGG over random pairs.
  const auto rgg_adj = adjacency_of(n, topo.graph().edges());
  const auto mst_adj = adjacency_of(n, eopt.tree);
  double stretch_total = 0.0;
  double stretch_worst = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < pairs; ++i) {
    const auto s = static_cast<graph::NodeId>(rng.uniform_int(n));
    const auto t = static_cast<graph::NodeId>(rng.uniform_int(n));
    if (s == t) continue;
    const std::size_t h_rgg = hops(rgg_adj, s, t);
    const std::size_t h_mst = hops(mst_adj, s, t);
    if (h_rgg == static_cast<std::size_t>(-1) ||
        h_mst == static_cast<std::size_t>(-1))
      continue;
    const double stretch = static_cast<double>(h_mst) /
                           static_cast<double>(std::max<std::size_t>(1, h_rgg));
    stretch_total += stretch;
    stretch_worst = std::max(stretch_worst, stretch);
    ++counted;
  }

  std::printf("topology control on %zu nodes (radio range %.4f)\n\n", n, r);
  std::printf("%-22s %12s %16s %14s\n", "topology", "avg_degree",
              "power_budget", "max_tx_range");
  std::printf("%-22s %12.1f %16.4f %14.4f\n", "full RGG", full_degree,
              full_power, r);
  std::printf("%-22s %12.1f %16.4f %14.4f\n", "MST power assignment",
              mst_degree, mst_power, max_power);
  std::printf("\nhop stretch over %zu random pairs: mean %.2fx, worst %.2fx\n",
              counted, stretch_total / static_cast<double>(counted),
              stretch_worst);
  std::printf("\nreading guide: the MST assignment cuts the standing power "
              "budget by %.0fx and degree to ~2 at the price of hop stretch "
              "— the [24] trade-off, built on the paper's MST primitive.\n",
              full_power / mst_power);
  return 0;
}
