// Percolation explorer: an ASCII rendition of Figure 1 — watch the giant
// component emerge as the Step-1 radius factor c₁ sweeps across the
// percolation threshold.
//
//   ./percolation_explorer [--n=4000] [--factor=140] [--seed=17] [--sweep]
//
// The grid view uses the paper's r/2 cells: '#' = good cell in the largest
// good cluster (the giant's backbone), '+' = other good cell, '.' =
// occupied-but-not-good, ' ' = empty. Small regions are the connected blanks
// between '#' areas — Thm 5.2 says each traps at most β·log²n nodes.
#include <cmath>
#include <cstdio>
#include <vector>

#include "emst/geometry/sampling.hpp"
#include "emst/percolation/analysis.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/rgg/rgg.hpp"
#include "emst/support/cli.hpp"
#include "emst/support/rng.hpp"

namespace {

using namespace emst;

void render(const rgg::Rgg& instance) {
  const percolation::CellField field(instance.points, instance.radius);
  std::size_t clusters = 0;
  const auto labels = field.good_clusters(clusters);
  // Find the largest cluster.
  std::vector<std::size_t> sizes(clusters, 0);
  for (const std::size_t l : labels) {
    if (l != static_cast<std::size_t>(-1)) ++sizes[l];
  }
  std::size_t giant = 0;
  for (std::size_t c = 1; c < clusters; ++c) {
    if (sizes[c] > sizes[giant]) giant = c;
  }
  const std::size_t side = field.side();
  const std::size_t max_rows = 48;  // keep the terminal readable
  const std::size_t stride = side > max_rows ? (side + max_rows - 1) / max_rows : 1;
  for (std::size_t cy = side; cy-- > 0;) {
    if (cy % stride != 0) continue;
    for (std::size_t cx = 0; cx < side; cx += stride) {
      const std::size_t cell = cy * side + cx;
      char glyph = ' ';
      if (labels[cell] != static_cast<std::size_t>(-1)) {
        glyph = labels[cell] == giant ? '#' : '+';
      } else if (field.occupied(cx, cy)) {
        glyph = '.';
      }
      std::putchar(glyph);
    }
    std::putchar('\n');
  }
}

void report_line(const percolation::Report& report, double factor) {
  std::printf("c1=%.2f: components=%zu giant=%.1f%% (2nd largest %zu nodes, "
              "largest small region %zu nodes, ln^2 n = %.0f)\n",
              factor, report.component_count, 100.0 * report.giant_fraction,
              report.second_component, report.largest_small_region_nodes,
              std::log(static_cast<double>(report.n)) *
                  std::log(static_cast<double>(report.n)));
}

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(
      argc, argv,
      {{"n", "number of nodes (default 4000)"},
       {"factor", "c1 factor x100 for the single view (default 140)"},
       {"seed", "deployment seed (default 17)"},
       {"sweep", "also sweep factors 60..200 and print one line each"}});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 4000));
  const double factor = static_cast<double>(cli.get_int("factor", 140)) / 100.0;
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 17));

  support::Rng rng(seed);
  const auto points = geometry::uniform_points(n, rng);
  const auto instance =
      rgg::build_rgg(points, rgg::percolation_radius(n, factor));
  const auto report = percolation::analyze(instance);

  std::printf("n=%zu, r=%.4f (factor %.2f)\n\n", n, instance.radius, factor);
  render(instance);
  std::printf("\n");
  report_line(report, factor);

  if (cli.get_bool("sweep", false)) {
    std::printf("\nthreshold sweep (same deployment, growing radius):\n");
    for (int f100 = 60; f100 <= 200; f100 += 20) {
      const double f = static_cast<double>(f100) / 100.0;
      const auto swept =
          rgg::build_rgg(points, rgg::percolation_radius(n, f));
      report_line(percolation::analyze(swept), f);
    }
  }
  return 0;
}
