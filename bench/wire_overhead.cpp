// How big are the messages? (paper §III: O(log n)-bit messages)
//
// The paper's energy model assumes every message fits in O(log n) bits —
// node ids, fragment names, levels and coordinates are all logarithmic in
// n. This bench verifies the reproduction honors that budget empirically:
// it runs the wire-measured drivers (classic GHS actor, phase-synchronous
// GHS, Co-NNT actor) over a deployment sweep, records the encoded size of
// every charged frame from the telemetry stream, and checks
//
//   max encoded bits  <=  c * log2(n)      (c = 4, generous constant)
//
// at every n. Mean sizes are reported alongside so growth is visible:
// doubling n should add O(1) bits to the max (one more bit per id/edge
// field), keeping max/log2(n) bounded.
//
// Results go to the console table and the tracked BENCH_wire.json; the
// process exits nonzero if any frame exceeds the bound (CI-enforceable).
// This bench compares the actor-runtime entry point against the direct
// drivers bit-for-bit; it stays on the expert surface.
#define EMST_NO_DEPRECATE
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "emst/geometry/sampling.hpp"
#include "emst/ghs/classic.hpp"
#include "emst/ghs/sync.hpp"
#include "emst/nnt/connt.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/sim/telemetry.hpp"
#include "emst/support/cli.hpp"
#include "emst/support/json.hpp"
#include "emst/support/rng.hpp"
#include "emst/support/table.hpp"

namespace {

using namespace emst;

/// Streams the trace into running max/mean of charged frame sizes — no
/// event buffering, so the sweep's memory stays flat.
class BitsProbe final : public sim::TraceSink {
 public:
  void on_event(const sim::TelemetryEvent& event) override {
    if (event.type != sim::EventType::kUnicast &&
        event.type != sim::EventType::kBroadcast)
      return;
    ++frames_;
    sum_ += event.bits;
    if (event.bits > max_) max_ = event.bits;
    if (event.bits == 0) ++unmeasured_;
  }

  [[nodiscard]] std::uint64_t frames() const noexcept { return frames_; }
  [[nodiscard]] std::uint32_t max_bits() const noexcept { return max_; }
  [[nodiscard]] double mean_bits() const noexcept {
    return frames_ == 0 ? 0.0
                        : static_cast<double>(sum_) /
                              static_cast<double>(frames_);
  }
  [[nodiscard]] std::uint64_t unmeasured() const noexcept {
    return unmeasured_;
  }

 private:
  std::uint64_t frames_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t unmeasured_ = 0;
  std::uint32_t max_ = 0;
};

struct AlgoSample {
  std::string algo;
  std::uint64_t frames = 0;
  std::uint32_t max_bits = 0;
  double mean_bits = 0.0;
  std::uint64_t unmeasured = 0;
};

AlgoSample run_algo(const std::string& algo, const sim::Topology& topo) {
  sim::Telemetry telemetry;
  BitsProbe probe;
  telemetry.set_sink(&probe);
  if (algo == "ghs-cached") {
    ghs::ClassicGhsOptions options;
    options.moe = ghs::MoeStrategy::kCachedConfirm;
    options.telemetry = &telemetry;
    (void)ghs::run_classic_ghs(topo, options);
  } else if (algo == "sync") {
    ghs::SyncGhsOptions options;
    options.telemetry = &telemetry;
    (void)ghs::run_sync_ghs(topo, options);
  } else {  // connt (actor execution: every frame runs through the codec)
    nnt::CoNntOptions options;
    options.telemetry = &telemetry;
    (void)nnt::run_connt_actor(topo, options);
  }
  AlgoSample out;
  out.algo = algo;
  out.frames = probe.frames();
  out.max_bits = probe.max_bits();
  out.mean_bits = probe.mean_bits();
  out.unmeasured = probe.unmeasured();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(
      argc, argv,
      {{"ns", "comma-separated node counts (default 64,128,256,512,1024,2048)"},
       {"seed", "deployment seed (default 2008)"},
       {"c", "bound constant: max_bits <= c*log2(n) (default 4.0)"},
       {"json", "output JSON path (default BENCH_wire.json)"},
       {"quick", "1 = CI-sized sweep (64,256)"}});
  const bool quick = cli.get_int("quick", 0) != 0;
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2008));
  const double c_bound = cli.get_double("c", 4.0);
  const std::string json_path = cli.get("json", "BENCH_wire.json");
  std::vector<std::size_t> ns;
  {
    std::stringstream ss(
        cli.get("ns", quick ? "64,256" : "64,128,256,512,1024,2048"));
    std::string piece;
    while (std::getline(ss, piece, ',')) {
      if (!piece.empty()) ns.push_back(std::stoul(piece));
    }
  }
  const std::vector<std::string> algos = {"ghs-cached", "sync", "connt"};

  std::printf("wire overhead: max/mean encoded frame size vs %.1f*log2(n)\n\n",
              c_bound);
  support::Table table({"n", "edges", "algo", "frames", "max_bits",
                        "mean_bits", "bound", "ok"});

  struct Row {
    std::size_t n = 0;
    std::size_t edges = 0;
    double bound = 0.0;
    std::vector<AlgoSample> samples;
  };
  std::vector<Row> rows;
  bool all_ok = true;

  for (const std::size_t n : ns) {
    support::Rng rng(seed);
    const auto points = geometry::uniform_points(n, rng);
    const sim::Topology topo(points, rgg::connectivity_radius(n, 1.6));
    Row row;
    row.n = n;
    row.edges = topo.graph().edge_count();
    row.bound = c_bound * std::log2(static_cast<double>(n));
    for (const std::string& algo : algos) {
      AlgoSample sample = run_algo(algo, topo);
      const bool ok =
          static_cast<double>(sample.max_bits) <= row.bound &&
          sample.unmeasured == 0 && sample.frames > 0;
      all_ok &= ok;
      table.add_row({static_cast<double>(n), static_cast<double>(row.edges),
                     sample.algo, static_cast<double>(sample.frames),
                     static_cast<double>(sample.max_bits), sample.mean_bits,
                     row.bound, std::string(ok ? "yes" : "NO")});
      row.samples.push_back(std::move(sample));
    }
    rows.push_back(std::move(row));
  }
  table.print(std::cout);

  {
    std::ofstream os(json_path);
    if (!os) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    support::JsonWriter json(os);
    json.begin_object();
    json.key("seed").value(seed);
    json.key("c_bound").value(c_bound);
    json.key("all_within_bound").value(all_ok);
    json.key("sweep").begin_array();
    for (const Row& row : rows) {
      json.begin_object();
      json.key("n").value(static_cast<std::uint64_t>(row.n));
      json.key("edges").value(static_cast<std::uint64_t>(row.edges));
      json.key("bound_bits").value(row.bound);
      json.key("algos").begin_array();
      for (const AlgoSample& s : row.samples) {
        json.begin_object();
        json.key("algo").value(s.algo);
        json.key("frames").value(s.frames);
        json.key("max_bits").value(static_cast<std::uint64_t>(s.max_bits));
        json.key("mean_bits").value(s.mean_bits);
        json.key("within_bound").value(
            static_cast<double>(s.max_bits) <= row.bound && s.unmeasured == 0);
        json.end_object();
      }
      json.end_array();
      json.end_object();
    }
    json.end_array();
    json.end_object();
    os << '\n';
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  std::printf("\nreading guide: every frame an algorithm puts on the air is "
              "encoded through the proto codec; max_bits growing by ~O(1) "
              "per doubling of n (one more bit per id/edge field) while the "
              "bound grows by %.1f confirms the paper's O(log n)-bit message "
              "assumption holds in the implementation.\n",
              c_bound);
  if (!all_ok) {
    std::fprintf(stderr, "error: a frame exceeded %.1f*log2(n) bits (or a "
                         "charge went unmeasured)\n",
                 c_bound);
    return 1;
  }
  return 0;
}
