// google-benchmark for the simulator's message engine: calendar-queue
// Network vs. the seed sort-per-round ReferenceNetwork, on the enqueue and
// collect_round paths, synchronous and delayed, at 1k / 10k / 100k messages.
//
// scripts/bench_perf.sh runs this binary and writes BENCH_sim.json at the
// repo root so the perf trajectory is tracked in-tree; docs/PERF.md explains
// how to read it. The acceptance bar for the calendar queue was ≥3× on the
// delayed collect path at 100k messages (BM_*Pump/100000/5).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <utility>
#include <vector>

#include "emst/rgg/radii.hpp"
#include "emst/geometry/sampling.hpp"
#include "emst/sim/network.hpp"
#include "emst/sim/reference_network.hpp"
#include "emst/support/rng.hpp"

namespace {

using namespace emst;

using Payload = std::uint64_t;
constexpr std::size_t kNodes = 4096;
constexpr std::size_t kMaxMessages = 100000;
constexpr std::size_t kSendRounds = 32;

struct World {
  sim::Topology topo;
  std::vector<std::pair<sim::NodeId, sim::NodeId>> sched;  ///< in-range pairs
};

const World& world() {
  static World w = [] {
    support::Rng rng(2026);
    const auto points = geometry::uniform_points(kNodes, rng);
    sim::Topology topo(points, rgg::connectivity_radius(kNodes));
    std::vector<std::pair<sim::NodeId, sim::NodeId>> sched;
    sched.reserve(kMaxMessages);
    while (sched.size() < kMaxMessages) {
      const auto u = static_cast<sim::NodeId>(rng.uniform_int(kNodes));
      const auto nbs = topo.neighbors(u);
      if (nbs.empty()) continue;
      sched.emplace_back(u, nbs[rng.uniform_int(nbs.size())].id);
    }
    return World{std::move(topo), std::move(sched)};
  }();
  return w;
}

sim::DelayModel delay_model(std::uint32_t max_extra_delay) {
  return {max_extra_delay, 0xbe7cULL};
}

/// Steady-state workload: send messages over kSendRounds rounds, collecting
/// each round, then drain. This is the shape every GHS/EOPT/NNT run has —
/// the in-flight set persists across rounds, which is exactly what the seed
/// engine re-sorted in full every collect_round().
template <typename Net>
void run_pump(benchmark::State& state) {
  const auto messages = static_cast<std::size_t>(state.range(0));
  const auto delay = static_cast<std::uint32_t>(state.range(1));
  const World& w = world();
  const std::size_t per_round = (messages + kSendRounds - 1) / kSendRounds;
  for (auto _ : state) {
    Net net(w.topo, {}, false, delay_model(delay));
    std::size_t sent = 0;
    std::size_t delivered = 0;
    while (sent < messages || net.pending()) {
      const std::size_t stop = std::min(messages, sent + per_round);
      for (; sent < stop; ++sent)
        net.unicast(w.sched[sent].first, w.sched[sent].second, sent);
      delivered += net.collect_round().size();
    }
    if (delivered != messages) std::abort();  // engine lost messages
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(messages));
}

/// Enqueue cost in isolation: construction and draining are untimed.
template <typename Net>
void run_enqueue(benchmark::State& state) {
  const auto messages = static_cast<std::size_t>(state.range(0));
  const auto delay = static_cast<std::uint32_t>(state.range(1));
  const World& w = world();
  for (auto _ : state) {
    state.PauseTiming();
    Net net(w.topo, {}, false, delay_model(delay));
    state.ResumeTiming();
    for (std::size_t i = 0; i < messages; ++i)
      net.unicast(w.sched[i].first, w.sched[i].second, i);
    state.PauseTiming();
    while (net.pending()) benchmark::DoNotOptimize(net.collect_round());
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(messages));
}

void BM_CalendarPump(benchmark::State& state) {
  run_pump<sim::Network<Payload>>(state);
}
void BM_LegacyPump(benchmark::State& state) {
  run_pump<sim::ReferenceNetwork<Payload>>(state);
}
void BM_CalendarEnqueue(benchmark::State& state) {
  run_enqueue<sim::Network<Payload>>(state);
}
void BM_LegacyEnqueue(benchmark::State& state) {
  run_enqueue<sim::ReferenceNetwork<Payload>>(state);
}

const std::vector<std::vector<std::int64_t>> kArgs = {
    {1000, 10000, 100000},  // messages
    {0, 5},                 // max extra delay (0 = synchronous)
};

BENCHMARK(BM_CalendarPump)->ArgsProduct(kArgs)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_LegacyPump)->ArgsProduct(kArgs)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CalendarEnqueue)->ArgsProduct(kArgs)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_LegacyEnqueue)->ArgsProduct(kArgs)->Unit(benchmark::kMicrosecond);

}  // namespace
