// The energy price of reliability (docs/ROBUSTNESS.md).
//
// The paper's model assumes every transmission succeeds; this bench measures
// what the headline comparison costs when it doesn't. For each Bernoulli
// loss rate in {0, 0.01, 0.05, 0.1, 0.2} it runs EOPT and single-phase GHS
// (both at r₂, both with stop-and-wait ARQ) over the same random fields and
// reports mean energy, the overhead factor vs the fault-free no-ARQ
// baseline, exactness, and the ARQ traffic that bought it. Results go to
// the console table and — for the repo's tracked perf/robustness trajectory
// — to BENCH_faults.json.
//
// Reading guide: the loss=0 row isolates the pure protocol tax (one ACK per
// DATA plus the fault-mode confirmation probes); rising loss adds
// retransmissions on top. EOPT keeps its energy advantage at every loss
// rate because ARQ multiplies each algorithm's traffic by the same
// per-message expectation — reliability is a constant factor, not a
// reordering.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <vector>

#include "emst/eopt/eopt.hpp"
#include "emst/geometry/sampling.hpp"
#include "emst/ghs/sync.hpp"
#include "emst/graph/mst.hpp"
#include "emst/graph/tree_utils.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/run.hpp"
#include "emst/support/cli.hpp"
#include "emst/support/json.hpp"
#include "emst/support/parallel.hpp"
#include "emst/support/rng.hpp"
#include "emst/support/stats.hpp"
#include "emst/support/table.hpp"

namespace {

struct AlgoOut {
  double energy = 0.0;
  double retransmissions = 0.0;
  double give_ups = 0.0;
  double lost = 0.0;
  bool exact = false;
  bool capped = false;
};

struct TrialOut {
  AlgoOut eopt;
  AlgoOut ghs;
};

struct SweepRow {
  double loss = 0.0;
  emst::support::RunningStats eopt_energy, ghs_energy;
  emst::support::RunningStats eopt_retx, ghs_retx;
  emst::support::RunningStats eopt_giveups, ghs_giveups;
  std::size_t eopt_exact = 0, ghs_exact = 0, capped = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace emst;
  const support::Cli cli(argc, argv,
                         {{"n", "node count (default 1024)"},
                          {"trials", "trials per loss rate (default 10)"},
                          {"seed", "master seed (default 2008)"},
                          {"json", "output JSON path (default BENCH_faults.json)"},
                          {"csv", "write CSV to this path"}});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 1024));
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 10));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2008));
  const std::string json_path = cli.get("json", "BENCH_faults.json");

  const std::vector<double> losses = {0.0, 0.01, 0.05, 0.1, 0.2};

  std::printf("energy price of reliability at n=%zu: EOPT vs single-phase "
              "GHS, stop-and-wait ARQ, Bernoulli loss sweep\n\n", n);

  // Fault-free, no-ARQ baseline — the paper's model, and the denominator of
  // every overhead factor below.
  support::RunningStats base_eopt, base_ghs;
  {
    std::vector<TrialOut> outs(trials);
    support::parallel_for(trials, [&](std::size_t t) {
      support::Rng rng(support::Rng::stream_seed(seed, t));
      const sim::Topology topo =
          eopt::eopt_topology(geometry::uniform_points(n, rng));
      outs[t].eopt.energy = run(topo, config_for(Driver::kEopt)).totals.energy;
      outs[t].ghs.energy =
          run(topo, config_for(Driver::kSyncGhs)).totals.energy;
    });
    for (const TrialOut& o : outs) {
      base_eopt.add(o.eopt.energy);
      base_ghs.add(o.ghs.energy);
    }
  }

  std::vector<SweepRow> rows(losses.size());
  for (std::size_t li = 0; li < losses.size(); ++li) {
    const double loss = losses[li];
    rows[li].loss = loss;
    std::vector<TrialOut> outs(trials);
    support::parallel_for(trials, [&](std::size_t t) {
      // Same point fields as the baseline (same stream seeds), so overhead
      // factors compare like with like.
      support::Rng rng(support::Rng::stream_seed(seed, t));
      const auto points = geometry::uniform_points(n, rng);
      const sim::Topology topo = eopt::eopt_topology(points);
      const auto reference = graph::kruskal_msf(n, topo.graph().edges());

      RunConfig eo = config_for(Driver::kEopt);
      eo.faults.loss = loss;
      eo.faults.seed = support::Rng::stream_seed(seed ^ 0xFA17ULL, t);
      eo.arq.enabled = true;
      const RunResult eres = run(topo, eo);
      outs[t].eopt = {eres.totals.energy,
                      static_cast<double>(eres.arq.retransmissions),
                      static_cast<double>(eres.arq.give_ups),
                      static_cast<double>(eres.faults.lost),
                      graph::same_edge_set(eres.tree, reference),
                      eres.hit_phase_cap};

      RunConfig go = config_for(Driver::kSyncGhs);
      go.faults.loss = loss;
      go.faults.seed = support::Rng::stream_seed(seed ^ 0x6B5ULL, t);
      go.arq.enabled = true;
      const RunResult gres = run(topo, go);
      outs[t].ghs = {gres.totals.energy,
                     static_cast<double>(gres.arq.retransmissions),
                     static_cast<double>(gres.arq.give_ups),
                     static_cast<double>(gres.faults.lost),
                     graph::same_edge_set(gres.tree, reference),
                     gres.hit_phase_cap};
    });
    for (const TrialOut& o : outs) {
      rows[li].eopt_energy.add(o.eopt.energy);
      rows[li].ghs_energy.add(o.ghs.energy);
      rows[li].eopt_retx.add(o.eopt.retransmissions);
      rows[li].ghs_retx.add(o.ghs.retransmissions);
      rows[li].eopt_giveups.add(o.eopt.give_ups);
      rows[li].ghs_giveups.add(o.ghs.give_ups);
      if (o.eopt.exact) ++rows[li].eopt_exact;
      if (o.ghs.exact) ++rows[li].ghs_exact;
      if (o.eopt.capped || o.ghs.capped) ++rows[li].capped;
    }
  }

  support::Table table({"loss", "EOPT", "EOPT_ovh", "GHS", "GHS_ovh",
                        "EOPT_exact", "GHS_exact", "EOPT_retx", "GHS_retx"});
  table.set_precision(2, 3);
  table.set_precision(4, 3);
  for (const SweepRow& row : rows) {
    table.add_row({std::to_string(row.loss),
                   row.eopt_energy.mean(),
                   row.eopt_energy.mean() / base_eopt.mean(),
                   row.ghs_energy.mean(),
                   row.ghs_energy.mean() / base_ghs.mean(),
                   std::string(std::to_string(row.eopt_exact) + "/" +
                               std::to_string(trials)),
                   std::string(std::to_string(row.ghs_exact) + "/" +
                               std::to_string(trials)),
                   row.eopt_retx.mean(), row.ghs_retx.mean()});
  }
  table.print(std::cout);
  if (cli.has("csv")) table.save_csv(cli.get("csv", ""));

  {
    std::ofstream os(json_path);
    if (!os) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    support::JsonWriter json(os);
    json.begin_object();
    json.key("n").value(static_cast<std::uint64_t>(n));
    json.key("trials").value(static_cast<std::uint64_t>(trials));
    json.key("seed").value(seed);
    json.key("arq").begin_object();
    json.key("max_retries").value(static_cast<std::uint64_t>(sim::ArqOptions{}.max_retries));
    json.key("rto_rounds").value(static_cast<std::uint64_t>(sim::ArqOptions{}.rto_rounds));
    json.key("backoff").value(static_cast<std::uint64_t>(sim::ArqOptions{}.backoff));
    json.end_object();
    json.key("baseline").begin_object();
    json.key("eopt_energy").value(base_eopt.mean());
    json.key("ghs_energy").value(base_ghs.mean());
    json.end_object();
    json.key("sweep").begin_array();
    for (const SweepRow& row : rows) {
      json.begin_object();
      json.key("loss").value(row.loss);
      json.key("eopt").begin_object();
      json.key("energy").value(row.eopt_energy.mean());
      json.key("energy_stddev").value(row.eopt_energy.stddev());
      json.key("overhead").value(row.eopt_energy.mean() / base_eopt.mean());
      json.key("exact").value(static_cast<std::uint64_t>(row.eopt_exact));
      json.key("retransmissions").value(row.eopt_retx.mean());
      json.key("give_ups").value(row.eopt_giveups.mean());
      json.end_object();
      json.key("ghs").begin_object();
      json.key("energy").value(row.ghs_energy.mean());
      json.key("energy_stddev").value(row.ghs_energy.stddev());
      json.key("overhead").value(row.ghs_energy.mean() / base_ghs.mean());
      json.key("exact").value(static_cast<std::uint64_t>(row.ghs_exact));
      json.key("retransmissions").value(row.ghs_retx.mean());
      json.key("give_ups").value(row.ghs_giveups.mean());
      json.end_object();
      json.key("hit_phase_cap").value(static_cast<std::uint64_t>(row.capped));
      json.end_object();
    }
    json.end_array();
    json.end_object();
    os << '\n';
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  std::printf("\nreading guide: the loss=0 overhead is the pure reliability "
              "tax (ACKs + fault-mode confirmation probes); each loss step "
              "adds retransmissions. EOPT's advantage over GHS survives the "
              "whole sweep — ARQ scales both by the same per-message "
              "expectation.\n");
  return 0;
}
