// Serve-session throughput: how fast the resident Session (serve/session.hpp)
// absorbs mutation batches, and how *local* the incremental repair stays.
//
// Two phases, mirroring scripts/validate_bench.py's check_serve contract:
//
//   verify — a churn workload with every commit differential-checked against
//            graph::kruskal_msf from outside the session. The tracked record
//            carries the outcome as `incremental_exact`; a false flag must
//            never be committed.
//   timed  — the same workload shape at full size with verification off,
//            measuring requests/sec through queue+commit and the mean
//            nodes-touched-per-update locality metric. Incremental commits
//            are reported separately from full rebuilds: the whole point of
//            the serve path is that a constant-size batch touches o(n) nodes.
//
// Results go to the console table and the tracked BENCH_serve.json.
//
//   bench/serve_throughput --n=4000 --batches=200 --ops=4 \
//       --json=BENCH_serve.json
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "emst/geometry/sampling.hpp"
#include "emst/graph/edge.hpp"
#include "emst/serve/session.hpp"
#include "emst/support/cli.hpp"
#include "emst/support/json.hpp"
#include "emst/support/rng.hpp"
#include "emst/support/table.hpp"

namespace {

using namespace emst;
using Clock = std::chrono::steady_clock;

serve::NodeId random_alive(const serve::Session& s, support::Rng& rng) {
  if (s.alive_count() == 0) return graph::kNoNode;
  for (int tries = 0; tries < 256; ++tries) {
    const auto id = static_cast<serve::NodeId>(rng.uniform_int(s.capacity()));
    if (s.alive(id)) return id;
  }
  return graph::kNoNode;
}

/// Queue one batch of `ops` mixed mutations (add / remove / move in equal
/// shares); returns the number actually admitted.
std::size_t queue_batch(serve::Session& s, support::Rng& rng,
                        std::size_t ops) {
  std::size_t admitted = 0;
  for (std::size_t k = 0; k < ops; ++k) {
    const std::uint64_t pick = rng.uniform_int(3);
    if (pick == 0) {
      if (s.queue_add({rng.uniform(), rng.uniform()}) != graph::kNoNode)
        ++admitted;
    } else if (pick == 1) {
      const serve::NodeId id = random_alive(s, rng);
      if (id != graph::kNoNode && s.queue_remove(id)) ++admitted;
    } else {
      const serve::NodeId id = random_alive(s, rng);
      if (id != graph::kNoNode &&
          s.queue_move(id, {rng.uniform(), rng.uniform()}))
        ++admitted;
    }
  }
  return admitted;
}

struct PhaseOutcome {
  double wall_ms = 0.0;
  std::uint64_t admitted = 0;
  std::uint64_t commits = 0;
  std::uint64_t rebuilds = 0;
  std::uint64_t nodes_touched = 0;
  std::uint64_t incremental_commits = 0;
  std::uint64_t incremental_nodes_touched = 0;
  bool exact = true;

  [[nodiscard]] double requests_per_sec() const {
    return wall_ms > 0.0 ? 1e3 * static_cast<double>(admitted) / wall_ms : 0.0;
  }
  [[nodiscard]] double mean_touched() const {
    return commits > 0
               ? static_cast<double>(nodes_touched) /
                     static_cast<double>(commits)
               : 0.0;
  }
  [[nodiscard]] double mean_touched_incremental() const {
    return incremental_commits > 0
               ? static_cast<double>(incremental_nodes_touched) /
                     static_cast<double>(incremental_commits)
               : 0.0;
  }
};

/// The external differential (the bench's own suspenders; the session's
/// verify_after_commit assert would abort instead of reporting).
bool tree_matches_reference(const serve::Session& s) {
  const std::vector<graph::Edge> ref = s.reference_msf();
  if (s.tree().size() != ref.size()) return false;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (!(s.tree()[i] == ref[i]) || s.tree()[i].w != ref[i].w) return false;
  }
  return true;
}

PhaseOutcome run_phase(std::size_t n, std::uint64_t seed, std::size_t batches,
                       std::size_t ops, bool verify) {
  support::Rng point_rng(seed);
  serve::SessionConfig cfg;
  cfg.run.driver = Driver::kEopt;
  serve::Session s(geometry::uniform_points(n, point_rng), cfg);

  support::Rng rng(support::Rng::stream_seed(seed, 1));
  PhaseOutcome out;
  const auto start = Clock::now();
  for (std::size_t b = 0; b < batches; ++b) {
    out.admitted += queue_batch(s, rng, ops);
    const serve::CommitOutcome commit = s.commit();
    ++out.commits;
    out.nodes_touched += commit.nodes_touched;
    if (commit.rebuilt) {
      ++out.rebuilds;
    } else {
      ++out.incremental_commits;
      out.incremental_nodes_touched += commit.nodes_touched;
    }
    if (verify && !tree_matches_reference(s)) out.exact = false;
  }
  out.wall_ms = std::chrono::duration<double, std::milli>(Clock::now() - start)
                    .count();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(
      argc, argv,
      {{"n", "deployment size for the timed phase (default 4000)"},
       {"verify-n", "deployment size for the verified phase (default 300)"},
       {"batches", "mutation batches per phase (default 200)"},
       {"ops", "mutation requests per batch (default 4)"},
       {"seed", "deployment + workload seed (default 2008)"},
       {"json", "output JSON path (default BENCH_serve.json)"},
       {"quick", "1 = CI-sized run (n=800, 40 batches)"}});
  const bool quick = cli.get_int("quick", 0) != 0;
  const auto n = static_cast<std::size_t>(cli.get_int("n", quick ? 800 : 4000));
  const auto verify_n =
      static_cast<std::size_t>(cli.get_int("verify-n", quick ? 150 : 300));
  const auto batches =
      static_cast<std::size_t>(cli.get_int("batches", quick ? 40 : 200));
  const auto ops = static_cast<std::size_t>(cli.get_int("ops", 4));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2008));
  const std::string json_path = cli.get("json", "BENCH_serve.json");

  std::printf("serve throughput: verify n=%zu, timed n=%zu, %zu batches x "
              "%zu ops, seed %llu\n\n",
              verify_n, n, batches, ops,
              static_cast<unsigned long long>(seed));

  const PhaseOutcome verified =
      run_phase(verify_n, seed, batches, ops, /*verify=*/true);
  const PhaseOutcome timed =
      run_phase(n, support::Rng::stream_seed(seed, 2), batches, ops,
                /*verify=*/false);

  support::Table table({"phase", "n", "req/s", "commits", "rebuilds",
                        "touched/commit", "touched/incr"});
  table.set_precision(2, 0);
  table.set_precision(5, 1);
  table.set_precision(6, 1);
  table.add_row({"verify", static_cast<long long>(verify_n),
                 verified.requests_per_sec(),
                 static_cast<long long>(verified.commits),
                 static_cast<long long>(verified.rebuilds),
                 verified.mean_touched(),
                 verified.mean_touched_incremental()});
  table.add_row({"timed", static_cast<long long>(n),
                 timed.requests_per_sec(),
                 static_cast<long long>(timed.commits),
                 static_cast<long long>(timed.rebuilds),
                 timed.mean_touched(), timed.mean_touched_incremental()});
  table.print(std::cout);
  std::printf("\nincremental_exact: %s (every verified commit equals "
              "kruskal_msf over the alive deployment)\n",
              verified.exact ? "true" : "FALSE");

  if (!verified.exact) {
    std::fprintf(stderr, "error: maintained tree diverged from the "
                         "differential reference — not writing %s\n",
                 json_path.c_str());
    return 1;
  }

  std::ofstream os(json_path);
  if (!os) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
    return 1;
  }
  support::JsonWriter json(os);
  json.begin_object();
  json.key("seed").value(seed);
  json.key("batches").value(static_cast<std::uint64_t>(batches));
  json.key("ops_per_batch").value(static_cast<std::uint64_t>(ops));
  json.key("incremental_exact").value(verified.exact);
  json.key("verify").begin_object();
  json.key("n").value(static_cast<std::uint64_t>(verify_n));
  json.key("commits").value(verified.commits);
  json.key("rebuilds").value(verified.rebuilds);
  json.key("requests_per_sec").value(verified.requests_per_sec());
  json.key("mean_nodes_touched").value(verified.mean_touched());
  json.end_object();
  json.key("timed").begin_object();
  json.key("n").value(static_cast<std::uint64_t>(n));
  json.key("wall_ms").value(timed.wall_ms);
  json.key("admitted").value(timed.admitted);
  json.key("commits").value(timed.commits);
  json.key("rebuilds").value(timed.rebuilds);
  json.key("requests_per_sec").value(timed.requests_per_sec());
  json.key("mean_nodes_touched").value(timed.mean_touched());
  json.key("incremental_commits").value(timed.incremental_commits);
  json.key("mean_nodes_touched_incremental")
      .value(timed.mean_touched_incremental());
  json.end_object();
  json.end_object();
  os << "\n";
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
