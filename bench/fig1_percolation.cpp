// Figure 1 / Theorem 5.2 reproduction: the giant-component structure of the
// sub-connectivity RGG r = c·√(1/n).
//
// Expected shape: below the percolation threshold (factor ≲ 1.1) the giant
// fraction is small; at the paper's experimental factor 1.4 a unique giant
// holds a Θ(1) fraction of nodes while the largest non-giant component and
// the largest small-region population stay far below β·ln² n.
#include <cstdio>
#include <iostream>

#include "emst/harness/figures.hpp"
#include "emst/support/cli.hpp"

int main(int argc, char** argv) {
  using namespace emst;
  const support::Cli cli(argc, argv,
                         {{"ns", "comma-separated node counts"},
                          {"factors", "comma-separated c1 factors x100 (e.g. 80,110,140)"},
                          {"trials", "trials per point (default 10)"},
                          {"seed", "master seed (default 2008)"},
                          {"csv", "write CSV to this path"}});
  const auto ns64 = cli.get_int_list("ns", {1000, 5000, 20000});
  std::vector<std::size_t> ns(ns64.begin(), ns64.end());
  const auto f100 = cli.get_int_list("factors", {80, 100, 110, 120, 140, 170, 200});
  std::vector<double> factors;
  factors.reserve(f100.size());
  for (const auto f : f100) factors.push_back(static_cast<double>(f) / 100.0);
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 10));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2008));

  std::printf("Figure 1 / Thm 5.2: giant component and small regions at "
              "r = c1_factor*sqrt(1/n)\n");
  std::printf("expect: giant_frac jumps across the percolation threshold; at "
              "1.4 (paper's setting) region_nodes << ln^2 n\n\n");

  const auto rows = harness::run_percolation(ns, factors, trials, seed);
  const auto table = harness::percolation_table(rows);
  table.print(std::cout);
  if (cli.has("csv")) table.save_csv(cli.get("csv", ""));

  std::printf("\nverdict (Thm 5.2, node level): at factor 1.4, the largest "
              "NON-giant component vs ln^2 n:\n");
  for (const auto& row : rows) {
    if (row.c1_factor != 1.4) continue;
    std::printf("  n=%zu: %.1f nodes vs ln^2 n = %.1f  (beta_hat = %.2f; "
                "theorem needs SOME constant beta)\n",
                row.n, row.second_component, row.log2n,
                row.second_component / row.log2n);
  }
  std::printf("\nnote: region_nodes (cell-level small regions) is only "
              "meaningful once good_frac is supercritical (factor >= ~1.7 "
              "under the Euclidean metric) — the paper's cell construction "
              "uses the Chebyshev metric and an unspecified large c1; at "
              "factor 1.4 the node-level giant already exists but the good-"
              "cell backbone does not yet percolate.\n");
  return 0;
}
