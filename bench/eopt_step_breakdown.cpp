// Theorem 5.3's accounting structure, measured per step: EOPT's energy bill
// split into Step 1 (modified GHS at r₁ = √(c₁/n)), the fragment-size census
// (one broadcast + one convergecast), and Step 2 (modified GHS at
// r₂ = √(c₂ ln n / n) with a passive giant).
//
// The §V-C analysis predicts: Step 1 = Θ(log n) (Θ(n log n) messages at
// Θ(1/n) each), census = Θ(1) (Θ(n) messages at Θ(1/n) each), Step 2 =
// Θ(log n) expected (dominated by the one-time announcement round; the small
// regions themselves contribute O(log n) in total). Also reported: the
// Step-1 fragment count and giant size, which drive the Step-2 bound.
// This bench reads the per-stage accountings (step1/census/step2) that
// only eopt::EoptResult carries; it stays on the expert surface.
#define EMST_NO_DEPRECATE
#include <cmath>
#include <cstdio>
#include <iostream>

#include "emst/eopt/eopt.hpp"
#include "emst/geometry/sampling.hpp"
#include "emst/support/cli.hpp"
#include "emst/support/parallel.hpp"
#include "emst/support/rng.hpp"
#include "emst/support/stats.hpp"
#include "emst/support/table.hpp"

int main(int argc, char** argv) {
  using namespace emst;
  const support::Cli cli(argc, argv,
                         {{"ns", "comma-separated node counts"},
                          {"trials", "trials (default 10)"},
                          {"seed", "master seed (default 2008)"},
                          {"csv", "write CSV to this path"}});
  const auto ns64 = cli.get_int_list("ns", {250, 500, 1000, 2000, 4000, 8000});
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 10));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2008));

  std::printf("EOPT per-step energy (Thm 5.3 structure): step1 ~ ln n, "
              "census ~ O(1), step2 ~ ln n\n\n");

  support::Table table({"n", "ln_n", "step1", "census", "step2", "total",
                        "step1_frags", "giant_frac", "phases_1+2"});
  table.set_precision(1, 2);
  table.set_precision(7, 3);

  for (const auto n64 : ns64) {
    const auto n = static_cast<std::size_t>(n64);
    struct Out {
      double s1, cz, s2, frags, giant, phases;
    };
    std::vector<Out> outs(trials);
    support::parallel_for(trials, [&](std::size_t t) {
      support::Rng rng(support::Rng::stream_seed(seed ^ (n * 11), t));
      const sim::Topology topo =
          eopt::eopt_topology(geometry::uniform_points(n, rng));
      const auto result = eopt::run_eopt(topo);
      outs[t] = {result.step1.energy,
                 result.census.energy,
                 result.step2.energy,
                 static_cast<double>(result.step1_fragments),
                 static_cast<double>(result.giant_size) / static_cast<double>(n),
                 static_cast<double>(result.step1_phases + result.step2_phases)};
    });
    support::RunningStats s1;
    support::RunningStats cz;
    support::RunningStats s2;
    support::RunningStats frags;
    support::RunningStats giant;
    support::RunningStats phases;
    for (const Out& o : outs) {
      s1.add(o.s1);
      cz.add(o.cz);
      s2.add(o.s2);
      frags.add(o.frags);
      giant.add(o.giant);
      phases.add(o.phases);
    }
    table.add_row({static_cast<long long>(n), std::log(static_cast<double>(n)),
                   s1.mean(), cz.mean(), s2.mean(),
                   s1.mean() + cz.mean() + s2.mean(), frags.mean(),
                   giant.mean(), phases.mean()});
  }
  table.print(std::cout);
  if (cli.has("csv")) table.save_csv(cli.get("csv", ""));
  std::printf("\nreading guide: step1/ln n and step2/ln n roughly constant, "
              "census flat — the three Θ-terms of Thm 5.3's proof, measured "
              "separately.\n");
  return 0;
}
