// Figure 3(b) reproduction: log(Energy) vs log log n with least-squares
// slopes (paper §VII).
//
// With Energy = c·log^b n, log(Energy) = log c + b·log log n is a straight
// line of slope b. The paper reads b ≈ 2 for GHS, ≈ 1 for EOPT, ≈ 0 for
// Co-NNT off its plot; we print the fitted slopes and R².
#include <cstdio>
#include <iostream>

#include "emst/harness/figures.hpp"
#include "emst/support/cli.hpp"

int main(int argc, char** argv) {
  using namespace emst;
  const support::Cli cli(argc, argv,
                         {{"ns", "comma-separated node counts"},
                          {"trials", "trials per point (default 10)"},
                          {"seed", "master seed (default 2008)"},
                          {"csv", "write CSV to this path"}});
  // Wider range than Fig 3(a) sharpens the slope fit (log log n moves slowly).
  const auto ns64 = cli.get_int_list(
      "ns", {50, 100, 250, 500, 1000, 2000, 4000, 8000, 16000});
  std::vector<std::size_t> ns(ns64.begin(), ns64.end());
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 10));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2008));

  std::printf("Figure 3(b): log(Energy) vs log(log n); slope b recovers "
              "Energy = c*log^b n\n");
  std::printf("paper reference slopes: GHS ~2, EOPT ~1, Co-NNT ~0\n\n");

  const harness::Fig3Data data = harness::run_fig3(ns, trials, seed);
  const auto table = harness::fig3b_table(data);
  table.print(std::cout);
  if (cli.has("csv")) table.save_csv(cli.get("csv", ""));

  const auto ghs = data.ghs_fit();
  const auto eopt = data.eopt_fit();
  const auto connt = data.connt_fit();
  std::printf("\nfitted slopes (paper: 2 / 1 / 0):\n");
  std::printf("  GHS    b = %.3f   (R^2 = %.3f)\n", ghs.slope, ghs.r2);
  std::printf("  EOPT   b = %.3f   (R^2 = %.3f)\n", eopt.slope, eopt.r2);
  std::printf("  Co-NNT b = %.3f   (R^2 = %.3f)\n", connt.slope, connt.r2);
  return 0;
}
