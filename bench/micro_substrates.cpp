// google-benchmark microbenchmarks for the substrate layers: RGG
// construction, spatial queries, union-find, sequential MSTs, and the
// distributed runtime's per-message overhead. These guard the harness's
// ability to run the large sweeps in reasonable time.
#include <benchmark/benchmark.h>

#include "emst/eopt/eopt.hpp"
#include "emst/geometry/deployments.hpp"
#include "emst/geometry/sampling.hpp"
#include "emst/ghs/classic.hpp"
#include "emst/graph/gabriel.hpp"
#include "emst/spatial/kdtree.hpp"
#include "emst/ghs/sync.hpp"
#include "emst/graph/mst.hpp"
#include "emst/graph/union_find.hpp"
#include "emst/nnt/connt.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/rgg/rgg.hpp"
#include "emst/spatial/cell_grid.hpp"
#include "emst/run.hpp"
#include "emst/support/rng.hpp"

namespace {

using namespace emst;

std::vector<geometry::Point2> bench_points(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  return geometry::uniform_points(n, rng);
}

void BM_UniformPoints(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  support::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geometry::uniform_points(n, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_UniformPoints)->Arg(1000)->Arg(100000);

void BM_RggBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto points = bench_points(n, 2);
  const double radius = rgg::connectivity_radius(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rgg::geometric_edges(points, radius));
  }
}
BENCHMARK(BM_RggBuild)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_CellGridWithin(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto points = bench_points(n, 3);
  const double radius = rgg::connectivity_radius(n);
  const spatial::CellGrid grid(points, radius);
  std::size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.within(points[q++ % n], radius));
  }
}
BENCHMARK(BM_CellGridWithin)->Arg(10000)->Arg(100000);

void BM_UnionFind(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  support::Rng rng(5);
  for (auto _ : state) {
    graph::UnionFind dsu(n);
    for (std::size_t i = 0; i < n; ++i) {
      dsu.unite(static_cast<graph::NodeId>(rng.uniform_int(n)),
                static_cast<graph::NodeId>(rng.uniform_int(n)));
    }
    benchmark::DoNotOptimize(dsu.components());
  }
}
BENCHMARK(BM_UnionFind)->Arg(10000)->Arg(100000);

void BM_Kruskal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto points = bench_points(n, 7);
  const auto edges = rgg::geometric_edges(points, rgg::connectivity_radius(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::kruskal_msf(n, edges));
  }
}
BENCHMARK(BM_Kruskal)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_PrimVsKruskal_Prim(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto points = bench_points(n, 7);
  const auto instance = rgg::build_rgg(points, rgg::connectivity_radius(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::prim_msf(instance.graph));
  }
}
BENCHMARK(BM_PrimVsKruskal_Prim)->Arg(10000);

void BM_ClassicGhs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const sim::Topology topo(bench_points(n, 11), rgg::connectivity_radius(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run(topo, config_for(Driver::kClassicGhs)));
  }
}
BENCHMARK(BM_ClassicGhs)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_SyncGhsCached(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const sim::Topology topo(bench_points(n, 13), rgg::connectivity_radius(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run(topo, config_for(Driver::kSyncGhs)));
  }
}
BENCHMARK(BM_SyncGhsCached)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_CoNnt(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const sim::Topology topo(bench_points(n, 17), rgg::connectivity_radius(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run(topo, config_for(Driver::kCoNnt)));
  }
}
BENCHMARK(BM_CoNnt)->Arg(500)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_KdTreeBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto points = bench_points(n, 23);
  for (auto _ : state) {
    benchmark::DoNotOptimize(spatial::KdTree(points));
  }
}
BENCHMARK(BM_KdTreeBuild)->Arg(10000)->Arg(100000);

void BM_KdTreeKnn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto points = bench_points(n, 29);
  const spatial::KdTree tree(points);
  std::size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.k_nearest(points[q++ % n], 8, static_cast<std::uint32_t>(-1)));
  }
}
BENCHMARK(BM_KdTreeKnn)->Arg(10000)->Arg(100000);

void BM_CellGridVsKdTree_ClusteredRange(benchmark::State& state) {
  // The kd-tree's raison d'être: clustered deployments where the grid's
  // per-cell population explodes. state.range(0): 0 = grid, 1 = kd-tree.
  support::Rng rng(31);
  const auto points = geometry::sample_deployment(
      geometry::Deployment::kClustered, 50000, rng);
  const double radius = rgg::connectivity_radius(points.size());
  const spatial::CellGrid grid(points, radius);
  const spatial::KdTree tree(points);
  std::size_t q = 0;
  for (auto _ : state) {
    const geometry::Point2 p = points[q++ % points.size()];
    if (state.range(0) == 0) {
      benchmark::DoNotOptimize(grid.within(p, radius));
    } else {
      benchmark::DoNotOptimize(tree.within(p, radius));
    }
  }
}
BENCHMARK(BM_CellGridVsKdTree_ClusteredRange)->Arg(0)->Arg(1);

void BM_GabrielFilter(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto points = bench_points(n, 37);
  const auto edges = rgg::geometric_edges(points, rgg::connectivity_radius(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::gabriel_filter(points, edges));
  }
}
BENCHMARK(BM_GabrielFilter)->Arg(2000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_Eopt(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const sim::Topology topo(bench_points(n, 41), rgg::connectivity_radius(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run(topo, config_for(Driver::kEopt)));
  }
}
BENCHMARK(BM_Eopt)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_EuclideanMst(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto points = bench_points(n, 19);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rgg::euclidean_mst(points));
  }
}
BENCHMARK(BM_EuclideanMst)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace
