// The Steele functionals the paper's analysis leans on ([26], cited in §III
// and Thm 6.1):
//   E[Σ|e|]  of the Euclidean MST  = Θ(√n), with Σ|e|/√n → β ≈ 0.63;
//   E[Σ|e|²] of the Euclidean MST  = Θ(1)  (the L_MST = Ω(1) floor of §III).
// This bench measures the convergence of both constants for the MST and the
// two NNT variants — the dimensionless numbers behind Tab A.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "emst/geometry/sampling.hpp"
#include "emst/graph/tree_utils.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/rgg/rgg.hpp"
#include "emst/run.hpp"
#include "emst/support/cli.hpp"
#include "emst/support/parallel.hpp"
#include "emst/support/rng.hpp"
#include "emst/support/stats.hpp"
#include "emst/support/table.hpp"

int main(int argc, char** argv) {
  using namespace emst;
  const support::Cli cli(argc, argv,
                         {{"ns", "comma-separated node counts"},
                          {"trials", "trials (default 12)"},
                          {"seed", "master seed (default 2008)"},
                          {"csv", "write CSV to this path"}});
  const auto ns64 = cli.get_int_list("ns", {500, 2000, 8000, 32000});
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 12));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2008));

  std::printf("Steele functionals [26]: MST length constant sum|e|/sqrt(n) "
              "and the n-independent sum|e|^2\n\n");

  support::Table table({"n", "MST_len/sqrt_n", "CoNNT_len/sqrt_n",
                        "MST_sq", "CoNNT_sq", "ci95_lo", "ci95_hi"});
  table.set_precision(1, 4);
  table.set_precision(2, 4);
  table.set_precision(3, 4);
  table.set_precision(4, 4);
  table.set_precision(5, 4);
  table.set_precision(6, 4);

  for (const auto n64 : ns64) {
    const auto n = static_cast<std::size_t>(n64);
    struct Out {
      double mst_len, co_len, mst_sq, co_sq;
    };
    std::vector<Out> outs(trials);
    support::parallel_for(trials, [&](std::size_t t) {
      support::Rng rng(support::Rng::stream_seed(seed ^ (n * 23), t));
      const auto points = geometry::uniform_points(n, rng);
      const auto mst = rgg::euclidean_mst(points);
      const sim::Topology topo(points, rgg::connectivity_radius(n));
      const auto co = run(topo, config_for(Driver::kCoNnt)).tree;
      const double sqrt_n = std::sqrt(static_cast<double>(n));
      outs[t] = {graph::tree_cost(points, mst, 1.0) / sqrt_n,
                 graph::tree_cost(points, co, 1.0) / sqrt_n,
                 graph::tree_cost(points, mst, 2.0),
                 graph::tree_cost(points, co, 2.0)};
    });
    support::RunningStats mst_len;
    support::RunningStats co_len;
    support::RunningStats mst_sq;
    support::RunningStats co_sq;
    std::vector<double> mst_len_samples;
    for (const Out& o : outs) {
      mst_len.add(o.mst_len);
      co_len.add(o.co_len);
      mst_sq.add(o.mst_sq);
      co_sq.add(o.co_sq);
      mst_len_samples.push_back(o.mst_len);
    }
    support::Rng boot(seed ^ n);
    const support::Interval ci =
        support::bootstrap_mean_ci(mst_len_samples, boot);
    table.add_row({static_cast<long long>(n), mst_len.mean(), co_len.mean(),
                   mst_sq.mean(), co_sq.mean(), ci.lo, ci.hi});
  }
  table.print(std::cout);
  if (cli.has("csv")) table.save_csv(cli.get("csv", ""));
  std::printf("\nreading guide: MST_len/sqrt_n converges to the Steele "
              "constant (~0.63 as n grows; boundary effects inflate small "
              "n); MST_sq ~ 0.52 flat is the paper's Omega(1) energy floor; "
              "Co-NNT tracks both at a constant factor (Thm 6.1).\n");
  return 0;
}
