// §VIII open-question exploration: "whether there is an energy-optimal
// algorithm to construct an (exact) MST when the coordinates are given to
// the nodes" — i.e., can coordinates push exact-MST energy below the
// no-coordinates Ω(log n) bound toward the Ω(1) floor?
//
// Two coordinate levers are measured, separately and together, always
// producing the EXACT MST (verified per trial):
//   1. Gabriel restriction: with one-hop coordinate exchange a node can
//      locally discard every incident non-Gabriel edge; EMST ⊆ GG, so GHS on
//      the O(n)-edge Gabriel subgraph is still exact.
//   2. Minimum-power announcements: a node broadcasts its fragment id only
//      as far as its farthest (Gabriel) neighbour instead of the full radio
//      radius.
// The catch the table makes explicit: learning who the neighbours ARE costs
// one full-radius broadcast per node (the `discovery` column, Θ(log n)
// energy) — and that discovery round is exactly where the residual log n
// lives. Everything after it becomes O(1)-ish.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "emst/eopt/eopt.hpp"
#include "emst/run.hpp"
#include "emst/geometry/sampling.hpp"
#include "emst/graph/gabriel.hpp"
#include "emst/graph/mst.hpp"
#include "emst/graph/tree_utils.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/rgg/rgg.hpp"
#include "emst/support/cli.hpp"
#include "emst/support/parallel.hpp"
#include "emst/support/rng.hpp"
#include "emst/support/stats.hpp"
#include "emst/support/table.hpp"

int main(int argc, char** argv) {
  using namespace emst;
  const support::Cli cli(argc, argv,
                         {{"ns", "comma-separated node counts"},
                          {"trials", "trials (default 8)"},
                          {"seed", "master seed (default 2008)"},
                          {"csv", "write CSV to this path"}});
  const auto ns64 = cli.get_int_list("ns", {500, 2000, 8000});
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 8));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2008));

  std::printf("SVIII exploration: exact MST with coordinate levers "
              "(discovery = one full-radius coordinate broadcast per node)\n\n");

  support::Table table({"n", "variant", "discovery", "algo_energy",
                        "disc+algo", "messages", "exact"});
  table.set_precision(5, 0);

  enum Variant { kPlain, kMinPower, kGabriel, kGabrielMinPower, kCount };
  const char* names[kCount] = {"EOPT (no coordinates)", "EOPT + min-power",
                               "EOPT on Gabriel", "EOPT Gabriel+min-power"};

  for (const auto n64 : ns64) {
    const auto n = static_cast<std::size_t>(n64);
    struct Out {
      double energy[kCount];
      double messages[kCount];
      bool exact[kCount];
      double discovery;
    };
    std::vector<Out> outs(trials);
    support::parallel_for(trials, [&](std::size_t t) {
      support::Rng rng(support::Rng::stream_seed(seed ^ (n * 13), t));
      const auto points = geometry::uniform_points(n, rng);
      const double r2 = rgg::connectivity_radius(n);
      const sim::Topology disk(points, r2);
      const auto reference = graph::kruskal_msf(n, disk.graph().edges());
      // Discovery: every node announces its coordinates once at full power
      // (needed by variants 2-4 to know neighbour positions).
      outs[t].discovery = static_cast<double>(n) * r2 * r2;

      const auto gabriel_edges =
          graph::gabriel_filter(points, disk.graph().edges());
      const sim::Topology gabriel(points, r2, gabriel_edges);

      auto run = [&](Variant v, const sim::Topology& topo, bool min_power) {
        emst::RunConfig cfg = emst::config_for(emst::Driver::kEopt);
        cfg.eopt.announce_min_power = min_power;
        const emst::RunResult result = emst::run(topo, cfg);
        outs[t].energy[v] = result.totals.energy;
        outs[t].messages[v] =
            static_cast<double>(result.totals.messages());
        outs[t].exact[v] = graph::same_edge_set(result.tree, reference);
      };
      run(kPlain, disk, false);
      run(kMinPower, disk, true);
      run(kGabriel, gabriel, false);
      run(kGabrielMinPower, gabriel, true);
    });
    for (int v = 0; v < kCount; ++v) {
      support::RunningStats energy;
      support::RunningStats messages;
      support::RunningStats discovery;
      std::size_t exact = 0;
      for (const Out& o : outs) {
        energy.add(o.energy[v]);
        messages.add(o.messages[v]);
        discovery.add(o.discovery);
        if (o.exact[v]) ++exact;
      }
      const double disc = v == kPlain ? 0.0 : discovery.mean();
      table.add_row({static_cast<long long>(n), std::string(names[v]), disc,
                     energy.mean(), disc + energy.mean(), messages.mean(),
                     std::string(std::to_string(exact) + "/" +
                                 std::to_string(trials))});
    }
  }
  table.print(std::cout);
  if (cli.has("csv")) table.save_csv(cli.get("csv", ""));
  std::printf("\nreading guide: in cache mode 'EOPT on Gabriel' is message-"
              "identical to plain EOPT (the MOE scan is free either way and "
              "MST edges are Gabriel edges) — the Gabriel restriction pays "
              "off only through the min-power lever, where the farthest "
              "GABRIEL neighbour is far closer than the farthest disk "
              "neighbour. The combined variant more than halves the post-"
              "discovery energy, but discovery itself costs ~2.56 ln n — "
              "with coordinates the open question reduces to whether "
              "neighbourhood discovery below Θ(log n) energy is possible.\n");
  return 0;
}
