// Message anatomy of classical GHS — where the Θ(log² n) energy actually
// goes. The 1983 analysis splits traffic into Θ(|E|) discovery
// (TEST/ACCEPT/REJECT, each edge rejected at most once) and Θ(n log n)
// control (INITIATE/REPORT, once per node per level); this bench prints the
// measured per-type counts and energies, plus the same anatomy for the
// §V-A cached variant (discovery collapses into announcements).
// This bench dissects ghs::GhsMessageBreakdown, which only the direct
// classic-GHS result carries; it stays on the expert surface.
#define EMST_NO_DEPRECATE
#include <cstdio>
#include <iostream>

#include "emst/geometry/sampling.hpp"
#include "emst/ghs/classic.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/support/cli.hpp"
#include "emst/support/parallel.hpp"
#include "emst/support/rng.hpp"
#include "emst/support/stats.hpp"
#include "emst/support/table.hpp"

int main(int argc, char** argv) {
  using namespace emst;
  const support::Cli cli(argc, argv,
                         {{"ns", "comma-separated node counts"},
                          {"trials", "trials (default 8)"},
                          {"seed", "master seed (default 2008)"},
                          {"csv", "write CSV to this path"}});
  const auto ns64 = cli.get_int_list("ns", {1000, 4000});
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 8));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2008));

  std::printf("classical GHS message anatomy (discovery = test+accept+reject, "
              "control = initiate+report)\n\n");

  support::Table table({"n", "variant", "type", "count", "energy",
                        "energy_share"});
  table.set_precision(4, 3);
  table.set_precision(5, 3);

  constexpr auto kTypes = static_cast<std::size_t>(ghs::GhsMsgType::kTypeCount);
  for (const auto n64 : ns64) {
    const auto n = static_cast<std::size_t>(n64);
    for (const ghs::MoeStrategy moe :
         {ghs::MoeStrategy::kTestAll, ghs::MoeStrategy::kCachedConfirm}) {
      std::vector<ghs::GhsMessageBreakdown> outs(trials);
      support::parallel_for(trials, [&](std::size_t t) {
        support::Rng rng(support::Rng::stream_seed(seed ^ (n * 17), t));
        const sim::Topology topo(geometry::uniform_points(n, rng),
                                 rgg::connectivity_radius(n));
        ghs::ClassicGhsOptions options;
        options.moe = moe;
        outs[t] = ghs::run_classic_ghs(topo, options).breakdown;
      });
      double total_energy = 0.0;
      std::array<support::RunningStats, kTypes> counts;
      std::array<support::RunningStats, kTypes> energies;
      for (const auto& b : outs) {
        for (std::size_t i = 0; i < kTypes; ++i) {
          counts[i].add(static_cast<double>(b.count[i]));
          energies[i].add(b.energy[i]);
        }
      }
      for (std::size_t i = 0; i < kTypes; ++i) total_energy += energies[i].mean();
      const char* variant =
          moe == ghs::MoeStrategy::kTestAll ? "classic" : "cached (SV-A)";
      for (std::size_t i = 0; i < kTypes; ++i) {
        if (counts[i].mean() == 0.0) continue;
        table.add_row(
            {static_cast<long long>(n), std::string(variant),
             std::string(ghs::ghs_msg_type_name(static_cast<ghs::GhsMsgType>(i))),
             counts[i].mean(), energies[i].mean(),
             energies[i].mean() / total_energy});
      }
    }
  }
  table.print(std::cout);
  if (cli.has("csv")) table.save_csv(cli.get("csv", ""));
  std::printf("\nreading guide: in the classic rows, test+accept+reject carry "
              "most of the energy (the Θ(|E|) term of O(|E| + n log n)); the "
              "cached variant trades them for announce broadcasts — the "
              "modification's entire effect in one table.\n");
  return 0;
}
