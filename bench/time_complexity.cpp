// The third classical measure: TIME (synchronous rounds) vs n for every
// algorithm. The paper focuses on energy but positions itself against
// time-optimal MST algorithms (§III: "these algorithms require much more
// messages... and consequently require a lot more energy") — this bench
// records the time side of the trade:
//   classic GHS: O(n log n) worst case, near-linear measured;
//   phase-sync GHS / EOPT: O(depth·phases) estimate;
//   Co-NNT: O(log n) probe phases — essentially constant rounds;
//   plus the RBN slot inflation from the interference bench as context.
#include <cstdio>
#include <iostream>

#include "emst/eopt/eopt.hpp"
#include "emst/geometry/sampling.hpp"
#include "emst/ghs/classic.hpp"
#include "emst/ghs/sync.hpp"
#include "emst/nnt/connt.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/run.hpp"
#include "emst/support/cli.hpp"
#include "emst/support/parallel.hpp"
#include "emst/support/rng.hpp"
#include "emst/support/stats.hpp"
#include "emst/support/table.hpp"

int main(int argc, char** argv) {
  using namespace emst;
  const support::Cli cli(argc, argv,
                         {{"ns", "comma-separated node counts"},
                          {"trials", "trials (default 8)"},
                          {"seed", "master seed (default 2008)"},
                          {"csv", "write CSV to this path"}});
  const auto ns64 = cli.get_int_list("ns", {250, 1000, 4000});
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 8));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2008));

  std::printf("time complexity (synchronous rounds) vs n — the measure the "
              "paper trades away for energy\n\n");

  support::Table table({"n", "GHS_rounds", "syncGHS_rounds", "EOPT_rounds",
                        "CoNNT_rounds", "GHS_levels", "EOPT_phases"});
  table.set_precision(5, 1);
  table.set_precision(6, 1);

  for (const auto n64 : ns64) {
    const auto n = static_cast<std::size_t>(n64);
    struct Out {
      double ghs, sync, eopt, connt, levels, phases;
    };
    std::vector<Out> outs(trials);
    support::parallel_for(trials, [&](std::size_t t) {
      support::Rng rng(support::Rng::stream_seed(seed ^ (n * 19), t));
      const sim::Topology topo(geometry::uniform_points(n, rng),
                               rgg::connectivity_radius(n));
      const auto classic = run(topo, config_for(Driver::kClassicGhs));
      const auto sync = run(topo, config_for(Driver::kSyncGhs));
      const auto eo = run(topo, config_for(Driver::kEopt));
      const auto co = run(topo, config_for(Driver::kCoNnt));
      outs[t] = {static_cast<double>(classic.totals.rounds),
                 static_cast<double>(sync.totals.rounds),
                 static_cast<double>(eo.totals.rounds),
                 static_cast<double>(co.totals.rounds),
                 static_cast<double>(classic.phases),
                 static_cast<double>(eo.phases)};
    });
    support::RunningStats ghs_r;
    support::RunningStats sync_r;
    support::RunningStats eopt_r;
    support::RunningStats connt_r;
    support::RunningStats levels;
    support::RunningStats phases;
    for (const Out& o : outs) {
      ghs_r.add(o.ghs);
      sync_r.add(o.sync);
      eopt_r.add(o.eopt);
      connt_r.add(o.connt);
      levels.add(o.levels);
      phases.add(o.phases);
    }
    table.add_row({static_cast<long long>(n), ghs_r.mean(), sync_r.mean(),
                   eopt_r.mean(), connt_r.mean(), levels.mean(),
                   phases.mean()});
  }
  table.print(std::cout);
  if (cli.has("csv")) table.save_csv(cli.get("csv", ""));
  std::printf("\nreading guide: Co-NNT's ~12 rounds vs GHS's thousands is "
              "the paper's hidden second win; EOPT's rounds grow with the "
              "fragment-tree depth (phase-sync estimate; classic GHS rounds "
              "are actor-exact).\n");
  return 0;
}
