// Strong scaling of the sharded engine (docs/PARALLEL.md).
//
// Fixed total work — the perf_sim pump workload at n ∈ {10k, 100k, 1M}
// messages on the delayed-collect scenario — timed on the serial calendar
// engine (`sim::Network`) and on `sim::ShardedNetwork` at thread counts
// {1, 2, 4, 8}. Results go to the console table and to the tracked
// BENCH_parallel.json at the repo root, which records the host's
// `hardware_concurrency` alongside every timing: a speedup number is
// meaningless without knowing how many cores were actually available
// (see docs/PERF.md — the reference record was produced on a 1-core CI
// host, where the sharded engine can only show its overhead, not its
// scaling; re-run `scripts/bench_perf.sh` on a multi-core machine for
// real strong-scaling numbers).
//
// Every timed run is also a determinism check: the sharded engine must
// deliver exactly the sent message count and reproduce the serial engine's
// energy total bit-for-bit at every thread count. A mismatch exits non-zero
// — a "fast but different" engine would invalidate every experiment built
// on it.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "emst/geometry/sampling.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/sim/network.hpp"
#include "emst/sim/sharded_network.hpp"
#include "emst/support/cli.hpp"
#include "emst/support/json.hpp"
#include "emst/support/rng.hpp"
#include "emst/support/stats.hpp"
#include "emst/support/table.hpp"

namespace {

using namespace emst;

using Payload = std::uint64_t;
constexpr std::size_t kSendRounds = 32;

struct World {
  sim::Topology topo;
  std::vector<std::pair<sim::NodeId, sim::NodeId>> sched;  ///< in-range pairs
};

World make_world(std::size_t nodes, std::size_t max_messages,
                 std::uint64_t seed) {
  support::Rng rng(seed);
  const auto points = geometry::uniform_points(nodes, rng);
  sim::Topology topo(points, rgg::connectivity_radius(nodes));
  std::vector<std::pair<sim::NodeId, sim::NodeId>> sched;
  sched.reserve(max_messages);
  while (sched.size() < max_messages) {
    const auto u = static_cast<sim::NodeId>(rng.uniform_int(nodes));
    const auto nbs = topo.neighbors(u);
    if (nbs.empty()) continue;
    sched.emplace_back(u, nbs[rng.uniform_int(nbs.size())].id);
  }
  return World{std::move(topo), std::move(sched)};
}

struct Sample {
  double millis = 0.0;
  std::size_t delivered = 0;
  double energy = 0.0;  ///< cross-engine identity check
};

using Clock = std::chrono::steady_clock;

/// The perf_sim steady-state pump: send over kSendRounds rounds, collecting
/// each round, then drain. Construction is timed too — shard partitioning
/// and worker start-up are real costs of using the parallel engine.
template <typename Net, typename... Extra>
Sample run_pump(const World& w, std::size_t messages, std::uint32_t delay,
                Extra... extra) {
  const std::size_t per_round = (messages + kSendRounds - 1) / kSendRounds;
  const auto start = Clock::now();
  Net net(w.topo, {}, /*unbounded_broadcast=*/false,
          sim::DelayModel{delay, 0xbe7cULL}, {}, nullptr, extra...);
  std::size_t sent = 0;
  Sample out;
  while (sent < messages || net.pending()) {
    const std::size_t stop = std::min(messages, sent + per_round);
    for (; sent < stop; ++sent)
      net.unicast(w.sched[sent].first, w.sched[sent].second, sent);
    out.delivered += net.collect_round().size();
  }
  out.millis =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  out.energy = net.meter().totals().energy;
  return out;
}

struct Timing {
  support::RunningStats ms;
  bool checks_ok = true;
};

struct Scenario {
  std::size_t messages = 0;
  Timing serial;
  std::vector<Timing> sharded;  ///< one per entry in the thread sweep
  double serial_energy = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(
      argc, argv,
      {{"nodes", "deployment size for the pump topology (default 4096)"},
       {"messages", "comma list of message counts (default 10000,100000,1000000)"},
       {"threads", "comma list of shard/thread counts (default 1,2,4,8)"},
       {"delay", "max extra delay D for the delayed-collect scenario (default 5)"},
       {"trials", "timed repetitions per engine config (default 3)"},
       {"seed", "master seed (default 2026)"},
       {"json", "output JSON path (default BENCH_parallel.json)"},
       {"quick", "1 = CI-sized run (20k/100k messages, 2 trials)"}});
  const bool quick = cli.get_int("quick", 0) != 0;
  const auto nodes =
      static_cast<std::size_t>(cli.get_int("nodes", quick ? 1024 : 4096));
  const auto message_counts = cli.get_int_list(
      "messages", quick ? std::vector<std::int64_t>{20000, 100000}
                        : std::vector<std::int64_t>{10000, 100000, 1000000});
  const auto thread_counts =
      cli.get_int_list("threads", {1, 2, 4, 8});
  const auto delay = static_cast<std::uint32_t>(cli.get_int("delay", 5));
  const auto trials =
      static_cast<std::size_t>(cli.get_int("trials", quick ? 2 : 3));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2026));
  const std::string json_path = cli.get("json", "BENCH_parallel.json");

  const unsigned hw = std::thread::hardware_concurrency();
  std::size_t max_messages = 0;
  for (const auto m : message_counts)
    max_messages = std::max(max_messages, static_cast<std::size_t>(m));

  std::printf("parallel scaling: pump at n(nodes)=%zu, D=%u, %zu trials, "
              "host hardware_concurrency=%u\n\n",
              nodes, delay, trials, hw);
  const World w = make_world(nodes, max_messages, seed);

  std::vector<Scenario> scenarios;
  for (const auto m : message_counts) {
    Scenario sc;
    sc.messages = static_cast<std::size_t>(m);
    sc.sharded.resize(thread_counts.size());

    // Untimed warm-up, and the energy reference for the identity check.
    sc.serial_energy =
        run_pump<sim::Network<Payload>>(w, sc.messages, delay).energy;

    for (std::size_t t = 0; t < trials; ++t) {
      const Sample s = run_pump<sim::Network<Payload>>(w, sc.messages, delay);
      sc.serial.ms.add(s.millis);
      sc.serial.checks_ok &=
          s.delivered == sc.messages && s.energy == sc.serial_energy;
      for (std::size_t ti = 0; ti < thread_counts.size(); ++ti) {
        const auto threads = static_cast<std::size_t>(thread_counts[ti]);
        const Sample p = run_pump<sim::ShardedNetwork<Payload>>(
            w, sc.messages, delay, threads);
        sc.sharded[ti].ms.add(p.millis);
        // The whole point: same count, bitwise-same energy, at every width.
        sc.sharded[ti].checks_ok &=
            p.delivered == sc.messages && p.energy == sc.serial_energy;
      }
    }
    scenarios.push_back(std::move(sc));
  }

  std::vector<std::string> header = {"messages", "serial_ms"};
  for (const auto t : thread_counts) {
    // Built by append: `"t" + std::to_string(t) + "_speedup"` trips GCC 12's
    // -Wrestrict false positive at -O2 under -Werror.
    std::string col = "t";
    col += std::to_string(t);
    col += "_speedup";
    header.push_back(std::move(col));
  }
  header.emplace_back("identical");
  support::Table table(header);
  bool all_ok = true;
  for (const Scenario& sc : scenarios) {
    std::vector<support::Cell> row = {
        static_cast<long long>(sc.messages), sc.serial.ms.mean()};
    bool ok = sc.serial.checks_ok;
    for (const Timing& timing : sc.sharded) {
      row.emplace_back(sc.serial.ms.mean() / timing.ms.mean());
      ok &= timing.checks_ok;
    }
    row.emplace_back(std::string(ok ? "yes" : "NO"));
    all_ok &= ok;
    table.add_row(row);
  }
  table.print(std::cout);

  {
    std::ofstream os(json_path);
    if (!os) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    support::JsonWriter json(os);
    json.begin_object();
    json.key("bench").value("parallel_scaling");
    json.key("hardware_concurrency").value(static_cast<std::uint64_t>(hw));
    json.key("nodes").value(static_cast<std::uint64_t>(nodes));
    json.key("max_extra_delay").value(static_cast<std::uint64_t>(delay));
    json.key("trials").value(static_cast<std::uint64_t>(trials));
    json.key("seed").value(seed);
    json.key("identical").value(all_ok);
    json.key("scenarios").begin_array();
    for (const Scenario& sc : scenarios) {
      json.begin_object();
      json.key("messages").value(static_cast<std::uint64_t>(sc.messages));
      json.key("serial_ms").begin_object();
      json.key("mean").value(sc.serial.ms.mean());
      json.key("stddev").value(sc.serial.ms.stddev());
      json.end_object();
      json.key("sharded").begin_array();
      for (std::size_t ti = 0; ti < thread_counts.size(); ++ti) {
        json.begin_object();
        json.key("threads").value(
            static_cast<std::uint64_t>(thread_counts[ti]));
        json.key("mean_ms").value(sc.sharded[ti].ms.mean());
        json.key("stddev_ms").value(sc.sharded[ti].ms.stddev());
        json.key("speedup_vs_serial")
            .value(sc.serial.ms.mean() / sc.sharded[ti].ms.mean());
        json.end_object();
      }
      json.end_array();
      json.end_object();
    }
    json.end_array();
    json.end_object();
    os << '\n';
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  std::printf("\nreading guide: tN_speedup is serial wall-time divided by the "
              "sharded engine's at N threads; > 1 is a win. Interpret against "
              "hardware_concurrency=%u — with fewer cores than threads the "
              "sharded numbers measure barrier+mailbox overhead, not scaling. "
              "'identical' confirms the sharded engine reproduced the serial "
              "delivery count and energy bit-for-bit at every width.\n",
              hw);
  if (!all_ok) {
    std::fprintf(stderr, "error: sharded engine diverged from the serial "
                         "reference — determinism contract violated\n");
    return 1;
  }
  return 0;
}
