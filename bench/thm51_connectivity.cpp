// Theorem 5.1 (Gupta–Kumar) empirically: r = √(c·ln n / n) connects the RGG
// WHP for c above a threshold. The theorem is proved for c > 4; the true
// threshold is c = 1 (r² n/ln n → 1 is the sharp connectivity constant), and
// the paper's experiments run at factor 1.6, i.e. c = 1.6² = 2.56 — between
// the sharp constant and the provable one. This bench maps P(connected) vs
// the factor so that choice is visible.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "emst/geometry/sampling.hpp"
#include "emst/rgg/components.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/rgg/rgg.hpp"
#include "emst/support/cli.hpp"
#include "emst/support/parallel.hpp"
#include "emst/support/rng.hpp"
#include "emst/support/table.hpp"

int main(int argc, char** argv) {
  using namespace emst;
  const support::Cli cli(argc, argv,
                         {{"ns", "comma-separated node counts"},
                          {"factors", "factors x100 (default 80..200)"},
                          {"trials", "trials per point (default 20)"},
                          {"seed", "master seed (default 2008)"},
                          {"csv", "write CSV to this path"}});
  const auto ns64 = cli.get_int_list("ns", {500, 2000, 8000});
  const auto f100 = cli.get_int_list(
      "factors", {40, 50, 60, 70, 80, 90, 100, 120, 160, 200});
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 20));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2008));

  std::printf("Thm 5.1 connectivity: P(connected) at r = f*sqrt(ln n / n) "
              "(c = f^2; theorem proves c > 4, sharp constant c = 1, paper "
              "runs at c = 2.56)\n\n");

  support::Table table({"n", "factor", "c=f^2", "P(connected)", "isolated_mean"});
  table.set_precision(1, 2);
  table.set_precision(2, 2);
  table.set_precision(3, 2);
  table.set_precision(4, 2);

  for (const auto n64 : ns64) {
    const auto n = static_cast<std::size_t>(n64);
    for (const auto f : f100) {
      const double factor = static_cast<double>(f) / 100.0;
      std::vector<std::uint8_t> connected(trials, 0);
      std::vector<double> isolated(trials, 0.0);
      support::parallel_for(trials, [&](std::size_t t) {
        support::Rng rng(support::Rng::stream_seed(
            seed ^ (n * 31) ^ static_cast<std::uint64_t>(f), t));
        const auto instance =
            rgg::random_rgg(n, rgg::connectivity_radius(n, factor), rng);
        const auto comps = rgg::connected_components(instance.graph);
        connected[t] = comps.count == 1 ? 1 : 0;
        std::size_t singletons = 0;
        for (const std::size_t size : comps.sizes) {
          if (size == 1) ++singletons;
        }
        isolated[t] = static_cast<double>(singletons);
      });
      double p = 0.0;
      double iso = 0.0;
      for (std::size_t t = 0; t < trials; ++t) {
        p += connected[t];
        iso += isolated[t];
      }
      table.add_row({static_cast<long long>(n), factor, factor * factor,
                     p / static_cast<double>(trials),
                     iso / static_cast<double>(trials)});
    }
  }
  table.print(std::cout);
  if (cli.has("csv")) table.save_csv(cli.get("csv", ""));
  std::printf("\nreading guide: the transition sits below factor 1 at finite "
              "n and drifts toward the sharp c = 1 as n grows; the last "
              "obstruction is isolated nodes (isolated_mean -> 0 exactly "
              "where P -> 1) — the classic connectivity picture. The paper's "
              "1.6 is comfortably supercritical at every n here, even though "
              "the Thm 5.1 constant (c > 4) would demand factor 2.\n");
  return 0;
}
