// Ablation bench for the Co-NNT ranking scheme (paper §VI):
// the diagonal (x+y, y) ranking vs the axis (x, y) ranking of [15].
//
// The paper's point: with the axis ranking "there are few nodes that need to
// go far away to find the nearest node of higher rank", breaking the
// Θ(√(log n/n)) unit-disk bound; the diagonal ranking fixes it. Expect the
// axis scheme to show larger max probe radii and higher tail energy while
// both stay O(1)-approximate.
// Expert surface: this ablation reads CoNntResult::max_connect_distance,
// which the emst::run facade result does not carry.
#define EMST_NO_DEPRECATE
#include <cstdio>
#include <iostream>

#include "emst/geometry/sampling.hpp"
#include "emst/graph/tree_utils.hpp"
#include "emst/nnt/connt.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/rgg/rgg.hpp"
#include "emst/support/cli.hpp"
#include "emst/support/parallel.hpp"
#include "emst/support/rng.hpp"
#include "emst/support/stats.hpp"
#include "emst/support/table.hpp"

int main(int argc, char** argv) {
  using namespace emst;
  const support::Cli cli(argc, argv,
                         {{"ns", "comma-separated node counts"},
                          {"trials", "trials (default 10)"},
                          {"seed", "master seed (default 2008)"},
                          {"csv", "write CSV to this path"}});
  const auto ns64 = cli.get_int_list("ns", {500, 2000, 8000});
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 10));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2008));

  std::printf("Co-NNT ranking ablation: diagonal (paper SVI) vs axis [15]\n\n");

  support::Table table({"n", "scheme", "energy", "msgs/n", "max_edge",
                        "max_edge/connectivity_r", "len_ratio_vs_MST"});
  table.set_precision(3, 1);

  for (const auto n64 : ns64) {
    const auto n = static_cast<std::size_t>(n64);
    for (const nnt::RankScheme scheme :
         {nnt::RankScheme::kDiagonal, nnt::RankScheme::kAxis}) {
      struct Out {
        double energy, per_node_msgs, max_edge, ratio;
      };
      std::vector<Out> outs(trials);
      support::parallel_for(trials, [&](std::size_t t) {
        support::Rng rng(support::Rng::stream_seed(seed ^ n, t));
        const auto points = geometry::uniform_points(n, rng);
        const sim::Topology topo(points, rgg::connectivity_radius(n));
        nnt::CoNntOptions options;
        options.scheme = scheme;
        const auto result = nnt::run_connt(topo, options);
        const auto mst = rgg::euclidean_mst(points);
        outs[t] = {result.totals.energy,
                   static_cast<double>(result.totals.messages()) /
                       static_cast<double>(n),
                   result.max_connect_distance,
                   graph::tree_cost(points, result.tree, 1.0) /
                       graph::tree_cost(points, mst, 1.0)};
      });
      support::RunningStats energy;
      support::RunningStats msgs;
      support::RunningStats max_edge;
      support::RunningStats ratio;
      for (const Out& o : outs) {
        energy.add(o.energy);
        msgs.add(o.per_node_msgs);
        max_edge.add(o.max_edge);
        ratio.add(o.ratio);
      }
      table.add_row({static_cast<long long>(n),
                     std::string(scheme == nnt::RankScheme::kDiagonal
                                     ? "diagonal"
                                     : "axis"),
                     energy.mean(), msgs.mean(), max_edge.mean(),
                     max_edge.mean() / rgg::connectivity_radius(n),
                     ratio.mean()});
    }
  }
  table.print(std::cout);
  if (cli.has("csv")) table.save_csv(cli.get("csv", ""));
  std::printf("\nreading guide: axis max_edge/connectivity_r >> 1 is exactly "
              "why SVI replaced the [15] ranking in the unit-disk model.\n");
  return 0;
}
