// Memory/scale sweep for the two topology backends (docs/PERF.md).
//
// For EOPT and sync GHS, at n up to ten million nodes, runs the driver on
// the materialized CSR backend (`sim::Topology`) and on the implicit
// grid backend (`sim::ImplicitTopology`) and records wall time + peak RSS
// per configuration. Results go to the console table and to the tracked
// BENCH_scale.json at the repo root.
//
// Every configuration runs in its OWN child process (fork + re-exec of this
// binary), so `wait4`'s ru_maxrss is that run's true peak — not the high
// water mark of whatever ran before it in the same address space.
//
// Materialized configurations whose projected allocation exceeds the memory
// budget (default 16 GiB — a realistic deployment box, not this host's RAM)
// are recorded as skipped with the projected byte count: that is the point
// of the sweep. The implicit backend stays O(n) and runs everywhere.
//
// Where both backends complete at the same (algo, n), the energy totals
// must match bit-for-bit (`identical` in the JSON; the record is invalid
// otherwise) — the cheap end-to-end echo of tests/topology_differential.
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "emst/eopt/eopt.hpp"
#include "emst/run.hpp"
#include "emst/geometry/sampling.hpp"
#include "emst/ghs/sync.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/sim/implicit_topology.hpp"
#include "emst/sim/topology.hpp"
#include "emst/support/cli.hpp"
#include "emst/support/json.hpp"
#include "emst/support/rng.hpp"
#include "emst/support/table.hpp"

#ifndef EMST_CMAKE_BUILD_TYPE
#define EMST_CMAKE_BUILD_TYPE ""
#endif

namespace {

using namespace emst;
using Clock = std::chrono::steady_clock;

struct Config {
  std::string algo;     ///< "eopt" | "sync"
  std::string backend;  ///< "implicit" | "materialized"
  std::size_t n = 0;
};

/// What one child run reports back (energy as hexfloat for an exact
/// round-trip; the parent compares backends bitwise).
struct ChildReport {
  double wall_ms = 0.0;
  double energy = 0.0;
  std::uint64_t tree_edges = 0;
  std::uint64_t phases = 0;
};

/// Projected bytes for MATERIALIZING the r-disk graph at size n: the build
/// edge list (24 B/edge) plus the CSR (two 16 B Neighbor entries per edge)
/// plus points and offsets. Expected edges m = C(n,2)·π r² (uniform square,
/// ignoring boundary — an overestimate of at most ~2x near r ≈ 1).
double projected_materialized_bytes(std::size_t n, double radius) {
  const double nn = static_cast<double>(n);
  const double m = nn * (nn - 1.0) / 2.0 * std::min(1.0, M_PI * radius * radius);
  return m * (24.0 + 2.0 * 16.0) + nn * 48.0;
}

double algo_radius(const std::string& algo, std::size_t n) {
  // EOPT's topology lives at r₂ = 1.6·√(ln n / n); sync GHS runs the plain
  // connectivity radius (same formula, default factor).
  return rgg::connectivity_radius(n);
}

// --- Child mode ----------------------------------------------------------

template <typename Topo>
ChildReport run_one(Topo&& make_topo, const std::string& algo) {
  ChildReport out;
  const auto start = Clock::now();
  const auto topo = make_topo();  // topology build is part of the story
  // EOPT's facade phases are step1 + step2 (run.cpp absorbs the sum).
  const emst::RunResult run = emst::run(
      topo, emst::config_for(algo == "eopt" ? emst::Driver::kEopt
                                            : emst::Driver::kSyncGhs));
  out.energy = run.totals.energy;
  out.tree_edges = run.tree.size();
  out.phases = run.phases;
  out.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  return out;
}

int run_child(const std::string& algo, const std::string& backend,
              std::size_t n, std::uint64_t seed, const std::string& out_path) {
  support::Rng rng(seed);
  auto points = geometry::uniform_points(n, rng);
  const double radius = algo_radius(algo, n);

  ChildReport report;
  if (backend == "implicit") {
    report = run_one(
        [&] { return sim::ImplicitTopology(std::move(points), radius); },
        algo);
  } else {
    report = run_one([&] { return sim::Topology(std::move(points), radius); },
                     algo);
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "wall_ms=%.6f energy=%a tree_edges=%llu phases=%llu\n",
               report.wall_ms, report.energy,
               static_cast<unsigned long long>(report.tree_edges),
               static_cast<unsigned long long>(report.phases));
  std::fclose(out);
  return 0;
}

// --- Parent mode ---------------------------------------------------------

struct Row {
  Config config;
  std::string status;  ///< "ok" | "skipped" | "failed"
  ChildReport report;
  std::uint64_t peak_rss_bytes = 0;
  double projected_bytes = 0.0;  ///< set for skipped materialized configs
};

/// fork + re-exec this binary for one configuration; fills wall/energy from
/// the child's report file and peak RSS from wait4's rusage.
bool spawn_config(const char* self, const Config& config, std::uint64_t seed,
                  const std::string& tmp_path, Row& row) {
  std::vector<std::string> args = {
      self,
      "--worker=1",
      "--algo=" + config.algo,
      "--backend=" + config.backend,
      "--n=" + std::to_string(config.n),
      "--seed=" + std::to_string(seed),
      "--out=" + tmp_path,
  };
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    return false;
  }
  if (pid == 0) {
    execv(self, argv.data());
    std::perror("execv");
    _exit(127);
  }
  int status = 0;
  struct rusage usage {};
  if (wait4(pid, &status, 0, &usage) != pid) {
    std::perror("wait4");
    return false;
  }
  row.peak_rss_bytes = static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) return false;

  std::FILE* in = std::fopen(tmp_path.c_str(), "r");
  if (in == nullptr) return false;
  unsigned long long edges = 0;
  unsigned long long phases = 0;
  const int got =
      std::fscanf(in, "wall_ms=%lf energy=%la tree_edges=%llu phases=%llu",
                  &row.report.wall_ms, &row.report.energy, &edges, &phases);
  std::fclose(in);
  std::remove(tmp_path.c_str());
  if (got != 4) return false;
  row.report.tree_edges = edges;
  row.report.phases = phases;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(
      argc, argv,
      {{"ns-eopt", "EOPT sizes (default 10000,100000,1000000,10000000)"},
       {"ns-sync", "sync-GHS sizes (default 10000,100000,1000000)"},
       {"seed", "point-set seed (default 2026)"},
       {"json", "output JSON path (default BENCH_scale.json)"},
       {"mem-budget-gb", "materialized-path memory budget in GiB (default 16)"},
       {"quick", "1 = CI smoke run (n = 2000, 8000; both algos)"},
       {"allow-debug", "1 = run despite a non-Release build; the record is "
                       "marked untracked"},
       {"worker", "(internal) child mode"},
       {"algo", "(internal) child algorithm"},
       {"backend", "(internal) child backend"},
       {"n", "(internal) child deployment size"},
       {"out", "(internal) child report path"}});

  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2026));
  if (cli.get_int("worker", 0) != 0) {
    return run_child(cli.get("algo", "eopt"), cli.get("backend", "implicit"),
                     static_cast<std::size_t>(cli.get_int("n", 10000)), seed,
                     cli.get("out", "scale_sweep_child.tmp"));
  }

  const std::string build_type = EMST_CMAKE_BUILD_TYPE;
  std::string build_lower = build_type;
  std::transform(build_lower.begin(), build_lower.end(), build_lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  const bool release = build_lower == "release";
  const bool allow_debug = cli.get_int("allow-debug", 0) != 0;
  if (!release && !allow_debug) {
    std::fprintf(stderr,
                 "error: this binary was built as %s, not Release — a tracked "
                 "scaling record from it would be meaningless. Rebuild with "
                 "-DCMAKE_BUILD_TYPE=Release, or pass --allow-debug=1 to get "
                 "an untracked record.\n",
                 build_type.empty() ? "(unspecified)" : build_type.c_str());
    return 1;
  }
  const bool untracked = !release;

  const bool quick = cli.get_int("quick", 0) != 0;
  const auto ns_eopt = cli.get_int_list(
      "ns-eopt", quick ? std::vector<std::int64_t>{2000, 8000}
                       : std::vector<std::int64_t>{10000, 100000, 1000000,
                                                   10000000});
  const auto ns_sync = cli.get_int_list(
      "ns-sync", quick ? std::vector<std::int64_t>{2000, 8000}
                       : std::vector<std::int64_t>{10000, 100000, 1000000});
  const double budget_gb = cli.get_double("mem-budget-gb", 16.0);
  const double budget_bytes = budget_gb * 1024.0 * 1024.0 * 1024.0;
  const std::string json_path = cli.get("json", "BENCH_scale.json");
  const std::string tmp_path = json_path + ".child.tmp";
  const unsigned hw = std::thread::hardware_concurrency();

  std::vector<Config> configs;
  for (const auto n : ns_eopt)
    for (const char* backend : {"materialized", "implicit"})
      configs.push_back({"eopt", backend, static_cast<std::size_t>(n)});
  for (const auto n : ns_sync)
    for (const char* backend : {"materialized", "implicit"})
      configs.push_back({"sync", backend, static_cast<std::size_t>(n)});

  std::printf("scale sweep: seed=%llu, mem budget %.1f GiB (materialized "
              "path), build=%s, hardware_concurrency=%u\n\n",
              static_cast<unsigned long long>(seed), budget_gb,
              build_type.empty() ? "?" : build_type.c_str(), hw);

  std::vector<Row> rows;
  bool all_ok = true;
  for (const Config& config : configs) {
    Row row;
    row.config = config;
    if (config.backend == "materialized") {
      row.projected_bytes =
          projected_materialized_bytes(config.n, algo_radius(config.algo, config.n));
      if (row.projected_bytes > budget_bytes) {
        row.status = "skipped";
        std::printf("%-5s %-12s n=%-9zu SKIPPED (projected %.1f GiB > "
                    "budget)\n",
                    config.algo.c_str(), config.backend.c_str(), config.n,
                    row.projected_bytes / (1024.0 * 1024.0 * 1024.0));
        rows.push_back(row);
        continue;
      }
    }
    std::printf("%-5s %-12s n=%-9zu running...\n", config.algo.c_str(),
                config.backend.c_str(), config.n);
    std::fflush(stdout);
    if (spawn_config(argv[0], config, seed, tmp_path, row)) {
      row.status = "ok";
      std::printf("%-5s %-12s n=%-9zu %10.0f ms  peak %8.1f MiB  "
                  "edges=%llu\n",
                  config.algo.c_str(), config.backend.c_str(), config.n,
                  row.report.wall_ms,
                  static_cast<double>(row.peak_rss_bytes) / (1024.0 * 1024.0),
                  static_cast<unsigned long long>(row.report.tree_edges));
    } else {
      row.status = "failed";
      all_ok = false;
      std::printf("%-5s %-12s n=%-9zu FAILED (peak %8.1f MiB)\n",
                  config.algo.c_str(), config.backend.c_str(), config.n,
                  static_cast<double>(row.peak_rss_bytes) / (1024.0 * 1024.0));
    }
    rows.push_back(row);
  }

  // Backend identity: where both completed at the same (algo, n), the energy
  // figure must be bitwise equal — same contract the differential suite pins.
  bool identical = true;
  for (const Row& a : rows) {
    if (a.status != "ok" || a.config.backend != "materialized") continue;
    for (const Row& b : rows) {
      if (b.status != "ok" || b.config.backend != "implicit") continue;
      if (b.config.algo != a.config.algo || b.config.n != a.config.n) continue;
      if (a.report.energy != b.report.energy ||
          a.report.tree_edges != b.report.tree_edges) {
        identical = false;
        std::fprintf(stderr,
                     "error: backends diverged at %s n=%zu "
                     "(energy %.17g vs %.17g)\n",
                     a.config.algo.c_str(), a.config.n, a.report.energy,
                     b.report.energy);
      }
    }
  }
  all_ok &= identical;

  {
    std::ofstream os(json_path);
    if (!os) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    support::JsonWriter json(os);
    json.begin_object();
    json.key("bench").value("scale_sweep");
    json.key("build_type").value(build_type);
    if (untracked) json.key("untracked").value(true);
    json.key("hardware_concurrency").value(static_cast<std::uint64_t>(hw));
    json.key("seed").value(seed);
    json.key("mem_budget_bytes").value(budget_bytes);
    json.key("identical").value(identical);
    json.key("rows").begin_array();
    for (const Row& row : rows) {
      json.begin_object();
      json.key("algo").value(row.config.algo);
      json.key("backend").value(row.config.backend);
      json.key("n").value(static_cast<std::uint64_t>(row.config.n));
      json.key("status").value(row.status);
      if (row.status == "ok") {
        json.key("wall_ms").value(row.report.wall_ms);
        json.key("peak_rss_bytes").value(row.peak_rss_bytes);
        json.key("energy").value(row.report.energy);
        json.key("tree_edges").value(row.report.tree_edges);
        json.key("phases").value(row.report.phases);
      }
      if (row.config.backend == "materialized")
        json.key("projected_bytes").value(row.projected_bytes);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    os << '\n';
  }
  std::printf("\nwrote %s\n", json_path.c_str());

  support::Table table({"algo", "backend", "n", "status", "wall_s",
                        "peak_rss_mb"});
  for (const Row& row : rows) {
    table.add_row({row.config.algo, row.config.backend,
                   static_cast<long long>(row.config.n), row.status,
                   row.report.wall_ms / 1000.0,
                   static_cast<double>(row.peak_rss_bytes) / (1024.0 * 1024.0)});
  }
  table.print(std::cout);
  std::printf("\nreading guide: peak_rss_mb is the child process's ru_maxrss "
              "— each configuration runs in its own process, so the number "
              "is that run's true peak. Skipped rows are materialized "
              "configurations whose projected allocation exceeds the memory "
              "budget; the implicit backend has no such rows. 'identical' "
              "rows confirm both backends produced bitwise-equal energy and "
              "tree size wherever both ran.\n");
  return all_ok ? 0 : 1;
}
