// Scaling and wire-cost profile of the distributed engine
// (docs/DISTRIBUTED.md).
//
// The parallel_scaling pump workload — fixed message counts on the
// delayed-collect scenario — timed on the serial calendar engine
// (`sim::Network`) and on `sim::DistributedNetwork` at rank counts
// {1, 2, 4}. Unlike the sharded engine, every cross-rank message here
// crosses a real socketpair as proto-codec bytes, so alongside wall time
// the tracked BENCH_dist.json records bytes-on-wire (frame bytes sent to
// and received from the rank processes, plus the payload bytes inside
// them): the wire tax is the whole story of this engine's overhead.
//
// Every rank count is timed under BOTH execution placements
// (docs/DISTRIBUTED.md §6): routing placement ("parent" — ranks are byte
// routers, the parent merges and dispatches) and actor placement ("rank" —
// a node actor runs the message handlers inside the rank processes and
// ships an effect ledger home). The tracked records carry a
// `handler_placement` field so the two cost profiles stay distinguishable.
//
// Every timed run is also a determinism check: the distributed engine must
// deliver exactly the sent message count and reproduce the serial engine's
// energy total bit-for-bit at every rank count and placement. The actor
// runs additionally harvest the rank-resident handler-invocation counter —
// it must equal the message count (every handler ran out there, none in the
// parent). A mismatch exits non-zero — the engine's contract is bitwise
// equivalence, not approximate agreement.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "emst/geometry/sampling.hpp"
#include "emst/proto/wire.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/sim/actor.hpp"
#include "emst/sim/distributed_network.hpp"
#include "emst/sim/network.hpp"
#include "emst/support/cli.hpp"
#include "emst/support/json.hpp"
#include "emst/support/rng.hpp"
#include "emst/support/stats.hpp"
#include "emst/support/table.hpp"

namespace {

using namespace emst;

using Payload = std::uint64_t;
constexpr std::size_t kSendRounds = 32;

struct World {
  sim::Topology topo;
  std::vector<std::pair<sim::NodeId, sim::NodeId>> sched;  ///< in-range pairs
};

World make_world(std::size_t nodes, std::size_t max_messages,
                 std::uint64_t seed) {
  support::Rng rng(seed);
  const auto points = geometry::uniform_points(nodes, rng);
  sim::Topology topo(points, rgg::connectivity_radius(nodes));
  std::vector<std::pair<sim::NodeId, sim::NodeId>> sched;
  sched.reserve(max_messages);
  while (sched.size() < max_messages) {
    const auto u = static_cast<sim::NodeId>(rng.uniform_int(nodes));
    const auto nbs = topo.neighbors(u);
    if (nbs.empty()) continue;
    sched.emplace_back(u, nbs[rng.uniform_int(nbs.size())].id);
  }
  return World{std::move(topo), std::move(sched)};
}

struct Sample {
  double millis = 0.0;
  std::size_t delivered = 0;
  double energy = 0.0;       ///< cross-engine identity check
  std::uint64_t wire_sent = 0;      ///< frame bytes parent -> ranks
  std::uint64_t wire_received = 0;  ///< frame bytes ranks -> parent
  std::uint64_t payload_bytes = 0;  ///< codec bytes inside the frames
  std::uint64_t rank_invocations = 0;  ///< harvested handler count (actor)
};

using Clock = std::chrono::steady_clock;

/// The perf_sim steady-state pump: send over kSendRounds rounds, collecting
/// each round, then drain. Construction is timed too — for the distributed
/// engine that includes forking the rank processes.
template <typename Net, typename... Extra>
Sample run_pump(const World& w, std::size_t messages, std::uint32_t delay,
                Extra... extra) {
  const std::size_t per_round = (messages + kSendRounds - 1) / kSendRounds;
  const auto start = Clock::now();
  Net net(w.topo, {}, /*unbounded_broadcast=*/false,
          sim::DelayModel{delay, 0xbe7cULL}, {}, nullptr, extra...);
  std::size_t sent = 0;
  Sample out;
  while (sent < messages || net.pending()) {
    const std::size_t stop = std::min(messages, sent + per_round);
    for (; sent < stop; ++sent)
      net.unicast(w.sched[sent].first, w.sched[sent].second, sent);
    out.delivered += net.collect_round().size();
  }
  out.millis =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  out.energy = net.meter().totals().energy;
  if constexpr (requires { net.bytes_sent(); }) {
    out.wire_sent = net.bytes_sent();
    out.wire_received = net.bytes_received();
    out.payload_bytes = net.payload_bytes_sent();
  }
  return out;
}

/// The same pump under actor placement: a node actor whose handlers count
/// deliveries and emit no effects, so the timed delta against the routing
/// pump is pure execution placement — rank-side handler execution plus the
/// effect-ledger half of the barrier, no algorithmic work.
struct PumpActor {
  void on_round_start(std::uint64_t /*round*/) {}
  template <typename Env>
  void on_message(const sim::Delivery<Payload>& /*d*/, Env& /*env*/) {
    ++invocations_;
  }
  template <typename LocalPred, typename Env, typename Emit>
  void step(std::uint8_t /*kind*/, std::uint64_t /*param*/,
            std::span<const sim::NodeId> /*list*/,
            const sim::FaultInjector& /*faults*/, bool /*faulty*/,
            LocalPred&& /*is_local*/, Env& /*env*/, Emit&& /*emit*/) {}
  void encode_node(sim::NodeId /*u*/, proto::BitWriter& /*w*/) const {}
  void decode_node(sim::NodeId /*u*/, proto::BitReader& /*r*/) {}
  [[nodiscard]] std::uint64_t invocations() const { return invocations_; }

 private:
  std::uint64_t invocations_ = 0;
};

/// Effect-replay observer for the actor pump: the actor emits nothing, so
/// every callback is a no-op.
struct PumpSink {
  void on_send(std::uint8_t /*dtag*/, double /*reach*/) {}
  void on_step_node(sim::NodeId /*u*/, std::uint8_t /*flag*/) {}
  void on_note(sim::NodeId /*u*/, std::uint32_t /*a*/, std::uint64_t /*b*/) {}
};

Sample run_pump_actor(const World& w, std::size_t messages,
                      std::uint32_t delay, std::size_t ranks) {
  const std::size_t per_round = (messages + kSendRounds - 1) / kSendRounds;
  const auto start = Clock::now();
  sim::DistributedNetwork<Payload> net(w.topo, {}, /*unbounded_broadcast=*/false,
                                       sim::DelayModel{delay, 0xbe7cULL}, {},
                                       nullptr, ranks);
  PumpActor actor;
  net.install_actor(actor, /*faulty=*/false);
  PumpSink sink;
  std::size_t sent = 0;
  Sample out;
  while (sent < messages || net.pending()) {
    const std::size_t stop = std::min(messages, sent + per_round);
    for (; sent < stop; ++sent)
      net.unicast(w.sched[sent].first, w.sched[sent].second, sent);
    out.delivered += net.actor_collect_round(sink).batch;
  }
  out.millis =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  out.energy = net.meter().totals().energy;
  // Placement witness: every handler ran inside a rank, none here.
  out.rank_invocations = net.actor_harvest(actor);
  out.wire_sent = net.bytes_sent();
  out.wire_received = net.bytes_received();
  out.payload_bytes = net.payload_bytes_sent();
  return out;
}

struct Timing {
  support::RunningStats ms;
  bool checks_ok = true;
  std::uint64_t wire_sent = 0;
  std::uint64_t wire_received = 0;
  std::uint64_t payload_bytes = 0;
};

struct Scenario {
  std::size_t messages = 0;
  Timing serial;
  std::vector<Timing> dist;   ///< routing placement, one per rank count
  std::vector<Timing> actor;  ///< actor placement, one per rank count
  double serial_energy = 0.0;
};

/// Payload-vs-frame sanity (tracked-record invariant): codec bytes ride
/// inside the frame bytes, so the strict inequality can only be asserted
/// once at least one message actually crossed a rank boundary — a run whose
/// traffic never left the parent records payload_bytes == 0 legitimately.
bool payload_within_wire(const Sample& s) {
  return s.payload_bytes == 0 || s.payload_bytes < s.wire_sent;
}

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(
      argc, argv,
      {{"nodes", "deployment size for the pump topology (default 2048)"},
       {"messages", "comma list of message counts (default 10000,100000)"},
       {"ranks", "comma list of rank-process counts (default 1,2,4)"},
       {"delay", "max extra delay D for the delayed-collect scenario (default 5)"},
       {"trials", "timed repetitions per engine config (default 3)"},
       {"seed", "master seed (default 2026)"},
       {"json", "output JSON path (default BENCH_dist.json)"},
       {"quick", "1 = CI-sized run (5k/20k messages, 2 trials)"}});
  const bool quick = cli.get_int("quick", 0) != 0;
  const auto nodes =
      static_cast<std::size_t>(cli.get_int("nodes", quick ? 512 : 2048));
  const auto message_counts = cli.get_int_list(
      "messages", quick ? std::vector<std::int64_t>{5000, 20000}
                        : std::vector<std::int64_t>{10000, 100000});
  const auto rank_counts = cli.get_int_list("ranks", {1, 2, 4});
  const auto delay = static_cast<std::uint32_t>(cli.get_int("delay", 5));
  const auto trials =
      static_cast<std::size_t>(cli.get_int("trials", quick ? 2 : 3));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2026));
  const std::string json_path = cli.get("json", "BENCH_dist.json");

  const unsigned hw = std::thread::hardware_concurrency();
  std::size_t max_messages = 0;
  for (const auto m : message_counts)
    max_messages = std::max(max_messages, static_cast<std::size_t>(m));

  std::printf("distributed scaling: pump at n(nodes)=%zu, D=%u, %zu trials, "
              "host hardware_concurrency=%u\n\n",
              nodes, delay, trials, hw);
  const World w = make_world(nodes, max_messages, seed);

  std::vector<Scenario> scenarios;
  for (const auto m : message_counts) {
    Scenario sc;
    sc.messages = static_cast<std::size_t>(m);
    sc.dist.resize(rank_counts.size());
    sc.actor.resize(rank_counts.size());

    // Untimed warm-up, and the energy reference for the identity check.
    sc.serial_energy =
        run_pump<sim::Network<Payload>>(w, sc.messages, delay).energy;

    for (std::size_t t = 0; t < trials; ++t) {
      const Sample s = run_pump<sim::Network<Payload>>(w, sc.messages, delay);
      sc.serial.ms.add(s.millis);
      sc.serial.checks_ok &=
          s.delivered == sc.messages && s.energy == sc.serial_energy;
      for (std::size_t ri = 0; ri < rank_counts.size(); ++ri) {
        const auto ranks = static_cast<std::size_t>(rank_counts[ri]);
        const Sample p = run_pump<sim::DistributedNetwork<Payload>>(
            w, sc.messages, delay, ranks);
        sc.dist[ri].ms.add(p.millis);
        // The whole point: same count, bitwise-same energy, at every width.
        sc.dist[ri].checks_ok &= p.delivered == sc.messages &&
                                 p.energy == sc.serial_energy &&
                                 payload_within_wire(p);
        sc.dist[ri].wire_sent = p.wire_sent;
        sc.dist[ri].wire_received = p.wire_received;
        sc.dist[ri].payload_bytes = p.payload_bytes;

        // Same width, actor placement: handlers execute inside the ranks.
        const Sample a = run_pump_actor(w, sc.messages, delay, ranks);
        sc.actor[ri].ms.add(a.millis);
        sc.actor[ri].checks_ok &= a.delivered == sc.messages &&
                                  a.energy == sc.serial_energy &&
                                  a.rank_invocations == sc.messages &&
                                  payload_within_wire(a);
        sc.actor[ri].wire_sent = a.wire_sent;
        sc.actor[ri].wire_received = a.wire_received;
        sc.actor[ri].payload_bytes = a.payload_bytes;
      }
    }
    scenarios.push_back(std::move(sc));
  }

  std::vector<std::string> header = {"messages", "serial_ms"};
  for (const auto r : rank_counts) {
    std::string col = "r";
    col += std::to_string(r);
    col += "_slowdown";
    header.push_back(std::move(col));
    col = "r";
    col += std::to_string(r);
    col += "_actor_slowdown";
    header.push_back(std::move(col));
    col = "r";
    col += std::to_string(r);
    col += "_wire_mb";
    header.push_back(std::move(col));
  }
  header.emplace_back("identical");
  support::Table table(header);
  bool all_ok = true;
  for (const Scenario& sc : scenarios) {
    std::vector<support::Cell> row = {
        static_cast<long long>(sc.messages), sc.serial.ms.mean()};
    bool ok = sc.serial.checks_ok;
    for (std::size_t ri = 0; ri < sc.dist.size(); ++ri) {
      row.emplace_back(sc.dist[ri].ms.mean() / sc.serial.ms.mean());
      row.emplace_back(sc.actor[ri].ms.mean() / sc.serial.ms.mean());
      row.emplace_back(
          static_cast<double>(sc.dist[ri].wire_sent +
                              sc.dist[ri].wire_received) /
          (1024.0 * 1024.0));
      ok &= sc.dist[ri].checks_ok && sc.actor[ri].checks_ok;
    }
    row.emplace_back(std::string(ok ? "yes" : "NO"));
    all_ok &= ok;
    table.add_row(row);
  }
  table.print(std::cout);

  {
    std::ofstream os(json_path);
    if (!os) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    support::JsonWriter json(os);
    json.begin_object();
    json.key("bench").value("dist_scaling");
    json.key("hardware_concurrency").value(static_cast<std::uint64_t>(hw));
    json.key("nodes").value(static_cast<std::uint64_t>(nodes));
    json.key("max_extra_delay").value(static_cast<std::uint64_t>(delay));
    json.key("trials").value(static_cast<std::uint64_t>(trials));
    json.key("seed").value(seed);
    json.key("identical").value(all_ok);
    json.key("scenarios").begin_array();
    for (const Scenario& sc : scenarios) {
      json.begin_object();
      json.key("messages").value(static_cast<std::uint64_t>(sc.messages));
      json.key("serial_ms").begin_object();
      json.key("mean").value(sc.serial.ms.mean());
      json.key("stddev").value(sc.serial.ms.stddev());
      json.end_object();
      json.key("distributed").begin_array();
      for (std::size_t ri = 0; ri < rank_counts.size(); ++ri) {
        for (const bool actor_row : {false, true}) {
          const Timing& timing = actor_row ? sc.actor[ri] : sc.dist[ri];
          json.begin_object();
          json.key("ranks").value(static_cast<std::uint64_t>(rank_counts[ri]));
          json.key("handler_placement")
              .value(std::string(actor_row ? "rank" : "parent"));
          json.key("mean_ms").value(timing.ms.mean());
          json.key("stddev_ms").value(timing.ms.stddev());
          json.key("slowdown_vs_serial")
              .value(timing.ms.mean() / sc.serial.ms.mean());
          json.key("wire_bytes_sent").value(timing.wire_sent);
          json.key("wire_bytes_received").value(timing.wire_received);
          json.key("payload_bytes").value(timing.payload_bytes);
          json.end_object();
        }
      }
      json.end_array();
      json.end_object();
    }
    json.end_array();
    json.end_object();
    os << '\n';
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  std::printf("\nreading guide: rN_slowdown is the distributed engine's wall "
              "time at N rank processes divided by the serial engine's — the "
              "price of a real wire; rN_actor_slowdown is the same width with "
              "the handlers executing INSIDE the ranks (actor placement, "
              "docs/DISTRIBUTED.md §6); rN_wire_mb is the routing-placement "
              "frame traffic both directions. Interpret against "
              "hardware_concurrency=%u. 'identical' confirms both placements "
              "reproduced the serial delivery count and energy bit-for-bit at "
              "every rank count, and that the actor runs executed every "
              "handler rank-side; a NO is a determinism-contract violation "
              "and the bench exits non-zero.\n",
              hw);
  if (!all_ok) {
    std::fprintf(stderr, "error: distributed engine diverged from the serial "
                         "reference — determinism contract violated\n");
    return 1;
  }
  return 0;
}
