// Figure 3(a) reproduction: total energy consumed by GHS, EOPT, and Co-NNT
// as the number of nodes grows from 50 to 5000 (paper §VII).
//
// Expected shape: GHS ≫ EOPT ≫ Co-NNT at every n, with the gap widening —
// the paper's Fig 3(a) shows GHS reaching ~700 energy units at n = 5000
// while EOPT and Co-NNT stay near the bottom. Absolute values depend on the
// (unpublished) constants of the authors' simulator; ordering and growth
// are the reproduction targets.
#include <cstdio>
#include <iostream>

#include "emst/harness/figures.hpp"
#include "emst/support/cli.hpp"

int main(int argc, char** argv) {
  using namespace emst;
  const support::Cli cli(argc, argv,
                         {{"ns", "comma-separated node counts"},
                          {"trials", "trials per point (default 10)"},
                          {"seed", "master seed (default 2008)"},
                          {"alpha", "path-loss exponent (default 2)"},
                          {"sync-baseline", "use phase-sync probe GHS as baseline"},
                          {"csv", "write CSV to this path"}});
  const auto ns64 = cli.get_int_list(
      "ns", {50, 100, 250, 500, 1000, 1500, 2000, 3000, 4000, 5000});
  std::vector<std::size_t> ns(ns64.begin(), ns64.end());
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 10));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2008));

  std::printf("Figure 3(a): energy vs n  (GHS @ 1.6*sqrt(ln n/n), "
              "EOPT steps 1.4*sqrt(1/n) -> 1.6*sqrt(ln n/n), Co-NNT)\n");
  std::printf("paper reference: GHS ~700 at n=5000, EOPT and Co-NNT near "
              "the axis; exact = trials where GHS/EOPT matched Kruskal\n\n");

  const harness::Fig3Data data =
      harness::run_fig3(ns, trials, seed, cli.get_bool("sync-baseline", false),
                        cli.get_double("alpha", 2.0));
  const auto table = harness::fig3a_table(data);
  table.print(std::cout);

  if (cli.has("csv")) table.save_csv(cli.get("csv", ""));

  // Sanity verdicts mirrored in tests: ordering at the largest n.
  const auto& last = data.points.back();
  std::printf("\nverdict: GHS/EOPT energy ratio at n=%zu: %.2f (paper: >1, "
              "growing with n)\n",
              last.n, last.ghs_energy / last.eopt_energy);
  std::printf("verdict: EOPT/Co-NNT energy ratio at n=%zu: %.2f\n", last.n,
              last.eopt_energy / last.connt_energy);
  return 0;
}
