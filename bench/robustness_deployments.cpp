// Robustness sweep: the paper's results under non-uniform deployments.
//
// Every theorem in the paper assumes i.i.d. uniform nodes. This bench
// re-runs the headline comparison (GHS vs EOPT vs Co-NNT energy, exactness,
// Step-1 giant emergence) on five deployment models (geometry/deployments)
// and reports where the uniform story bends:
//  - clustered fields percolate EARLIER locally but may strand clusters;
//  - a coverage hole splits the giant or blocks connectivity entirely;
//  - the density gradient stresses Co-NNT's diagonal ranking geometry.
// The EOPT call stays on the expert surface: this bench reports the
// giant-fragment share, which only eopt::EoptResult carries.
#define EMST_NO_DEPRECATE
#include <cstdio>
#include <iostream>

#include "emst/eopt/eopt.hpp"
#include "emst/geometry/deployments.hpp"
#include "emst/ghs/classic.hpp"
#include "emst/graph/mst.hpp"
#include "emst/graph/tree_utils.hpp"
#include "emst/nnt/connt.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/run.hpp"
#include "emst/support/cli.hpp"
#include "emst/support/parallel.hpp"
#include "emst/support/rng.hpp"
#include "emst/support/stats.hpp"
#include "emst/support/table.hpp"

int main(int argc, char** argv) {
  using namespace emst;
  const support::Cli cli(argc, argv,
                         {{"n", "node count (default 2000)"},
                          {"trials", "trials (default 8)"},
                          {"seed", "master seed (default 2008)"},
                          {"csv", "write CSV to this path"}});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 2000));
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 8));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2008));

  std::printf("deployment robustness at n=%zu: does the paper's story "
              "survive non-uniform fields?\n\n", n);

  support::Table table({"deployment", "connected", "GHS", "EOPT", "Co-NNT",
                        "EOPT_exact", "giant_frac", "CoNNT_len_ratio"});
  table.set_precision(6, 3);
  table.set_precision(7, 3);

  for (const geometry::Deployment model : geometry::all_deployments()) {
    struct Out {
      double ghs = 0.0, eopt = 0.0, connt = 0.0, giant = 0.0, ratio = 0.0;
      bool connected = false, exact = false;
    };
    std::vector<Out> outs(trials);
    support::parallel_for(trials, [&](std::size_t t) {
      support::Rng rng(support::Rng::stream_seed(
          seed ^ static_cast<std::uint64_t>(model), t));
      const auto points = geometry::sample_deployment(model, n, rng);
      const sim::Topology topo(points, rgg::connectivity_radius(n));
      const auto reference = graph::kruskal_msf(n, topo.graph().edges());
      Out& out = outs[t];
      out.connected = reference.size() == n - 1;
      out.ghs = run(topo, config_for(Driver::kClassicGhs)).totals.energy;
      const auto eo = eopt::run_eopt(topo);
      out.eopt = eo.run.totals.energy;
      out.exact = graph::same_edge_set(eo.run.tree, reference);
      out.giant = static_cast<double>(eo.giant_size) / static_cast<double>(n);
      const auto co = run(topo, config_for(Driver::kCoNnt));
      out.connt = co.totals.energy;
      const double ref_len = graph::tree_cost(points, reference, 1.0);
      out.ratio = ref_len > 0.0
                      ? graph::tree_cost(points, co.tree, 1.0) / ref_len
                      : 0.0;
    });
    support::RunningStats ghs_e;
    support::RunningStats eopt_e;
    support::RunningStats connt_e;
    support::RunningStats giant;
    support::RunningStats ratio;
    std::size_t connected = 0;
    std::size_t exact = 0;
    for (const Out& o : outs) {
      ghs_e.add(o.ghs);
      eopt_e.add(o.eopt);
      connt_e.add(o.connt);
      giant.add(o.giant);
      ratio.add(o.ratio);
      if (o.connected) ++connected;
      if (o.exact) ++exact;
    }
    table.add_row({std::string(geometry::deployment_name(model)),
                   std::string(std::to_string(connected) + "/" +
                               std::to_string(trials)),
                   ghs_e.mean(), eopt_e.mean(), connt_e.mean(),
                   std::string(std::to_string(exact) + "/" +
                               std::to_string(trials)),
                   giant.mean(), ratio.mean()});
  }
  table.print(std::cout);
  if (cli.has("csv")) table.save_csv(cli.get("csv", ""));
  std::printf("\nreading guide: EOPT stays exact (it never assumed "
              "uniformity — only Thm 5.2's ENERGY bound did); the energy "
              "ordering survives every model; Co-NNT's ratio is the number "
              "to watch under the gradient (its potential-angle lemma is "
              "uniform-specific).\n");
  return 0;
}
