// Chaos campaign: adversarial crash strategies vs every driver
// (docs/ROBUSTNESS.md).
//
// For each driver (EOPT, single-phase GHS, classic GHS, Co-NNT) and each
// shipped chaos strategy (kill_leader, sever_core_edge, partition_half,
// crash_wave) the campaign runs `trials` seeded fields with the adversarial
// fault controller attached and the invariant oracle on, then reports:
//
//   survival  — fraction of nodes still alive at termination (the strategies
//               kill permanently, budget-capped at 20% of n);
//   exact     — fraction of trials whose output matched the survivor-subgraph
//               recomputation (Kruskal MSF over the edges with both endpoints
//               alive; for Co-NNT the nearest higher-ranked surviving node
//               within the protocol's doubling-radius cap). The fail-stop
//               contract says this must be 1.0 — enforced by
//               scripts/validate_bench.py on the tracked BENCH_chaos.json;
//   overhead  — energy vs the same driver's fault-free run on the same field
//               (the price of crash repair / epoch restarts);
//   kills     — mean nodes the strategy killed;
//   oracle_violations — runtime invariant failures (must stay 0).
// The Co-NNT branch stays on the expert surface: the campaign's
// degradation oracle walks CoNntResult::parent, which the emst::run
// facade result does not carry.
#define EMST_NO_DEPRECATE
#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "emst/eopt/eopt.hpp"
#include "emst/geometry/sampling.hpp"
#include "emst/ghs/classic.hpp"
#include "emst/ghs/sync.hpp"
#include "emst/graph/mst.hpp"
#include "emst/graph/tree_utils.hpp"
#include "emst/nnt/connt.hpp"
#include "emst/sim/chaos.hpp"
#include "emst/sim/oracle.hpp"
#include "emst/run.hpp"
#include "emst/support/cli.hpp"
#include "emst/support/json.hpp"
#include "emst/support/rng.hpp"
#include "emst/support/stats.hpp"
#include "emst/support/table.hpp"

namespace {

using namespace emst;

constexpr std::array<std::string_view, 4> kDrivers = {
    "eopt", "sync_ghs", "classic_ghs", "connt"};

/// One chaos run: output tree/parents + accounting + the crash record.
struct RunOut {
  std::vector<graph::Edge> tree;
  std::vector<graph::NodeId> parent;  ///< connt only
  double energy = 0.0;
  std::vector<sim::CrashWindow> injected;
  std::size_t kills = 0;
  std::size_t epochs = 1;
};

/// Per-node alive mask from a permanent-kill injection record.
std::vector<char> alive_mask(std::size_t n,
                             std::span<const sim::CrashWindow> injected) {
  std::vector<char> alive(n, 1);
  for (const sim::CrashWindow& w : injected) {
    if (w.until == sim::kCrashForever && w.node < n) alive[w.node] = 0;
  }
  return alive;
}

/// Survivor-subgraph MSF: Kruskal over the edges with both endpoints alive —
/// the oracle every MST driver's chaos output is checked against.
std::vector<graph::Edge> survivor_msf(const sim::Topology& topo,
                                      const std::vector<char>& alive) {
  std::vector<graph::Edge> edges;
  for (const graph::Edge& e : topo.graph().edges()) {
    if (alive[e.u] && alive[e.v]) edges.push_back(e);
  }
  return graph::kruskal_msf(topo.node_count(), std::move(edges));
}

/// The Co-NNT contract under fail-stop: every survivor connects to its
/// nearest higher-ranked survivor within the doubling schedule's terminal
/// radius (the protocol stops doubling after m = ceil(lg(n_est * L_u^2))
/// rounds, so a node whose higher-ranked neighbours all died beyond that
/// radius legitimately terminates as a root). Dead nodes stay parentless.
std::vector<graph::NodeId> survivor_nnt_parents(
    std::span<const geometry::Point2> points, const std::vector<char>& alive,
    nnt::RankScheme scheme) {
  const std::size_t n = points.size();
  const double n_est = std::max(2.0, static_cast<double>(n));
  std::vector<graph::NodeId> parent(n, graph::kNoNode);
  for (graph::NodeId u = 0; u < n; ++u) {
    if (!alive[u]) continue;
    const double lu = nnt::potential_distance(scheme, points[u]);
    const double m =
        std::max(1.0, std::ceil(std::log2(std::max(2.0, n_est * lu * lu))));
    const double cap = std::min(std::sqrt(std::pow(2.0, m) / n_est),
                                std::sqrt(2.0));
    graph::NodeId best = graph::kNoNode;
    double best_d = 0.0;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (v == u || !alive[v]) continue;
      if (!nnt::rank_less(scheme, points, u, v)) continue;
      const double d = geometry::distance(points[u], points[v]);
      if (d > cap) continue;
      if (best == graph::kNoNode || d < best_d || (d == best_d && v < best)) {
        best = v;
        best_d = d;
      }
    }
    parent[u] = best;
  }
  return parent;
}

RunOut run_driver(std::string_view driver, const sim::Topology& topo,
                  sim::FaultController* controller, std::uint64_t fault_seed,
                  sim::InvariantOracle* oracle) {
  sim::FaultModel faults;
  faults.controller = controller;
  faults.seed = fault_seed;
  RunOut out;
  if (driver == "eopt" || driver == "sync_ghs" || driver == "classic_ghs") {
    emst::RunConfig cfg = emst::config_for(
        driver == "eopt" ? emst::Driver::kEopt
        : driver == "sync_ghs" ? emst::Driver::kSyncGhs
                               : emst::Driver::kClassicGhs);
    cfg.faults = faults;
    cfg.oracle = oracle;
    emst::RunResult res = emst::run(topo, cfg);
    out.tree = std::move(res.tree);
    out.energy = res.totals.energy;
    out.injected = std::move(res.injected_crashes);
    out.epochs = res.epochs;
  } else {
    nnt::CoNntOptions opt;
    opt.faults = faults;
    opt.oracle = oracle;
    auto res = nnt::run_connt(topo, opt);
    out.tree = std::move(res.tree);
    out.parent = std::move(res.parent);
    out.energy = res.totals.energy;
    out.injected = std::move(res.injected_crashes);
    out.epochs = res.epochs;
  }
  return out;
}

double baseline_energy(std::string_view driver, const sim::Topology& topo) {
  if (driver == "eopt")
    return emst::run(topo, emst::config_for(emst::Driver::kEopt)).totals.energy;
  if (driver == "sync_ghs")
    return emst::run(topo, emst::config_for(emst::Driver::kSyncGhs))
        .totals.energy;
  if (driver == "classic_ghs")
    return emst::run(topo, emst::config_for(emst::Driver::kClassicGhs))
        .totals.energy;
  return nnt::run_connt(topo, {}).totals.energy;
}

struct Cell {
  support::RunningStats survival, overhead, kills, epochs;
  std::size_t exact = 0;
  std::uint64_t oracle_violations = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(
      argc, argv,
      {{"n", "node count (default 192)"},
       {"trials", "trials per (driver, strategy) cell (default 5)"},
       {"seed", "master seed (default 2008)"},
       {"json", "output JSON path (default BENCH_chaos.json)"},
       {"csv", "write CSV to this path"}});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 192));
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 5));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2008));
  const std::string json_path = cli.get("json", "BENCH_chaos.json");

  const auto strategies = sim::shipped_strategies();
  std::printf("chaos campaign at n=%zu: %zu drivers x %zu strategies x %zu "
              "trials, invariant oracle on\n\n",
              n, kDrivers.size(), strategies.size(), trials);

  // One field + per-driver fault-free baseline per trial, shared by every
  // strategy so overhead factors compare like with like.
  std::vector<sim::Topology> fields;
  fields.reserve(trials);
  std::vector<std::array<double, kDrivers.size()>> baselines(trials);
  for (std::size_t t = 0; t < trials; ++t) {
    support::Rng rng(support::Rng::stream_seed(seed, t));
    fields.push_back(eopt::eopt_topology(geometry::uniform_points(n, rng)));
    for (std::size_t di = 0; di < kDrivers.size(); ++di) {
      baselines[t][di] = baseline_energy(kDrivers[di], fields[t]);
    }
  }

  std::vector<std::vector<Cell>> cells(
      kDrivers.size(), std::vector<Cell>(strategies.size()));
  for (std::size_t di = 0; di < kDrivers.size(); ++di) {
    for (std::size_t si = 0; si < strategies.size(); ++si) {
      Cell& cell = cells[di][si];
      for (std::size_t t = 0; t < trials; ++t) {
        const auto controller = sim::make_controller(strategies[si]);
        sim::InvariantOracle oracle;
        const RunOut out = run_driver(
            kDrivers[di], fields[t], controller.get(),
            support::Rng::stream_seed(seed ^ 0xC4A05ULL, t), &oracle);
        const std::vector<char> alive = alive_mask(n, out.injected);
        const auto dead =
            static_cast<std::size_t>(std::count(alive.begin(), alive.end(), 0));
        bool exact;
        if (kDrivers[di] == "connt") {
          exact = out.parent ==
                  survivor_nnt_parents(fields[t].points(), alive,
                                       nnt::RankScheme::kDiagonal);
        } else {
          exact = graph::same_edge_set(out.tree, survivor_msf(fields[t], alive));
        }
        cell.survival.add(static_cast<double>(n - dead) /
                          static_cast<double>(n));
        cell.overhead.add(out.energy / baselines[t][di]);
        cell.kills.add(static_cast<double>(controller->kills()));
        cell.epochs.add(static_cast<double>(out.epochs));
        if (exact) ++cell.exact;
        cell.oracle_violations += oracle.violations().size();
      }
    }
  }

  support::Table table({"driver", "strategy", "survival", "exact", "overhead",
                        "kills", "epochs", "oracle"});
  table.set_precision(2, 3);
  table.set_precision(4, 3);
  for (std::size_t di = 0; di < kDrivers.size(); ++di) {
    for (std::size_t si = 0; si < strategies.size(); ++si) {
      const Cell& cell = cells[di][si];
      table.add_row({std::string(kDrivers[di]), std::string(strategies[si]),
                     cell.survival.mean(),
                     std::string(std::to_string(cell.exact) + "/" +
                                 std::to_string(trials)),
                     cell.overhead.mean(), cell.kills.mean(),
                     cell.epochs.mean(),
                     static_cast<double>(cell.oracle_violations)});
    }
  }
  table.print(std::cout);
  if (cli.has("csv")) table.save_csv(cli.get("csv", ""));

  {
    std::ofstream os(json_path);
    if (!os) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    support::JsonWriter json(os);
    json.begin_object();
    json.key("n").value(static_cast<std::uint64_t>(n));
    json.key("trials").value(static_cast<std::uint64_t>(trials));
    json.key("seed").value(seed);
    json.key("max_kill_fraction").value(0.2);
    json.key("campaign").begin_array();
    for (std::size_t di = 0; di < kDrivers.size(); ++di) {
      for (std::size_t si = 0; si < strategies.size(); ++si) {
        const Cell& cell = cells[di][si];
        json.begin_object();
        json.key("driver").value(kDrivers[di]);
        json.key("strategy").value(strategies[si]);
        json.key("survival").value(cell.survival.mean());
        json.key("exact").value(static_cast<double>(cell.exact) /
                                static_cast<double>(trials));
        json.key("energy_overhead").value(cell.overhead.mean());
        json.key("kills").value(cell.kills.mean());
        json.key("epochs").value(cell.epochs.mean());
        json.key("oracle_violations").value(cell.oracle_violations);
        json.end_object();
      }
    }
    json.end_array();
    json.end_object();
    os << '\n';
  }
  std::printf("\nwrote %s\n", json_path.c_str());

  bool all_exact = true;
  for (const auto& row : cells) {
    for (const Cell& cell : row) {
      if (cell.exact != trials || cell.oracle_violations != 0)
        all_exact = false;
    }
  }
  if (!all_exact) {
    std::fprintf(stderr, "\nFAIL: some cells missed the per-component "
                         "exactness contract or tripped the oracle\n");
    return 1;
  }
  std::printf("\nevery cell met the fail-stop contract: exact MSF of each "
              "surviving component, zero oracle violations.\n");
  return 0;
}
