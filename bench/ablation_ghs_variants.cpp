// Ablation bench for the design choices DESIGN.md calls out in §V-A:
//   1. neighbor cache vs TEST/ACCEPT/REJECT probing (the "modified" part),
//   2. giant passivity on/off in EOPT Step 2,
//   3. giant id retention on/off in EOPT Step 2,
//   4. Step-1 radius factor c₁ sensitivity (too small → no giant; too large
//      → Step 1 itself gets expensive),
// plus the classical asynchronous GHS as the reference column.
#include <cstdio>
#include <iostream>

#include "emst/eopt/eopt.hpp"
#include "emst/geometry/sampling.hpp"
#include "emst/ghs/classic.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/run.hpp"
#include "emst/support/cli.hpp"
#include "emst/support/parallel.hpp"
#include "emst/support/rng.hpp"
#include "emst/support/stats.hpp"
#include "emst/support/table.hpp"

namespace {

struct VariantStats {
  emst::support::RunningStats energy;
  emst::support::RunningStats messages;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace emst;
  const support::Cli cli(argc, argv,
                         {{"n", "node count (default 3000)"},
                          {"trials", "trials (default 10)"},
                          {"seed", "master seed (default 2008)"},
                          {"csv", "write CSV to this path"}});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 3000));
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 10));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2008));

  std::printf("GHS/EOPT ablations at n=%zu (%zu trials): what each §V-A "
              "optimization buys\n\n", n, trials);

  enum Variant {
    kClassicGhs,
    kClassicCached,
    kSyncProbe,
    kSyncCache,
    kEoptFull,
    kEoptNoPassive,
    kEoptNoIdKeep,
    kEoptProbe,
    kEoptC1Small,
    kEoptC1Large,
    kVariantCount,
  };
  const char* names[kVariantCount] = {
      "classic GHS (baseline)",   "classic GHS + cache (SV-A)",
      "sync GHS, probe MOE",      "sync GHS, cached MOE",
      "EOPT (full)",              "EOPT, giant not passive",
      "EOPT, giant renamed",      "EOPT, probe MOE",
      "EOPT, c1 factor 1.0",      "EOPT, c1 factor 2.0",
  };

  std::vector<std::array<double, 2>> rows(trials * kVariantCount);
  support::parallel_for(trials, [&](std::size_t t) {
    support::Rng rng(support::Rng::stream_seed(seed, t));
    const auto points = geometry::uniform_points(n, rng);
    const sim::Topology topo(points, rgg::connectivity_radius(n));
    auto record = [&](Variant v, const sim::Accounting& a) {
      rows[t * kVariantCount + v] = {a.energy,
                                     static_cast<double>(a.messages())};
    };
    record(kClassicGhs, run(topo, config_for(Driver::kClassicGhs)).totals);
    // The cached-classic / probe-sync flavours are their own facade
    // drivers; the EOPT ablation knobs ride in cfg.eopt (docs/API_TOUR.md).
    record(kClassicCached, run(topo, config_for(Driver::kClassicGhsCached)).totals);
    record(kSyncProbe, run(topo, config_for(Driver::kSyncGhsProbe)).totals);
    record(kSyncCache, run(topo, config_for(Driver::kSyncGhs)).totals);
    record(kEoptFull, run(topo, config_for(Driver::kEopt)).totals);
    {
      RunConfig cfg = config_for(Driver::kEopt);
      cfg.eopt.giant_passive = false;
      record(kEoptNoPassive, run(topo, cfg).totals);
    }
    {
      RunConfig cfg = config_for(Driver::kEopt);
      cfg.eopt.giant_keeps_id = false;
      record(kEoptNoIdKeep, run(topo, cfg).totals);
    }
    {
      RunConfig cfg = config_for(Driver::kEopt);
      cfg.eopt.neighbor_cache = false;
      record(kEoptProbe, run(topo, cfg).totals);
    }
    {
      RunConfig cfg = config_for(Driver::kEopt);
      cfg.eopt.step1_factor = 1.0;
      record(kEoptC1Small, run(topo, cfg).totals);
    }
    {
      RunConfig cfg = config_for(Driver::kEopt);
      cfg.eopt.step1_factor = 2.0;
      record(kEoptC1Large, run(topo, cfg).totals);
    }
  });

  std::vector<VariantStats> stats(kVariantCount);
  for (std::size_t t = 0; t < trials; ++t) {
    for (int v = 0; v < kVariantCount; ++v) {
      stats[v].energy.add(rows[t * kVariantCount + v][0]);
      stats[v].messages.add(rows[t * kVariantCount + v][1]);
    }
  }

  support::Table table({"variant", "energy", "energy±", "messages",
                        "vs_full_EOPT"});
  table.set_precision(3, 0);
  const double full = stats[kEoptFull].energy.mean();
  for (int v = 0; v < kVariantCount; ++v) {
    table.add_row({std::string(names[v]), stats[v].energy.mean(),
                   stats[v].energy.sem(), stats[v].messages.mean(),
                   stats[v].energy.mean() / full});
  }
  table.print(std::cout);
  if (cli.has("csv")) table.save_csv(cli.get("csv", ""));

  std::printf("\nreading guide: the cache (row 3 vs 2) removes the Θ(|E|) "
              "test traffic; the two-step radius schedule (row 4 vs 3) is "
              "the Θ(log n) headline; passivity/id-retention trim Step 2.\n");
  return 0;
}
