// What does watching cost? (docs/TELEMETRY.md)
//
// The telemetry layer promises "zero cost when off": a run with
// `RunConfig::telemetry == nullptr` and no breakdown must be as fast as the
// seed simulator, and each level of observability (breakdown matrix,
// streaming aggregates, an in-memory event buffer, full JSONL formatting)
// should cost a bounded, reported factor on top. This bench measures those
// factors on three workloads:
//
//   pump  — a raw Network<Msg> unicast/broadcast storm (~100k messages at
//           n=4096 by default): the meter's hot path with no protocol logic,
//           so per-event overhead shows up undiluted;
//   sync  — single-phase GHS at the connectivity radius (collectives-heavy);
//   eopt  — the full two-step EOPT pipeline (phase scopes + census).
//
// Variants: off (baseline) | breakdown | aggregate | memory-sink |
// jsonl-sink (formatting only — the stream discards into a null buffer, so
// no disk time is measured). Every variant of a workload runs the same
// deployments and must produce bitwise-identical energy totals — checked,
// since an observer that perturbs the experiment would invalidate every
// trace-driven analysis built on it.
//
// Results go to the console table and to the tracked BENCH_telemetry.json.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <ostream>
#include <streambuf>
#include <string>
#include <vector>

#include "emst/eopt/eopt.hpp"
#include "emst/run.hpp"
#include "emst/geometry/sampling.hpp"
#include "emst/ghs/sync.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/sim/network.hpp"
#include "emst/sim/telemetry.hpp"
#include "emst/support/cli.hpp"
#include "emst/support/json.hpp"
#include "emst/support/rng.hpp"
#include "emst/support/stats.hpp"
#include "emst/support/table.hpp"

namespace {

using namespace emst;

/// Discards everything — isolates JSONL formatting cost from disk I/O.
class NullBuf final : public std::streambuf {
 protected:
  int overflow(int ch) override { return ch; }
  std::streamsize xsputn(const char*, std::streamsize count) override {
    return count;
  }
};

enum class Variant { kOff, kBreakdown, kAggregate, kMemory, kJsonl, kCount };

constexpr const char* kVariantNames[] = {"off", "breakdown", "aggregate",
                                         "memory", "jsonl"};

/// Per-variant observer state, rebuilt fresh for every timed run.
struct Observer {
  sim::Telemetry telemetry;
  sim::MemoryTraceSink memory;
  NullBuf null_buf;
  std::ostream null_out{&null_buf};
  sim::JsonlTraceSink jsonl{null_out};

  sim::Telemetry* hub = nullptr;
  bool breakdown = false;

  explicit Observer(Variant variant, std::size_t n) {
    switch (variant) {
      case Variant::kOff:
        break;
      case Variant::kBreakdown:
        breakdown = true;
        break;
      case Variant::kAggregate:
        telemetry.enable_aggregation(n);
        hub = &telemetry;
        break;
      case Variant::kMemory:
        telemetry.set_sink(&memory);
        hub = &telemetry;
        break;
      case Variant::kJsonl:
        telemetry.set_sink(&jsonl);
        hub = &telemetry;
        break;
      case Variant::kCount:
        break;
    }
  }
};

struct Sample {
  double millis = 0.0;
  double energy = 0.0;  ///< cross-variant identity check
};

using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Raw meter hot path: ~`messages` unicasts plus one local broadcast per
/// drain round, no protocol logic on top.
Sample run_pump(const sim::Topology& topo, std::size_t messages,
                std::uint64_t seed, Variant variant) {
  struct Msg {
    std::uint32_t payload = 0;
  };
  const std::size_t n = topo.node_count();
  Observer obs(variant, n);
  support::Rng rng(seed);

  const auto start = Clock::now();
  sim::Network<Msg> net(topo, geometry::PathLoss{}, /*unbounded_broadcast=*/false,
                        /*delays=*/{}, /*faults=*/{}, obs.hub);
  if (obs.breakdown) net.meter().enable_breakdown();
  std::size_t sent = 0;
  while (sent < messages) {
    // One batch per round: n unicasts to a sorted-neighbor pick + a sprinkle
    // of local broadcasts, then drain.
    for (sim::NodeId u = 0; u < n && sent < messages; ++u) {
      const auto neighbors = topo.neighbors(u);
      if (neighbors.empty()) continue;
      const auto& nb = neighbors[rng.uniform_int(neighbors.size())];
      net.meter().set_kind(sim::MsgKind::kData);
      net.unicast(u, nb.id, Msg{static_cast<std::uint32_t>(sent)});
      ++sent;
      if ((u & 63u) == 0) {
        net.broadcast(u, topo.max_radius() * 0.5, Msg{0});
        ++sent;
      }
    }
    (void)net.collect_round();
  }
  Sample out;
  out.millis = elapsed_ms(start);
  out.energy = net.meter().totals().energy;
  return out;
}

Sample run_sync(const sim::Topology& topo, Variant variant) {
  Observer obs(variant, topo.node_count());
  const auto start = Clock::now();
  emst::RunConfig cfg = emst::config_for(emst::Driver::kSyncGhs);
  cfg.telemetry = obs.hub;
  cfg.record_breakdown = obs.breakdown;
  const emst::RunResult result = emst::run(topo, cfg);
  Sample out;
  out.millis = elapsed_ms(start);
  out.energy = result.totals.energy;
  return out;
}

Sample run_eopt_once(const sim::Topology& topo, Variant variant) {
  Observer obs(variant, topo.node_count());
  const auto start = Clock::now();
  emst::RunConfig cfg = emst::config_for(emst::Driver::kEopt);
  cfg.telemetry = obs.hub;
  cfg.record_breakdown = obs.breakdown;
  const emst::RunResult result = emst::run(topo, cfg);
  Sample out;
  out.millis = elapsed_ms(start);
  out.energy = result.totals.energy;
  return out;
}

struct WorkloadRow {
  std::string name;
  support::RunningStats per_variant[static_cast<std::size_t>(Variant::kCount)];
  bool energy_identical = true;
};

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(
      argc, argv,
      {{"n", "protocol-workload node count (default 1024)"},
       {"pump-n", "pump-workload node count (default 4096)"},
       {"pump-messages", "pump-workload message budget (default 100000)"},
       {"trials", "timed repetitions per variant (default 5)"},
       {"seed", "master seed (default 2008)"},
       {"json", "output JSON path (default BENCH_telemetry.json)"},
       {"quick", "1 = CI-sized run (n=256, pump 20k msgs, 2 trials)"}});
  const bool quick = cli.get_int("quick", 0) != 0;
  const auto n =
      static_cast<std::size_t>(cli.get_int("n", quick ? 256 : 1024));
  const auto pump_n =
      static_cast<std::size_t>(cli.get_int("pump-n", quick ? 512 : 4096));
  const auto pump_messages = static_cast<std::size_t>(
      cli.get_int("pump-messages", quick ? 20000 : 100000));
  const auto trials =
      static_cast<std::size_t>(cli.get_int("trials", quick ? 2 : 5));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2008));
  const std::string json_path = cli.get("json", "BENCH_telemetry.json");
  constexpr auto kVariants = static_cast<std::size_t>(Variant::kCount);

  std::printf("telemetry overhead: %zu trials per variant "
              "(pump n=%zu/%zu msgs, protocols n=%zu)\n\n",
              trials, pump_n, pump_messages, n);

  support::Rng rng(seed);
  const auto pump_points = geometry::uniform_points(pump_n, rng);
  const sim::Topology pump_topo(pump_points,
                                rgg::connectivity_radius(pump_n, 1.6));
  const auto points = geometry::uniform_points(n, rng);
  const sim::Topology topo(points, rgg::connectivity_radius(n, 1.6));

  std::vector<WorkloadRow> rows(3);
  rows[0].name = "pump";
  rows[1].name = "sync";
  rows[2].name = "eopt";

  // Untimed warm-up so the first timed variant doesn't absorb cold-cache
  // and page-fault costs that later variants skip.
  (void)run_pump(pump_topo, pump_messages, seed, Variant::kOff);
  (void)run_sync(topo, Variant::kOff);
  (void)run_eopt_once(topo, Variant::kOff);

  for (std::size_t t = 0; t < trials; ++t) {
    for (std::size_t v = 0; v < kVariants; ++v) {
      const auto variant = static_cast<Variant>(v);
      const Sample pump = run_pump(pump_topo, pump_messages,
                                   support::Rng::stream_seed(seed, t), variant);
      const Sample sync = run_sync(topo, variant);
      const Sample eo = run_eopt_once(topo, variant);
      const Sample samples[] = {pump, sync, eo};
      for (std::size_t w = 0; w < rows.size(); ++w)
        rows[w].per_variant[v].add(samples[w].millis);
    }
  }

  // Re-run once per workload x variant for the energy-identity check
  // (outside the timing loop so the check never skews the numbers).
  {
    const std::uint64_t check_seed = support::Rng::stream_seed(seed, 0);
    double base[3] = {
        run_pump(pump_topo, pump_messages, check_seed, Variant::kOff).energy,
        run_sync(topo, Variant::kOff).energy,
        run_eopt_once(topo, Variant::kOff).energy};
    for (std::size_t v = 1; v < kVariants; ++v) {
      const auto variant = static_cast<Variant>(v);
      const double got[3] = {
          run_pump(pump_topo, pump_messages, check_seed, variant).energy,
          run_sync(topo, variant).energy,
          run_eopt_once(topo, variant).energy};
      for (std::size_t w = 0; w < 3; ++w) {
        if (got[w] != base[w]) rows[w].energy_identical = false;
      }
    }
  }

  support::Table table({"workload", "off_ms", "breakdown", "aggregate",
                        "memory", "jsonl", "identical"});
  for (const WorkloadRow& row : rows) {
    const double off = row.per_variant[0].mean();
    table.add_row({row.name, off, row.per_variant[1].mean() / off,
                   row.per_variant[2].mean() / off,
                   row.per_variant[3].mean() / off,
                   row.per_variant[4].mean() / off,
                   std::string(row.energy_identical ? "yes" : "NO")});
  }
  table.print(std::cout);

  bool all_identical = true;
  for (const WorkloadRow& row : rows) all_identical &= row.energy_identical;

  {
    std::ofstream os(json_path);
    if (!os) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    support::JsonWriter json(os);
    json.begin_object();
    json.key("n").value(static_cast<std::uint64_t>(n));
    json.key("pump_n").value(static_cast<std::uint64_t>(pump_n));
    json.key("pump_messages").value(static_cast<std::uint64_t>(pump_messages));
    json.key("trials").value(static_cast<std::uint64_t>(trials));
    json.key("seed").value(seed);
    json.key("energy_identical").value(all_identical);
    json.key("workloads").begin_array();
    for (const WorkloadRow& row : rows) {
      json.begin_object();
      json.key("workload").value(row.name);
      const double off = row.per_variant[0].mean();
      for (std::size_t v = 0; v < kVariants; ++v) {
        json.key(kVariantNames[v]).begin_object();
        json.key("mean_ms").value(row.per_variant[v].mean());
        json.key("stddev_ms").value(row.per_variant[v].stddev());
        if (v > 0 && off > 0.0)
          json.key("factor_vs_off").value(row.per_variant[v].mean() / off);
        json.end_object();
      }
      json.end_object();
    }
    json.end_array();
    json.end_object();
    os << '\n';
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  std::printf("\nreading guide: columns are wall-time factors vs the "
              "telemetry-off baseline (off_ms is absolute). 'identical' "
              "confirms every observer level reproduced the baseline energy "
              "bit-for-bit. breakdown should be ~1.0x (two array bumps per "
              "charge); jsonl bounds the full formatting cost.\n");
  if (!all_identical) {
    std::fprintf(stderr, "error: an observer variant changed the measured "
                         "energy — telemetry must be passive\n");
    return 1;
  }
  return 0;
}
