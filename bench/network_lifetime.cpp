// Network lifetime — the battery-centric view the paper's motivation implies
// but its TOTAL-energy metric hides: the first node to exhaust its battery
// ends the network, so the relevant statistic is the HOTTEST node's
// transmit-energy, not the sum.
//
// Reported per algorithm: total energy, max per-node energy, the max/mean
// imbalance ratio, and the p99 node. Expected shape: EOPT wins on the total
// by design, and its per-node ledger is also far flatter than GHS's (no node
// pays the Θ(|E|) test traffic); Co-NNT is flattest of all — every node does
// O(1) probes in expectation.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "emst/eopt/eopt.hpp"
#include "emst/geometry/sampling.hpp"
#include "emst/ghs/classic.hpp"
#include "emst/nnt/connt.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/run.hpp"
#include "emst/support/cli.hpp"
#include "emst/support/parallel.hpp"
#include "emst/support/rng.hpp"
#include "emst/support/stats.hpp"
#include "emst/support/table.hpp"

int main(int argc, char** argv) {
  using namespace emst;
  const support::Cli cli(argc, argv,
                         {{"ns", "comma-separated node counts"},
                          {"trials", "trials (default 8)"},
                          {"seed", "master seed (default 2008)"},
                          {"csv", "write CSV to this path"}});
  const auto ns64 = cli.get_int_list("ns", {500, 2000, 8000});
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 8));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2008));

  std::printf("network lifetime: per-node transmit-energy ledgers (hottest "
              "node bounds the lifetime)\n\n");

  support::Table table({"n", "algorithm", "total_E", "hottest_node",
                        "p99_node", "max/mean"});
  table.set_precision(3, 5);
  table.set_precision(4, 5);
  table.set_precision(5, 1);

  for (const auto n64 : ns64) {
    const auto n = static_cast<std::size_t>(n64);
    enum Algo { kGhs, kEopt, kConnt, kAlgoCount };
    const char* names[kAlgoCount] = {"GHS", "EOPT", "Co-NNT"};
    struct Out {
      double total[kAlgoCount];
      double hottest[kAlgoCount];
      double p99[kAlgoCount];
      double imbalance[kAlgoCount];
    };
    std::vector<Out> outs(trials);
    support::parallel_for(trials, [&](std::size_t t) {
      support::Rng rng(support::Rng::stream_seed(seed ^ (n * 29), t));
      const sim::Topology topo(geometry::uniform_points(n, rng),
                               rgg::connectivity_radius(n));
      auto digest = [&](Algo a, double total, std::vector<double> ledger) {
        std::sort(ledger.begin(), ledger.end());
        const double hottest = ledger.empty() ? 0.0 : ledger.back();
        const double mean = total / static_cast<double>(n);
        outs[t].total[a] = total;
        outs[t].hottest[a] = hottest;
        outs[t].p99[a] = support::quantile_sorted(ledger, 0.99);
        outs[t].imbalance[a] = mean > 0.0 ? hottest / mean : 0.0;
      };
      for (const auto [algo, driver] :
           {std::pair{kGhs, Driver::kClassicGhs},
            std::pair{kEopt, Driver::kEopt},
            std::pair{kConnt, Driver::kCoNnt}}) {
        RunConfig cfg = config_for(driver);
        cfg.track_per_node_energy = true;
        const RunResult res = run(topo, cfg);
        digest(algo, res.totals.energy, res.per_node_energy);
      }
    });
    for (int a = 0; a < kAlgoCount; ++a) {
      support::RunningStats total;
      support::RunningStats hottest;
      support::RunningStats p99;
      support::RunningStats imbalance;
      for (const Out& o : outs) {
        total.add(o.total[a]);
        hottest.add(o.hottest[a]);
        p99.add(o.p99[a]);
        imbalance.add(o.imbalance[a]);
      }
      table.add_row({static_cast<long long>(n), std::string(names[a]),
                     total.mean(), hottest.mean(), p99.mean(),
                     imbalance.mean()});
    }
  }
  table.print(std::cout);
  if (cli.has("csv")) table.save_csv(cli.get("csv", ""));
  std::printf("\nreading guide: the hottest-node column is the lifetime "
              "bound; max/mean is the load imbalance — an algorithm could "
              "win the total yet lose the lifetime, so both views matter "
              "when the motivation is batteries.\n");
  return 0;
}
