// Theorem 4.1 / Lemma 4.1 scaffolding, measured empirically.
//
// Lemma 4.1: reaching the k closest neighbours costs ≥ k/(b·n) energy, i.e.
// the squared distance to the k-th nearest neighbour scales linearly in k/n.
// Theorem 4.1 combines this with the Korach–Moran–Zaks Ω(n log n) message
// bound into an Ω(log n) energy floor for any spanning-tree algorithm.
//
// This bench reports:
//  (a) mean n·d²(k-NN) vs k — should be ≈ linear in k (slope = the 1/b
//      packing constant),
//  (b) L_MST = Σ d² over the exact MST (the trivial Ω(1) floor), and
//  (c) the measured energies of GHS / EOPT against a·ln n for reference.
// The KMZ pair-count below needs a ghs::TxLog, which only the direct
// sync-GHS entry point can populate — that one call stays expert.
#define EMST_NO_DEPRECATE
#include <cmath>
#include <cstdio>
#include <iostream>

#include "emst/eopt/eopt.hpp"
#include "emst/run.hpp"
#include "emst/geometry/sampling.hpp"
#include "emst/ghs/classic.hpp"
#include "emst/ghs/sync.hpp"
#include "emst/graph/tree_utils.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/rgg/rgg.hpp"
#include "emst/spatial/cell_grid.hpp"
#include "emst/support/cli.hpp"
#include "emst/support/parallel.hpp"
#include "emst/support/rng.hpp"
#include "emst/support/stats.hpp"
#include "emst/support/table.hpp"

int main(int argc, char** argv) {
  using namespace emst;
  const support::Cli cli(argc, argv,
                         {{"n", "node count (default 5000)"},
                          {"trials", "trials (default 10)"},
                          {"seed", "master seed (default 2008)"},
                          {"csv", "write CSV to this path"}});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 5000));
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 10));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2008));

  std::printf("Thm 4.1 / Lemma 4.1: k-nearest-neighbour energy packing at "
              "n=%zu (%zu trials)\n\n", n, trials);

  const std::vector<std::size_t> ks = {1, 2, 4, 8, 16, 32, 64, 128};
  std::vector<support::RunningStats> ndk2(ks.size());
  support::RunningStats lmst;
  support::RunningStats ghs_energy;
  support::RunningStats eopt_energy;

  std::vector<std::vector<double>> trial_ndk2(trials);
  std::vector<double> trial_lmst(trials);
  std::vector<double> trial_ghs(trials);
  std::vector<double> trial_eopt(trials);
  support::parallel_for(trials, [&](std::size_t t) {
    support::Rng rng(support::Rng::stream_seed(seed, t));
    const auto points = geometry::uniform_points(n, rng);
    const spatial::CellGrid grid = spatial::CellGrid::with_auto_cell(points);
    // Mean over 200 sampled nodes of n·d²(k-th NN) for each k.
    trial_ndk2[t].assign(ks.size(), 0.0);
    const std::size_t samples = std::min<std::size_t>(200, n);
    for (std::size_t s = 0; s < samples; ++s) {
      const auto u = static_cast<spatial::PointIndex>(
          rng.uniform_int(points.size()));
      const auto knn = grid.k_nearest(points[u], ks.back(), u);
      for (std::size_t i = 0; i < ks.size(); ++i) {
        const std::size_t k = ks[i];
        if (knn.size() < k) continue;
        const double d = geometry::distance(points[u], points[knn[k - 1]]);
        trial_ndk2[t][i] += static_cast<double>(n) * d * d / samples;
      }
    }
    const auto mst = rgg::euclidean_mst(points);
    trial_lmst[t] = graph::tree_cost(points, mst, 2.0);
    const sim::Topology topo(points, rgg::connectivity_radius(n));
    trial_ghs[t] =
        emst::run(topo, emst::config_for(emst::Driver::kClassicGhs))
            .totals.energy;
    trial_eopt[t] =
        emst::run(topo, emst::config_for(emst::Driver::kEopt)).totals.energy;
  });
  for (std::size_t t = 0; t < trials; ++t) {
    for (std::size_t i = 0; i < ks.size(); ++i) ndk2[i].add(trial_ndk2[t][i]);
    lmst.add(trial_lmst[t]);
    ghs_energy.add(trial_ghs[t]);
    eopt_energy.add(trial_eopt[t]);
  }

  support::Table table({"k", "n*d_k^2", "ratio_to_k", "k/n_energy_floor"});
  table.set_precision(1, 3);
  table.set_precision(2, 3);
  table.set_precision(3, 6);
  for (std::size_t i = 0; i < ks.size(); ++i) {
    table.add_row({static_cast<long long>(ks[i]), ndk2[i].mean(),
                   ndk2[i].mean() / static_cast<double>(ks[i]),
                   static_cast<double>(ks[i]) / static_cast<double>(n)});
  }
  table.print(std::cout);
  if (cli.has("csv")) table.save_csv(cli.get("csv", ""));

  // Linearity check: n·d_k² / k should be roughly constant (Lemma 4.1).
  std::vector<double> xs;
  std::vector<double> ys;
  for (std::size_t i = 0; i < ks.size(); ++i) {
    xs.push_back(static_cast<double>(ks[i]));
    ys.push_back(ndk2[i].mean());
  }
  const auto fit = support::fit_line(xs, ys);
  std::printf("\nLemma 4.1: n*d_k^2 ~ k/b with 1/b = %.3f (R^2 = %.3f; "
              "linear => packing bound holds)\n", fit.slope, fit.r2);

  // Korach–Moran–Zaks side of Thm 4.1: distinct communication pairs used by
  // a real spanning-tree construction vs the Ω(n log n) bound.
  {
    support::Rng rng(support::Rng::stream_seed(seed, 9999));
    const sim::Topology topo(geometry::uniform_points(n, rng),
                             rgg::connectivity_radius(n));
    ghs::TxLog log;
    ghs::SyncGhsOptions options;
    options.transmission_log = &log;
    (void)ghs::run_sync_ghs(topo, options);
    const std::size_t pairs = ghs::distinct_pairs_used(topo, log);
    const double n_log_n =
        static_cast<double>(n) * std::log(static_cast<double>(n));
    std::printf("KMZ bound: modified GHS exercised %zu distinct pairs = "
                "%.2f * n*ln n (theorem: >= a * n*log n for ANY ST "
                "algorithm)\n", pairs,
                static_cast<double>(pairs) / n_log_n);
  }
  std::printf("Omega(1) floor  L_MST = %.3f (energy of ANY algorithm must "
              "exceed this)\n", lmst.mean());
  std::printf("measured: GHS = %.2f, EOPT = %.2f, a*ln n = %.2f (Omega(log n) "
              "scale)\n", ghs_energy.mean(), eopt_energy.mean(),
              std::log(static_cast<double>(n)));
  std::printf("verdict: L_MST <= EOPT (%s), EOPT >= ln n scale (%s)\n",
              lmst.mean() <= eopt_energy.mean() ? "yes" : "NO",
              eopt_energy.mean() >= std::log(static_cast<double>(n)) ? "yes"
                                                                     : "NO");
  return 0;
}
