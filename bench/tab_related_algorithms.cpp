// §III related-work comparison, reproduced as a table: the four algorithm
// families the paper positions against each other, all run on shared
// instances.
//
//   | algorithm        | energy       | tree quality      | coordinates |
//   |------------------|--------------|-------------------|-------------|
//   | GHS [9]          | Θ(log² n)    | exact MST         | no          |
//   | EOPT (this paper)| Θ(log n)     | exact MST         | no          |
//   | KP-NNT [14,15]   | O(log n)     | O(log n)-approx   | no          |
//   | Co-NNT (§VI)     | O(1)         | O(1)-approx       | yes         |
#include <cstdio>
#include <iostream>

#include "emst/eopt/eopt.hpp"
#include "emst/geometry/sampling.hpp"
#include "emst/ghs/classic.hpp"
#include "emst/graph/tree_utils.hpp"
#include "emst/nnt/connt.hpp"
#include "emst/nnt/kp_nnt.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/rgg/rgg.hpp"
#include "emst/run.hpp"
#include "emst/support/cli.hpp"
#include "emst/support/parallel.hpp"
#include "emst/support/rng.hpp"
#include "emst/support/stats.hpp"
#include "emst/support/table.hpp"

int main(int argc, char** argv) {
  using namespace emst;
  const support::Cli cli(argc, argv,
                         {{"ns", "comma-separated node counts"},
                          {"trials", "trials (default 8)"},
                          {"seed", "master seed (default 2008)"},
                          {"csv", "write CSV to this path"}});
  const auto ns64 = cli.get_int_list("ns", {500, 2000, 8000});
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 8));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2008));

  std::printf("SIII related-work table on shared instances: energy / "
              "messages / quality for all four algorithm families\n\n");

  support::Table table({"n", "algorithm", "energy", "messages", "sum|e|/MST",
                        "exact"});
  table.set_precision(3, 0);

  for (const auto n64 : ns64) {
    const auto n = static_cast<std::size_t>(n64);
    enum Algo { kGhs, kEopt, kKp, kConnt, kAlgoCount };
    const char* names[kAlgoCount] = {"GHS [9]", "EOPT (paper)",
                                     "KP-NNT [14,15]", "Co-NNT (SVI)"};
    struct Out {
      double energy[kAlgoCount];
      double messages[kAlgoCount];
      double ratio[kAlgoCount];
      bool exact[kAlgoCount];
    };
    std::vector<Out> outs(trials);
    support::parallel_for(trials, [&](std::size_t t) {
      support::Rng rng(support::Rng::stream_seed(seed ^ (n * 5), t));
      const auto points = geometry::uniform_points(n, rng);
      const sim::Topology topo(points, rgg::connectivity_radius(n));
      const auto mst = rgg::euclidean_mst(points);
      const double mst_len = graph::tree_cost(points, mst, 1.0);
      auto fill = [&](Algo a, const std::vector<graph::Edge>& tree,
                      const sim::Accounting& totals) {
        outs[t].energy[a] = totals.energy;
        outs[t].messages[a] = static_cast<double>(totals.messages());
        outs[t].ratio[a] = graph::tree_cost(points, tree, 1.0) / mst_len;
        outs[t].exact[a] = graph::same_edge_set(tree, mst);
      };
      const auto ghs = run(topo, config_for(Driver::kClassicGhs));
      fill(kGhs, ghs.tree, ghs.totals);
      const auto eo = run(topo, config_for(Driver::kEopt));
      fill(kEopt, eo.tree, eo.totals);
      nnt::KpNntOptions kp;
      kp.rank_seed = support::Rng::stream_seed(seed ^ 0xabcd, t);
      const auto kpr = nnt::run_kp_nnt(topo, kp);
      fill(kKp, kpr.tree, kpr.totals);
      const auto co = run(topo, config_for(Driver::kCoNnt));
      fill(kConnt, co.tree, co.totals);
    });
    for (int a = 0; a < kAlgoCount; ++a) {
      support::RunningStats energy;
      support::RunningStats messages;
      support::RunningStats ratio;
      std::size_t exact = 0;
      for (const Out& o : outs) {
        energy.add(o.energy[a]);
        messages.add(o.messages[a]);
        ratio.add(o.ratio[a]);
        if (o.exact[a]) ++exact;
      }
      table.add_row({static_cast<long long>(n), std::string(names[a]),
                     energy.mean(), messages.mean(), ratio.mean(),
                     std::string(std::to_string(exact) + "/" +
                                 std::to_string(trials))});
    }
  }
  table.print(std::cout);
  if (cli.has("csv")) table.save_csv(cli.get("csv", ""));
  std::printf("\nreading guide: energy ordering GHS > EOPT ~ KP-NNT > Co-NNT "
              "with quality exact / exact / O(log n) / O(1) — the SIII "
              "positioning, measured.\n");
  return 0;
}
