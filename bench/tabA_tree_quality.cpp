// Tree-quality reproduction of the in-text comparison in §VII:
//   "The sum of the edges of Co-NNT for 1000 and 5000 nodes are 22.9 and
//    50.5, and that of MST are 20.8 and 46.3, respectively. The sum of the
//    squared edges of both Co-NNT and MST are constants (independent of n),
//    which are 0.68 and 0.52, respectively."
#include <cstdio>
#include <iostream>

#include "emst/harness/figures.hpp"
#include "emst/support/cli.hpp"

int main(int argc, char** argv) {
  using namespace emst;
  const support::Cli cli(argc, argv,
                         {{"ns", "comma-separated node counts"},
                          {"trials", "trials per point (default 20)"},
                          {"seed", "master seed (default 2008)"},
                          {"csv", "write CSV to this path"}});
  const auto ns64 = cli.get_int_list("ns", {1000, 5000});
  std::vector<std::size_t> ns(ns64.begin(), ns64.end());
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 20));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2008));

  std::printf("Tab A (in-text, §VII): Co-NNT vs exact MST tree quality\n");
  std::printf("paper: sum|e| 22.9 vs 20.8 (n=1000), 50.5 vs 46.3 (n=5000); "
              "sum|e|^2 0.68 vs 0.52 (n-independent)\n\n");

  const auto rows = harness::run_taba(ns, trials, seed);
  const auto table = harness::taba_table(rows);
  table.print(std::cout);
  if (cli.has("csv")) table.save_csv(cli.get("csv", ""));

  std::printf("\nverdicts:\n");
  for (const auto& row : rows) {
    std::printf("  n=%zu: sum|e| ratio %.3f (paper ~1.10), sum|e|^2 ratio "
                "%.3f (paper ~1.31)\n",
                row.n, row.ratio_len, row.ratio_sq);
  }
  if (rows.size() >= 2) {
    std::printf("  sum|e|^2 n-independence: Co-NNT %.3f -> %.3f, MST %.3f -> "
                "%.3f (both ~flat)\n",
                rows.front().connt_sq, rows.back().connt_sq,
                rows.front().mst_sq, rows.back().mst_sq);
  }
  return 0;
}
