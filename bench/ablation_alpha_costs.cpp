// §II cost-model ablation: "the MST which minimizes Σ d(u,v) also minimizes
// Σ dᵅ(u,v) for any α > 0" — so one tree is simultaneously optimal for every
// path-loss exponent. This bench measures the MST and the two NNT trees
// under α ∈ {1, 2, 3, 4} and reports the approximation ratio per α.
//
// Expected shape: the MST column is optimal at every α by construction; the
// NNT ratios grow with α (squaring amplifies the few longer NNT edges),
// while remaining O(1) for Co-NNT.
#include <cstdio>
#include <iostream>

#include "emst/geometry/sampling.hpp"
#include "emst/graph/mst.hpp"
#include "emst/graph/tree_utils.hpp"
#include "emst/nnt/connt.hpp"
#include "emst/nnt/kp_nnt.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/rgg/rgg.hpp"
#include "emst/run.hpp"
#include "emst/support/cli.hpp"
#include "emst/support/parallel.hpp"
#include "emst/support/rng.hpp"
#include "emst/support/stats.hpp"
#include "emst/support/table.hpp"

int main(int argc, char** argv) {
  using namespace emst;
  const support::Cli cli(argc, argv,
                         {{"n", "node count (default 2000)"},
                          {"trials", "trials (default 10)"},
                          {"seed", "master seed (default 2008)"},
                          {"csv", "write CSV to this path"}});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 2000));
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 10));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2008));

  std::printf("alpha-generalized tree cost (SII): one MST is optimal for "
              "every path-loss exponent; NNT ratios per alpha at n=%zu\n\n",
              n);

  const std::vector<double> alphas = {1.0, 2.0, 3.0, 4.0};
  struct Out {
    std::vector<double> mst, co_ratio, kp_ratio;
    bool mst_still_optimal = true;
  };
  std::vector<Out> outs(trials);
  support::parallel_for(trials, [&](std::size_t t) {
    support::Rng rng(support::Rng::stream_seed(seed, t));
    const auto points = geometry::uniform_points(n, rng);
    const sim::Topology topo(points, rgg::connectivity_radius(n));
    const auto mst = rgg::euclidean_mst(points);
    const auto co = run(topo, config_for(Driver::kCoNnt)).tree;
    nnt::KpNntOptions kp_opts;
    kp_opts.rank_seed = support::Rng::stream_seed(seed ^ 0x1234, t);
    const auto kp = nnt::run_kp_nnt(topo, kp_opts).tree;
    // The α-invariance claim: Kruskal on α-powered weights picks the SAME
    // edge set (monotone transforms preserve the sorted order).
    {
      std::vector<graph::Edge> powered = topo.graph().edges();
      for (graph::Edge& e : powered) e.w = e.w * e.w * e.w;  // α = 3
      const auto mst3 = graph::kruskal_msf(n, powered);
      outs[t].mst_still_optimal = graph::same_edge_set(mst3, mst) ||
                                  mst.size() != n - 1;  // skip if disconnected
    }
    for (const double alpha : alphas) {
      const double mst_cost = graph::tree_cost(points, mst, alpha);
      outs[t].mst.push_back(mst_cost);
      outs[t].co_ratio.push_back(graph::tree_cost(points, co, alpha) / mst_cost);
      outs[t].kp_ratio.push_back(graph::tree_cost(points, kp, alpha) / mst_cost);
    }
  });

  support::Table table({"alpha", "MST_cost", "CoNNT/MST", "KPNNT/MST"});
  table.set_precision(1, 4);
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    support::RunningStats mst;
    support::RunningStats co;
    support::RunningStats kp;
    for (const Out& o : outs) {
      mst.add(o.mst[i]);
      co.add(o.co_ratio[i]);
      kp.add(o.kp_ratio[i]);
    }
    table.add_row({alphas[i], mst.mean(), co.mean(), kp.mean()});
  }
  table.print(std::cout);
  if (cli.has("csv")) table.save_csv(cli.get("csv", ""));

  std::size_t invariant = 0;
  for (const Out& o : outs) {
    if (o.mst_still_optimal) ++invariant;
  }
  std::printf("\nalpha-invariance of the MST edge set (Kruskal on d^3 "
              "weights): %zu/%zu trials identical\n", invariant, trials);
  return 0;
}
