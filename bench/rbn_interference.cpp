// §VIII claim, measured: running under the Radio Broadcast interference
// model with [15]-style randomized contention resolution costs a CONSTANT
// factor in energy (expected attempts per message ≈ e when the transmit
// probability is 1/(Δ+1)) and a Θ(Δ)-ish factor in time.
//
// Workload: the modified-GHS announcement round (every node local-broadcasts
// its fragment id to all neighbours) — the paper's densest single round.
// This bench wires a ghs::TxLog through SyncGhsOptions, which the
// emst::run facade does not express; it stays on the expert surface.
#define EMST_NO_DEPRECATE
#include <cmath>
#include <cstdio>
#include <iostream>

#include "emst/geometry/sampling.hpp"
#include "emst/ghs/sync.hpp"
#include "emst/mac/rbn.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/support/cli.hpp"
#include "emst/support/parallel.hpp"
#include "emst/support/rng.hpp"
#include "emst/support/stats.hpp"
#include "emst/support/table.hpp"

int main(int argc, char** argv) {
  using namespace emst;
  const support::Cli cli(argc, argv,
                         {{"ns", "comma-separated node counts"},
                          {"trials", "trials (default 5)"},
                          {"seed", "master seed (default 2008)"},
                          {"csv", "write CSV to this path"}});
  const auto ns64 = cli.get_int_list("ns", {250, 500, 1000, 2000, 4000});
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 5));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2008));

  std::printf("RBN interference overhead (SVIII): announcement round under "
              "randomized contention resolution, tx prob = 1/(delta+1)\n");
  std::printf("expect: energy blow-up ~= e ~ 2.7 and flat in n; slots grow "
              "with the interference degree delta ~ ln n\n\n");

  support::Table table({"n", "mean_degree", "slots", "slots/degree",
                        "attempts/msg", "energy_blowup"});
  table.set_precision(1, 1);
  table.set_precision(3, 1);

  for (const auto n64 : ns64) {
    const auto n = static_cast<std::size_t>(n64);
    struct Out {
      double degree, slots, attempts_per, blowup;
    };
    std::vector<Out> outs(trials);
    support::parallel_for(trials, [&](std::size_t t) {
      support::Rng rng(support::Rng::stream_seed(seed ^ n, t));
      const sim::Topology topo(geometry::uniform_points(n, rng),
                               rgg::connectivity_radius(n));
      double degree = 0.0;
      for (sim::NodeId u = 0; u < n; ++u)
        degree += static_cast<double>(topo.neighbors(u).size());
      degree /= static_cast<double>(n);
      mac::RbnOptions options;
      options.seed = support::Rng::stream_seed(seed ^ (n * 3), t);
      const mac::RbnStats stats =
          mac::announcement_round_under_rbn(topo, topo.max_radius(), options);
      outs[t] = {degree, static_cast<double>(stats.slots),
                 static_cast<double>(stats.attempts) /
                     static_cast<double>(stats.delivered),
                 stats.energy_blowup()};
    });
    support::RunningStats degree;
    support::RunningStats slots;
    support::RunningStats attempts;
    support::RunningStats blowup;
    for (const Out& o : outs) {
      degree.add(o.degree);
      slots.add(o.slots);
      attempts.add(o.attempts_per);
      blowup.add(o.blowup);
    }
    table.add_row({static_cast<long long>(n), degree.mean(), slots.mean(),
                   slots.mean() / degree.mean(), attempts.mean(),
                   blowup.mean()});
  }
  table.print(std::cout);
  if (cli.has("csv")) table.save_csv(cli.get("csv", ""));
  std::printf("\nverdict: energy_blowup is the constant factor SVIII quotes; "
              "slots/degree roughly flat confirms the time cost is paid in "
              "the interference degree, not in energy.\n");

  // --- End-to-end: a WHOLE modified-GHS MST construction under RBN --------
  std::printf("\nend-to-end: full modified-GHS run logged wave-by-wave and "
              "replayed under RBN contention\n\n");
  support::Table run_table({"n", "cf_energy", "rbn_energy", "blowup",
                            "slots", "attempts/msg"});
  for (const auto n64 : ns64) {
    const auto n = static_cast<std::size_t>(n64);
    struct Out {
      double cf, rbn, slots, attempts_per;
    };
    std::vector<Out> outs(trials);
    support::parallel_for(trials, [&](std::size_t t) {
      support::Rng rng(support::Rng::stream_seed(seed ^ (n * 7), t));
      const sim::Topology topo(geometry::uniform_points(n, rng),
                               rgg::connectivity_radius(n));
      ghs::TxLog log;
      ghs::SyncGhsOptions options;
      options.transmission_log = &log;
      const auto run = ghs::run_sync_ghs(topo, options);
      mac::RbnOptions rbn;
      rbn.seed = support::Rng::stream_seed(seed ^ (n * 9), t);
      const mac::RbnStats stats = mac::replay_log(topo, log, rbn);
      outs[t] = {run.run.totals.energy, stats.energy,
                 static_cast<double>(stats.slots),
                 static_cast<double>(stats.attempts) /
                     static_cast<double>(std::max<std::uint64_t>(1,
                                                                 stats.delivered))};
    });
    support::RunningStats cf;
    support::RunningStats rbn_e;
    support::RunningStats slots;
    support::RunningStats attempts;
    for (const Out& o : outs) {
      cf.add(o.cf);
      rbn_e.add(o.rbn);
      slots.add(o.slots);
      attempts.add(o.attempts_per);
    }
    run_table.add_row({static_cast<long long>(n), cf.mean(), rbn_e.mean(),
                       rbn_e.mean() / cf.mean(), slots.mean(),
                       attempts.mean()});
  }
  run_table.print(std::cout);
  std::printf("\nverdict: the paper's SVIII statement held end-to-end — the "
              "whole MST construction pays only the ~e constant in energy "
              "under interference.\n");
  return 0;
}
