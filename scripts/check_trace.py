#!/usr/bin/env python3
"""Validate an emst JSONL telemetry trace (docs/TELEMETRY.md).

    scripts/check_trace.py run.jsonl [run2.jsonl ...]

Checks, per file:
  1. framing — first line is the {"trace":"emst",...} header, last line is
     the {"summary":{...}} record, every line in between is one JSON object
     with the required event fields and known enum names;
  2. replay — re-derives energy/message/round totals, wire-bit totals,
     fault counters and ARQ counters from the event stream alone (the same
     rules as src/emst/sim/trace_replay.cpp) and compares them to the
     summary the live run wrote. Counters must match exactly; energy must
     match to 1e-9 relative (bitwise in practice: %.17g round-trips
     doubles, and the replayer adds in stream order), and any non-bitwise
     energy match is reported as a warning.

Wire-bit rules (the proto codec, docs/TELEMETRY.md): "bits" on a charge
event is the encoded size of that frame — 0 means the sender had no codec,
never "empty message". Round events must not carry bits, and an ARQ-flagged
charged frame that *is* measured can never be smaller than the 17-bit ARQ
header. Summary "bits" must equal the replayed sum over uni/bcast charges;
"data_bits"/"ack_bits" must equal the replayed split over ARQ frames.

Traces from multi-threaded runs (`emst_cli --threads=N`, N > 1) are first-
class: the header then carries "threads":N, and events may carry an optional
"shard" id. The sharded engine's contract is that neither changes anything
observable — replay here deliberately derives every counter and the energy
sum without looking at "shard", so a trace that only passes *with* shard
information would be a determinism bug, not a valid trace.

Exit status 0 iff every file passes. No dependencies beyond the standard
library, so CI can run it straight after `emst_cli --trace`.
"""
from __future__ import annotations

import json
import sys

EVENT_TYPES = {
    "uni", "bcast", "loss", "crash", "sup", "adel", "adup", "agup", "atmo",
    "round", "cinj", "oinv",
}
KINDS = {
    "data", "connect", "initiate", "test", "accept", "reject", "report",
    "change_root", "announce", "census", "request", "reply", "connection",
    "arq_ack",
}
PHASES = {"run", "step1", "census", "step2"}
FLAG_ARQ = 1
FLAG_RETRANSMIT = 2
ARQ_HEADER_BITS = 17  # sim/wire.hpp kArqHeaderBits

SUMMARY_COUNTERS = (
    "unicasts", "broadcasts", "deliveries", "rounds", "bits",
    "lost", "dropped_crashed", "suppressed",
    "data_sent", "retransmissions", "acks_sent", "duplicates", "delivered",
    "give_ups", "timeout_rounds", "data_bits", "ack_bits",
)


def fail(path: str, lineno: int, message: str) -> None:
    print(f"{path}:{lineno}: error: {message}", file=sys.stderr)
    raise SystemExit(1)


def count_arq_frame(event: dict, replay: dict) -> None:
    """One ARQ-flagged frame attempt -> the matching send counter (applies
    to charged unicasts and to flagged suppress events alike). Frame bits
    split the same way: ACK frames -> ack_bits, DATA frames -> data_bits."""
    bits = event.get("bits", 0)
    if event.get("flags", 0) & FLAG_RETRANSMIT:
        replay["retransmissions"] += 1
        replay["data_bits"] += bits
    elif event["kind"] == "arq_ack":
        replay["acks_sent"] += 1
        replay["ack_bits"] += bits
    else:
        replay["data_sent"] += 1
        replay["data_bits"] += bits


def check_file(path: str) -> None:
    with open(path, encoding="utf-8") as handle:
        lines = [line.rstrip("\n") for line in handle if line.strip()]
    if len(lines) < 2:
        fail(path, 1, "trace needs at least a header and a summary line")

    header = json.loads(lines[0])
    if header.get("trace") != "emst":
        fail(path, 1, "first line is not an emst trace header")
    if header.get("version") != 1:
        fail(path, 1, f"unsupported trace version {header.get('version')}")
    threads = header.get("threads", 1)
    if not isinstance(threads, int) or threads < 1:
        fail(path, 1, f"invalid thread count in header: {threads!r}")
    ranks = header.get("ranks", 0)
    if not isinstance(ranks, int) or ranks < 0:
        fail(path, 1, f"invalid rank count in header: {ranks!r}")
    # "driver" records the driver variant that actually executed
    # (emst::resolved_driver_name). The Co-NNT algos silently dispatch to
    # their node-actor implementation under faults or ranks; the header must
    # confess that dispatch, and with ranks the plain choreographed variant
    # is impossible.
    algo = header.get("algo", "")
    driver = header.get("driver")
    if driver is not None:
        if not isinstance(driver, str):
            fail(path, 1, f"invalid driver variant in header: {driver!r}")
        if driver not in (algo, f"{algo}-actor"):
            fail(path, 1,
                 f"driver variant {driver!r} does not match algo {algo!r}")
        if ranks > 0 and algo in ("connt", "connt-axis") \
                and driver != f"{algo}-actor":
            fail(path, 1,
                 f"ranks={ranks} forces the {algo} actor dispatch but the "
                 f"header records driver {driver!r}")

    summary_obj = json.loads(lines[-1])
    if "summary" not in summary_obj:
        fail(path, len(lines), "last line is not a summary record")
    summary = summary_obj["summary"]

    replay = {key: 0 for key in SUMMARY_COUNTERS}
    replay_energy = 0.0
    events = 0
    for lineno, line in enumerate(lines[1:-1], start=2):
        try:
            event = json.loads(line)
        except json.JSONDecodeError as err:
            fail(path, lineno, f"not valid JSON: {err}")
        for field in ("ev", "kind", "phase", "round"):
            if field not in event:
                fail(path, lineno, f"event is missing required field {field!r}")
        if event["ev"] not in EVENT_TYPES:
            fail(path, lineno, f"unknown event type {event['ev']!r}")
        if event["kind"] not in KINDS:
            fail(path, lineno, f"unknown message kind {event['kind']!r}")
        if event["phase"] not in PHASES:
            fail(path, lineno, f"unknown phase {event['phase']!r}")
        if "shard" in event and (not isinstance(event["shard"], int)
                                 or event["shard"] < 0):
            fail(path, lineno, f"invalid shard id {event['shard']!r}")
        bits = event.get("bits", 0)
        if not isinstance(bits, int) or bits < 0:
            fail(path, lineno, f"invalid bits value {bits!r}")
        events += 1

        ev = event["ev"]
        if ev == "round" and bits != 0:
            fail(path, lineno, "round events must not carry wire bits")
        if ev in ("cinj", "oinv"):
            # Chaos/oracle meta events: a crash injection ("cinj", value =
            # the window's until-round) and an oracle violation ("oinv",
            # value = the violation index) never transmit anything.
            if bits != 0 or event.get("energy", 0.0) != 0.0:
                fail(path, lineno,
                     f"{ev} events must not carry wire bits or energy")
        if (ev == "uni" and event.get("flags", 0) & FLAG_ARQ
                and 0 < bits < ARQ_HEADER_BITS):
            fail(path, lineno,
                 f"ARQ frame carries {bits} bits — smaller than its own "
                 f"{ARQ_HEADER_BITS}-bit header")
        if ev == "uni":
            replay_energy += event.get("energy", 0.0)
            replay["unicasts"] += 1
            replay["deliveries"] += 1
            replay["bits"] += bits
            if event.get("flags", 0) & FLAG_ARQ:
                count_arq_frame(event, replay)
        elif ev == "bcast":
            replay_energy += event.get("energy", 0.0)
            replay["broadcasts"] += 1
            replay["deliveries"] += event.get("receivers", 0)
            replay["bits"] += bits
        elif ev == "loss":
            replay["lost"] += 1
        elif ev == "crash":
            replay["dropped_crashed"] += 1
        elif ev == "sup":
            replay["suppressed"] += 1
            if event.get("flags", 0) & FLAG_ARQ:
                count_arq_frame(event, replay)
        elif ev == "adel":
            replay["delivered"] += 1
        elif ev == "adup":
            replay["duplicates"] += 1
        elif ev == "agup":
            replay["give_ups"] += 1
        elif ev == "atmo":
            replay["timeout_rounds"] += event.get("value", 0)
        elif ev == "round":
            replay["rounds"] += event.get("value", 0)

    for key in SUMMARY_COUNTERS:
        if key not in summary:
            fail(path, len(lines), f"summary is missing {key!r}")
        if replay[key] != summary[key]:
            fail(path, len(lines),
                 f"replayed {key}={replay[key]} but the live run recorded "
                 f"{summary[key]}")

    live_energy = summary["energy"]
    tolerance = 1e-9 * max(1.0, abs(live_energy))
    if abs(replay_energy - live_energy) > tolerance:
        fail(path, len(lines),
             f"replayed energy {replay_energy!r} != recorded {live_energy!r}")
    if replay_energy != live_energy:
        print(f"{path}: warning: energy matches only approximately "
              f"({replay_energy!r} vs {live_energy!r})", file=sys.stderr)

    threads_note = f", {threads} threads" if threads > 1 else ""
    driver_note = f", driver {driver}" if driver and driver != algo else ""
    print(f"{path}: ok — {events} events, energy {live_energy:.6f}, "
          f"{summary['unicasts']} unicasts / {summary['broadcasts']} "
          f"broadcasts / {summary['bits']} bits over {summary['rounds']} "
          f"rounds{threads_note}{driver_note}")


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    for path in argv[1:]:
        check_file(path)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
