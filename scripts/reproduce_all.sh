#!/usr/bin/env bash
# Regenerate every table/figure of the reproduction and archive the outputs.
#
#   scripts/reproduce_all.sh [build_dir] [results_dir]
#
# Runs each bench binary at its default (paper-scale) parameters, teeing the
# console tables into results/<bench>.txt and CSVs into results/<bench>.csv.
set -euo pipefail

BUILD_DIR="${1:-build}"
RESULTS_DIR="${2:-results}"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: $BUILD_DIR/bench not found — build first:" >&2
  echo "  cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
  exit 1
fi

mkdir -p "$RESULTS_DIR"

for bench in "$BUILD_DIR"/bench/*; do
  name="$(basename "$bench")"
  [ -f "$bench" ] && [ -x "$bench" ] || continue
  case "$name" in
    CMakeFiles|*.cmake) continue ;;
    micro_substrates)
      echo "== $name (google-benchmark)"
      # Older google-benchmark releases take a plain double; newer ones also
      # accept the "0.05s" form.
      "$bench" --benchmark_min_time=0.05 | tee "$RESULTS_DIR/$name.txt"
      ;;
    *)
      echo "== $name"
      "$bench" --csv="$RESULTS_DIR/$name.csv" | tee "$RESULTS_DIR/$name.txt"
      ;;
  esac
  echo
done

echo "all benches done — outputs in $RESULTS_DIR/"
