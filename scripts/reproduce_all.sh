#!/usr/bin/env bash
# Regenerate every table/figure of the reproduction and archive the outputs.
#
#   scripts/reproduce_all.sh [build_dir] [results_dir] [threads] [ranks]
#
# Runs each bench binary at its default (paper-scale) parameters, teeing the
# console tables into results/<bench>.txt and CSVs into results/<bench>.csv.
# `threads` is a comma list forwarded to the parallel_scaling bench (default
# 1,2,4,8) — set it to the core count of the reproduction machine. `ranks`
# is the comma list forwarded to the dist_scaling bench (default 1,2,4).
# Fails loudly (before running anything) if any bench binary named by a
# bench/*.cpp source is missing from the build tree — a silent skip would
# produce an incomplete results/ directory that looks complete.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-build}"
RESULTS_DIR="${2:-results}"
THREADS="${3:-1,2,4,8}"
RANKS="${4:-1,2,4}"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: $BUILD_DIR/bench not found — build first:" >&2
  echo "  cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
  exit 1
fi

# Every bench/*.cpp source must have produced an executable.
missing=0
benches=()
for src in "$REPO_ROOT"/bench/*.cpp; do
  name="$(basename "${src%.cpp}")"
  if [ ! -x "$BUILD_DIR/bench/$name" ]; then
    echo "error: bench binary missing: $BUILD_DIR/bench/$name" >&2
    missing=1
  fi
  benches+=("$name")
done
if [ "$missing" -ne 0 ]; then
  echo "error: rebuild before reproducing: cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

mkdir -p "$RESULTS_DIR"

# Exit non-zero on a malformed or self-check-failing record — a truncated
# or half-written artifact committed as a tracked result would silently
# poison the trajectory. Schemas live in scripts/validate_bench.py (shared
# with bench_perf.sh and CI).
validate_json() {
  if command -v python3 >/dev/null 2>&1; then
    python3 "$REPO_ROOT/scripts/validate_bench.py" "$1"
  fi
}

for name in "${benches[@]}"; do
  bench="$BUILD_DIR/bench/$name"
  case "$name" in
    micro_substrates|perf_sim)
      echo "== $name (google-benchmark)"
      # Older google-benchmark releases take a plain double; newer ones also
      # accept the "0.05s" form.
      "$bench" --benchmark_min_time=0.05 | tee "$RESULTS_DIR/$name.txt"
      ;;
    robustness_faults)
      echo "== $name"
      # Also refreshes the tracked fault-overhead curve at the repo root.
      "$bench" --csv="$RESULTS_DIR/$name.csv" \
        --json="$REPO_ROOT/BENCH_faults.json" | tee "$RESULTS_DIR/$name.txt"
      validate_json "$REPO_ROOT/BENCH_faults.json"
      cp "$REPO_ROOT/BENCH_faults.json" "$RESULTS_DIR/BENCH_faults.json"
      ;;
    parallel_scaling)
      echo "== $name (threads=$THREADS)"
      # Refreshes the tracked strong-scaling record; the binary exits
      # non-zero if the sharded engine diverges bitwise from the serial one.
      "$bench" --threads="$THREADS" \
        --json="$REPO_ROOT/BENCH_parallel.json" | tee "$RESULTS_DIR/$name.txt"
      validate_json "$REPO_ROOT/BENCH_parallel.json"
      cp "$REPO_ROOT/BENCH_parallel.json" "$RESULTS_DIR/BENCH_parallel.json"
      ;;
    dist_scaling)
      echo "== $name (ranks=$RANKS)"
      # Refreshes the tracked rank-process scaling record; the binary exits
      # non-zero if the distributed engine diverges bitwise from the serial
      # one at any rank count.
      "$bench" --ranks="$RANKS" \
        --json="$REPO_ROOT/BENCH_dist.json" | tee "$RESULTS_DIR/$name.txt"
      validate_json "$REPO_ROOT/BENCH_dist.json"
      cp "$REPO_ROOT/BENCH_dist.json" "$RESULTS_DIR/BENCH_dist.json"
      ;;
    telemetry_overhead)
      echo "== $name"
      # Refreshes the tracked observer-cost record at the repo root.
      "$bench" --json="$REPO_ROOT/BENCH_telemetry.json" \
        | tee "$RESULTS_DIR/$name.txt"
      validate_json "$REPO_ROOT/BENCH_telemetry.json"
      cp "$REPO_ROOT/BENCH_telemetry.json" "$RESULTS_DIR/BENCH_telemetry.json"
      ;;
    wire_overhead)
      echo "== $name"
      # Refreshes the tracked message-size record; the binary exits
      # non-zero if any encoded frame exceeds the c*log2(n) bound.
      "$bench" --json="$REPO_ROOT/BENCH_wire.json" \
        | tee "$RESULTS_DIR/$name.txt"
      validate_json "$REPO_ROOT/BENCH_wire.json"
      cp "$REPO_ROOT/BENCH_wire.json" "$RESULTS_DIR/BENCH_wire.json"
      ;;
    serve_throughput)
      echo "== $name"
      # Refreshes the tracked serve-session throughput record; the binary
      # exits non-zero if any verified commit diverges from kruskal_msf.
      "$bench" --json="$REPO_ROOT/BENCH_serve.json" \
        | tee "$RESULTS_DIR/$name.txt"
      validate_json "$REPO_ROOT/BENCH_serve.json"
      cp "$REPO_ROOT/BENCH_serve.json" "$RESULTS_DIR/BENCH_serve.json"
      ;;
    *)
      echo "== $name"
      "$bench" --csv="$RESULTS_DIR/$name.csv" | tee "$RESULTS_DIR/$name.txt"
      ;;
  esac
  echo
done

# Telemetry trace round-trip: emit a JSONL trace per fault-aware driver and
# replay-validate it (scripts/check_trace.py re-derives every counter from
# the events and compares to the summary the live run wrote).
if [ -x "$BUILD_DIR/examples/emst_cli" ] && command -v python3 >/dev/null 2>&1; then
  echo "== telemetry traces"
  for algo in sync eopt; do
    "$BUILD_DIR/examples/emst_cli" --algo="$algo" --n=500 --seed=7 \
      --trace="$RESULTS_DIR/trace_$algo.jsonl" --format=json \
      > "$RESULTS_DIR/trace_$algo.run.json"
    python3 "$REPO_ROOT/scripts/check_trace.py" "$RESULTS_DIR/trace_$algo.jsonl"
  done
  # Multi-threaded trace: same run on the sharded engine. The event lines
  # (everything after the header) must be byte-identical to the 1-thread
  # trace — the strongest form of the determinism contract.
  "$BUILD_DIR/examples/emst_cli" --algo=sync --n=500 --seed=7 --threads=4 \
    --trace="$RESULTS_DIR/trace_sync_t4.jsonl" --format=json \
    > "$RESULTS_DIR/trace_sync_t4.run.json"
  python3 "$REPO_ROOT/scripts/check_trace.py" "$RESULTS_DIR/trace_sync_t4.jsonl"
  if ! diff <(tail -n +2 "$RESULTS_DIR/trace_sync.jsonl") \
            <(tail -n +2 "$RESULTS_DIR/trace_sync_t4.jsonl") > /dev/null; then
    echo "error: sharded trace diverged from the single-threaded trace" >&2
    exit 1
  fi
  # Rank-process trace: the same contract for the distributed engine. The
  # classic GHS run at 4 rank processes must write event lines byte-identical
  # to the in-process run (only the header differs, by its "ranks" field).
  "$BUILD_DIR/examples/emst_cli" --algo=ghs --n=500 --seed=7 \
    --trace="$RESULTS_DIR/trace_ghs.jsonl" --format=json \
    > "$RESULTS_DIR/trace_ghs.run.json"
  "$BUILD_DIR/examples/emst_cli" --algo=ghs --n=500 --seed=7 --ranks=4 \
    --trace="$RESULTS_DIR/trace_ghs_r4.jsonl" --format=json \
    > "$RESULTS_DIR/trace_ghs_r4.run.json"
  python3 "$REPO_ROOT/scripts/check_trace.py" \
    "$RESULTS_DIR/trace_ghs.jsonl" "$RESULTS_DIR/trace_ghs_r4.jsonl"
  if ! diff <(tail -n +2 "$RESULTS_DIR/trace_ghs.jsonl") \
            <(tail -n +2 "$RESULTS_DIR/trace_ghs_r4.jsonl") > /dev/null; then
    echo "error: distributed trace diverged from the in-process trace" >&2
    exit 1
  fi
  echo
fi

echo "all benches done — outputs in $RESULTS_DIR/"
