#!/usr/bin/env bash
# Run the simulator-engine microbench and record the result as BENCH_sim.json
# at the repo root, plus the sharded-engine strong-scaling bench as
# BENCH_parallel.json, so the perf trajectory is tracked in git from PR to PR.
#
#   scripts/bench_perf.sh [build_dir] [output_json] [threads] [ranks]
#
# `threads` is a comma list passed to parallel_scaling (default 1,2,4,8);
# pick it to match the machine — tracked numbers embed hardware_concurrency
# so a 1-core CI record is not mistaken for a scaling claim. `ranks` is the
# comma list passed to dist_scaling (default 1,2,4), which records the
# process-level distributed engine as BENCH_dist.json the same way.
#
# BENCH_sim.json is google-benchmark's format: one entry per benchmark run.
# BM_CalendarPump/BM_LegacyPump are the collect_round-dominated steady-state
# workload; BM_CalendarEnqueue/BM_LegacyEnqueue isolate enqueue. Args are
# /<messages>/<max_extra_delay>. See docs/PERF.md for how to read both files.
set -euo pipefail

# --allow-debug (anywhere in the args) lets a non-Release build produce a
# record anyway; the record is then marked `"untracked": true` and the
# validator refuses it as a tracked artifact. Positional args are unchanged.
ALLOW_DEBUG=0
ARGS=()
for arg in "$@"; do
  if [ "$arg" = "--allow-debug" ]; then
    ALLOW_DEBUG=1
  else
    ARGS+=("$arg")
  fi
done
set -- "${ARGS[@]:-}"

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
OUT="${2:-$REPO_ROOT/BENCH_sim.json}"
THREADS="${3:-1,2,4,8}"
RANKS="${4:-1,2,4}"
BIN="$BUILD_DIR/bench/perf_sim"
SCALING_BIN="$BUILD_DIR/bench/parallel_scaling"
SCALING_OUT="$REPO_ROOT/BENCH_parallel.json"
DIST_BIN="$BUILD_DIR/bench/dist_scaling"
DIST_OUT="$REPO_ROOT/BENCH_dist.json"

for bin in "$BIN" "$SCALING_BIN" "$DIST_BIN"; do
  if [ ! -x "$bin" ]; then
    echo "error: $bin not found or not executable — build first:" >&2
    echo "  cmake -B $BUILD_DIR -S $REPO_ROOT -DCMAKE_BUILD_TYPE=Release && cmake --build $BUILD_DIR -j" >&2
    exit 1
  fi
done

# Tracked records come from Release builds only: a debug-built bench binary
# measures assertion overhead, not the engine, and one committed record from
# it poisons the whole perf trajectory. The build type is read from the
# build tree's own cache, not guessed from the binary.
BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt" 2>/dev/null || true)"
BUILD_TYPE_LOWER="$(printf '%s' "$BUILD_TYPE" | tr '[:upper:]' '[:lower:]')"
UNTRACKED=0
if [ "$BUILD_TYPE_LOWER" != "release" ]; then
  if [ "$ALLOW_DEBUG" -ne 1 ]; then
    echo "error: $BUILD_DIR is configured as '${BUILD_TYPE:-unspecified}', not Release." >&2
    echo "A tracked BENCH record from a non-Release build is meaningless." >&2
    echo "Reconfigure with -DCMAKE_BUILD_TYPE=Release, or pass --allow-debug" >&2
    echo "to produce a record marked \"untracked\": true." >&2
    exit 1
  fi
  UNTRACKED=1
  echo "warning: non-Release build (${BUILD_TYPE:-unspecified}) — records will be marked untracked" >&2
fi

# Stamp the record in place with the *repo's* build type (google-benchmark's
# own `context.library_build_type` reports how the system libbenchmark was
# compiled, which this repo does not control), plus the untracked marker when
# the --allow-debug override produced it.
stamp_record() {
  python3 - "$1" "$BUILD_TYPE" "$UNTRACKED" <<'EOF'
import json, sys
path, build_type, untracked = sys.argv[1], sys.argv[2], sys.argv[3] == "1"
with open(path, encoding="utf-8") as handle:
    doc = json.load(handle)
doc["repo_build_type"] = build_type
if untracked:
    doc["untracked"] = True
with open(path, "w", encoding="utf-8") as handle:
    json.dump(doc, handle, indent=2)
    handle.write("\n")
tag = " (untracked)" if untracked else ""
print(f"stamped {path} repo_build_type={build_type}{tag}")
EOF
}

# Plain-double min_time: the "0.1s" spelling needs a newer google-benchmark
# than the oldest this repo supports (see reproduce_all.sh).
"$BIN" \
  --benchmark_min_time=0.1 \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json

echo
echo "wrote $OUT"
stamp_record "$OUT"

# Schema + self-check validation (shared with reproduce_all.sh and CI): a
# truncated or silently-failing record committed as the tracked artifact
# would poison the trajectory. Untracked (debug-build) records pass only
# with the explicit override.
VALIDATE_FLAGS=()
if [ "$UNTRACKED" -eq 1 ]; then VALIDATE_FLAGS+=(--allow-untracked); fi
if command -v python3 >/dev/null 2>&1; then
  python3 "$REPO_ROOT/scripts/validate_bench.py" ${VALIDATE_FLAGS[@]:+"${VALIDATE_FLAGS[@]}"} "$OUT"
fi

# Strong scaling of the sharded engine: serial Network vs ShardedNetwork at
# the requested thread counts. The binary exits non-zero if any width fails
# the bitwise delivery/energy identity check, so a racy engine can't leave a
# plausible-looking record behind.
echo
"$SCALING_BIN" --threads="$THREADS" --json="$SCALING_OUT"
echo
echo "wrote $SCALING_OUT"
stamp_record "$SCALING_OUT"
if command -v python3 >/dev/null 2>&1; then
  python3 "$REPO_ROOT/scripts/validate_bench.py" ${VALIDATE_FLAGS[@]:+"${VALIDATE_FLAGS[@]}"} "$SCALING_OUT"
fi

# Process-level scaling of the distributed engine: serial Network vs
# DistributedNetwork at the requested rank counts, with bytes-on-wire per
# scenario. Same contract as parallel_scaling: the binary exits non-zero if
# any rank count breaks the bitwise delivery/energy identity.
echo
"$DIST_BIN" --ranks="$RANKS" --json="$DIST_OUT"
echo
echo "wrote $DIST_OUT"
stamp_record "$DIST_OUT"
if command -v python3 >/dev/null 2>&1; then
  python3 "$REPO_ROOT/scripts/validate_bench.py" ${VALIDATE_FLAGS[@]:+"${VALIDATE_FLAGS[@]}"} "$DIST_OUT"
fi

# Headline ratio (legacy / calendar) per workload, when python3 is around.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$OUT" <<'EOF'
import json, sys
runs = {b["name"]: b["real_time"]
        for b in json.load(open(sys.argv[1]))["benchmarks"]
        if b.get("run_type", "iteration") == "iteration"}
print("speedup (legacy / calendar):")
for name, legacy_time in sorted(runs.items()):
    if not name.startswith("BM_Legacy"):
        continue
    calendar = name.replace("BM_Legacy", "BM_Calendar")
    if calendar in runs and runs[calendar] > 0:
        workload = name.removeprefix("BM_Legacy")
        print(f"  {workload:<22} {legacy_time / runs[calendar]:6.2f}x")
EOF
fi
