#!/usr/bin/env bash
# End-to-end smoke of the emst_serve daemon over loopback TCP (shared by
# ctest and CI):
#
#   scripts/serve_smoke.sh path/to/emst_serve [workdir]
#
# Starts a daemon on an ephemeral port, drives a full mutation session
# through the scripted client (add / remove / move / commit / tree / stats),
# shuts it down cleanly, and checks the daemon exited zero. Exits 77
# (the ctest SKIP_RETURN_CODE) when the environment cannot bind a loopback
# socket — sandboxed builds legitimately can't.
set -euo pipefail

SERVE_BIN="${1:?usage: serve_smoke.sh path/to/emst_serve [workdir]}"
WORKDIR="${2:-$(mktemp -d)}"
mkdir -p "$WORKDIR"
PORT_FILE="$WORKDIR/port.txt"
DAEMON_LOG="$WORKDIR/daemon.log"
rm -f "$PORT_FILE"

"$SERVE_BIN" --n=64 --seed=7 --algo=eopt --port=0 --port-file="$PORT_FILE" \
  > "$DAEMON_LOG" 2>&1 &
DAEMON_PID=$!

# Wait for the daemon to publish its bound port (or die trying).
for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
    if grep -qi "bind\|socket" "$DAEMON_LOG"; then
      echo "serve_smoke: cannot bind a loopback socket here — skipping" >&2
      cat "$DAEMON_LOG" >&2
      exit 77
    fi
    echo "serve_smoke: daemon died before binding:" >&2
    cat "$DAEMON_LOG" >&2
    exit 1
  fi
  sleep 0.05
done
if [ ! -s "$PORT_FILE" ]; then
  echo "serve_smoke: daemon never published a port" >&2
  kill "$DAEMON_PID" 2>/dev/null || true
  exit 1
fi
PORT="$(cat "$PORT_FILE")"

SCRIPT="$WORKDIR/session.txt"
cat > "$SCRIPT" <<'EOF'
# One full serve session: grow, shrink, wander, then inspect.
add 0.5 0.5
add 0.25 0.75
remove 3
move 7 0.1 0.9
commit
tree
stats
shutdown
EOF

CLIENT_OUT="$WORKDIR/client.out"
"$SERVE_BIN" --client --port="$PORT" --script="$SCRIPT" | tee "$CLIENT_OUT"

# The commit must have admitted all four mutations and the session must
# still hold a spanning tree over the mutated deployment (64 - 1 + 2).
grep -q "commit admitted=4" "$CLIENT_OUT"
grep -q "tree nodes=65" "$CLIENT_OUT"
grep -q "shutdown ok" "$CLIENT_OUT"

wait "$DAEMON_PID"
echo "serve_smoke: ok (port $PORT)"
