#!/usr/bin/env python3
"""Validate tracked BENCH_*.json records (shared by bench_perf.sh,
reproduce_all.sh and CI).

    scripts/validate_bench.py BENCH_file.json [more.json ...]

Every tracked perf/quality record at the repo root goes through the same
gate before it can be committed: the file must parse, match the schema its
producing bench writes, and — where the record embeds a self-check — that
check must have passed. A truncated, half-written or silently-failing
artifact committed as a tracked record would poison the trajectory the
repo's BENCH files exist to show.

Known records (matched by filename):
  BENCH_sim.json        google-benchmark output of bench/perf_sim;
                        `repo_build_type` (stamped by bench_perf.sh) must be
                        Release — the upstream `context.library_build_type`
                        describes the system libbenchmark, not this repo
  BENCH_parallel.json   sharded-engine strong scaling; `identical` must be
                        true (the bitwise-determinism contract)
  BENCH_dist.json       distributed-engine (rank processes) scaling;
                        `identical` must be true and every rank run's
                        bytes-on-wire must strictly exceed its codec
                        payload (frames really crossed a socket)
  BENCH_faults.json     loss-sweep energy overhead of ARQ over lossy links
  BENCH_chaos.json      adversarial chaos campaign (drivers x strategies);
                        every cell's `exact` must be 1.0 (the fail-stop
                        per-component exactness contract) with zero
                        oracle violations
  BENCH_telemetry.json  observer cost of the telemetry sinks;
                        `energy_identical` must be true
  BENCH_wire.json       max/mean encoded message size vs c*log2(n);
                        `all_within_bound` must be true and every sweep row
                        must respect its bound
  BENCH_scale.json      memory/scale sweep of the topology backends; every
                        completed row must carry peak RSS, the n grid must be
                        strictly increasing per (algo, backend), and where
                        both backends ran the results must be `identical`
  BENCH_serve.json      serve-session mutation throughput;
                        `incremental_exact` must be true (every verified
                        commit equalled kruskal_msf), requests/sec must be
                        present and positive, and the incremental repair
                        must actually be local (mean nodes touched per
                        incremental commit well under the deployment size)

Records carrying `"untracked": true` (produced by a non-Release build via
the --allow-debug override) are refused unless --allow-untracked is passed:
they exist for local inspection, never for committing.

Unknown BENCH files fail loudly: add a schema here when adding a record.
Exit status 0 iff every file passes. Standard library only.
"""
from __future__ import annotations

import json
import os
import sys


def fail(path: str, message: str) -> None:
    print(f"{path}: error: {message}", file=sys.stderr)
    raise SystemExit(1)


def require(path: str, record: dict, fields: tuple[str, ...],
            where: str = "record") -> None:
    for field in fields:
        if field not in record:
            fail(path, f"{where} is missing {field!r}")


def check_sim(path: str, doc: dict) -> str:
    require(path, doc, ("context", "benchmarks", "repo_build_type"))
    # google-benchmark's own context.library_build_type describes the system
    # libbenchmark, not this repo; bench_perf.sh stamps the build type that
    # actually matters. Only the --allow-debug override may be non-Release.
    if doc["repo_build_type"].lower() != "release" \
            and doc.get("untracked") is not True:
        fail(path, f"repo_build_type {doc['repo_build_type']!r} is not "
                   "Release and the record is not marked untracked")
    benches = doc["benchmarks"]
    if not benches:
        fail(path, "no benchmark entries")
    for bench in benches:
        require(path, bench, ("name", "real_time", "cpu_time", "iterations"),
                where=f"benchmark {bench.get('name', '?')!r}")
        if bench.get("run_type", "iteration") == "iteration" \
                and bench["iterations"] <= 0:
            fail(path, f"benchmark {bench['name']!r} ran 0 iterations")
    return f"{len(benches)} benchmark entries"


def check_parallel(path: str, doc: dict) -> str:
    require(path, doc, ("hardware_concurrency", "nodes", "trials", "seed",
                        "identical", "scenarios"))
    if doc["identical"] is not True:
        fail(path, "sharded engine diverged from the serial engine "
                   "(identical != true) — this record must never be committed")
    if not doc["scenarios"]:
        fail(path, "no scenarios")
    for scenario in doc["scenarios"]:
        require(path, scenario, ("messages", "serial_ms", "sharded"),
                where="scenario")
    return f"{len(doc['scenarios'])} scenarios, bitwise identical"


def check_dist(path: str, doc: dict) -> str:
    require(path, doc, ("hardware_concurrency", "nodes", "trials", "seed",
                        "identical", "scenarios"))
    if doc["identical"] is not True:
        fail(path, "distributed engine diverged from the serial engine "
                   "(identical != true) — this record must never be "
                   "committed")
    if not doc["scenarios"]:
        fail(path, "no scenarios")
    rank_runs = 0
    placements = set()
    for scenario in doc["scenarios"]:
        require(path, scenario, ("messages", "serial_ms", "distributed"),
                where="scenario")
        if not scenario["distributed"]:
            fail(path, f"messages={scenario['messages']}: no rank counts "
                       "recorded")
        for run in scenario["distributed"]:
            require(path, run,
                    ("ranks", "handler_placement", "mean_ms",
                     "slowdown_vs_serial", "wire_bytes_sent",
                     "wire_bytes_received", "payload_bytes"),
                    where=f"messages={scenario['messages']} rank record")
            where = (f"messages={scenario['messages']} "
                     f"ranks={run.get('ranks', '?')} "
                     f"placement={run.get('handler_placement', '?')}")
            if run["handler_placement"] not in ("parent", "rank"):
                fail(path, f"{where}: handler_placement must be 'parent' "
                           "(routing mode) or 'rank' (actor mode)")
            placements.add(run["handler_placement"])
            if run["ranks"] < 1:
                fail(path, f"{where}: ranks must be >= 1")
            if run["mean_ms"] <= 0:
                fail(path, f"{where}: mean_ms must be positive")
            # The wire-reality contract: frames cross a real socket with
            # headers and fingerprints, so bytes-on-wire must strictly
            # exceed the raw codec payload they carry. Only assertable when
            # at least one message crossed a rank boundary — a run whose
            # codec traffic never left the parent legitimately records
            # payload_bytes == 0.
            if run["payload_bytes"] > 0:
                if not run["payload_bytes"] < run["wire_bytes_sent"]:
                    fail(path, f"{where}: payload_bytes "
                               f"{run['payload_bytes']} not below "
                               f"wire_bytes_sent {run['wire_bytes_sent']} — "
                               "frames did not cross a real wire")
            if run["wire_bytes_received"] <= 0:
                fail(path, f"{where}: wire_bytes_received must be positive")
            rank_runs += 1
    if placements != {"parent", "rank"}:
        fail(path, "tracked record must time BOTH handler placements "
                   f"(saw {sorted(placements)}) — routing mode and the "
                   "rank-resident actor runtime")
    return (f"{len(doc['scenarios'])} scenarios x {rank_runs} rank runs "
            "across both placements, bitwise identical")


def check_faults(path: str, doc: dict) -> str:
    require(path, doc, ("n", "trials", "seed", "arq", "baseline", "sweep"))
    if not doc["sweep"]:
        fail(path, "empty loss sweep")
    for row in doc["sweep"]:
        require(path, row, ("loss", "eopt", "ghs"), where="sweep row")
    return f"{len(doc['sweep'])} loss points"


def check_chaos(path: str, doc: dict) -> str:
    require(path, doc, ("n", "trials", "seed", "max_kill_fraction",
                        "campaign"))
    if not doc["campaign"]:
        fail(path, "empty campaign")
    if not 0 < doc["max_kill_fraction"] <= 1:
        fail(path, f"max_kill_fraction {doc['max_kill_fraction']} outside "
                   "(0, 1]")
    for cell in doc["campaign"]:
        require(path, cell, ("driver", "strategy", "survival", "exact",
                             "energy_overhead", "kills", "epochs",
                             "oracle_violations"), where="campaign cell")
        where = f"{cell.get('driver', '?')} x {cell.get('strategy', '?')}"
        if not 0 <= cell["survival"] <= 1:
            fail(path, f"{where}: survival {cell['survival']} outside "
                       "[0, 1]")
        if cell["survival"] < 1 - doc["max_kill_fraction"] - 1e-9:
            fail(path, f"{where}: survival {cell['survival']} below the "
                       "kill-budget floor — a strategy exceeded its budget")
        if cell["exact"] != 1.0:
            # The graceful-degradation contract: every trial must end with
            # the exact MST of each surviving component. A record violating
            # it must never be committed.
            fail(path, f"{where}: exact {cell['exact']} != 1.0 — the "
                       "per-component exactness contract failed")
        if cell["oracle_violations"] != 0:
            fail(path, f"{where}: {cell['oracle_violations']} oracle "
                       "violations — a corrupt run must never be committed")
        if cell["epochs"] < 1:
            fail(path, f"{where}: epochs {cell['epochs']} < 1")
        if cell["energy_overhead"] <= 0:
            fail(path, f"{where}: energy_overhead must be positive")
    return f"{len(doc['campaign'])} cells, all exact, oracle silent"


def check_telemetry(path: str, doc: dict) -> str:
    require(path, doc, ("n", "trials", "seed", "energy_identical",
                        "workloads"))
    if doc["energy_identical"] is not True:
        fail(path, "telemetry observers changed the energy figure "
                   "(energy_identical != true)")
    if not doc["workloads"]:
        fail(path, "no workloads")
    for workload in doc["workloads"]:
        require(path, workload, ("workload", "off"), where="workload")
    return f"{len(doc['workloads'])} workloads, observers energy-neutral"


def check_wire(path: str, doc: dict) -> str:
    require(path, doc, ("seed", "c_bound", "all_within_bound", "sweep"))
    if doc["all_within_bound"] is not True:
        fail(path, "a message exceeded the c*log2(n) bound "
                   "(all_within_bound != true)")
    if not doc["sweep"]:
        fail(path, "empty deployment sweep")
    algos = 0
    for row in doc["sweep"]:
        require(path, row, ("n", "edges", "bound_bits", "algos"),
                where="sweep row")
        if not row["algos"]:
            fail(path, f"n={row['n']}: no algorithms recorded")
        for sample in row["algos"]:
            require(path, sample,
                    ("algo", "frames", "max_bits", "mean_bits",
                     "within_bound"),
                    where=f"n={row['n']} algo record")
            if sample["frames"] <= 0:
                fail(path, f"n={row['n']} {sample['algo']}: no frames "
                           "charged — the wire measurement saw nothing")
            if sample["max_bits"] > row["bound_bits"]:
                fail(path, f"n={row['n']} {sample['algo']}: max_bits "
                           f"{sample['max_bits']} exceeds the bound "
                           f"{row['bound_bits']:.1f}")
            if sample["within_bound"] is not True:
                fail(path, f"n={row['n']} {sample['algo']}: within_bound "
                           "is false")
            if not 0 < sample["mean_bits"] <= sample["max_bits"]:
                fail(path, f"n={row['n']} {sample['algo']}: mean_bits "
                           f"{sample['mean_bits']} outside (0, max_bits]")
            algos += 1
    return f"{len(doc['sweep'])} deployment sizes x {algos} records in bound"


def check_scale(path: str, doc: dict) -> str:
    require(path, doc, ("bench", "build_type", "seed", "mem_budget_bytes",
                        "identical", "rows"))
    if doc["identical"] is not True:
        fail(path, "the two topology backends diverged (identical != true) "
                   "— this record must never be committed")
    rows = doc["rows"]
    if not rows:
        fail(path, "no sweep rows")
    completed = 0
    grids: dict[tuple[str, str], list[int]] = {}
    for row in rows:
        require(path, row, ("algo", "backend", "n", "status"),
                where="sweep row")
        where = f"{row['algo']}/{row['backend']} n={row['n']}"
        grids.setdefault((row["algo"], row["backend"]), []).append(row["n"])
        if row["status"] == "ok":
            # peak_rss_bytes is the record's reason to exist: a completed
            # row without it is a broken measurement, not a smaller one.
            require(path, row, ("wall_ms", "peak_rss_bytes", "energy",
                                "tree_edges"), where=where)
            if row["peak_rss_bytes"] <= 0:
                fail(path, f"{where}: peak_rss_bytes must be positive")
            if row["wall_ms"] <= 0:
                fail(path, f"{where}: wall_ms must be positive")
            completed += 1
        elif row["status"] == "skipped":
            require(path, row, ("projected_bytes",), where=where)
            if row["projected_bytes"] <= doc["mem_budget_bytes"]:
                fail(path, f"{where}: skipped but projected_bytes within "
                           "budget — the skip is unjustified")
        else:
            fail(path, f"{where}: status {row['status']!r} — a failed run "
                       "must never be committed as a tracked record")
    if completed == 0:
        fail(path, "no completed rows")
    for (algo, backend), ns in grids.items():
        if any(b <= a for a, b in zip(ns, ns[1:])):
            fail(path, f"{algo}/{backend}: n grid {ns} is not strictly "
                       "increasing")
    return f"{len(rows)} rows ({completed} completed), backends identical"


def check_serve(path: str, doc: dict) -> str:
    require(path, doc, ("seed", "batches", "ops_per_batch",
                        "incremental_exact", "verify", "timed"))
    if doc["incremental_exact"] is not True:
        fail(path, "the maintained tree diverged from kruskal_msf "
                   "(incremental_exact != true) — this record must never "
                   "be committed")
    verify = doc["verify"]
    require(path, verify, ("n", "commits", "rebuilds", "requests_per_sec",
                           "mean_nodes_touched"), where="verify phase")
    if verify["commits"] <= 0:
        fail(path, "verify phase ran no commits — the exactness flag "
                   "checked nothing")
    timed = doc["timed"]
    require(path, timed, ("n", "wall_ms", "admitted", "commits", "rebuilds",
                          "requests_per_sec", "mean_nodes_touched",
                          "incremental_commits",
                          "mean_nodes_touched_incremental"),
            where="timed phase")
    if timed["admitted"] <= 0:
        fail(path, "timed phase admitted no requests")
    if timed["requests_per_sec"] <= 0:
        fail(path, "requests_per_sec must be positive")
    if timed["incremental_commits"] <= 0:
        fail(path, "every timed commit fell back to a full rebuild — the "
                   "incremental path never ran")
    # The locality contract: a constant-size batch must touch o(n) nodes.
    # Half the deployment is a generous ceiling for any sane batch size.
    if timed["mean_nodes_touched_incremental"] >= timed["n"] / 2:
        fail(path, f"incremental commits touched "
                   f"{timed['mean_nodes_touched_incremental']:.1f} nodes on "
                   f"average at n={timed['n']} — repair is not local")
    return (f"{timed['requests_per_sec']:.0f} req/s at n={timed['n']}, "
            f"{timed['mean_nodes_touched_incremental']:.1f} nodes/incr "
            f"commit, exact")


CHECKS = {
    "BENCH_sim.json": check_sim,
    "BENCH_parallel.json": check_parallel,
    "BENCH_dist.json": check_dist,
    "BENCH_faults.json": check_faults,
    "BENCH_chaos.json": check_chaos,
    "BENCH_telemetry.json": check_telemetry,
    "BENCH_wire.json": check_wire,
    "BENCH_scale.json": check_scale,
    "BENCH_serve.json": check_serve,
}


def check_file(path: str, allow_untracked: bool = False) -> None:
    name = os.path.basename(path)
    if name not in CHECKS:
        fail(path, f"no schema registered for {name!r} — add one to "
                   "scripts/validate_bench.py when adding a tracked record")
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail(path, f"not readable JSON: {err}")
    if not isinstance(doc, dict):
        fail(path, "top-level JSON value is not an object")
    if doc.get("untracked") is True and not allow_untracked:
        fail(path, "record is marked \"untracked\": true (non-Release "
                   "build) — it must not be committed as a tracked record; "
                   "pass --allow-untracked to inspect it anyway")
    detail = CHECKS[name](path, doc)
    tag = " [UNTRACKED]" if doc.get("untracked") is True else ""
    print(f"{path}: ok{tag} — {detail}")


def main(argv: list[str]) -> int:
    args = argv[1:]
    allow_untracked = "--allow-untracked" in args
    paths = [a for a in args if a != "--allow-untracked"]
    if not paths:
        print(__doc__, file=sys.stderr)
        return 2
    for path in paths:
        check_file(path, allow_untracked)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
