// Rank worker process for the distributed engine (docs/DISTRIBUTED.md).
//
// `sim::DistributedNetwork` forks one of these per rank. A rank owns the
// message plane for its grid tiles: the per-rank calendar ring, the
// per-directed-link FIFO clamp and Gilbert–Elliott burst chains, and the
// counter-based channel-fate evaluation — exactly the state a
// `ShardedNetwork` shard owns, moved into its own address space. Everything
// order-sensitive (energy charges, telemetry, crash classification, the
// global merge) stays in the parent; the rank's reply is its drained
// bucket in (receiver, sequence) order, which the parent's tie-free
// receiver-keyed merge reconstructs into the exact serial delivery order.
//
// The rank never interprets payloads (they are opaque byte strings encoded
// by the parent's `proto::DistMsgAdapter` and decoded again at the merge)
// and never touches the topology: senders compute targets and distances, so
// per-rank memory is O(in-flight messages + links seen), independent of n.
#pragma once

#include <cstddef>
#include <cstdint>

namespace emst::apps {

/// Everything a rank worker needs, fixed at fork time. The loss-channel
/// slice of the parent's `FaultModel` rides along so the rank can evaluate
/// counter-based fates locally; crash windows and the chaos controller stay
/// parent-side (crash classification happens at the merge, where the fault
/// clock lives).
struct RankSpec {
  std::size_t rank = 0;
  std::size_t ranks = 1;
  std::uint32_t max_extra_delay = 0;
  // Channel-fate model (FaultModel's loss slice; see fault.hpp).
  double loss = 0.0;
  bool use_gilbert = false;
  double ge_good_to_bad = 0.05;
  double ge_bad_to_good = 0.3;
  double ge_loss_good = 0.0;
  double ge_loss_bad = 0.8;
  std::uint64_t fault_seed = 0;
};

/// Child-process entry point: serve the rank protocol on `fd` (one end of
/// the parent's socketpair) until EOF. Returns the process exit code —
/// 0 on a clean shutdown (parent closed the channel), small nonzero codes
/// for protocol violations (see rank_runner.cpp). Never returns to the
/// caller's logic: the forked child `_exit()`s with this value.
int rank_main(int fd, const RankSpec& spec);

}  // namespace emst::apps
