// MST-based broadcast planning — the paper's other §II application
// ("broadcasting based on MST consumes energy within a constant factor of
// the optimum" [5, 27]).
//
// Given a spanning tree rooted at the source, two transmission plans:
//  - per-edge unicast: one message per tree edge (n−1 transmissions,
//    energy Σ dᵅ);
//  - wireless advantage: every internal node transmits ONCE at the power of
//    its farthest child (local broadcast), so siblings share one
//    transmission — the minimum-energy broadcast structure [27] restricted
//    to the tree.
#pragma once

#include <vector>

#include "emst/sim/collectives.hpp"

namespace emst::apps {

struct BroadcastPlan {
  graph::NodeId source = 0;
  /// Per node: transmit power radius (0 = leaf, never transmits).
  std::vector<double> tx_radius;
  std::size_t transmissions = 0;  ///< nodes with tx_radius > 0
  double wireless_energy = 0.0;   ///< Σ tx_radiusᵅ (wireless advantage)
  double unicast_energy = 0.0;    ///< Σ dᵅ per tree edge (no advantage)
  std::size_t rounds = 0;         ///< tree depth (pipelined flood)
};

/// Plan a broadcast of one message from `source` over `tree`.
[[nodiscard]] BroadcastPlan plan_broadcast(const sim::Topology& topo,
                                           const std::vector<graph::Edge>& tree,
                                           graph::NodeId source,
                                           const geometry::PathLoss& model = {});

/// Execute the plan on a meter: one local broadcast per internal node (the
/// wireless-advantage schedule). Returns the number of nodes reached
/// (including the source) — must equal n on a spanning tree.
[[nodiscard]] std::size_t execute_broadcast(const sim::Topology& topo,
                                            const BroadcastPlan& plan,
                                            sim::EnergyMeter& meter);

}  // namespace emst::apps
