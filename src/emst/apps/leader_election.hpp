// Leader election over a spanning tree — the problem §IV's lower bound is
// really about ("any distributed algorithm for constructing a spanning tree
// (or equivalently, leader election)" via Korach–Moran–Zaks).
//
// Given any spanning tree (EOPT's MST, Co-NNT, …), electing the maximum-id
// node costs one convergecast + one broadcast: 2(n−1) messages over tree
// edges — so the election inherits the tree's Σdᵅ twice, and the paper's
// Ω(log n) spanning-tree energy bound is equivalently a leader-election
// bound.
#pragma once

#include "emst/sim/collectives.hpp"

namespace emst::apps {

struct ElectionResult {
  graph::NodeId leader = graph::kNoNode;  ///< the maximum node id
  /// Per-node view after dissemination: everyone must agree on the leader.
  std::vector<graph::NodeId> known_leader;
};

/// Elect the maximum node id over `tree` (rooted anywhere — `root` is just
/// the convergecast anchor, NOT favoured). Charges 2 messages per tree edge.
[[nodiscard]] ElectionResult elect_leader(const sim::Topology& topo,
                                          const std::vector<graph::Edge>& tree,
                                          graph::NodeId root,
                                          sim::EnergyMeter& meter);

}  // namespace emst::apps
