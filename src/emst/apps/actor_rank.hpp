// Actor-mode rank worker loop (docs/DISTRIBUTED.md §6).
//
// In actor placement a rank process is not a byte router: it owns a replica
// of the NodeActor state for its node slice and EXECUTES the message
// handlers and choreographed steps locally. Everything externally visible a
// handler does is captured by `sim::RankActorEnv` as a fixed-layout effect
// record and shipped home in the ACTOR_DRAINED / ACTOR_STEPPED ledger; the
// parent replays that ledger in the serial global order against its own
// meter, fault clock and staging queues, so the accounting stream stays
// bitwise-identical to the in-process engines while the computation itself
// runs out here.
//
// The loop shares the routing rank's transport skeleton (rank_detail.hpp):
// serve-framed chunks, fingerprint-verify-before-parse, the D+1-bucket
// calendar ring with the per-link FIFO clamp, and by-receiver ordering of
// the due bucket. On top of that it keeps two pieces of protocol state the
// routing rank never needed:
//
//  - a local deferred FIFO holding the raw payload bytes of deliveries the
//    handler deferred — the parent's deferred-queue model reproduces its
//    order exactly, entry for entry;
//  - a mirrored FaultInjector carrying the crash schedule (static windows
//    from the model at install time; chaos injections arrive per round in
//    the final ACTOR_ROUND chunk). The rank classifies crash drops with the
//    mirror so it can skip the handler; the parent re-classifies with the
//    authoritative clock and asserts agreement.
#pragma once

#include <unistd.h>

#include <bit>
#include <cerrno>
#include <csignal>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "emst/apps/rank_detail.hpp"
#include "emst/proto/dist_wire.hpp"
#include "emst/serve/framing.hpp"
#include "emst/sim/actor.hpp"
#include "emst/sim/fault.hpp"
#include "emst/sim/network.hpp"
#include "emst/sim/wire.hpp"
#include "emst/support/assert.hpp"
#include "emst/support/flat_map.hpp"

namespace emst::apps {

/// Everything an actor worker needs from the engine. The spans/pointers
/// reference the parent's memory, carried into the child as copy-on-write
/// pages by fork — nothing topology-sized is serialized at spawn.
template <typename Msg>
struct ActorRankCtx {
  int fd = -1;
  std::size_t rank = 0;
  std::uint32_t max_extra_delay = 0;
  std::span<const std::uint32_t> node_rank;  ///< node → owning rank
  const sim::WireFormat<Msg>* wire = nullptr;
  bool faulty = false;
  sim::ActorTestHooks hooks{};
};

namespace detail {

/// Reconstruct the in-memory delivery from its wire image — the same codec
/// and size assertion the parent's routing-mode merge applies.
template <typename Msg>
[[nodiscard]] inline sim::Delivery<Msg> decode_item(
    const Item& item, const sim::WireFormat<Msg>& wf) {
  proto::BitReader r(item.payload);
  Msg m = proto::DistMsgAdapter<Msg>::decode(r, wf);
  if constexpr (sim::WireFormat<Msg>::kMeasured) {
    EMST_ASSERT_MSG(r.bit_count() == item.bits,
                    "rank decode consumed a different size than accounted");
  }
  return {item.from, item.to, std::bit_cast<double>(item.distance_bits),
          std::move(m)};
}

}  // namespace detail

/// The child entry point installed by `DistributedNetwork::install_actor`.
/// Returns the exit status (0 = clean EOF shutdown; rank_detail.hpp codes
/// otherwise). `actor` is this rank's replica; `mirror` the crash-schedule
/// mirror described above.
template <typename Msg, typename Actor>
int actor_rank_main(const ActorRankCtx<Msg>& ctx, Actor& actor,
                    sim::FaultInjector& mirror) {
  serve::FrameBuffer in;
  std::uint64_t chain = proto::kDistFingerprintSeed;

  // Calendar ring + FIFO clamp: identical to the routing rank. Actor mode is
  // crash-only by contract (asserted at install), so there are no loss draws.
  std::vector<std::vector<detail::Item>> buckets(ctx.max_extra_delay + 1);
  std::size_t head = 0;
  support::FlatMap64 last_due;

  std::vector<detail::Item> fifo;  ///< deferred deliveries, local FIFO order
  std::vector<std::uint32_t> steplist;  ///< accumulated step wire list
  sim::RankActorEnv<Msg> env(*ctx.wire);

  std::vector<std::uint8_t> rdbuf(1 << 16);
  std::vector<std::uint8_t> body;
  std::vector<std::uint32_t> order, recv_slot, touched;
  serve::Frame frame;

  const bool kill_armed = ctx.hooks.kill_rank == ctx.rank;
  auto is_local = [&ctx](std::uint32_t u) {
    return ctx.node_rank[u] == ctx.rank;
  };

  for (;;) {
    // -- Receive one frame (blocking; EOF = clean shutdown) ------------------
    while (!in.next(frame)) {
      if (in.corrupt()) return detail::kExitCorrupt;
      const ssize_t n = ::read(ctx.fd, rdbuf.data(), rdbuf.size());
      if (n < 0) {
        if (errno == EINTR) continue;
        return 0;
      }
      if (n == 0) return 0;
      in.feed(rdbuf.data(), static_cast<std::size_t>(n));
    }
    if (frame.version != proto::kDistProtocolVersion)
      return detail::kExitBadFrame;
    const std::vector<std::uint8_t>& p = frame.payload;
    if (p.size() < proto::kDistFrameFixedBytes + proto::kDistFingerprintBytes)
      return detail::kExitBadFrame;
    const std::uint8_t op = p[0];
    const bool last_chunk = (p[1] & proto::kDistFlagLast) != 0;
    const std::uint64_t round = proto::dist_get_u64(p.data() + 2);

    // -- Collective fingerprint: verify BEFORE parsing (rank_runner.cpp) -----
    const std::size_t body_len = p.size() - proto::kDistFingerprintBytes;
    chain = proto::dist_mix(chain, proto::dist_hash(p.data(), body_len));
    const std::uint64_t expected = proto::dist_get_u64(p.data() + body_len);
    if (expected != chain) {
      body.clear();
      body.push_back(proto::kDistOpDesync);
      body.push_back(proto::kDistFlagLast);
      proto::dist_put_u64(body, round);
      proto::dist_put_u64(body, expected);
      proto::dist_put_u64(body, chain);
      detail::frame_and_send(ctx.fd, body);
      return detail::kExitDesync;
    }

    switch (op) {
      // ---------------------------------------------------------------------
      case proto::kDistOpActorRound: {
        // Ingest this chunk's routed messages. Eagerly emitted chunks arrive
        // while the parent is still replaying the previous round — ingest is
        // order-insensitive, so overlapping the barrier halves is free.
        const std::uint32_t count = proto::dist_get_u32(p.data() + 10);
        std::size_t off = proto::kDistFrameFixedBytes;
        for (std::uint32_t i = 0; i < count; ++i) {
          if (off + proto::kDistRoundRecordBytes > body_len)
            return detail::kExitBadFrame;
          std::uint64_t due = proto::dist_get_u64(&p[off + 8]);
          const std::uint32_t from = proto::dist_get_u32(&p[off + 16]);
          const std::uint32_t to = proto::dist_get_u32(&p[off + 20]);
          const std::uint64_t distance_bits = proto::dist_get_u64(&p[off + 24]);
          const std::uint32_t bits = proto::dist_get_u32(&p[off + 32]);
          const std::uint32_t plen = proto::dist_get_u32(&p[off + 36]);
          off += proto::kDistRoundRecordBytes;
          if (off + plen > body_len) return detail::kExitBadFrame;
          if (ctx.max_extra_delay > 0) {
            const std::uint64_t key = (static_cast<std::uint64_t>(from) << 32) |
                                      static_cast<std::uint64_t>(to);
            const auto slot = last_due.find_or_insert(key, due);
            if (!slot.inserted) {
              due = std::max(due, *slot.value);
              *slot.value = due;
            }
          }
          EMST_ASSERT(due >= round && due - round <= ctx.max_extra_delay);
          std::size_t idx = head + static_cast<std::size_t>(due - round);
          if (idx >= buckets.size()) idx -= buckets.size();
          buckets[idx].push_back(
              {from, to, distance_bits, bits, false,
               std::vector<std::uint8_t>(
                   p.begin() + static_cast<std::ptrdiff_t>(off),
                   p.begin() + static_cast<std::ptrdiff_t>(off + plen))});
          off += plen;
        }
        if (!last_chunk) break;

        // The final chunk carries the chaos windows injected this round; the
        // mirror must know them before the due-bucket crash classification.
        if (off + 4 > body_len) return detail::kExitBadFrame;
        const std::uint32_t wcount = proto::dist_get_u32(&p[off]);
        off += 4;
        for (std::uint32_t i = 0; i < wcount; ++i) {
          if (off + 20 > body_len) return detail::kExitBadFrame;
          sim::CrashWindow w;
          w.node = proto::dist_get_u32(&p[off]);
          w.from = proto::dist_get_u64(&p[off + 4]);
          w.until = proto::dist_get_u64(&p[off + 12]);
          mirror.add_crash_window(w);
          off += 20;
        }
        mirror.advance_to(round);

        // -- Execute the round: retries first (local FIFO order), then the
        // due bucket in by-receiver order — the exact per-rank projection of
        // the serial driver's retry-then-batch sweep.
        actor.on_round_start(round);
        std::vector<detail::Item> retry = std::move(fifo);
        fifo = {};
        detail::begin_chunk(body, proto::kDistOpActorDrained, round);
        std::uint32_t chunk_count = 0;
        auto flush_if_needed = [&](std::size_t entry_bytes) {
          if (body.size() + entry_bytes > proto::kDistMaxChunkBodyBytes) {
            detail::patch_chunk(body, 0, chunk_count);
            detail::seal_and_send(ctx.fd, body, chain);
            detail::begin_chunk(body, proto::kDistOpActorDrained, round);
            chunk_count = 0;
          }
        };
        auto maybe_kill = [&]() {
          // Test hook: die mid-round, immediately before a handler runs —
          // the parent's barrier read must report the death, not hang.
          if (kill_armed && round >= ctx.hooks.kill_round)
            std::raise(SIGKILL);
        };
        for (detail::Item& item : retry) {
          maybe_kill();
          env.begin_entry();
          const std::uint32_t node = item.to;
          const sim::Delivery<Msg> d = detail::decode_item(item, *ctx.wire);
          actor.on_message(d, env);
          const bool redeferred = env.deferred();
          flush_if_needed(proto::kDistEntryRetryFixedBytes +
                          env.effects().size());
          body.push_back(proto::kDistEntryRetry);
          proto::dist_put_u32(body, node);
          body.push_back(redeferred ? 1 : 0);
          proto::dist_put_u16(body, env.effect_count());
          body.insert(body.end(), env.effects().begin(), env.effects().end());
          ++chunk_count;
          if (redeferred) fifo.push_back(std::move(item));
        }
        std::vector<detail::Item>& bucket = buckets[head];
        head = head + 1 == buckets.size() ? 0 : head + 1;
        detail::order_by_receiver(bucket, order, recv_slot, touched);
        for (std::size_t i = 0; i < bucket.size(); ++i) {
          detail::Item& item = bucket[order[i]];
          std::uint8_t status = proto::kDistDeliveryDispatched;
          env.begin_entry();
          if (ctx.faulty && mirror.crashed(item.to)) {
            // Receiver is down at the mirror clock: no handler runs, the
            // entry ships with zero effects and the parent emits the drop
            // event at this entry's merge position.
            status = proto::kDistDeliveryCrashDropped;
          } else {
            maybe_kill();
            const sim::Delivery<Msg> d = detail::decode_item(item, *ctx.wire);
            actor.on_message(d, env);
            if (env.deferred()) status = proto::kDistDeliveryDeferred;
          }
          flush_if_needed(proto::kDistEntryDeliveryFixedBytes +
                          env.effects().size());
          body.push_back(proto::kDistEntryDelivery);
          proto::dist_put_u32(body, item.from);
          proto::dist_put_u32(body, item.to);
          proto::dist_put_u64(body, item.distance_bits);
          proto::dist_put_u32(body, item.bits);
          body.push_back(status);
          proto::dist_put_u16(body, env.effect_count());
          body.insert(body.end(), env.effects().begin(), env.effects().end());
          ++chunk_count;
          if (status == proto::kDistDeliveryDeferred)
            fifo.push_back(std::move(item));
        }
        bucket.clear();
        detail::patch_chunk(body, proto::kDistFlagLast, chunk_count);
        detail::seal_and_send(ctx.fd, body, chain);
        break;
      }
      // ---------------------------------------------------------------------
      case proto::kDistOpActorStep: {
        if (body_len < proto::kDistStepFixedBytes) return detail::kExitBadFrame;
        const std::uint8_t kind = p[10];
        const std::uint64_t param = proto::dist_get_u64(p.data() + 11);
        const std::uint64_t fault_round = proto::dist_get_u64(p.data() + 19);
        const std::uint32_t count = proto::dist_get_u32(p.data() + 27);
        std::size_t off = proto::kDistStepFixedBytes;
        if (off + static_cast<std::size_t>(count) * 4 > body_len)
          return detail::kExitBadFrame;
        for (std::uint32_t i = 0; i < count; ++i) {
          steplist.push_back(proto::dist_get_u32(&p[off]));
          off += 4;
        }
        if (!last_chunk) break;
        mirror.advance_to(fault_round);
        // An epoch restart resets the deferred model on both sides.
        if (kind == proto::kDistStepRestart) fifo.clear();
        detail::begin_chunk(body, proto::kDistOpActorStepped, round);
        std::uint32_t chunk_count = 0;
        auto emit = [&](std::uint32_t u, std::uint8_t flag) {
          const std::size_t bytes =
              proto::kDistStepGroupFixedBytes + env.effects().size();
          if (body.size() + bytes > proto::kDistMaxChunkBodyBytes) {
            detail::patch_chunk(body, 0, chunk_count);
            detail::seal_and_send(ctx.fd, body, chain);
            detail::begin_chunk(body, proto::kDistOpActorStepped, round);
            chunk_count = 0;
          }
          proto::dist_put_u32(body, u);
          body.push_back(flag);
          proto::dist_put_u16(body, env.effect_count());
          body.insert(body.end(), env.effects().begin(), env.effects().end());
          ++chunk_count;
        };
        actor.step(kind, param, std::span<const std::uint32_t>(steplist),
                   mirror, ctx.faulty, is_local, env, emit);
        steplist.clear();
        detail::patch_chunk(body, proto::kDistFlagLast, chunk_count);
        detail::seal_and_send(ctx.fd, body, chain);
        break;
      }
      // ---------------------------------------------------------------------
      case proto::kDistOpActorHarvest: {
        detail::begin_chunk(body, proto::kDistOpActorHarvested, round);
        std::uint32_t chunk_count = 0;
        for (std::uint32_t u = 0;
             u < static_cast<std::uint32_t>(ctx.node_rank.size()); ++u) {
          if (!is_local(u)) continue;
          proto::BitWriter w;
          actor.encode_node(u, w);
          const std::vector<std::uint8_t>& img = w.bytes();
          // +8 keeps room for the trailing invocation counter, which must
          // ride the final chunk.
          if (body.size() + proto::kDistHarvestNodeFixedBytes + img.size() + 8 >
              proto::kDistMaxChunkBodyBytes) {
            detail::patch_chunk(body, 0, chunk_count);
            detail::seal_and_send(ctx.fd, body, chain);
            detail::begin_chunk(body, proto::kDistOpActorHarvested, round);
            chunk_count = 0;
          }
          proto::dist_put_u32(body, u);
          proto::dist_put_u32(body, static_cast<std::uint32_t>(img.size()));
          body.insert(body.end(), img.begin(), img.end());
          ++chunk_count;
        }
        proto::dist_put_u64(body, actor.invocations());
        detail::patch_chunk(body, proto::kDistFlagLast, chunk_count);
        detail::seal_and_send(ctx.fd, body, chain);
        break;
      }
      default:
        return detail::kExitBadFrame;
    }
  }
}

}  // namespace emst::apps
