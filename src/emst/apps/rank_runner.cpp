#include "emst/apps/rank_runner.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <vector>

#include "emst/apps/rank_detail.hpp"
#include "emst/proto/dist_wire.hpp"
#include "emst/serve/framing.hpp"
#include "emst/sim/fault.hpp"
#include "emst/support/assert.hpp"
#include "emst/support/flat_map.hpp"

namespace emst::apps {

using detail::Item;

int rank_main(int fd, const RankSpec& spec) {
  serve::FrameBuffer in;
  std::uint64_t chain = proto::kDistFingerprintSeed;

  // Calendar ring: D+1 buckets, head = bucket due THIS round.
  std::vector<std::vector<Item>> buckets(spec.max_extra_delay + 1);
  std::size_t head = 0;
  support::FlatMap64 last_due;   // per-directed-link FIFO clamp
  support::FlatMap64 ge_state;   // per-link burst chains

  sim::FaultModel channel;
  channel.loss = spec.loss;
  channel.use_gilbert = spec.use_gilbert;
  channel.ge_good_to_bad = spec.ge_good_to_bad;
  channel.ge_bad_to_good = spec.ge_bad_to_good;
  channel.ge_loss_good = spec.ge_loss_good;
  channel.ge_loss_bad = spec.ge_loss_bad;
  channel.seed = spec.fault_seed;
  sim::FaultInjector fates(channel);
  // Crash-only models never drop (drop_at with loss=0 and gilbert off is
  // identically false), so skipping the draw entirely when the channel is
  // lossless reproduces the in-process engines' fates bit for bit.
  const bool lossy = channel.loss > 0.0 || channel.use_gilbert;

  std::vector<std::uint8_t> rdbuf(1 << 16);
  std::vector<std::uint8_t> body;
  std::vector<std::uint32_t> order, recv_slot, touched;
  serve::Frame frame;

  for (;;) {
    bool last_chunk = false;
    std::uint64_t round = 0;
    while (!last_chunk) {
      // -- Receive one ROUND chunk (blocking; EOF = clean shutdown) --------
      while (!in.next(frame)) {
        if (in.corrupt()) return detail::kExitCorrupt;
        const ssize_t n = ::read(fd, rdbuf.data(), rdbuf.size());
        if (n < 0) {
          if (errno == EINTR) continue;
          return 0;
        }
        if (n == 0) return 0;
        in.feed(rdbuf.data(), static_cast<std::size_t>(n));
      }
      if (frame.version != proto::kDistProtocolVersion)
        return detail::kExitBadFrame;
      const std::vector<std::uint8_t>& p = frame.payload;
      if (p.size() <
              proto::kDistFrameFixedBytes + proto::kDistFingerprintBytes ||
          p[0] != proto::kDistOpRound) {
        return detail::kExitBadFrame;
      }
      last_chunk = (p[1] & proto::kDistFlagLast) != 0;
      round = proto::dist_get_u64(p.data() + 2);

      // -- Collective fingerprint: verify BEFORE parsing records -----------
      // The chain mixes the body of every frame in both directions; the
      // parent's trailer is ITS chain after sending this chunk. A mismatch
      // means a corrupted frame or a skipped/extra collective — report it
      // (rank, round, expected vs actual) and exit; never parse, never hang.
      const std::size_t body_len = p.size() - proto::kDistFingerprintBytes;
      chain = proto::dist_mix(chain, proto::dist_hash(p.data(), body_len));
      const std::uint64_t expected = proto::dist_get_u64(p.data() + body_len);
      if (expected != chain) {
        body.clear();
        body.push_back(proto::kDistOpDesync);
        body.push_back(proto::kDistFlagLast);
        proto::dist_put_u64(body, round);
        proto::dist_put_u64(body, expected);
        proto::dist_put_u64(body, chain);
        detail::frame_and_send(fd, body);
        return detail::kExitDesync;
      }

      // -- Ingest this chunk's routed messages into the calendar ring ------
      const std::uint32_t count = proto::dist_get_u32(p.data() + 10);
      std::size_t off = proto::kDistFrameFixedBytes;
      for (std::uint32_t i = 0; i < count; ++i) {
        if (off + proto::kDistRoundRecordBytes > body_len)
          return detail::kExitBadFrame;
        const std::uint64_t seq = proto::dist_get_u64(&p[off]);
        std::uint64_t due = proto::dist_get_u64(&p[off + 8]);
        const std::uint32_t from = proto::dist_get_u32(&p[off + 16]);
        const std::uint32_t to = proto::dist_get_u32(&p[off + 20]);
        const std::uint64_t distance_bits = proto::dist_get_u64(&p[off + 24]);
        const std::uint32_t bits = proto::dist_get_u32(&p[off + 32]);
        const std::uint32_t plen = proto::dist_get_u32(&p[off + 36]);
        off += proto::kDistRoundRecordBytes;
        if (off + plen > body_len) return detail::kExitBadFrame;

        if (spec.max_extra_delay > 0) {
          const std::uint64_t key = (static_cast<std::uint64_t>(from) << 32) |
                                    static_cast<std::uint64_t>(to);
          const auto slot = last_due.find_or_insert(key, due);
          if (!slot.inserted) {
            due = std::max(due, *slot.value);
            *slot.value = due;
          }
        }
        const bool lost = lossy && fates.drop_at(seq, from, to, ge_state);
        EMST_ASSERT(due >= round && due - round <= spec.max_extra_delay);
        std::size_t idx = head + static_cast<std::size_t>(due - round);
        if (idx >= buckets.size()) idx -= buckets.size();
        buckets[idx].push_back(
            {from, to, distance_bits, bits, lost,
             std::vector<std::uint8_t>(
                 p.begin() + static_cast<std::ptrdiff_t>(off),
                 p.begin() + static_cast<std::ptrdiff_t>(off + plen))});
        off += plen;
      }
    }

    // -- Drain the due bucket and reply (every round — this IS the barrier)
    std::vector<Item>& bucket = buckets[head];
    head = head + 1 == buckets.size() ? 0 : head + 1;
    detail::order_by_receiver(bucket, order, recv_slot, touched);

    detail::begin_chunk(body, proto::kDistOpDrained, round);
    std::uint32_t chunk_count = 0;
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const Item& item = bucket[order[i]];
      const std::size_t rec =
          proto::kDistDrainedRecordBytes + item.payload.size();
      if (body.size() + rec > proto::kDistMaxChunkBodyBytes) {
        detail::patch_chunk(body, 0, chunk_count);
        detail::seal_and_send(fd, body, chain);
        detail::begin_chunk(body, proto::kDistOpDrained, round);
        chunk_count = 0;
      }
      proto::dist_put_u32(body, item.from);
      proto::dist_put_u32(body, item.to);
      proto::dist_put_u64(body, item.distance_bits);
      proto::dist_put_u32(body, item.bits);
      body.push_back(item.lost ? 1 : 0);
      proto::dist_put_u32(body,
                          static_cast<std::uint32_t>(item.payload.size()));
      body.insert(body.end(), item.payload.begin(), item.payload.end());
      ++chunk_count;
    }
    bucket.clear();
    detail::patch_chunk(body, proto::kDistFlagLast, chunk_count);
    detail::seal_and_send(fd, body, chain);
  }
}

}  // namespace emst::apps
