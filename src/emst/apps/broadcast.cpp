#include "emst/apps/broadcast.hpp"

#include <algorithm>

#include "emst/support/assert.hpp"

namespace emst::apps {

BroadcastPlan plan_broadcast(const sim::Topology& topo,
                             const std::vector<graph::Edge>& tree,
                             graph::NodeId source,
                             const geometry::PathLoss& model) {
  EMST_ASSERT(source < topo.node_count());
  BroadcastPlan plan;
  plan.source = source;
  const auto parent = sim::forest_parents(topo.node_count(), tree, {source});
  const auto schedule = sim::make_schedule(parent);
  plan.rounds = schedule.max_depth;
  plan.tx_radius.assign(topo.node_count(), 0.0);
  for (graph::NodeId u = 0; u < topo.node_count(); ++u) {
    if (parent[u] == graph::kNoNode) continue;
    const double d = topo.distance(u, parent[u]);
    plan.unicast_energy += model.cost(d);
    plan.tx_radius[parent[u]] = std::max(plan.tx_radius[parent[u]], d);
  }
  for (const double radius : plan.tx_radius) {
    if (radius > 0.0) {
      ++plan.transmissions;
      plan.wireless_energy += model.cost(radius);
    }
  }
  return plan;
}

std::size_t execute_broadcast(const sim::Topology& topo,
                              const BroadcastPlan& plan,
                              sim::EnergyMeter& meter) {
  EMST_ASSERT(plan.tx_radius.size() == topo.node_count());
  std::vector<bool> reached(topo.node_count(), false);
  reached[plan.source] = true;
  // Flood level by level: a node transmits once after it has been reached.
  // The choreography processes transmitters in BFS order, which is exactly
  // the pipelined schedule of depth `plan.rounds`.
  std::vector<graph::NodeId> frontier = {plan.source};
  std::size_t covered = 1;
  while (!frontier.empty()) {
    std::vector<graph::NodeId> next;
    for (const graph::NodeId u : frontier) {
      const double radius = plan.tx_radius[u];
      if (radius <= 0.0) continue;
      const auto heard = topo.nodes_within(u, radius * (1.0 + 1e-12));
      meter.charge_broadcast(u, radius, heard.size());
      for (const graph::NodeId v : heard) {
        if (!reached[v]) {
          reached[v] = true;
          ++covered;
          next.push_back(v);
        }
      }
    }
    meter.tick_round();
    frontier = std::move(next);
  }
  return covered;
}

}  // namespace emst::apps
