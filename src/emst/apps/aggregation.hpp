// Data aggregation over a spanning tree — the paper's §II motivating
// application ("MST is the optimal data aggregation tree" [15]), packaged as
// a library: typed aggregate functions folded up a metered convergecast.
//
// One aggregation round sends exactly one message per tree edge (children
// fold into parents en route — the in-network aggregation that makes trees
// beat direct transmission), so the steady-state energy per round is
// Σ dᵅ over the backbone: the quantity the MST minimizes.
#pragma once

#include <algorithm>
#include <vector>

#include "emst/sim/collectives.hpp"

namespace emst::apps {

/// The classic sensor aggregates (min/max/sum/count → mean).
struct SensorAggregate {
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  double count = 0.0;

  [[nodiscard]] static SensorAggregate of(double reading) {
    return {reading, reading, reading, 1.0};
  }

  [[nodiscard]] SensorAggregate merged(const SensorAggregate& other) const {
    return {std::min(min, other.min), std::max(max, other.max),
            sum + other.sum, count + other.count};
  }

  [[nodiscard]] double mean() const { return count > 0.0 ? sum / count : 0.0; }
};

/// A reusable aggregation backbone over a fixed tree rooted at `sink`.
class AggregationTree {
 public:
  AggregationTree(const sim::Topology& topo, const std::vector<graph::Edge>& tree,
                  graph::NodeId sink);

  /// Run one aggregation round over `readings` (one per node); charges one
  /// unicast per tree edge to `meter` and returns the sink's aggregate.
  [[nodiscard]] SensorAggregate collect(const std::vector<double>& readings,
                                        sim::EnergyMeter& meter) const;

  /// Disseminate a value from the sink to every node (e.g. a new duty
  /// cycle); one unicast per tree edge.
  [[nodiscard]] std::vector<double> disseminate(double value,
                                                sim::EnergyMeter& meter) const;

  /// Σ dᵅ over the backbone — the per-round energy (α from the meter model).
  [[nodiscard]] double round_energy(const geometry::PathLoss& model) const;

  [[nodiscard]] std::size_t depth() const noexcept { return schedule_.max_depth; }
  [[nodiscard]] graph::NodeId sink() const noexcept { return sink_; }

 private:
  const sim::Topology& topo_;
  graph::NodeId sink_;
  std::vector<graph::NodeId> parent_;
  sim::TreeSchedule schedule_;
};

}  // namespace emst::apps
