#include "emst/apps/leader_election.hpp"

#include <algorithm>

#include "emst/support/assert.hpp"

namespace emst::apps {

ElectionResult elect_leader(const sim::Topology& topo,
                            const std::vector<graph::Edge>& tree,
                            graph::NodeId root, sim::EnergyMeter& meter) {
  const std::size_t n = topo.node_count();
  EMST_ASSERT(root < n);
  const auto parent = sim::forest_parents(n, tree, {root});
  const auto schedule = sim::make_schedule(parent);

  // Convergecast: each subtree reports its maximum id.
  std::vector<graph::NodeId> ids(n);
  for (graph::NodeId u = 0; u < n; ++u) ids[u] = u;
  const auto maxima = sim::tree_convergecast<graph::NodeId>(
      topo, parent, schedule, std::move(ids),
      [](graph::NodeId a, graph::NodeId b) { return std::max(a, b); }, meter);

  ElectionResult result;
  result.leader = maxima[root];

  // Broadcast the winner back down.
  std::vector<graph::NodeId> known(n, graph::kNoNode);
  known[root] = result.leader;
  result.known_leader = sim::tree_broadcast<graph::NodeId>(
      topo, parent, schedule, std::move(known),
      [](graph::NodeId from_parent, graph::NodeId) { return from_parent; },
      meter);
  return result;
}

}  // namespace emst::apps
