// Shared plumbing for the rank worker loops (routing mode: rank_runner.cpp;
// actor mode: actor_rank.hpp). A rank, in either placement, speaks the same
// dist frame protocol: serve-framed chunks with a collective-fingerprint
// trailer, a calendar ring keyed by due round, and by-receiver ordering of
// the due bucket. These helpers are the placement-independent half.
#pragma once

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <vector>

#include "emst/proto/dist_wire.hpp"
#include "emst/serve/framing.hpp"

namespace emst::apps::detail {

static_assert(proto::kDistMaxFramePayloadBytes == serve::kMaxFramePayloadBytes,
              "dist chunk budget must match the serve frame cap");

// Child exit codes beyond 0 (clean EOF). The parent reports these verbatim
// in its teardown diagnostic, so keep them distinct per failure mode.
inline constexpr int kExitDesync = 3;    // fingerprint mismatch (after reporting)
inline constexpr int kExitCorrupt = 4;   // FrameBuffer latched corrupt
inline constexpr int kExitBadFrame = 5;  // wrong version / opcode / truncated body

/// One ingested message waiting in the rank's calendar ring. Distance rides
/// as its raw bit image — the rank orders by receiver only and never does
/// float arithmetic, so nothing here can perturb the parent's accounting.
struct Item {
  std::uint32_t from;
  std::uint32_t to;
  std::uint64_t distance_bits;
  std::uint32_t bits;
  bool lost;
  std::vector<std::uint8_t> payload;
};

inline bool write_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += static_cast<std::size_t>(n);
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

inline void frame_and_send(int fd, const std::vector<std::uint8_t>& body) {
  std::vector<std::uint8_t> out;
  out.reserve(serve::kFrameHeaderBytes + body.size());
  out.push_back(static_cast<std::uint8_t>(proto::kDistProtocolVersion >> 8));
  out.push_back(static_cast<std::uint8_t>(proto::kDistProtocolVersion));
  const auto len = static_cast<std::uint32_t>(body.size());
  out.push_back(static_cast<std::uint8_t>(len >> 24));
  out.push_back(static_cast<std::uint8_t>(len >> 16));
  out.push_back(static_cast<std::uint8_t>(len >> 8));
  out.push_back(static_cast<std::uint8_t>(len));
  out.insert(out.end(), body.begin(), body.end());
  (void)write_all(fd, out.data(), out.size());
}

/// Same three-strategy by-receiver ordering as the in-process engines
/// (Network / ShardedNetwork drain_by_receiver): append order within the
/// bucket is global sequence order, so a stable by-receiver order yields
/// the (receiver, sequence) contract for this rank's slice.
inline constexpr std::size_t kSmallBucket = 48;

inline void order_by_receiver(const std::vector<Item>& bucket,
                              std::vector<std::uint32_t>& order,
                              std::vector<std::uint32_t>& recv_slot,
                              std::vector<std::uint32_t>& touched) {
  const std::size_t b = bucket.size();
  order.resize(b);
  bool in_order = true;
  for (std::size_t i = 1; i < b; ++i) {
    if (bucket[i - 1].to > bucket[i].to) {
      in_order = false;
      break;
    }
  }
  if (in_order) {
    for (std::size_t i = 0; i < b; ++i)
      order[i] = static_cast<std::uint32_t>(i);
    return;
  }
  if (b <= kSmallBucket) {
    for (std::size_t i = 0; i < b; ++i)
      order[i] = static_cast<std::uint32_t>(i);
    std::stable_sort(order.begin(), order.end(),
                     [&bucket](std::uint32_t a, std::uint32_t c) {
                       return bucket[a].to < bucket[c].to;
                     });
    return;
  }
  // Counting scatter over the receivers this bucket touches (the rank does
  // not know node_count, so the slot table is sized by the max receiver).
  std::uint32_t max_to = 0;
  for (const Item& item : bucket) max_to = std::max(max_to, item.to);
  if (recv_slot.size() <= max_to) recv_slot.resize(max_to + 1, 0);
  touched.clear();
  for (const Item& item : bucket) {
    if (recv_slot[item.to]++ == 0) touched.push_back(item.to);
  }
  std::sort(touched.begin(), touched.end());
  std::uint32_t offset = 0;
  for (const std::uint32_t r : touched) {
    const std::uint32_t count = recv_slot[r];
    recv_slot[r] = offset;
    offset += count;
  }
  for (std::size_t i = 0; i < b; ++i)
    order[recv_slot[bucket[i].to]++] = static_cast<std::uint32_t>(i);
  for (const std::uint32_t r : touched) recv_slot[r] = 0;
}

/// Start a chunk body for any round-scoped opcode; flags and count (bytes
/// 1 and 10..13) are patched at finish.
inline void begin_chunk(std::vector<std::uint8_t>& body, std::uint8_t opcode,
                        std::uint64_t round) {
  body.clear();
  body.push_back(opcode);
  body.push_back(0);  // flags, patched at finish
  proto::dist_put_u64(body, round);
  proto::dist_put_u32(body, 0);  // count, patched at finish
}

inline void patch_chunk(std::vector<std::uint8_t>& body, std::uint8_t flags,
                        std::uint32_t count) {
  body[1] = flags;
  body[10] = static_cast<std::uint8_t>(count >> 24);
  body[11] = static_cast<std::uint8_t>(count >> 16);
  body[12] = static_cast<std::uint8_t>(count >> 8);
  body[13] = static_cast<std::uint8_t>(count);
}

/// Mix the finished chunk into the collective chain, append the trailer and
/// put it on the wire — the send half every rank reply shares.
inline void seal_and_send(int fd, std::vector<std::uint8_t>& body,
                          std::uint64_t& chain) {
  chain = proto::dist_mix(chain, proto::dist_hash(body.data(), body.size()));
  proto::dist_put_u64(body, chain);
  frame_and_send(fd, body);
}

}  // namespace emst::apps::detail
