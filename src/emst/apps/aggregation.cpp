#include "emst/apps/aggregation.hpp"

#include "emst/support/assert.hpp"

namespace emst::apps {

AggregationTree::AggregationTree(const sim::Topology& topo,
                                 const std::vector<graph::Edge>& tree,
                                 graph::NodeId sink)
    : topo_(topo),
      sink_(sink),
      parent_(sim::forest_parents(topo.node_count(), tree, {sink})),
      schedule_(sim::make_schedule(parent_)) {
  EMST_ASSERT(sink < topo.node_count());
}

SensorAggregate AggregationTree::collect(const std::vector<double>& readings,
                                         sim::EnergyMeter& meter) const {
  EMST_ASSERT(readings.size() == topo_.node_count());
  std::vector<SensorAggregate> values(readings.size());
  for (std::size_t u = 0; u < readings.size(); ++u)
    values[u] = SensorAggregate::of(readings[u]);
  const auto folded = sim::tree_convergecast<SensorAggregate>(
      topo_, parent_, schedule_, std::move(values),
      [](const SensorAggregate& a, const SensorAggregate& b) {
        return a.merged(b);
      },
      meter);
  return folded[sink_];
}

std::vector<double> AggregationTree::disseminate(double value,
                                                 sim::EnergyMeter& meter) const {
  std::vector<double> init(topo_.node_count(), 0.0);
  init[sink_] = value;
  return sim::tree_broadcast<double>(
      topo_, parent_, schedule_, std::move(init),
      [](double from_parent, graph::NodeId) { return from_parent; }, meter);
}

double AggregationTree::round_energy(const geometry::PathLoss& model) const {
  double total = 0.0;
  for (graph::NodeId u = 0; u < parent_.size(); ++u) {
    if (parent_[u] == graph::kNoNode) continue;
    total += model.cost(topo_.distance(u, parent_[u]));
  }
  return total;
}

}  // namespace emst::apps
