// Uniform view over every algorithm's result (docs/API_TOUR.md).
//
// `SyncGhsResult`, `EoptResult`, `ClassicGhsRun`'s `MstRunResult` and
// `CoNntResult` keep their algorithm-specific fields, but each exposes
// `report()` returning this common shape, so the CLI, benches and harness
// scripts handle all algorithms through one code path. Pointer members
// reference the underlying result — the report is a non-owning view; keep
// the result alive while using it.
#pragma once

#include <cstddef>
#include <vector>

#include "emst/graph/edge.hpp"
#include "emst/sim/fault.hpp"
#include "emst/sim/meter.hpp"
#include "emst/sim/reliable.hpp"
#include "emst/sim/telemetry.hpp"

namespace emst {

struct RunReport {
  const std::vector<graph::Edge>* tree = nullptr;  ///< never null in practice
  sim::Accounting totals;
  std::size_t phases = 0;
  std::size_t fragments = 0;  ///< 0 when the algorithm doesn't report it
  sim::FaultStats faults;     ///< all-zero for fault-free algorithms
  sim::ArqStats arq;          ///< all-zero without ARQ
  /// Per-node transmit energy; null when tracking was off.
  const std::vector<double>* per_node_energy = nullptr;
  /// Per-phase × per-kind matrix; null unless `record_breakdown` was set.
  const sim::EnergyBreakdown* breakdown = nullptr;
  /// The telemetry hub the run was configured with (null if none).
  sim::Telemetry* telemetry = nullptr;
  bool hit_phase_cap = false;

  [[nodiscard]] bool has_per_node() const noexcept {
    return per_node_energy != nullptr && !per_node_energy->empty();
  }
};

}  // namespace emst
