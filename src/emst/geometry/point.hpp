// 2-D points in the unit square and the distance metrics used by the paper.
//
// The paper's energy model charges d(u,v)^α per message with α = 2 (path-loss
// exponent). Euclidean distance is the default everywhere; the Chebyshev
// (L∞) metric — which the paper's percolation *analysis* switches to "to
// simplify our analysis" (§V-B) — is also provided so the percolation module
// can be exercised under both.
#pragma once

#include <cmath>

namespace emst::geometry {

struct Point2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const Point2&, const Point2&) noexcept = default;
};

[[nodiscard]] constexpr Point2 operator+(Point2 a, Point2 b) noexcept {
  return {a.x + b.x, a.y + b.y};
}
[[nodiscard]] constexpr Point2 operator-(Point2 a, Point2 b) noexcept {
  return {a.x - b.x, a.y - b.y};
}
[[nodiscard]] constexpr Point2 operator*(Point2 a, double s) noexcept {
  return {a.x * s, a.y * s};
}

/// Squared Euclidean distance — cheap; also *is* the α=2 message energy.
[[nodiscard]] constexpr double distance_sq(Point2 a, Point2 b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

[[nodiscard]] inline double distance(Point2 a, Point2 b) noexcept {
  return std::sqrt(distance_sq(a, b));
}

/// Chebyshev / L∞ distance: max(|Δx|, |Δy|) (paper §V-B simplification).
[[nodiscard]] inline double chebyshev(Point2 a, Point2 b) noexcept {
  return std::max(std::fabs(a.x - b.x), std::fabs(a.y - b.y));
}

enum class Metric { kEuclidean, kChebyshev };

[[nodiscard]] inline double dist(Metric m, Point2 a, Point2 b) noexcept {
  return m == Metric::kEuclidean ? distance(a, b) : chebyshev(a, b);
}

}  // namespace emst::geometry
