// Random point processes on the unit square (paper §II / §V-B).
//
// The node deployment model is n i.i.d. uniform points; the percolation proof
// replaces it with a Poisson process "to exploit the strong independence
// property" — both are provided so the percolation experiments can check that
// the two agree at these densities.
#pragma once

#include <cstddef>
#include <vector>

#include "emst/geometry/point.hpp"
#include "emst/geometry/rect.hpp"
#include "emst/support/rng.hpp"

namespace emst::geometry {

/// n i.i.d. uniform points in `region`.
[[nodiscard]] std::vector<Point2> uniform_points(std::size_t n, support::Rng& rng,
                                                 Rect region = unit_square());

/// Homogeneous Poisson point process with intensity `rate` *per unit area*
/// on `region`: N ~ Poisson(rate·area), then N uniform points.
[[nodiscard]] std::vector<Point2> poisson_points(double rate, support::Rng& rng,
                                                 Rect region = unit_square());

}  // namespace emst::geometry
