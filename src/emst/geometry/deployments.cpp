#include "emst/geometry/deployments.hpp"

#include <cmath>

#include "emst/geometry/sampling.hpp"
#include "emst/support/assert.hpp"

namespace emst::geometry {
namespace {

/// Box–Muller standard normal from two uniforms.
double gaussian(support::Rng& rng) {
  const double u1 = std::max(1e-300, rng.uniform());
  const double u2 = rng.uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

double clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

std::vector<Point2> clustered(std::size_t n, support::Rng& rng,
                              const DeploymentParams& params) {
  EMST_ASSERT(params.cluster_parents >= 1);
  std::vector<Point2> parents =
      uniform_points(params.cluster_parents, rng);
  std::vector<Point2> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Point2 center = parents[rng.uniform_int(parents.size())];
    points.push_back({clamp01(center.x + params.cluster_spread * gaussian(rng)),
                      clamp01(center.y + params.cluster_spread * gaussian(rng))});
  }
  return points;
}

std::vector<Point2> grid_jitter(std::size_t n, support::Rng& rng,
                                const DeploymentParams& params) {
  const auto side = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  const double pitch = 1.0 / static_cast<double>(side);
  std::vector<Point2> points;
  points.reserve(n);
  for (std::size_t i = 0; points.size() < n && i < side * side; ++i) {
    const double cx = (static_cast<double>(i % side) + 0.5) * pitch;
    const double cy = (static_cast<double>(i / side) + 0.5) * pitch;
    points.push_back(
        {clamp01(cx + params.jitter * pitch * rng.uniform(-1.0, 1.0)),
         clamp01(cy + params.jitter * pitch * rng.uniform(-1.0, 1.0))});
  }
  return points;
}

std::vector<Point2> hole(std::size_t n, support::Rng& rng,
                         const DeploymentParams& params) {
  std::vector<Point2> points;
  points.reserve(n);
  const double r_sq = params.hole_radius * params.hole_radius;
  while (points.size() < n) {
    const Point2 p{rng.uniform(), rng.uniform()};
    if (distance_sq(p, params.hole_center) >= r_sq) points.push_back(p);
  }
  return points;
}

std::vector<Point2> gradient(std::size_t n, support::Rng& rng,
                             const DeploymentParams& params) {
  // Density f(x) ∝ 1 + s·x on [0,1]: sample by inversion of
  // F(x) = (x + s·x²/2) / (1 + s/2).
  const double s = params.gradient_slope;
  EMST_ASSERT(s >= 0.0);
  std::vector<Point2> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.uniform() * (1.0 + s / 2.0);
    // Solve x + s·x²/2 = u  ⇒  x = (−1 + √(1 + 2su)) / s.
    const double x = s == 0.0 ? u : (-1.0 + std::sqrt(1.0 + 2.0 * s * u)) / s;
    points.push_back({clamp01(x), rng.uniform()});
  }
  return points;
}

}  // namespace

const std::vector<Deployment>& all_deployments() {
  static const std::vector<Deployment> kAll = {
      Deployment::kUniform, Deployment::kClustered, Deployment::kGridJitter,
      Deployment::kHole, Deployment::kGradient};
  return kAll;
}

std::string deployment_name(Deployment model) {
  switch (model) {
    case Deployment::kUniform: return "uniform";
    case Deployment::kClustered: return "clustered";
    case Deployment::kGridJitter: return "grid+jitter";
    case Deployment::kHole: return "hole";
    case Deployment::kGradient: return "gradient";
  }
  return "?";
}

std::vector<Point2> sample_deployment(Deployment model, std::size_t n,
                                      support::Rng& rng,
                                      const DeploymentParams& params) {
  switch (model) {
    case Deployment::kUniform: return uniform_points(n, rng);
    case Deployment::kClustered: return clustered(n, rng, params);
    case Deployment::kGridJitter: return grid_jitter(n, rng, params);
    case Deployment::kHole: return hole(n, rng, params);
    case Deployment::kGradient: return gradient(n, rng, params);
  }
  return {};
}

}  // namespace emst::geometry
