#include "emst/geometry/sampling.hpp"

#include "emst/support/assert.hpp"

namespace emst::geometry {

std::vector<Point2> uniform_points(std::size_t n, support::Rng& rng, Rect region) {
  EMST_ASSERT(region.width() > 0.0 && region.height() > 0.0);
  std::vector<Point2> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({rng.uniform(region.lo.x, region.hi.x),
                      rng.uniform(region.lo.y, region.hi.y)});
  }
  return points;
}

std::vector<Point2> poisson_points(double rate, support::Rng& rng, Rect region) {
  EMST_ASSERT(rate >= 0.0);
  const auto count = static_cast<std::size_t>(rng.poisson(rate * region.area()));
  return uniform_points(count, rng, region);
}

}  // namespace emst::geometry
