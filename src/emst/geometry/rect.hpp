// Axis-aligned rectangles (used for the deployment region and spatial index).
#pragma once

#include "emst/geometry/point.hpp"

namespace emst::geometry {

struct Rect {
  Point2 lo{0.0, 0.0};
  Point2 hi{1.0, 1.0};

  [[nodiscard]] constexpr double width() const noexcept { return hi.x - lo.x; }
  [[nodiscard]] constexpr double height() const noexcept { return hi.y - lo.y; }
  [[nodiscard]] constexpr double area() const noexcept { return width() * height(); }

  [[nodiscard]] constexpr bool contains(Point2 p) const noexcept {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }
};

/// The paper's deployment region: the unit square [0,1]².
[[nodiscard]] constexpr Rect unit_square() noexcept { return Rect{}; }

}  // namespace emst::geometry
