// Radio path-loss energy model (paper §II).
//
// Transmitting a message over distance d costs a·d^α where α is the path-loss
// exponent; the paper fixes a = 1, α = 2 for energy complexity but analyzes
// tree *cost* for general α.
#pragma once

#include <cmath>

#include "emst/support/assert.hpp"

namespace emst::geometry {

struct PathLoss {
  double scale = 1.0;  ///< the constant `a`
  double alpha = 2.0;  ///< path-loss exponent α

  /// Energy to transmit one message to range `d`.
  [[nodiscard]] double cost(double d) const noexcept {
    EMST_ASSERT(d >= 0.0);
    if (alpha == 2.0) return scale * d * d;       // hot path: avoid pow
    if (alpha == 1.0) return scale * d;
    return scale * std::pow(d, alpha);
  }
};

}  // namespace emst::geometry
