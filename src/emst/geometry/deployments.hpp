// Deployment models beyond the paper's uniform assumption.
//
// The paper's analysis assumes n i.i.d. uniform points (§II). Real sensor
// fields are rarely uniform, so the robustness bench re-runs the headline
// experiments on structurally different deployments:
//  - kUniform    — the paper's model (baseline);
//  - kClustered  — a Thomas/Matérn-style cluster process: parent centers
//    with Gaussian-ish offspring, mimicking sensors dropped in batches;
//  - kGridJitter — a perturbed grid, mimicking planned installations;
//  - kHole       — uniform with a circular coverage hole (sensor loss /
//    obstacle), stressing the giant-component assumption;
//  - kGradient   — density increasing along x (propagation from a road /
//    coastline), stressing the diagonal-ranking geometry of Co-NNT.
// All models emit exactly n points in the unit square.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "emst/geometry/point.hpp"
#include "emst/support/rng.hpp"

namespace emst::geometry {

enum class Deployment {
  kUniform,
  kClustered,
  kGridJitter,
  kHole,
  kGradient,
};

/// All models, for sweep loops.
[[nodiscard]] const std::vector<Deployment>& all_deployments();

[[nodiscard]] std::string deployment_name(Deployment model);

struct DeploymentParams {
  /// kClustered: number of cluster parents and offspring spread (std dev).
  std::size_t cluster_parents = 12;
  double cluster_spread = 0.08;
  /// kGridJitter: jitter as a fraction of the grid pitch.
  double jitter = 0.35;
  /// kHole: hole center and radius.
  Point2 hole_center{0.5, 0.5};
  double hole_radius = 0.25;
  /// kGradient: density ∝ (1 + gradient_slope·x).
  double gradient_slope = 3.0;
};

/// Sample exactly n points from `model` in the unit square.
[[nodiscard]] std::vector<Point2> sample_deployment(
    Deployment model, std::size_t n, support::Rng& rng,
    const DeploymentParams& params = {});

}  // namespace emst::geometry
