#include "emst/run_flags.hpp"

#include <cstdlib>
#include <iostream>
#include <utility>

namespace emst {

namespace {

/// One table defines spelling + help; merge and parse both walk it, so a
/// flag cannot exist in one frontend and not the other.
const std::map<std::string, std::string>& shared_spec() {
  static const std::map<std::string, std::string> spec = {
      {"loss", "Bernoulli message-loss probability (default 0; "
               "sync|sync-probe|eopt only, see docs/ROBUSTNESS.md)"},
      {"fault-seed", "fault-layer RNG seed (default 0xFA011A)"},
      {"arq", "1 = stop-and-wait ARQ on every unicast (default 0)"},
      {"chaos", "adversarial crash strategy (kill_leader|sever_core_edge|"
                "partition_half|crash_wave); crash-only fail-stop "
                "(docs/ROBUSTNESS.md)"},
      {"oracle", "1 = runtime invariant oracle; exits 1 on any violation "
                 "(docs/ROBUSTNESS.md)"},
      {"per-node", "1 = per-node energy ledger (adds hottest-node column)"},
      {"breakdown", "1 = per-phase x per-kind energy matrix "
                    "(docs/TELEMETRY.md)"},
      {"trace", "write a JSONL telemetry trace to this path (validate with "
                "scripts/check_trace.py)"},
      {"threads", "worker threads (default 1); results are bitwise "
                  "identical for every value (docs/PARALLEL.md)"},
      {"ranks", "worker processes (default 0 = in-process); ghs|connt run "
                "over the distributed engine, bitwise identical for every "
                "value (docs/DISTRIBUTED.md)"},
  };
  return spec;
}

}  // namespace

void merge_run_flag_spec(std::map<std::string, std::string>& spec) {
  for (const auto& [flag, help] : shared_spec()) {
    const auto [it, inserted] = spec.emplace(flag, help);
    if (!inserted) {
      std::cerr << "internal error: frontend flag --" << flag
                << " collides with a shared run flag\n";
      std::exit(2);
    }
  }
}

RunFlags parse_run_flags(const support::Cli& cli) {
  RunFlags flags;
  flags.faults.loss = cli.get_double("loss", 0.0);
  if (cli.has("fault-seed")) {
    flags.faults.seed =
        static_cast<std::uint64_t>(cli.get_int("fault-seed", 0));
  }
  flags.arq.enabled = cli.get_int("arq", 0) != 0;
  if (cli.has("chaos")) {
    flags.chaos_controller = sim::make_controller(cli.get("chaos", ""));
    if (flags.chaos_controller == nullptr) {
      std::cerr << "unknown chaos strategy: " << cli.get("chaos", "")
                << " (try kill_leader|sever_core_edge|partition_half|"
                   "crash_wave)\n";
      std::exit(2);
    }
    flags.faults.controller = flags.chaos_controller.get();
  }
  if (cli.get_int("oracle", 0) != 0) {
    flags.oracle_enabled = true;
    flags.oracle = std::make_unique<sim::InvariantOracle>();
  }
  flags.per_node = cli.get_int("per-node", 0) != 0;
  flags.breakdown = cli.get_int("breakdown", 0) != 0;
  flags.threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  flags.ranks = static_cast<std::size_t>(cli.get_int("ranks", 0));
  flags.trace_path = cli.get("trace", "");
  return flags;
}

void reject_unsupported_faults(const RunFlags& flags, Driver driver) {
  if (flags.lossy() && !driver_supports_loss(driver)) {
    std::cerr << "--loss/--arq apply to the loss-recovering engines only "
                 "(sync|sync-probe|eopt), not " << driver_name(driver)
              << " (crash-only --chaos works everywhere but kpnnt)\n";
    std::exit(2);
  }
}

}  // namespace emst
