#include "emst/graph/tree_utils.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "emst/graph/union_find.hpp"
#include "emst/support/assert.hpp"

namespace emst::graph {
namespace {

/// Build a throwaway adjacency (id only) from an edge list.
std::vector<std::vector<NodeId>> simple_adjacency(std::size_t n,
                                                  const std::vector<Edge>& edges) {
  std::vector<std::vector<NodeId>> adj(n);
  for (const Edge& e : edges) {
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }
  return adj;
}

}  // namespace

bool is_forest(std::size_t n, const std::vector<Edge>& edges) {
  UnionFind dsu(n);
  for (const Edge& e : edges) {
    if (e.u >= n || e.v >= n || e.u == e.v) return false;
    if (!dsu.unite(e.u, e.v)) return false;  // cycle
  }
  return true;
}

bool is_spanning_tree(std::size_t n, const std::vector<Edge>& edges) {
  if (n == 0) return edges.empty();
  return edges.size() == n - 1 && is_forest(n, edges);
}

bool spans_same_components(std::size_t n, const std::vector<Edge>& edges,
                           const std::vector<Edge>& reference) {
  UnionFind a(n);
  for (const Edge& e : edges) a.unite(e.u, e.v);
  UnionFind b(n);
  for (const Edge& e : reference) b.unite(e.u, e.v);
  if (a.components() != b.components()) return false;
  // Same component count + every reference edge internal to an `edges`
  // component ⇒ identical partitions.
  for (const Edge& e : reference) {
    if (!a.connected(e.u, e.v)) return false;
  }
  return true;
}

bool same_edge_set(std::vector<Edge> a, std::vector<Edge> b) {
  if (a.size() != b.size()) return false;
  for (Edge& e : a) e = e.canonical();
  for (Edge& e : b) e = e.canonical();
  auto key_less = [](const Edge& x, const Edge& y) {
    return x.u != y.u ? x.u < y.u : x.v < y.v;
  };
  std::sort(a.begin(), a.end(), key_less);
  std::sort(b.begin(), b.end(), key_less);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].u != b[i].u || a[i].v != b[i].v) return false;
  }
  return true;
}

double tree_cost(std::span<const geometry::Point2> points,
                 const std::vector<Edge>& edges, double alpha) {
  double total = 0.0;
  for (const Edge& e : edges) {
    EMST_ASSERT(e.u < points.size() && e.v < points.size());
    const double d = geometry::distance(points[e.u], points[e.v]);
    if (alpha == 2.0) {
      total += d * d;
    } else if (alpha == 1.0) {
      total += d;
    } else {
      total += std::pow(d, alpha);
    }
  }
  return total;
}

std::vector<NodeId> to_parent_array(std::size_t n, const std::vector<Edge>& edges,
                                    NodeId root) {
  EMST_ASSERT(root < n);
  EMST_ASSERT_MSG(is_forest(n, edges), "parent array requires an acyclic edge set");
  auto adj = simple_adjacency(n, edges);
  std::vector<NodeId> parent(n, kNoNode);
  std::vector<bool> visited(n, false);
  std::queue<NodeId> frontier;
  frontier.push(root);
  visited[root] = true;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : adj[u]) {
      if (visited[v]) continue;
      visited[v] = true;
      parent[v] = u;
      frontier.push(v);
    }
  }
  return parent;
}

std::size_t tree_depth(std::size_t n, const std::vector<Edge>& edges, NodeId root) {
  EMST_ASSERT(root < n);
  auto adj = simple_adjacency(n, edges);
  std::vector<bool> visited(n, false);
  std::queue<std::pair<NodeId, std::size_t>> frontier;
  frontier.emplace(root, 0);
  visited[root] = true;
  std::size_t depth = 0;
  while (!frontier.empty()) {
    const auto [u, d] = frontier.front();
    frontier.pop();
    depth = std::max(depth, d);
    for (NodeId v : adj[u]) {
      if (visited[v]) continue;
      visited[v] = true;
      frontier.emplace(v, d + 1);
    }
  }
  return depth;
}

}  // namespace emst::graph
