#include "emst/graph/union_find.hpp"

#include <numeric>

#include "emst/support/assert.hpp"

namespace emst::graph {

UnionFind::UnionFind(std::size_t n)
    : parent_(n), rank_(n, 0), size_(n, 1), components_(n) {
  std::iota(parent_.begin(), parent_.end(), NodeId{0});
}

NodeId UnionFind::find(NodeId x) {
  EMST_ASSERT(x < parent_.size());
  NodeId root = x;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[x] != root) {
    const NodeId next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

bool UnionFind::unite(NodeId a, NodeId b) {
  NodeId ra = find(a);
  NodeId rb = find(b);
  if (ra == rb) return false;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  --components_;
  return true;
}

std::size_t UnionFind::size_of(NodeId x) { return size_[find(x)]; }

}  // namespace emst::graph
