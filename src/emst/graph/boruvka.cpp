#include <optional>

#include "emst/graph/mst.hpp"
#include "emst/graph/union_find.hpp"
#include "emst/support/assert.hpp"

namespace emst::graph {
namespace {

/// One Borůvka phase: each component picks its minimum outgoing edge under
/// the canonical order, then all picks are contracted. Returns the number of
/// merges performed (0 means the forest is final).
std::size_t boruvka_phase(const AdjacencyList& graph, UnionFind& dsu,
                          std::vector<Edge>* tree) {
  const std::size_t n = graph.node_count();
  // best outgoing edge per component root, discovered this phase
  std::vector<std::optional<Edge>> best(n);
  for (NodeId u = 0; u < n; ++u) {
    const NodeId ru = dsu.find(u);
    for (const Neighbor& nb : graph.neighbors(u)) {
      if (dsu.find(nb.id) == ru) continue;
      const Edge candidate{u, nb.id, nb.w};
      if (!best[ru] || edge_less(candidate, *best[ru])) best[ru] = candidate;
    }
  }
  std::size_t merges = 0;
  for (NodeId r = 0; r < n; ++r) {
    if (!best[r]) continue;
    const Edge e = *best[r];
    if (dsu.unite(e.u, e.v)) {
      if (tree != nullptr) tree->push_back(e.canonical());
      ++merges;
    }
  }
  return merges;
}

}  // namespace

std::vector<Edge> boruvka_msf(const AdjacencyList& graph) {
  UnionFind dsu(graph.node_count());
  std::vector<Edge> tree;
  if (graph.node_count() > 0) tree.reserve(graph.node_count() - 1);
  while (boruvka_phase(graph, dsu, &tree) > 0) {
  }
  sort_edges(tree);
  return tree;
}

std::size_t boruvka_phase_count(const AdjacencyList& graph) {
  UnionFind dsu(graph.node_count());
  std::size_t phases = 0;
  while (boruvka_phase(graph, dsu, nullptr) > 0) ++phases;
  return phases;
}

}  // namespace emst::graph
