// Disjoint-set union with union by rank and path compression.
#pragma once

#include <cstddef>
#include <vector>

#include "emst/graph/edge.hpp"

namespace emst::graph {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  /// Representative of x's set (path compression; amortized α(n)).
  [[nodiscard]] NodeId find(NodeId x);

  /// Merge the sets of a and b; returns false if already joined.
  bool unite(NodeId a, NodeId b);

  [[nodiscard]] bool connected(NodeId a, NodeId b) { return find(a) == find(b); }

  /// Number of disjoint sets remaining.
  [[nodiscard]] std::size_t components() const noexcept { return components_; }

  /// Size of the set containing x.
  [[nodiscard]] std::size_t size_of(NodeId x);

  [[nodiscard]] std::size_t universe() const noexcept { return parent_.size(); }

 private:
  std::vector<NodeId> parent_;
  std::vector<std::uint32_t> rank_;
  std::vector<std::uint32_t> size_;
  std::size_t components_;
};

}  // namespace emst::graph
