// Weighted undirected edges with a canonical total order.
//
// Node positions are i.i.d. continuous, so edge weights are distinct with
// probability 1 — but we still break ties by endpoint ids everywhere
// ((weight, min(u,v), max(u,v)) lexicographic). This makes the MST *unique by
// construction*, which is what lets every distributed algorithm's output be
// compared edge-for-edge against Kruskal's.
#pragma once

#include <algorithm>
#include <compare>
#include <cstdint>
#include <vector>

namespace emst::graph {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

struct Edge {
  NodeId u = 0;
  NodeId v = 0;
  double w = 0.0;

  /// Canonical form: u < v.
  [[nodiscard]] constexpr Edge canonical() const noexcept {
    return u <= v ? *this : Edge{v, u, w};
  }

  friend constexpr bool operator==(const Edge& a, const Edge& b) noexcept {
    const Edge ca = a.canonical();
    const Edge cb = b.canonical();
    return ca.u == cb.u && ca.v == cb.v;
  }
};

/// Total order on edges: weight, then canonical endpoints. This is the single
/// tie-break rule used by every MST implementation in the repository.
[[nodiscard]] constexpr bool edge_less(const Edge& a, const Edge& b) noexcept {
  if (a.w != b.w) return a.w < b.w;
  const Edge ca = a.canonical();
  const Edge cb = b.canonical();
  if (ca.u != cb.u) return ca.u < cb.u;
  return ca.v < cb.v;
}

/// Sort edges into the canonical order (in place).
inline void sort_edges(std::vector<Edge>& edges) {
  std::sort(edges.begin(), edges.end(), edge_less);
}

/// Sum of w over edges.
[[nodiscard]] inline double total_weight(const std::vector<Edge>& edges) noexcept {
  double total = 0.0;
  for (const Edge& e : edges) total += e.w;
  return total;
}

}  // namespace emst::graph
