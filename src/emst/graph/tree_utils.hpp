// Spanning-tree validation and the tree-cost statistics the paper reports.
//
// Section VII compares trees by Σ|e| (Euclidean MST objective, α = 1) and
// Σ|e|² (energy objective, α = 2); `tree_cost` computes Σ dᵅ(u,v) from node
// positions for any α.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "emst/geometry/point.hpp"
#include "emst/graph/edge.hpp"

namespace emst::graph {

/// True iff `edges` is a spanning tree on n nodes: exactly n-1 edges,
/// acyclic, and connecting all nodes.
[[nodiscard]] bool is_spanning_tree(std::size_t n, const std::vector<Edge>& edges);

/// True iff `edges` is a forest (acyclic) on n nodes.
[[nodiscard]] bool is_forest(std::size_t n, const std::vector<Edge>& edges);

/// True iff `edges` spans exactly the same components as `reference` does
/// (i.e. it is a spanning forest of the same connectivity structure).
[[nodiscard]] bool spans_same_components(std::size_t n, const std::vector<Edge>& edges,
                                         const std::vector<Edge>& reference);

/// True iff a and b contain the same undirected edges (order-insensitive).
[[nodiscard]] bool same_edge_set(std::vector<Edge> a, std::vector<Edge> b);

/// Σ dᵅ(u,v) over tree edges, recomputed from positions.
[[nodiscard]] double tree_cost(std::span<const geometry::Point2> points,
                               const std::vector<Edge>& edges, double alpha);

/// Parent-pointer representation rooted at `root` (kNoNode for the root;
/// nodes unreachable from root also get kNoNode). Requires a forest.
[[nodiscard]] std::vector<NodeId> to_parent_array(std::size_t n,
                                                  const std::vector<Edge>& edges,
                                                  NodeId root);

/// Depth of the tree from `root` (root has depth 0); -1 entries for
/// unreachable nodes are skipped. Returns the maximum depth reached.
[[nodiscard]] std::size_t tree_depth(std::size_t n, const std::vector<Edge>& edges,
                                     NodeId root);

}  // namespace emst::graph
