#include "emst/graph/gabriel.hpp"

#include "emst/spatial/cell_grid.hpp"
#include "emst/support/assert.hpp"

namespace emst::graph {
namespace {

/// Strict interior test: w kills (u,v) iff d²(w,u)+d²(w,v) < d²(u,v).
/// (Boundary points — exactly on the circle — do not kill the edge; with
/// continuous coordinates the case has measure zero anyway.)
bool witness_kills(geometry::Point2 w, geometry::Point2 pu, geometry::Point2 pv,
                   double d_uv_sq) {
  return geometry::distance_sq(w, pu) + geometry::distance_sq(w, pv) < d_uv_sq;
}

/// RNG lune test: w kills (u,v) iff max(d(w,u), d(w,v)) < d(u,v).
bool lune_witness_kills(geometry::Point2 w, geometry::Point2 pu,
                        geometry::Point2 pv, double d_uv_sq) {
  return geometry::distance_sq(w, pu) < d_uv_sq &&
         geometry::distance_sq(w, pv) < d_uv_sq;
}

}  // namespace

bool is_gabriel_edge(std::span<const geometry::Point2> points, NodeId u,
                     NodeId v) {
  EMST_ASSERT(u < points.size() && v < points.size() && u != v);
  const double d_uv_sq = geometry::distance_sq(points[u], points[v]);
  for (NodeId w = 0; w < points.size(); ++w) {
    if (w == u || w == v) continue;
    if (witness_kills(points[w], points[u], points[v], d_uv_sq)) return false;
  }
  return true;
}

std::vector<Edge> gabriel_filter(std::span<const geometry::Point2> points,
                                 const std::vector<Edge>& edges) {
  const spatial::CellGrid grid = spatial::CellGrid::with_auto_cell(points);
  std::vector<Edge> kept;
  kept.reserve(points.size() * 2);
  for (const Edge& e : edges) {
    const geometry::Point2 pu = points[e.u];
    const geometry::Point2 pv = points[e.v];
    const geometry::Point2 mid = (pu + pv) * 0.5;
    const double d_uv_sq = geometry::distance_sq(pu, pv);
    const double disk_radius = 0.5 * std::sqrt(d_uv_sq);
    bool gabriel = true;
    grid.for_each_within(mid, disk_radius, [&](spatial::PointIndex w) {
      if (!gabriel || w == e.u || w == e.v) return;
      if (witness_kills(points[w], pu, pv, d_uv_sq)) gabriel = false;
    });
    if (gabriel) kept.push_back(e);
  }
  return kept;
}

bool is_rng_edge(std::span<const geometry::Point2> points, NodeId u, NodeId v) {
  EMST_ASSERT(u < points.size() && v < points.size() && u != v);
  const double d_uv_sq = geometry::distance_sq(points[u], points[v]);
  for (NodeId w = 0; w < points.size(); ++w) {
    if (w == u || w == v) continue;
    if (lune_witness_kills(points[w], points[u], points[v], d_uv_sq))
      return false;
  }
  return true;
}

std::vector<Edge> rng_filter(std::span<const geometry::Point2> points,
                             const std::vector<Edge>& edges) {
  const spatial::CellGrid grid = spatial::CellGrid::with_auto_cell(points);
  std::vector<Edge> kept;
  kept.reserve(points.size() * 2);
  for (const Edge& e : edges) {
    const geometry::Point2 pu = points[e.u];
    const geometry::Point2 pv = points[e.v];
    const geometry::Point2 mid = (pu + pv) * 0.5;
    const double d_uv_sq = geometry::distance_sq(pu, pv);
    // The lune is contained in the disk around the midpoint with radius
    // (√3/2)·d ≤ d.
    const double scan_radius = std::sqrt(d_uv_sq);
    bool rng = true;
    grid.for_each_within(mid, scan_radius, [&](spatial::PointIndex w) {
      if (!rng || w == e.u || w == e.v) return;
      if (lune_witness_kills(points[w], pu, pv, d_uv_sq)) rng = false;
    });
    if (rng) kept.push_back(e);
  }
  return kept;
}

}  // namespace emst::graph
