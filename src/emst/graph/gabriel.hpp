// Gabriel graph — a locally-computable geometric MST superset.
//
// Edge (u,v) belongs to the Gabriel graph iff no other point lies inside the
// closed disk with diameter uv, equivalently d²(w,u) + d²(w,v) ≥ d²(u,v) for
// all w. Classical facts: EMST ⊆ RNG ⊆ GG ⊆ Delaunay, and |GG| = O(n).
//
// Relevance to the paper: §VIII leaves open whether coordinates admit an
// energy-optimal *exact* MST algorithm. A node that knows its own and its
// neighbours' coordinates can decide Gabriel membership of its incident
// edges with ONE-HOP information only (the disk of a unit-disk edge is
// contained in the union of the endpoints' radio ranges), shrinking the
// candidate edge set from Θ(n log n) to O(n) before GHS even starts — the
// `coordeopt` exploration measured in `bench/ablation_ghs_variants` and
// EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "emst/geometry/point.hpp"
#include "emst/graph/edge.hpp"

namespace emst::graph {

/// True iff (u,v) is a Gabriel edge of `points` (no witness in the diameter
/// disk). O(n) scan; prefer gabriel_filter for whole edge sets.
[[nodiscard]] bool is_gabriel_edge(std::span<const geometry::Point2> points,
                                   NodeId u, NodeId v);

/// Filter an edge list down to its Gabriel edges. Uses a spatial grid over
/// the points: expected O(|edges| · disk population).
[[nodiscard]] std::vector<Edge> gabriel_filter(
    std::span<const geometry::Point2> points, const std::vector<Edge>& edges);

/// Relative neighborhood graph membership: (u,v) is an RNG edge iff no
/// witness w has max(d(w,u), d(w,v)) < d(u,v) (the "lune" is empty).
/// EMST ⊆ RNG ⊆ GG — the RNG is the sparser (still connectivity-preserving)
/// locally-computable MST superset.
[[nodiscard]] bool is_rng_edge(std::span<const geometry::Point2> points,
                               NodeId u, NodeId v);

/// Filter an edge list down to its RNG edges (grid-accelerated).
[[nodiscard]] std::vector<Edge> rng_filter(
    std::span<const geometry::Point2> points, const std::vector<Edge>& edges);

}  // namespace emst::graph
