// Compressed-sparse-row adjacency for weighted undirected graphs.
//
// Built once from an edge list; per-node neighbor ranges are contiguous and
// sorted by (weight, neighbor id) — the canonical edge order — so the GHS
// implementations can walk "basic edges in ascending weight" with a cursor.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "emst/graph/edge.hpp"

namespace emst::graph {

/// Sentinel edge_index for Neighbor entries produced by a backend that has
/// not materialized a global edge list (sim::ImplicitTopology before
/// ensure_edge_ranks()). Algorithms that name fragments by edge index
/// (classic GHS) must call prepare_edge_indices(topo) first.
inline constexpr std::uint32_t kNoEdgeIndex = static_cast<std::uint32_t>(-1);

struct Neighbor {
  NodeId id = 0;
  double w = 0.0;
  /// Index of this (u,v) pair in the owning graph's canonical edge list;
  /// identical for both directions, so per-edge state can live in one array.
  /// kNoEdgeIndex when the producing backend has no edge ranks built.
  std::uint32_t edge_index = 0;
};

class AdjacencyList {
 public:
  AdjacencyList() = default;

  /// Build from an undirected edge list over nodes [0, n). Takes the list
  /// by value: pass an rvalue to avoid the copy (it is canonicalized and
  /// kept as the graph's edge store either way).
  AdjacencyList(std::size_t n, std::vector<Edge> edges);

  [[nodiscard]] std::size_t node_count() const noexcept { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_.size(); }

  /// Neighbors of u, sorted by (weight, id).
  [[nodiscard]] std::span<const Neighbor> neighbors(NodeId u) const;

  [[nodiscard]] std::size_t degree(NodeId u) const { return neighbors(u).size(); }

  /// Canonical (sorted) edge list the graph was built from.
  [[nodiscard]] const std::vector<Edge>& edges() const noexcept { return edges_; }

  /// Weight of edge index e.
  [[nodiscard]] double edge_weight(std::uint32_t e) const { return edges_[e].w; }

 private:
  std::vector<std::size_t> offsets_;
  std::vector<Neighbor> entries_;
  std::vector<Edge> edges_;  // canonical order
};

}  // namespace emst::graph
