// Sequential (centralized) MST algorithms: Kruskal, Prim, Borůvka.
//
// These are the ground truth for the distributed algorithms: with the
// canonical tie-break order (edge.hpp) the MST/minimum spanning *forest* is
// unique, so GHS / modified-GHS / EOPT outputs are compared edge-for-edge
// against `kruskal_msf`. On disconnected graphs all three return the minimum
// spanning forest.
#pragma once

#include <cstddef>
#include <vector>

#include "emst/graph/adjacency.hpp"
#include "emst/graph/edge.hpp"

namespace emst::graph {

/// Minimum spanning forest by Kruskal's algorithm. Edges returned in
/// canonical sorted order. O(m log m).
[[nodiscard]] std::vector<Edge> kruskal_msf(std::size_t n, std::vector<Edge> edges);

/// Minimum spanning forest by Prim's algorithm with a binary heap, restarted
/// per component. O(m log n).
[[nodiscard]] std::vector<Edge> prim_msf(const AdjacencyList& graph);

/// Minimum spanning forest by Borůvka's algorithm. O(m log n). This is the
/// sequential skeleton of GHS — each phase every component selects its
/// minimum outgoing edge — and is used to cross-check phase counts.
[[nodiscard]] std::vector<Edge> boruvka_msf(const AdjacencyList& graph);

/// Number of Borůvka phases until no component has an outgoing edge.
[[nodiscard]] std::size_t boruvka_phase_count(const AdjacencyList& graph);

}  // namespace emst::graph
