#include <queue>

#include "emst/graph/mst.hpp"
#include "emst/support/assert.hpp"

namespace emst::graph {
namespace {

struct HeapItem {
  Edge edge;  // edge.v is the frontier node to add
  friend bool operator<(const HeapItem& a, const HeapItem& b) {
    // std::priority_queue is a max-heap; invert the canonical order.
    return edge_less(b.edge, a.edge);
  }
};

}  // namespace

std::vector<Edge> prim_msf(const AdjacencyList& graph) {
  const std::size_t n = graph.node_count();
  std::vector<Edge> tree;
  if (n == 0) return tree;
  tree.reserve(n - 1);
  std::vector<bool> in_tree(n, false);
  std::priority_queue<HeapItem> heap;

  for (NodeId root = 0; root < n; ++root) {
    if (in_tree[root]) continue;
    in_tree[root] = true;
    for (const Neighbor& nb : graph.neighbors(root))
      heap.push({Edge{root, nb.id, nb.w}});
    while (!heap.empty()) {
      const Edge e = heap.top().edge;
      heap.pop();
      if (in_tree[e.v]) continue;
      in_tree[e.v] = true;
      tree.push_back(e.canonical());
      for (const Neighbor& nb : graph.neighbors(e.v)) {
        if (!in_tree[nb.id]) heap.push({Edge{e.v, nb.id, nb.w}});
      }
    }
  }
  sort_edges(tree);
  return tree;
}

}  // namespace emst::graph
