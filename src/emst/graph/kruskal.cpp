#include "emst/graph/mst.hpp"
#include "emst/graph/union_find.hpp"

namespace emst::graph {

std::vector<Edge> kruskal_msf(std::size_t n, std::vector<Edge> edges) {
  sort_edges(edges);
  UnionFind dsu(n);
  std::vector<Edge> tree;
  if (n > 0) tree.reserve(n - 1);
  for (const Edge& e : edges) {
    if (dsu.unite(e.u, e.v)) {
      tree.push_back(e.canonical());
      if (dsu.components() == 1) break;
    }
  }
  return tree;
}

}  // namespace emst::graph
