#include "emst/graph/adjacency.hpp"

#include <algorithm>
#include <utility>

#include "emst/support/assert.hpp"

namespace emst::graph {

AdjacencyList::AdjacencyList(std::size_t n, std::vector<Edge> edges)
    : offsets_(n + 1, 0), edges_(std::move(edges)) {
  sort_edges(edges_);
  for (const Edge& e : edges_) {
    EMST_ASSERT(e.u < n && e.v < n);
    EMST_ASSERT_MSG(e.u != e.v, "self loops are not allowed");
    ++offsets_[e.u + 1];
    ++offsets_[e.v + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) offsets_[i] += offsets_[i - 1];
  entries_.resize(offsets_[n]);
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  // edges_ is sorted by (w, u, v); appending in that order leaves each
  // node's neighbor range sorted by (w, id) without a per-node sort.
  for (std::uint32_t idx = 0; idx < edges_.size(); ++idx) {
    const Edge& e = edges_[idx];
    entries_[cursor[e.u]++] = Neighbor{e.v, e.w, idx};
    entries_[cursor[e.v]++] = Neighbor{e.u, e.w, idx};
  }
}

std::span<const Neighbor> AdjacencyList::neighbors(NodeId u) const {
  EMST_ASSERT(u + 1 < offsets_.size());
  return {entries_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
}

}  // namespace emst::graph
