// The unified run facade (docs/API_TOUR.md).
//
// One entry point replaces the four per-driver calls: pick a driver with
// `emst::Driver`, set the shared `sim::RunConfig` knobs once on
// `emst::RunConfig`, and call `emst::run`. The facade dispatches to the
// exact same driver code the legacy entry points execute, so results are
// pinned bitwise-identical to direct calls (tests/run_facade_test.cpp);
// telemetry, faults, ARQ, the invariant oracle, worker threads, and both
// topology backends all compose through the one shared config.
//
//   emst::Instance inst = emst::sample_instance(2000, /*seed=*/7);
//   emst::RunConfig cfg;
//   cfg.driver = emst::Driver::kEopt;
//   cfg.faults.loss = 0.1;
//   cfg.arq.enabled = true;
//   emst::RunResult res = emst::run(inst, cfg);
//
// Callers that already hold a topology (benches that sweep radii, the serve
// session's resident deployment) use the topology overloads instead; the
// `Instance` overload just builds the driver-appropriate backend and
// forwards. The legacy entry points (`ghs::run_classic_ghs`,
// `ghs::run_sync_ghs`, `eopt::run_eopt`, `nnt::run_connt`) are deprecated
// wrappers of record — still there, still bitwise-identical, but new call
// sites should go through the facade. Expert features the facade does not
// express (seed forests, external meters, transmission logs) remain reasons
// to call a driver directly; define EMST_NO_DEPRECATE in that TU.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "emst/eopt/eopt.hpp"
#include "emst/ghs/classic.hpp"
#include "emst/ghs/sync.hpp"
#include "emst/nnt/connt.hpp"
#include "emst/run_report.hpp"
#include "emst/sim/implicit_topology.hpp"
#include "emst/sim/run_config.hpp"
#include "emst/sim/topology.hpp"

namespace emst {

/// Every algorithm the facade can dispatch, including the named variants
/// the CLI exposes (`--algo=` spellings in comments).
enum class Driver {
  kClassicGhs,        ///< "ghs"        — 1983 protocol, TEST/ACCEPT/REJECT
  kClassicGhsCached,  ///< "ghs-cached" — classic with the §V-A cache
  kSyncGhs,           ///< "sync"       — phase-synchronous modified GHS
  kSyncGhsProbe,      ///< "sync-probe" — phase-synchronous, probe flavour
  kEopt,              ///< "eopt"       — the paper's two-step algorithm
  kCoNnt,             ///< "connt"      — coordinate NNT, diagonal ranks
  kCoNntAxis,         ///< "connt-axis" — coordinate NNT, axis ranks
};

/// CLI spelling of a driver ("ghs", "sync-probe", ...).
[[nodiscard]] const char* driver_name(Driver driver) noexcept;

/// Parse a CLI spelling; returns false (and leaves `out` untouched) for
/// unknown names.
[[nodiscard]] bool parse_driver(const std::string& name, Driver& out) noexcept;

/// The driver variant that will actually execute under `cfg`: the Co-NNT
/// drivers silently dispatch to their node-actor implementation whenever
/// faults are enabled or ranks are requested (the exact rule inside
/// `nnt::run_connt`), so the resolved spelling becomes "connt-actor" /
/// "connt-axis-actor" there; every other driver resolves to its plain
/// `driver_name` spelling. Trace headers record this so offline tooling can
/// tell which implementation produced a stream (scripts/check_trace.py).
[[nodiscard]] const char* resolved_driver_name(Driver driver,
                                               const sim::RunConfig& cfg) noexcept;

/// Where `cfg` places message-handler execution (docs/DISTRIBUTED.md §6):
/// "rank" when a NodeActor runs its handlers inside forked rank processes
/// (classic GHS and the Co-NNT actor variant with ranks > 0), "parent" for
/// every in-process engine — including the phase-synchronous sync/EOPT
/// drivers, which are choreographed meter-direct sweeps with no per-node
/// handlers; for them `ranks` is a documented no-op and placement is always
/// the parent.
[[nodiscard]] const char* handler_placement_name(
    Driver driver, const sim::RunConfig& cfg) noexcept;

/// Whether the driver speaks message loss + ARQ (docs/ROBUSTNESS.md):
/// classic GHS and Co-NNT survive crash-only fault models by epoch restart
/// but have no loss recovery.
[[nodiscard]] bool driver_supports_loss(Driver driver) noexcept;

/// A deployment the facade can build a topology from: points plus the
/// radius policy. `sample_instance` covers the common "n uniform points at
/// the connectivity radius" case.
struct Instance {
  std::vector<geometry::Point2> points;
  /// Maximum transmission radius. <= 0 → derive from `radius_factor`:
  /// the connectivity radius factor·√(ln n / n) (rgg/radii.hpp) — except
  /// for the EOPT driver, whose topology is built at its own r₂ =
  /// step2_factor·√(ln n / n) exactly as `eopt::eopt_topology` does.
  double radius = 0.0;
  double radius_factor = 1.6;
  /// Build the memory-lean `sim::ImplicitTopology` backend instead of the
  /// materialized CSR. Results are bitwise-identical (docs/PERF.md).
  bool implicit_backend = false;
};

/// n uniform points (geometry::uniform_points, stream-seeded like the CLI).
[[nodiscard]] Instance sample_instance(std::size_t n, std::uint64_t seed,
                                       double radius_factor = 1.6);

/// Facade configuration: the shared `sim::RunConfig` knobs inline (set
/// pathloss/faults/arq/telemetry/oracle/threads once, they reach whichever
/// driver runs) plus the driver selector and, for callers that need them,
/// the per-driver tuning structs. The `sim::RunConfig` base slice of each
/// nested tuning struct is overwritten with this struct's own base before
/// dispatch — shared knobs are set in exactly one place.
struct RunConfig : sim::RunConfig {
  Driver driver = Driver::kEopt;
  /// Operating radius for the GHS drivers (<= 0 → the topology's max).
  double radius = 0.0;
  /// Advanced per-driver tuning. Only the struct matching `driver` is
  /// consulted; its RunConfig base slice and variant-defining fields
  /// (neighbor_cache, moe, scheme) are overridden by the facade.
  eopt::EoptOptions eopt{};
  ghs::SyncGhsOptions sync{};
  ghs::ClassicGhsOptions classic{};
  nnt::CoNntOptions connt{};
};

/// Convenience: a default-knob RunConfig for `driver` — the benches' common
/// "just run this algorithm" case in one expression.
[[nodiscard]] inline RunConfig config_for(Driver driver) {
  RunConfig cfg;
  cfg.driver = driver;
  return cfg;
}

/// The facade's owning result: one shape for every driver, safe to return
/// by value (unlike `RunReport`, whose pointers borrow from a live driver
/// result). `report()` yields the classic non-owning view over this object.
struct RunResult {
  Driver driver = Driver::kEopt;
  std::vector<graph::Edge> tree;  ///< canonical order
  sim::Accounting totals;
  std::size_t phases = 0;
  std::size_t fragments = 0;  ///< 0 when the driver doesn't report it
  sim::FaultStats faults;
  sim::ArqStats arq;
  std::vector<double> per_node_energy;  ///< empty unless tracking was on
  sim::EnergyBreakdown breakdown;       ///< valid iff breakdown_recorded
  bool breakdown_recorded = false;
  bool hit_phase_cap = false;
  std::size_t epochs = 1;  ///< fail-stop protocol restarts (1 = clean)
  /// Chaos-controller injections during the run (replayable crash list).
  std::vector<sim::CrashWindow> injected_crashes;
  /// Execution-placement witnesses: how many NodeActor handler invocations
  /// ran in the driver process vs inside forked rank workers. For the
  /// actor-backed drivers exactly one of the two is non-zero; both stay 0
  /// for the choreographed paths (sync/EOPT, faultless serial Co-NNT).
  std::uint64_t handler_invocations = 0;
  std::uint64_t rank_handler_invocations = 0;

  /// Non-owning view over this result — keep the result alive while using
  /// it (same contract as every driver's report()).
  [[nodiscard]] RunReport report() const {
    RunReport out;
    out.tree = &tree;
    out.totals = totals;
    out.phases = phases;
    out.fragments = fragments;
    out.faults = faults;
    out.arq = arq;
    if (!per_node_energy.empty()) out.per_node_energy = &per_node_energy;
    if (breakdown_recorded) out.breakdown = &breakdown;
    out.hit_phase_cap = hit_phase_cap;
    return out;
  }
};

/// Run `cfg.driver` on a caller-owned topology backend. Defined in run.cpp
/// and explicitly instantiated for `sim::Topology` and
/// `sim::ImplicitTopology`.
template <typename Topo>
[[nodiscard]] RunResult run(const Topo& topo, const RunConfig& cfg = {});

/// Build the driver-appropriate topology for `inst` and run on it.
[[nodiscard]] RunResult run(const Instance& inst, const RunConfig& cfg = {});

}  // namespace emst
