// Blocking client for the serve protocol (docs/SERVE.md).
//
// One loopback TCP connection, strict request → response lockstep: every
// helper frames a request, sends it, and blocks until the matching
// response frame arrives. Used by `emst_serve --client` (interactive and
// scripted modes), the throughput bench, and the end-to-end test.
#pragma once

#include <cstdint>
#include <optional>

#include "emst/graph/edge.hpp"
#include "emst/serve/framing.hpp"

namespace emst::serve {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connect to 127.0.0.1:port. False (not fatal) on refusal — callers in
  /// sandboxed environments skip gracefully.
  [[nodiscard]] bool connect(std::uint16_t port);
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  void close();

  /// One framed round-trip; nullopt when the connection died mid-exchange.
  [[nodiscard]] std::optional<proto::ServeResp> request(
      const proto::ServeReq& req);

  // Typed helpers: each sends one request and unwraps the expected
  // response, treating an Error response (or a transport failure) as the
  // "no" value.

  /// Open the session; returns the deployment size, or nullopt on version
  /// mismatch / transport failure.
  [[nodiscard]] std::optional<std::uint64_t> hello();
  /// Returns the assigned node id, or graph::kNoNode on rejection.
  [[nodiscard]] graph::NodeId add_node(double x, double y);
  [[nodiscard]] bool remove_node(graph::NodeId id);
  [[nodiscard]] bool move_node(graph::NodeId id, double x, double y);
  [[nodiscard]] std::optional<proto::ServeCommitReport> commit();
  [[nodiscard]] std::optional<proto::ServeTreeSummary> query_tree();
  [[nodiscard]] std::optional<proto::ServeStats> query_stats();
  /// Ask the daemon to commit pending work and exit; true on its Ack.
  [[nodiscard]] bool shutdown_server();

 private:
  int fd_ = -1;
  FrameBuffer in_;
};

}  // namespace emst::serve
