// The emst_serve daemon core (docs/SERVE.md).
//
// Owns a resident serve::Session and speaks the framed ServeMsg protocol
// over loopback TCP: poll-driven, multiple concurrent clients, one
// request → one response. Mutations are validated immediately and queued;
// the batch folds into the maintained tree on an explicit Commit request,
// when it reaches `max_batch` admitted mutations, or after
// `batch_timeout_ms` of quiet with work pending — whichever comes first.
// A Shutdown request commits any pending batch and ends serve().
//
// Malformed input is never fatal to the daemon: an unknown tag or a
// wrong-size payload earns an Error{kBadRequest} response (the length
// prefix keeps the stream in sync), an oversized length word drops that
// connection, and a frame with the wrong protocol version earns
// Error{kVersionMismatch}.
#pragma once

#include <cstdint>
#include <vector>

#include "emst/serve/framing.hpp"
#include "emst/serve/session.hpp"

namespace emst::serve {

struct ServerConfig {
  std::uint16_t port = 0;       ///< 0 = let the kernel pick (see port())
  std::size_t max_batch = 256;  ///< auto-commit at this many admitted ops
  /// Auto-commit a non-empty batch after this long with no traffic;
  /// < 0 disables the timer (commit only on request / max_batch).
  int batch_timeout_ms = 50;
};

class Server {
 public:
  /// Binds and listens on 127.0.0.1 immediately; check ok() — binding can
  /// legitimately fail in sandboxed environments.
  Server(Session session, ServerConfig cfg = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] bool ok() const noexcept { return listen_fd_ >= 0; }
  /// The actually-bound port (resolves port 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] Session& session() noexcept { return session_; }
  [[nodiscard]] const Session& session() const noexcept { return session_; }

  /// Accept/request loop until a Shutdown request arrives. Returns the
  /// number of requests served.
  std::uint64_t serve();

 private:
  struct Conn {
    int fd = -1;
    FrameBuffer in;
  };

  /// Decode + dispatch one frame, sending the response; false drops the
  /// connection (corrupt stream).
  bool handle_frame(const Conn& conn, const Frame& frame);
  [[nodiscard]] proto::ServeResp apply(const proto::ServeReq& req);
  static bool send_all(int fd, const std::vector<std::uint8_t>& bytes);

  Session session_;
  ServerConfig cfg_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  bool shutting_down_ = false;
  std::uint64_t served_ = 0;
};

}  // namespace emst::serve
