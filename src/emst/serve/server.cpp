#include "emst/serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>

#include "emst/support/assert.hpp"

namespace emst::serve {

namespace {

/// Exact payload byte length each request tag must arrive with — every
/// serve message is fixed-width, so a mismatch is a malformed frame, not a
/// decoder crash (BitReader asserts on past-end reads; we never let a
/// hostile payload reach that assert).
[[nodiscard]] bool payload_length_ok(std::uint64_t tag, std::size_t bytes) {
  using proto::ServeReqType;
  if (tag >= static_cast<std::uint64_t>(ServeReqType::kTypeCount)) return false;
  proto::ServeReq probe;
  switch (static_cast<ServeReqType>(tag)) {
    case ServeReqType::kHello: probe = proto::ServeHello{}; break;
    case ServeReqType::kAddNode: probe = proto::ServeAddNode{}; break;
    case ServeReqType::kRemoveNode: probe = proto::ServeRemoveNode{}; break;
    case ServeReqType::kMoveNode: probe = proto::ServeMoveNode{}; break;
    case ServeReqType::kCommit: probe = proto::ServeCommit{}; break;
    case ServeReqType::kQueryTree: probe = proto::ServeQueryTree{}; break;
    case ServeReqType::kQueryStats: probe = proto::ServeQueryStats{}; break;
    case ServeReqType::kShutdown: probe = proto::ServeShutdown{}; break;
    case ServeReqType::kTypeCount: return false;
  }
  return bytes == (proto::encoded_bits(probe) + 7) / 8;
}

}  // namespace

Server::Server(Session session, ServerConfig cfg)
    : session_(std::move(session)), cfg_(cfg) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(cfg_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0)
    port_ = ntohs(bound.sin_port);
}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

bool Server::send_all(int fd, const std::vector<std::uint8_t>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

proto::ServeResp Server::apply(const proto::ServeReq& req) {
  using namespace proto;
  if (shutting_down_)
    return ServeErrorResp{ServeError::kShuttingDown};
  switch (type_of(req)) {
    case ServeReqType::kHello: {
      const auto& m = std::get<ServeHello>(req);
      if (m.version != kServeProtocolVersion)
        return ServeErrorResp{ServeError::kVersionMismatch};
      return ServeHelloOk{kServeProtocolVersion, session_.alive_count()};
    }
    case ServeReqType::kAddNode: {
      const auto& m = std::get<ServeAddNode>(req);
      const NodeId id = session_.queue_add({m.x, m.y});
      if (id == graph::kNoNode) return ServeErrorResp{ServeError::kBadRequest};
      return ServeNodeAdded{id};
    }
    case ServeReqType::kRemoveNode: {
      const auto& m = std::get<ServeRemoveNode>(req);
      if (!session_.queue_remove(m.id))
        return ServeErrorResp{ServeError::kUnknownNode};
      return ServeAck{};
    }
    case ServeReqType::kMoveNode: {
      const auto& m = std::get<ServeMoveNode>(req);
      if (!std::isfinite(m.x) || !std::isfinite(m.y))
        return ServeErrorResp{ServeError::kBadRequest};
      if (!session_.queue_move(m.id, {m.x, m.y}))
        return ServeErrorResp{ServeError::kUnknownNode};
      return ServeAck{};
    }
    case ServeReqType::kCommit: {
      const CommitOutcome outcome = session_.commit();
      return ServeCommitReport{static_cast<std::uint32_t>(outcome.admitted),
                               outcome.nodes_touched, outcome.rebuilt,
                               session_.tree().size(),
                               session_.tree_length()};
    }
    case ServeReqType::kQueryTree: {
      ServeTreeSummary out;
      out.nodes = session_.alive_count();
      out.edges = session_.tree().size();
      for (const graph::Edge& e : session_.tree()) {
        out.total_len += e.w;
        out.total_sq += e.w * e.w;
      }
      return out;
    }
    case ServeReqType::kQueryStats: {
      const SessionStats& s = session_.stats();
      return ServeStats{s.commits,        s.rebuilds,
                        s.admitted,       s.nodes_touched,
                        session_.alive_count(), session_.tree().size()};
    }
    case ServeReqType::kShutdown:
      if (session_.pending() > 0) (void)session_.commit();
      shutting_down_ = true;
      return ServeAck{};
    case ServeReqType::kTypeCount: break;
  }
  return ServeErrorResp{ServeError::kBadRequest};
}

bool Server::handle_frame(const Conn& conn, const Frame& frame) {
  using namespace proto;
  ++served_;
  ServeResp resp = ServeErrorResp{ServeError::kBadRequest};
  if (frame.version != kServeProtocolVersion) {
    resp = ServeErrorResp{ServeError::kVersionMismatch};
  } else if (!frame.payload.empty()) {
    BitReader peek(frame.payload);
    const std::uint64_t tag = peek.read(kServeTagBits);
    if (payload_length_ok(tag, frame.payload.size())) {
      BitReader r(frame.payload);
      resp = apply(decode_serve_req(r));
      // A mutation may have tipped the batch over the auto-commit line.
      if (!shutting_down_ && session_.pending() >= cfg_.max_batch)
        (void)session_.commit();
    }
  }
  std::vector<std::uint8_t> out;
  append_frame(out, resp);
  return send_all(conn.fd, out);
}

std::uint64_t Server::serve() {
  EMST_ASSERT_MSG(ok(), "serve() on a server that failed to bind");
  std::vector<Conn> conns;
  std::vector<pollfd> fds;
  std::uint8_t buf[4096];
  while (!shutting_down_) {
    fds.clear();
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const Conn& c : conns) fds.push_back({c.fd, POLLIN, 0});
    const int timeout =
        session_.pending() > 0 ? cfg_.batch_timeout_ms : -1;
    const int rc = ::poll(fds.data(), fds.size(), timeout);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) {
      // Batch timer fired: fold the pending mutations in now.
      (void)session_.commit();
      continue;
    }
    if ((fds[0].revents & POLLIN) != 0) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) conns.push_back(Conn{fd, {}});
    }
    // fds[1 + i] pairs with conns[i]; conns grown this round aren't polled
    // until the next one.
    const std::size_t polled = fds.size() - 1;
    std::vector<std::size_t> dead;
    for (std::size_t i = 0; i < polled && !shutting_down_; ++i) {
      const short ev = fds[i + 1].revents;
      if ((ev & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
      Conn& c = conns[i];
      const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
      if (n <= 0) {
        if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
        dead.push_back(i);
        continue;
      }
      c.in.feed(buf, static_cast<std::size_t>(n));
      Frame frame;
      bool drop = false;
      while (!shutting_down_ && c.in.next(frame)) {
        if (!handle_frame(c, frame)) {
          drop = true;
          break;
        }
      }
      if (drop || c.in.corrupt()) dead.push_back(i);
    }
    for (auto it = dead.rbegin(); it != dead.rend(); ++it) {
      ::close(conns[*it].fd);
      conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(*it));
    }
  }
  for (const Conn& c : conns) ::close(c.fd);
  return served_;
}

}  // namespace emst::serve
