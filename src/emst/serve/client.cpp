#include "emst/serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

namespace emst::serve {

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), in_(std::move(other.in_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    in_ = std::move(other.in_);
  }
  return *this;
}

bool Client::connect(std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close();
    return false;
  }
  return true;
}

void Client::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  in_ = FrameBuffer{};
}

std::optional<proto::ServeResp> Client::request(const proto::ServeReq& req) {
  if (fd_ < 0) return std::nullopt;
  std::vector<std::uint8_t> out;
  append_frame(out, req);
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      close();
      return std::nullopt;
    }
    off += static_cast<std::size_t>(n);
  }
  Frame frame;
  while (!in_.next(frame)) {
    if (in_.corrupt()) {
      close();
      return std::nullopt;
    }
    std::uint8_t buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      close();
      return std::nullopt;
    }
    in_.feed(buf, static_cast<std::size_t>(n));
  }
  if (frame.version != proto::kServeProtocolVersion) {
    close();
    return std::nullopt;
  }
  proto::BitReader r(frame.payload);
  return proto::decode_serve_resp(r);
}

namespace {
/// Unwrap the expected alternative; Error responses and wrong shapes map
/// to nullopt.
template <typename T>
std::optional<T> expect(std::optional<proto::ServeResp> resp) {
  if (!resp.has_value()) return std::nullopt;
  if (const T* m = std::get_if<T>(&*resp)) return *m;
  return std::nullopt;
}
}  // namespace

std::optional<std::uint64_t> Client::hello() {
  const auto ok = expect<proto::ServeHelloOk>(
      request(proto::ServeHello{proto::kServeProtocolVersion}));
  if (!ok.has_value()) return std::nullopt;
  return ok->nodes;
}

graph::NodeId Client::add_node(double x, double y) {
  const auto added =
      expect<proto::ServeNodeAdded>(request(proto::ServeAddNode{x, y}));
  return added.has_value() ? added->id : graph::kNoNode;
}

bool Client::remove_node(graph::NodeId id) {
  return expect<proto::ServeAck>(request(proto::ServeRemoveNode{id}))
      .has_value();
}

bool Client::move_node(graph::NodeId id, double x, double y) {
  return expect<proto::ServeAck>(request(proto::ServeMoveNode{id, x, y}))
      .has_value();
}

std::optional<proto::ServeCommitReport> Client::commit() {
  return expect<proto::ServeCommitReport>(request(proto::ServeCommit{}));
}

std::optional<proto::ServeTreeSummary> Client::query_tree() {
  return expect<proto::ServeTreeSummary>(request(proto::ServeQueryTree{}));
}

std::optional<proto::ServeStats> Client::query_stats() {
  return expect<proto::ServeStats>(request(proto::ServeQueryStats{}));
}

bool Client::shutdown_server() {
  return expect<proto::ServeAck>(request(proto::ServeShutdown{})).has_value();
}

}  // namespace emst::serve
