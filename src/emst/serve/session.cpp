#include "emst/serve/session.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_set>
#include <utility>

#include "emst/graph/mst.hpp"
#include "emst/graph/union_find.hpp"
#include "emst/proto/fragment.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/support/assert.hpp"

namespace emst::serve {

namespace {

constexpr NodeId kNone = graph::kNoNode;

[[nodiscard]] bool finite_point(geometry::Point2 p) noexcept {
  return std::isfinite(p.x) && std::isfinite(p.y);
}

/// Enumerate the smaller of the two tree components containing `a` and `b`
/// (which must be distinct components) by alternating one-node BFS
/// expansions — O(min(|A|, |B|)) work, the classic smaller-half trick.
/// Returns (members of the smaller side, seed of the LARGER side).
std::pair<std::vector<NodeId>, NodeId> smaller_component(
    const std::vector<std::vector<NodeId>>& adj, NodeId a, NodeId b) {
  struct Side {
    std::vector<NodeId> members;
    std::deque<NodeId> frontier;
    std::unordered_set<NodeId> seen;
  };
  Side sa, sb;
  sa.members.push_back(a), sa.frontier.push_back(a), sa.seen.insert(a);
  sb.members.push_back(b), sb.frontier.push_back(b), sb.seen.insert(b);
  auto step = [&adj](Side& s) {
    const NodeId u = s.frontier.front();
    s.frontier.pop_front();
    for (const NodeId v : adj[u]) {
      if (s.seen.insert(v).second) {
        s.members.push_back(v);
        s.frontier.push_back(v);
      }
    }
  };
  while (!sa.frontier.empty() && !sb.frontier.empty()) {
    step(sa);
    step(sb);
  }
  if (sa.frontier.empty()) return {std::move(sa.members), b};
  return {std::move(sb.members), a};
}

/// The unique tree path from `from` to `to` (same component), as the node
/// sequence from → ... → to. Plain BFS with early exit; cost is bounded by
/// the component but typically local — the endpoints are within one radius
/// of each other geometrically.
std::vector<NodeId> tree_path(const std::vector<std::vector<NodeId>>& adj,
                              NodeId from, NodeId to) {
  std::unordered_map<NodeId, NodeId> parent;
  parent.emplace(from, kNone);
  std::deque<NodeId> frontier{from};
  while (!frontier.empty() && parent.count(to) == 0) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (const NodeId v : adj[u]) {
      if (parent.emplace(v, u).second) frontier.push_back(v);
    }
  }
  EMST_ASSERT_MSG(parent.count(to) > 0, "tree_path: endpoints disconnected");
  std::vector<NodeId> path;
  for (NodeId u = to; u != kNone; u = parent.at(u)) path.push_back(u);
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

Session::Session(std::vector<geometry::Point2> points, SessionConfig cfg)
    : cfg_(std::move(cfg)), points_(std::move(points)) {
  EMST_ASSERT_MSG(cfg_.run.driver != Driver::kCoNnt &&
                      cfg_.run.driver != Driver::kCoNntAxis,
                  "serve sessions need an MSF-exact rebuild driver; the "
                  "Co-NNT schemes build approximate trees");
  for (const geometry::Point2 p : points_)
    EMST_ASSERT_MSG(finite_point(p), "session seeded with non-finite point");
  alive_.assign(points_.size(), 1);
  alive_count_ = points_.size();
  leader_.resize(points_.size());
  for (NodeId u = 0; u < leader_.size(); ++u) leader_[u] = u;
  std::size_t touched = 0;
  full_build(touched);
}

NodeId Session::queue_add(geometry::Point2 p) {
  if (!finite_point(p)) return kNone;
  const NodeId id = static_cast<NodeId>(points_.size());
  points_.push_back(p);
  alive_.push_back(0);
  leader_.push_back(id);
  pending_.emplace(id, PendingOp{PendingOp::kAdd, p});
  ++batch_ops_;
  return id;
}

bool Session::queue_remove(NodeId id) {
  if (const auto it = pending_.find(id); it != pending_.end()) {
    switch (it->second.kind) {
      case PendingOp::kAdd:
        pending_.erase(it);  // cancel the add; the id slot stays dead
        ++batch_ops_;
        return true;
      case PendingOp::kMove:
        it->second.kind = PendingOp::kRemove;  // move-then-remove = remove
        ++batch_ops_;
        return true;
      case PendingOp::kRemove:
        return false;
    }
  }
  if (!alive(id)) return false;
  pending_.emplace(id, PendingOp{PendingOp::kRemove, points_[id]});
  ++batch_ops_;
  return true;
}

bool Session::queue_move(NodeId id, geometry::Point2 p) {
  if (!finite_point(p)) return false;
  if (const auto it = pending_.find(id); it != pending_.end()) {
    switch (it->second.kind) {
      case PendingOp::kAdd:
        points_[id] = p;  // the add lands at the latest position
        it->second.pos = p;
        ++batch_ops_;
        return true;
      case PendingOp::kMove:
        it->second.pos = p;
        ++batch_ops_;
        return true;
      case PendingOp::kRemove:
        return false;
    }
  }
  if (!alive(id)) return false;
  pending_.emplace(id, PendingOp{PendingOp::kMove, p});
  ++batch_ops_;
  return true;
}

CommitOutcome Session::commit() {
  CommitOutcome outcome;
  outcome.admitted = batch_ops_;
  std::vector<NodeId> removes, moves, adds;
  for (const auto& [id, op] : pending_) {  // std::map → ascending ids
    switch (op.kind) {
      case PendingOp::kAdd: adds.push_back(id); break;
      case PendingOp::kRemove: removes.push_back(id); break;
      case PendingOp::kMove:
        moves.push_back(id);
        break;
    }
  }
  // Record move targets before clearing; applied after the old positions
  // leave the grid.
  std::vector<geometry::Point2> move_pos;
  move_pos.reserve(moves.size());
  for (const NodeId id : moves) move_pos.push_back(pending_.at(id).pos);
  pending_.clear();
  batch_ops_ = 0;

  ++stats_.commits;
  stats_.admitted += outcome.admitted;
  if (removes.empty() && moves.empty() && adds.empty()) return outcome;

  const std::size_t n_after = alive_count_ - removes.size() + adds.size();
  churn_since_build_ += removes.size() + moves.size() + adds.size();

  // Rebuild policy: incremental repair holds the operating radius fixed,
  // so give up when churn erodes the margin or the population has drifted
  // far enough that the connectivity radius is wrong for it.
  bool rebuild = n_after < 2;
  if (!rebuild && n_at_build_ > 0 &&
      static_cast<double>(churn_since_build_) >=
          cfg_.rebuild_churn_fraction * static_cast<double>(n_at_build_))
    rebuild = true;
  if (!rebuild) {
    const double target = rgg::connectivity_radius(
        std::max<std::size_t>(2, n_after), cfg_.radius_factor);
    if (std::abs(target - radius_) > cfg_.rebuild_radius_drift * radius_)
      rebuild = true;
  }

  std::size_t touched = 0;
  if (rebuild) {
    for (const NodeId id : removes) {
      alive_[id] = 0;
      --alive_count_;
    }
    for (std::size_t i = 0; i < moves.size(); ++i)
      points_[moves[i]] = move_pos[i];
    for (const NodeId id : adds) {
      alive_[id] = 1;
      ++alive_count_;
    }
    full_build(touched);
    outcome.rebuilt = true;
    ++stats_.rebuilds;
  } else {
    incremental_commit(removes, moves, move_pos, adds, touched);
  }

  outcome.nodes_touched = touched;
  stats_.nodes_touched += touched;
  if (cfg_.verify_after_commit) {
    const std::vector<graph::Edge> ref = reference_msf();
    EMST_ASSERT_MSG(tree_.size() == ref.size() &&
                        std::equal(tree_.begin(), tree_.end(), ref.begin()),
                    "maintained tree diverged from kruskal_msf");
  }
  return outcome;
}

void Session::incremental_commit(const std::vector<NodeId>& removes,
                                 const std::vector<NodeId>& moves,
                                 const std::vector<geometry::Point2>& move_pos,
                                 const std::vector<NodeId>& adds,
                                 std::size_t& touched_out) {
  using FragmentSet = proto::FragmentSet;
  using MergeCandidate = FragmentSet::MergeCandidate;
  const std::size_t capacity = points_.size();
  std::unordered_set<NodeId> touched;

  // Seed the fragment runtime from the committed forest.
  FragmentSet fs(capacity);
  fs.assign_leaders(leader_);
  for (const graph::Edge& e : tree_) fs.add_tree_edge(e);

  // Down = removed ∪ moved (a move is a remove at the old position plus a
  // fresh insert at the new one).
  std::vector<bool> down(capacity, false);
  std::vector<NodeId> down_list;
  for (const NodeId id : removes) down[id] = true, down_list.push_back(id);
  for (const NodeId id : moves) down[id] = true, down_list.push_back(id);

  // Piece representatives, collected BEFORE repair: every split piece of a
  // torn fragment contains a surviving tree-neighbor of a down node (the
  // boundary), so these reps cover all pieces. Grouped by torn old
  // fragment — pieces of distinct old fragments stay mutually
  // disconnected, so Borůvka runs per group.
  std::map<NodeId, std::vector<NodeId>> group_reps;  // old leader → reps
  for (const NodeId d : down_list) {
    for (const NodeId v : fs.tree_adjacency()[d]) {
      if (!down[v]) group_reps[fs.leader(d)].push_back(v);
    }
    touched.insert(d);
  }

  for (const NodeId u : fs.repair(down)) touched.insert(u);

  // Old positions leave the grid; removed nodes die, moved nodes become
  // fresh (re-inserted in Stage B). The grid now holds exactly S, the
  // surviving static population.
  for (const NodeId id : removes) {
    grid_remove(id, points_[id]);
    alive_[id] = 0;
    --alive_count_;
  }
  for (std::size_t i = 0; i < moves.size(); ++i) {
    grid_remove(moves[i], points_[moves[i]]);
    points_[moves[i]] = move_pos[i];  // re-lands here in Stage B
  }

  // Enumerate piece members per group, all but the largest piece: pieces
  // advance round-robin one BFS pop at a time, and the last piece still
  // growing when every other has finished is the group's passive giant —
  // never enumerated, never scanned (§V-A's device, O(sum of small
  // pieces) work).
  std::map<NodeId, std::vector<NodeId>> active;  // piece leader → members
  std::unordered_set<NodeId> passive;
  const auto& adj = fs.tree_adjacency();
  for (auto& [old_leader, reps] : group_reps) {
    struct Piece {
      NodeId leader;
      std::vector<NodeId> members;
      std::deque<NodeId> frontier;
      bool done = false;
    };
    std::vector<Piece> pieces;
    std::unordered_set<NodeId> piece_seen;  // piece leaders already claimed
    std::unordered_set<NodeId> visited;     // across the group (disjoint)
    for (const NodeId rep : reps) {
      const NodeId pl = fs.leader(rep);
      if (!piece_seen.insert(pl).second) continue;
      Piece p;
      p.leader = pl;
      p.members.push_back(pl);
      p.frontier.push_back(pl);
      visited.insert(pl);
      pieces.push_back(std::move(p));
    }
    if (pieces.size() == 1) continue;  // nothing to re-merge in this group
    std::size_t unfinished = pieces.size();
    while (unfinished > 1) {
      for (Piece& p : pieces) {
        if (p.done) continue;
        if (p.frontier.empty()) {
          p.done = true;
          --unfinished;
          if (unfinished <= 1) break;
          continue;
        }
        const NodeId u = p.frontier.front();
        p.frontier.pop_front();
        for (const NodeId v : adj[u]) {
          if (visited.insert(v).second) {
            p.members.push_back(v);
            p.frontier.push_back(v);
          }
        }
      }
    }
    // The survivor (or, if all drained in the final sweep, the largest) is
    // passive; everyone else activates.
    const Piece* giant = nullptr;
    for (const Piece& p : pieces) {
      if (!p.done && !p.frontier.empty()) giant = &p;
    }
    if (giant == nullptr) {
      for (const Piece& p : pieces) {
        if (giant == nullptr || p.members.size() > giant->members.size() ||
            (p.members.size() == giant->members.size() &&
             p.leader < giant->leader))
          giant = &p;
      }
    }
    const NodeId giant_leader = giant->leader;
    passive.insert(giant_leader);
    for (Piece& p : pieces) {
      if (p.leader == giant_leader) continue;
      for (const NodeId m : p.members) touched.insert(m);
      active.emplace(p.leader, std::move(p.members));
    }
  }

  // Stage A — Borůvka rounds over the active pieces: each active fragment
  // commits its minimum outgoing edge (blue rule, canonical tie-break) and
  // the shared merge contracts them, giants keeping their ids. Fragment
  // count strictly drops every round, and a fragment with no outgoing edge
  // is a complete component forever (S is static), so this terminates.
  std::vector<std::pair<NodeId, double>> nbs;
  while (!active.empty()) {
    std::vector<std::pair<NodeId, MergeCandidate>> selected;
    for (const auto& [L, members] : active) {
      MergeCandidate best;
      for (const NodeId u : members) {
        grid_collect(points_[u], nbs);
        for (const auto& [v, w] : nbs) {
          if (fs.leader(v) == L) continue;
          const MergeCandidate cand{w, u, v};
          if (FragmentSet::candidate_less(cand, best)) best = cand;
        }
      }
      if (best.valid()) selected.emplace_back(L, best);
    }
    if (selected.empty()) break;
    for (const NodeId u : fs.merge(selected, passive, true)) touched.insert(u);
    std::map<NodeId, std::vector<NodeId>> next;
    for (auto& [L, members] : active) {
      const NodeId nl = fs.leader(L);
      if (passive.count(nl) > 0) continue;  // absorbed into the giant
      auto& bucket = next[nl];
      bucket.insert(bucket.end(), members.begin(), members.end());
    }
    active = std::move(next);
  }

  // Stage B — fresh nodes (adds + re-landing moves) join one at a time,
  // ascending id, edges in canonical ascending order: link across
  // components (relabel the smaller side), or evict the maximum cycle edge
  // when beaten.
  std::vector<NodeId> fresh = adds;
  fresh.insert(fresh.end(), moves.begin(), moves.end());
  std::sort(fresh.begin(), fresh.end());
  for (const NodeId v : fresh) {
    touched.insert(v);
    grid_collect(points_[v], nbs);
    std::vector<graph::Edge> edges;
    edges.reserve(nbs.size());
    for (const auto& [u, w] : nbs)
      edges.push_back(graph::Edge{v, u, w}.canonical());
    graph::sort_edges(edges);
    for (const graph::Edge& e : edges) {
      const NodeId u = e.u == v ? e.v : e.u;
      if (fs.leader(u) != fs.leader(v)) {
        auto [small, big_seed] = smaller_component(fs.tree_adjacency(), u, v);
        const NodeId nl = fs.leader(big_seed);
        for (const NodeId m : small) {
          fs.set_leader(m, nl);
          touched.insert(m);
        }
        fs.add_tree_edge(e);
      } else {
        const std::vector<NodeId> path = tree_path(fs.tree_adjacency(), u, v);
        graph::Edge worst{kNone, kNone, 0.0};
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
          const graph::Edge cand =
              graph::Edge{path[i], path[i + 1],
                          geometry::distance(points_[path[i]],
                                             points_[path[i + 1]])}
                  .canonical();
          if (worst.u == kNone || graph::edge_less(worst, cand)) worst = cand;
        }
        for (const NodeId m : path) touched.insert(m);
        if (graph::edge_less(e, worst)) {
          fs.remove_tree_edge(worst.u, worst.v);
          fs.add_tree_edge(e);
        }
      }
    }
    grid_insert(v, points_[v]);
    if (alive_[v] == 0) {
      alive_[v] = 1;
      ++alive_count_;
    }
  }

  leader_ = fs.leaders();
  tree_ = fs.tree();
  graph::sort_edges(tree_);
  touched_out = touched.size();
}

void Session::full_build(std::size_t& touched) {
  std::vector<NodeId> ids;
  std::vector<geometry::Point2> pts;
  ids.reserve(alive_count_), pts.reserve(alive_count_);
  for (NodeId u = 0; u < points_.size(); ++u) {
    if (alive_[u] != 0) {
      ids.push_back(u);
      pts.push_back(points_[u]);
    }
  }
  radius_ = rgg::connectivity_radius(std::max<std::size_t>(2, ids.size()),
                                     cfg_.radius_factor);
  tree_.clear();
  if (ids.size() >= 2) {
    Instance inst;
    inst.points = std::move(pts);
    inst.radius = radius_;
    inst.implicit_backend = cfg_.implicit_backend;
    const RunResult res = emst::run(inst, cfg_.run);
    EMST_ASSERT_MSG(res.injected_crashes.empty(),
                    "serve rebuild crashed nodes; the resident alive set "
                    "would desync (disable chaos for serve sessions)");
    tree_.reserve(res.tree.size());
    for (const graph::Edge& e : res.tree)
      tree_.push_back(graph::Edge{ids[e.u], ids[e.v], e.w}.canonical());
    graph::sort_edges(tree_);
  }
  // Leaders: minimum alive id per component, deterministic for any build.
  graph::UnionFind uf(points_.size());
  for (const graph::Edge& e : tree_) uf.unite(e.u, e.v);
  std::unordered_map<NodeId, NodeId> comp_min;
  for (NodeId u = 0; u < points_.size(); ++u) leader_[u] = u;
  for (const NodeId u : ids) comp_min.try_emplace(uf.find(u), u);
  for (const NodeId u : ids) leader_[u] = comp_min.at(uf.find(u));
  grid_rebuild();
  n_at_build_ = ids.size();
  churn_since_build_ = 0;
  touched = ids.size();  // a full build touches the whole deployment
}

double Session::tree_length() const {
  double total = 0.0;
  for (const graph::Edge& e : tree_) total += e.w;
  return total;
}

std::vector<graph::Edge> Session::reference_msf() const {
  std::vector<graph::Edge> edges;
  std::vector<std::pair<NodeId, double>> nbs;
  for (NodeId u = 0; u < points_.size(); ++u) {
    if (alive_[u] == 0) continue;
    grid_collect(points_[u], nbs);
    for (const auto& [v, w] : nbs) {
      if (v > u) edges.push_back(graph::Edge{u, v, w});
    }
  }
  return graph::kruskal_msf(points_.size(), std::move(edges));
}

std::uint64_t Session::cell_key(geometry::Point2 p) const {
  const auto cx =
      static_cast<std::int64_t>(std::floor(p.x / radius_));
  const auto cy =
      static_cast<std::int64_t>(std::floor(p.y / radius_));
  // Truncate to 32 bits per axis; far-apart aliased cells only add
  // candidates the distance filter rejects.
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
         static_cast<std::uint32_t>(cy);
}

void Session::grid_insert(NodeId id, geometry::Point2 p) {
  grid_[cell_key(p)].push_back(id);
}

void Session::grid_remove(NodeId id, geometry::Point2 p) {
  auto& bucket = grid_.at(cell_key(p));
  const auto it = std::find(bucket.begin(), bucket.end(), id);
  EMST_ASSERT_MSG(it != bucket.end(), "grid_remove: node not in its cell");
  bucket.erase(it);
}

void Session::grid_rebuild() {
  grid_.clear();
  for (NodeId u = 0; u < points_.size(); ++u) {
    if (alive_[u] != 0) grid_insert(u, points_[u]);
  }
}

void Session::grid_collect(geometry::Point2 p,
                           std::vector<std::pair<NodeId, double>>& out) const {
  out.clear();
  const double r_sq = radius_ * radius_;
  const auto cx = static_cast<std::int64_t>(std::floor(p.x / radius_));
  const auto cy = static_cast<std::int64_t>(std::floor(p.y / radius_));
  for (std::int64_t dx = -1; dx <= 1; ++dx) {
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx + dx))
           << 32) |
          static_cast<std::uint32_t>(cy + dy);
      const auto it = grid_.find(key);
      if (it == grid_.end()) continue;
      for (const NodeId v : it->second) {
        const double d_sq = geometry::distance_sq(p, points_[v]);
        if (d_sq <= r_sq) out.emplace_back(v, std::sqrt(d_sq));
      }
    }
  }
}

}  // namespace emst::serve
