// Socket framing for the serve protocol (docs/SERVE.md).
//
// Every ServeMsg travels in a frame of
//   [u16 protocol version | u32 payload byte length | payload bytes]
// with both header fields big-endian. The length prefix keeps the stream
// resynchronizable: a malformed payload costs one error response, never the
// connection — the next frame boundary is always known. The version rides
// on every frame (not just the hello) so a speaker of a future revision
// fails fast instead of desynchronizing mid-session.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "emst/proto/serve_wire.hpp"

namespace emst::serve {

inline constexpr std::size_t kFrameHeaderBytes = 6;
/// Sanity cap: every serve message is tens of bytes; anything bigger is a
/// corrupt or hostile stream and kills the connection.
inline constexpr std::size_t kMaxFramePayloadBytes = std::size_t{1} << 16;

namespace detail {
inline void append_frame_bytes(std::vector<std::uint8_t>& out,
                               const proto::BitWriter& w) {
  const std::vector<std::uint8_t>& payload = w.bytes();
  const auto len = static_cast<std::uint32_t>(payload.size());
  out.push_back(static_cast<std::uint8_t>(proto::kServeProtocolVersion >> 8));
  out.push_back(static_cast<std::uint8_t>(proto::kServeProtocolVersion));
  out.push_back(static_cast<std::uint8_t>(len >> 24));
  out.push_back(static_cast<std::uint8_t>(len >> 16));
  out.push_back(static_cast<std::uint8_t>(len >> 8));
  out.push_back(static_cast<std::uint8_t>(len));
  out.insert(out.end(), payload.begin(), payload.end());
}
}  // namespace detail

/// Append one framed request/response to `out`.
inline void append_frame(std::vector<std::uint8_t>& out,
                         const proto::ServeReq& m) {
  proto::BitWriter w;
  proto::encode(m, w);
  detail::append_frame_bytes(out, w);
}
inline void append_frame(std::vector<std::uint8_t>& out,
                         const proto::ServeResp& m) {
  proto::BitWriter w;
  proto::encode(m, w);
  detail::append_frame_bytes(out, w);
}

/// One parsed frame: the sender's version word plus the raw payload.
struct Frame {
  std::uint16_t version = 0;
  std::vector<std::uint8_t> payload;
};

/// Reassembles frames from an arbitrary byte stream (sockets deliver
/// fragments). feed() bytes in, next() complete frames out; corrupt() goes
/// latched-true on an oversized length word, after which the connection
/// should be dropped.
class FrameBuffer {
 public:
  void feed(const std::uint8_t* data, std::size_t len) {
    buf_.insert(buf_.end(), data, data + len);
  }

  [[nodiscard]] bool corrupt() const noexcept { return corrupt_; }

  /// Pop the next complete frame; false when more bytes are needed (or the
  /// stream is corrupt).
  [[nodiscard]] bool next(Frame& out) {
    if (corrupt_ || buf_.size() - pos_ < kFrameHeaderBytes) {
      compact();
      return false;
    }
    const std::uint16_t version =
        static_cast<std::uint16_t>((buf_[pos_] << 8) | buf_[pos_ + 1]);
    const std::uint32_t len = (static_cast<std::uint32_t>(buf_[pos_ + 2]) << 24) |
                              (static_cast<std::uint32_t>(buf_[pos_ + 3]) << 16) |
                              (static_cast<std::uint32_t>(buf_[pos_ + 4]) << 8) |
                              static_cast<std::uint32_t>(buf_[pos_ + 5]);
    if (len > kMaxFramePayloadBytes) {
      corrupt_ = true;
      return false;
    }
    if (buf_.size() - pos_ < kFrameHeaderBytes + len) {
      compact();
      return false;
    }
    out.version = version;
    const auto begin = buf_.begin() + static_cast<std::ptrdiff_t>(
                                          pos_ + kFrameHeaderBytes);
    out.payload.assign(begin, begin + static_cast<std::ptrdiff_t>(len));
    pos_ += kFrameHeaderBytes + len;
    return true;
  }

 private:
  void compact() {
    if (pos_ == 0) return;
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  bool corrupt_ = false;
};

}  // namespace emst::serve
