// The resident deployment behind emst_serve (docs/SERVE.md).
//
// A Session keeps one deployment's MST in memory across mutation batches:
// clients queue node adds / removes / moves, and commit() folds the batch
// into the maintained tree *incrementally* — a local Borůvka-style repair
// over the torn region (proto::FragmentSet repair + merge rounds) followed
// by per-node Chin–Houck insertion for fresh nodes — instead of re-running
// a full driver. A full rebuild through the emst::run facade happens only
// when accumulated churn or radius drift says the incremental invariants
// no longer hold margin.
//
// Exactness contract: after every commit the maintained tree is the MSF of
// the visibility graph G(alive points, radius()) under the repository's
// canonical edge order — differential-checked against graph::kruskal_msf in
// tests/serve_session_test.cpp and, when `verify_after_commit` is set,
// after every single batch.
//
// Why the two-stage repair is exact (docs/SERVE.md has the long form):
//  - Removals: surviving MSF edges remain MSF edges of the shrunk graph
//    (cycle property: deleting vertices deletes cycles, never creates
//    them), so seeding Borůvka from the survivor forest and running blue
//    rule rounds to quiescence yields MSF(G[S]) exactly. Only the split
//    pieces of *torn* fragments can gain outgoing edges — distinct old MSF
//    components are distinct graph components and stay disconnected — so
//    merge rounds scan only those pieces; the largest piece per torn
//    fragment stays passive (the paper's §V-A giant device) and is never
//    enumerated.
//  - Insertions (adds and the re-insert half of moves): one fresh node at
//    a time, edges in canonical ascending order; a cross-component edge
//    links (relabel the smaller side), an intra-component edge evicts the
//    maximum edge on the tree cycle when the new edge beats it
//    (MSF(A ∪ {e}) = MSF(MSF(A) ∪ {e})).
//
// The per-commit FragmentSet construction and leader-array copies are O(n)
// *coordinator-side* bookkeeping; the locality metric `nodes_touched`
// counts only nodes that participate in the repair protocol itself (down
// nodes, members of active pieces, relabeled nodes, cycle-path nodes,
// fresh nodes) — see docs/SERVE.md for the accounting rules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "emst/geometry/point.hpp"
#include "emst/graph/edge.hpp"
#include "emst/run.hpp"

namespace emst::serve {

using NodeId = graph::NodeId;

/// Session policy: how to (re)build, and when incremental repair gives up.
struct SessionConfig {
  /// Facade config used for full (re)builds. The driver must be MSF-exact
  /// (not connt/connt-axis — asserted) and must not inject crashes (a
  /// fail-stop degraded rebuild would desync the resident alive set).
  RunConfig run;
  /// Connectivity-radius factor for the operating radius (rgg/radii.hpp).
  double radius_factor = 1.6;
  /// Build the implicit (cell-grid) backend for rebuilds instead of CSR.
  bool implicit_backend = false;
  /// Rebuild when mutations since the last build exceed this fraction of
  /// the deployment size at build time.
  double rebuild_churn_fraction = 0.25;
  /// Rebuild when the connectivity radius for the current population
  /// drifts more than this fraction from the operating radius.
  double rebuild_radius_drift = 0.15;
  /// Differential-check the maintained tree against kruskal_msf after
  /// every commit (asserts on mismatch). For tests and the bench's
  /// verify phase; too slow for production batches.
  bool verify_after_commit = false;
};

/// What one commit() did, mirrored onto the wire as ServeCommitReport.
struct CommitOutcome {
  std::size_t admitted = 0;       ///< mutation requests folded in
  std::size_t nodes_touched = 0;  ///< protocol participants (see header)
  bool rebuilt = false;           ///< fell back to a full facade rebuild
};

/// Lifetime counters, mirrored onto the wire as ServeStats.
struct SessionStats {
  std::uint64_t commits = 0;
  std::uint64_t rebuilds = 0;
  std::uint64_t admitted = 0;
  std::uint64_t nodes_touched = 0;
};

class Session {
 public:
  /// Start with `points` all alive and build their MST through the facade.
  Session(std::vector<geometry::Point2> points, SessionConfig cfg);

  // -- mutation queue (validated now, applied at commit) --------------------

  /// Admit a node at `p`; the id is assigned immediately (monotone, never
  /// reused) but the node joins the tree at the next commit. Returns
  /// graph::kNoNode for non-finite coordinates.
  [[nodiscard]] NodeId queue_add(geometry::Point2 p);
  /// Remove a committed-alive or batch-pending node. False if unknown,
  /// already dead, or already removed in this batch.
  [[nodiscard]] bool queue_remove(NodeId id);
  /// Move a committed-alive or batch-pending node to `p`. False if the
  /// node is unknown/dead/removed or `p` is non-finite.
  [[nodiscard]] bool queue_move(NodeId id, geometry::Point2 p);
  [[nodiscard]] std::size_t pending() const noexcept { return batch_ops_; }

  /// Fold the queued batch into the maintained tree.
  CommitOutcome commit();

  // -- committed state ------------------------------------------------------

  [[nodiscard]] std::size_t alive_count() const noexcept {
    return alive_count_;
  }
  /// Total ids ever assigned (dead slots included).
  [[nodiscard]] std::size_t capacity() const noexcept { return points_.size(); }
  [[nodiscard]] bool alive(NodeId id) const noexcept {
    return id < alive_.size() && alive_[id] != 0;
  }
  [[nodiscard]] geometry::Point2 position(NodeId id) const {
    return points_[id];
  }
  /// Operating radius the maintained tree is exact at.
  [[nodiscard]] double radius() const noexcept { return radius_; }
  /// Maintained MSF in canonical order.
  [[nodiscard]] const std::vector<graph::Edge>& tree() const noexcept {
    return tree_;
  }
  [[nodiscard]] double tree_length() const;
  [[nodiscard]] const SessionStats& stats() const noexcept { return stats_; }

  /// Kruskal over the current committed deployment at radius() — the
  /// differential reference the maintained tree must equal.
  [[nodiscard]] std::vector<graph::Edge> reference_msf() const;

 private:
  struct PendingOp {
    enum Kind : std::uint8_t { kAdd, kRemove, kMove } kind;
    geometry::Point2 pos;  ///< target position for kAdd / kMove
  };

  void full_build(std::size_t& touched);
  void incremental_commit(const std::vector<NodeId>& removes,
                          const std::vector<NodeId>& moves,
                          const std::vector<geometry::Point2>& move_pos,
                          const std::vector<NodeId>& adds,
                          std::size_t& touched);

  // Dynamic cell grid over the committed-alive nodes, cell size = radius_.
  [[nodiscard]] std::uint64_t cell_key(geometry::Point2 p) const;
  void grid_insert(NodeId id, geometry::Point2 p);
  void grid_remove(NodeId id, geometry::Point2 p);
  void grid_rebuild();
  /// All grid nodes within radius_ of p (inclusive, matching the topology
  /// backends), as (id, distance) pairs in bucket order (unsorted).
  void grid_collect(geometry::Point2 p,
                    std::vector<std::pair<NodeId, double>>& out) const;

  SessionConfig cfg_;
  std::vector<geometry::Point2> points_;  ///< indexed by id, never shrinks
  std::vector<char> alive_;
  std::size_t alive_count_ = 0;
  double radius_ = 0.0;
  std::vector<graph::Edge> tree_;  ///< canonical order
  std::vector<NodeId> leader_;     ///< component leader per id (dead: self)
  std::unordered_map<std::uint64_t, std::vector<NodeId>> grid_;

  std::map<NodeId, PendingOp> pending_;  ///< batch, keyed by id (sorted)
  std::size_t batch_ops_ = 0;            ///< admitted requests this batch

  std::size_t n_at_build_ = 0;
  std::size_t churn_since_build_ = 0;
  SessionStats stats_;
};

}  // namespace emst::serve
