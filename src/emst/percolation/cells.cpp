#include "emst/percolation/cells.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "emst/support/assert.hpp"

namespace emst::percolation {

CellField::CellField(std::span<const geometry::Point2> points, double radius) {
  EMST_ASSERT(radius > 0.0);
  c_param_ = radius * radius * static_cast<double>(points.size());
  side_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::floor(1.0 / (radius / 2.0))));
  cell_ = 1.0 / static_cast<double>(side_);
  pop_.assign(side_ * side_, 0);
  for (const geometry::Point2& p : points) {
    const auto [cx, cy] = cell_of(p);
    ++pop_[cy * side_ + cx];
  }
}

std::pair<std::size_t, std::size_t> CellField::cell_of(geometry::Point2 p) const {
  auto coord = [&](double v) {
    double c = std::floor(v / cell_);
    return static_cast<std::size_t>(
        std::clamp(c, 0.0, static_cast<double>(side_ - 1)));
  };
  return {coord(p.x), coord(p.y)};
}

std::size_t CellField::population(std::size_t cx, std::size_t cy) const {
  EMST_ASSERT(cx < side_ && cy < side_);
  return pop_[cy * side_ + cx];
}

bool CellField::occupied(std::size_t cx, std::size_t cy) const {
  return population(cx, cy) > 0;
}

bool CellField::good(std::size_t cx, std::size_t cy) const {
  return static_cast<double>(population(cx, cy)) >= good_threshold();
}

double CellField::good_fraction() const {
  std::size_t good_cells = 0;
  for (std::size_t cy = 0; cy < side_; ++cy)
    for (std::size_t cx = 0; cx < side_; ++cx)
      if (good(cx, cy)) ++good_cells;
  return static_cast<double>(good_cells) / static_cast<double>(cell_count());
}

namespace {

constexpr std::size_t kUnlabeled = static_cast<std::size_t>(-1);

/// Generic 8-adjacency BFS labelling over the cells where `member` is true.
std::vector<std::size_t> label_clusters(std::size_t side,
                                        const std::vector<bool>& member,
                                        std::size_t& cluster_count) {
  std::vector<std::size_t> label(side * side, kUnlabeled);
  cluster_count = 0;
  std::queue<std::size_t> frontier;
  for (std::size_t start = 0; start < member.size(); ++start) {
    if (!member[start] || label[start] != kUnlabeled) continue;
    const std::size_t id = cluster_count++;
    label[start] = id;
    frontier.push(start);
    while (!frontier.empty()) {
      const std::size_t cell = frontier.front();
      frontier.pop();
      const long cx = static_cast<long>(cell % side);
      const long cy = static_cast<long>(cell / side);
      for (long dy = -1; dy <= 1; ++dy) {
        for (long dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0) continue;
          const long nx = cx + dx;
          const long ny = cy + dy;
          if (nx < 0 || ny < 0 || nx >= static_cast<long>(side) ||
              ny >= static_cast<long>(side))
            continue;
          const std::size_t ncell =
              static_cast<std::size_t>(ny) * side + static_cast<std::size_t>(nx);
          if (member[ncell] && label[ncell] == kUnlabeled) {
            label[ncell] = id;
            frontier.push(ncell);
          }
        }
      }
    }
  }
  return label;
}

}  // namespace

std::vector<std::size_t> CellField::good_clusters(std::size_t& cluster_count) const {
  std::vector<bool> member(cell_count());
  for (std::size_t cy = 0; cy < side_; ++cy)
    for (std::size_t cx = 0; cx < side_; ++cx)
      member[cy * side_ + cx] = good(cx, cy);
  return label_clusters(side_, member, cluster_count);
}

std::vector<std::size_t> CellField::complement_clusters(
    const std::vector<bool>& in_set, std::size_t& cluster_count) const {
  EMST_ASSERT(in_set.size() == cell_count());
  std::vector<bool> member(cell_count());
  for (std::size_t i = 0; i < in_set.size(); ++i) member[i] = !in_set[i];
  return label_clusters(side_, member, cluster_count);
}

}  // namespace emst::percolation
