#include "emst/percolation/analysis.hpp"

#include <algorithm>

#include "emst/geometry/sampling.hpp"
#include "emst/rgg/components.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/support/assert.hpp"
#include "emst/support/rng.hpp"

namespace emst::percolation {

Report analyze(const rgg::Rgg& instance) {
  Report report;
  report.n = instance.points.size();
  report.radius = instance.radius;

  CellField field(instance.points, instance.radius);
  report.c_param = field.density_parameter();
  report.good_fraction = field.good_fraction();

  // Node-level component structure.
  const rgg::Components comps = rgg::connected_components(instance.graph);
  report.component_count = comps.count;
  report.giant_nodes = comps.giant_size();
  report.giant_fraction = report.n == 0
                              ? 0.0
                              : static_cast<double>(report.giant_nodes) /
                                    static_cast<double>(report.n);
  report.second_component = comps.second_size();

  // Cell-level percolation structure.
  std::size_t good_cluster_count = 0;
  const auto good_label = field.good_clusters(good_cluster_count);
  report.good_cluster_count = good_cluster_count;

  std::vector<std::size_t> good_cluster_cells(good_cluster_count, 0);
  for (std::size_t label : good_label) {
    if (label != static_cast<std::size_t>(-1)) ++good_cluster_cells[label];
  }
  std::size_t largest_good = 0;  // cluster id
  for (std::size_t id = 1; id < good_cluster_cells.size(); ++id) {
    if (good_cluster_cells[id] > good_cluster_cells[largest_good]) largest_good = id;
  }
  report.largest_good_cluster =
      good_cluster_cells.empty() ? 0 : good_cluster_cells[largest_good];

  // Small regions: complement clusters of the largest good cluster.
  std::vector<bool> in_giant_cluster(field.cell_count(), false);
  if (!good_cluster_cells.empty()) {
    for (std::size_t cell = 0; cell < good_label.size(); ++cell)
      in_giant_cluster[cell] = good_label[cell] == largest_good;
  }
  std::size_t region_count = 0;
  const auto region_label = field.complement_clusters(in_giant_cluster, region_count);
  report.small_region_count = region_count;

  std::vector<std::size_t> region_cells(region_count, 0);
  std::vector<std::size_t> region_nodes(region_count, 0);
  const std::size_t side = field.side();
  for (std::size_t cell = 0; cell < region_label.size(); ++cell) {
    if (region_label[cell] == static_cast<std::size_t>(-1)) continue;
    ++region_cells[region_label[cell]];
    region_nodes[region_label[cell]] += field.population(cell % side, cell / side);
  }
  for (std::size_t id = 0; id < region_count; ++id) {
    report.largest_small_region_cells =
        std::max(report.largest_small_region_cells, region_cells[id]);
    report.largest_small_region_nodes =
        std::max(report.largest_small_region_nodes, region_nodes[id]);
  }

  // Thm 5.2 predicate: every non-giant component's nodes live in cells that
  // all belong to small regions (i.e. outside the giant's good cluster).
  const std::uint32_t giant_comp = comps.count == 0 ? 0 : comps.giant();
  report.small_components_trapped = true;
  for (std::size_t i = 0; i < instance.points.size(); ++i) {
    if (comps.label[i] == giant_comp) continue;
    const auto [cx, cy] = field.cell_of(instance.points[i]);
    if (in_giant_cluster[cy * side + cx]) {
      // A non-giant node sitting inside the giant's good-cell cluster would
      // contradict the cell construction (it would be connected to the
      // giant). Possible only for Euclidean-vs-Chebyshev edge effects.
      report.small_components_trapped = false;
      break;
    }
  }
  return report;
}

RegionSamples region_samples(const rgg::Rgg& instance) {
  RegionSamples samples;
  CellField field(instance.points, instance.radius);
  std::size_t good_cluster_count = 0;
  const auto good_label = field.good_clusters(good_cluster_count);
  if (good_cluster_count == 0) return samples;  // no backbone: no regions
  std::vector<std::size_t> cluster_cells(good_cluster_count, 0);
  for (const std::size_t label : good_label) {
    if (label != static_cast<std::size_t>(-1)) ++cluster_cells[label];
  }
  std::size_t largest = 0;
  for (std::size_t id = 1; id < cluster_cells.size(); ++id) {
    if (cluster_cells[id] > cluster_cells[largest]) largest = id;
  }
  std::vector<bool> in_backbone(field.cell_count(), false);
  for (std::size_t cell = 0; cell < good_label.size(); ++cell)
    in_backbone[cell] = good_label[cell] == largest;
  std::size_t region_count = 0;
  const auto region_label = field.complement_clusters(in_backbone, region_count);
  samples.cells.assign(region_count, 0);
  samples.nodes.assign(region_count, 0);
  const std::size_t side = field.side();
  for (std::size_t cell = 0; cell < region_label.size(); ++cell) {
    if (region_label[cell] == static_cast<std::size_t>(-1)) continue;
    ++samples.cells[region_label[cell]];
    samples.nodes[region_label[cell]] +=
        field.population(cell % side, cell / side);
  }
  return samples;
}

double estimate_critical_factor(std::size_t n, std::size_t trials,
                                std::uint64_t seed, double target, double lo,
                                double hi, std::size_t iterations) {
  EMST_ASSERT(lo < hi && target > 0.0 && target < 1.0);
  auto giant_fraction_at = [&](double factor) {
    double total = 0.0;
    for (std::size_t t = 0; t < trials; ++t) {
      support::Rng rng(support::Rng::stream_seed(
          seed ^ static_cast<std::uint64_t>(factor * 1e6), t));
      const auto instance =
          rgg::random_rgg(n, rgg::percolation_radius(n, factor), rng);
      const rgg::Components comps = rgg::connected_components(instance.graph);
      total += static_cast<double>(comps.giant_size()) / static_cast<double>(n);
    }
    return total / static_cast<double>(trials);
  };
  for (std::size_t i = 0; i < iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (giant_fraction_at(mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace emst::percolation
