// Empirical validation of Theorem 5.2: at r = √(c₁/n) there is WHP a unique
// giant component of Θ(n) nodes, and every other component lies inside a
// small region holding at most β·log² n nodes.
//
// Two views are reported:
//  - node level: components of the actual RGG (Euclidean edges),
//  - cell level: the site-percolation reduction (good cells, good clusters,
//    small regions = complement clusters of the largest good cluster, and
//    the node population per small region).
#pragma once

#include <cstddef>
#include <vector>

#include "emst/percolation/cells.hpp"
#include "emst/rgg/rgg.hpp"

namespace emst::percolation {

struct Report {
  // --- node level -----------------------------------------------------
  std::size_t n = 0;
  double radius = 0.0;
  double c_param = 0.0;             ///< r²·n
  std::size_t component_count = 0;
  std::size_t giant_nodes = 0;       ///< nodes in the largest component
  double giant_fraction = 0.0;       ///< giant_nodes / n
  std::size_t second_component = 0;  ///< largest non-giant component size
  // --- cell level -------------------------------------------------------
  double good_fraction = 0.0;            ///< empirical site probability p
  std::size_t good_cluster_count = 0;
  std::size_t largest_good_cluster = 0;  ///< in cells
  std::size_t small_region_count = 0;
  std::size_t largest_small_region_cells = 0;
  std::size_t largest_small_region_nodes = 0;  ///< the β·log²n quantity
  // --- Thm 5.2 predicate --------------------------------------------------
  /// True iff every non-giant node component is confined to one small region
  /// (checked by membership of the component's cells).
  bool small_components_trapped = false;
};

/// Analyze one RGG instance at its construction radius.
[[nodiscard]] Report analyze(const rgg::Rgg& instance);

/// Per-region size samples for one instance: cell count and node population
/// of every small region (complement cluster of the largest good cluster).
/// Lemma 5.4 claims P(|S| = k) ≤ e^{−γ√k} and Lemma 5.5 the analogous
/// node-population tail; the tests fit these tails over pooled samples.
struct RegionSamples {
  std::vector<std::size_t> cells;
  std::vector<std::size_t> nodes;
};

[[nodiscard]] RegionSamples region_samples(const rgg::Rgg& instance);

/// Estimate the percolation threshold empirically: the radius factor c (in
/// r = c·√(1/n)) at which the mean giant fraction crosses `target`, found by
/// bisection (the giant fraction is monotone in the radius). For Gilbert
/// disk graphs the continuum critical mean degree is ≈ 4.512, i.e.
/// c_crit = √(4.512/π) ≈ 1.20 — a known constant this estimator is tested
/// against, and the reason the paper's experimental choice c = 1.4 sits
/// safely supercritical.
[[nodiscard]] double estimate_critical_factor(std::size_t n, std::size_t trials,
                                              std::uint64_t seed,
                                              double target = 0.3,
                                              double lo = 0.5, double hi = 2.5,
                                              std::size_t iterations = 10);

}  // namespace emst::percolation
