// Site-percolation cell field (paper §V-B).
//
// The unit square is divided into cells of side r/2 so that — under the
// paper's Chebyshev simplification — any two nodes in the same or in
// 8-adjacent cells are within transmission range r. A cell is *good* when it
// holds at least c/8 nodes, where c = r²·n is the expected-degree parameter
// (the expected cell population is c/4). The largest cluster of good cells
// induces the giant component; maximal clusters of its complement are the
// "small regions" of Thm 5.2.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "emst/geometry/point.hpp"

namespace emst::percolation {

class CellField {
 public:
  /// Build the r/2 cell field for `points` with transmission radius r.
  CellField(std::span<const geometry::Point2> points, double radius);

  [[nodiscard]] std::size_t side() const noexcept { return side_; }
  [[nodiscard]] std::size_t cell_count() const noexcept { return side_ * side_; }
  [[nodiscard]] double cell_size() const noexcept { return cell_; }
  /// c = r²·n, the dimensionless density parameter.
  [[nodiscard]] double density_parameter() const noexcept { return c_param_; }
  /// The goodness threshold c/8 (in nodes).
  [[nodiscard]] double good_threshold() const noexcept { return c_param_ / 8.0; }

  [[nodiscard]] std::size_t population(std::size_t cx, std::size_t cy) const;
  [[nodiscard]] bool occupied(std::size_t cx, std::size_t cy) const;
  [[nodiscard]] bool good(std::size_t cx, std::size_t cy) const;

  /// Cell coordinates (cx, cy) of a point.
  [[nodiscard]] std::pair<std::size_t, std::size_t> cell_of(geometry::Point2 p) const;

  /// Fraction of cells that are good (the empirical site-occupation
  /// probability p of the percolation reduction; Lemma 5.2 says p → 1 as
  /// c → ∞).
  [[nodiscard]] double good_fraction() const;

  /// Label clusters of good cells under 8-adjacency. Returns labels
  /// (one per cell, row-major; SIZE_MAX for non-good cells) and writes the
  /// cluster count.
  [[nodiscard]] std::vector<std::size_t> good_clusters(std::size_t& cluster_count) const;

  /// Label maximal 8-connected clusters of the complement of the given cell
  /// set (`in_set[cell]` true = excluded). These are the paper's small
  /// regions when `in_set` marks the largest good cluster.
  [[nodiscard]] std::vector<std::size_t> complement_clusters(
      const std::vector<bool>& in_set, std::size_t& cluster_count) const;

 private:
  std::size_t side_ = 0;
  double cell_ = 0.0;
  double c_param_ = 0.0;
  std::vector<std::uint32_t> pop_;  // row-major populations
};

}  // namespace emst::percolation
