#include "emst/spatial/cell_grid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "emst/support/assert.hpp"

namespace emst::spatial {

CellGrid::CellGrid(std::span<const geometry::Point2> points, double cell_size,
                   geometry::Rect region)
    : points_(points), region_(region) {
  EMST_ASSERT(cell_size > 0.0);
  const double extent = std::max(region.width(), region.height());
  EMST_ASSERT(extent > 0.0);
  // Clamp the per-side cell count: tiny radii on huge point sets would
  // otherwise allocate quadratically many empty cells.
  const double max_side =
      std::sqrt(4.0 * static_cast<double>(points.size()) + 64.0) + 1.0;
  double side = std::ceil(extent / cell_size);
  side = std::clamp(side, 1.0, max_side);
  side_ = static_cast<std::size_t>(side);
  cell_ = extent / side;

  offsets_.assign(side_ * side_ + 1, 0);
  for (const geometry::Point2& p : points_) ++offsets_[cell_of(p) + 1];
  for (std::size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];
  members_.resize(points_.size());
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (PointIndex i = 0; i < points_.size(); ++i)
    members_[cursor[cell_of(points_[i])]++] = i;
}

CellGrid CellGrid::with_auto_cell(std::span<const geometry::Point2> points,
                                  geometry::Rect region) {
  const double n = std::max<double>(1.0, static_cast<double>(points.size()));
  const double extent = std::max(region.width(), region.height());
  return CellGrid(points, extent / std::sqrt(n), region);
}

std::size_t CellGrid::cell_of(geometry::Point2 p) const noexcept {
  auto coord = [&](double v, double lo) {
    double c = std::floor((v - lo) / cell_);
    return static_cast<std::size_t>(
        std::clamp(c, 0.0, static_cast<double>(side_ - 1)));
  };
  return coord(p.y, region_.lo.y) * side_ + coord(p.x, region_.lo.x);
}

std::span<const PointIndex> CellGrid::cell_members(std::size_t cx,
                                                   std::size_t cy) const {
  EMST_ASSERT(cx < side_ && cy < side_);
  const std::size_t c = cy * side_ + cx;
  return {members_.data() + offsets_[c], offsets_[c + 1] - offsets_[c]};
}

std::vector<PointIndex> CellGrid::within(geometry::Point2 p, double r) const {
  std::vector<PointIndex> out;
  // Reserve for the expected hit count under uniform density (πr²/area of
  // the indexed points), padded a little so typical queries never regrow.
  const double area = region_.width() * region_.height();
  if (area > 0.0) {
    const double frac = std::min(1.0, std::numbers::pi * r * r / area);
    out.reserve(static_cast<std::size_t>(
                    frac * static_cast<double>(points_.size()) * 1.25) +
                8);
  }
  for_each_within(p, r, [&](PointIndex i) { out.push_back(i); });
  return out;
}

std::vector<PointIndex> CellGrid::k_nearest(geometry::Point2 p, std::size_t k,
                                            PointIndex exclude) const {
  std::vector<PointIndex> result;
  if (k == 0 || points_.empty()) return result;
  // Expanding-radius search: start at one-cell scale and double until k
  // candidates are inside the *verified* radius (candidates beyond the scan
  // radius r may be incomplete, so require dist <= r before accepting).
  double r = cell_;
  const double extent = std::hypot(region_.width(), region_.height());
  std::vector<std::pair<double, PointIndex>> candidates;
  candidates.reserve(2 * k + 16);
  for (;;) {
    candidates.clear();
    for_each_within(p, r, [&](PointIndex i) {
      if (i == exclude) return;
      candidates.emplace_back(geometry::distance(points_[i], p), i);
    });
    if (candidates.size() >= k || r > extent) break;
    r *= 2.0;
  }
  std::sort(candidates.begin(), candidates.end());
  const std::size_t take = std::min(k, candidates.size());
  result.reserve(take);
  for (std::size_t i = 0; i < take; ++i) result.push_back(candidates[i].second);
  return result;
}

}  // namespace emst::spatial
