// Uniform cell grid over the unit square.
//
// The workhorse spatial index: RGG construction, the Co-NNT doubling-radius
// probes, and the lower-bound experiment's k-nearest-neighbour queries all
// reduce to "enumerate points within radius r of p", which the grid answers
// in expected O(points returned) by scanning the O((r/cell)²) overlapping
// cells.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "emst/geometry/point.hpp"
#include "emst/geometry/rect.hpp"

namespace emst::spatial {

using PointIndex = std::uint32_t;

class CellGrid {
 public:
  /// Index `points` (not owned; must outlive the grid) with cells of side
  /// `cell_size` over `region`. cell_size is clamped so the grid has at
  /// least one and at most ~4·|points| + 64 cells per dimension squared.
  CellGrid(std::span<const geometry::Point2> points, double cell_size,
           geometry::Rect region = geometry::unit_square());

  /// Convenience: pick a cell size targeting ~1 point per cell.
  static CellGrid with_auto_cell(std::span<const geometry::Point2> points,
                                 geometry::Rect region = geometry::unit_square());

  /// Invoke fn(index) for every indexed point with distance(p, point) <= r
  /// (Euclidean). Includes the query point itself if it is indexed.
  /// Templated on the callable so the per-point distance test inlines: this
  /// is the hot path of every implicit neighbor walk, where a std::function
  /// hop per candidate would dominate the scan.
  template <typename Fn>
  void for_each_within(geometry::Point2 p, double r, Fn&& fn) const {
    const double r_sq = r * r;
    auto clamp_cell = [&](double v, double lo) noexcept {
      const double c = std::floor((v - lo) / cell_);
      return static_cast<std::size_t>(
          std::clamp(c, 0.0, static_cast<double>(side_ - 1)));
    };
    const std::size_t x_lo = clamp_cell(p.x - r, region_.lo.x);
    const std::size_t x_hi = clamp_cell(p.x + r, region_.lo.x);
    const std::size_t y_lo = clamp_cell(p.y - r, region_.lo.y);
    const std::size_t y_hi = clamp_cell(p.y + r, region_.lo.y);
    for (std::size_t cy = y_lo; cy <= y_hi; ++cy) {
      // Cells [x_lo..x_hi] of one row are adjacent in the CSR, so the row's
      // members form a single contiguous slice — one scan per row instead of
      // a span fetch per cell. Visit order (row-major cells, CSR order within
      // each) is unchanged.
      const std::size_t row = cy * side_;
      const std::size_t begin = offsets_[row + x_lo];
      const std::size_t end = offsets_[row + x_hi + 1];
      for (std::size_t s = begin; s < end; ++s) {
        const PointIndex i = members_[s];
        if (geometry::distance_sq(points_[i], p) <= r_sq) fn(i);
      }
    }
  }

  /// Indices of all points within Euclidean distance r of p.
  [[nodiscard]] std::vector<PointIndex> within(geometry::Point2 p, double r) const;

  /// The k nearest indexed points to p, excluding `exclude` (pass a
  /// non-index like UINT32_MAX to exclude none), sorted by distance.
  /// Returns fewer than k if the index holds fewer points.
  [[nodiscard]] std::vector<PointIndex> k_nearest(geometry::Point2 p, std::size_t k,
                                                  PointIndex exclude) const;

  [[nodiscard]] std::size_t point_count() const noexcept { return points_.size(); }
  [[nodiscard]] std::size_t cells_per_side() const noexcept { return side_; }
  [[nodiscard]] double cell_size() const noexcept { return cell_; }

  /// Points bucketed in grid cell (cx, cy).
  [[nodiscard]] std::span<const PointIndex> cell_members(std::size_t cx,
                                                         std::size_t cy) const;

 private:
  [[nodiscard]] std::size_t cell_of(geometry::Point2 p) const noexcept;

  std::span<const geometry::Point2> points_;
  geometry::Rect region_;
  double cell_ = 0.0;
  std::size_t side_ = 0;
  std::vector<std::size_t> offsets_;      // CSR over cells
  std::vector<PointIndex> members_;
};

}  // namespace emst::spatial
