// 2-d k-d tree — the CellGrid's complement for NON-uniform point sets.
//
// The cell grid answers range queries in expected O(output) only when points
// are roughly uniform (one point per cell); under clustered deployments
// (geometry/deployments.hpp) a single cell can hold Θ(n) points. The k-d
// tree's O(√n + output) range query and O(log n) expected nearest-neighbour
// query are density-independent. Both indexes expose the same query surface
// and are property-tested against each other.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "emst/geometry/point.hpp"

namespace emst::spatial {

class KdTree {
 public:
  /// Build over `points` (not owned; must outlive the tree). O(n log n).
  explicit KdTree(std::span<const geometry::Point2> points);

  /// Invoke fn(index) for every point within Euclidean distance r of p
  /// (inclusive). Includes the query point itself if indexed.
  void for_each_within(geometry::Point2 p, double r,
                       const std::function<void(std::uint32_t)>& fn) const;

  [[nodiscard]] std::vector<std::uint32_t> within(geometry::Point2 p,
                                                  double r) const;

  /// Index of the nearest point to p, excluding `exclude`
  /// (pass UINT32_MAX to exclude nothing); UINT32_MAX if the tree is empty
  /// or holds only the excluded point.
  [[nodiscard]] std::uint32_t nearest(geometry::Point2 p,
                                      std::uint32_t exclude) const;

  /// The k nearest points to p (excluding `exclude`), sorted by distance.
  [[nodiscard]] std::vector<std::uint32_t> k_nearest(geometry::Point2 p,
                                                     std::size_t k,
                                                     std::uint32_t exclude) const;

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }

 private:
  struct Node {
    std::uint32_t point = 0;      // index into points_
    std::int32_t left = -1;       // node indices
    std::int32_t right = -1;
    bool split_x = true;          // splitting axis at this node
  };

  [[nodiscard]] std::int32_t build(std::span<std::uint32_t> indices, bool split_x);
  void range_query(std::int32_t node, geometry::Point2 p, double r_sq,
                   const std::function<void(std::uint32_t)>& fn) const;
  void knn_query(std::int32_t node, geometry::Point2 p, std::size_t k,
                 std::uint32_t exclude,
                 std::vector<std::pair<double, std::uint32_t>>& heap) const;

  std::span<const geometry::Point2> points_;
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
};

}  // namespace emst::spatial
