#include "emst/spatial/kdtree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "emst/support/assert.hpp"

namespace emst::spatial {

KdTree::KdTree(std::span<const geometry::Point2> points) : points_(points) {
  if (points_.empty()) return;
  nodes_.reserve(points_.size());
  std::vector<std::uint32_t> indices(points_.size());
  std::iota(indices.begin(), indices.end(), 0u);
  root_ = build(indices, /*split_x=*/true);
}

std::int32_t KdTree::build(std::span<std::uint32_t> indices, bool split_x) {
  if (indices.empty()) return -1;
  const std::size_t mid = indices.size() / 2;
  // Median split along the current axis (ties broken by index → stable,
  // duplicate-safe).
  std::nth_element(indices.begin(), indices.begin() + static_cast<std::ptrdiff_t>(mid),
                   indices.end(), [&](std::uint32_t a, std::uint32_t b) {
                     const double ka = split_x ? points_[a].x : points_[a].y;
                     const double kb = split_x ? points_[b].x : points_[b].y;
                     if (ka != kb) return ka < kb;
                     return a < b;
                   });
  const auto node_index = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back({indices[mid], -1, -1, split_x});
  // Children are built after the push; indices into nodes_ stay valid
  // because we only append.
  const std::int32_t left = build(indices.first(mid), !split_x);
  const std::int32_t right = build(indices.subspan(mid + 1), !split_x);
  nodes_[static_cast<std::size_t>(node_index)].left = left;
  nodes_[static_cast<std::size_t>(node_index)].right = right;
  return node_index;
}

void KdTree::for_each_within(geometry::Point2 p, double r,
                             const std::function<void(std::uint32_t)>& fn) const {
  EMST_ASSERT(r >= 0.0);
  range_query(root_, p, r * r, fn);
}

void KdTree::range_query(std::int32_t node, geometry::Point2 p, double r_sq,
                         const std::function<void(std::uint32_t)>& fn) const {
  if (node < 0) return;
  const Node& nd = nodes_[static_cast<std::size_t>(node)];
  const geometry::Point2 q = points_[nd.point];
  if (geometry::distance_sq(q, p) <= r_sq) fn(nd.point);
  const double delta = nd.split_x ? p.x - q.x : p.y - q.y;
  // Search the near side always; the far side only if the splitting plane is
  // within range.
  const std::int32_t near = delta <= 0.0 ? nd.left : nd.right;
  const std::int32_t far = delta <= 0.0 ? nd.right : nd.left;
  range_query(near, p, r_sq, fn);
  if (delta * delta <= r_sq) range_query(far, p, r_sq, fn);
}

std::vector<std::uint32_t> KdTree::within(geometry::Point2 p, double r) const {
  std::vector<std::uint32_t> out;
  for_each_within(p, r, [&](std::uint32_t i) { out.push_back(i); });
  return out;
}

std::uint32_t KdTree::nearest(geometry::Point2 p, std::uint32_t exclude) const {
  const auto knn = k_nearest(p, 1, exclude);
  return knn.empty() ? std::numeric_limits<std::uint32_t>::max() : knn[0];
}

void KdTree::knn_query(std::int32_t node, geometry::Point2 p, std::size_t k,
                       std::uint32_t exclude,
                       std::vector<std::pair<double, std::uint32_t>>& heap) const {
  if (node < 0) return;
  const Node& nd = nodes_[static_cast<std::size_t>(node)];
  const geometry::Point2 q = points_[nd.point];
  if (nd.point != exclude) {
    const double d_sq = geometry::distance_sq(q, p);
    if (heap.size() < k) {
      heap.emplace_back(d_sq, nd.point);
      std::push_heap(heap.begin(), heap.end());
    } else if (d_sq < heap.front().first) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = {d_sq, nd.point};
      std::push_heap(heap.begin(), heap.end());
    }
  }
  const double delta = nd.split_x ? p.x - q.x : p.y - q.y;
  const std::int32_t near = delta <= 0.0 ? nd.left : nd.right;
  const std::int32_t far = delta <= 0.0 ? nd.right : nd.left;
  knn_query(near, p, k, exclude, heap);
  // Prune the far side when the splitting plane is farther than the current
  // k-th best (or the heap is not yet full).
  if (heap.size() < k || delta * delta <= heap.front().first) {
    knn_query(far, p, k, exclude, heap);
  }
}

std::vector<std::uint32_t> KdTree::k_nearest(geometry::Point2 p, std::size_t k,
                                             std::uint32_t exclude) const {
  std::vector<std::uint32_t> out;
  if (k == 0 || points_.empty()) return out;
  std::vector<std::pair<double, std::uint32_t>> heap;  // max-heap on d²
  heap.reserve(k + 1);
  knn_query(root_, p, k, exclude, heap);
  std::sort_heap(heap.begin(), heap.end());
  out.reserve(heap.size());
  for (const auto& [d_sq, index] : heap) out.push_back(index);
  return out;
}

}  // namespace emst::spatial
