// The harness fans out over driver-specific result shapes (stage
// accountings, breakdowns); it calls the drivers directly on purpose.
#define EMST_NO_DEPRECATE
#include "emst/harness/experiment.hpp"

#include "emst/geometry/sampling.hpp"
#include "emst/graph/mst.hpp"
#include "emst/graph/tree_utils.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/rgg/rgg.hpp"
#include "emst/sim/implicit_topology.hpp"
#include "emst/support/parallel.hpp"

namespace emst::harness {
namespace {

AlgoOutcome make_outcome(const std::vector<geometry::Point2>& points,
                         const std::vector<graph::Edge>& tree,
                         const sim::Accounting& totals, std::size_t phases,
                         const std::vector<graph::Edge>& reference) {
  AlgoOutcome outcome;
  outcome.energy = totals.energy;
  outcome.messages = totals.messages();
  outcome.rounds = totals.rounds;
  outcome.phases = phases;
  outcome.tree_edges = tree.size();
  outcome.tree_len = graph::tree_cost(points, tree, 1.0);
  outcome.tree_sq = graph::tree_cost(points, tree, 2.0);
  outcome.spanning = graph::is_spanning_tree(points.size(), tree);
  outcome.exact_mst = graph::same_edge_set(tree, reference);
  return outcome;
}

}  // namespace

InstanceResults run_instance(const InstanceConfig& config) {
  InstanceResults results;
  support::Rng rng(config.seed);
  const auto points =
      geometry::sample_deployment(config.deployment, config.n, rng);
  const geometry::PathLoss pathloss{1.0, config.alpha};

  // Shared topology at the connectivity radius r₂ (GHS baseline and EOPT
  // Step 2 both operate at this radius, per §VII).
  const double r2 = rgg::connectivity_radius(config.n, config.connectivity_factor);
  sim::Topology topo(points, r2);

  // Reference: the unique MSF of the r₂-visibility graph (equals the
  // Euclidean MST whenever the graph is connected).
  const auto reference =
      graph::kruskal_msf(config.n, topo.graph().edges());
  results.graph_connected = reference.size() == config.n - 1;
  {
    const auto true_mst = rgg::euclidean_mst(points);
    results.mst_len = graph::tree_cost(points, true_mst, 1.0);
    results.mst_sq = graph::tree_cost(points, true_mst, 2.0);
  }

  // The drivers are topology-generic; which backend they see is a config
  // switch, everything else (including the outcome) is identical.
  const auto run_drivers = [&](const auto& t) {
    if (config.run_ghs) {
      if (config.ghs_use_sync_probe) {
        ghs::SyncGhsOptions options;
        options.radius = r2;
        options.pathloss = pathloss;
        options.neighbor_cache = false;
        const auto run = ghs::run_sync_ghs(t, options);
        results.ghs = make_outcome(points, run.run.tree, run.run.totals,
                                   run.run.phases, reference);
      } else {
        ghs::ClassicGhsOptions options;
        options.radius = r2;
        options.pathloss = pathloss;
        const auto run = ghs::run_classic_ghs(t, options);
        results.ghs =
            make_outcome(points, run.tree, run.totals, run.phases, reference);
      }
    }
    if (config.run_eopt) {
      eopt::EoptOptions options = config.eopt;
      options.step2_factor = config.connectivity_factor;
      options.pathloss = pathloss;
      const auto run = eopt::run_eopt(t, options);
      results.eopt = make_outcome(points, run.run.tree, run.run.totals,
                                  run.run.phases, reference);
      results.eopt_detail = run;
    }
    if (config.run_connt) {
      nnt::CoNntOptions options = config.connt;
      options.pathloss = pathloss;
      const auto run = nnt::run_connt(t, options);
      results.connt = make_outcome(points, run.tree, run.totals,
                                   run.max_probe_rounds, reference);
    }
  };
  if (config.implicit_backend) {
    run_drivers(sim::ImplicitTopology(points, r2));
  } else {
    run_drivers(topo);
  }
  return results;
}

void Aggregate::add(const AlgoOutcome& outcome) {
  energy.add(outcome.energy);
  messages.add(static_cast<double>(outcome.messages));
  rounds.add(static_cast<double>(outcome.rounds));
  tree_len.add(outcome.tree_len);
  tree_sq.add(outcome.tree_sq);
  if (outcome.exact_mst) ++exact_count;
  if (outcome.spanning) ++spanning_count;
  ++trials;
}

void Aggregate::merge(const Aggregate& other) {
  energy.merge(other.energy);
  messages.merge(other.messages);
  rounds.merge(other.rounds);
  tree_len.merge(other.tree_len);
  tree_sq.merge(other.tree_sq);
  exact_count += other.exact_count;
  spanning_count += other.spanning_count;
  trials += other.trials;
}

SweepPoint run_sweep_point(const InstanceConfig& base, std::size_t trials,
                           std::uint64_t master_seed) {
  SweepPoint point;
  point.n = base.n;
  point.trials = trials;
  // Each trial writes only its own slot; aggregation is serial afterwards,
  // so the sweep result is bit-identical for any thread count.
  std::vector<InstanceResults> per_trial(trials);
  support::parallel_for(trials, [&](std::size_t trial) {
    InstanceConfig config = base;
    config.seed = support::Rng::stream_seed(master_seed, trial);
    per_trial[trial] = run_instance(config);
  });
  for (const InstanceResults& r : per_trial) {
    if (r.ghs) point.ghs.add(*r.ghs);
    if (r.eopt) point.eopt.add(*r.eopt);
    if (r.connt) point.connt.add(*r.connt);
    point.mst_len.add(r.mst_len);
    point.mst_sq.add(r.mst_sq);
    if (r.graph_connected) ++point.connected_count;
  }
  return point;
}

}  // namespace emst::harness
