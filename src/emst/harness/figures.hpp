// Figure- and table-level experiment drivers (§VII reproduction).
//
// Each bench binary under bench/ calls one of these and prints the rows the
// paper reports; the functions return structured data so tests can assert
// the paper's qualitative claims (ordering, slopes, approximation ratios).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "emst/harness/experiment.hpp"
#include "emst/percolation/analysis.hpp"
#include "emst/support/stats.hpp"
#include "emst/support/table.hpp"

namespace emst::harness {

// ---------------------------------------------------------------------- Fig 3

struct Fig3Point {
  std::size_t n = 0;
  double ghs_energy = 0.0;
  double ghs_sem = 0.0;
  double eopt_energy = 0.0;
  double eopt_sem = 0.0;
  double connt_energy = 0.0;
  double connt_sem = 0.0;
  double ghs_messages = 0.0;
  double eopt_messages = 0.0;
  double connt_messages = 0.0;
  std::size_t ghs_exact = 0;    ///< trials where GHS matched Kruskal
  std::size_t eopt_exact = 0;
  std::size_t connt_spanning = 0;
  std::size_t trials = 0;
};

struct Fig3Data {
  std::vector<Fig3Point> points;

  /// Least-squares slope of log(mean energy) vs log(log n) per algorithm —
  /// the quantity Figure 3(b) eyeballs (expected ≈ 2 / 1 / 0).
  [[nodiscard]] support::LineFit ghs_fit() const;
  [[nodiscard]] support::LineFit eopt_fit() const;
  [[nodiscard]] support::LineFit connt_fit() const;
};

/// Energy-vs-n sweep for all three algorithms on shared instances.
[[nodiscard]] Fig3Data run_fig3(const std::vector<std::size_t>& ns,
                                std::size_t trials, std::uint64_t seed,
                                bool ghs_use_sync_probe = false,
                                double alpha = 2.0);

[[nodiscard]] support::Table fig3a_table(const Fig3Data& data);
[[nodiscard]] support::Table fig3b_table(const Fig3Data& data);

// ------------------------------------------------------------- Tab A (§VII)

struct TabARow {
  std::size_t n = 0;
  double connt_len = 0.0;   ///< Σ|e| of Co-NNT (paper: 22.9 / 50.5)
  double mst_len = 0.0;     ///< Σ|e| of MST   (paper: 20.8 / 46.3)
  double connt_sq = 0.0;    ///< Σ|e|² of Co-NNT (paper: ≈0.68)
  double mst_sq = 0.0;      ///< Σ|e|² of MST    (paper: ≈0.52)
  double ratio_len = 0.0;
  double ratio_sq = 0.0;
  std::size_t trials = 0;
};

[[nodiscard]] std::vector<TabARow> run_taba(const std::vector<std::size_t>& ns,
                                            std::size_t trials,
                                            std::uint64_t seed);

[[nodiscard]] support::Table taba_table(const std::vector<TabARow>& rows);

// ------------------------------------------------- Fig 1 / Thm 5.2 sweep

struct PercolationRow {
  std::size_t n = 0;
  double c1_factor = 0.0;   ///< radius factor: r = c1_factor·√(1/n)
  double giant_fraction = 0.0;
  double second_component = 0.0;     ///< mean largest non-giant size
  double small_region_nodes = 0.0;   ///< mean max small-region population
  double log2n = 0.0;                ///< ln² n, the Thm 5.2 bound scale
  double good_fraction = 0.0;        ///< mean site-occupation probability
  double trapped_fraction = 0.0;     ///< trials where Thm 5.2's trapping held
  std::size_t trials = 0;
};

[[nodiscard]] std::vector<PercolationRow> run_percolation(
    const std::vector<std::size_t>& ns, const std::vector<double>& factors,
    std::size_t trials, std::uint64_t seed);

[[nodiscard]] support::Table percolation_table(
    const std::vector<PercolationRow>& rows);

}  // namespace emst::harness
