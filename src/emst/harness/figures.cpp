// Figure extraction reads driver-specific result fields; it calls the
// drivers directly on purpose.
#define EMST_NO_DEPRECATE
#include "emst/harness/figures.hpp"

#include <cmath>

#include "emst/geometry/sampling.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/rgg/rgg.hpp"
#include "emst/support/parallel.hpp"
#include "emst/support/rng.hpp"

namespace emst::harness {
namespace {

support::LineFit fit_loglog(const std::vector<Fig3Point>& points,
                            double Fig3Point::* member) {
  std::vector<double> x;
  std::vector<double> y;
  for (const Fig3Point& p : points) {
    const double energy = p.*member;
    if (energy <= 0.0 || p.n < 3) continue;
    x.push_back(std::log(std::log(static_cast<double>(p.n))));
    y.push_back(std::log(energy));
  }
  return support::fit_line(x, y);
}

}  // namespace

support::LineFit Fig3Data::ghs_fit() const {
  return fit_loglog(points, &Fig3Point::ghs_energy);
}
support::LineFit Fig3Data::eopt_fit() const {
  return fit_loglog(points, &Fig3Point::eopt_energy);
}
support::LineFit Fig3Data::connt_fit() const {
  return fit_loglog(points, &Fig3Point::connt_energy);
}

Fig3Data run_fig3(const std::vector<std::size_t>& ns, std::size_t trials,
                  std::uint64_t seed, bool ghs_use_sync_probe, double alpha) {
  Fig3Data data;
  for (const std::size_t n : ns) {
    InstanceConfig config;
    config.n = n;
    config.alpha = alpha;
    config.ghs_use_sync_probe = ghs_use_sync_probe;
    const SweepPoint sweep = run_sweep_point(config, trials, seed ^ (n * 0x9e37ULL));
    Fig3Point point;
    point.n = n;
    point.trials = sweep.trials;
    point.ghs_energy = sweep.ghs.energy.mean();
    point.ghs_sem = sweep.ghs.energy.sem();
    point.eopt_energy = sweep.eopt.energy.mean();
    point.eopt_sem = sweep.eopt.energy.sem();
    point.connt_energy = sweep.connt.energy.mean();
    point.connt_sem = sweep.connt.energy.sem();
    point.ghs_messages = sweep.ghs.messages.mean();
    point.eopt_messages = sweep.eopt.messages.mean();
    point.connt_messages = sweep.connt.messages.mean();
    point.ghs_exact = sweep.ghs.exact_count;
    point.eopt_exact = sweep.eopt.exact_count;
    point.connt_spanning = sweep.connt.spanning_count;
    data.points.push_back(point);
  }
  return data;
}

support::Table fig3a_table(const Fig3Data& data) {
  support::Table table({"n", "GHS", "GHS±", "EOPT", "EOPT±", "Co-NNT", "Co-NNT±",
                        "GHS_msgs", "EOPT_msgs", "CoNNT_msgs", "exact", "trials"});
  for (const Fig3Point& p : data.points) {
    table.add_row({static_cast<long long>(p.n), p.ghs_energy, p.ghs_sem,
                   p.eopt_energy, p.eopt_sem, p.connt_energy, p.connt_sem,
                   p.ghs_messages, p.eopt_messages, p.connt_messages,
                   std::string(std::to_string(p.ghs_exact) + "/" +
                               std::to_string(p.eopt_exact) + "/" +
                               std::to_string(p.trials)),
                   static_cast<long long>(p.trials)});
  }
  return table;
}

support::Table fig3b_table(const Fig3Data& data) {
  support::Table table({"n", "loglog_n", "log_GHS", "log_EOPT", "log_CoNNT"});
  for (const Fig3Point& p : data.points) {
    if (p.n < 3) continue;
    table.add_row({static_cast<long long>(p.n),
                   std::log(std::log(static_cast<double>(p.n))),
                   p.ghs_energy > 0 ? std::log(p.ghs_energy) : 0.0,
                   p.eopt_energy > 0 ? std::log(p.eopt_energy) : 0.0,
                   p.connt_energy > 0 ? std::log(p.connt_energy) : 0.0});
  }
  return table;
}

std::vector<TabARow> run_taba(const std::vector<std::size_t>& ns,
                              std::size_t trials, std::uint64_t seed) {
  std::vector<TabARow> rows;
  for (const std::size_t n : ns) {
    InstanceConfig config;
    config.n = n;
    config.run_ghs = false;
    config.run_eopt = false;
    const SweepPoint sweep = run_sweep_point(config, trials, seed ^ (n * 0x7f4aULL));
    TabARow row;
    row.n = n;
    row.trials = sweep.trials;
    row.connt_len = sweep.connt.tree_len.mean();
    row.mst_len = sweep.mst_len.mean();
    row.connt_sq = sweep.connt.tree_sq.mean();
    row.mst_sq = sweep.mst_sq.mean();
    row.ratio_len = row.mst_len > 0 ? row.connt_len / row.mst_len : 0.0;
    row.ratio_sq = row.mst_sq > 0 ? row.connt_sq / row.mst_sq : 0.0;
    rows.push_back(row);
  }
  return rows;
}

support::Table taba_table(const std::vector<TabARow>& rows) {
  support::Table table({"n", "CoNNT_sum|e|", "MST_sum|e|", "ratio",
                        "CoNNT_sum|e|^2", "MST_sum|e|^2", "ratio^2", "trials"});
  table.set_precision(1, 1);
  table.set_precision(2, 1);
  for (const TabARow& r : rows) {
    table.add_row({static_cast<long long>(r.n), r.connt_len, r.mst_len,
                   r.ratio_len, r.connt_sq, r.mst_sq, r.ratio_sq,
                   static_cast<long long>(r.trials)});
  }
  return table;
}

std::vector<PercolationRow> run_percolation(const std::vector<std::size_t>& ns,
                                            const std::vector<double>& factors,
                                            std::size_t trials,
                                            std::uint64_t seed) {
  std::vector<PercolationRow> rows;
  for (const std::size_t n : ns) {
    for (const double factor : factors) {
      struct TrialOut {
        percolation::Report report;
      };
      std::vector<TrialOut> outs(trials);
      support::parallel_for(trials, [&](std::size_t trial) {
        support::Rng rng(support::Rng::stream_seed(
            seed ^ (n * 0x51edULL) ^ static_cast<std::uint64_t>(factor * 1000),
            trial));
        const auto instance =
            rgg::random_rgg(n, rgg::percolation_radius(n, factor), rng);
        outs[trial].report = percolation::analyze(instance);
      });
      PercolationRow row;
      row.n = n;
      row.c1_factor = factor;
      row.trials = trials;
      const double ln = std::log(static_cast<double>(n));
      row.log2n = ln * ln;
      support::RunningStats giant;
      support::RunningStats second;
      support::RunningStats region;
      support::RunningStats good;
      std::size_t trapped = 0;
      for (const TrialOut& out : outs) {
        giant.add(out.report.giant_fraction);
        second.add(static_cast<double>(out.report.second_component));
        region.add(static_cast<double>(out.report.largest_small_region_nodes));
        good.add(out.report.good_fraction);
        if (out.report.small_components_trapped) ++trapped;
      }
      row.giant_fraction = giant.mean();
      row.second_component = second.mean();
      row.small_region_nodes = region.mean();
      row.good_fraction = good.mean();
      row.trapped_fraction =
          trials == 0 ? 0.0
                      : static_cast<double>(trapped) / static_cast<double>(trials);
      rows.push_back(row);
    }
  }
  return rows;
}

support::Table percolation_table(const std::vector<PercolationRow>& rows) {
  support::Table table({"n", "c1_factor", "giant_frac", "2nd_comp",
                        "region_nodes", "ln^2_n", "good_frac", "trapped",
                        "trials"});
  table.set_precision(1, 2);
  for (const PercolationRow& r : rows) {
    table.add_row({static_cast<long long>(r.n), r.c1_factor, r.giant_fraction,
                   r.second_component, r.small_region_nodes, r.log2n,
                   r.good_fraction, r.trapped_fraction,
                   static_cast<long long>(r.trials)});
  }
  return table;
}

}  // namespace emst::harness
