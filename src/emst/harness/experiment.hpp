// Uniform per-trial runners for the three algorithms the paper evaluates
// (§VII): classical GHS, EOPT, Co-NNT — all on the *same* sampled instance,
// plus the exact-MST reference costs. Multi-trial aggregation runs trials
// thread-parallel with deterministic per-trial stream seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "emst/eopt/eopt.hpp"
#include "emst/geometry/deployments.hpp"
#include "emst/ghs/classic.hpp"
#include "emst/nnt/connt.hpp"
#include "emst/support/stats.hpp"

namespace emst::harness {

/// Outcome of one algorithm on one instance.
struct AlgoOutcome {
  double energy = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t rounds = 0;
  std::size_t phases = 0;
  double tree_len = 0.0;    ///< Σ|e| over the produced tree/forest
  double tree_sq = 0.0;     ///< Σ|e|²
  std::size_t tree_edges = 0;
  bool spanning = false;    ///< spans the whole point set
  bool exact_mst = false;   ///< edge-for-edge equal to the Kruskal reference
};

struct InstanceConfig {
  std::size_t n = 1000;
  std::uint64_t seed = 1;
  /// Radius factor for GHS and EOPT Step 2 (paper: 1.6, natural log).
  double connectivity_factor = 1.6;
  /// Path-loss exponent applied to ALL algorithms' energy accounting
  /// (paper: α = 2; the model generalizes, §II).
  double alpha = 2.0;
  /// Deployment model (paper: uniform).
  geometry::Deployment deployment = geometry::Deployment::kUniform;
  eopt::EoptOptions eopt{};
  nnt::CoNntOptions connt{};
  bool run_ghs = true;
  bool run_eopt = true;
  bool run_connt = true;
  /// Use the classic probe flavour of the phase-synchronous GHS as the
  /// baseline instead of the message-faithful 1983 implementation.
  bool ghs_use_sync_probe = false;
  /// Run the algorithms on the memory-lean implicit topology backend
  /// (`sim::ImplicitTopology`) instead of the materialized CSR. Results are
  /// bitwise-identical either way (tests/topology_differential_test.cpp);
  /// only the memory footprint and neighbor-enumeration cost change. The
  /// exact-MST reference is still computed from the materialized edge list —
  /// the harness validates trees, so it needs the edges regardless.
  bool implicit_backend = false;
};

struct InstanceResults {
  std::optional<AlgoOutcome> ghs;
  std::optional<AlgoOutcome> eopt;
  std::optional<AlgoOutcome> connt;
  std::optional<eopt::EoptResult> eopt_detail;
  double mst_len = 0.0;  ///< exact Euclidean MST Σ|e|
  double mst_sq = 0.0;   ///< exact Euclidean MST Σ|e|²
  bool graph_connected = false;  ///< r₂-visibility graph was connected
};

/// Sample one instance and run the selected algorithms on it.
[[nodiscard]] InstanceResults run_instance(const InstanceConfig& config);

/// Aggregate of one metric across trials.
struct Aggregate {
  support::RunningStats energy;
  support::RunningStats messages;
  support::RunningStats rounds;
  support::RunningStats tree_len;
  support::RunningStats tree_sq;
  std::size_t exact_count = 0;
  std::size_t spanning_count = 0;
  std::size_t trials = 0;

  void add(const AlgoOutcome& outcome);
  void merge(const Aggregate& other);
};

struct SweepPoint {
  std::size_t n = 0;
  Aggregate ghs;
  Aggregate eopt;
  Aggregate connt;
  support::RunningStats mst_len;
  support::RunningStats mst_sq;
  std::size_t connected_count = 0;
  std::size_t trials = 0;
};

/// Run `trials` instances at size n (thread-parallel, deterministic seeds
/// derived from `master_seed`) and aggregate.
[[nodiscard]] SweepPoint run_sweep_point(const InstanceConfig& base,
                                         std::size_t trials,
                                         std::uint64_t master_seed);

}  // namespace emst::harness
