#include "emst/rgg/components.hpp"

#include <algorithm>
#include <queue>

namespace emst::rgg {

std::uint32_t Components::giant() const {
  std::uint32_t best = 0;
  for (std::uint32_t c = 1; c < sizes.size(); ++c) {
    if (sizes[c] > sizes[best]) best = c;
  }
  return best;
}

std::size_t Components::giant_size() const {
  return sizes.empty() ? 0 : sizes[giant()];
}

std::size_t Components::second_size() const {
  if (sizes.size() < 2) return 0;
  const std::uint32_t g = giant();
  std::size_t best = 0;
  for (std::uint32_t c = 0; c < sizes.size(); ++c) {
    if (c != g) best = std::max(best, sizes[c]);
  }
  return best;
}

Components connected_components(const graph::AdjacencyList& graph) {
  const std::size_t n = graph.node_count();
  Components comps;
  comps.label.assign(n, static_cast<std::uint32_t>(-1));
  std::queue<graph::NodeId> frontier;
  for (graph::NodeId start = 0; start < n; ++start) {
    if (comps.label[start] != static_cast<std::uint32_t>(-1)) continue;
    const auto id = static_cast<std::uint32_t>(comps.count++);
    comps.sizes.push_back(0);
    comps.label[start] = id;
    frontier.push(start);
    while (!frontier.empty()) {
      const graph::NodeId u = frontier.front();
      frontier.pop();
      ++comps.sizes[id];
      for (const graph::Neighbor& nb : graph.neighbors(u)) {
        if (comps.label[nb.id] == static_cast<std::uint32_t>(-1)) {
          comps.label[nb.id] = id;
          frontier.push(nb.id);
        }
      }
    }
  }
  return comps;
}

bool is_connected(const graph::AdjacencyList& graph) {
  if (graph.node_count() <= 1) return true;
  return connected_components(graph).count == 1;
}

}  // namespace emst::rgg
