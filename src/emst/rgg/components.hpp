// Connected-component labelling and the component statistics that drive the
// paper's Step-1/Step-2 split (Thm 5.2).
#pragma once

#include <cstddef>
#include <vector>

#include "emst/graph/adjacency.hpp"

namespace emst::rgg {

struct Components {
  std::vector<std::uint32_t> label;  ///< component id per node (dense, 0-based)
  std::vector<std::size_t> sizes;    ///< size per component id
  std::size_t count = 0;

  /// Id of the largest component (ties: smallest id).
  [[nodiscard]] std::uint32_t giant() const;
  /// Size of the largest component (0 if empty graph).
  [[nodiscard]] std::size_t giant_size() const;
  /// Size of the largest component other than the giant (0 if none).
  [[nodiscard]] std::size_t second_size() const;
};

/// BFS component labelling.
[[nodiscard]] Components connected_components(const graph::AdjacencyList& graph);

[[nodiscard]] bool is_connected(const graph::AdjacencyList& graph);

}  // namespace emst::rgg
