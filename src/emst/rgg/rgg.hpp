// Random geometric graphs (paper §II network model).
//
// n points in the unit square; edge (u,v) present iff d(u,v) ≤ r, weighted
// by Euclidean distance. Construction uses the cell grid for expected-O(n)
// edge enumeration at percolation/connectivity radii.
#pragma once

#include <cstddef>
#include <vector>

#include "emst/geometry/point.hpp"
#include "emst/graph/adjacency.hpp"
#include "emst/graph/edge.hpp"
#include "emst/support/rng.hpp"

namespace emst::rgg {

struct Rgg {
  std::vector<geometry::Point2> points;
  double radius = 0.0;
  graph::AdjacencyList graph;  ///< edges with w = Euclidean distance
};

/// All edges {u,v} with distance(points[u], points[v]) <= radius, weighted by
/// Euclidean distance, in canonical order.
[[nodiscard]] std::vector<graph::Edge> geometric_edges(
    const std::vector<geometry::Point2>& points, double radius);

/// Same edge set in cell-grid enumeration order (unsorted). For consumers
/// that impose their own order anyway — kruskal_msf and AdjacencyList both
/// re-sort their input — sorting here would just be thrown away. Capacity is
/// reserved up front from the expected-degree estimate n·π·r².
[[nodiscard]] std::vector<graph::Edge> geometric_edges_unsorted(
    const std::vector<geometry::Point2>& points, double radius);

/// Build the RGG over given points.
[[nodiscard]] Rgg build_rgg(std::vector<geometry::Point2> points, double radius);

/// Sample n uniform points and build the RGG.
[[nodiscard]] Rgg random_rgg(std::size_t n, double radius, support::Rng& rng);

/// Exact Euclidean MST of a point set: Kruskal over an RGG whose radius is
/// grown (×1.5 steps from the connectivity radius) until the graph connects.
/// This equals the complete-graph Euclidean MST because once G_r is
/// connected, Kruskal on the complete graph never needs an edge longer
/// than r.
[[nodiscard]] std::vector<graph::Edge> euclidean_mst(
    const std::vector<geometry::Point2>& points);

}  // namespace emst::rgg
