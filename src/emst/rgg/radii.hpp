// The transmission radii the paper's regimes are built on.
//
//  - Connectivity regime (Thm 5.1 / Gupta–Kumar): r = √(c·log n / n) with
//    c > 4 makes the RGG connected WHP. §VII uses 1.6·√(ln n / n)
//    (note: natural log, and 1.6² = 2.56 plays the role of c).
//  - Percolation regime (Thm 5.2): r = √(c₁ / n) with c₁ above the
//    supercritical threshold yields a unique giant component plus small
//    components trapped in O(log² n)-node regions. §VII uses 1.4·√(1/n).
#pragma once

#include <cstddef>

namespace emst::rgg {

/// r = factor · √(ln n / n). The paper's experiments use factor = 1.6.
[[nodiscard]] double connectivity_radius(std::size_t n, double factor = 1.6);

/// r = factor · √(1 / n). The paper's experiments use factor = 1.4.
[[nodiscard]] double percolation_radius(std::size_t n, double factor = 1.4);

/// The giant-component size threshold of Thm 5.2: β · log² n (natural log).
[[nodiscard]] double giant_threshold(std::size_t n, double beta = 1.0);

}  // namespace emst::rgg
