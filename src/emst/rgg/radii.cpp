#include "emst/rgg/radii.hpp"

#include <algorithm>
#include <cmath>

#include "emst/support/assert.hpp"

namespace emst::rgg {

double connectivity_radius(std::size_t n, double factor) {
  EMST_ASSERT(n >= 2);
  const auto nd = static_cast<double>(n);
  return factor * std::sqrt(std::log(nd) / nd);
}

double percolation_radius(std::size_t n, double factor) {
  EMST_ASSERT(n >= 1);
  return factor * std::sqrt(1.0 / static_cast<double>(n));
}

double giant_threshold(std::size_t n, double beta) {
  EMST_ASSERT(n >= 2);
  const double ln = std::log(static_cast<double>(n));
  return beta * ln * ln;
}

}  // namespace emst::rgg
