#include "emst/rgg/rgg.hpp"

#include <cmath>

#include "emst/geometry/sampling.hpp"
#include "emst/graph/mst.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/spatial/cell_grid.hpp"
#include "emst/support/assert.hpp"

namespace emst::rgg {

std::vector<graph::Edge> geometric_edges(const std::vector<geometry::Point2>& points,
                                         double radius) {
  EMST_ASSERT(radius > 0.0);
  spatial::CellGrid grid(points, radius);
  std::vector<graph::Edge> edges;
  for (graph::NodeId u = 0; u < points.size(); ++u) {
    grid.for_each_within(points[u], radius, [&](spatial::PointIndex v) {
      if (v <= u) return;  // emit each unordered pair once; skip self
      edges.push_back(
          {u, v, geometry::distance(points[u], points[v])});
    });
  }
  graph::sort_edges(edges);
  return edges;
}

Rgg build_rgg(std::vector<geometry::Point2> points, double radius) {
  Rgg rgg;
  rgg.radius = radius;
  auto edges = geometric_edges(points, radius);
  rgg.graph = graph::AdjacencyList(points.size(), edges);
  rgg.points = std::move(points);
  return rgg;
}

Rgg random_rgg(std::size_t n, double radius, support::Rng& rng) {
  return build_rgg(geometry::uniform_points(n, rng), radius);
}

std::vector<graph::Edge> euclidean_mst(const std::vector<geometry::Point2>& points) {
  const std::size_t n = points.size();
  if (n <= 1) return {};
  double radius = n >= 2 ? connectivity_radius(n, 1.6) : 1.0;
  const double diameter = std::sqrt(2.0);
  for (;;) {
    auto edges = geometric_edges(points, std::min(radius, diameter));
    auto tree = graph::kruskal_msf(n, std::move(edges));
    if (tree.size() == n - 1 || radius >= diameter) return tree;
    radius *= 1.5;
  }
}

}  // namespace emst::rgg
