#include "emst/rgg/rgg.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "emst/geometry/sampling.hpp"
#include "emst/graph/mst.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/spatial/cell_grid.hpp"
#include "emst/support/assert.hpp"

namespace emst::rgg {

std::vector<graph::Edge> geometric_edges_unsorted(
    const std::vector<geometry::Point2>& points, double radius) {
  EMST_ASSERT(radius > 0.0);
  spatial::CellGrid grid(points, radius);
  std::vector<graph::Edge> edges;
  // Expected edge count in the unit square: each unordered pair is an edge
  // with probability ≤ π·r² (boundary effects only lower it), so n²·π·r²/2
  // is a tight upper estimate; cap it at the complete graph.
  const double n = static_cast<double>(points.size());
  const double pair_prob = std::min(1.0, std::numbers::pi * radius * radius);
  const double expected = 0.5 * n * (n - 1.0) * pair_prob;
  edges.reserve(static_cast<std::size_t>(expected) + 16);
  for (graph::NodeId u = 0; u < points.size(); ++u) {
    grid.for_each_within(points[u], radius, [&](spatial::PointIndex v) {
      if (v <= u) return;  // emit each unordered pair once; skip self
      edges.push_back(
          {u, v, geometry::distance(points[u], points[v])});
    });
  }
  return edges;
}

std::vector<graph::Edge> geometric_edges(const std::vector<geometry::Point2>& points,
                                         double radius) {
  auto edges = geometric_edges_unsorted(points, radius);
  graph::sort_edges(edges);
  return edges;
}

Rgg build_rgg(std::vector<geometry::Point2> points, double radius) {
  Rgg rgg;
  rgg.radius = radius;
  // AdjacencyList canonicalizes (sorts) internally, so the unsorted
  // enumeration is enough — and the rvalue hand-off skips the edge copy.
  rgg.graph = graph::AdjacencyList(points.size(),
                                   geometric_edges_unsorted(points, radius));
  rgg.points = std::move(points);
  return rgg;
}

Rgg random_rgg(std::size_t n, double radius, support::Rng& rng) {
  return build_rgg(geometry::uniform_points(n, rng), radius);
}

std::vector<graph::Edge> euclidean_mst(const std::vector<geometry::Point2>& points) {
  const std::size_t n = points.size();
  if (n <= 1) return {};
  double radius = n >= 2 ? connectivity_radius(n, 1.6) : 1.0;
  const double diameter = std::sqrt(2.0);
  for (;;) {
    // kruskal_msf sorts its input, so the unsorted enumeration avoids a
    // redundant full sort per growth step.
    auto edges = geometric_edges_unsorted(points, std::min(radius, diameter));
    auto tree = graph::kruskal_msf(n, std::move(edges));
    if (tree.size() == n - 1 || radius >= diameter) return tree;
    radius *= 1.5;
  }
}

}  // namespace emst::rgg
