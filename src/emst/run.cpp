// The facade is the one sanctioned caller of the legacy entry points: it
// dispatches straight to them, so its results are bitwise-identical to
// direct calls (tests/run_facade_test.cpp pins this).
#define EMST_NO_DEPRECATE
#include "emst/run.hpp"

#include <utility>

#include "emst/geometry/sampling.hpp"
#include "emst/rgg/radii.hpp"
#include "emst/support/assert.hpp"
#include "emst/support/rng.hpp"

namespace emst {

const char* driver_name(Driver driver) noexcept {
  switch (driver) {
    case Driver::kClassicGhs: return "ghs";
    case Driver::kClassicGhsCached: return "ghs-cached";
    case Driver::kSyncGhs: return "sync";
    case Driver::kSyncGhsProbe: return "sync-probe";
    case Driver::kEopt: return "eopt";
    case Driver::kCoNnt: return "connt";
    case Driver::kCoNntAxis: return "connt-axis";
  }
  return "?";
}

bool parse_driver(const std::string& name, Driver& out) noexcept {
  for (const Driver d :
       {Driver::kClassicGhs, Driver::kClassicGhsCached, Driver::kSyncGhs,
        Driver::kSyncGhsProbe, Driver::kEopt, Driver::kCoNnt,
        Driver::kCoNntAxis}) {
    if (name == driver_name(d)) {
      out = d;
      return true;
    }
  }
  return false;
}

const char* resolved_driver_name(Driver driver,
                                 const sim::RunConfig& cfg) noexcept {
  // Mirror of nnt::run_connt's dispatch rule: faults or ranks send the run
  // through the node-actor implementation.
  const bool connt_actor = cfg.faults.enabled() || cfg.ranks > 0;
  switch (driver) {
    case Driver::kCoNnt: return connt_actor ? "connt-actor" : "connt";
    case Driver::kCoNntAxis:
      return connt_actor ? "connt-axis-actor" : "connt-axis";
    default: return driver_name(driver);
  }
}

const char* handler_placement_name(Driver driver,
                                   const sim::RunConfig& cfg) noexcept {
  if (cfg.ranks == 0) return "parent";
  switch (driver) {
    case Driver::kClassicGhs:
    case Driver::kClassicGhsCached:
    case Driver::kCoNnt:
    case Driver::kCoNntAxis:
      return "rank";
    case Driver::kSyncGhs:
    case Driver::kSyncGhsProbe:
    case Driver::kEopt:
      // Choreographed meter-direct drivers: no per-node handlers exist to
      // place, and `ranks` is a pinned no-op (distributed_determinism_test).
      return "parent";
  }
  return "parent";
}

bool driver_supports_loss(Driver driver) noexcept {
  switch (driver) {
    case Driver::kSyncGhs:
    case Driver::kSyncGhsProbe:
    case Driver::kEopt:
      return true;
    case Driver::kClassicGhs:
    case Driver::kClassicGhsCached:
    case Driver::kCoNnt:
    case Driver::kCoNntAxis:
      return false;
  }
  return false;
}

Instance sample_instance(std::size_t n, std::uint64_t seed,
                         double radius_factor) {
  support::Rng rng(seed);
  Instance inst;
  inst.points = geometry::uniform_points(n, rng);
  inst.radius_factor = radius_factor;
  return inst;
}

namespace {

/// Overwrite a driver options struct's shared-knob slice with the facade's
/// own, leaving the driver-specific fields the caller may have tuned.
template <typename Options>
Options with_shared(const Options& tuned, const RunConfig& cfg) {
  Options out = tuned;
  static_cast<sim::RunConfig&>(out) = static_cast<const sim::RunConfig&>(cfg);
  return out;
}

void absorb(RunResult& out, ghs::MstRunResult&& run) {
  out.tree = std::move(run.tree);
  out.totals = run.totals;
  out.phases = run.phases;
  out.fragments = run.fragments;
  out.faults = run.fault_stats;
  out.per_node_energy = std::move(run.per_node_energy);
  out.breakdown = run.energy_breakdown;
  out.breakdown_recorded = run.breakdown_recorded;
  out.epochs = run.epochs;
  out.injected_crashes = std::move(run.injected_crashes);
  out.handler_invocations = run.handler_invocations;
  out.rank_handler_invocations = run.rank_handler_invocations;
}

}  // namespace

template <typename Topo>
RunResult run(const Topo& topo, const RunConfig& cfg) {
  RunResult out;
  out.driver = cfg.driver;
  switch (cfg.driver) {
    case Driver::kClassicGhs:
    case Driver::kClassicGhsCached: {
      ghs::ClassicGhsOptions opt = with_shared(cfg.classic, cfg);
      opt.moe = cfg.driver == Driver::kClassicGhsCached
                    ? ghs::MoeStrategy::kCachedConfirm
                    : ghs::MoeStrategy::kTestAll;
      if (cfg.radius > 0.0) opt.radius = cfg.radius;
      absorb(out, ghs::run_classic_ghs(topo, opt));
      break;
    }
    case Driver::kSyncGhs:
    case Driver::kSyncGhsProbe: {
      ghs::SyncGhsOptions opt = with_shared(cfg.sync, cfg);
      opt.neighbor_cache = cfg.driver == Driver::kSyncGhs;
      if (cfg.radius > 0.0) opt.radius = cfg.radius;
      ghs::SyncGhsResult res = ghs::run_sync_ghs(topo, opt);
      absorb(out, std::move(res.run));
      out.faults = res.faults;
      out.arq = res.arq;
      out.hit_phase_cap = res.hit_phase_cap;
      out.injected_crashes = std::move(res.injected_crashes);
      break;
    }
    case Driver::kEopt: {
      const eopt::EoptOptions opt = with_shared(cfg.eopt, cfg);
      eopt::EoptResult res = eopt::run_eopt(topo, opt);
      absorb(out, std::move(res.run));
      out.faults = res.fault_stats;
      out.arq = res.arq;
      out.hit_phase_cap = res.hit_phase_cap;
      break;
    }
    case Driver::kCoNnt:
    case Driver::kCoNntAxis: {
      nnt::CoNntOptions opt = with_shared(cfg.connt, cfg);
      opt.scheme = cfg.driver == Driver::kCoNntAxis ? nnt::RankScheme::kAxis
                                                    : nnt::RankScheme::kDiagonal;
      nnt::CoNntResult res = nnt::run_connt(topo, opt);
      out.tree = std::move(res.tree);
      out.totals = res.totals;
      out.phases = res.max_probe_rounds;
      out.fragments = res.parent.size() - out.tree.size();
      out.faults = res.fault_stats;
      out.per_node_energy = std::move(res.per_node_energy);
      out.breakdown = res.energy_breakdown;
      out.breakdown_recorded = res.breakdown_recorded;
      out.epochs = res.epochs;
      out.injected_crashes = std::move(res.injected_crashes);
      out.handler_invocations = res.handler_invocations;
      out.rank_handler_invocations = res.rank_handler_invocations;
      break;
    }
  }
  return out;
}

template RunResult run<sim::Topology>(const sim::Topology&, const RunConfig&);
template RunResult run<sim::ImplicitTopology>(const sim::ImplicitTopology&,
                                              const RunConfig&);

RunResult run(const Instance& inst, const RunConfig& cfg) {
  const std::size_t n = inst.points.size();
  EMST_ASSERT_MSG(n >= 2, "emst::run: an instance needs at least two nodes");
  double radius = inst.radius;
  if (radius <= 0.0) {
    // EOPT's topology is built at its own Step-2 radius (exactly what
    // eopt::eopt_topology does); everything else gets the connectivity
    // radius for the instance's factor.
    const double factor = cfg.driver == Driver::kEopt ? cfg.eopt.step2_factor
                                                      : inst.radius_factor;
    radius = rgg::connectivity_radius(n, factor);
  }
  if (inst.implicit_backend) {
    const sim::ImplicitTopology topo(inst.points, radius);
    return run(topo, cfg);
  }
  const sim::Topology topo(inst.points, radius);
  return run(topo, cfg);
}

}  // namespace emst
